// VoIP roaming: a commuter on a 10 m/s ride bounces between two wireless
// cells for two minutes while carrying a real-time voice call, a
// high-priority signalling stream, and a best-effort sync stream. The
// example compares how each buffering scheme treats the three classes
// across the repeated handoffs — the paper's QoS story (Figures 4.3–4.5).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/handover"
)

func main() {
	schemes := []struct {
		name   string
		scheme handover.Scheme
		pool   int
	}{
		{"original fast handover (buffer=40)", handover.OriginalFH, 40},
		{"proposed, classification off (buffer=20+20)", handover.Dual, 20},
		{"proposed, classification on  (buffer=20+20)", handover.Enhanced, 20},
	}

	for _, sc := range schemes {
		sim := handover.New(handover.Config{
			Scheme:               sc.scheme,
			RouterBufferPackets:  sc.pool,
			Alpha:                6,
			BufferRequestPackets: sc.pool,
			Seed:                 1,
		})
		// 128 kb/s per stream: enough to pressure the buffers during each
		// 200 ms blackout.
		flow := func(c handover.Class) handover.Flow {
			return handover.Flow{Class: c, PacketBytes: 160, Interval: 10 * time.Millisecond}
		}
		host := sim.AddMobileHost(handover.PingPongPath(20, 192, 10),
			flow(handover.RealTime),
			flow(handover.HighPriority),
			flow(handover.BestEffort),
		)
		if err := sim.Run(2 * time.Minute); err != nil {
			log.Fatal(err)
		}

		rep := sim.Report()
		byClass := rep.LostByClass()
		fmt.Printf("%s\n", sc.name)
		fmt.Printf("  handoffs: %d\n", len(host.Handoffs()))
		fmt.Printf("  lost voice (rt): %4d   signalling (hp): %4d   sync (be): %4d\n\n",
			byClass[handover.RealTime], byClass[handover.HighPriority], byClass[handover.BestEffort])
	}
	fmt.Println("With classification on, the high-priority stream survives nearly untouched;")
	fmt.Println("the scheme sacrifices best-effort and stale real-time packets instead.")
}
