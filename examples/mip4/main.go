// Classic Mobile IPv4 (the paper's Chapter 2 background): a mobile node
// discovers a foreign agent, registers through it with its home agent, and
// receives traffic addressed to its home address through an IP-in-IP
// tunnel — the infrastructure whose handoff latency motivates everything
// the paper builds.
package main

import (
	"fmt"
	"log"

	"repro/internal/inet"
	"repro/internal/mip4"
	"repro/internal/netsim"
	"repro/internal/sim"
)

func main() {
	engine := sim.NewEngine()
	topo := netsim.NewTopology(engine)

	cn := netsim.NewHost("cn", inet.Addr{Net: 1, Host: 1})
	haRouter := netsim.NewRouter("ha", inet.Addr{Net: 70, Host: 1})
	faRouter := netsim.NewRouter("fa", inet.Addr{Net: 71, Host: 1})
	home := inet.Addr{Net: 70, Host: 5}
	mnHost := netsim.NewHost("mn", home)

	topo.Connect(cn, haRouter, netsim.LinkConfig{Delay: 2 * sim.Millisecond})
	topo.Connect(haRouter, faRouter, netsim.LinkConfig{Delay: 20 * sim.Millisecond})
	topo.Connect(faRouter, mnHost, netsim.LinkConfig{Delay: sim.Millisecond})
	topo.ClaimNet(1, cn)
	topo.ClaimNet(70, haRouter)
	topo.ClaimNet(71, faRouter)
	if err := topo.ComputeRoutes(); err != nil {
		log.Fatal(err)
	}

	ha := mip4.NewHomeAgent(engine, haRouter, 70, 0)
	fa := mip4.NewForeignAgent(engine, faRouter, 300*sim.Second, 0)
	mn := mip4.NewMobileNode(engine, mip4.MobileNodeConfig{
		Home:      home,
		HomeAgent: haRouter.Addr(),
		MAC:       "aa:bb:cc:00:00:05",
	}, mnHost.Send)
	mn.OnRegistered = func(coa inet.Addr, lifetime sim.Time) {
		fmt.Printf("t=%v registered: home %v ↦ care-of %v (lifetime %v)\n",
			engine.Now(), home, coa, lifetime)
	}

	delivered := 0
	mnHost.Receive = func(pkt *inet.Packet) {
		inner := pkt.Innermost()
		switch payload := inner.Payload.(type) {
		case *mip4.RegistrationReply:
			mn.HandleReply(payload)
		default:
			if inner.Proto == inet.ProtoUDP {
				delivered++
			}
		}
	}

	// Stage 1: agent discovery — the node hears the foreign agent's
	// advertisement on the foreign link.
	mn.HandleAdvertisement(fa.Advertisement())
	// Stage 3: once registered, the correspondent node talks to the home
	// address as if nothing had moved.
	engine.Schedule(100*sim.Millisecond, func() {
		for i := 0; i < 5; i++ {
			cn.Send(&inet.Packet{
				Src: cn.Addr(), Dst: home,
				Proto: inet.ProtoUDP, Size: 160, Seq: uint32(i),
			})
		}
	})
	if err := engine.Run(sim.Second); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("visitor list: %d entries; HA tunnelled %d packets; delivered %d/5\n",
		len(fa.Visitors()), ha.Tunnelled(), delivered)
}
