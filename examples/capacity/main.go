// Capacity planning: how many mobile hosts can hand off simultaneously
// before a 50-packet router buffer starts dropping? The paper's headline
// result (Figure 4.2): using both routers' buffers roughly doubles the
// loss-free capacity compared to buffering at the new router alone.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/handover"
)

func lossFreeCapacity(scheme handover.Scheme, request int, maxHosts int) int {
	best := 0
	for n := 1; n <= maxHosts; n++ {
		sim := handover.New(handover.Config{
			Scheme:               scheme,
			RouterBufferPackets:  50,
			BufferRequestPackets: request,
			Seed:                 1,
		})
		for i := 0; i < n; i++ {
			sim.AddMobileHost(handover.LinearPath(50, 10),
				handover.AudioFlow(handover.Unspecified))
		}
		if err := sim.Run(12 * time.Second); err != nil {
			log.Fatal(err)
		}
		if sim.Report().TotalLost() > 0 {
			break
		}
		best = n
	}
	return best
}

func main() {
	fmt.Println("Loss-free simultaneous handoffs with a 50-packet pool per router")
	fmt.Println("(each host needs ~12 packets of buffering per handoff)")
	fmt.Println()

	// Single-placement schemes request the full need from one router; the
	// dual scheme splits it across both.
	rows := []struct {
		name    string
		scheme  handover.Scheme
		request int
	}{
		{"no buffering (plain FH)", handover.NoBuffer, 0},
		{"buffer at new router (original FH)", handover.OriginalFH, 12},
		{"buffer at previous router", handover.PAROnly, 12},
		{"dual buffering (proposed)", handover.Dual, 6},
	}
	for _, row := range rows {
		capacity := lossFreeCapacity(row.scheme, row.request, 14)
		fmt.Printf("  %-38s %2d hosts\n", row.name, capacity)
	}
}
