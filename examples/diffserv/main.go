// DiffServ edge: traffic arrives carrying DSCP code points (EF voice,
// AF41 video control, best-effort bulk) and an edge marker maps them onto
// the handover scheme's service classes — the paper's "cooperate with
// DiffServ network" future-work item. The handover then treats each PHB
// according to Table 3.3.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/handover"
	"repro/internal/diffserv"
)

func main() {
	// The mapping the edge router applies.
	flows := []struct {
		name string
		dscp diffserv.DSCP
	}{
		{"voice (EF)", diffserv.EF},
		{"video control (AF41)", diffserv.AF41},
		{"bulk sync (DF)", diffserv.DF},
	}

	sim := handover.New(handover.Config{
		Scheme:               handover.Enhanced,
		RouterBufferPackets:  20,
		Alpha:                6,
		BufferRequestPackets: 20,
		Seed:                 1,
	})
	var specs []handover.Flow
	for _, f := range flows {
		specs = append(specs, handover.Flow{
			Class:       diffserv.ToClass(f.dscp),
			PacketBytes: 160,
			Interval:    5 * time.Millisecond, // heavy enough to stress the buffers
		})
	}
	sim.AddMobileHost(handover.LinearPath(50, 10), specs...)
	if err := sim.Run(12 * time.Second); err != nil {
		log.Fatal(err)
	}

	fmt.Println("One handoff under DiffServ-mapped classes:")
	for i, f := range sim.Report().Flows {
		fmt.Printf("  %-22s %-6s → class %-14s lost=%3d  p99 delay=%v\n",
			flows[i].name, flows[i].dscp, f.Class, f.Lost, f.P99Delay.Round(time.Millisecond))
	}
	fmt.Println("\nThe AF41 stream (high priority) survives; EF keeps only its freshest")
	fmt.Println("packets (stale voice is worthless); DF is sacrificed first.")
}
