// TCP streaming across a link-layer handoff: a bulk FTP transfer runs while
// the mobile host switches access points under the same access router
// (the paper's Figure 4.11 scenario). Without buffering the 200 ms blackout
// costs a whole TCP timeout (1–1.5 s of silence); with the paper's
// §3.2.2.4 buffering the transfer continues seamlessly.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/handover"
)

func main() {
	for _, buffered := range []bool{false, true} {
		sim := handover.NewWLAN(handover.WLANConfig{Buffered: buffered, Seed: 1})
		if err := sim.Run(20 * time.Second); err != nil {
			log.Fatal(err)
		}
		rep := sim.Report()

		mode := "without buffering"
		if buffered {
			mode = "with the proposed buffering"
		}
		fmt.Printf("%s:\n", mode)
		fmt.Printf("  delivered: %.1f MB in 20 s\n", float64(rep.DeliveredBytes)/1e6)
		fmt.Printf("  TCP timeouts: %d, fast retransmits: %d\n", rep.Timeouts, rep.FastRetransmits)
		if len(rep.Handoffs) > 0 {
			h := rep.Handoffs[0]
			fmt.Printf("  handoff: link-layer only=%t, blackout %v at t=%.2fs\n",
				h.LinkLayerOnly, h.Attached-h.Detached, h.Detached.Seconds())
		}

		// Throughput dip around the handoff (the Figure 4.14 curve).
		fmt.Printf("  goodput around the handoff (Mb/s):")
		for _, p := range sim.Throughput() {
			if p.At >= 11*time.Second && p.At < 14*time.Second && p.At%(500*time.Millisecond) == 0 {
				fmt.Printf(" %.1f", p.BitsPerSecond/1e6)
			}
		}
		fmt.Print("\n\n")
	}
}
