// Quickstart: one mobile host walks from the previous access router's cell
// to the new one while three audio flows of different service classes
// stream to it. The enhanced buffer management scheme carries every packet
// across the 200 ms link-layer blackout.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/handover"
)

func main() {
	sim := handover.New(handover.Config{
		Scheme:               handover.Enhanced,
		RouterBufferPackets:  40,
		Alpha:                2,
		BufferRequestPackets: 20,
		Seed:                 1,
	})

	// Walk from x=50 m toward the new access point (at 212 m) at 10 m/s;
	// the handover triggers in the coverage overlap around x≈106 m.
	host := sim.AddMobileHost(handover.LinearPath(50, 10),
		handover.AudioFlow(handover.RealTime),
		handover.AudioFlow(handover.HighPriority),
		handover.AudioFlow(handover.BestEffort),
	)

	if err := sim.Run(12 * time.Second); err != nil {
		log.Fatal(err)
	}

	for _, h := range host.Handoffs() {
		fmt.Printf("handoff at t=%.2fs: blackout %v, buffers granted nar=%t par=%t\n",
			h.Detached.Seconds(), h.Attached-h.Detached, h.NARGranted, h.PARGranted)
	}
	for _, f := range sim.Report().Flows {
		fmt.Printf("%-14s sent=%d delivered=%d lost=%d  max delay=%v\n",
			f.Class, f.Sent, f.Delivered, f.Lost, f.MaxDelay.Round(time.Millisecond))
	}
}
