package handover

import (
	"time"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// CorridorConfig parameterizes the multi-router corridor scenario: N
// access routers in a row (212 m apart, one access point each, all under
// one mobility anchor point), with one mobile host walking the corridor
// end to end. The paper evaluates a single router pair; the corridor shows
// the protocol re-casting the PAR/NAR roles at every boundary.
type CorridorConfig struct {
	// Routers is the number of access routers (default 4, minimum 2).
	Routers int
	// Scheme, RouterBufferPackets, Alpha, BufferRequestPackets as in
	// Config.
	Scheme               Scheme
	RouterBufferPackets  int
	Alpha                int
	BufferRequestPackets int
	// L2HandoffDelay is the blackout (default 200 ms).
	L2HandoffDelay time.Duration
	// Seed drives the deterministic beacon phases.
	Seed int64
}

// CorridorSimulation is one assembled corridor run.
type CorridorSimulation struct {
	c *scenario.Corridor
}

// NewCorridor assembles the corridor with the given flow streaming from
// the correspondent node to the walking host.
func NewCorridor(cfg CorridorConfig, flow Flow) *CorridorSimulation {
	return &CorridorSimulation{c: scenario.NewCorridor(scenario.CorridorParams{
		Routers:        cfg.Routers,
		Scheme:         cfg.Scheme,
		PoolSize:       cfg.RouterBufferPackets,
		Alpha:          cfg.Alpha,
		BufferRequest:  cfg.BufferRequestPackets,
		L2HandoffDelay: sim.Duration(cfg.L2HandoffDelay),
		Seed:           cfg.Seed,
	}, scenario.FlowSpec{
		Class:    flow.Class,
		Size:     flow.PacketBytes,
		Interval: sim.Duration(flow.Interval),
	})}
}

// Run walks the host down the whole corridor with traffic flowing, then
// lets buffers drain.
func (s *CorridorSimulation) Run() error { return s.c.Run() }

// CorridorReport summarizes a corridor walk.
type CorridorReport struct {
	// Handoffs lists every boundary crossing in order.
	Handoffs []HandoffReport
	// Sent, Delivered and Lost account the single flow.
	Sent, Delivered, Lost uint64
}

// Report collects the walk's results.
func (s *CorridorSimulation) Report() CorridorReport {
	rep := CorridorReport{}
	for _, rec := range s.c.MH.Handoffs() {
		rep.Handoffs = append(rep.Handoffs, HandoffReport{
			Triggered:     time.Duration(rec.Triggered),
			Detached:      time.Duration(rec.Detached),
			Attached:      time.Duration(rec.Attached),
			Anticipated:   rec.Anticipated,
			LinkLayerOnly: rec.LinkLayerOnly,
			NARGranted:    rec.NARGranted,
			PARGranted:    rec.PARGranted,
		})
	}
	if f := s.c.Recorder.Flow(s.c.Flow); f != nil {
		rep.Sent = f.Sent
		rep.Delivered = f.Delivered
		rep.Lost = f.Lost()
	}
	return rep
}
