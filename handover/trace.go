package handover

import (
	"time"

	"repro/internal/trace"
)

// TraceEvent is one entry of a protocol trace.
type TraceEvent struct {
	At time.Duration
	// Kind is "control", "drop", "link-down", "link-up", "handoff",
	// "deliver" or "note".
	Kind string
	// Node is the emitting element ("par", "nar", "mh0", …).
	Node string
	// Detail is the human-readable payload.
	Detail string
	// Seq carries the packet sequence number for deliveries and drops,
	// -1 otherwise.
	Seq int64
}

// EnableTrace starts recording the protocol trace (control messages,
// drops, link transitions, handoffs, deliveries) for hosts added so far.
// Call it after AddMobileHost and before Run. The limit bounds the stored
// events (0 selects a large default).
func (s *Simulation) EnableTrace(limit int) {
	if s.traceLog != nil {
		return
	}
	s.traceLog = trace.NewLog(limit)
	s.tb.AttachTrace(s.traceLog)
}

// TraceEvents returns the recorded trace in time order (empty without
// EnableTrace).
func (s *Simulation) TraceEvents() []TraceEvent {
	if s.traceLog == nil {
		return nil
	}
	var out []TraceEvent
	for _, ev := range s.traceLog.Events() {
		out = append(out, TraceEvent{
			At:     time.Duration(ev.At),
			Kind:   ev.Kind.String(),
			Node:   ev.NodeName(),
			Detail: ev.DetailText(),
			Seq:    ev.Seq,
		})
	}
	return out
}
