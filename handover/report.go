package handover

import (
	"time"

	"repro/internal/scenario"
	"repro/internal/stats"
)

// FlowReport summarizes one flow at the end of a run.
type FlowReport struct {
	// Host indexes the mobile host (order of AddMobileHost calls); Index
	// is the flow's position within that host's flow list.
	Host, Index int
	Class       Class
	Sent        uint64
	Delivered   uint64
	Lost        uint64
	// MaxDelay, MeanDelay, P99Delay and Jitter summarize end-to-end
	// latency of delivered packets.
	MaxDelay  time.Duration
	MeanDelay time.Duration
	P99Delay  time.Duration
	Jitter    time.Duration
}

// HandoffReport describes one completed handoff.
type HandoffReport struct {
	Host int
	// Triggered, Detached and Attached are virtual times of the L2 source
	// trigger and the blackout bounds.
	Triggered time.Duration
	Detached  time.Duration
	Attached  time.Duration
	// Anticipated is false when the fast-handover signalling could not
	// complete before the old link was lost.
	Anticipated bool
	// LinkLayerOnly marks a same-router access-point switch.
	LinkLayerOnly bool
	// NARGranted/PARGranted report the buffer negotiation outcome.
	NARGranted bool
	PARGranted bool
}

// Report aggregates a run's measurements.
type Report struct {
	Flows    []FlowReport
	Handoffs []HandoffReport
	// DropsByLocation counts recorded drops by site: "par-buffer",
	// "nar-buffer", "par-policy", "lifetime", "air".
	DropsByLocation map[string]uint64
}

// TotalLost sums losses across flows.
func (r Report) TotalLost() uint64 {
	var total uint64
	for _, f := range r.Flows {
		total += f.Lost
	}
	return total
}

// LostByClass sums losses per service class.
func (r Report) LostByClass() map[Class]uint64 {
	out := make(map[Class]uint64)
	for _, f := range r.Flows {
		out[f.Class.Effective()] += f.Lost
	}
	return out
}

// Report collects the current measurements.
func (s *Simulation) Report() Report {
	rep := Report{DropsByLocation: make(map[string]uint64)}
	for hi, h := range s.hosts {
		for fi, id := range h.unit.Flows {
			f := s.tb.Recorder.Flow(id)
			if f == nil {
				continue
			}
			rep.Flows = append(rep.Flows, FlowReport{
				Host:      hi,
				Index:     fi,
				Class:     f.Class,
				Sent:      f.Sent,
				Delivered: f.Delivered,
				Lost:      f.Lost(),
				MaxDelay:  time.Duration(f.MaxDelay()),
				MeanDelay: time.Duration(f.MeanDelay()),
				P99Delay:  time.Duration(f.DelayPercentile(99)),
				Jitter:    time.Duration(f.Jitter()),
			})
		}
		for _, rec := range h.unit.MH.Handoffs() {
			rep.Handoffs = append(rep.Handoffs, HandoffReport{
				Host:          hi,
				Triggered:     time.Duration(rec.Triggered),
				Detached:      time.Duration(rec.Detached),
				Attached:      time.Duration(rec.Attached),
				Anticipated:   rec.Anticipated,
				LinkLayerOnly: rec.LinkLayerOnly,
				NARGranted:    rec.NARGranted,
				PARGranted:    rec.PARGranted,
			})
		}
	}
	for site, n := range s.tb.Recorder.SiteDrops() {
		if n > 0 {
			rep.DropsByLocation[stats.DropSite(site).String()] = n
		}
	}
	return rep
}

// Handoffs returns this host's completed handoffs.
func (h *Host) Handoffs() []HandoffReport {
	var out []HandoffReport
	for _, rec := range h.unit.MH.Handoffs() {
		out = append(out, HandoffReport{
			Triggered:     time.Duration(rec.Triggered),
			Detached:      time.Duration(rec.Detached),
			Attached:      time.Duration(rec.Attached),
			Anticipated:   rec.Anticipated,
			LinkLayerOnly: rec.LinkLayerOnly,
			NARGranted:    rec.NARGranted,
			PARGranted:    rec.PARGranted,
		})
	}
	return out
}

// RequestLinkBuffering asks the host's current access router to buffer
// its packets without a handoff — the paper's §3.3 protection against a
// temporarily poor wireless link. Release with ReleaseLinkBuffering.
func (h *Host) RequestLinkBuffering() bool { return h.unit.MH.RequestLinkBuffering() }

// ReleaseLinkBuffering drains a RequestLinkBuffering session.
func (h *Host) ReleaseLinkBuffering() bool { return h.unit.MH.ReleaseLinkBuffering() }

// InitiateHandover asks the infrastructure to move the host to the other
// access router — the network-initiated handover mode of the fast-handover
// protocol (the paper's evaluation only uses host-initiated handovers).
// The host must have heard the target's beacons for the unsolicited
// advertisement to be accepted. bufferPackets is the buffer space the
// network reserves on the host's behalf.
func (s *Simulation) InitiateHandover(h *Host, bufferPackets int) bool {
	if h.unit.MH.LCoA().Net == scenario.NetPAR {
		return s.tb.PAR.InitiateHandover(h.unit.MH.LCoA(), "ap-nar", bufferPackets)
	}
	return s.tb.NAR.InitiateHandover(h.unit.MH.LCoA(), "ap-par", bufferPackets)
}

// FlowStats returns the report for one of this host's flows.
func (h *Host) FlowStats(index int) (FlowReport, bool) {
	if index < 0 || index >= len(h.unit.Flows) {
		return FlowReport{}, false
	}
	f := h.sim.tb.Recorder.Flow(h.unit.Flows[index])
	if f == nil {
		return FlowReport{}, false
	}
	return FlowReport{
		Index:     index,
		Class:     f.Class,
		Sent:      f.Sent,
		Delivered: f.Delivered,
		Lost:      f.Lost(),
		MaxDelay:  time.Duration(f.MaxDelay()),
		MeanDelay: time.Duration(f.MeanDelay()),
		P99Delay:  time.Duration(f.DelayPercentile(99)),
		Jitter:    time.Duration(f.Jitter()),
	}, true
}
