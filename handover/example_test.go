package handover_test

import (
	"fmt"
	"time"

	"repro/handover"
)

// The smallest complete use of the library: one host, one handoff, three
// service classes.
func Example() {
	sim := handover.New(handover.Config{
		Scheme:               handover.Enhanced,
		RouterBufferPackets:  40,
		Alpha:                2,
		BufferRequestPackets: 20,
		Seed:                 1,
	})
	host := sim.AddMobileHost(handover.LinearPath(50, 10),
		handover.AudioFlow(handover.RealTime),
		handover.AudioFlow(handover.HighPriority),
		handover.AudioFlow(handover.BestEffort))
	if err := sim.Run(12 * time.Second); err != nil {
		panic(err)
	}
	rec := host.Handoffs()[0]
	fmt.Printf("handoffs: %d, blackout: %v, lost: %d\n",
		len(host.Handoffs()), rec.Attached-rec.Detached, sim.Report().TotalLost())
	// Output:
	// handoffs: 1, blackout: 200ms, lost: 0
}

// Comparing the paper's schemes on the same overloaded scenario.
func Example_schemes() {
	for _, scheme := range []struct {
		name    string
		scheme  handover.Scheme
		request int
	}{
		{"no-buffer", handover.NoBuffer, 0},
		{"original ", handover.OriginalFH, 12},
		{"dual     ", handover.Dual, 6},
	} {
		sim := handover.New(handover.Config{
			Scheme:               scheme.scheme,
			RouterBufferPackets:  50,
			BufferRequestPackets: scheme.request,
			Seed:                 1,
		})
		for i := 0; i < 8; i++ {
			sim.AddMobileHost(handover.LinearPath(50, 10),
				handover.AudioFlow(handover.Unspecified))
		}
		if err := sim.Run(12 * time.Second); err != nil {
			panic(err)
		}
		lost := sim.Report().TotalLost()
		fmt.Printf("%s lossless=%v\n", scheme.name, lost == 0)
	}
	// Output:
	// no-buffer lossless=false
	// original  lossless=false
	// dual      lossless=true
}

// TCP across a link-layer handoff, with and without the paper's buffering.
func ExampleNewWLAN() {
	for _, buffered := range []bool{false, true} {
		sim := handover.NewWLAN(handover.WLANConfig{Buffered: buffered, Seed: 1})
		if err := sim.Run(20 * time.Second); err != nil {
			panic(err)
		}
		rep := sim.Report()
		fmt.Printf("buffered=%v timeouts=%d\n", buffered, rep.Timeouts)
	}
	// Output:
	// buffered=false timeouts=1
	// buffered=true timeouts=0
}

// Walking a corridor of access routers: the roles re-cast at every
// boundary.
func ExampleNewCorridor() {
	sim := handover.NewCorridor(handover.CorridorConfig{
		Routers:              4,
		Scheme:               handover.Enhanced,
		RouterBufferPackets:  40,
		Alpha:                2,
		BufferRequestPackets: 20,
		Seed:                 1,
	}, handover.AudioFlow(handover.HighPriority))
	if err := sim.Run(); err != nil {
		panic(err)
	}
	rep := sim.Report()
	fmt.Printf("handoffs: %d, lost: %d\n", len(rep.Handoffs), rep.Lost)
	// Output:
	// handoffs: 3, lost: 0
}
