// Package handover is the public API of the fast-handover buffer-management
// library. It reproduces the system of "An Enhanced Buffer Management
// Scheme for Fast Handover Protocol" (Yao, 2003/2004): Mobile IPv6 fast
// handovers between two access routers with negotiated, class-aware
// buffering at both the previous and the new access router, plus buffering
// support for pure link-layer (same-router) handoffs.
//
// A Simulation assembles the paper's reference network — a correspondent
// node, a Hierarchical Mobile IPv6 mobility anchor point, two access
// routers with one 802.11-style access point each — and lets the caller
// place mobile hosts with deterministic motion and constant-bit-rate flows
// on it:
//
//	sim := handover.New(handover.Config{
//		Scheme:               handover.Enhanced,
//		RouterBufferPackets:  40,
//		BufferRequestPackets: 20,
//	})
//	host := sim.AddMobileHost(handover.LinearPath(50, 10),
//		handover.AudioFlow(handover.RealTime),
//		handover.AudioFlow(handover.HighPriority))
//	sim.Run(12 * time.Second)
//	report := sim.Report()
//
// Everything is a deterministic discrete-event simulation: same Config and
// seed, same results.
package handover

import (
	"time"

	"repro/internal/core"
	"repro/internal/inet"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wireless"
)

// Scheme selects the buffering behaviour during handoffs.
type Scheme = core.Scheme

// The available schemes, from the paper's evaluation.
const (
	// NoBuffer is plain fast handover: redirected packets are transmitted
	// into the link-layer blackout and lost.
	NoBuffer = core.SchemeFHNoBuffer
	// OriginalFH is the original fast-handover buffering: everything at
	// the new access router.
	OriginalFH = core.SchemeFHOriginal
	// PAROnly buffers everything at the previous access router.
	PAROnly = core.SchemePAROnly
	// Dual is the paper's scheme with classification disabled: both
	// routers' buffers, one class.
	Dual = core.SchemeDual
	// Enhanced is the paper's full scheme: dual buffering with per-class
	// operations (Table 3.3).
	Enhanced = core.SchemeEnhanced
	// SafetyNet is the bicast competitor from the related SafetyNet work:
	// no router buffering — the anchor duplicates toward both access
	// routers during handoff and the host's selective report tells the
	// new router which gap to forward.
	SafetyNet = core.SchemeSafetyNet
)

// Class is the class-of-service field of Table 3.1.
type Class = inet.Class

// The service classes.
const (
	// Unspecified is treated as best effort.
	Unspecified = inet.ClassUnspecified
	// RealTime packets are worthless when late; they are buffered at the
	// new access router and never pay the inter-router transfer delay.
	RealTime = inet.ClassRealTime
	// HighPriority packets are protected from loss: buffered at the new
	// router with overflow to the previous one.
	HighPriority = inet.ClassHighPriority
	// BestEffort packets are buffered at the previous router while space
	// remains above the α threshold, and sacrificed first.
	BestEffort = inet.ClassBestEffort
)

// Config parameterizes the reference network. Zero values select the
// paper's settings.
type Config struct {
	// Scheme is the buffering scheme on both access routers (default
	// Enhanced).
	Scheme Scheme
	// RouterBufferPackets is each access router's handover buffer pool
	// (the paper uses 20–50).
	RouterBufferPackets int
	// Alpha is the best-effort admission threshold at the previous access
	// router.
	Alpha int
	// BufferRequestPackets is the per-handoff buffer space each mobile
	// host requests from each router. Zero disables buffering requests.
	BufferRequestPackets int
	// ARLinkDelay is the direct previous-router↔new-router link delay
	// (default 2 ms; the paper also evaluates 50 ms).
	ARLinkDelay time.Duration
	// L2HandoffDelay is the link-layer blackout (default 200 ms; measured
	// 60–400 ms in the paper's references).
	L2HandoffDelay time.Duration
	// RAInterval is the router-advertisement beacon period.
	RAInterval time.Duration
	// PartialGrants lets routers grant whatever buffer space remains
	// instead of refusing requests they cannot cover in full (the paper's
	// "more precise buffer allocation" future-work item).
	PartialGrants bool
	// AuthKey, when non-empty, turns on HMAC authentication of all
	// handover signalling (the paper's security future-work item): both
	// routers and every host share the key, and unauthenticated handovers
	// are refused.
	AuthKey []byte
	// PlainMobileIP replaces fast handover with the classic Mobile IP
	// baseline: movement detection by advertisements, an immediate link
	// switch, registration afterwards — no anticipation, no buffering.
	PlainMobileIP bool
	// HomeAgentDelay, when positive, anchors hosts at a home agent this
	// far (one-way) behind the MAP instead of at the MAP itself.
	HomeAgentDelay time.Duration
	// HysteresisDB is the signal-strength margin a new access point must
	// beat the current one by before a handover triggers (anti-flapping;
	// spends the coverage-overlap budget).
	HysteresisDB float64
	// ControlLossRate, when positive, drops each handover-signalling packet
	// on the access links with this probability (seeded, per-interface
	// streams) and enables the retransmission paths for unacknowledged
	// messages. Data packets are never injected with loss.
	ControlLossRate float64
	// Seed drives the deterministic beacon phases and fault streams.
	Seed int64
}

// Flow describes one constant-bit-rate stream from the correspondent node
// to a mobile host.
type Flow struct {
	// Class is the service class stamped on every packet.
	Class Class
	// PacketBytes is the packet size (160 in the paper).
	PacketBytes int
	// Interval is the inter-packet spacing (20 ms in the paper: 64 kb/s).
	Interval time.Duration
}

// AudioFlow returns the paper's canonical 64 kb/s audio flow with the
// given class.
func AudioFlow(class Class) Flow {
	return Flow{Class: class, PacketBytes: 160, Interval: 20 * time.Millisecond}
}

// Motion is a deterministic trajectory along the one-dimensional track the
// access points sit on (previous AP at 0 m, new AP at 212 m).
type Motion = wireless.Motion

// Stationary keeps the host at a fixed position.
func Stationary(pos float64) Motion { return wireless.Fixed(pos) }

// LinearPath moves from start at speed m/s (negative moves backward).
func LinearPath(start, speed float64) Motion {
	return wireless.Linear{Start: start, Speed: speed}
}

// PingPongPath bounces between a and b at speed m/s, starting at a.
func PingPongPath(a, b, speed float64) Motion {
	return wireless.PingPong{A: a, B: b, Speed: speed}
}

// Simulation is one assembled run of the reference network.
type Simulation struct {
	tb       *scenario.Testbed
	hosts    []*Host
	traceLog *trace.Log
}

// New assembles the reference network.
func New(cfg Config) *Simulation {
	mobility := core.MobilityFastHandover
	if cfg.PlainMobileIP {
		mobility = core.MobilityPlainMIP
	}
	return &Simulation{tb: scenario.NewTestbed(scenario.Params{
		Scheme:          cfg.Scheme,
		PoolSize:        cfg.RouterBufferPackets,
		Alpha:           cfg.Alpha,
		BufferRequest:   cfg.BufferRequestPackets,
		ARLinkDelay:     sim.Duration(cfg.ARLinkDelay),
		L2HandoffDelay:  sim.Duration(cfg.L2HandoffDelay),
		RAInterval:      sim.Duration(cfg.RAInterval),
		PartialGrants:   cfg.PartialGrants,
		AuthKey:         cfg.AuthKey,
		Mobility:        mobility,
		HomeAgentDelay:  sim.Duration(cfg.HomeAgentDelay),
		HysteresisDB:    cfg.HysteresisDB,
		ControlLossRate: cfg.ControlLossRate,
		Seed:            cfg.Seed,
	})}
}

// Host is one mobile host with its flows.
type Host struct {
	unit *scenario.MHUnit
	sim  *Simulation
}

// AddMobileHost places a mobile host on the previous access router's cell
// with the given motion and flows. Traffic starts when Run is called.
func (s *Simulation) AddMobileHost(motion Motion, flows ...Flow) *Host {
	specs := make([]scenario.FlowSpec, len(flows))
	for i, f := range flows {
		specs[i] = scenario.FlowSpec{
			Class:    f.Class,
			Size:     f.PacketBytes,
			Interval: sim.Duration(f.Interval),
		}
	}
	unit := s.tb.AddMobileHost(motion, specs)
	h := &Host{unit: unit, sim: s}
	s.hosts = append(s.hosts, h)
	return h
}

// Run starts all traffic, advances the simulation by d, then stops traffic
// and lets buffers drain for two more virtual seconds. Run may be called
// repeatedly to extend a simulation.
func (s *Simulation) Run(d time.Duration) error {
	s.tb.StartTraffic()
	horizon := s.tb.Engine.Now() + sim.Duration(d)
	if err := s.tb.Engine.Run(horizon); err != nil {
		return err
	}
	s.tb.StopTraffic()
	return s.tb.Engine.Run(horizon + 2*sim.Second)
}

// Now returns the current virtual time.
func (s *Simulation) Now() time.Duration {
	return time.Duration(s.tb.Engine.Now())
}
