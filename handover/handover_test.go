package handover_test

import (
	"testing"
	"time"

	"repro/handover"
)

func TestQuickstartScenario(t *testing.T) {
	sim := handover.New(handover.Config{
		Scheme:               handover.Enhanced,
		RouterBufferPackets:  40,
		Alpha:                2,
		BufferRequestPackets: 20,
		Seed:                 1,
	})
	host := sim.AddMobileHost(handover.LinearPath(50, 10),
		handover.AudioFlow(handover.RealTime),
		handover.AudioFlow(handover.HighPriority),
		handover.AudioFlow(handover.BestEffort),
	)
	if err := sim.Run(12 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}

	recs := host.Handoffs()
	if len(recs) != 1 {
		t.Fatalf("handoffs = %d, want 1", len(recs))
	}
	if !recs[0].Anticipated || recs[0].LinkLayerOnly {
		t.Errorf("unexpected handoff shape: %+v", recs[0])
	}
	if blackout := recs[0].Attached - recs[0].Detached; blackout != 200*time.Millisecond {
		t.Errorf("blackout = %v, want 200ms", blackout)
	}

	rep := sim.Report()
	if len(rep.Flows) != 3 {
		t.Fatalf("flows = %d, want 3", len(rep.Flows))
	}
	if rep.TotalLost() != 0 {
		t.Errorf("lost %d packets with ample buffers", rep.TotalLost())
	}
	for _, f := range rep.Flows {
		if f.Sent == 0 || f.Delivered == 0 {
			t.Errorf("flow %d/%d never flowed: %+v", f.Host, f.Index, f)
		}
		if f.MaxDelay < 100*time.Millisecond {
			t.Errorf("flow %d/%d max delay %v; expected a blackout's worth of buffering delay",
				f.Host, f.Index, f.MaxDelay)
		}
	}
}

func TestSchemesAreOrderedByLoss(t *testing.T) {
	lossFor := func(scheme handover.Scheme, request int) uint64 {
		sim := handover.New(handover.Config{
			Scheme:               scheme,
			RouterBufferPackets:  50,
			BufferRequestPackets: request,
			Seed:                 1,
		})
		for i := 0; i < 8; i++ {
			sim.AddMobileHost(handover.LinearPath(50, 10),
				handover.AudioFlow(handover.Unspecified))
		}
		if err := sim.Run(12 * time.Second); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return sim.Report().TotalLost()
	}
	noBuffer := lossFor(handover.NoBuffer, 0)
	original := lossFor(handover.OriginalFH, 12)
	dual := lossFor(handover.Dual, 6)
	if original >= noBuffer {
		t.Errorf("original FH lost %d, no-buffer lost %d; buffering did not help", original, noBuffer)
	}
	if dual >= original {
		t.Errorf("dual lost %d, original lost %d; dual buffering did not help", dual, original)
	}
	// SafetyNet claims no buffer space at all and still beats unbuffered
	// fast handover: the anchor's duplicates cover the blackout.
	safetynet := lossFor(handover.SafetyNet, 0)
	if safetynet >= noBuffer {
		t.Errorf("safetynet lost %d, no-buffer lost %d; bicast did not help", safetynet, noBuffer)
	}
}

func TestFlowStats(t *testing.T) {
	sim := handover.New(handover.Config{
		Scheme:               handover.Enhanced,
		RouterBufferPackets:  40,
		BufferRequestPackets: 20,
	})
	host := sim.AddMobileHost(handover.Stationary(10), handover.AudioFlow(handover.RealTime))
	if err := sim.Run(2 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	f, ok := host.FlowStats(0)
	if !ok {
		t.Fatal("FlowStats(0) missing")
	}
	if f.Sent == 0 || f.Lost != 0 {
		t.Errorf("stationary host flow: %+v", f)
	}
	if _, ok := host.FlowStats(5); ok {
		t.Error("FlowStats(5) should not exist")
	}
	if sim.Now() < 2*time.Second {
		t.Errorf("Now() = %v, want ≥ 2s", sim.Now())
	}
}

func TestWLANBufferedVsUnbuffered(t *testing.T) {
	run := func(buffered bool) handover.TCPReport {
		sim := handover.NewWLAN(handover.WLANConfig{Buffered: buffered, Seed: 1})
		if err := sim.Run(20 * time.Second); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return sim.Report()
	}
	buf := run(true)
	unbuf := run(false)
	if buf.Timeouts != 0 {
		t.Errorf("buffered run had %d timeouts", buf.Timeouts)
	}
	if unbuf.Timeouts == 0 {
		t.Error("unbuffered run had no timeout")
	}
	if buf.DeliveredBytes <= unbuf.DeliveredBytes {
		t.Errorf("buffered %d ≤ unbuffered %d bytes", buf.DeliveredBytes, unbuf.DeliveredBytes)
	}
	if len(buf.Handoffs) != 1 || !buf.Handoffs[0].LinkLayerOnly {
		t.Errorf("handoffs = %+v, want one link-layer handoff", buf.Handoffs)
	}
}

func TestWLANThroughputSeries(t *testing.T) {
	sim := handover.NewWLAN(handover.WLANConfig{Buffered: true, Seed: 1})
	if err := sim.Run(15 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	pts := sim.Throughput()
	if len(pts) < 100 {
		t.Fatalf("throughput series has %d points", len(pts))
	}
	var peak float64
	for _, p := range pts {
		if p.BitsPerSecond > peak {
			peak = p.BitsPerSecond
		}
	}
	// The paper's Figure 4.14 peaks around 8 Mb/s on the 11 Mb/s WLAN; a
	// post-handoff drain burst may overshoot one 100 ms bucket slightly.
	if peak < 5_000_000 || peak > 13_000_000 {
		t.Errorf("peak goodput %.1f Mb/s outside the WLAN envelope", peak/1e6)
	}
}

func TestLostByClass(t *testing.T) {
	sim := handover.New(handover.Config{
		Scheme:               handover.Enhanced,
		RouterBufferPackets:  20,
		Alpha:                6,
		BufferRequestPackets: 20,
		Seed:                 1,
	})
	sim.AddMobileHost(handover.LinearPath(50, 10),
		handover.Flow{Class: handover.RealTime, PacketBytes: 160, Interval: 5 * time.Millisecond},
		handover.Flow{Class: handover.HighPriority, PacketBytes: 160, Interval: 5 * time.Millisecond},
		handover.Flow{Class: handover.BestEffort, PacketBytes: 160, Interval: 5 * time.Millisecond},
	)
	if err := sim.Run(12 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	byClass := sim.Report().LostByClass()
	if byClass[handover.HighPriority] >= byClass[handover.BestEffort] {
		t.Errorf("high-priority lost %d ≥ best-effort %d",
			byClass[handover.HighPriority], byClass[handover.BestEffort])
	}
}

func TestPlainMobileIPBaseline(t *testing.T) {
	run := func(plain bool, haDelay time.Duration) (lost uint64) {
		sim := handover.New(handover.Config{
			Scheme:               handover.Enhanced,
			RouterBufferPackets:  40,
			BufferRequestPackets: 20,
			PlainMobileIP:        plain,
			HomeAgentDelay:       haDelay,
			Seed:                 1,
		})
		sim.AddMobileHost(handover.LinearPath(50, 10), handover.AudioFlow(handover.HighPriority))
		if err := sim.Run(12 * time.Second); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return sim.Report().TotalLost()
	}
	haDelay := 50 * time.Millisecond
	plain := run(true, haDelay)
	fast := run(false, haDelay)
	if plain <= fast {
		t.Errorf("plain Mobile IP lost %d ≤ fast handover's %d", plain, fast)
	}
	// Even buffered fast handover pays the distant anchor's binding-update
	// latency — a few packets die between release and re-registration.
	// With the local MAP anchor (the hierarchical deployment) it is
	// lossless, which is exactly the paper's Chapter 2 argument.
	local := run(false, 0)
	if local != 0 {
		t.Errorf("fast handover with a local anchor lost %d", local)
	}
	if fast == 0 {
		t.Error("distant anchor cost nothing; binding-update latency unmodelled?")
	}
}

func TestAuthKeyEndToEnd(t *testing.T) {
	sim := handover.New(handover.Config{
		Scheme:               handover.Enhanced,
		RouterBufferPackets:  40,
		BufferRequestPackets: 20,
		AuthKey:              []byte("shared-domain-key"),
		Seed:                 1,
	})
	sim.AddMobileHost(handover.LinearPath(50, 10), handover.AudioFlow(handover.HighPriority))
	if err := sim.Run(12 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rep := sim.Report()
	if len(rep.Handoffs) != 1 || !rep.Handoffs[0].Anticipated {
		t.Fatalf("authenticated handoff did not complete: %+v", rep.Handoffs)
	}
	if rep.TotalLost() != 0 {
		t.Errorf("lost %d packets", rep.TotalLost())
	}
}

func TestPartialGrantsConfig(t *testing.T) {
	run := func(partial bool) uint64 {
		sim := handover.New(handover.Config{
			Scheme:               handover.OriginalFH,
			RouterBufferPackets:  50,
			BufferRequestPackets: 12,
			PartialGrants:        partial,
			Seed:                 1,
		})
		for i := 0; i < 6; i++ {
			sim.AddMobileHost(handover.LinearPath(50, 10), handover.AudioFlow(handover.Unspecified))
		}
		if err := sim.Run(12 * time.Second); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return sim.Report().TotalLost()
	}
	if p, s := run(true), run(false); p >= s {
		t.Errorf("partial grants lost %d ≥ strict %d", p, s)
	}
}

func TestReportDelayAggregates(t *testing.T) {
	sim := handover.New(handover.Config{
		Scheme:               handover.Enhanced,
		RouterBufferPackets:  40,
		BufferRequestPackets: 20,
	})
	sim.AddMobileHost(handover.LinearPath(50, 10), handover.AudioFlow(handover.RealTime))
	if err := sim.Run(12 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	f := sim.Report().Flows[0]
	if f.P99Delay < f.MeanDelay || f.MaxDelay < f.P99Delay {
		t.Errorf("delay aggregates inconsistent: mean=%v p99=%v max=%v",
			f.MeanDelay, f.P99Delay, f.MaxDelay)
	}
	if f.Jitter == 0 {
		t.Error("jitter zero across a handoff; implausible")
	}
}

func TestCorridorPublicAPI(t *testing.T) {
	sim := handover.NewCorridor(handover.CorridorConfig{
		Routers:              4,
		Scheme:               handover.Enhanced,
		RouterBufferPackets:  40,
		Alpha:                2,
		BufferRequestPackets: 20,
		Seed:                 1,
	}, handover.AudioFlow(handover.HighPriority))
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rep := sim.Report()
	if len(rep.Handoffs) != 3 {
		t.Fatalf("handoffs = %d, want 3 (four routers)", len(rep.Handoffs))
	}
	for i, h := range rep.Handoffs {
		if !h.Anticipated || !h.NARGranted {
			t.Errorf("handoff %d: %+v", i, h)
		}
	}
	if rep.Lost != 0 {
		t.Errorf("lost %d of %d across the corridor", rep.Lost, rep.Sent)
	}
}

func TestTraceAPI(t *testing.T) {
	sim := handover.New(handover.Config{
		Scheme:               handover.Enhanced,
		RouterBufferPackets:  40,
		BufferRequestPackets: 20,
		Seed:                 1,
	})
	host := sim.AddMobileHost(handover.LinearPath(50, 10), handover.AudioFlow(handover.RealTime))
	_ = host
	if got := sim.TraceEvents(); got != nil {
		t.Fatal("trace before EnableTrace should be empty")
	}
	sim.EnableTrace(0)
	sim.EnableTrace(0) // idempotent
	if err := sim.Run(12 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	events := sim.TraceEvents()
	if len(events) == 0 {
		t.Fatal("no trace events")
	}
	kinds := make(map[string]int)
	for _, ev := range events {
		kinds[ev.Kind]++
	}
	for _, want := range []string{"control", "link-down", "link-up", "handoff", "deliver"} {
		if kinds[want] == 0 {
			t.Errorf("trace missing %q events (have %v)", want, kinds)
		}
	}
}

func TestNetworkInitiatedPublicAPI(t *testing.T) {
	sim := handover.New(handover.Config{
		Scheme:               handover.Enhanced,
		RouterBufferPackets:  40,
		BufferRequestPackets: 20,
		HysteresisDB:         3,
		Seed:                 1,
	})
	host := sim.AddMobileHost(handover.Stationary(104), handover.AudioFlow(handover.HighPriority))
	// Let the host hear beacons first.
	if err := sim.Run(3 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !sim.InitiateHandover(host, 20) {
		t.Fatal("InitiateHandover refused")
	}
	if err := sim.Run(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	recs := host.Handoffs()
	if len(recs) != 1 || !recs[0].NARGranted {
		t.Fatalf("handoffs = %+v", recs)
	}
	if sim.Report().TotalLost() != 0 {
		t.Errorf("lost %d packets", sim.Report().TotalLost())
	}
}
