package handover

import (
	"time"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// WLANConfig parameterizes the single-router WLAN scenario (the paper's
// Figure 4.11): one access router with two access points and an FTP/TCP
// transfer from the wired correspondent node to a mobile host that walks
// from one cell to the other.
type WLANConfig struct {
	// Buffered selects the paper's §3.2.2.4 link-layer handoff buffering;
	// false reproduces the plain handoff with its TCP timeout stall.
	Buffered bool
	// RouterBufferPackets is the router's buffer pool (default 200).
	RouterBufferPackets int
	// L2HandoffDelay is the blackout (default 200 ms).
	L2HandoffDelay time.Duration
	// MSS is the TCP segment payload size (default 1460).
	MSS int
	// NewReno enables partial-ACK recovery (default: classic Reno, as the
	// paper simulated).
	NewReno bool
	// Seed drives the deterministic beacon phases.
	Seed int64
}

// TCPSimulation is one assembled WLAN run.
type TCPSimulation struct {
	tb *scenario.WLANTestbed
}

// NewWLAN assembles the single-router WLAN scenario.
func NewWLAN(cfg WLANConfig) *TCPSimulation {
	return &TCPSimulation{tb: scenario.NewWLANTestbed(scenario.WLANParams{
		Buffered:       cfg.Buffered,
		PoolSize:       cfg.RouterBufferPackets,
		L2HandoffDelay: sim.Duration(cfg.L2HandoffDelay),
		MSS:            cfg.MSS,
		NewReno:        cfg.NewReno,
		Seed:           cfg.Seed,
	})}
}

// Run starts the bulk transfer and advances the simulation by d.
func (s *TCPSimulation) Run(d time.Duration) error {
	return s.tb.Run(s.tb.Engine.Now() + sim.Duration(d))
}

// TCPReport summarizes the transfer.
type TCPReport struct {
	// DeliveredBytes is the in-order goodput.
	DeliveredBytes uint64
	// Timeouts counts sender RTO firings (zero with buffering, per the
	// paper).
	Timeouts uint64
	// FastRetransmits counts dup-ACK recoveries.
	FastRetransmits uint64
	// Handoffs lists the host's handoffs.
	Handoffs []HandoffReport
}

// Report collects the current state.
func (s *TCPSimulation) Report() TCPReport {
	rep := TCPReport{
		DeliveredBytes:  s.tb.Receiver.Delivered(),
		Timeouts:        s.tb.Sender.Timeouts(),
		FastRetransmits: s.tb.Sender.FastRetransmits(),
	}
	for _, rec := range s.tb.MH.Handoffs() {
		rep.Handoffs = append(rep.Handoffs, HandoffReport{
			Triggered:     time.Duration(rec.Triggered),
			Detached:      time.Duration(rec.Detached),
			Attached:      time.Duration(rec.Attached),
			Anticipated:   rec.Anticipated,
			LinkLayerOnly: rec.LinkLayerOnly,
			NARGranted:    rec.NARGranted,
			PARGranted:    rec.PARGranted,
		})
	}
	return rep
}

// Throughput returns the receiver's goodput series: (time, bits/s) pairs
// in 100 ms buckets — the paper's Figure 4.14 curve.
func (s *TCPSimulation) Throughput() []ThroughputPoint {
	var out []ThroughputPoint
	for _, p := range s.tb.Receiver.Goodput.Rate() {
		out = append(out, ThroughputPoint{
			At:            time.Duration(p.At),
			BitsPerSecond: p.Value,
		})
	}
	return out
}

// ThroughputPoint is one bucket of the goodput series.
type ThroughputPoint struct {
	At            time.Duration
	BitsPerSecond float64
}
