package stats

import (
	"strconv"
	"sync"
	"sync/atomic"
)

// DropSite is an interned drop-location identifier. Recorders count drops
// in dense arrays indexed by DropSite instead of string-keyed maps, so the
// per-drop cost is one array increment. The open `where string` API keeps
// working: Recorder.Dropped interns its argument, and DropSite.String
// returns the original label, so rendered reports are unchanged.
//
// Sites are interned in a process-wide table (copy-on-write, lock-free
// reads) so the same label maps to the same DropSite in every recorder and
// trace log, including replicas fanned across runner workers.
type DropSite uint32

// Canonical drop sites, preregistered in the order reports enumerate them.
// The labels mirror the core package's DropAt*/DropOn* constants and the
// scenario package's DropOnAir; a cross-package test pins the pairing.
const (
	// SitePARBuffer is a drop inside the previous access router's buffer.
	SitePARBuffer DropSite = iota
	// SiteNARBuffer is a drop inside the new access router's buffer.
	SiteNARBuffer
	// SitePARPolicy is a best-effort packet refused by the PAR's
	// classification policy.
	SitePARPolicy
	// SiteLifetime is a buffered packet expired by the session lifetime.
	SiteLifetime
	// SiteAir is a packet lost on the wireless hop.
	SiteAir
	// SiteLinkQueue is a tail drop on a wired link's transmit queue.
	SiteLinkQueue
	// SiteAirUplink is an uplink packet discarded by a station's radio:
	// sent while detached, uplink queue overflow, or the NIC-reset queue
	// flush on link-down.
	SiteAirUplink

	numCanonicalSites
)

// siteTable is an immutable snapshot of the interner. Lookups load the
// current snapshot atomically; interning a new name installs a fresh copy
// under the mutex.
type siteTable struct {
	byName map[string]DropSite
	names  []string
}

var (
	siteMu    sync.Mutex
	siteTab   atomic.Pointer[siteTable]
	canonical = []string{
		SitePARBuffer: "par-buffer",
		SiteNARBuffer: "nar-buffer",
		SitePARPolicy: "par-policy",
		SiteLifetime:  "lifetime",
		SiteAir:       "air",
		SiteLinkQueue: "link-queue",
		SiteAirUplink: "air-uplink",
	}
)

func init() {
	t := &siteTable{byName: make(map[string]DropSite, len(canonical))}
	for id, name := range canonical {
		t.byName[name] = DropSite(id)
		t.names = append(t.names, name)
	}
	siteTab.Store(t)
}

// InternSite returns the DropSite for a label, interning it on first use.
// Interning an already-known label is lock-free and allocation-free.
func InternSite(name string) DropSite {
	if id, ok := siteTab.Load().byName[name]; ok {
		return id
	}
	siteMu.Lock()
	defer siteMu.Unlock()
	old := siteTab.Load()
	if id, ok := old.byName[name]; ok {
		return id
	}
	next := &siteTable{
		byName: make(map[string]DropSite, len(old.byName)+1),
		names:  make([]string, len(old.names), len(old.names)+1),
	}
	for k, v := range old.byName {
		next.byName[k] = v
	}
	copy(next.names, old.names)
	id := DropSite(len(next.names))
	next.names = append(next.names, name)
	next.byName[name] = id
	siteTab.Store(next)
	return id
}

// LookupSite returns the DropSite for a label without interning it.
func LookupSite(name string) (DropSite, bool) {
	id, ok := siteTab.Load().byName[name]
	return id, ok
}

// String returns the label the site was interned under.
func (s DropSite) String() string {
	names := siteTab.Load().names
	if int(s) < len(names) {
		return names[s]
	}
	return "site(" + strconv.FormatUint(uint64(s), 10) + ")"
}

// NumDropSites returns how many distinct sites have been interned so far
// (at least the canonical set).
func NumDropSites() int { return len(siteTab.Load().names) }
