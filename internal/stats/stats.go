// Package stats collects the measurements the thesis' figures are built
// from: per-flow send/deliver/drop counts, per-packet end-to-end delay
// samples, and bucketed time series (throughput).
//
// The recording hot path is O(1) and allocation-free in steady state:
// flows live in a dense table indexed by a small interned flow index, and
// drops are counted in arrays indexed by interned DropSite instead of
// string-keyed maps. Two modes govern the delay state: ModeExact (the
// default) retains every DelaySample, exactly as the figures require;
// ModeStreaming replaces the retained samples with O(1) running aggregates
// plus a streaming DelayDigest (P² percentile estimators and a fixed
// power-of-two histogram), so metro-scale runs hold O(flows) rather than
// O(packets) delay state.
//
// All collectors run on the single simulation goroutine; none are safe for
// concurrent use.
package stats

import (
	"math"
	"sort"

	"repro/internal/inet"
	"repro/internal/sim"
)

// Mode selects how a Recorder retains per-flow delay state.
type Mode uint8

const (
	// ModeExact retains every delivered packet's DelaySample. All delay
	// queries are exact; memory grows O(packets).
	ModeExact Mode = iota
	// ModeStreaming retains only running aggregates and a DelayDigest per
	// flow. Max/mean/jitter stay exact (they are running computations
	// either way); percentiles are estimates. Memory stays O(flows).
	ModeStreaming
)

// DelaySample is one delivered packet's end-to-end latency.
type DelaySample struct {
	// Seq is the application sequence number.
	Seq uint32
	// At is the delivery instant.
	At sim.Time
	// Delay is delivery time minus creation time.
	Delay sim.Time
}

// FlowStats aggregates one application flow.
type FlowStats struct {
	Flow  inet.FlowID
	Class inet.Class

	Sent      uint64
	Delivered uint64

	// Delays retains every delivery sample in ModeExact, in delivery (and
	// therefore At) order; it stays empty in ModeStreaming.
	Delays []DelaySample

	// drops counts packets reported lost, indexed by DropSite.
	drops []uint64

	// Running delay aggregates, maintained on every Delivered in both
	// modes so max/mean/jitter are O(1) queries at any scale.
	delayCount uint64
	delaySum   sim.Time
	delayMax   sim.Time
	lastDelay  sim.Time
	jitterSum  sim.Time

	// digest summarizes delays in ModeStreaming; nil in ModeExact.
	digest *DelayDigest

	// sortedDelays caches the ascending delays for percentile queries;
	// rebuilt only when Delays has grown since the last query.
	sortedDelays []sim.Time
}

// DroppedTotal sums drops across locations.
func (f *FlowStats) DroppedTotal() uint64 {
	var total uint64
	for _, n := range f.drops {
		total += n
	}
	return total
}

// DroppedAt returns the drops recorded at a location label.
func (f *FlowStats) DroppedAt(where string) uint64 {
	site, ok := LookupSite(where)
	if !ok {
		return 0
	}
	return f.DroppedAtSite(site)
}

// DroppedAtSite returns the drops recorded at an interned site.
func (f *FlowStats) DroppedAtSite(site DropSite) uint64 {
	if int(site) < len(f.drops) {
		return f.drops[site]
	}
	return 0
}

// addDrop charges one drop to a site, growing the counter array on first
// use of a new site (steady state: a single array increment).
func (f *FlowStats) addDrop(site DropSite) {
	for int(site) >= len(f.drops) {
		f.drops = append(f.drops, 0)
	}
	f.drops[site]++
}

// Lost returns sent minus delivered: every packet unaccounted for at the
// end of a run, whether it died in a buffer, on the air, or in a queue.
func (f *FlowStats) Lost() uint64 {
	if f.Delivered > f.Sent {
		return 0
	}
	return f.Sent - f.Delivered
}

// DelayCount returns how many delay observations the flow has, in either
// mode (including manually appended Delays).
func (f *FlowStats) DelayCount() uint64 {
	if f.delayCount > 0 {
		return f.delayCount
	}
	return uint64(len(f.Delays))
}

// observeDelay maintains the running aggregates.
func (f *FlowStats) observeDelay(d sim.Time) {
	f.delayCount++
	f.delaySum += d
	if d > f.delayMax {
		f.delayMax = d
	}
	if f.delayCount > 1 {
		diff := d - f.lastDelay
		if diff < 0 {
			diff = -diff
		}
		f.jitterSum += diff
	}
	f.lastDelay = d
}

// MaxDelay returns the largest recorded delay (zero when empty).
func (f *FlowStats) MaxDelay() sim.Time {
	if f.delayCount > 0 {
		return f.delayMax
	}
	var m sim.Time
	for _, s := range f.Delays {
		if s.Delay > m {
			m = s.Delay
		}
	}
	return m
}

// MeanDelay returns the average recorded delay (zero when empty).
func (f *FlowStats) MeanDelay() sim.Time {
	if f.delayCount > 0 {
		return f.delaySum / sim.Time(f.delayCount)
	}
	if len(f.Delays) == 0 {
		return 0
	}
	var sum sim.Time
	for _, s := range f.Delays {
		sum += s.Delay
	}
	return sum / sim.Time(len(f.Delays))
}

// Recorder is the central measurement sink for one simulation run.
type Recorder struct {
	mode Mode
	// flows is the dense flow table in first-seen order; dense maps small
	// flow IDs straight to an index (dense[id] = index+1), and sparse
	// catches IDs beyond the direct-index bound.
	flows  []*FlowStats
	dense  []int32
	sparse map[inet.FlowID]int32
	// siteCounts aggregates drops across flows, indexed by DropSite.
	siteCounts []uint64

	// SafetyNet bandwidth-overhead counters: duplicates the anchor emitted
	// on wired links, and where the redundant copies were discarded.
	dupPackets uint64
	dupBytes   uint64
	dedupMH    uint64
	dedupNAR   uint64
}

// denseLimit bounds the direct-index flow table. Scenario flow IDs are
// small sequential integers (Topology.NewFlowID starts at 1), so in
// practice every flow takes the one-array-load path.
const denseLimit = 1 << 20

// NewRecorder returns an empty recorder in ModeExact.
func NewRecorder() *Recorder { return NewRecorderMode(ModeExact) }

// NewRecorderMode returns an empty recorder in the given mode.
func NewRecorderMode(mode Mode) *Recorder {
	return &Recorder{mode: mode}
}

// Mode returns the recorder's delay-retention mode.
func (r *Recorder) Mode() Mode { return r.mode }

// flow returns (creating if needed) the stats bucket for a flow.
func (r *Recorder) flow(id inet.FlowID) *FlowStats {
	if uint64(id) < uint64(len(r.dense)) {
		if i := r.dense[id]; i != 0 {
			return r.flows[i-1]
		}
	}
	return r.flowSlow(id)
}

// flowSlow creates the bucket for a flow seen for the first time (or
// looks it up through the sparse fallback).
func (r *Recorder) flowSlow(id inet.FlowID) *FlowStats {
	if id >= denseLimit {
		if i, ok := r.sparse[id]; ok {
			return r.flows[i-1]
		}
	}
	f := &FlowStats{Flow: id}
	if r.mode == ModeStreaming {
		f.digest = NewDelayDigest()
	}
	r.flows = append(r.flows, f)
	idx := int32(len(r.flows))
	if id < denseLimit {
		for uint64(id) >= uint64(len(r.dense)) {
			grown := make([]int32, (len(r.dense)+1)*2)
			copy(grown, r.dense)
			r.dense = grown
		}
		r.dense[id] = idx
	} else {
		if r.sparse == nil {
			r.sparse = make(map[inet.FlowID]int32)
		}
		r.sparse[id] = idx
	}
	return f
}

// DeclareFlow registers a flow's class ahead of traffic, so empty flows
// still report.
func (r *Recorder) DeclareFlow(id inet.FlowID, class inet.Class) {
	r.flow(id).Class = class
}

// Sent records one transmitted application packet.
func (r *Recorder) Sent(pkt *inet.Packet) {
	f := r.flow(pkt.Flow)
	f.Sent++
	if f.Class == inet.ClassUnspecified {
		f.Class = pkt.Class
	}
}

// Delivered records one received application packet at the given instant.
func (r *Recorder) Delivered(pkt *inet.Packet, at sim.Time) {
	f := r.flow(pkt.Flow)
	f.Delivered++
	d := at - pkt.Created
	f.observeDelay(d)
	if f.digest != nil {
		f.digest.Add(d)
		return
	}
	f.Delays = append(f.Delays, DelaySample{Seq: pkt.Seq, At: at, Delay: d})
}

// Dropped records one lost packet with its drop location. Tunnel headers
// are stripped so the innermost flow is charged; the aggregate site total
// is charged even when the innermost flow is untracked (Flow 0, control
// traffic).
func (r *Recorder) Dropped(pkt *inet.Packet, where string) {
	r.DroppedSite(pkt, InternSite(where))
}

// DroppedSite is the pre-interned fast path of Dropped.
func (r *Recorder) DroppedSite(pkt *inet.Packet, site DropSite) {
	inner := pkt.Innermost()
	if inner.Flow != 0 {
		r.flow(inner.Flow).addDrop(site)
	}
	for int(site) >= len(r.siteCounts) {
		r.siteCounts = append(r.siteCounts, 0)
	}
	r.siteCounts[site]++
}

// Flow returns the stats for one flow (nil if never seen).
func (r *Recorder) Flow(id inet.FlowID) *FlowStats {
	if uint64(id) < uint64(len(r.dense)) {
		if i := r.dense[id]; i != 0 {
			return r.flows[i-1]
		}
		return nil
	}
	if i, ok := r.sparse[id]; ok {
		return r.flows[i-1]
	}
	return nil
}

// Flows returns all flows sorted by ID.
func (r *Recorder) Flows() []*FlowStats {
	out := make([]*FlowStats, len(r.flows))
	copy(out, r.flows)
	sort.Slice(out, func(i, j int) bool { return out[i].Flow < out[j].Flow })
	return out
}

// DropsAt returns the total drops recorded at a location label.
func (r *Recorder) DropsAt(where string) uint64 {
	site, ok := LookupSite(where)
	if !ok {
		return 0
	}
	return r.DropsAtSite(site)
}

// DropsAtSite returns the total drops recorded at an interned site.
func (r *Recorder) DropsAtSite(site DropSite) uint64 {
	if int(site) < len(r.siteCounts) {
		return r.siteCounts[site]
	}
	return 0
}

// SiteDrops returns the per-site aggregate drop counters, indexed by
// DropSite in interning order. The slice is a copy.
func (r *Recorder) SiteDrops() []uint64 {
	out := make([]uint64, len(r.siteCounts))
	copy(out, r.siteCounts)
	return out
}

// BicastDuplicate records one duplicate the anchor emitted on the wired
// side under SafetyNet bicast (pkt is the tunnel wrapper; its size counts
// the header overhead too).
func (r *Recorder) BicastDuplicate(pkt *inet.Packet) {
	r.dupPackets++
	r.dupBytes += uint64(pkt.Size)
}

// DedupDiscardMH records one redundant bicast copy the mobile host's
// sequence window suppressed.
func (r *Recorder) DedupDiscardMH() { r.dedupMH++ }

// DedupDiscardNAR records one held bicast copy the NAR discarded because
// the selective-delivery report acknowledged it (or its hold window
// evicted it).
func (r *Recorder) DedupDiscardNAR() { r.dedupNAR++ }

// DupPackets returns the anchor-emitted duplicate count.
func (r *Recorder) DupPackets() uint64 { return r.dupPackets }

// DupBytes returns the wire bytes of the anchor-emitted duplicates.
func (r *Recorder) DupBytes() uint64 { return r.dupBytes }

// DedupDiscardsMH returns the duplicates suppressed at the mobile host.
func (r *Recorder) DedupDiscardsMH() uint64 { return r.dedupMH }

// DedupDiscardsNAR returns the held copies discarded at the NAR.
func (r *Recorder) DedupDiscardsNAR() uint64 { return r.dedupNAR }

// OverheadRatio returns the bandwidth overhead of bicast as duplicated
// packets per application packet sent (zero when nothing was sent).
func (r *Recorder) OverheadRatio() float64 {
	sent := r.TotalSent()
	if sent == 0 {
		return 0
	}
	return float64(r.dupPackets) / float64(sent)
}

// TotalSent sums sends across flows.
func (r *Recorder) TotalSent() uint64 {
	var total uint64
	for _, f := range r.flows {
		total += f.Sent
	}
	return total
}

// TotalDelivered sums deliveries across flows.
func (r *Recorder) TotalDelivered() uint64 {
	var total uint64
	for _, f := range r.flows {
		total += f.Delivered
	}
	return total
}

// TotalLost sums sent-minus-delivered across flows.
func (r *Recorder) TotalLost() uint64 {
	var total uint64
	for _, f := range r.flows {
		total += f.Lost()
	}
	return total
}

// DelayPercentile returns the p-th percentile (0 < p ≤ 100) of recorded
// delays; zero when no samples. In exact mode it is the nearest-rank
// percentile over a sorted copy, cached and reused across queries until
// new samples arrive. In streaming mode it answers from the DelayDigest
// (P² estimate at the canonical percentiles, histogram otherwise).
func (f *FlowStats) DelayPercentile(p float64) sim.Time {
	if len(f.Delays) == 0 && f.digest != nil {
		return f.digest.Percentile(p)
	}
	n := len(f.Delays)
	if n == 0 || p <= 0 {
		return 0
	}
	if p > 100 {
		p = 100
	}
	if len(f.sortedDelays) != n {
		f.sortedDelays = f.sortedDelays[:0]
		for _, s := range f.Delays {
			f.sortedDelays = append(f.sortedDelays, s.Delay)
		}
		sortTimes(f.sortedDelays)
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return f.sortedDelays[rank-1]
}

// Jitter returns the mean absolute difference between consecutive
// packets' delays (the RFC 3550 interarrival-jitter idea without the
// smoothing filter); zero with fewer than two samples.
func (f *FlowStats) Jitter() sim.Time {
	if f.delayCount > 0 {
		if f.delayCount < 2 {
			return 0
		}
		return f.jitterSum / sim.Time(f.delayCount-1)
	}
	if len(f.Delays) < 2 {
		return 0
	}
	var sum sim.Time
	for i := 1; i < len(f.Delays); i++ {
		d := f.Delays[i].Delay - f.Delays[i-1].Delay
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / sim.Time(len(f.Delays)-1)
}

// DelaysIn returns the recorded delay samples whose delivery instants fall
// inside [lo, hi], as a subslice of Delays (do not mutate). Delays are
// stored in At order, so the window is located by binary search instead of
// a full scan. Exact mode only (empty without retained samples).
func (f *FlowStats) DelaysIn(lo, hi sim.Time) []DelaySample {
	ds := f.Delays
	i := sort.Search(len(ds), func(i int) bool { return ds[i].At >= lo })
	j := sort.Search(len(ds), func(j int) bool { return ds[j].At > hi })
	if i >= j {
		return nil
	}
	return ds[i:j]
}

// DeliveryGap returns the longest interval between consecutive recorded
// deliveries whose instants fall inside [lo, hi] — the service-outage
// measure of the baseline and latency experiments. Exact mode only (zero
// without retained samples). Delays are stored in At order, so the window
// is located by binary search.
func (f *FlowStats) DeliveryGap(lo, hi sim.Time) sim.Time {
	ds := f.Delays
	i := sort.Search(len(ds), func(i int) bool { return ds[i].At >= lo })
	var gap, prev sim.Time
	for ; i < len(ds) && ds[i].At <= hi; i++ {
		if prev != 0 && ds[i].At-prev > gap {
			gap = ds[i].At - prev
		}
		prev = ds[i].At
	}
	return gap
}
