// Package stats collects the measurements the thesis' figures are built
// from: per-flow send/deliver/drop counts, per-packet end-to-end delay
// samples, and bucketed time series (throughput).
//
// All collectors run on the single simulation goroutine; none are safe for
// concurrent use.
package stats

import (
	"math"
	"sort"

	"repro/internal/inet"
	"repro/internal/sim"
)

// DelaySample is one delivered packet's end-to-end latency.
type DelaySample struct {
	// Seq is the application sequence number.
	Seq uint32
	// At is the delivery instant.
	At sim.Time
	// Delay is delivery time minus creation time.
	Delay sim.Time
}

// FlowStats aggregates one application flow.
type FlowStats struct {
	Flow  inet.FlowID
	Class inet.Class

	Sent      uint64
	Delivered uint64
	// Dropped counts packets reported lost by location.
	Dropped map[string]uint64

	Delays []DelaySample
}

// DroppedTotal sums drops across locations.
func (f *FlowStats) DroppedTotal() uint64 {
	var total uint64
	for _, n := range f.Dropped {
		total += n
	}
	return total
}

// Lost returns sent minus delivered: every packet unaccounted for at the
// end of a run, whether it died in a buffer, on the air, or in a queue.
func (f *FlowStats) Lost() uint64 {
	if f.Delivered > f.Sent {
		return 0
	}
	return f.Sent - f.Delivered
}

// MaxDelay returns the largest recorded delay (zero when empty).
func (f *FlowStats) MaxDelay() sim.Time {
	var m sim.Time
	for _, s := range f.Delays {
		if s.Delay > m {
			m = s.Delay
		}
	}
	return m
}

// MeanDelay returns the average recorded delay (zero when empty).
func (f *FlowStats) MeanDelay() sim.Time {
	if len(f.Delays) == 0 {
		return 0
	}
	var sum sim.Time
	for _, s := range f.Delays {
		sum += s.Delay
	}
	return sum / sim.Time(len(f.Delays))
}

// Recorder is the central measurement sink for one simulation run.
type Recorder struct {
	flows map[inet.FlowID]*FlowStats
	// dropsByWhere aggregates across flows for quick totals.
	dropsByWhere map[string]uint64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		flows:        make(map[inet.FlowID]*FlowStats),
		dropsByWhere: make(map[string]uint64),
	}
}

// flow returns (creating if needed) the stats bucket for a flow.
func (r *Recorder) flow(id inet.FlowID) *FlowStats {
	f, ok := r.flows[id]
	if !ok {
		f = &FlowStats{Flow: id, Dropped: make(map[string]uint64)}
		r.flows[id] = f
	}
	return f
}

// DeclareFlow registers a flow's class ahead of traffic, so empty flows
// still report.
func (r *Recorder) DeclareFlow(id inet.FlowID, class inet.Class) {
	r.flow(id).Class = class
}

// Sent records one transmitted application packet.
func (r *Recorder) Sent(pkt *inet.Packet) {
	f := r.flow(pkt.Flow)
	f.Sent++
	if f.Class == inet.ClassUnspecified {
		f.Class = pkt.Class
	}
}

// Delivered records one received application packet at the given instant.
func (r *Recorder) Delivered(pkt *inet.Packet, at sim.Time) {
	f := r.flow(pkt.Flow)
	f.Delivered++
	f.Delays = append(f.Delays, DelaySample{Seq: pkt.Seq, At: at, Delay: at - pkt.Created})
}

// Dropped records one lost packet with its drop location. Tunnel headers
// are stripped so the innermost flow is charged.
func (r *Recorder) Dropped(pkt *inet.Packet, where string) {
	inner := pkt.Innermost()
	if inner.Flow != 0 {
		r.flow(inner.Flow).Dropped[where]++
	}
	r.dropsByWhere[where]++
}

// Flow returns the stats for one flow (nil if never seen).
func (r *Recorder) Flow(id inet.FlowID) *FlowStats { return r.flows[id] }

// Flows returns all flows sorted by ID.
func (r *Recorder) Flows() []*FlowStats {
	out := make([]*FlowStats, 0, len(r.flows))
	for _, f := range r.flows {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Flow < out[j].Flow })
	return out
}

// DropsAt returns the total drops recorded at a location.
func (r *Recorder) DropsAt(where string) uint64 { return r.dropsByWhere[where] }

// TotalSent sums sends across flows.
func (r *Recorder) TotalSent() uint64 {
	var total uint64
	for _, f := range r.flows {
		total += f.Sent
	}
	return total
}

// TotalDelivered sums deliveries across flows.
func (r *Recorder) TotalDelivered() uint64 {
	var total uint64
	for _, f := range r.flows {
		total += f.Delivered
	}
	return total
}

// TotalLost sums sent-minus-delivered across flows.
func (r *Recorder) TotalLost() uint64 {
	var total uint64
	for _, f := range r.flows {
		total += f.Lost()
	}
	return total
}

// DelayPercentile returns the p-th percentile (0 < p ≤ 100) of recorded
// delays using nearest-rank on a sorted copy; zero when no samples.
func (f *FlowStats) DelayPercentile(p float64) sim.Time {
	n := len(f.Delays)
	if n == 0 || p <= 0 {
		return 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]sim.Time, n)
	for i, s := range f.Delays {
		sorted[i] = s.Delay
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Jitter returns the mean absolute difference between consecutive
// packets' delays (the RFC 3550 interarrival-jitter idea without the
// smoothing filter); zero with fewer than two samples.
func (f *FlowStats) Jitter() sim.Time {
	if len(f.Delays) < 2 {
		return 0
	}
	var sum sim.Time
	for i := 1; i < len(f.Delays); i++ {
		d := f.Delays[i].Delay - f.Delays[i-1].Delay
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / sim.Time(len(f.Delays)-1)
}
