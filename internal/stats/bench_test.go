package stats

import (
	"testing"

	"repro/internal/inet"
	"repro/internal/sim"
)

// benchPacket builds the packet reused by every recorder benchmark.
func benchPacket() *inet.Packet {
	return &inet.Packet{
		Flow: 1, Class: inet.ClassHighPriority, Proto: inet.ProtoUDP,
		Size: 160, Created: sim.Millisecond,
	}
}

func BenchmarkRecorderSent(b *testing.B) {
	r := NewRecorder()
	p := benchPacket()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Sent(p)
	}
}

func BenchmarkRecorderDeliveredStreaming(b *testing.B) {
	r := NewRecorderMode(ModeStreaming)
	p := benchPacket()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Delivered(p, sim.Time(i)+2*sim.Millisecond)
	}
}

func BenchmarkRecorderDroppedSite(b *testing.B) {
	r := NewRecorder()
	p := benchPacket()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.DroppedSite(p, SiteNARBuffer)
	}
}

func BenchmarkRecorderDroppedString(b *testing.B) {
	// The string API pays one interner lookup on top of DroppedSite.
	r := NewRecorder()
	p := benchPacket()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Dropped(p, "nar-buffer")
	}
}

func BenchmarkInternSiteHit(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		InternSite("par-buffer")
	}
}

// TestRecorderHotPathAllocs pins the telemetry hot path: recording a sent,
// streamed-delivered, or dropped packet allocates nothing in steady state.
func TestRecorderHotPathAllocs(t *testing.T) {
	r := NewRecorderMode(ModeStreaming)
	p := benchPacket()
	now := sim.Time(0)
	warm := func() {
		now += sim.Millisecond
		r.Sent(p)
		r.Delivered(p, now)
		r.DroppedSite(p, SiteNARBuffer)
		r.Dropped(p, "air")
	}
	for i := 0; i < 64; i++ {
		warm()
	}
	if avg := testing.AllocsPerRun(100, warm); avg != 0 {
		t.Fatalf("streaming hot path allocates %.2f times per op; want 0", avg)
	}
}

// TestInternSiteHitAllocs pins the interner's fast path.
func TestInternSiteHitAllocs(t *testing.T) {
	InternSite("warmed-site")
	if avg := testing.AllocsPerRun(100, func() { InternSite("warmed-site") }); avg != 0 {
		t.Fatalf("interner hit allocates %.2f times; want 0", avg)
	}
}
