package stats

import (
	"math"
	"math/bits"
	"sort"

	"repro/internal/sim"
)

// P2Quantile estimates one quantile of a stream without retaining samples,
// using the P² algorithm of Jain & Chlamtac (CACM 1985): five markers
// track the minimum, the target quantile, the two quantiles halfway to the
// extremes, and the maximum; marker heights are adjusted with a piecewise
// parabolic fit as observations arrive. Memory is O(1) per quantile.
type P2Quantile struct {
	p     float64
	count int
	q     [5]float64 // marker heights
	n     [5]float64 // actual marker positions
	np    [5]float64 // desired marker positions
	dn    [5]float64 // desired position increments
}

// NewP2Quantile returns an estimator for the quantile p in (0, 1).
func NewP2Quantile(p float64) P2Quantile {
	if p <= 0 || p >= 1 {
		panic("stats: P2 quantile must be in (0, 1)")
	}
	return P2Quantile{p: p}
}

// Quantile returns the target quantile in (0, 1).
func (e *P2Quantile) Quantile() float64 { return e.p }

// Count returns how many observations have been added.
func (e *P2Quantile) Count() int { return e.count }

// Add feeds one observation.
func (e *P2Quantile) Add(x float64) {
	if e.count < 5 {
		// Insertion sort the first five observations into the markers.
		i := e.count
		for i > 0 && e.q[i-1] > x {
			e.q[i] = e.q[i-1]
			i--
		}
		e.q[i] = x
		e.count++
		if e.count == 5 {
			e.n = [5]float64{1, 2, 3, 4, 5}
			e.np = [5]float64{1, 1 + 2*e.p, 1 + 4*e.p, 3 + 2*e.p, 5}
			e.dn = [5]float64{0, e.p / 2, e.p, (1 + e.p) / 2, 1}
		}
		return
	}
	e.count++

	// Find the cell containing x, extending the extremes if needed.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := range e.np {
		e.np[i] += e.dn[i]
	}

	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.np[i] - e.n[i]
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			qp := e.parabolic(i, sign)
			if e.q[i-1] < qp && qp < e.q[i+1] {
				e.q[i] = qp
			} else {
				e.q[i] = e.linear(i, sign)
			}
			e.n[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for marker i
// moved by d (±1).
func (e *P2Quantile) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.n[i+1]-e.n[i-1])*
		((e.n[i]-e.n[i-1]+d)*(e.q[i+1]-e.q[i])/(e.n[i+1]-e.n[i])+
			(e.n[i+1]-e.n[i]-d)*(e.q[i]-e.q[i-1])/(e.n[i]-e.n[i-1]))
}

// linear is the fallback height prediction when the parabola overshoots a
// neighbouring marker.
func (e *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.n[j]-e.n[i])
}

// Value returns the current estimate (exact for fewer than five
// observations, zero when empty).
func (e *P2Quantile) Value() float64 {
	if e.count == 0 {
		return 0
	}
	if e.count < 5 {
		// Markers hold the sorted prefix: nearest-rank on it is exact.
		rank := int(math.Ceil(e.p * float64(e.count)))
		if rank < 1 {
			rank = 1
		}
		return e.q[rank-1]
	}
	return e.q[2]
}

// digestBins is the fixed histogram resolution: one bin per power of two
// of nanoseconds, covering the whole sim.Time range.
const digestBins = 64

// DigestPercentiles are the percentiles the streaming digest tracks with
// P² estimators; other percentiles fall back to the power-of-two
// histogram's coarser nearest-rank answer.
var DigestPercentiles = [4]float64{50, 90, 95, 99}

// DelayDigest summarizes a delay stream in O(1) space: P² estimators for
// the canonical percentiles plus a fixed power-of-two histogram for
// arbitrary percentile queries. It retains no samples, so streaming-mode
// recorders hold O(flows) state instead of O(packets).
type DelayDigest struct {
	count uint64
	est   [len(DigestPercentiles)]P2Quantile
	bins  [digestBins]uint64
}

// NewDelayDigest returns an empty digest.
func NewDelayDigest() *DelayDigest {
	d := &DelayDigest{}
	for i, p := range DigestPercentiles {
		d.est[i] = NewP2Quantile(p / 100)
	}
	return d
}

// binOf maps a delay to its power-of-two histogram bin.
func binOf(delay sim.Time) int {
	if delay <= 0 {
		return 0
	}
	return bits.Len64(uint64(delay)) - 1
}

// Add feeds one delay observation.
func (d *DelayDigest) Add(delay sim.Time) {
	d.count++
	x := float64(delay)
	for i := range d.est {
		d.est[i].Add(x)
	}
	d.bins[binOf(delay)]++
}

// Count returns how many delays have been added.
func (d *DelayDigest) Count() uint64 { return d.count }

// Percentile estimates the p-th percentile (0 < p ≤ 100). Canonical
// percentiles (DigestPercentiles) answer from the P² estimators; others
// from the histogram, with power-of-two resolution.
func (d *DelayDigest) Percentile(p float64) sim.Time {
	if d.count == 0 || p <= 0 {
		return 0
	}
	if p > 100 {
		p = 100
	}
	for i, cp := range DigestPercentiles {
		if p == cp {
			v := d.est[i].Value()
			if v < 0 {
				return 0
			}
			return sim.Time(math.Round(v))
		}
	}
	rank := uint64(math.Ceil(p / 100 * float64(d.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for b, n := range d.bins {
		cum += n
		if cum >= rank {
			if b == 0 {
				return 1
			}
			// Upper bound of the bin: all delays in it are ≤ 2^(b+1)-1.
			if b >= 62 {
				return sim.MaxTime
			}
			return sim.Time(uint64(1)<<uint(b+1) - 1)
		}
	}
	return sim.MaxTime
}

// sortedPercentile is the exact nearest-rank percentile over a sorted
// slice, shared by the exact recorder path and the differential tests.
func sortedPercentile(sorted []sim.Time, p float64) sim.Time {
	n := len(sorted)
	if n == 0 || p <= 0 {
		return 0
	}
	if p > 100 {
		p = 100
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// sortTimes sorts delays ascending in place.
func sortTimes(ts []sim.Time) {
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
}
