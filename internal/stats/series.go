package stats

import (
	"math"

	"repro/internal/sim"
)

// TimeSeries buckets a quantity (bytes, packets) into fixed windows, for
// throughput-over-time plots like Figure 4.14.
type TimeSeries struct {
	window  sim.Time
	buckets []float64
}

// NewTimeSeries creates a series with the given bucket width.
func NewTimeSeries(window sim.Time) *TimeSeries {
	if window <= 0 {
		panic("stats: NewTimeSeries with non-positive window")
	}
	return &TimeSeries{window: window}
}

// Window returns the bucket width.
func (ts *TimeSeries) Window() sim.Time { return ts.window }

// Add accumulates v into the bucket containing the instant.
func (ts *TimeSeries) Add(at sim.Time, v float64) {
	if at < 0 {
		return
	}
	idx := int(at / ts.window)
	for len(ts.buckets) <= idx {
		ts.buckets = append(ts.buckets, 0)
	}
	ts.buckets[idx] += v
}

// Buckets returns the raw bucket values.
func (ts *TimeSeries) Buckets() []float64 { return ts.buckets }

// Point is one (time, value) pair of a rendered series.
type Point struct {
	At    sim.Time
	Value float64
}

// Rate converts the buckets into per-second rates, stamped at each
// bucket's start.
func (ts *TimeSeries) Rate() []Point {
	scale := float64(sim.Second) / float64(ts.window)
	out := make([]Point, len(ts.buckets))
	for i, v := range ts.buckets {
		out[i] = Point{At: sim.Time(i) * ts.window, Value: v * scale}
	}
	return out
}

// SeqSample is one (time, sequence-number) event for TCP sequence traces
// (Figures 4.12/4.13).
type SeqSample struct {
	At  sim.Time
	Seq uint64
}

// SeqTrace records sequence-number events over time.
type SeqTrace struct {
	samples []SeqSample
}

// Record appends one event.
func (tr *SeqTrace) Record(at sim.Time, seq uint64) {
	tr.samples = append(tr.samples, SeqSample{At: at, Seq: seq})
}

// Samples returns the recorded events in order.
func (tr *SeqTrace) Samples() []SeqSample { return tr.samples }

// Len returns the number of events.
func (tr *SeqTrace) Len() int { return len(tr.samples) }

// Summary accumulates scalar samples (e.g. one metric across seeds) and
// reports mean and standard deviation.
type Summary struct {
	n    int
	sum  float64
	sum2 float64
	min  float64
	max  float64
}

// Add records one sample.
func (s *Summary) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sum2 += v * v
}

// N returns the sample count.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (zero when empty).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// StdDev returns the population standard deviation (zero when fewer than
// two samples).
func (s *Summary) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	m := s.Mean()
	v := s.sum2/float64(s.n) - m*m
	if v < 0 {
		v = 0 // numerical noise
	}
	return math.Sqrt(v)
}

// Min and Max return the extremes (zero when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample.
func (s *Summary) Max() float64 { return s.max }

// SampleStdDev returns the Bessel-corrected (n−1) sample standard
// deviation — the estimator confidence intervals are built from. Zero with
// fewer than two samples.
func (s *Summary) SampleStdDev() float64 {
	if s.n < 2 {
		return 0
	}
	m := s.Mean()
	v := (s.sum2 - float64(s.n)*m*m) / float64(s.n-1)
	if v < 0 {
		v = 0 // numerical noise
	}
	return math.Sqrt(v)
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean: 1.96·s/√n with the sample standard deviation.
// Replica counts here are usually ≥ 30, where the normal approximation to
// the t distribution is within a couple of percent. Zero with fewer than
// two samples.
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.SampleStdDev() / math.Sqrt(float64(s.n))
}

// Merge folds another summary into this one, as if every sample of o had
// been Added individually. Merging an empty summary is a no-op.
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 || o.min < s.min {
		s.min = o.min
	}
	if s.n == 0 || o.max > s.max {
		s.max = o.max
	}
	s.n += o.n
	s.sum += o.sum
	s.sum2 += o.sum2
}
