package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/inet"
	"repro/internal/sim"
)

func TestP2QuantileSmallStreamsExact(t *testing.T) {
	// Under five observations the markers hold the sorted prefix, so the
	// estimate must equal the exact nearest-rank percentile.
	e := NewP2Quantile(0.5)
	if e.Value() != 0 {
		t.Fatal("empty estimator not zero")
	}
	for i, x := range []float64{30, 10, 20} {
		e.Add(x)
		_ = i
	}
	if got := e.Value(); got != 20 {
		t.Fatalf("median of {10,20,30} = %v, want 20", got)
	}
	if e.Count() != 3 {
		t.Fatalf("Count = %d", e.Count())
	}
}

func TestP2QuantilePanicsOnBadQuantile(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for p=%v", p)
				}
			}()
			NewP2Quantile(p)
		}()
	}
}

func TestP2QuantileUniformAccuracy(t *testing.T) {
	// On 10k uniform samples the P² estimate of canonical quantiles must
	// land within 2% of the true value.
	rng := rand.New(rand.NewSource(7))
	quantiles := []float64{0.5, 0.9, 0.95, 0.99}
	ests := make([]P2Quantile, len(quantiles))
	for i, q := range quantiles {
		ests[i] = NewP2Quantile(q)
	}
	for i := 0; i < 10_000; i++ {
		x := rng.Float64() * 1000
		for j := range ests {
			ests[j].Add(x)
		}
	}
	for i, q := range quantiles {
		want := q * 1000
		got := ests[i].Value()
		if math.Abs(got-want) > 20 {
			t.Errorf("p=%v: estimate %v, want ~%v", q, got, want)
		}
	}
}

// Property: the P² estimate always lies within the observed min/max.
func TestPropertyP2Bounded(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		e := NewP2Quantile(0.9)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			x := float64(r)
			e.Add(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		v := e.Value()
		return v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDelayDigestEmptyAndClamp(t *testing.T) {
	d := NewDelayDigest()
	if d.Percentile(99) != 0 || d.Percentile(0) != 0 {
		t.Fatal("empty digest percentile not zero")
	}
	d.Add(10 * sim.Millisecond)
	if d.Count() != 1 {
		t.Fatalf("Count = %d", d.Count())
	}
	if d.Percentile(150) != d.Percentile(100) {
		t.Fatal("percentile above 100 not clamped")
	}
}

func TestDelayDigestHistogramFallback(t *testing.T) {
	// Non-canonical percentiles come from the power-of-two histogram:
	// the answer must be an upper bound of the right bin.
	d := NewDelayDigest()
	for i := 0; i < 100; i++ {
		d.Add(sim.Time(1000)) // all in bin 9 (512..1023)
	}
	got := d.Percentile(42)
	if got < 1000 || got > 1023 {
		t.Fatalf("histogram percentile = %v, want within [1000, 1023]", got)
	}
}

// TestStreamingDifferential replays one seeded operation stream through an
// exact-mode and a streaming-mode recorder: every counter must agree
// exactly, and the streaming percentile estimates must stay within a
// tolerance band of the exact nearest-rank values.
func TestStreamingDifferential(t *testing.T) {
	exact := NewRecorder()
	stream := NewRecorderMode(ModeStreaming)
	rng := rand.New(rand.NewSource(42))

	sites := []string{"par-buffer", "nar-buffer", "par-policy", "lifetime", "air"}
	now := sim.Time(0)
	for i := 0; i < 20_000; i++ {
		now += sim.Time(rng.Intn(1000) + 1)
		flow := inet.FlowID(rng.Intn(8) + 1)
		p := &inet.Packet{
			Flow: flow, Proto: inet.ProtoUDP, Size: 160,
			Class:   inet.Classes[int(flow)%3],
			Seq:     uint32(i),
			Created: now,
		}
		exact.Sent(p)
		stream.Sent(p)
		switch rng.Intn(10) {
		case 0: // lost somewhere
			site := sites[rng.Intn(len(sites))]
			exact.Dropped(p, site)
			stream.Dropped(p, site)
		default:
			at := now + sim.Time(rng.Intn(200_000)+20)
			exact.Delivered(p, at)
			stream.Delivered(p, at)
		}
	}

	if exact.TotalSent() != stream.TotalSent() ||
		exact.TotalDelivered() != stream.TotalDelivered() ||
		exact.TotalLost() != stream.TotalLost() {
		t.Fatal("totals diverge between modes")
	}
	for site, n := range exact.SiteDrops() {
		if stream.SiteDrops()[site] != n {
			t.Fatalf("site %s drop counts diverge", DropSite(site))
		}
	}
	ef, sf := exact.Flows(), stream.Flows()
	if len(ef) != len(sf) {
		t.Fatalf("flow counts diverge: %d vs %d", len(ef), len(sf))
	}
	for i := range ef {
		e, s := ef[i], sf[i]
		if e.Flow != s.Flow || e.Sent != s.Sent || e.Delivered != s.Delivered {
			t.Fatalf("flow %d counters diverge", e.Flow)
		}
		if e.DelayCount() != s.DelayCount() {
			t.Fatalf("flow %d delay counts diverge", e.Flow)
		}
		// Running aggregates share the same arithmetic: exact equality.
		if e.MaxDelay() != s.MaxDelay() || e.MeanDelay() != s.MeanDelay() || e.Jitter() != s.Jitter() {
			t.Fatalf("flow %d aggregate delays diverge", e.Flow)
		}
		if len(s.Delays) != 0 {
			t.Fatalf("streaming flow %d retained %d samples", s.Flow, len(s.Delays))
		}
		// P² estimates of the canonical percentiles stay within 5% of the
		// exact nearest-rank answer on this smooth delay distribution.
		for _, p := range DigestPercentiles {
			ev, sv := float64(e.DelayPercentile(p)), float64(s.DelayPercentile(p))
			if ev == 0 {
				continue
			}
			if math.Abs(sv-ev)/ev > 0.05 {
				t.Errorf("flow %d p%v: streaming %v vs exact %v", e.Flow, p, sv, ev)
			}
		}
	}
}

func TestInternSiteIdempotent(t *testing.T) {
	a := InternSite("par-buffer")
	b := InternSite("par-buffer")
	if a != b || a != SitePARBuffer {
		t.Fatalf("interning not idempotent: %v %v", a, b)
	}
	if a.String() != "par-buffer" {
		t.Fatalf("String = %q", a.String())
	}
	if _, ok := LookupSite("par-buffer"); !ok {
		t.Fatal("LookupSite missed a registered site")
	}
	if _, ok := LookupSite("never-registered-site"); ok {
		t.Fatal("LookupSite invented a site")
	}
}

func TestCanonicalSiteOrder(t *testing.T) {
	// The report enumerates drop counters by site index; the canonical
	// sites must keep their registration order.
	want := []DropSite{SitePARBuffer, SiteNARBuffer, SitePARPolicy, SiteLifetime, SiteAir, SiteLinkQueue}
	names := []string{"par-buffer", "nar-buffer", "par-policy", "lifetime", "air", "link-queue"}
	for i, site := range want {
		if InternSite(names[i]) != site {
			t.Fatalf("site %q interned out of order", names[i])
		}
		if site.String() != names[i] {
			t.Fatalf("site %d renders %q, want %q", site, site.String(), names[i])
		}
	}
}

// FuzzInternSite checks the interner is collision-free and idempotent for
// arbitrary names: same name → same ID, different names → different IDs,
// and String round-trips.
func FuzzInternSite(f *testing.F) {
	f.Add("par-buffer")
	f.Add("")
	f.Add("a")
	f.Add("link-queue")
	f.Add("site-with-✓-unicode")
	f.Fuzz(func(t *testing.T, name string) {
		id := InternSite(name)
		if again := InternSite(name); again != id {
			t.Fatalf("InternSite(%q) not idempotent: %v then %v", name, id, again)
		}
		if got := id.String(); got != name {
			t.Fatalf("String round-trip: %q -> %v -> %q", name, id, got)
		}
		if other := InternSite(name + "\x00x"); other == id {
			t.Fatalf("collision: %q and %q share ID %v", name, name+"\x00x", id)
		}
	})
}
