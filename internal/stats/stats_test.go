package stats

import (
	"testing"
	"testing/quick"

	"repro/internal/inet"
	"repro/internal/sim"
)

func pkt(flow inet.FlowID, class inet.Class, seq uint32, created sim.Time) *inet.Packet {
	return &inet.Packet{Flow: flow, Class: class, Seq: seq, Created: created,
		Proto: inet.ProtoUDP, Size: 160}
}

func TestRecorderSentDelivered(t *testing.T) {
	r := NewRecorder()
	p := pkt(1, inet.ClassRealTime, 0, 100*sim.Millisecond)
	r.Sent(p)
	r.Delivered(p, 150*sim.Millisecond)

	f := r.Flow(1)
	if f == nil {
		t.Fatal("flow missing")
	}
	if f.Sent != 1 || f.Delivered != 1 || f.Lost() != 0 {
		t.Fatalf("flow stats: %+v", f)
	}
	if len(f.Delays) != 1 || f.Delays[0].Delay != 50*sim.Millisecond {
		t.Fatalf("delay sample wrong: %+v", f.Delays)
	}
	if f.Class != inet.ClassRealTime {
		t.Fatalf("class = %v", f.Class)
	}
}

func TestRecorderLost(t *testing.T) {
	r := NewRecorder()
	for i := uint32(0); i < 5; i++ {
		p := pkt(1, inet.ClassBestEffort, i, 0)
		r.Sent(p)
		if i%2 == 0 {
			r.Delivered(p, sim.Millisecond)
		}
	}
	if got := r.Flow(1).Lost(); got != 2 {
		t.Fatalf("Lost = %d, want 2", got)
	}
	if r.TotalSent() != 5 || r.TotalDelivered() != 3 || r.TotalLost() != 2 {
		t.Fatalf("totals: sent=%d delivered=%d lost=%d",
			r.TotalSent(), r.TotalDelivered(), r.TotalLost())
	}
}

func TestRecorderDroppedChargesInnermostFlow(t *testing.T) {
	r := NewRecorder()
	inner := pkt(7, inet.ClassHighPriority, 3, 0)
	tunnel := inner.Encapsulate(inet.Addr{Net: 2, Host: 1}, inet.Addr{Net: 3, Host: 1})
	r.Dropped(tunnel, "nar-buffer")
	if got := r.Flow(7).DroppedAt("nar-buffer"); got != 1 {
		t.Fatalf("drop not charged to inner flow: %d", got)
	}
	if r.DropsAt("nar-buffer") != 1 {
		t.Fatal("aggregate drop count missing")
	}
	if r.Flow(7).DroppedTotal() != 1 {
		t.Fatal("DroppedTotal wrong")
	}
}

func TestRecorderDroppedDoublyTunneled(t *testing.T) {
	// Two layers of encapsulation (MAP tunnel inside an AR forwarding
	// tunnel): the drop is still charged to the innermost flow.
	r := NewRecorder()
	inner := pkt(9, inet.ClassRealTime, 1, 0)
	mid := inner.Encapsulate(inet.Addr{Net: 2, Host: 1}, inet.Addr{Net: 3, Host: 1})
	outer := mid.Encapsulate(inet.Addr{Net: 3, Host: 1}, inet.Addr{Net: 4, Host: 1})
	r.DroppedSite(outer, SitePARBuffer)
	if got := r.Flow(9).DroppedAtSite(SitePARBuffer); got != 1 {
		t.Fatalf("doubly tunneled drop not charged to innermost flow: %d", got)
	}
	if r.DropsAtSite(SitePARBuffer) != 1 || r.DropsAt("par-buffer") != 1 {
		t.Fatal("aggregate counters diverge between site and string APIs")
	}
}

func TestRecorderDroppedStringAndSiteAgree(t *testing.T) {
	// Dropped(where string) is sugar for DroppedSite(InternSite(where)):
	// both must feed the same counters.
	r := NewRecorder()
	p1 := pkt(1, inet.ClassBestEffort, 0, 0)
	p2 := pkt(1, inet.ClassBestEffort, 1, 0)
	r.Dropped(p1, "nar-buffer")
	r.DroppedSite(p2, SiteNARBuffer)
	if got := r.Flow(1).DroppedAt("nar-buffer"); got != 2 {
		t.Fatalf("mixed-API drops = %d, want 2", got)
	}
	if r.DropsAtSite(SiteNARBuffer) != 2 {
		t.Fatal("aggregate mixed-API drops wrong")
	}
}

func TestRecorderDroppedFlowZeroDataStillCounted(t *testing.T) {
	// A data packet without a flow label charges no per-flow counter but
	// the aggregate site counter must still move.
	r := NewRecorder()
	p := &inet.Packet{Proto: inet.ProtoUDP, Size: 160} // Flow 0
	r.Dropped(p, "lifetime")
	if len(r.Flows()) != 0 {
		t.Fatal("flow-less drop created a flow")
	}
	if r.DropsAt("lifetime") != 1 {
		t.Fatal("aggregate drop for flow-less packet missing")
	}
}

func TestRecorderDroppedControlNotCharged(t *testing.T) {
	r := NewRecorder()
	ctrl := &inet.Packet{Proto: inet.ProtoControl, Size: 64} // Flow 0
	r.Dropped(ctrl, "air")
	if len(r.Flows()) != 0 {
		t.Fatal("control drop created a flow")
	}
	if r.DropsAt("air") != 1 {
		t.Fatal("aggregate air drop not counted")
	}
}

func TestRecorderFlowsSorted(t *testing.T) {
	r := NewRecorder()
	r.DeclareFlow(3, inet.ClassBestEffort)
	r.DeclareFlow(1, inet.ClassRealTime)
	r.DeclareFlow(2, inet.ClassHighPriority)
	flows := r.Flows()
	if len(flows) != 3 || flows[0].Flow != 1 || flows[1].Flow != 2 || flows[2].Flow != 3 {
		t.Fatalf("Flows() not sorted: %v", flows)
	}
}

func TestFlowDelayAggregates(t *testing.T) {
	f := &FlowStats{}
	if f.MaxDelay() != 0 || f.MeanDelay() != 0 {
		t.Fatal("empty flow aggregates not zero")
	}
	f.Delays = []DelaySample{
		{Delay: 10 * sim.Millisecond},
		{Delay: 30 * sim.Millisecond},
		{Delay: 20 * sim.Millisecond},
	}
	if f.MaxDelay() != 30*sim.Millisecond {
		t.Fatalf("MaxDelay = %v", f.MaxDelay())
	}
	if f.MeanDelay() != 20*sim.Millisecond {
		t.Fatalf("MeanDelay = %v", f.MeanDelay())
	}
}

func TestFlowLostNeverNegative(t *testing.T) {
	f := &FlowStats{Sent: 1, Delivered: 3}
	if f.Lost() != 0 {
		t.Fatalf("Lost = %d, want clamped 0", f.Lost())
	}
}

func TestTimeSeriesBuckets(t *testing.T) {
	ts := NewTimeSeries(100 * sim.Millisecond)
	ts.Add(50*sim.Millisecond, 10)
	ts.Add(99*sim.Millisecond, 5)
	ts.Add(150*sim.Millisecond, 7)
	ts.Add(-sim.Millisecond, 100) // ignored

	b := ts.Buckets()
	if len(b) != 2 || b[0] != 15 || b[1] != 7 {
		t.Fatalf("buckets = %v", b)
	}
	rate := ts.Rate()
	if rate[0].Value != 150 || rate[1].Value != 70 {
		t.Fatalf("rate = %v", rate)
	}
	if rate[1].At != 100*sim.Millisecond {
		t.Fatalf("rate timestamp = %v", rate[1].At)
	}
	if ts.Window() != 100*sim.Millisecond {
		t.Fatal("Window() wrong")
	}
}

func TestTimeSeriesPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero window")
		}
	}()
	NewTimeSeries(0)
}

func TestSeqTrace(t *testing.T) {
	var tr SeqTrace
	tr.Record(sim.Second, 100)
	tr.Record(2*sim.Second, 200)
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	s := tr.Samples()
	if s[0].Seq != 100 || s[1].At != 2*sim.Second {
		t.Fatalf("samples = %v", s)
	}
}

// Property: sent/delivered/lost accounting is consistent for any
// interleaving.
func TestPropertyRecorderAccounting(t *testing.T) {
	f := func(events []bool) bool {
		r := NewRecorder()
		var sent, delivered uint64
		for i, deliver := range events {
			p := pkt(1, inet.ClassBestEffort, uint32(i), 0)
			r.Sent(p)
			sent++
			if deliver {
				r.Delivered(p, sim.Millisecond)
				delivered++
			}
		}
		if sent == 0 {
			return r.Flow(1) == nil || r.Flow(1).Sent == 0
		}
		fl := r.Flow(1)
		return fl.Sent == sent && fl.Delivered == delivered && fl.Lost() == sent-delivered
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: time-series bucket totals preserve the sum of added values.
func TestPropertyTimeSeriesConservation(t *testing.T) {
	f := func(adds []uint16) bool {
		ts := NewTimeSeries(10 * sim.Millisecond)
		var want float64
		for _, a := range adds {
			ts.Add(sim.Time(a)*sim.Millisecond, 1)
			want++
		}
		var got float64
		for _, v := range ts.Buckets() {
			got += v
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDelayPercentile(t *testing.T) {
	f := &FlowStats{}
	if f.DelayPercentile(99) != 0 {
		t.Fatal("empty percentile not zero")
	}
	for i := 1; i <= 100; i++ {
		f.Delays = append(f.Delays, DelaySample{Delay: sim.Time(i) * sim.Millisecond})
	}
	tests := []struct {
		p    float64
		want sim.Time
	}{
		{50, 50 * sim.Millisecond},
		{99, 99 * sim.Millisecond},
		{100, 100 * sim.Millisecond},
		{1, 1 * sim.Millisecond},
		{150, 100 * sim.Millisecond}, // clamped
		{0, 0},
	}
	for _, tt := range tests {
		if got := f.DelayPercentile(tt.p); got != tt.want {
			t.Errorf("DelayPercentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestJitter(t *testing.T) {
	f := &FlowStats{}
	if f.Jitter() != 0 {
		t.Fatal("jitter of empty flow not zero")
	}
	for _, d := range []sim.Time{10, 20, 10, 30} {
		f.Delays = append(f.Delays, DelaySample{Delay: d * sim.Millisecond})
	}
	// |20-10| + |10-20| + |30-10| = 40ms over 3 intervals.
	if got := f.Jitter(); got != 40*sim.Millisecond/3 {
		t.Fatalf("Jitter = %v, want %v", got, 40*sim.Millisecond/3)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPropertyPercentileMonotone(t *testing.T) {
	f2 := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		fl := &FlowStats{}
		var lo, hi sim.Time = sim.MaxTime, 0
		for _, r := range raw {
			d := sim.Time(r) * sim.Microsecond
			fl.Delays = append(fl.Delays, DelaySample{Delay: d})
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		prev := sim.Time(0)
		for _, p := range []float64{1, 25, 50, 75, 90, 99, 100} {
			v := fl.DelayPercentile(p)
			if v < prev || v < lo || v > hi {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f2, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.StdDev() != 0 {
		t.Fatal("empty summary not zero")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 || s.Mean() != 5 {
		t.Fatalf("n=%d mean=%v", s.N(), s.Mean())
	}
	if s.StdDev() != 2 { // classic example: σ = 2
		t.Fatalf("stddev = %v, want 2", s.StdDev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

// Property: mean lies within [min, max] and stddev is non-negative.
func TestPropertySummaryBounds(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Summary
		for _, v := range raw {
			s.Add(float64(v))
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9 && s.StdDev() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
