package fho

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/inet"
	"repro/internal/sim"
)

// Wire format: one kind byte followed by the message body. Multi-byte
// integers are big-endian. Addresses are net(4)+host(4). Times are signed
// 64-bit nanosecond counts. Strings are length-prefixed (1 byte). Optional
// options are preceded by a presence byte.

// ErrTruncated reports a message body shorter than its fields require.
var ErrTruncated = errors.New("fho: truncated message")

// ControlHeaderSize approximates the IPv6 + mobility-header overhead of a
// control packet, used when sizing control packets on the wire.
const ControlHeaderSize = 48

// Encode serializes a message (kind byte + body).
func Encode(m Message) []byte {
	return m.appendTo([]byte{byte(m.Kind())})
}

// Decode parses a message produced by Encode.
func Decode(data []byte) (Message, error) {
	if len(data) == 0 {
		return nil, ErrTruncated
	}
	var m Message
	switch Kind(data[0]) {
	case KindRtSolPr:
		m = &RtSolPr{}
	case KindPrRtAdv:
		m = &PrRtAdv{}
	case KindHI:
		m = &HI{}
	case KindHAck:
		m = &HAck{}
	case KindFBU:
		m = &FBU{}
	case KindFBAck:
		m = &FBAck{}
	case KindFNA:
		m = &FNA{}
	case KindBF:
		m = &BF{}
	case KindBufferFull:
		m = &BufferFull{}
	default:
		return nil, fmt.Errorf("fho: unknown message kind %d", data[0])
	}
	rest, err := m.decode(data[1:])
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("fho: %d trailing bytes after %s", len(rest), m.Kind())
	}
	return m, nil
}

// WireSize returns the on-the-wire packet size for a control message,
// including the network-layer control header.
func WireSize(m Message) int { return ControlHeaderSize + len(Encode(m)) }

// --- primitive field helpers ---

func putAddr(dst []byte, a inet.Addr) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(a.Net))
	return binary.BigEndian.AppendUint32(dst, uint32(a.Host))
}

func getAddr(src []byte) (inet.Addr, []byte, error) {
	if len(src) < 8 {
		return inet.Addr{}, nil, ErrTruncated
	}
	a := inet.Addr{
		Net:  inet.NetID(binary.BigEndian.Uint32(src)),
		Host: inet.HostID(binary.BigEndian.Uint32(src[4:])),
	}
	return a, src[8:], nil
}

func putTime(dst []byte, t sim.Time) []byte {
	return binary.BigEndian.AppendUint64(dst, uint64(t))
}

func getTime(src []byte) (sim.Time, []byte, error) {
	if len(src) < 8 {
		return 0, nil, ErrTruncated
	}
	return sim.Time(binary.BigEndian.Uint64(src)), src[8:], nil
}

func putU16(dst []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(dst, v) }

func getU16(src []byte) (uint16, []byte, error) {
	if len(src) < 2 {
		return 0, nil, ErrTruncated
	}
	return binary.BigEndian.Uint16(src), src[2:], nil
}

func putU32(dst []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(dst, v) }

func getU32(src []byte) (uint32, []byte, error) {
	if len(src) < 4 {
		return 0, nil, ErrTruncated
	}
	return binary.BigEndian.Uint32(src), src[4:], nil
}

func putBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func getBool(src []byte) (bool, []byte, error) {
	if len(src) < 1 {
		return false, nil, ErrTruncated
	}
	return src[0] != 0, src[1:], nil
}

func putString(dst []byte, s string) []byte {
	if len(s) > 255 {
		s = s[:255]
	}
	dst = append(dst, byte(len(s)))
	return append(dst, s...)
}

func getString(src []byte) (string, []byte, error) {
	if len(src) < 1 {
		return "", nil, ErrTruncated
	}
	n := int(src[0])
	if len(src) < 1+n {
		return "", nil, ErrTruncated
	}
	return string(src[1 : 1+n]), src[1+n:], nil
}

func putBytes(dst []byte, b []byte) []byte {
	if len(b) > 255 {
		b = b[:255]
	}
	dst = append(dst, byte(len(b)))
	return append(dst, b...)
}

func getBytes(src []byte) ([]byte, []byte, error) {
	if len(src) < 1 {
		return nil, nil, ErrTruncated
	}
	n := int(src[0])
	if len(src) < 1+n {
		return nil, nil, ErrTruncated
	}
	if n == 0 {
		return nil, src[1:], nil
	}
	out := make([]byte, n)
	copy(out, src[1:1+n])
	return out, src[1+n:], nil
}

// --- options ---

func putBufferInit(dst []byte, bi *BufferInit) []byte {
	dst = putBool(dst, bi != nil)
	if bi == nil {
		return dst
	}
	dst = putU16(dst, bi.Size)
	dst = putTime(dst, bi.Start)
	return putTime(dst, bi.Lifetime)
}

func getBufferInit(src []byte) (*BufferInit, []byte, error) {
	present, src, err := getBool(src)
	if err != nil || !present {
		return nil, src, err
	}
	var bi BufferInit
	if bi.Size, src, err = getU16(src); err != nil {
		return nil, nil, err
	}
	if bi.Start, src, err = getTime(src); err != nil {
		return nil, nil, err
	}
	if bi.Lifetime, src, err = getTime(src); err != nil {
		return nil, nil, err
	}
	return &bi, src, nil
}

func putBufferRequest(dst []byte, br *BufferRequest) []byte {
	dst = putBool(dst, br != nil)
	if br == nil {
		return dst
	}
	dst = putU16(dst, br.Size)
	return putTime(dst, br.Lifetime)
}

func getBufferRequest(src []byte) (*BufferRequest, []byte, error) {
	present, src, err := getBool(src)
	if err != nil || !present {
		return nil, src, err
	}
	var br BufferRequest
	if br.Size, src, err = getU16(src); err != nil {
		return nil, nil, err
	}
	if br.Lifetime, src, err = getTime(src); err != nil {
		return nil, nil, err
	}
	return &br, src, nil
}

func putBufferAck(dst []byte, ba *BufferAck) []byte {
	dst = putBool(dst, ba != nil)
	if ba == nil {
		return dst
	}
	dst = putBool(dst, ba.Granted)
	return putU16(dst, ba.Size)
}

func getBufferAck(src []byte) (*BufferAck, []byte, error) {
	present, src, err := getBool(src)
	if err != nil || !present {
		return nil, src, err
	}
	var ba BufferAck
	if ba.Granted, src, err = getBool(src); err != nil {
		return nil, nil, err
	}
	if ba.Size, src, err = getU16(src); err != nil {
		return nil, nil, err
	}
	return &ba, src, nil
}

// --- message bodies ---

func (m *RtSolPr) appendTo(dst []byte) []byte {
	dst = putAddr(dst, m.MH)
	dst = putString(dst, m.TargetAP)
	dst = putBufferInit(dst, m.BI)
	return putBytes(dst, m.MAC)
}

func (m *RtSolPr) decode(src []byte) ([]byte, error) {
	var err error
	if m.MH, src, err = getAddr(src); err != nil {
		return nil, err
	}
	if m.TargetAP, src, err = getString(src); err != nil {
		return nil, err
	}
	if m.BI, src, err = getBufferInit(src); err != nil {
		return nil, err
	}
	if m.MAC, src, err = getBytes(src); err != nil {
		return nil, err
	}
	return src, nil
}

func (m *PrRtAdv) appendTo(dst []byte) []byte {
	dst = putAddr(dst, m.NAR)
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.NARNet))
	dst = putAddr(dst, m.NCoA)
	dst = putBool(dst, m.NARGranted)
	dst = putBool(dst, m.PARGranted)
	dst = putBool(dst, m.LinkLayerOnly)
	return putString(dst, m.TargetAP)
}

func (m *PrRtAdv) decode(src []byte) ([]byte, error) {
	var err error
	if m.NAR, src, err = getAddr(src); err != nil {
		return nil, err
	}
	if len(src) < 4 {
		return nil, ErrTruncated
	}
	m.NARNet = inet.NetID(binary.BigEndian.Uint32(src))
	src = src[4:]
	if m.NCoA, src, err = getAddr(src); err != nil {
		return nil, err
	}
	if m.NARGranted, src, err = getBool(src); err != nil {
		return nil, err
	}
	if m.PARGranted, src, err = getBool(src); err != nil {
		return nil, err
	}
	if m.LinkLayerOnly, src, err = getBool(src); err != nil {
		return nil, err
	}
	if m.TargetAP, src, err = getString(src); err != nil {
		return nil, err
	}
	return src, nil
}

func (m *HI) appendTo(dst []byte) []byte {
	dst = putAddr(dst, m.PCoA)
	dst = putAddr(dst, m.NCoA)
	dst = putString(dst, m.MHLinkLayer)
	dst = putBool(dst, m.PARGranted)
	dst = putBufferRequest(dst, m.BR)
	return putBytes(dst, m.MAC)
}

func (m *HI) decode(src []byte) ([]byte, error) {
	var err error
	if m.PCoA, src, err = getAddr(src); err != nil {
		return nil, err
	}
	if m.NCoA, src, err = getAddr(src); err != nil {
		return nil, err
	}
	if m.MHLinkLayer, src, err = getString(src); err != nil {
		return nil, err
	}
	if m.PARGranted, src, err = getBool(src); err != nil {
		return nil, err
	}
	if m.BR, src, err = getBufferRequest(src); err != nil {
		return nil, err
	}
	if m.MAC, src, err = getBytes(src); err != nil {
		return nil, err
	}
	return src, nil
}

func (m *HAck) appendTo(dst []byte) []byte {
	dst = putBool(dst, m.Accepted)
	dst = putAddr(dst, m.PCoA)
	return putBufferAck(dst, m.BA)
}

func (m *HAck) decode(src []byte) ([]byte, error) {
	var err error
	if m.Accepted, src, err = getBool(src); err != nil {
		return nil, err
	}
	if m.PCoA, src, err = getAddr(src); err != nil {
		return nil, err
	}
	if m.BA, src, err = getBufferAck(src); err != nil {
		return nil, err
	}
	return src, nil
}

func (m *FBU) appendTo(dst []byte) []byte {
	dst = putAddr(dst, m.PCoA)
	dst = putAddr(dst, m.NCoA)
	return putBytes(dst, m.MAC)
}

func (m *FBU) decode(src []byte) ([]byte, error) {
	var err error
	if m.PCoA, src, err = getAddr(src); err != nil {
		return nil, err
	}
	if m.NCoA, src, err = getAddr(src); err != nil {
		return nil, err
	}
	if m.MAC, src, err = getBytes(src); err != nil {
		return nil, err
	}
	return src, nil
}

func (m *FBAck) appendTo(dst []byte) []byte {
	dst = putBool(dst, m.Accepted)
	return putAddr(dst, m.PCoA)
}

func (m *FBAck) decode(src []byte) ([]byte, error) {
	var err error
	if m.Accepted, src, err = getBool(src); err != nil {
		return nil, err
	}
	if m.PCoA, src, err = getAddr(src); err != nil {
		return nil, err
	}
	return src, nil
}

func (m *FNA) appendTo(dst []byte) []byte {
	dst = putAddr(dst, m.NCoA)
	dst = putAddr(dst, m.PCoA)
	dst = putBool(dst, m.BufferForward)
	dst = putBytes(dst, m.MAC)
	// The selective-delivery report is a trailing extension encoded only
	// when present, so report-free FNAs keep the pre-SafetyNet wire size.
	if len(m.Report) > 0 {
		n := len(m.Report)
		if n > 255 {
			n = 255
		}
		dst = append(dst, byte(n))
		for _, e := range m.Report[:n] {
			dst = putU32(dst, e.Flow)
			dst = putU32(dst, e.Ack)
		}
	}
	return dst
}

func (m *FNA) decode(src []byte) ([]byte, error) {
	var err error
	if m.NCoA, src, err = getAddr(src); err != nil {
		return nil, err
	}
	if m.PCoA, src, err = getAddr(src); err != nil {
		return nil, err
	}
	if m.BufferForward, src, err = getBool(src); err != nil {
		return nil, err
	}
	if m.MAC, src, err = getBytes(src); err != nil {
		return nil, err
	}
	m.Report = nil
	if len(src) > 0 {
		n := int(src[0])
		src = src[1:]
		m.Report = make([]FlowSeq, 0, n)
		for i := 0; i < n; i++ {
			var e FlowSeq
			if e.Flow, src, err = getU32(src); err != nil {
				return nil, err
			}
			if e.Ack, src, err = getU32(src); err != nil {
				return nil, err
			}
			m.Report = append(m.Report, e)
		}
	}
	return src, nil
}

func (m *BF) appendTo(dst []byte) []byte { return putAddr(dst, m.PCoA) }

func (m *BF) decode(src []byte) ([]byte, error) {
	var err error
	if m.PCoA, src, err = getAddr(src); err != nil {
		return nil, err
	}
	return src, nil
}

func (m *BufferFull) appendTo(dst []byte) []byte { return putAddr(dst, m.PCoA) }

func (m *BufferFull) decode(src []byte) ([]byte, error) {
	var err error
	if m.PCoA, src, err = getAddr(src); err != nil {
		return nil, err
	}
	return src, nil
}
