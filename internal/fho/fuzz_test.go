package fho

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the wire decoder with arbitrary input. The invariants:
// never panic, and anything that decodes re-encodes to something that
// decodes to the same message (canonical-form round trip).
func FuzzDecode(f *testing.F) {
	for _, m := range sampleMessages() {
		f.Add(Encode(m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(m)
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded message does not decode: %v", err)
		}
		if !bytes.Equal(re, Encode(m2)) {
			t.Fatalf("canonical encoding unstable:\n first %x\nsecond %x", re, Encode(m2))
		}
	})
}
