package fho

import (
	"crypto/hmac"
	"crypto/sha256"
)

// Authenticator signs and verifies handover control messages with an
// HMAC-SHA256 over their wire encoding — the thesis' third future-work
// item: "Authentication mechanism is required before the NAR accepts
// handoffs from mobile hosts." Routers of one administrative domain (and
// the hosts they serve) share a key; an HI or FNA whose MAC does not
// verify is refused.
type Authenticator struct {
	key []byte
}

// NewAuthenticator creates an authenticator for the shared key. A nil or
// empty key yields a nil authenticator (authentication disabled).
func NewAuthenticator(key []byte) *Authenticator {
	if len(key) == 0 {
		return nil
	}
	k := make([]byte, len(key))
	copy(k, key)
	return &Authenticator{key: k}
}

// MACSize is the length of the authentication tag.
const MACSize = sha256.Size

// Sign computes the tag over the message's encoding. The message's MAC
// field (if any) must be empty while signing.
func (a *Authenticator) Sign(m Message) []byte {
	mac := hmac.New(sha256.New, a.key)
	mac.Write(Encode(m))
	return mac.Sum(nil)
}

// Verify reports whether tag authenticates the message (whose MAC field
// must already be cleared).
func (a *Authenticator) Verify(m Message, tag []byte) bool {
	return hmac.Equal(a.Sign(m), tag)
}

// SignHI attaches a tag to a handover-initiate message in place.
func (a *Authenticator) SignHI(m *HI) {
	m.MAC = nil
	m.MAC = a.Sign(m)
}

// VerifyHI checks and strips the tag; it reports whether the message is
// authentic. The message is left with an empty MAC either way.
func (a *Authenticator) VerifyHI(m *HI) bool {
	tag := m.MAC
	m.MAC = nil
	return a.Verify(m, tag)
}

// SignRtSolPr attaches a tag to a router solicitation in place.
func (a *Authenticator) SignRtSolPr(m *RtSolPr) {
	m.MAC = nil
	m.MAC = a.Sign(m)
}

// VerifyRtSolPr checks and strips the tag.
func (a *Authenticator) VerifyRtSolPr(m *RtSolPr) bool {
	tag := m.MAC
	m.MAC = nil
	return a.Verify(m, tag)
}

// SignFBU attaches a tag to a fast binding update in place.
func (a *Authenticator) SignFBU(m *FBU) {
	m.MAC = nil
	m.MAC = a.Sign(m)
}

// VerifyFBU checks and strips the tag.
func (a *Authenticator) VerifyFBU(m *FBU) bool {
	tag := m.MAC
	m.MAC = nil
	return a.Verify(m, tag)
}

// SignFNA attaches a tag to a fast-neighbor-advertisement in place.
func (a *Authenticator) SignFNA(m *FNA) {
	m.MAC = nil
	m.MAC = a.Sign(m)
}

// VerifyFNA checks and strips the tag.
func (a *Authenticator) VerifyFNA(m *FNA) bool {
	tag := m.MAC
	m.MAC = nil
	return a.Verify(m, tag)
}
