package fho

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestAuthenticatorSignVerify(t *testing.T) {
	a := NewAuthenticator([]byte("domain-key"))
	hi := &HI{PCoA: addr(2, 7), NCoA: addr(3, 7), MHLinkLayer: "ap-nar",
		BR: &BufferRequest{Size: 20, Lifetime: sim.Second}}
	a.SignHI(hi)
	if len(hi.MAC) != MACSize {
		t.Fatalf("MAC length = %d, want %d", len(hi.MAC), MACSize)
	}
	if !a.VerifyHI(hi) {
		t.Fatal("freshly signed HI did not verify")
	}
}

func TestAuthenticatorRejectsTampering(t *testing.T) {
	a := NewAuthenticator([]byte("domain-key"))
	hi := &HI{PCoA: addr(2, 7), NCoA: addr(3, 7)}
	a.SignHI(hi)
	hi.NCoA = addr(3, 99) // redirect the handoff elsewhere
	if a.VerifyHI(hi) {
		t.Fatal("tampered HI verified")
	}
}

func TestAuthenticatorRejectsWrongKey(t *testing.T) {
	signer := NewAuthenticator([]byte("key-a"))
	verifier := NewAuthenticator([]byte("key-b"))
	fna := &FNA{NCoA: addr(3, 7), PCoA: addr(2, 7), BufferForward: true}
	signer.SignFNA(fna)
	if verifier.VerifyFNA(fna) {
		t.Fatal("cross-key FNA verified")
	}
}

func TestAuthenticatorRejectsMissingMAC(t *testing.T) {
	a := NewAuthenticator([]byte("domain-key"))
	if a.VerifyHI(&HI{PCoA: addr(2, 7)}) {
		t.Fatal("unsigned HI verified")
	}
	if a.VerifyFNA(&FNA{PCoA: addr(2, 7)}) {
		t.Fatal("unsigned FNA verified")
	}
}

func TestNewAuthenticatorEmptyKeyDisabled(t *testing.T) {
	if NewAuthenticator(nil) != nil || NewAuthenticator([]byte{}) != nil {
		t.Fatal("empty key should disable authentication")
	}
}

func TestAuthenticatorKeyIsCopied(t *testing.T) {
	key := []byte("mutable")
	a := NewAuthenticator(key)
	hi := &HI{PCoA: addr(2, 7)}
	a.SignHI(hi)
	key[0] ^= 0xFF // caller mutates its buffer
	if !a.VerifyHI(hi) {
		t.Fatal("authenticator shared the caller's key buffer")
	}
}

func TestSignedMessagesRoundTripOnWire(t *testing.T) {
	a := NewAuthenticator([]byte("domain-key"))
	fna := &FNA{NCoA: addr(3, 7), PCoA: addr(2, 7), BufferForward: true}
	a.SignFNA(fna)
	decoded, err := Decode(Encode(fna))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !a.VerifyFNA(decoded.(*FNA)) {
		t.Fatal("FNA MAC did not survive the wire")
	}
}

// Property: any single-bit flip in a signed HI's encoding is detected.
func TestPropertyTamperDetection(t *testing.T) {
	a := NewAuthenticator([]byte("domain-key"))
	f := func(bitRaw uint16) bool {
		hi := &HI{PCoA: addr(2, 7), NCoA: addr(3, 7), MHLinkLayer: "ap",
			BR: &BufferRequest{Size: 20, Lifetime: sim.Second}}
		a.SignHI(hi)
		data := Encode(hi)
		bit := int(bitRaw) % (len(data) * 8)
		data[bit/8] ^= 1 << (bit % 8)
		decoded, err := Decode(data)
		if err != nil {
			return true // corruption broke the framing: also a rejection
		}
		flipped, ok := decoded.(*HI)
		if !ok {
			return true // kind byte flipped into another message
		}
		verified := a.VerifyHI(flipped) // clears flipped.MAC
		if !verified {
			return true
		}
		// Verification may only succeed when the flip was semantically
		// inert (e.g. a non-canonical bool byte): the decoded message must
		// equal the original.
		want := &HI{PCoA: addr(2, 7), NCoA: addr(3, 7), MHLinkLayer: "ap",
			BR: &BufferRequest{Size: 20, Lifetime: sim.Second}}
		return reflect.DeepEqual(flipped, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
