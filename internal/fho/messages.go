// Package fho defines the Fast Handovers for Mobile IPv6 control messages
// together with the thesis' piggybacked buffer-management options:
//
//	RtSolPr + BI  — router solicitation for proxy + buffer initialization
//	PrRtAdv       — proxy router advertisement (returns the negotiation)
//	HI + BR       — handover initiate + buffer request
//	HAck + BA     — handover acknowledge + buffer acknowledgement
//	FBU / FBAck   — fast binding update / acknowledgement
//	FNA + BF      — fast neighbor advertisement + buffer forward
//	BF            — standalone buffer forward (NAR→PAR relay)
//	BufferFull    — NAR→PAR notification that the NAR buffer filled
//
// Messages have a compact binary wire format (see wire.go) so control
// packet sizes are accounted realistically and the encoding is testable.
package fho

import (
	"repro/internal/inet"
	"repro/internal/sim"
)

// Kind discriminates the control messages on the wire.
type Kind uint8

const (
	// KindRtSolPr is the Router Solicitation for Proxy.
	KindRtSolPr Kind = iota + 1
	// KindPrRtAdv is the Proxy Router Advertisement.
	KindPrRtAdv
	// KindHI is the Handover Initiate.
	KindHI
	// KindHAck is the Handover Acknowledge.
	KindHAck
	// KindFBU is the Fast Binding Update.
	KindFBU
	// KindFBAck is the Fast Binding Acknowledgement.
	KindFBAck
	// KindFNA is the Fast Neighbor Advertisement.
	KindFNA
	// KindBF is the standalone Buffer Forward.
	KindBF
	// KindBufferFull is the NAR's buffer-full notification.
	KindBufferFull
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindRtSolPr:
		return "RtSolPr"
	case KindPrRtAdv:
		return "PrRtAdv"
	case KindHI:
		return "HI"
	case KindHAck:
		return "HAck"
	case KindFBU:
		return "FBU"
	case KindFBAck:
		return "FBAck"
	case KindFNA:
		return "FNA"
	case KindBF:
		return "BF"
	case KindBufferFull:
		return "BufferFull"
	default:
		return "Kind(?)"
	}
}

// Message is a fast-handover control message.
type Message interface {
	// Kind returns the wire discriminator.
	Kind() Kind
	// appendTo serializes the message body (without the kind byte).
	appendTo(dst []byte) []byte
	// decode parses the message body, returning the remaining bytes.
	decode(src []byte) ([]byte, error)
}

// BufferInit is the BI option piggybacked on RtSolPr (§3.2.2.1): the mobile
// host's buffer request to its current access router.
type BufferInit struct {
	// Size is the requested buffer space in packets.
	Size uint16
	// Start is when the PAR should begin buffering even without an FBU,
	// protecting hosts that move too fast to send one. Zero start and
	// lifetime cancels the handoff.
	Start sim.Time
	// Lifetime bounds how long the buffering space stays allocated.
	Lifetime sim.Time
}

// Cancelled reports whether the option encodes a handover cancellation
// (start time and lifetime both zero, per the thesis).
func (bi BufferInit) Cancelled() bool { return bi.Start == 0 && bi.Lifetime == 0 }

// BufferRequest is the BR option piggybacked on HI: the buffer size and
// lifetime the PAR relays to the NAR.
type BufferRequest struct {
	Size     uint16
	Lifetime sim.Time
}

// BufferAck is the BA option piggybacked on HAck: whether the NAR can
// provide the requested buffer space, and how much it granted. The grant
// size lets the PAR switch to local buffering proactively once it has
// forwarded a NAR buffer's worth, instead of always paying the BufferFull
// round trip.
type BufferAck struct {
	Granted bool
	Size    uint16
}

// RtSolPr is the Router Solicitation for Proxy, optionally carrying a BI.
type RtSolPr struct {
	// MH is the soliciting mobile host's current (previous) care-of
	// address.
	MH inet.Addr
	// TargetAP is the link-layer identifier of the access point the host
	// intends to attach to.
	TargetAP string
	// BI is the piggybacked buffer initialization (nil when the host does
	// not request buffering).
	BI *BufferInit
	// MAC authenticates the message when the domain requires it.
	MAC []byte
}

// Kind implements Message.
func (*RtSolPr) Kind() Kind { return KindRtSolPr }

// PrRtAdv is the Proxy Router Advertisement answering an RtSolPr. In the
// enhanced scheme it also reports the outcome of the buffer negotiation so
// the mobile host learns the allocation before disconnecting.
type PrRtAdv struct {
	// NAR is the new access router's address (zero for a pure link-layer
	// handoff, where no router change happens).
	NAR inet.Addr
	// NARNet is the network prefix the NAR serves, from which the host
	// formulates its new care-of address.
	NARNet inet.NetID
	// NCoA is the proposed new care-of address.
	NCoA inet.Addr
	// NARGranted and PARGranted report the buffer negotiation outcome
	// (Table 3.2).
	NARGranted bool
	PARGranted bool
	// LinkLayerOnly marks the §3.2.2.4 case: the target AP belongs to the
	// same access router, so only buffering (no address change) happens.
	LinkLayerOnly bool
	// TargetAP names the access point the host should attach to. Solicited
	// advertisements may leave it empty (the host chose the target);
	// network-initiated ones must set it.
	TargetAP string
}

// Kind implements Message.
func (*PrRtAdv) Kind() Kind { return KindPrRtAdv }

// Availability returns the negotiated buffer availability.
func (m *PrRtAdv) Availability() (nar, par bool) { return m.NARGranted, m.PARGranted }

// HI is the Handover Initiate sent PAR→NAR, optionally carrying a BR.
type HI struct {
	// PCoA is the mobile host's previous care-of address.
	PCoA inet.Addr
	// NCoA is the proposed new care-of address (may be zero when unknown).
	NCoA inet.Addr
	// MHLinkLayer is the host's link-layer identifier.
	MHLinkLayer string
	// PARGranted tells the NAR whether the PAR reserved buffer space, so
	// both routers agree on the Table 3.2 case.
	PARGranted bool
	// BR is the piggybacked buffer request.
	BR *BufferRequest
	// MAC authenticates the message when the domain requires it
	// (HMAC-SHA256; see Authenticator).
	MAC []byte
}

// Kind implements Message.
func (*HI) Kind() Kind { return KindHI }

// HAck is the Handover Acknowledge sent NAR→PAR, optionally carrying a BA.
type HAck struct {
	// Accepted reports whether the NAR accepted the handover (valid NCoA,
	// host route installed, reverse tunnel ready).
	Accepted bool
	// PCoA identifies the session this acknowledgement belongs to.
	PCoA inet.Addr
	// BA is the piggybacked buffer acknowledgement.
	BA *BufferAck
}

// Kind implements Message.
func (*HAck) Kind() Kind { return KindHAck }

// FBU is the Fast Binding Update the mobile host sends to the PAR right
// before disconnecting; it starts packet redirection.
type FBU struct {
	PCoA inet.Addr
	NCoA inet.Addr
	// MAC authenticates the message when the domain requires it.
	MAC []byte
}

// Kind implements Message.
func (*FBU) Kind() Kind { return KindFBU }

// FBAck is the Fast Binding Acknowledgement, sent to the mobile host on
// both the old and new links and to the NAR.
type FBAck struct {
	Accepted bool
	PCoA     inet.Addr
}

// Kind implements Message.
func (*FBAck) Kind() Kind { return KindFBAck }

// FlowSeq is one entry of a selective-delivery report: every packet of
// Flow with sequence number <= Ack has already reached the host.
type FlowSeq struct {
	Flow uint32
	Ack  uint32
}

// FNA is the Fast Neighbor Advertisement the host sends on attaching to the
// NAR; with BufferForward set it doubles as the BF of the enhanced scheme.
type FNA struct {
	// NCoA is the address the host announces on the new link.
	NCoA inet.Addr
	// PCoA identifies the handoff session.
	PCoA inet.Addr
	// BufferForward requests immediate release of the buffered packets.
	BufferForward bool
	// MAC authenticates the message when the domain requires it.
	MAC []byte
	// Report is the SafetyNet selective-delivery report: per-flow
	// cumulative acks telling the NAR which held bicast copies are already
	// delivered. Encoded only when non-empty, so FNAs of the buffering
	// schemes are byte-identical to the pre-SafetyNet wire format. The MAC
	// covers it (signing hashes the full encoding).
	Report []FlowSeq
}

// Kind implements Message.
func (*FNA) Kind() Kind { return KindFNA }

// BF is the standalone Buffer Forward message: relayed NAR→PAR, or sent
// MH→AR after a pure link-layer handoff.
type BF struct {
	PCoA inet.Addr
}

// Kind implements Message.
func (*BF) Kind() Kind { return KindBF }

// BufferFull notifies the PAR that the NAR's buffer space for a session is
// exhausted, so the PAR should buffer the remaining high-priority packets
// (Case 1.b).
type BufferFull struct {
	PCoA inet.Addr
}

// Kind implements Message.
func (*BufferFull) Kind() Kind { return KindBufferFull }
