package fho

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/inet"
	"repro/internal/sim"
)

func addr(n, h uint32) inet.Addr { return inet.Addr{Net: inet.NetID(n), Host: inet.HostID(h)} }

func sampleMessages() []Message {
	return []Message{
		&RtSolPr{MH: addr(1, 7), TargetAP: "ap-nar", BI: &BufferInit{
			Size: 20, Start: 100 * sim.Millisecond, Lifetime: 2 * sim.Second,
		}},
		&RtSolPr{MH: addr(1, 7)}, // no BI
		&PrRtAdv{NAR: addr(2, 1), NARNet: 2, NCoA: addr(2, 7), NARGranted: true, PARGranted: false},
		&PrRtAdv{LinkLayerOnly: true, PARGranted: true},
		&HI{PCoA: addr(1, 7), NCoA: addr(2, 7), MHLinkLayer: "mh-01", PARGranted: true,
			BR: &BufferRequest{Size: 20, Lifetime: 2 * sim.Second}},
		&HI{PCoA: addr(1, 7)},
		&HAck{Accepted: true, PCoA: addr(1, 7), BA: &BufferAck{Granted: true, Size: 20}},
		&HAck{Accepted: false, PCoA: addr(1, 7)},
		&FBU{PCoA: addr(1, 7), NCoA: addr(2, 7)},
		&FBAck{Accepted: true, PCoA: addr(1, 7)},
		&FNA{NCoA: addr(2, 7), PCoA: addr(1, 7), BufferForward: true},
		&BF{PCoA: addr(1, 7)},
		&BufferFull{PCoA: addr(1, 7)},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, m := range sampleMessages() {
		data := Encode(m)
		got, err := Decode(data)
		if err != nil {
			t.Errorf("Decode(%s): %v", m.Kind(), err)
			continue
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip %s:\n got %+v\nwant %+v", m.Kind(), got, m)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	for _, m := range sampleMessages() {
		data := Encode(m)
		for cut := 0; cut < len(data); cut++ {
			if _, err := Decode(data[:cut]); err == nil {
				t.Errorf("%s truncated to %d bytes decoded without error", m.Kind(), cut)
			}
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	data := append(Encode(&FBU{PCoA: addr(1, 7), NCoA: addr(2, 7)}), 0xFF)
	if _, err := Decode(data); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestDecodeRejectsUnknownKind(t *testing.T) {
	if _, err := Decode([]byte{0xEE, 0, 0}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestEncodeIsDeterministic(t *testing.T) {
	m := &HI{PCoA: addr(1, 7), NCoA: addr(2, 7), MHLinkLayer: "x",
		BR: &BufferRequest{Size: 5, Lifetime: sim.Second}}
	if !bytes.Equal(Encode(m), Encode(m)) {
		t.Fatal("two encodings differ")
	}
}

func TestWireSizeIncludesHeader(t *testing.T) {
	m := &BF{PCoA: addr(1, 7)}
	if got, want := WireSize(m), ControlHeaderSize+len(Encode(m)); got != want {
		t.Fatalf("WireSize = %d, want %d", got, want)
	}
	if WireSize(m) <= ControlHeaderSize {
		t.Fatal("WireSize not larger than bare header")
	}
}

// The selective-delivery report is a trailing extension: report-free FNAs
// must stay byte-identical to the pre-Report wire format, and a
// report-carrying FNA must round-trip.
func TestFNAReportRoundTrip(t *testing.T) {
	plain := &FNA{NCoA: addr(2, 7), PCoA: addr(1, 7), BufferForward: true}
	baseline := Encode(plain)

	with := &FNA{NCoA: addr(2, 7), PCoA: addr(1, 7), BufferForward: true,
		Report: []FlowSeq{{Flow: 3, Ack: 117}, {Flow: 9, Ack: 0}}}
	data := Encode(with)
	if !bytes.Equal(data[:len(baseline)], baseline) {
		t.Fatal("report changed the leading FNA encoding")
	}
	if len(data) != len(baseline)+1+2*8 {
		t.Fatalf("report encoding = %d extra bytes, want %d", len(data)-len(baseline), 1+2*8)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, with) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, with)
	}
	// Mid-report truncations must be rejected.
	for cut := len(baseline) + 1; cut < len(data); cut++ {
		if _, err := Decode(data[:cut]); err == nil {
			t.Errorf("report truncated to %d bytes decoded without error", cut)
		}
	}
}

// Truncating a signed FNA exactly at the report boundary yields a legal
// report-free FNA (the price of a backward-compatible trailing
// extension), but the MAC covers the report, so verification catches it.
func TestFNAReportTruncationFailsMAC(t *testing.T) {
	a := NewAuthenticator([]byte("k"))
	m := &FNA{NCoA: addr(2, 7), PCoA: addr(1, 7), BufferForward: true,
		Report: []FlowSeq{{Flow: 1, Ack: 4}}}
	a.SignFNA(m)
	data := Encode(m)
	cut := len(data) - (1 + 8) // drop the whole report extension
	got, err := Decode(data[:cut])
	if err != nil {
		t.Fatalf("Decode of report-stripped FNA: %v", err)
	}
	stripped := got.(*FNA)
	if len(stripped.Report) != 0 {
		t.Fatalf("stripped FNA still has a report: %+v", stripped.Report)
	}
	if a.VerifyFNA(stripped) {
		t.Fatal("MAC verified after the report was stripped")
	}
	full, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !a.VerifyFNA(full.(*FNA)) {
		t.Fatal("intact signed report FNA failed verification")
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KindRtSolPr, KindPrRtAdv, KindHI, KindHAck, KindFBU,
		KindFBAck, KindFNA, KindBF, KindBufferFull}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if s == "Kind(?)" || seen[s] {
			t.Errorf("bad or duplicate Kind string %q", s)
		}
		seen[s] = true
	}
	if Kind(200).String() != "Kind(?)" {
		t.Error("unknown kind string")
	}
}

func TestBufferInitCancelled(t *testing.T) {
	if !(BufferInit{Size: 10}).Cancelled() {
		t.Fatal("zero start+lifetime should read as cancellation")
	}
	if (BufferInit{Start: 1}).Cancelled() || (BufferInit{Lifetime: 1}).Cancelled() {
		t.Fatal("non-zero timing misread as cancellation")
	}
}

func TestLongTargetAPTruncatedOnWire(t *testing.T) {
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'a'
	}
	m := &RtSolPr{MH: addr(1, 1), TargetAP: string(long)}
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got.(*RtSolPr).TargetAP) != 255 {
		t.Fatalf("TargetAP length = %d, want 255", len(got.(*RtSolPr).TargetAP))
	}
}

// Property: RtSolPr round-trips for arbitrary field values.
func TestPropertyRtSolPrRoundTrip(t *testing.T) {
	f := func(n, h uint32, ap string, hasBI bool, size uint16, start, life int64) bool {
		if len(ap) > 255 {
			ap = ap[:255]
		}
		m := &RtSolPr{MH: addr(n, h), TargetAP: ap}
		if hasBI {
			m.BI = &BufferInit{Size: size, Start: sim.Time(start), Lifetime: sim.Time(life)}
		}
		got, err := Decode(Encode(m))
		return err == nil && reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: HAck round-trips for arbitrary field values.
func TestPropertyHAckRoundTrip(t *testing.T) {
	f := func(accepted bool, n, h uint32, hasBA, granted bool, size uint16) bool {
		m := &HAck{Accepted: accepted, PCoA: addr(n, h)}
		if hasBA {
			m.BA = &BufferAck{Granted: granted, Size: size}
		}
		got, err := Decode(Encode(m))
		return err == nil && reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding arbitrary junk never panics.
func TestPropertyDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if recover() != nil {
				t.Error("Decode panicked")
			}
		}()
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
