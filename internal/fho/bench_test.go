package fho

import (
	"testing"

	"repro/internal/sim"
)

func BenchmarkEncodeHI(b *testing.B) {
	m := &HI{PCoA: addr(2, 7), NCoA: addr(3, 7), MHLinkLayer: "ap-nar",
		PARGranted: true, BR: &BufferRequest{Size: 20, Lifetime: sim.Second}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(m)
	}
}

func BenchmarkDecodeHI(b *testing.B) {
	data := Encode(&HI{PCoA: addr(2, 7), NCoA: addr(3, 7), MHLinkLayer: "ap-nar",
		PARGranted: true, BR: &BufferRequest{Size: 20, Lifetime: sim.Second}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSignVerify(b *testing.B) {
	a := NewAuthenticator([]byte("domain-key"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hi := &HI{PCoA: addr(2, 7), NCoA: addr(3, 7)}
		a.SignHI(hi)
		if !a.VerifyHI(hi) {
			b.Fatal("verify failed")
		}
	}
}
