package wireless

import (
	"math"

	"repro/internal/inet"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// APConfig configures an access point's radio.
type APConfig struct {
	// Pos is the AP's position on the one-dimensional track, meters.
	Pos float64
	// Radius is the coverage radius, meters (112 m in the thesis).
	Radius float64
	// BandwidthBPS is the radio line rate (11 Mb/s for 802.11b). Zero
	// means no serialization delay.
	BandwidthBPS int64
	// AirDelay is the over-the-air propagation plus MAC access delay per
	// frame.
	AirDelay sim.Time
	// QueueLimit bounds the shared downlink queue, in packets. Zero
	// selects netsim.DefaultQueueLimit.
	QueueLimit int
	// ReturnUndeliverable hands frames whose station detached back to the
	// wired router instead of dropping them, modelling a deployment where
	// the downlink queue logically belongs to the access router (as in the
	// thesis' ns-2 node structure). Each frame bounces at most once.
	ReturnUndeliverable bool
	// Signal is the path-loss model backing RSSI queries (nil selects
	// DefaultSignal). Coverage itself remains radius-based.
	Signal SignalModel
}

// Advertisement is the router-advertisement beacon relayed by an access
// point on behalf of its access router. Stations use it for movement
// detection (hearing a new AP's advertisement is the thesis' link-layer
// source trigger).
type Advertisement struct {
	// AP that emitted the beacon.
	AP *AccessPoint
	// Router is the advertising access router's address.
	Router inet.Addr
	// Net is the network prefix the router serves.
	Net inet.NetID
	// Interval is the advertisement period, so stations can infer
	// lifetime.
	Interval sim.Time
}

// AccessPoint bridges its access router's wired interface onto the radio.
// It implements netsim.Node for the wired side.
type AccessPoint struct {
	name   string
	cfg    APConfig
	engine *sim.Engine
	medium *Medium
	wired  *netsim.Iface

	// fused selects the analytic downlink transmit path; latched at
	// construction from FusedAir.
	fused bool

	// Classic two-event downlink transmitter state (WIRELESS_FUSED=0).
	// txPkt/inflight/txDoneFn/airFn mirror netsim.Iface's zero-alloc
	// transmit: handlers are pre-bound once and frames propagate through a
	// FIFO (AirDelay is constant, so arrivals complete in transmission
	// order). The in-flight FIFO is shared with the fused path.
	busy     bool
	queue    fifo[*inet.Packet]
	txPkt    *inet.Packet
	inflight fifo[*inet.Packet]
	txDoneFn sim.Handler
	airFn    sim.Handler

	// Analytic downlink transmit state (DESIGN.md §13).
	clock airClock

	airDrops uint64
	// AirDropHook observes packets transmitted while the destination
	// station was unreachable (detached or out of coverage) — the
	// packet-loss mechanism of an unbuffered handoff.
	AirDropHook func(pkt *inet.Packet)

	raTicker *sim.Ticker
	adv      Advertisement
}

// NewAccessPoint creates an access point and registers it with the medium.
func NewAccessPoint(name string, medium *Medium, cfg APConfig) *AccessPoint {
	// Zero-bandwidth radios always take the classic path (see fused.go).
	ap := &AccessPoint{name: name, cfg: cfg, engine: medium.engine, medium: medium,
		fused: FusedAir() && cfg.BandwidthBPS > 0}
	ap.txDoneFn = ap.txDone
	ap.airFn = ap.airArrive
	medium.addAP(ap)
	return ap
}

// Name implements netsim.Node.
func (ap *AccessPoint) Name() string { return ap.name }

// Pos returns the AP's position.
func (ap *AccessPoint) Pos() float64 { return ap.cfg.Pos }

// Covers reports whether a position is within radio range.
func (ap *AccessPoint) Covers(pos float64) bool {
	return math.Abs(pos-ap.cfg.Pos) <= ap.cfg.Radius
}

// AirDrops counts downlink packets lost because no station accepted them.
func (ap *AccessPoint) AirDrops() uint64 { return ap.airDrops }

// Sent counts downlink frames fully serialized onto the air.
func (ap *AccessPoint) Sent() uint64 {
	if ap.fused {
		ap.clock.drain(ap.engine)
	}
	return ap.clock.sent
}

// QueueLen returns the number of packets waiting on the downlink behind
// the frame being serialized.
func (ap *AccessPoint) QueueLen() int {
	if ap.fused {
		ap.clock.drain(ap.engine)
		if m := ap.clock.occupancy(); m > 0 {
			return m - 1
		}
		return 0
	}
	return ap.queue.Len()
}

// AttachIface is invoked by netsim.Connect; it records the wired uplink
// toward the access router.
func (ap *AccessPoint) AttachIface(ifc *netsim.Iface) { ap.wired = ifc }

// StartAdvertising begins periodic router advertisements with the given
// content. The first beacon is staggered by phase to model unsynchronized
// APs.
func (ap *AccessPoint) StartAdvertising(adv Advertisement, interval, phase sim.Time) {
	adv.AP = ap
	adv.Interval = interval
	ap.adv = adv
	if ap.raTicker != nil {
		ap.raTicker.Stop()
	}
	ap.raTicker = sim.NewTickerAt(ap.engine, phase, interval, ap.beacon)
}

// StopAdvertising halts the beacon.
func (ap *AccessPoint) StopAdvertising() {
	if ap.raTicker != nil {
		ap.raTicker.Stop()
	}
}

// beacon delivers the advertisement to every station currently in coverage,
// associated or not. The medium's position-bucket index narrows the scan to
// stations that can possibly be inside [Pos-Radius, Pos+Radius]; candidates
// are visited in registration order, exactly like the classic full scan.
func (ap *AccessPoint) beacon() {
	now := ap.engine.Now()
	for _, s := range ap.medium.buckets.candidates(ap.medium, ap.cfg.Pos, ap.cfg.Radius) {
		if s.hearsBeacons() && ap.Covers(s.Pos(now)) {
			s.deliverRA(ap.adv)
		}
	}
}

// HandlePacket implements netsim.Node: packets arriving from the wired side
// are transmitted on the shared downlink.
func (ap *AccessPoint) HandlePacket(in *netsim.Iface, pkt *inet.Packet) {
	ap.transmitDown(pkt)
}

func (ap *AccessPoint) queueLimit() int {
	if ap.cfg.QueueLimit == 0 {
		return netsim.DefaultQueueLimit
	}
	return ap.cfg.QueueLimit
}

// dropAir discards a downlink packet the radio could not serve.
func (ap *AccessPoint) dropAir(pkt *inet.Packet) {
	ap.airDrops++
	if ap.AirDropHook != nil {
		ap.AirDropHook(pkt)
	}
}

// transmitDown serializes pkt on the shared downlink.
func (ap *AccessPoint) transmitDown(pkt *inet.Packet) {
	if ap.fused {
		ap.sendFused(pkt)
		return
	}
	if ap.busy {
		if ap.queue.Len() >= ap.queueLimit() {
			ap.dropAir(pkt)
			return
		}
		ap.queue.Push(pkt)
		return
	}
	ap.startTx(pkt)
}

// sendFused admits a packet on the analytic downlink: one pre-bound
// delivery event at the instant the classic path's airArrive would fire,
// pinned at the same virtual key. The AP never detaches, so no repair
// machinery is needed (compare Station.nicReset).
func (ap *AccessPoint) sendFused(pkt *inet.Packet) {
	ap.clock.drain(ap.engine)
	if m := ap.clock.occupancy(); m > 0 && m-1 >= ap.queueLimit() {
		ap.dropAir(pkt)
		return
	}
	start, dep, idx := ap.clock.push(ap.engine, pkt.Size, ap.cfg.BandwidthBPS)
	ent := &ap.clock.ring[idx]
	ap.inflight.Push(pkt)
	ent.ref = ap.engine.AtPinned(dep+ap.cfg.AirDelay, dep, start, ent.pseq, ap.airFn)
}

func (ap *AccessPoint) startTx(pkt *inet.Packet) {
	ap.busy = true
	ap.txPkt = pkt
	var txTime sim.Time
	if ap.cfg.BandwidthBPS > 0 {
		txTime = sim.Time(int64(pkt.Size) * 8 * int64(sim.Second) / ap.cfg.BandwidthBPS)
	}
	ap.engine.Schedule(txTime, ap.txDoneFn)
}

// txDone fires when the current frame finishes serializing: it goes on the
// air and the next queued frame starts transmitting.
func (ap *AccessPoint) txDone() {
	ap.clock.sent++
	ap.inflight.Push(ap.txPkt)
	ap.txPkt = nil
	ap.engine.Schedule(ap.cfg.AirDelay, ap.airFn)
	ap.busy = false
	if ap.queue.Len() > 0 {
		ap.startTx(ap.queue.Pop())
	}
}

// airArrive fires one air delay after the frame departs; the constant
// delay keeps the in-flight FIFO in arrival order. Both transmit paths
// share this handler: the fused path pre-binds it per frame via AtPinned.
func (ap *AccessPoint) airArrive() {
	ap.deliver(ap.inflight.Pop())
}

// deliver hands the frame to the associated, in-coverage station that
// accepts the destination address. Undeliverable frames are either
// returned to the router (once, when configured) or counted as air drops.
// The medium's addr index names the sole station accepting pkt.Dst
// (addresses are single-owner, see Medium.claimAddr), so delivery checks
// one candidate instead of scanning the population; association, radio
// state, and coverage are evaluated on it at the arrival instant exactly
// as the classic scan did.
func (ap *AccessPoint) deliver(pkt *inet.Packet) {
	if s := ap.medium.addrIndex[pkt.Dst]; s != nil &&
		s.ap == ap && s.CanReceive() && ap.Covers(s.Pos(ap.engine.Now())) {
		s.deliverPacket(pkt)
		return
	}
	if ap.cfg.ReturnUndeliverable && !pkt.Requeued && ap.wired != nil {
		pkt.Requeued = true
		ap.wired.Send(pkt)
		return
	}
	ap.dropAir(pkt)
}

// sendUp bridges an uplink frame from a station onto the wired network.
func (ap *AccessPoint) sendUp(pkt *inet.Packet) {
	if ap.wired == nil {
		panic("wireless: access point " + ap.name + " has no wired link")
	}
	ap.wired.Send(pkt)
}
