package wireless

import (
	"math"

	"repro/internal/inet"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// APConfig configures an access point's radio.
type APConfig struct {
	// Pos is the AP's position on the one-dimensional track, meters.
	Pos float64
	// Radius is the coverage radius, meters (112 m in the thesis).
	Radius float64
	// BandwidthBPS is the radio line rate (11 Mb/s for 802.11b). Zero
	// means no serialization delay.
	BandwidthBPS int64
	// AirDelay is the over-the-air propagation plus MAC access delay per
	// frame.
	AirDelay sim.Time
	// QueueLimit bounds the shared downlink queue, in packets. Zero
	// selects netsim.DefaultQueueLimit.
	QueueLimit int
	// ReturnUndeliverable hands frames whose station detached back to the
	// wired router instead of dropping them, modelling a deployment where
	// the downlink queue logically belongs to the access router (as in the
	// thesis' ns-2 node structure). Each frame bounces at most once.
	ReturnUndeliverable bool
	// Signal is the path-loss model backing RSSI queries (nil selects
	// DefaultSignal). Coverage itself remains radius-based.
	Signal SignalModel
}

// Advertisement is the router-advertisement beacon relayed by an access
// point on behalf of its access router. Stations use it for movement
// detection (hearing a new AP's advertisement is the thesis' link-layer
// source trigger).
type Advertisement struct {
	// AP that emitted the beacon.
	AP *AccessPoint
	// Router is the advertising access router's address.
	Router inet.Addr
	// Net is the network prefix the router serves.
	Net inet.NetID
	// Interval is the advertisement period, so stations can infer
	// lifetime.
	Interval sim.Time
}

// AccessPoint bridges its access router's wired interface onto the radio.
// It implements netsim.Node for the wired side.
type AccessPoint struct {
	name   string
	cfg    APConfig
	engine *sim.Engine
	medium *Medium
	wired  *netsim.Iface

	// Downlink shared transmitter state. txPkt/inflight/txDoneFn/airFn
	// mirror netsim.Iface's zero-alloc transmit: handlers are pre-bound
	// once and frames propagate through a FIFO (AirDelay is constant, so
	// arrivals complete in transmission order).
	busy     bool
	queue    []*inet.Packet
	txPkt    *inet.Packet
	inflight []*inet.Packet
	txDoneFn sim.Handler
	airFn    sim.Handler

	airDrops uint64
	// AirDropHook observes packets transmitted while the destination
	// station was unreachable (detached or out of coverage) — the
	// packet-loss mechanism of an unbuffered handoff.
	AirDropHook func(pkt *inet.Packet)

	raTicker *sim.Ticker
	adv      Advertisement
}

// NewAccessPoint creates an access point and registers it with the medium.
func NewAccessPoint(name string, medium *Medium, cfg APConfig) *AccessPoint {
	ap := &AccessPoint{name: name, cfg: cfg, engine: medium.engine, medium: medium}
	ap.txDoneFn = ap.txDone
	ap.airFn = ap.airArrive
	medium.addAP(ap)
	return ap
}

// Name implements netsim.Node.
func (ap *AccessPoint) Name() string { return ap.name }

// Pos returns the AP's position.
func (ap *AccessPoint) Pos() float64 { return ap.cfg.Pos }

// Covers reports whether a position is within radio range.
func (ap *AccessPoint) Covers(pos float64) bool {
	return math.Abs(pos-ap.cfg.Pos) <= ap.cfg.Radius
}

// AirDrops counts downlink packets lost because no station accepted them.
func (ap *AccessPoint) AirDrops() uint64 { return ap.airDrops }

// QueueLen returns the number of packets waiting on the downlink.
func (ap *AccessPoint) QueueLen() int { return len(ap.queue) }

// AttachIface is invoked by netsim.Connect; it records the wired uplink
// toward the access router.
func (ap *AccessPoint) AttachIface(ifc *netsim.Iface) { ap.wired = ifc }

// StartAdvertising begins periodic router advertisements with the given
// content. The first beacon is staggered by phase to model unsynchronized
// APs.
func (ap *AccessPoint) StartAdvertising(adv Advertisement, interval, phase sim.Time) {
	adv.AP = ap
	adv.Interval = interval
	ap.adv = adv
	if ap.raTicker != nil {
		ap.raTicker.Stop()
	}
	ap.raTicker = sim.NewTickerAt(ap.engine, phase, interval, ap.beacon)
}

// StopAdvertising halts the beacon.
func (ap *AccessPoint) StopAdvertising() {
	if ap.raTicker != nil {
		ap.raTicker.Stop()
	}
}

// beacon delivers the advertisement to every station currently in coverage,
// associated or not.
func (ap *AccessPoint) beacon() {
	now := ap.engine.Now()
	for _, s := range ap.medium.stations {
		if s.hearsBeacons() && ap.Covers(s.Pos(now)) {
			s.deliverRA(ap.adv)
		}
	}
}

// HandlePacket implements netsim.Node: packets arriving from the wired side
// are transmitted on the shared downlink.
func (ap *AccessPoint) HandlePacket(in *netsim.Iface, pkt *inet.Packet) {
	ap.transmitDown(pkt)
}

// transmitDown serializes pkt on the shared downlink.
func (ap *AccessPoint) transmitDown(pkt *inet.Packet) {
	if ap.busy {
		limit := ap.cfg.QueueLimit
		if limit == 0 {
			limit = netsim.DefaultQueueLimit
		}
		if len(ap.queue) >= limit {
			ap.airDrops++
			if ap.AirDropHook != nil {
				ap.AirDropHook(pkt)
			}
			return
		}
		ap.queue = append(ap.queue, pkt)
		return
	}
	ap.startTx(pkt)
}

func (ap *AccessPoint) startTx(pkt *inet.Packet) {
	ap.busy = true
	ap.txPkt = pkt
	var txTime sim.Time
	if ap.cfg.BandwidthBPS > 0 {
		txTime = sim.Time(int64(pkt.Size) * 8 * int64(sim.Second) / ap.cfg.BandwidthBPS)
	}
	ap.engine.Schedule(txTime, ap.txDoneFn)
}

// txDone fires when the current frame finishes serializing: it goes on the
// air and the next queued frame starts transmitting.
func (ap *AccessPoint) txDone() {
	ap.inflight = append(ap.inflight, ap.txPkt)
	ap.engine.Schedule(ap.cfg.AirDelay, ap.airFn)
	if len(ap.queue) > 0 {
		next := ap.queue[0]
		copy(ap.queue, ap.queue[1:])
		ap.queue = ap.queue[:len(ap.queue)-1]
		ap.busy = false
		ap.startTx(next)
	} else {
		ap.busy = false
	}
}

// airArrive fires one air delay after txDone; the constant delay keeps the
// in-flight FIFO in arrival order.
func (ap *AccessPoint) airArrive() {
	pkt := ap.inflight[0]
	copy(ap.inflight, ap.inflight[1:])
	ap.inflight[len(ap.inflight)-1] = nil
	ap.inflight = ap.inflight[:len(ap.inflight)-1]
	ap.deliver(pkt)
}

// deliver hands the frame to the associated, in-coverage station that
// accepts the destination address. Undeliverable frames are either
// returned to the router (once, when configured) or counted as air drops.
func (ap *AccessPoint) deliver(pkt *inet.Packet) {
	now := ap.engine.Now()
	for _, s := range ap.medium.stations {
		if s.ap != ap || !s.CanReceive() {
			continue
		}
		if !ap.Covers(s.Pos(now)) {
			continue
		}
		if s.accepts(pkt.Dst) {
			s.deliverPacket(pkt)
			return
		}
	}
	if ap.cfg.ReturnUndeliverable && !pkt.Requeued && ap.wired != nil {
		pkt.Requeued = true
		ap.wired.Send(pkt)
		return
	}
	ap.airDrops++
	if ap.AirDropHook != nil {
		ap.AirDropHook(pkt)
	}
}

// sendUp bridges an uplink frame from a station onto the wired network.
func (ap *AccessPoint) sendUp(pkt *inet.Packet) {
	if ap.wired == nil {
		panic("wireless: access point " + ap.name + " has no wired link")
	}
	ap.wired.Send(pkt)
}
