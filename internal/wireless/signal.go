package wireless

import (
	"math"

	"repro/internal/sim"
)

// SignalModel maps transmitter–receiver distance to received power. The
// handover trigger (the thesis' L2-ST) is a signal-strength comparison in
// real stacks; this makes that comparison explicit and tunable.
type SignalModel interface {
	// RSSIdBm returns the received power at the given distance in meters.
	RSSIdBm(distance float64) float64
}

// LogDistance is the standard log-distance path-loss model:
//
//	rssi(d) = TxPowerdBm − RefLossdB − 10·Exponent·log10(max(d, RefDistance)/RefDistance)
type LogDistance struct {
	// TxPowerdBm is the transmit power (≈20 dBm for 802.11b).
	TxPowerdBm float64
	// RefLossdB is the loss at the reference distance (≈40 dB at 1 m for
	// 2.4 GHz).
	RefLossdB float64
	// Exponent is the path-loss exponent (2 free space, 3–4 urban).
	Exponent float64
	// RefDistance is the reference distance in meters.
	RefDistance float64
}

// DefaultSignal returns an 802.11b-flavoured model: 20 dBm transmit,
// 40 dB loss at 1 m, exponent 3.
func DefaultSignal() LogDistance {
	return LogDistance{TxPowerdBm: 20, RefLossdB: 40, Exponent: 3, RefDistance: 1}
}

// RSSIdBm implements SignalModel.
func (l LogDistance) RSSIdBm(distance float64) float64 {
	ref := l.RefDistance
	if ref <= 0 {
		ref = 1
	}
	if distance < ref {
		distance = ref
	}
	return l.TxPowerdBm - l.RefLossdB - 10*l.Exponent*math.Log10(distance/ref)
}

// SensitivitydBm returns the received power at the model's edge-of-coverage
// distance — the receive sensitivity a radius implies under this model.
func (l LogDistance) SensitivitydBm(radius float64) float64 {
	return l.RSSIdBm(radius)
}

// RSSI returns the received power a station at pos sees from this access
// point, under the AP's signal model (DefaultSignal when unset).
func (ap *AccessPoint) RSSI(pos float64) float64 {
	model := ap.cfg.Signal
	if model == nil {
		model = DefaultSignal()
	}
	return model.RSSIdBm(math.Abs(pos - ap.cfg.Pos))
}

// RSSI returns the received power the station sees from the given access
// point at the given instant.
func (s *Station) RSSI(ap *AccessPoint, at sim.Time) float64 {
	return ap.RSSI(s.Pos(at))
}
