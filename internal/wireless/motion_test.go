package wireless

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestFixedMotion(t *testing.T) {
	m := Fixed(42)
	if m.Pos(0) != 42 || m.Pos(100*sim.Second) != 42 {
		t.Fatal("Fixed moved")
	}
}

func TestLinearMotion(t *testing.T) {
	m := Linear{Start: 10, Speed: 10, From: sim.Second}
	tests := []struct {
		at   sim.Time
		want float64
	}{
		{0, 10},
		{sim.Second, 10},
		{2 * sim.Second, 20},
		{3500 * sim.Millisecond, 35},
	}
	for _, tt := range tests {
		if got := m.Pos(tt.at); !almostEqual(got, tt.want) {
			t.Errorf("Pos(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestLinearBackward(t *testing.T) {
	m := Linear{Start: 100, Speed: -10}
	if got := m.Pos(3 * sim.Second); !almostEqual(got, 70) {
		t.Fatalf("Pos = %v, want 70", got)
	}
}

func TestPingPongMotion(t *testing.T) {
	// 0 → 100 at 10 m/s: leg takes 10 s.
	m := PingPong{A: 0, B: 100, Speed: 10}
	tests := []struct {
		at   sim.Time
		want float64
	}{
		{0, 0},
		{5 * sim.Second, 50},
		{10 * sim.Second, 100},
		{15 * sim.Second, 50}, // on the way back
		{20 * sim.Second, 0},
		{25 * sim.Second, 50}, // second cycle
		{30 * sim.Second, 100},
	}
	for _, tt := range tests {
		if got := m.Pos(tt.at); !almostEqual(got, tt.want) {
			t.Errorf("Pos(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
	if got := m.LegDuration(); got != 10*sim.Second {
		t.Fatalf("LegDuration = %v, want 10s", got)
	}
}

func TestPingPongReversedEndpoints(t *testing.T) {
	m := PingPong{A: 100, B: 0, Speed: 10}
	if got := m.Pos(5 * sim.Second); !almostEqual(got, 50) {
		t.Fatalf("Pos(5s) = %v, want 50", got)
	}
	if got := m.Pos(10 * sim.Second); !almostEqual(got, 0) {
		t.Fatalf("Pos(10s) = %v, want 0", got)
	}
}

func TestPingPongDegenerate(t *testing.T) {
	m := PingPong{A: 5, B: 5, Speed: 10}
	if got := m.Pos(time100()); got != 5 {
		t.Fatalf("degenerate span Pos = %v, want 5", got)
	}
	m2 := PingPong{A: 5, B: 50, Speed: 0}
	if got := m2.Pos(time100()); got != 5 {
		t.Fatalf("zero speed Pos = %v, want 5", got)
	}
	if m2.LegDuration() != sim.MaxTime {
		t.Fatal("zero-speed LegDuration not MaxTime")
	}
}

func time100() sim.Time { return 100 * sim.Second }

// Property: ping-pong positions always stay within [min(A,B), max(A,B)].
func TestPropertyPingPongBounded(t *testing.T) {
	f := func(a, b int16, speedRaw uint8, atMS uint32) bool {
		speed := float64(speedRaw%50) + 1
		m := PingPong{A: float64(a), B: float64(b), Speed: speed}
		pos := m.Pos(sim.Time(atMS) * sim.Millisecond)
		lo, hi := math.Min(float64(a), float64(b)), math.Max(float64(a), float64(b))
		return pos >= lo-1e-6 && pos <= hi+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ping-pong is periodic with period 2*span/speed.
func TestPropertyPingPongPeriodic(t *testing.T) {
	f := func(atMS uint16) bool {
		m := PingPong{A: 0, B: 100, Speed: 10}
		period := 20 * sim.Second
		at := sim.Time(atMS) * sim.Millisecond
		return almostEqual(m.Pos(at), m.Pos(at+period))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
