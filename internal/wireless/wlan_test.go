package wireless

import (
	"testing"

	"repro/internal/inet"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// testWLAN wires AR(router) -- AP -- station at position 0.
type testWLAN struct {
	engine  *sim.Engine
	topo    *netsim.Topology
	medium  *Medium
	ar      *netsim.Router
	ap      *AccessPoint
	station *Station
}

func newTestWLAN(t *testing.T, motion Motion) *testWLAN {
	t.Helper()
	e := sim.NewEngine()
	topo := netsim.NewTopology(e)
	medium := NewMedium(e)
	ar := netsim.NewRouter("ar", inet.Addr{Net: 10, Host: 1})
	ap := NewAccessPoint("ap", medium, APConfig{
		Pos: 0, Radius: 112, BandwidthBPS: 11_000_000, AirDelay: sim.Millisecond,
	})
	link := topo.Connect(ar, ap, netsim.LinkConfig{BandwidthBPS: 100_000_000, Delay: sim.Millisecond / 2})
	st := NewStation("mh", medium, motion, StationConfig{
		BandwidthBPS: 11_000_000, AirDelay: sim.Millisecond, L2HandoffDelay: 200 * sim.Millisecond,
	})
	// AR delivers packets for the station's network out the AP link.
	ar.AddPrefixRoute(10, link.A())
	return &testWLAN{engine: e, topo: topo, medium: medium, ar: ar, ap: ap, station: st}
}

func TestDownlinkDelivery(t *testing.T) {
	w := newTestWLAN(t, Fixed(10))
	addr := inet.Addr{Net: 10, Host: 5}
	w.station.AddAddr(addr)
	w.station.Associate(w.ap)

	var got *inet.Packet
	w.station.OnPacket = func(pkt *inet.Packet) { got = pkt }

	pkt := &inet.Packet{Dst: addr, Proto: inet.ProtoUDP, Size: 160}
	w.ar.Forward(pkt)
	if err := w.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if got == nil {
		t.Fatal("packet not delivered over the air")
	}
	if w.ap.AirDrops() != 0 {
		t.Fatalf("AirDrops = %d, want 0", w.ap.AirDrops())
	}
}

func TestDownlinkLostWhenDetached(t *testing.T) {
	w := newTestWLAN(t, Fixed(10))
	addr := inet.Addr{Net: 10, Host: 5}
	w.station.AddAddr(addr)
	// Station never associates.
	received := 0
	w.station.OnPacket = func(pkt *inet.Packet) { received++ }
	var lost []*inet.Packet
	w.ap.AirDropHook = func(pkt *inet.Packet) { lost = append(lost, pkt) }

	w.ar.Forward(&inet.Packet{Dst: addr, Proto: inet.ProtoUDP, Size: 160})
	if err := w.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if received != 0 || len(lost) != 1 || w.ap.AirDrops() != 1 {
		t.Fatalf("received=%d lost=%d drops=%d, want 0/1/1", received, len(lost), w.ap.AirDrops())
	}
}

func TestDownlinkLostOutOfCoverage(t *testing.T) {
	w := newTestWLAN(t, Fixed(500)) // far outside radius 112
	addr := inet.Addr{Net: 10, Host: 5}
	w.station.AddAddr(addr)
	w.station.Associate(w.ap)

	received := 0
	w.station.OnPacket = func(pkt *inet.Packet) { received++ }
	w.ar.Forward(&inet.Packet{Dst: addr, Proto: inet.ProtoUDP, Size: 160})
	if err := w.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if received != 0 || w.ap.AirDrops() != 1 {
		t.Fatalf("received=%d drops=%d, want 0/1", received, w.ap.AirDrops())
	}
}

func TestDownlinkBlackoutDuringL2Handoff(t *testing.T) {
	w := newTestWLAN(t, Fixed(10))
	addr := inet.Addr{Net: 10, Host: 5}
	w.station.AddAddr(addr)
	w.station.Associate(w.ap)

	received := 0
	w.station.OnPacket = func(pkt *inet.Packet) { received++ }

	var downAt, upAt sim.Time = -1, -1
	w.station.OnLinkDown = func(ap *AccessPoint) { downAt = w.engine.Now() }
	w.station.OnLinkUp = func(ap *AccessPoint) { upAt = w.engine.Now() }

	// Switch (to the same AP, for simplicity) at t=1s; packet mid-blackout
	// is lost; packet after re-attach is delivered.
	w.engine.Schedule(sim.Second, func() { w.station.SwitchTo(w.ap) })
	w.engine.Schedule(1100*sim.Millisecond, func() {
		w.ar.Forward(&inet.Packet{Dst: addr, Proto: inet.ProtoUDP, Size: 160})
	})
	w.engine.Schedule(1500*sim.Millisecond, func() {
		w.ar.Forward(&inet.Packet{Dst: addr, Proto: inet.ProtoUDP, Size: 160})
	})
	if err := w.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if received != 1 {
		t.Fatalf("received = %d, want 1 (one lost in blackout)", received)
	}
	if downAt != sim.Second {
		t.Fatalf("link down at %v, want 1s", downAt)
	}
	if upAt != 1200*sim.Millisecond {
		t.Fatalf("link up at %v, want 1.2s (200ms blackout)", upAt)
	}
}

func TestUplinkReachesWiredNetwork(t *testing.T) {
	w := newTestWLAN(t, Fixed(10))
	addr := inet.Addr{Net: 10, Host: 5}
	w.station.AddAddr(addr)
	w.station.Associate(w.ap)

	var got *inet.Packet
	w.ar.LocalDeliver = func(in *netsim.Iface, pkt *inet.Packet) bool {
		got = pkt
		return true
	}
	w.station.Send(&inet.Packet{Src: addr, Dst: w.ar.Addr(), Proto: inet.ProtoControl, Size: 64})
	if err := w.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if got == nil {
		t.Fatal("uplink packet did not reach the access router")
	}
}

func TestUplinkDroppedWhenDetached(t *testing.T) {
	w := newTestWLAN(t, Fixed(10))
	w.station.Send(&inet.Packet{Dst: w.ar.Addr(), Proto: inet.ProtoControl, Size: 64})
	if err := w.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if w.station.TxDrops() != 1 {
		t.Fatalf("TxDrops = %d, want 1", w.station.TxDrops())
	}
}

func TestBeaconsHeardOnlyInCoverage(t *testing.T) {
	e := sim.NewEngine()
	medium := NewMedium(e)
	ap := NewAccessPoint("ap", medium, APConfig{Pos: 0, Radius: 112})
	// Station walks out of coverage at 10 m/s from position 100 (leaves at
	// t = 1.2 s).
	st := NewStation("mh", medium, Linear{Start: 100, Speed: 10}, StationConfig{})
	var heard []sim.Time
	st.OnRA = func(adv Advertisement) {
		if adv.AP != ap || adv.Net != 10 {
			t.Errorf("bad advertisement: %+v", adv)
		}
		heard = append(heard, e.Now())
	}
	ap.StartAdvertising(Advertisement{Router: inet.Addr{Net: 10, Host: 1}, Net: 10},
		sim.Second, 500*sim.Millisecond)
	if err := e.Run(5 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	ap.StopAdvertising()
	// Beacons at 0.5s (pos 105, in coverage) and 1.5s+ (pos 115+, out).
	if len(heard) != 1 || heard[0] != 500*sim.Millisecond {
		t.Fatalf("heard = %v, want [0.5s]", heard)
	}
}

func TestBeaconsNotHeardDuringBlackout(t *testing.T) {
	e := sim.NewEngine()
	medium := NewMedium(e)
	ap := NewAccessPoint("ap", medium, APConfig{Pos: 0, Radius: 112})
	st := NewStation("mh", medium, Fixed(0), StationConfig{L2HandoffDelay: 2 * sim.Second})
	heard := 0
	st.OnRA = func(adv Advertisement) { heard++ }
	st.Associate(ap)
	ap.StartAdvertising(Advertisement{Net: 10}, sim.Second, sim.Second)
	// Blackout covers t in (1.5s, 3.5s): beacons at 2s and 3s are missed.
	e.Schedule(1500*sim.Millisecond, func() { st.SwitchTo(ap) })
	if err := e.Run(4500 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	ap.StopAdvertising()
	if heard != 2 { // t=1s and t=4s
		t.Fatalf("heard = %d beacons, want 2", heard)
	}
}

func TestSharedDownlinkSerializes(t *testing.T) {
	w := newTestWLAN(t, Fixed(10))
	addr := inet.Addr{Net: 10, Host: 5}
	w.station.AddAddr(addr)
	w.station.Associate(w.ap)

	var arrivals []sim.Time
	w.station.OnPacket = func(pkt *inet.Packet) { arrivals = append(arrivals, w.engine.Now()) }

	// Two 1375-byte packets at 11 Mb/s take 1 ms each to serialize; with
	// 1 ms air delay they arrive at 2 ms and 3 ms when injected directly.
	w.ap.HandlePacket(nil, &inet.Packet{Dst: addr, Proto: inet.ProtoUDP, Size: 1375})
	w.ap.HandlePacket(nil, &inet.Packet{Dst: addr, Proto: inet.ProtoUDP, Size: 1375})
	if err := w.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	want := []sim.Time{2 * sim.Millisecond, 3 * sim.Millisecond}
	if len(arrivals) != 2 || arrivals[0] != want[0] || arrivals[1] != want[1] {
		t.Fatalf("arrivals = %v, want %v", arrivals, want)
	}
}

func TestStationAddressFilter(t *testing.T) {
	w := newTestWLAN(t, Fixed(10))
	mine := inet.Addr{Net: 10, Host: 5}
	other := inet.Addr{Net: 10, Host: 6}
	w.station.AddAddr(mine)
	w.station.Associate(w.ap)

	received := 0
	w.station.OnPacket = func(pkt *inet.Packet) { received++ }
	w.ap.HandlePacket(nil, &inet.Packet{Dst: other, Proto: inet.ProtoUDP, Size: 64})
	if err := w.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if received != 0 || w.ap.AirDrops() != 1 {
		t.Fatalf("received=%d drops=%d, want 0/1", received, w.ap.AirDrops())
	}

	w.station.RemoveAddr(mine)
	if w.station.HasAddr(mine) {
		t.Fatal("RemoveAddr did not remove")
	}
}

func TestTwoStationsOnOneAP(t *testing.T) {
	w := newTestWLAN(t, Fixed(10))
	addr1 := inet.Addr{Net: 10, Host: 5}
	addr2 := inet.Addr{Net: 10, Host: 6}
	w.station.AddAddr(addr1)
	w.station.Associate(w.ap)

	st2 := NewStation("mh2", w.medium, Fixed(20), StationConfig{})
	st2.AddAddr(addr2)
	st2.Associate(w.ap)

	got1, got2 := 0, 0
	w.station.OnPacket = func(pkt *inet.Packet) { got1++ }
	st2.OnPacket = func(pkt *inet.Packet) { got2++ }

	w.ap.HandlePacket(nil, &inet.Packet{Dst: addr2, Proto: inet.ProtoUDP, Size: 64})
	w.ap.HandlePacket(nil, &inet.Packet{Dst: addr1, Proto: inet.ProtoUDP, Size: 64})
	if err := w.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if got1 != 1 || got2 != 1 {
		t.Fatalf("got1=%d got2=%d, want 1/1", got1, got2)
	}
}

func TestAPCovers(t *testing.T) {
	e := sim.NewEngine()
	medium := NewMedium(e)
	ap := NewAccessPoint("ap", medium, APConfig{Pos: 100, Radius: 112})
	tests := []struct {
		pos  float64
		want bool
	}{
		{100, true},
		{-12, true},
		{212, true},
		{-12.5, false},
		{212.5, false},
	}
	for _, tt := range tests {
		if got := ap.Covers(tt.pos); got != tt.want {
			t.Errorf("Covers(%v) = %v, want %v", tt.pos, got, tt.want)
		}
	}
}

func TestReturnUndeliverableBouncesOnce(t *testing.T) {
	e := sim.NewEngine()
	topo := netsim.NewTopology(e)
	medium := NewMedium(e)
	ar := netsim.NewRouter("ar", inet.Addr{Net: 10, Host: 1})
	ap := NewAccessPoint("ap", medium, APConfig{
		Pos: 0, Radius: 112, ReturnUndeliverable: true,
	})
	link := topo.Connect(ar, ap, netsim.LinkConfig{})
	ar.AddPrefixRoute(10, link.A())

	addr := inet.Addr{Net: 10, Host: 5}
	// No station: first transmission bounces back to the router, which
	// forwards it out again; the second failure is a real air drop.
	returned := 0
	ar.Intercept = func(in *netsim.Iface, pkt *inet.Packet) bool {
		if pkt.Requeued {
			returned++
		}
		return false
	}
	ap.HandlePacket(nil, &inet.Packet{Dst: addr, Proto: inet.ProtoUDP, Size: 64})
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if returned != 1 {
		t.Fatalf("frame returned %d times, want 1", returned)
	}
	if ap.AirDrops() != 1 {
		t.Fatalf("AirDrops = %d, want 1 (dropped on second failure)", ap.AirDrops())
	}
}

func TestUplinkQueueOverflow(t *testing.T) {
	e := sim.NewEngine()
	topo := netsim.NewTopology(e)
	medium := NewMedium(e)
	ar := netsim.NewRouter("ar", inet.Addr{Net: 10, Host: 1})
	ap := NewAccessPoint("ap", medium, APConfig{Pos: 0, Radius: 112})
	topo.Connect(ar, ap, netsim.LinkConfig{})
	// Slow uplink with a 2-packet queue.
	st := NewStation("mh", medium, Fixed(0), StationConfig{
		BandwidthBPS: 1_000_000, QueueLimit: 2,
	})
	st.AddAddr(inet.Addr{Net: 10, Host: 5})
	st.Associate(ap)

	got := 0
	ar.LocalDeliver = func(in *netsim.Iface, pkt *inet.Packet) bool { got++; return true }
	// One transmitting + two queued; the rest overflow.
	for i := 0; i < 6; i++ {
		st.Send(&inet.Packet{Src: inet.Addr{Net: 10, Host: 5}, Dst: ar.Addr(),
			Proto: inet.ProtoControl, Size: 1250})
	}
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if got != 3 {
		t.Fatalf("delivered = %d, want 3", got)
	}
	if st.TxDrops() != 3 {
		t.Fatalf("TxDrops = %d, want 3", st.TxDrops())
	}
}

func TestDetachFlushesUplinkQueue(t *testing.T) {
	e := sim.NewEngine()
	topo := netsim.NewTopology(e)
	medium := NewMedium(e)
	ar := netsim.NewRouter("ar", inet.Addr{Net: 10, Host: 1})
	ap := NewAccessPoint("ap", medium, APConfig{Pos: 0, Radius: 112})
	topo.Connect(ar, ap, netsim.LinkConfig{})
	st := NewStation("mh", medium, Fixed(0), StationConfig{BandwidthBPS: 1_000_000})
	st.Associate(ap)

	// Queue three slow frames, then detach mid-transmission: the frame on
	// the air survives (best effort), the queued ones are flushed.
	for i := 0; i < 3; i++ {
		st.Send(&inet.Packet{Dst: ar.Addr(), Proto: inet.ProtoControl, Size: 1250})
	}
	e.Schedule(5*sim.Millisecond, st.Detach)
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if st.TxDrops() != 2 {
		t.Fatalf("TxDrops = %d, want 2 (queue flushed on detach)", st.TxDrops())
	}
	if st.Switching() {
		t.Fatal("Detach must not mark the station as switching")
	}
	if st.CanReceive() {
		t.Fatal("detached station can receive")
	}
}

func TestStationPositionAndName(t *testing.T) {
	e := sim.NewEngine()
	medium := NewMedium(e)
	st := NewStation("mh-x", medium, Linear{Start: 5, Speed: 2}, StationConfig{})
	if st.Name() != "mh-x" {
		t.Fatalf("Name = %q", st.Name())
	}
	if got := st.Pos(2 * sim.Second); got != 9 {
		t.Fatalf("Pos(2s) = %v, want 9", got)
	}
	if len(medium.APs()) != 0 {
		t.Fatal("unexpected APs")
	}
	if medium.Engine() != e {
		t.Fatal("Engine() wrong")
	}
}
