package wireless

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/inet"
	"repro/internal/sim"
)

// wobble is a Motion without a NextBoundary method, exercising the
// unindexed fallback of the position-bucket index.
type wobble struct{ center, amp float64 }

func (w wobble) Pos(at sim.Time) float64 {
	return w.center + w.amp*math.Sin(at.Seconds())
}

func TestAddrIndexChurn(t *testing.T) {
	e := sim.NewEngine()
	m := NewMedium(e)
	a := NewStation("a", m, Fixed(0), StationConfig{})
	b := NewStation("b", m, Fixed(1), StationConfig{})
	addr := inet.Addr{Net: 1, Host: 1}

	a.AddAddr(addr)
	if m.addrIndex[addr] != a {
		t.Fatalf("addr not indexed to a")
	}
	a.AddAddr(addr) // idempotent re-add by the owner
	if m.addrIndex[addr] != a {
		t.Fatalf("re-add changed the owner")
	}
	a.RemoveAddr(addr)
	if _, ok := m.addrIndex[addr]; ok {
		t.Fatalf("addr still indexed after removal")
	}
	b.AddAddr(addr) // released addresses can be reclaimed
	if m.addrIndex[addr] != b {
		t.Fatalf("addr not indexed to b after reclaim")
	}
	// Removing an address you no longer own must not evict the new owner.
	a.RemoveAddr(addr)
	if m.addrIndex[addr] != b {
		t.Fatalf("stale removal evicted the new owner")
	}
}

func TestAddrIndexDoubleClaimPanics(t *testing.T) {
	e := sim.NewEngine()
	m := NewMedium(e)
	a := NewStation("a", m, Fixed(0), StationConfig{})
	b := NewStation("b", m, Fixed(1), StationConfig{})
	addr := inet.Addr{Net: 1, Host: 1}
	a.AddAddr(addr)
	defer func() {
		if recover() == nil {
			t.Fatalf("claiming a live address from a second station did not panic")
		}
	}()
	b.AddAddr(addr)
}

// TestDeliveryFollowsHandover moves an address between two stations (the
// care-of address churn of a handover) and checks the indexed downlink
// delivery follows the owner.
func TestDeliveryFollowsHandover(t *testing.T) {
	e := sim.NewEngine()
	m := NewMedium(e)
	ap := NewAccessPoint("ap", m, APConfig{Pos: 0, Radius: 112, BandwidthBPS: 11_000_000, AirDelay: sim.Millisecond})
	a := NewStation("a", m, Fixed(10), StationConfig{})
	b := NewStation("b", m, Fixed(-10), StationConfig{})
	a.Associate(ap)
	b.Associate(ap)
	addr := inet.Addr{Net: 1, Host: 1}
	var gotA, gotB []uint64
	a.OnPacket = func(pkt *inet.Packet) { gotA = append(gotA, pkt.ID) }
	b.OnPacket = func(pkt *inet.Packet) { gotB = append(gotB, pkt.ID) }

	a.AddAddr(addr)
	e.At(0, func() { ap.transmitDown(&inet.Packet{ID: 1, Dst: addr, Size: 100}) })
	e.At(10*sim.Millisecond, func() {
		a.RemoveAddr(addr)
		b.AddAddr(addr)
		ap.transmitDown(&inet.Packet{ID: 2, Dst: addr, Size: 100})
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(gotA) != 1 || gotA[0] != 1 {
		t.Fatalf("station a received %v, want [1]", gotA)
	}
	if len(gotB) != 1 || gotB[0] != 2 {
		t.Fatalf("station b received %v, want [2]", gotB)
	}
}

// bruteCandidates is the classic full scan the bucket index replaced.
func bruteCandidates(m *Medium, pos, radius float64, now sim.Time) []*Station {
	var out []*Station
	for _, s := range m.stations {
		if math.Abs(s.Pos(now)-pos) <= radius {
			out = append(out, s)
		}
	}
	return out
}

// TestBucketCandidatesMatchBruteForce checks, over a mixed population of
// motions and a sweep of instants, that the in-coverage subset of the
// bucket index's candidates equals the classic full scan — same stations,
// same (registration) order.
func TestBucketCandidatesMatchBruteForce(t *testing.T) {
	e := sim.NewEngine()
	m := NewMedium(e)
	ap := NewAccessPoint("ap", m, APConfig{Pos: 0, Radius: 112})
	rng := sim.NewRNG(99)
	uniform := func(lo, hi float64) float64 { return lo + (hi-lo)*rng.Float64() }
	for i := 0; i < 60; i++ {
		var motion Motion
		switch i % 4 {
		case 0:
			motion = Fixed(uniform(-600, 600))
		case 1:
			motion = Linear{Start: uniform(-600, 600), Speed: uniform(-25, 25),
				From: sim.Time(rng.Intn(5)) * sim.Second}
		case 2:
			a := uniform(-600, 600)
			motion = PingPong{A: a, B: a + uniform(-400, 400), Speed: uniform(1, 30),
				From: sim.Time(rng.Intn(5)) * sim.Second}
		default:
			motion = wobble{center: uniform(-300, 300), amp: uniform(0, 200)}
		}
		NewStation(fmt.Sprintf("s%d", i), m, motion, StationConfig{})
	}
	// Boundary-exact placements: stations sitting precisely on bucket edges.
	for i := -2; i <= 2; i++ {
		NewStation(fmt.Sprintf("edge%d", i), m, Fixed(float64(i)*defaultBucketWidth), StationConfig{})
	}

	check := func() {
		now := e.Now()
		want := bruteCandidates(m, ap.cfg.Pos, ap.cfg.Radius, now)
		var got []*Station
		for _, s := range m.buckets.candidates(m, ap.cfg.Pos, ap.cfg.Radius) {
			if ap.Covers(s.Pos(now)) {
				got = append(got, s)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("t=%v: %d in-coverage candidates, brute force found %d", now, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("t=%v: candidate %d is %s, brute force has %s (order must match the classic scan)",
					now, i, got[i].name, want[i].name)
			}
		}
	}
	for tick := 0; tick <= 120; tick++ {
		e.At(sim.Time(tick)*500*sim.Millisecond, check)
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
}

// TestBucketBoundaryCrossing drives a linear mover across several bucket
// boundaries and checks beacon audibility flips exactly with true coverage.
func TestBucketBoundaryCrossing(t *testing.T) {
	e := sim.NewEngine()
	m := NewMedium(e)
	ap := NewAccessPoint("ap", m, APConfig{Pos: 0, Radius: 112})
	ap.adv = Advertisement{AP: ap, Router: inet.Addr{Net: 1, Host: 1}, Net: 1}
	// Starts three buckets to the left of coverage, crosses it, and leaves
	// to the right: every boundary crossing in both directions is exercised.
	st := NewStation("mover", m, Linear{Start: -400, Speed: 20}, StationConfig{})
	heard := false
	st.OnRA = func(Advertisement) { heard = true }

	for tick := 0; tick <= 40; tick++ {
		e.At(sim.Time(tick)*sim.Second, func() {
			heard = false
			ap.beacon()
			now := e.Now()
			if want := ap.Covers(st.Pos(now)); heard != want {
				t.Fatalf("t=%v pos=%.1f: beacon heard=%v, want %v", now, st.Pos(now), heard, want)
			}
		})
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}

	// A ping-pong mover bouncing through the coverage edge.
	e2 := sim.NewEngine()
	m2 := NewMedium(e2)
	ap2 := NewAccessPoint("ap2", m2, APConfig{Pos: 0, Radius: 112})
	ap2.adv = Advertisement{AP: ap2, Router: inet.Addr{Net: 1, Host: 1}, Net: 1}
	st2 := NewStation("bouncer", m2, PingPong{A: -200, B: 50, Speed: 15}, StationConfig{})
	heard2 := false
	st2.OnRA = func(Advertisement) { heard2 = true }
	for tick := 0; tick <= 200; tick++ {
		e2.At(sim.Time(tick)*250*sim.Millisecond, func() {
			heard2 = false
			ap2.beacon()
			now := e2.Now()
			if want := ap2.Covers(st2.Pos(now)); heard2 != want {
				t.Fatalf("t=%v pos=%.1f: beacon heard=%v, want %v", now, st2.Pos(now), heard2, want)
			}
		})
	}
	if err := e2.RunAll(); err != nil {
		t.Fatal(err)
	}
}
