// Package wireless models the 802.11 layer the thesis abstracts over:
// access points with circular coverage, mobile stations with deterministic
// linear motion, periodic router-advertisement beacons, a shared downlink
// transmitter per access point, and a link-layer handoff blackout during
// which the station can neither send nor receive (60–400 ms in the paper's
// measurements; 200 ms in its simulations).
//
// The geometry is one-dimensional, as in the thesis' scenario: access
// routers 212 m apart, 112 m coverage radius, 12 m overlap, stations moving
// at 10 m/s.
package wireless

import (
	"math"

	"repro/internal/sim"
)

// Motion gives a station's position (meters along the track) at any
// instant. Implementations must be deterministic.
type Motion interface {
	Pos(at sim.Time) float64
}

// BoundaryCrosser is implemented by motions that can report when they next
// leave a position interval. The medium's beacon index (bucket.go) uses it
// to advance station buckets lazily instead of recomputing every position
// on every beacon. The returned instant must not be later than the first
// t > after with Pos(t) outside [lo, hi) — early hints are simply
// re-settled, late ones would let a beacon consult a stale bucket —
// and ok=false means the motion never leaves the interval after `after`.
// Motions without this method still work; their stations are scanned on
// every beacon.
type BoundaryCrosser interface {
	NextBoundary(after sim.Time, lo, hi float64) (at sim.Time, ok bool)
}

// Fixed is a stationary position.
type Fixed float64

// Pos implements Motion.
func (f Fixed) Pos(sim.Time) float64 { return float64(f) }

// NextBoundary implements BoundaryCrosser: a fixed station never leaves
// its bucket.
func (f Fixed) NextBoundary(sim.Time, float64, float64) (sim.Time, bool) { return 0, false }

// Linear moves from Start at Speed m/s (negative speed moves backward),
// beginning at instant From. Before From the station sits at Start.
type Linear struct {
	Start float64
	Speed float64
	From  sim.Time
}

// Pos implements Motion.
func (l Linear) Pos(at sim.Time) float64 {
	if at <= l.From {
		return l.Start
	}
	return l.Start + l.Speed*(at-l.From).Seconds()
}

// NextBoundary implements BoundaryCrosser: the crossing instant solves
// Start + Speed·(t-From) = lo|hi in the direction of travel. The result is
// truncated and nudged 1 ns early so float rounding can never report a
// crossing late.
func (l Linear) NextBoundary(after sim.Time, lo, hi float64) (sim.Time, bool) {
	if l.Speed == 0 {
		return 0, false
	}
	base := after
	if base < l.From {
		base = l.From
	}
	target := hi
	if l.Speed < 0 {
		target = lo
	}
	dt := (target - l.Start) / l.Speed // seconds since From
	t := l.From + sim.Time(math.Floor(dt*float64(sim.Second))) - 1
	if t <= base {
		t = base + 1
	}
	return t, true
}

// PingPong bounces between A and B at Speed m/s, starting at A (moving
// toward B) at instant From. It produces the "moving back and forth between
// the two access routers" workload of Figures 4.3–4.5.
type PingPong struct {
	A, B  float64
	Speed float64
	From  sim.Time
}

// Pos implements Motion.
func (p PingPong) Pos(at sim.Time) float64 {
	span := math.Abs(p.B - p.A)
	if span == 0 || p.Speed <= 0 {
		return p.A
	}
	if at <= p.From {
		return p.A
	}
	travelled := p.Speed * (at - p.From).Seconds()
	phase := math.Mod(travelled, 2*span)
	offset := phase
	if phase > span {
		offset = 2*span - phase
	}
	if p.B >= p.A {
		return p.A + offset
	}
	return p.A - offset
}

// NextBoundary implements BoundaryCrosser by scanning the piecewise-linear
// legs from `after`. A bounded orbit that stays inside [lo, hi) never
// crosses; otherwise the exit happens within one full period, so at most
// four legs (partial current leg included) need inspection. Results carry
// the same 1 ns-early conservatism as Linear.
func (p PingPong) NextBoundary(after sim.Time, lo, hi float64) (sim.Time, bool) {
	span := math.Abs(p.B - p.A)
	if span == 0 || p.Speed <= 0 {
		return 0, false
	}
	if math.Min(p.A, p.B) >= lo && math.Max(p.A, p.B) < hi {
		return 0, false // the whole orbit stays inside the interval
	}
	base := after
	if base < p.From {
		base = p.From
	}
	leg := p.LegDuration()
	k := int64((base - p.From) / leg)
	for i := int64(0); i < 4; i++ {
		t0 := p.From + sim.Time(k+int64(i))*leg
		t1 := t0 + leg
		from := t0
		if base > from {
			from = base
		}
		pos := p.Pos(from)
		if pos < lo || pos >= hi {
			return from, true // already outside (caller clamps for progress)
		}
		// Within a leg the motion is linear; it can only exit through the
		// boundary in its direction of travel.
		dir := 1.0
		if (k+int64(i))%2 == 1 {
			dir = -1
		}
		if p.B < p.A {
			dir = -dir
		}
		target := hi
		if dir < 0 {
			target = lo
		}
		dt := (target - pos) / (dir * p.Speed)
		if dt < 0 {
			dt = 0
		}
		tc := from + sim.Time(math.Floor(dt*float64(sim.Second))) - 1
		if tc <= t1 {
			return tc, true
		}
	}
	// Unreachable for a well-formed orbit (the exit lies within one
	// period); report an immediate re-settle rather than a stale bucket.
	return base, true
}

// LegDuration returns the time one A→B (or B→A) leg takes.
func (p PingPong) LegDuration() sim.Time {
	span := math.Abs(p.B - p.A)
	if p.Speed <= 0 {
		return sim.MaxTime
	}
	return sim.Time(span / p.Speed * float64(sim.Second))
}
