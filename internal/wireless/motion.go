// Package wireless models the 802.11 layer the thesis abstracts over:
// access points with circular coverage, mobile stations with deterministic
// linear motion, periodic router-advertisement beacons, a shared downlink
// transmitter per access point, and a link-layer handoff blackout during
// which the station can neither send nor receive (60–400 ms in the paper's
// measurements; 200 ms in its simulations).
//
// The geometry is one-dimensional, as in the thesis' scenario: access
// routers 212 m apart, 112 m coverage radius, 12 m overlap, stations moving
// at 10 m/s.
package wireless

import (
	"math"

	"repro/internal/sim"
)

// Motion gives a station's position (meters along the track) at any
// instant. Implementations must be deterministic.
type Motion interface {
	Pos(at sim.Time) float64
}

// Fixed is a stationary position.
type Fixed float64

// Pos implements Motion.
func (f Fixed) Pos(sim.Time) float64 { return float64(f) }

// Linear moves from Start at Speed m/s (negative speed moves backward),
// beginning at instant From. Before From the station sits at Start.
type Linear struct {
	Start float64
	Speed float64
	From  sim.Time
}

// Pos implements Motion.
func (l Linear) Pos(at sim.Time) float64 {
	if at <= l.From {
		return l.Start
	}
	return l.Start + l.Speed*(at-l.From).Seconds()
}

// PingPong bounces between A and B at Speed m/s, starting at A (moving
// toward B) at instant From. It produces the "moving back and forth between
// the two access routers" workload of Figures 4.3–4.5.
type PingPong struct {
	A, B  float64
	Speed float64
	From  sim.Time
}

// Pos implements Motion.
func (p PingPong) Pos(at sim.Time) float64 {
	span := math.Abs(p.B - p.A)
	if span == 0 || p.Speed <= 0 {
		return p.A
	}
	if at <= p.From {
		return p.A
	}
	travelled := p.Speed * (at - p.From).Seconds()
	phase := math.Mod(travelled, 2*span)
	offset := phase
	if phase > span {
		offset = 2*span - phase
	}
	if p.B >= p.A {
		return p.A + offset
	}
	return p.A - offset
}

// LegDuration returns the time one A→B (or B→A) leg takes.
func (p PingPong) LegDuration() sim.Time {
	span := math.Abs(p.B - p.A)
	if p.Speed <= 0 {
		return sim.MaxTime
	}
	return sim.Time(span / p.Speed * float64(sim.Second))
}
