package wireless

import (
	"fmt"
	"testing"

	"repro/internal/inet"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// airArrival is one delivery observed at a receiver: when and which packet.
type airArrival struct {
	at sim.Time
	id uint64
}

// airSide is one AR–AP–station column of the differential harness. The
// classic and fused columns live far apart on one shared medium so their
// radios never interact, and every input (downlink injections, uplink
// sends, link transitions) is applied to both columns in the same event.
type airSide struct {
	ar   *netsim.Router
	ap   *AccessPoint
	st   *Station
	addr inet.Addr

	down     []airArrival // packets delivered to the station
	up       []airArrival // uplink packets reaching the router
	airDrops []uint64
	txDrops  []uint64
}

func (a *airSide) hook(e *sim.Engine) {
	a.st.OnPacket = func(pkt *inet.Packet) { a.down = append(a.down, airArrival{e.Now(), pkt.ID}) }
	a.ar.LocalDeliver = func(in *netsim.Iface, pkt *inet.Packet) bool {
		a.up = append(a.up, airArrival{e.Now(), pkt.ID})
		return true
	}
	a.ap.AirDropHook = func(pkt *inet.Packet) { a.airDrops = append(a.airDrops, pkt.ID) }
	a.st.TxDropHook = func(pkt *inet.Packet) { a.txDrops = append(a.txDrops, pkt.ID) }
}

// TestFusedAirMatchesClassicDifferential is the seeded differential
// property test for the analytic radio path (DESIGN.md §13): random
// bandwidth/AirDelay/queue-limit/blackout configurations carry identical
// downlink bursts, uplink bursts, and link transitions (detach, switch,
// re-associate — exercising the NIC-reset repair) through a fused and a
// classic AP+station column side by side on one engine. Every observable —
// delivery times and order on both directions, drop decisions and hook
// order, and the Sent/QueueLen/drop counters read at random mid-run
// instants — must match exactly. Runs under -race in CI.
func TestFusedAirMatchesClassicDifferential(t *testing.T) {
	bands := []int64{0, 125_000, 1_000_000, 11_000_000, 1_000_000_000}
	delays := []sim.Time{0, sim.Millisecond, 3 * sim.Millisecond}
	qlims := []int{0, 1, 2, 5, 20}
	blackouts := []sim.Time{0, sim.Millisecond, 50 * sim.Millisecond}

	for trial := 0; trial < 80; trial++ {
		rng := sim.NewRNG(int64(trial)*7919 + 1)
		band := bands[rng.Intn(len(bands))]
		delay := delays[rng.Intn(len(delays))]
		qlim := qlims[rng.Intn(len(qlims))]
		blackout := blackouts[rng.Intn(len(blackouts))]
		bounce := rng.Intn(2) == 1
		start := float64(rng.Intn(301) - 150) // in or out of the 112 m radius
		speed := float64(rng.Intn(41) - 20)

		e := sim.NewEngine()
		topo := netsim.NewTopology(e)
		medium := NewMedium(e)
		build := func(fused bool, name string, off float64, net inet.NetID) *airSide {
			prev := SetFusedAir(fused)
			defer SetFusedAir(prev)
			ar := netsim.NewRouter("ar-"+name, inet.Addr{Net: net, Host: 1})
			ap := NewAccessPoint("ap-"+name, medium, APConfig{
				Pos: off, Radius: 112, BandwidthBPS: band, AirDelay: delay,
				QueueLimit: qlim, ReturnUndeliverable: bounce,
			})
			link := topo.Connect(ar, ap, netsim.LinkConfig{BandwidthBPS: 100_000_000, Delay: sim.Millisecond / 2})
			ar.AddPrefixRoute(net, link.A())
			st := NewStation("mh-"+name, medium, Linear{Start: off + start, Speed: speed}, StationConfig{
				BandwidthBPS: band, AirDelay: delay, L2HandoffDelay: blackout, QueueLimit: qlim,
			})
			side := &airSide{ar: ar, ap: ap, st: st, addr: inet.Addr{Net: net, Host: 5}}
			st.AddAddr(side.addr)
			st.Associate(ap)
			side.hook(e)
			return side
		}
		classic := build(false, "c", 0, 10)
		fused := build(true, "f", 1e6, 20)
		both := [2]*airSide{classic, fused}

		var nextID uint64
		// Downlink and uplink bursts: the same (id, size) sequence enters
		// both columns in the same event.
		for k, bursts := 0, 4+rng.Intn(12); k < bursts; k++ {
			at := sim.Time(rng.Intn(40)) * sim.Millisecond
			uplink := rng.Intn(2) == 1
			n := 1 + rng.Intn(6)
			sizes := make([]int, n)
			for j := range sizes {
				sizes[j] = 40 + rng.Intn(1461)
			}
			e.At(at, func() {
				for _, size := range sizes {
					nextID++
					for _, s := range both {
						if uplink {
							s.st.Send(&inet.Packet{ID: nextID, Src: s.addr, Dst: s.ar.Addr(),
								Proto: inet.ProtoControl, Size: size})
						} else {
							s.ap.transmitDown(&inet.Packet{ID: nextID, Dst: s.addr,
								Proto: inet.ProtoUDP, Size: size})
						}
					}
				}
			})
		}
		// Link transitions: detaches and switches hit mid-serialization,
		// exercising the fused path's NIC-reset repair and hold queue.
		for k, trans := 0, 2+rng.Intn(5); k < trans; k++ {
			at := sim.Time(rng.Intn(45)) * sim.Millisecond
			op := rng.Intn(3)
			e.At(at, func() {
				for _, s := range both {
					switch op {
					case 0:
						s.st.Detach()
					case 1:
						s.st.SwitchTo(s.ap)
					case 2:
						s.st.Associate(s.ap)
					}
				}
			})
		}
		// Random mid-run readers: the lazily drained rings must
		// reconstruct the classic counters at every instant.
		for k := 0; k < 8; k++ {
			at := sim.Time(rng.Intn(50)) * sim.Millisecond
			e.At(at, func() {
				if classic.ap.QueueLen() != fused.ap.QueueLen() || classic.ap.Sent() != fused.ap.Sent() ||
					classic.ap.AirDrops() != fused.ap.AirDrops() ||
					classic.st.QueueLen() != fused.st.QueueLen() || classic.st.Sent() != fused.st.Sent() ||
					classic.st.TxDrops() != fused.st.TxDrops() {
					t.Errorf("trial %d at %v: classic ap(q=%d sent=%d drops=%d) st(q=%d sent=%d drops=%d) vs fused ap(q=%d sent=%d drops=%d) st(q=%d sent=%d drops=%d)",
						trial, e.Now(),
						classic.ap.QueueLen(), classic.ap.Sent(), classic.ap.AirDrops(),
						classic.st.QueueLen(), classic.st.Sent(), classic.st.TxDrops(),
						fused.ap.QueueLen(), fused.ap.Sent(), fused.ap.AirDrops(),
						fused.st.QueueLen(), fused.st.Sent(), fused.st.TxDrops())
				}
			})
		}

		if err := e.RunAll(); err != nil {
			t.Fatalf("trial %d: RunAll: %v", trial, err)
		}

		cmpSeq := func(what string, c, f []airArrival) {
			if len(c) != len(f) {
				t.Fatalf("trial %d: %d classic %s vs %d fused", trial, len(c), what, len(f))
			}
			for j := range c {
				if c[j] != f[j] {
					t.Fatalf("trial %d: %s %d: classic %+v, fused %+v", trial, what, j, c[j], f[j])
				}
			}
		}
		cmpSeq("downlink deliveries", classic.down, fused.down)
		cmpSeq("uplink deliveries", classic.up, fused.up)
		cmpIDs := func(what string, c, f []uint64) {
			if len(c) != len(f) {
				t.Fatalf("trial %d: %d classic %s vs %d fused", trial, len(c), what, len(f))
			}
			for j := range c {
				if c[j] != f[j] {
					t.Fatalf("trial %d: %s %d: classic id %d, fused id %d", trial, what, j, c[j], f[j])
				}
			}
		}
		cmpIDs("air drops", classic.airDrops, fused.airDrops)
		cmpIDs("tx drops", classic.txDrops, fused.txDrops)
		if classic.ap.Sent() != fused.ap.Sent() || classic.st.Sent() != fused.st.Sent() ||
			classic.st.TxDrops() != fused.st.TxDrops() || classic.ap.AirDrops() != fused.ap.AirDrops() {
			t.Fatalf("trial %d: final counters diverge: classic ap.sent=%d st.sent=%d st.drops=%d ap.drops=%d, fused ap.sent=%d st.sent=%d st.drops=%d ap.drops=%d",
				trial, classic.ap.Sent(), classic.st.Sent(), classic.st.TxDrops(), classic.ap.AirDrops(),
				fused.ap.Sent(), fused.st.Sent(), fused.st.TxDrops(), fused.ap.AirDrops())
		}
	}
}

// TestFusedAirHalvesAirEvents pins the event economics the fusion buys:
// a downlink (or uplink) frame costs one scheduler event instead of the
// classic txDone + airArrive pair.
func TestFusedAirHalvesAirEvents(t *testing.T) {
	const n = 100
	run := func(fused, uplink bool) uint64 {
		prev := SetFusedAir(fused)
		defer SetFusedAir(prev)
		prevLinks := netsim.SetFusedLinks(true)
		defer netsim.SetFusedLinks(prevLinks)
		e := sim.NewEngine()
		topo := netsim.NewTopology(e)
		medium := NewMedium(e)
		ar := netsim.NewRouter("ar", inet.Addr{Net: 10, Host: 1})
		ap := NewAccessPoint("ap", medium, APConfig{Pos: 0, Radius: 112, BandwidthBPS: 11_000_000, AirDelay: sim.Millisecond})
		topo.Connect(ar, ap, netsim.LinkConfig{})
		st := NewStation("mh", medium, Fixed(10), StationConfig{BandwidthBPS: 11_000_000, AirDelay: sim.Millisecond})
		addr := inet.Addr{Net: 10, Host: 5}
		st.AddAddr(addr)
		st.Associate(ap)
		e.At(0, func() {
			for i := 0; i < n; i++ {
				if uplink {
					st.Send(&inet.Packet{Src: addr, Dst: ar.Addr(), Proto: inet.ProtoControl, Size: 160})
				} else {
					ap.transmitDown(&inet.Packet{Dst: addr, Proto: inet.ProtoUDP, Size: 160})
				}
			}
		})
		if err := e.RunAll(); err != nil {
			t.Fatalf("RunAll: %v", err)
		}
		return e.Processed()
	}
	// Downlink: burst event + n×(txDone + airArrive) classic, burst + n
	// pinned deliveries fused.
	if got := run(false, false); got != 1+2*n {
		t.Fatalf("classic downlink events = %d, want %d", got, 1+2*n)
	}
	if got := run(true, false); got != 1+n {
		t.Fatalf("fused downlink events = %d, want %d", got, 1+n)
	}
	// Uplink additionally crosses the (fused) wired hop: +n deliveries.
	if got := run(false, true); got != 1+3*n {
		t.Fatalf("classic uplink events = %d, want %d", got, 1+3*n)
	}
	if got := run(true, true); got != 1+2*n {
		t.Fatalf("fused uplink events = %d, want %d", got, 1+2*n)
	}
}

// TestAirHopZeroAlloc pins the radio data plane allocation-free in the
// current air mode for both directions (CI runs it fused and, via the
// WIRELESS_FUSED=0 step, classic).
func TestAirHopZeroAlloc(t *testing.T) {
	e := sim.NewEngine()
	topo := netsim.NewTopology(e)
	medium := NewMedium(e)
	ar := netsim.NewRouter("ar", inet.Addr{Net: 10, Host: 1})
	ap := NewAccessPoint("ap", medium, APConfig{Pos: 0, Radius: 112, BandwidthBPS: 11_000_000, AirDelay: sim.Millisecond})
	link := topo.Connect(ar, ap, netsim.LinkConfig{BandwidthBPS: 100_000_000})
	ar.AddPrefixRoute(10, link.A())
	ar.LocalDeliver = func(in *netsim.Iface, pkt *inet.Packet) bool { return true }
	st := NewStation("mh", medium, Fixed(10), StationConfig{BandwidthBPS: 11_000_000, AirDelay: sim.Millisecond})
	addr := inet.Addr{Net: 10, Host: 5}
	st.AddAddr(addr)
	st.Associate(ap)

	down := &inet.Packet{Dst: addr, Proto: inet.ProtoUDP, Size: 160}
	up := &inet.Packet{Src: addr, Dst: ar.Addr(), Proto: inet.ProtoControl, Size: 64}
	for i := 0; i < 64; i++ { // warm up rings, FIFOs, and the event free list
		ap.transmitDown(down)
		st.Send(up)
		if err := e.RunAll(); err != nil {
			t.Fatalf("RunAll: %v", err)
		}
	}
	if allocs := testing.AllocsPerRun(200, func() {
		ap.transmitDown(down)
		e.RunAll() //nolint:errcheck // drained below
	}); allocs != 0 {
		t.Fatalf("downlink air hop allocates %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		st.Send(up)
		e.RunAll() //nolint:errcheck // drained below
	}); allocs != 0 {
		t.Fatalf("uplink air hop allocates %.1f/op, want 0", allocs)
	}
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
}

func benchAirHop(b *testing.B, fused bool) {
	prev := SetFusedAir(fused)
	defer SetFusedAir(prev)
	e := sim.NewEngine()
	medium := NewMedium(e)
	ap := NewAccessPoint("ap", medium, APConfig{Pos: 0, Radius: 112, BandwidthBPS: 11_000_000, AirDelay: sim.Millisecond})
	st := NewStation("mh", medium, Fixed(10), StationConfig{})
	addr := inet.Addr{Net: 10, Host: 5}
	st.AddAddr(addr)
	st.Associate(ap)
	pkt := &inet.Packet{Dst: addr, Proto: inet.ProtoUDP, Size: 160}
	for i := 0; i < 64; i++ {
		ap.transmitDown(pkt)
		if err := e.RunAll(); err != nil {
			b.Fatalf("RunAll: %v", err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ap.transmitDown(pkt)
		e.RunAll() //nolint:errcheck // benchmark hot loop
	}
}

func BenchmarkAirHopFused(b *testing.B)   { benchAirHop(b, true) }
func BenchmarkAirHopClassic(b *testing.B) { benchAirHop(b, false) }

// BenchmarkBeaconScan sweeps the station population with a fixed
// in-coverage count (~23): with the position-bucket index the per-beacon
// cost must stay flat instead of scaling with the population.
func BenchmarkBeaconScan(b *testing.B) {
	for _, n := range []int{100, 400, 1000, 4000} {
		b.Run(fmt.Sprintf("stations=%d", n), func(b *testing.B) {
			e := sim.NewEngine()
			medium := NewMedium(e)
			ap := NewAccessPoint("ap", medium, APConfig{Pos: float64(n) * 5, Radius: 112})
			for i := 0; i < n; i++ {
				NewStation(fmt.Sprintf("s%d", i), medium, Fixed(float64(i)*10), StationConfig{})
			}
			ap.adv = Advertisement{AP: ap, Net: 10}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ap.beacon()
			}
		})
	}
}
