package wireless

import (
	"math"

	"repro/internal/sim"
)

// defaultBucketWidth sizes position buckets when no AP is registered yet;
// it matches the thesis' 112 m coverage radius. Any positive width is
// correct — candidate lookup covers [pos-radius, pos+radius] regardless —
// radius-sized buckets just keep the per-beacon bucket count at ~3.
const defaultBucketWidth = 112.0

// crossEntry is one pending bucket-boundary crossing in the settle heap.
type crossEntry struct {
	at sim.Time
	s  *Station
}

// bucketIndex buckets stations by position so a beacon visits only the
// stations that can possibly be in coverage, instead of the whole medium.
// Buckets are advanced lazily: each indexed station carries a heap entry
// at (a conservative lower bound on) the instant its analytic Motion next
// leaves its bucket interval, and settle re-buckets every station whose
// entry has come due before a scan. Hints may be early — settle simply
// recomputes the true bucket and re-arms — but never late, so a settled
// index always reflects true positions. Motions that do not implement
// BoundaryCrosser fall back to an unindexed list scanned on every beacon.
//
// Invariants after settle(now):
//   - every indexed station s is in buckets[floor(s.Pos(now)/width)];
//   - every bucket list is sorted by station id (= registration order), so a
//     merged candidate scan visits stations in exactly the order the
//     classic full scan did.
type bucketIndex struct {
	width     float64
	buckets   map[int][]*Station
	heap      []crossEntry
	unindexed []*Station

	// Reusable scratch for candidate collection (no per-beacon allocs).
	scratch []*Station
	lists   [][]*Station
	cursors []int
}

// add registers a newly created station with the index. The bucket width
// is latched from the widest AP radius seen at first registration.
func (bi *bucketIndex) add(m *Medium, s *Station) {
	if bi.buckets == nil {
		bi.buckets = make(map[int][]*Station)
		bi.width = defaultBucketWidth
		for _, ap := range m.aps {
			if ap.cfg.Radius > bi.width {
				bi.width = ap.cfg.Radius
			}
		}
	}
	bc, ok := s.motion.(BoundaryCrosser)
	if !ok {
		bi.unindexed = append(bi.unindexed, s)
		return
	}
	s.crosser = bc
	bi.place(m, s, m.engine.Now())
}

func (bi *bucketIndex) bucketOf(pos float64) int {
	return int(math.Floor(pos / bi.width))
}

// place buckets s at its position now and arms its next-crossing entry.
func (bi *bucketIndex) place(m *Medium, s *Station, now sim.Time) {
	b := bi.bucketOf(s.Pos(now))
	s.bucket = b
	bi.insert(b, s)
	lo := float64(b) * bi.width
	if at, ok := s.crosser.NextBoundary(now, lo, lo+bi.width); ok {
		if at <= now {
			at = now + 1 // force progress on an early (or clamped) hint
		}
		bi.push(crossEntry{at: at, s: s})
	}
}

// settle re-buckets every station whose crossing hint has come due.
func (bi *bucketIndex) settle(m *Medium) {
	now := m.engine.Now()
	for len(bi.heap) > 0 && bi.heap[0].at <= now {
		s := bi.pop().s
		bi.remove(s.bucket, s)
		bi.place(m, s, now)
	}
}

// candidates returns the stations that can possibly be inside
// [pos-radius, pos+radius], in registration order (the classic scan
// order). The ±1 bucket pad absorbs boundary float error. The returned
// slice is scratch storage owned by the index, valid until the next call;
// callers must not register stations while iterating it.
func (bi *bucketIndex) candidates(m *Medium, pos, radius float64) []*Station {
	bi.settle(m)
	bi.lists = bi.lists[:0]
	if len(bi.buckets) > 0 {
		lo := bi.bucketOf(pos-radius) - 1
		hi := bi.bucketOf(pos+radius) + 1
		for b := lo; b <= hi; b++ {
			if l := bi.buckets[b]; len(l) > 0 {
				bi.lists = append(bi.lists, l)
			}
		}
	}
	if len(bi.unindexed) > 0 {
		bi.lists = append(bi.lists, bi.unindexed)
	}
	if len(bi.lists) == 1 {
		return bi.lists[0]
	}
	// Merge the id-sorted lists so candidates come out in registration
	// order, byte-identical to the classic full scan over the subset.
	bi.scratch = bi.scratch[:0]
	bi.cursors = bi.cursors[:0]
	for range bi.lists {
		bi.cursors = append(bi.cursors, 0)
	}
	for {
		best, bestID := -1, 0
		for li, l := range bi.lists {
			if c := bi.cursors[li]; c < len(l) {
				if id := l[c].id; best < 0 || id < bestID {
					best, bestID = li, id
				}
			}
		}
		if best < 0 {
			return bi.scratch
		}
		bi.scratch = append(bi.scratch, bi.lists[best][bi.cursors[best]])
		bi.cursors[best]++
	}
}

// insert adds s to bucket b's id-sorted list.
func (bi *bucketIndex) insert(b int, s *Station) {
	l := bi.buckets[b]
	i := len(l)
	for i > 0 && l[i-1].id > s.id {
		i--
	}
	l = append(l, nil)
	copy(l[i+1:], l[i:])
	l[i] = s
	bi.buckets[b] = l
}

// remove deletes s from bucket b's list, preserving order.
func (bi *bucketIndex) remove(b int, s *Station) {
	l := bi.buckets[b]
	for i, x := range l {
		if x == s {
			copy(l[i:], l[i+1:])
			l[len(l)-1] = nil
			bi.buckets[b] = l[:len(l)-1]
			return
		}
	}
	panic("wireless: station missing from its position bucket")
}

func crossLess(a, b crossEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.s.id < b.s.id
}

func (bi *bucketIndex) push(e crossEntry) {
	bi.heap = append(bi.heap, e)
	i := len(bi.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !crossLess(bi.heap[i], bi.heap[p]) {
			break
		}
		bi.heap[i], bi.heap[p] = bi.heap[p], bi.heap[i]
		i = p
	}
}

func (bi *bucketIndex) pop() crossEntry {
	top := bi.heap[0]
	last := len(bi.heap) - 1
	bi.heap[0] = bi.heap[last]
	bi.heap[last] = crossEntry{}
	bi.heap = bi.heap[:last]
	i := 0
	for {
		small := i
		if l := 2*i + 1; l < len(bi.heap) && crossLess(bi.heap[l], bi.heap[small]) {
			small = l
		}
		if r := 2*i + 2; r < len(bi.heap) && crossLess(bi.heap[r], bi.heap[small]) {
			small = r
		}
		if small == i {
			return top
		}
		bi.heap[i], bi.heap[small] = bi.heap[small], bi.heap[i]
		i = small
	}
}
