package wireless

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestLogDistanceKnownValues(t *testing.T) {
	m := DefaultSignal() // 20 dBm − 40 dB @1 m, exponent 3
	tests := []struct {
		d    float64
		want float64
	}{
		{1, -20},
		{10, -50}, // +30 dB per decade
		{100, -80},
		{0.5, -20}, // clamped to the reference distance
	}
	for _, tt := range tests {
		if got := m.RSSIdBm(tt.d); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("RSSIdBm(%v) = %v, want %v", tt.d, got, tt.want)
		}
	}
}

func TestSensitivityMatchesEdge(t *testing.T) {
	m := DefaultSignal()
	if got, want := m.SensitivitydBm(112), m.RSSIdBm(112); got != want {
		t.Fatalf("SensitivitydBm = %v, want %v", got, want)
	}
}

func TestZeroRefDistanceDefaults(t *testing.T) {
	m := LogDistance{TxPowerdBm: 20, RefLossdB: 40, Exponent: 3}
	if got := m.RSSIdBm(1); got != -20 {
		t.Fatalf("RSSIdBm(1) with zero ref = %v, want -20", got)
	}
}

func TestAPAndStationRSSI(t *testing.T) {
	e := sim.NewEngine()
	medium := NewMedium(e)
	ap := NewAccessPoint("ap", medium, APConfig{Pos: 100, Radius: 112})
	st := NewStation("mh", medium, Fixed(110), StationConfig{})
	want := DefaultSignal().RSSIdBm(10)
	if got := ap.RSSI(110); got != want {
		t.Fatalf("ap.RSSI = %v, want %v", got, want)
	}
	if got := st.RSSI(ap, 0); got != want {
		t.Fatalf("station.RSSI = %v, want %v", got, want)
	}
}

func TestCustomSignalModel(t *testing.T) {
	e := sim.NewEngine()
	medium := NewMedium(e)
	ap := NewAccessPoint("ap", medium, APConfig{
		Pos: 0, Radius: 112,
		Signal: LogDistance{TxPowerdBm: 30, RefLossdB: 40, Exponent: 2, RefDistance: 1},
	})
	if got := ap.RSSI(10); got != 30-40-20 {
		t.Fatalf("custom model RSSI = %v, want -30", got)
	}
}

// Property: received power is non-increasing with distance, for any
// positive exponent.
func TestPropertyRSSIMonotone(t *testing.T) {
	f := func(expRaw uint8, d1Raw, d2Raw uint16) bool {
		m := LogDistance{
			TxPowerdBm:  20,
			RefLossdB:   40,
			Exponent:    float64(expRaw%5) + 0.5,
			RefDistance: 1,
		}
		d1 := float64(d1Raw%2000) + 1
		d2 := float64(d2Raw%2000) + 1
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return m.RSSIdBm(d1) >= m.RSSIdBm(d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
