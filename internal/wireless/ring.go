package wireless

// fifo is a growable power-of-two ring buffer used for the radio transmit
// queues and in-flight FIFOs. Dequeue is O(1) — no copy-shift — and every
// vacated slot is zeroed so a drained frame is never retained by the
// buffer (pooled packets must have exactly one owner).
type fifo[T any] struct {
	buf  []T
	head int
	n    int
}

// Len returns the number of buffered elements.
func (f *fifo[T]) Len() int { return f.n }

// Push appends v at the tail.
func (f *fifo[T]) Push(v T) {
	if f.n == len(f.buf) {
		f.grow()
	}
	f.buf[(f.head+f.n)&(len(f.buf)-1)] = v
	f.n++
}

// Pop removes and returns the head element, zeroing its slot.
func (f *fifo[T]) Pop() T {
	if f.n == 0 {
		panic("wireless: Pop on empty fifo")
	}
	var zero T
	v := f.buf[f.head]
	f.buf[f.head] = zero
	f.head = (f.head + 1) & (len(f.buf) - 1)
	f.n--
	return v
}

// At returns the i-th element from the head without removing it.
func (f *fifo[T]) At(i int) T {
	if i < 0 || i >= f.n {
		panic("wireless: fifo index out of range")
	}
	return f.buf[(f.head+i)&(len(f.buf)-1)]
}

// DropTail removes the k newest elements, zeroing their slots.
func (f *fifo[T]) DropTail(k int) {
	if k > f.n {
		panic("wireless: DropTail past fifo head")
	}
	var zero T
	for ; k > 0; k-- {
		f.n--
		f.buf[(f.head+f.n)&(len(f.buf)-1)] = zero
	}
}

func (f *fifo[T]) grow() {
	size := len(f.buf) * 2
	if size == 0 {
		size = 8
	}
	nb := make([]T, size)
	for i := 0; i < f.n; i++ {
		nb[i] = f.buf[(f.head+i)&(len(f.buf)-1)]
	}
	f.buf, f.head = nb, 0
}
