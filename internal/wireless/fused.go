package wireless

import (
	"os"
	"sync/atomic"

	"repro/internal/sim"
)

// The fused air transmit path (DESIGN.md §13) mirrors netsim's fused
// wired hop (§12) on the radio: instead of scheduling a txDone event when
// a frame finishes serializing and an arrival event one air delay later,
// the transmitter keeps an analytic busyUntil clock and schedules a
// single pre-bound delivery event per frame at
//
//	max(now, busyUntil) + serialization + AirDelay.
//
// Queue occupancy, drop decisions, and counters are reconstructed on
// demand by lazily draining a departure ring of per-frame analytic
// records. Every delivery is pinned with sim.AtPinned at the virtual key
// the classic arrival event would have carried, so equal-instant ordering
// — and therefore every figure byte — is identical in both modes.
//
// One degenerate case is excluded: a zero-bandwidth radio serializes every
// frame instantly, so the classic txDone chain collapses into a single
// instant and drains through nested same-instant firings whose sequence
// allocation interleaves with other transmitters' chains. Phantom txDones
// never fire, so no sequence numbers exist at those positions and the
// interleave cannot be reproduced analytically; radios constructed with
// BandwidthBPS == 0 therefore always take the classic path.

// fusedAirDefault is the process-wide default for new radios, settable
// before construction via SetFusedAir or the WIRELESS_FUSED environment
// variable (WIRELESS_FUSED=0 selects the classic two-event path).
var fusedAirDefault atomic.Bool

func init() {
	fusedAirDefault.Store(os.Getenv("WIRELESS_FUSED") != "0")
}

// SetFusedAir switches the default air transmit path for radios created
// afterwards and returns the previous setting. Radios latch the mode at
// construction.
func SetFusedAir(on bool) bool { return fusedAirDefault.Swap(on) }

// FusedAir reports the current default air transmit path.
func FusedAir() bool { return fusedAirDefault.Load() }

// airTxEntry is the analytic record of one frame accepted by a fused
// transmitter: its departure instant (end of serialization) and the
// virtual key of the txDone event the classic path would have fired then.
// The phantom key makes same-instant reads (QueueLen at the departure
// instant) and the pinned delivery event sort exactly as the classic
// two-event machinery would.
type airTxEntry struct {
	dep    sim.Time
	pvins  sim.Time
	pvins2 sim.Time
	pvseq2 uint64
	pseq   uint64
	// ref is the frame's pinned delivery event, kept so the station can
	// cancel not-yet-started frames on a NIC reset. Unused by the AP.
	ref sim.EventRef
}

// airClock is the analytic transmit state shared by the AP's downlink and
// the station's uplink: the busyUntil clock, the lazily drained departure
// ring, and the retired-frame counter.
type airClock struct {
	busyUntil sim.Time
	ring      []airTxEntry
	ringHead  int
	sent      uint64
}

// occupancy returns the number of frames admitted but not yet departed
// (the serializing frame plus the queue behind it). Call drain first.
func (c *airClock) occupancy() int { return len(c.ring) - c.ringHead }

// drain retires ring entries whose phantom txDone has passed, advancing
// sent. A frame departing exactly now counts only if its phantom key
// precedes the currently firing event, matching the classic event order.
func (c *airClock) drain(e *sim.Engine) {
	h, n := c.ringHead, len(c.ring)
	if h == n {
		return
	}
	now := e.Now()
	for h < n {
		ent := &c.ring[h]
		if ent.dep > now || (ent.dep == now && !phantomFired(e, ent)) {
			break
		}
		c.sent++
		h++
	}
	// Reclaim ring storage: reset when empty, compact when the dead
	// prefix dominates, so a saturated radio stays O(backlog).
	if h == len(c.ring) {
		c.ring = c.ring[:0]
		h = 0
	} else if h >= 64 && h*2 >= len(c.ring) {
		kept := copy(c.ring, c.ring[h:])
		c.ring = c.ring[:kept]
		h = 0
	}
	c.ringHead = h
}

// push admits a frame of the given size, computes its serialization
// window analytically, and appends its ring entry. It returns the
// serialization start, the departure instant, and the new entry's index
// (valid until the next append). The phantom-key lineage mirrors the
// classic path: a backlogged frame's txDone would have been scheduled by
// its predecessor's txDone, an idle frame's by the currently firing event.
func (c *airClock) push(e *sim.Engine, size int, bps int64) (start, dep sim.Time, idx int) {
	now := e.Now()
	var txTime sim.Time
	if bps > 0 {
		txTime = sim.Time(int64(size) * 8 * int64(sim.Second) / bps)
	}
	var ent airTxEntry
	start = now
	if c.occupancy() > 0 {
		prev := &c.ring[len(c.ring)-1]
		start = c.busyUntil
		ent.pvins2, ent.pvseq2, ent.pseq = prev.pvins, prev.pseq, prev.pseq
	} else if fv, _, _, fseq, firing := e.FiringKey(); firing {
		ent.pvins2, ent.pvseq2 = fv, fseq
		ent.pseq = e.NextSeq()
	} else {
		ent.pvins2, ent.pvseq2 = now, e.NextSeq()
		ent.pseq = e.NextSeq()
	}
	dep = start + txTime
	ent.dep, ent.pvins = dep, start
	c.busyUntil = dep
	c.ring = append(c.ring, ent)
	return start, dep, len(c.ring) - 1
}

// phantomFired reports whether ent's phantom txDone sorts before the
// event the engine is currently firing — i.e. whether the classic path
// would already have processed that txDone at this instant.
func phantomFired(e *sim.Engine, ent *airTxEntry) bool {
	fv, fv2, fs2, fseq, firing := e.FiringKey()
	if !firing {
		return true
	}
	if ent.pvins != fv {
		return ent.pvins < fv
	}
	if ent.pvins2 != fv2 {
		return ent.pvins2 < fv2
	}
	if ent.pvseq2 != fs2 {
		return ent.pvseq2 < fs2
	}
	return ent.pseq < fseq
}
