package wireless

import (
	"fmt"

	"repro/internal/inet"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Medium is the registry of radios sharing the simulated air. It exists so
// beacons and frames can find the stations in coverage. Two indexes keep
// the data plane O(1) in the station population (DESIGN.md §13): an
// addr→station map for downlink delivery and a position-bucket index for
// beacon coverage scans.
type Medium struct {
	engine   *sim.Engine
	aps      []*AccessPoint
	stations []*Station

	// addrIndex names the sole station accepting each address. Addresses
	// are single-owner: claimAddr panics if a second station claims a
	// live address, which pins the invariant the index depends on.
	addrIndex map[inet.Addr]*Station

	buckets bucketIndex
}

// NewMedium creates an empty medium.
func NewMedium(engine *sim.Engine) *Medium {
	if engine == nil {
		panic("wireless: NewMedium with nil engine")
	}
	return &Medium{engine: engine, addrIndex: make(map[inet.Addr]*Station)}
}

// Engine returns the simulation engine.
func (m *Medium) Engine() *sim.Engine { return m.engine }

func (m *Medium) addAP(ap *AccessPoint) { m.aps = append(m.aps, ap) }

func (m *Medium) addStation(s *Station) {
	s.id = len(m.stations)
	m.stations = append(m.stations, s)
	m.buckets.add(m, s)
}

// APs returns the registered access points.
func (m *Medium) APs() []*AccessPoint { return m.aps }

func (m *Medium) claimAddr(a inet.Addr, s *Station) {
	if cur, ok := m.addrIndex[a]; ok {
		if cur != s {
			panic(fmt.Sprintf("wireless: address %v claimed by %s while owned by %s", a, s.name, cur.name))
		}
		return
	}
	m.addrIndex[a] = s
}

func (m *Medium) releaseAddr(a inet.Addr, s *Station) {
	if m.addrIndex[a] == s {
		delete(m.addrIndex, a)
	}
}

// StationConfig configures a mobile station's radio.
type StationConfig struct {
	// BandwidthBPS is the uplink line rate.
	BandwidthBPS int64
	// AirDelay is the per-frame uplink latency.
	AirDelay sim.Time
	// L2HandoffDelay is the blackout while the NIC re-associates with a
	// new access point (200 ms in the thesis' simulations). During the
	// blackout the station neither sends nor receives and hears no
	// beacons: "currently available IEEE 802.11 wireless LAN card can
	// only access one access point at a time".
	L2HandoffDelay sim.Time
	// QueueLimit bounds the uplink queue, in packets.
	QueueLimit int
}

// Station is a mobile host's wireless NIC. The mobility-protocol engine
// (internal/core) drives it through Associate/SwitchTo and observes it
// through the On* callbacks. Once a core.MobileHost is bound to a station
// it owns all four callbacks; external observers must use the MobileHost's
// hooks instead of replacing them.
type Station struct {
	name   string
	cfg    StationConfig
	engine *sim.Engine
	medium *Medium
	motion Motion

	// Position-index state, owned by the medium's bucketIndex.
	id      int
	bucket  int
	crosser BoundaryCrosser

	ap        *AccessPoint
	switching bool

	addrs map[inet.Addr]bool

	// fused selects the analytic uplink transmit path; latched at
	// construction from FusedAir.
	fused bool

	// Classic two-event uplink transmit state (WIRELESS_FUSED=0). The
	// in-flight FIFO carries the target AP alongside each frame because a
	// frame stays aimed at the AP it was transmitted toward even if the
	// station detaches before it lands; it is shared with the fused path.
	busy     bool
	queue    fifo[*inet.Packet]
	txPkt    *inet.Packet
	txAP     *AccessPoint
	inflight fifo[airFrame]
	txDoneFn sim.Handler
	airFn    sim.Handler

	// Analytic uplink transmit state plus the NIC-reset repair machinery
	// (see nicReset).
	clock         airClock
	repairPending bool
	flushAt       sim.Time
	flushKey      airTxEntry
	holdQueue     fifo[*inet.Packet]
	flushFn       sim.Handler

	txDrops uint64
	// TxDropHook observes uplink packets the station discards: sends
	// while detached, queue-overflow tail drops, and the NIC-reset queue
	// flush on link-down. It mirrors AccessPoint.AirDropHook so scenarios
	// can account (and recycle) station-side losses too.
	TxDropHook func(pkt *inet.Packet)

	// OnRA is invoked for every router advertisement heard, including
	// beacons from foreign access points while in an overlap area.
	OnRA func(adv Advertisement)
	// OnPacket delivers received network-layer packets.
	OnPacket func(pkt *inet.Packet)
	// OnLinkUp fires when an association completes (including the initial
	// one).
	OnLinkUp func(ap *AccessPoint)
	// OnLinkDown fires when the station detaches (start of the L2
	// blackout).
	OnLinkDown func(ap *AccessPoint)
}

// NewStation creates a station and registers it with the medium. It starts
// detached.
func NewStation(name string, medium *Medium, motion Motion, cfg StationConfig) *Station {
	s := &Station{
		name:   name,
		cfg:    cfg,
		engine: medium.engine,
		medium: medium,
		motion: motion,
		addrs: make(map[inet.Addr]bool),
		// A zero-bandwidth radio serializes instantly, collapsing the whole
		// classic txDone chain into one instant whose nested scheduling
		// interleave the analytic path cannot reproduce; such radios always
		// take the classic path (see fused.go).
		fused: FusedAir() && cfg.BandwidthBPS > 0,
	}
	s.txDoneFn = s.txDone
	s.airFn = s.airArrive
	s.flushFn = s.flushCheck
	medium.addStation(s)
	return s
}

// airFrame is one uplink frame propagating over the air.
type airFrame struct {
	pkt *inet.Packet
	ap  *AccessPoint
}

// Name returns the station identifier.
func (s *Station) Name() string { return s.name }

// Pos returns the station's position at the given instant.
func (s *Station) Pos(at sim.Time) float64 { return s.motion.Pos(at) }

// AP returns the currently associated access point, or nil.
func (s *Station) AP() *AccessPoint { return s.ap }

// Switching reports whether the station is inside an L2 handoff blackout.
func (s *Station) Switching() bool { return s.switching }

// CanReceive reports whether the radio can accept downlink frames.
func (s *Station) CanReceive() bool { return s.ap != nil && !s.switching }

// TxDrops counts uplink packets lost because the station was detached or
// its queue overflowed.
func (s *Station) TxDrops() uint64 {
	if s.fused {
		s.clock.drain(s.engine)
		s.resolveFlush()
	}
	return s.txDrops
}

// Sent counts uplink frames fully serialized onto the air.
func (s *Station) Sent() uint64 {
	if s.fused {
		s.clock.drain(s.engine)
		s.resolveFlush()
	}
	return s.clock.sent
}

// QueueLen returns the number of uplink packets waiting behind the frame
// being serialized.
func (s *Station) QueueLen() int {
	if s.fused {
		s.clock.drain(s.engine)
		s.resolveFlush()
		if s.repairPending {
			return s.holdQueue.Len()
		}
		if m := s.clock.occupancy(); m > 0 {
			return m - 1
		}
		return 0
	}
	return s.queue.Len()
}

// AddAddr registers an address the station accepts (care-of addresses come
// and go during handovers) and indexes it for O(1) downlink delivery.
func (s *Station) AddAddr(a inet.Addr) {
	s.addrs[a] = true
	s.medium.claimAddr(a, s)
}

// RemoveAddr deregisters an address.
func (s *Station) RemoveAddr(a inet.Addr) {
	delete(s.addrs, a)
	s.medium.releaseAddr(a, s)
}

// HasAddr reports whether the station currently accepts an address.
func (s *Station) HasAddr(a inet.Addr) bool { return s.addrs[a] }

func (s *Station) accepts(a inet.Addr) bool { return s.addrs[a] }

func (s *Station) hearsBeacons() bool { return !s.switching }

// Associate attaches the station to an access point immediately (initial
// attachment; no blackout).
func (s *Station) Associate(ap *AccessPoint) {
	s.ap = ap
	s.switching = false
	if s.OnLinkUp != nil {
		s.OnLinkUp(ap)
	}
}

// SwitchTo starts a link-layer handoff toward the target access point: the
// station detaches now and re-attaches after the configured L2 blackout.
func (s *Station) SwitchTo(target *AccessPoint) {
	old := s.ap
	s.ap = nil
	s.switching = true
	s.nicReset()
	if s.OnLinkDown != nil {
		s.OnLinkDown(old)
	}
	s.engine.Schedule(s.cfg.L2HandoffDelay, func() {
		s.switching = false
		s.ap = target
		if s.OnLinkUp != nil {
			s.OnLinkUp(target)
		}
	})
}

// Detach drops the association without re-attaching.
func (s *Station) Detach() {
	old := s.ap
	s.ap = nil
	s.nicReset()
	if old != nil && s.OnLinkDown != nil {
		s.OnLinkDown(old)
	}
}

func (s *Station) queueLimit() int {
	if s.cfg.QueueLimit == 0 {
		return netsim.DefaultQueueLimit
	}
	return s.cfg.QueueLimit
}

// dropTx discards an uplink packet the radio will never transmit.
func (s *Station) dropTx(pkt *inet.Packet) {
	s.txDrops++
	if s.TxDropHook != nil {
		s.TxDropHook(pkt)
	}
}

// Send transmits a network-layer packet uplink through the associated
// access point. Packets sent while detached are lost (counted in TxDrops
// and observed by TxDropHook): the station's queue is flushed on link-down
// like a real NIC reset.
func (s *Station) Send(pkt *inet.Packet) {
	if !s.CanReceive() {
		s.dropTx(pkt)
		return
	}
	if s.fused {
		s.sendFused(pkt)
		return
	}
	if s.busy {
		if s.queue.Len() >= s.queueLimit() {
			s.dropTx(pkt)
			return
		}
		s.queue.Push(pkt)
		return
	}
	s.startTx(pkt)
}

// sendFused admits a packet on the analytic uplink: one pre-bound delivery
// event at the instant the classic path's airArrive would fire, pinned at
// the same virtual key.
func (s *Station) sendFused(pkt *inet.Packet) {
	s.clock.drain(s.engine)
	s.resolveFlush()
	if s.repairPending {
		// A NIC reset happened while a frame was still serializing and
		// the station has already re-attached; until that frame departs
		// (the instant the classic path decides the flush) new packets
		// wait in the hold queue, which plays the role of the classic
		// queue here.
		if s.holdQueue.Len() >= s.queueLimit() {
			s.dropTx(pkt)
			return
		}
		s.holdQueue.Push(pkt)
		return
	}
	if m := s.clock.occupancy(); m > 0 && m-1 >= s.queueLimit() {
		s.dropTx(pkt)
		return
	}
	start, dep, idx := s.clock.push(s.engine, pkt.Size, s.cfg.BandwidthBPS)
	ent := &s.clock.ring[idx]
	s.inflight.Push(airFrame{pkt: pkt, ap: s.ap})
	ent.ref = s.engine.AtPinned(dep+s.cfg.AirDelay, dep, start, ent.pseq, s.airFn)
}

// nicReset repairs the analytic uplink on link-down. Classic semantics: the
// serializing frame and frames already on the air continue toward the AP
// they were aimed at, while queued frames wait for the serializing frame's
// txDone — if the station has re-attached by then they restart toward the
// new AP, otherwise they are flushed. The analytic path has already
// scheduled deliveries for those queued frames, so it cancels them, parks
// the packets in the hold queue, rewinds busyUntil to the serializing
// frame's departure, and pins a flush-decision event at that frame's
// phantom txDone key.
func (s *Station) nicReset() {
	if !s.fused {
		return
	}
	s.clock.drain(s.engine)
	s.resolveFlush()
	if s.repairPending {
		// An earlier reset's flush decision is still due; the ring holds
		// only the serializing frame, so there is nothing new to repair.
		return
	}
	m := s.clock.occupancy()
	if m <= 1 {
		return // nothing queued behind the serializing frame
	}
	head := s.clock.ringHead
	tail := m - 1
	base := s.inflight.Len() - tail
	for i := 0; i < tail; i++ {
		s.engine.Cancel(s.clock.ring[head+1+i].ref)
		s.holdQueue.Push(s.inflight.At(base + i).pkt)
	}
	s.inflight.DropTail(tail)
	s.clock.ring = s.clock.ring[:head+1]
	cur := &s.clock.ring[head]
	s.clock.busyUntil = cur.dep
	s.repairPending = true
	s.flushAt = cur.dep
	s.flushKey = *cur
	s.engine.AtPinned(cur.dep, cur.pvins, cur.pvins2, cur.pvseq2, s.flushFn)
}

// flushCheck is the pinned flush-decision event scheduled by nicReset; it
// fires at the serializing frame's phantom txDone so held packets restart
// (or flush) even if nothing else touches the station.
func (s *Station) flushCheck() {
	s.clock.drain(s.engine)
	s.resolveFlush()
}

// resolveFlush applies a pending NIC-reset flush decision once the
// serializing frame's phantom txDone has passed, exactly when the classic
// path takes it: if the station can transmit again the held packets
// restart toward the current AP, otherwise they are flushed. It is also
// called lazily from reads so same-instant probes between the phantom
// txDone and the pinned flush event observe the post-decision state.
func (s *Station) resolveFlush() {
	if !s.repairPending {
		return
	}
	now := s.engine.Now()
	if s.flushAt > now || (s.flushAt == now && !phantomFired(s.engine, &s.flushKey)) {
		return
	}
	s.repairPending = false
	n := s.holdQueue.Len()
	if s.CanReceive() {
		for i := 0; i < n; i++ {
			s.sendFused(s.holdQueue.Pop())
		}
		return
	}
	// NIC reset on detach: queued frames are lost.
	for i := 0; i < n; i++ {
		s.dropTx(s.holdQueue.Pop())
	}
}

func (s *Station) startTx(pkt *inet.Packet) {
	s.busy = true
	s.txPkt = pkt
	s.txAP = s.ap // frame is in flight toward this AP even if we detach later
	var txTime sim.Time
	if s.cfg.BandwidthBPS > 0 {
		txTime = sim.Time(int64(pkt.Size) * 8 * int64(sim.Second) / s.cfg.BandwidthBPS)
	}
	s.engine.Schedule(txTime, s.txDoneFn)
}

// txDone fires when the current frame finishes serializing: it goes on the
// air toward the AP it was aimed at and the next queued frame starts.
func (s *Station) txDone() {
	s.clock.sent++
	s.inflight.Push(airFrame{pkt: s.txPkt, ap: s.txAP})
	s.txPkt, s.txAP = nil, nil
	s.engine.Schedule(s.cfg.AirDelay, s.airFn)
	s.busy = false
	switch {
	case s.queue.Len() > 0 && s.CanReceive():
		s.startTx(s.queue.Pop())
	case s.queue.Len() > 0:
		// NIC reset on detach: queued frames are lost.
		n := s.queue.Len()
		for i := 0; i < n; i++ {
			s.dropTx(s.queue.Pop())
		}
	}
}

// airArrive fires one air delay after the frame departs (constant delay
// keeps the FIFO in arrival order). The frame only lands if the station is
// still in the target AP's coverage when it arrives. Both transmit paths
// share this handler: the fused path pre-binds it per frame via AtPinned.
func (s *Station) airArrive() {
	f := s.inflight.Pop()
	if f.ap != nil && f.ap.Covers(s.Pos(s.engine.Now())) {
		f.ap.sendUp(f.pkt)
	}
}

func (s *Station) deliverRA(adv Advertisement) {
	if s.OnRA != nil {
		s.OnRA(adv)
	}
}

func (s *Station) deliverPacket(pkt *inet.Packet) {
	if s.OnPacket != nil {
		s.OnPacket(pkt)
	}
}
