package wireless

import (
	"repro/internal/inet"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Medium is the registry of radios sharing the simulated air. It exists so
// beacons and frames can find the stations in coverage.
type Medium struct {
	engine   *sim.Engine
	aps      []*AccessPoint
	stations []*Station
}

// NewMedium creates an empty medium.
func NewMedium(engine *sim.Engine) *Medium {
	if engine == nil {
		panic("wireless: NewMedium with nil engine")
	}
	return &Medium{engine: engine}
}

// Engine returns the simulation engine.
func (m *Medium) Engine() *sim.Engine { return m.engine }

func (m *Medium) addAP(ap *AccessPoint) { m.aps = append(m.aps, ap) }
func (m *Medium) addStation(s *Station) { m.stations = append(m.stations, s) }

// APs returns the registered access points.
func (m *Medium) APs() []*AccessPoint { return m.aps }

// StationConfig configures a mobile station's radio.
type StationConfig struct {
	// BandwidthBPS is the uplink line rate.
	BandwidthBPS int64
	// AirDelay is the per-frame uplink latency.
	AirDelay sim.Time
	// L2HandoffDelay is the blackout while the NIC re-associates with a
	// new access point (200 ms in the thesis' simulations). During the
	// blackout the station neither sends nor receives and hears no
	// beacons: "currently available IEEE 802.11 wireless LAN card can
	// only access one access point at a time".
	L2HandoffDelay sim.Time
	// QueueLimit bounds the uplink queue, in packets.
	QueueLimit int
}

// Station is a mobile host's wireless NIC. The mobility-protocol engine
// (internal/core) drives it through Associate/SwitchTo and observes it
// through the On* callbacks. Once a core.MobileHost is bound to a station
// it owns all four callbacks; external observers must use the MobileHost's
// hooks instead of replacing them.
type Station struct {
	name   string
	cfg    StationConfig
	engine *sim.Engine
	medium *Medium
	motion Motion

	ap        *AccessPoint
	switching bool

	addrs map[inet.Addr]bool

	busy  bool
	queue []*inet.Packet
	// Zero-alloc uplink transmit state (see AccessPoint): the in-flight
	// FIFO carries the target AP alongside each frame because a frame
	// stays aimed at the AP it was transmitted toward even if the station
	// detaches before it lands.
	txPkt    *inet.Packet
	txAP     *AccessPoint
	inflight []airFrame
	txDoneFn sim.Handler
	airFn    sim.Handler

	txDrops uint64

	// OnRA is invoked for every router advertisement heard, including
	// beacons from foreign access points while in an overlap area.
	OnRA func(adv Advertisement)
	// OnPacket delivers received network-layer packets.
	OnPacket func(pkt *inet.Packet)
	// OnLinkUp fires when an association completes (including the initial
	// one).
	OnLinkUp func(ap *AccessPoint)
	// OnLinkDown fires when the station detaches (start of the L2
	// blackout).
	OnLinkDown func(ap *AccessPoint)
}

// NewStation creates a station and registers it with the medium. It starts
// detached.
func NewStation(name string, medium *Medium, motion Motion, cfg StationConfig) *Station {
	s := &Station{
		name:   name,
		cfg:    cfg,
		engine: medium.engine,
		medium: medium,
		motion: motion,
		addrs:  make(map[inet.Addr]bool),
	}
	s.txDoneFn = s.txDone
	s.airFn = s.airArrive
	medium.addStation(s)
	return s
}

// airFrame is one uplink frame propagating over the air.
type airFrame struct {
	pkt *inet.Packet
	ap  *AccessPoint
}

// Name returns the station identifier.
func (s *Station) Name() string { return s.name }

// Pos returns the station's position at the given instant.
func (s *Station) Pos(at sim.Time) float64 { return s.motion.Pos(at) }

// AP returns the currently associated access point, or nil.
func (s *Station) AP() *AccessPoint { return s.ap }

// Switching reports whether the station is inside an L2 handoff blackout.
func (s *Station) Switching() bool { return s.switching }

// CanReceive reports whether the radio can accept downlink frames.
func (s *Station) CanReceive() bool { return s.ap != nil && !s.switching }

// TxDrops counts uplink packets lost because the station was detached.
func (s *Station) TxDrops() uint64 { return s.txDrops }

// AddAddr registers an address the station accepts (care-of addresses come
// and go during handovers).
func (s *Station) AddAddr(a inet.Addr) { s.addrs[a] = true }

// RemoveAddr deregisters an address.
func (s *Station) RemoveAddr(a inet.Addr) { delete(s.addrs, a) }

// HasAddr reports whether the station currently accepts an address.
func (s *Station) HasAddr(a inet.Addr) bool { return s.addrs[a] }

func (s *Station) accepts(a inet.Addr) bool { return s.addrs[a] }

func (s *Station) hearsBeacons() bool { return !s.switching }

// Associate attaches the station to an access point immediately (initial
// attachment; no blackout).
func (s *Station) Associate(ap *AccessPoint) {
	s.ap = ap
	s.switching = false
	if s.OnLinkUp != nil {
		s.OnLinkUp(ap)
	}
}

// SwitchTo starts a link-layer handoff toward the target access point: the
// station detaches now and re-attaches after the configured L2 blackout.
func (s *Station) SwitchTo(target *AccessPoint) {
	old := s.ap
	s.ap = nil
	s.switching = true
	if s.OnLinkDown != nil {
		s.OnLinkDown(old)
	}
	s.engine.Schedule(s.cfg.L2HandoffDelay, func() {
		s.switching = false
		s.ap = target
		if s.OnLinkUp != nil {
			s.OnLinkUp(target)
		}
	})
}

// Detach drops the association without re-attaching.
func (s *Station) Detach() {
	old := s.ap
	s.ap = nil
	if old != nil && s.OnLinkDown != nil {
		s.OnLinkDown(old)
	}
}

// Send transmits a network-layer packet uplink through the associated
// access point. Packets sent while detached are lost (counted in TxDrops):
// the station's queue is flushed on link-down like a real NIC reset.
func (s *Station) Send(pkt *inet.Packet) {
	if !s.CanReceive() {
		s.txDrops++
		return
	}
	if s.busy {
		limit := s.cfg.QueueLimit
		if limit == 0 {
			limit = netsim.DefaultQueueLimit
		}
		if len(s.queue) >= limit {
			s.txDrops++
			return
		}
		s.queue = append(s.queue, pkt)
		return
	}
	s.startTx(pkt)
}

func (s *Station) startTx(pkt *inet.Packet) {
	s.busy = true
	s.txPkt = pkt
	s.txAP = s.ap // frame is in flight toward this AP even if we detach later
	var txTime sim.Time
	if s.cfg.BandwidthBPS > 0 {
		txTime = sim.Time(int64(pkt.Size) * 8 * int64(sim.Second) / s.cfg.BandwidthBPS)
	}
	s.engine.Schedule(txTime, s.txDoneFn)
}

// txDone fires when the current frame finishes serializing: it goes on the
// air toward the AP it was aimed at and the next queued frame starts.
func (s *Station) txDone() {
	s.inflight = append(s.inflight, airFrame{pkt: s.txPkt, ap: s.txAP})
	s.engine.Schedule(s.cfg.AirDelay, s.airFn)
	s.busy = false
	switch {
	case len(s.queue) > 0 && s.CanReceive():
		next := s.queue[0]
		copy(s.queue, s.queue[1:])
		s.queue = s.queue[:len(s.queue)-1]
		s.startTx(next)
	case len(s.queue) > 0:
		// NIC reset on detach: queued frames are lost.
		s.txDrops += uint64(len(s.queue))
		s.queue = s.queue[:0]
	}
}

// airArrive fires one air delay after txDone (constant delay keeps the
// FIFO in arrival order). The frame only lands if the station is still in
// the target AP's coverage when it arrives.
func (s *Station) airArrive() {
	f := s.inflight[0]
	copy(s.inflight, s.inflight[1:])
	s.inflight[len(s.inflight)-1] = airFrame{}
	s.inflight = s.inflight[:len(s.inflight)-1]
	if f.ap != nil && f.ap.Covers(s.Pos(s.engine.Now())) {
		f.ap.sendUp(f.pkt)
	}
}

func (s *Station) deliverRA(adv Advertisement) {
	if s.OnRA != nil {
		s.OnRA(adv)
	}
}

func (s *Station) deliverPacket(pkt *inet.Packet) {
	if s.OnPacket != nil {
		s.OnPacket(pkt)
	}
}
