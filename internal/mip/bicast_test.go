package mip

import (
	"testing"

	"repro/internal/inet"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// bicastTopology extends the MAP testbed with a second access router and
// host standing in for the NCoA side of a SafetyNet handoff:
//
//	cn -- map -- ar  -- mh   (primary leg, net 2)
//	        \--- ar2 -- mh2  (bicast leg,  net 3)
type bicastTopology struct {
	engine *sim.Engine
	topo   *netsim.Topology
	cn     *netsim.Host
	agent  *Agent
	mh     *netsim.Host
	mh2    *netsim.Host
	rcoa   inet.Addr
}

func newBicastTopology(t testing.TB, pooled bool) *bicastTopology {
	t.Helper()
	e := sim.NewEngine()
	topo := netsim.NewTopology(e)
	cn := netsim.NewHost("cn", inet.Addr{Net: 1, Host: 1})
	mapRouter := netsim.NewRouter("map", inet.Addr{Net: 50, Host: 1})
	ar := netsim.NewRouter("ar", inet.Addr{Net: 2, Host: 1})
	ar2 := netsim.NewRouter("ar2", inet.Addr{Net: 3, Host: 1})
	mh := netsim.NewHost("mh", inet.Addr{Net: 2, Host: 7})
	mh2 := netsim.NewHost("mh2", inet.Addr{Net: 3, Host: 7})

	topo.Connect(cn, mapRouter, netsim.LinkConfig{Delay: sim.Millisecond})
	topo.Connect(mapRouter, ar, netsim.LinkConfig{Delay: sim.Millisecond})
	topo.Connect(mapRouter, ar2, netsim.LinkConfig{Delay: sim.Millisecond})
	topo.Connect(ar, mh, netsim.LinkConfig{Delay: sim.Millisecond})
	topo.Connect(ar2, mh2, netsim.LinkConfig{Delay: sim.Millisecond})
	topo.ClaimNet(1, cn)
	topo.ClaimNet(2, ar)
	topo.ClaimNet(3, ar2)
	topo.ClaimNet(50, mapRouter)
	if err := topo.ComputeRoutes(); err != nil {
		t.Fatalf("ComputeRoutes: %v", err)
	}
	ar.AddPrefixRoute(2, ar.Ifaces()[1])
	ar2.AddPrefixRoute(3, ar2.Ifaces()[1])

	cfg := AgentConfig{ManagedNet: 50}
	if pooled {
		cfg.Alloc = topo.AllocPacket
	}
	agent := NewAgent(e, mapRouter, cfg)
	return &bicastTopology{
		engine: e, topo: topo, cn: cn, agent: agent, mh: mh, mh2: mh2,
		rcoa: inet.Addr{Net: 50, Host: 7},
	}
}

// requestBicast installs the duplication entry the way a mobile host does:
// a BicastRequest control packet delivered to the anchor.
func (w *bicastTopology) requestBicast(t testing.TB, lifetime sim.Time) {
	t.Helper()
	w.mh.Send(&inet.Packet{
		Src: w.mh.Addr(), Dst: w.agent.Router().Addr(), Proto: inet.ProtoControl,
		Size:    BicastRequestSize,
		Payload: &BicastRequest{Key: w.rcoa, NCoA: w.mh2.Addr(), Lifetime: lifetime},
	})
	if err := w.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
}

func TestAgentBicastDuplicatesTowardNCoA(t *testing.T) {
	for _, pooled := range []bool{false, true} {
		name := "clone"
		if pooled {
			name = "pooled"
		}
		t.Run(name, func(t *testing.T) {
			w := newBicastTopology(t, pooled)
			w.agent.Register(w.rcoa, w.mh.Addr(), 100*sim.Second)
			w.requestBicast(t, 10*sim.Second)
			if !w.agent.BicastActive(w.rcoa) {
				t.Fatal("bicast entry not installed by BicastRequest")
			}

			var primary, dup *inet.Packet
			w.mh.Receive = func(pkt *inet.Packet) { primary = pkt }
			w.mh2.Receive = func(pkt *inet.Packet) { dup = pkt }
			w.cn.Send(&inet.Packet{
				Src: w.cn.Addr(), Dst: w.rcoa, Proto: inet.ProtoUDP,
				Flow: 1, Seq: 9, Size: 160,
			})
			if err := w.engine.RunAll(); err != nil {
				t.Fatalf("RunAll: %v", err)
			}
			if primary == nil || dup == nil {
				t.Fatalf("primary=%v dup=%v, want both legs delivered", primary, dup)
			}
			for _, pkt := range []*inet.Packet{primary, dup} {
				if pkt.Proto != inet.ProtoTunnel {
					t.Fatalf("delivered proto = %v, want tunnel", pkt.Proto)
				}
				inner := pkt.Innermost()
				if inner.Seq != 9 || inner.Flow != 1 || inner.Dst != w.rcoa {
					t.Fatalf("inner = %+v, want seq 9 flow 1 dst rcoa", inner)
				}
			}
			if dup.Dst != w.mh2.Addr() {
				t.Fatalf("duplicate wrapper dst = %v, want NCoA", dup.Dst)
			}
			if got := w.agent.BicastPackets(); got != 1 {
				t.Fatalf("BicastPackets = %d, want 1", got)
			}
			if got := w.agent.BicastBytes(); got != 160+inet.TunnelHeaderSize {
				t.Fatalf("BicastBytes = %d, want %d", got, 160+inet.TunnelHeaderSize)
			}
		})
	}
}

func TestAgentBicastEndsOnAcceptedBindingUpdate(t *testing.T) {
	w := newBicastTopology(t, false)
	w.agent.Register(w.rcoa, w.mh.Addr(), 100*sim.Second)
	w.requestBicast(t, 10*sim.Second)

	// The host completes the handoff: the accepted update moves the binding
	// to the NCoA and must tear the duplication entry down with it.
	w.mh2.Send(&inet.Packet{
		Src: w.mh2.Addr(), Dst: w.agent.Router().Addr(), Proto: inet.ProtoControl,
		Size:    BindingUpdateSize,
		Payload: &BindingUpdate{Key: w.rcoa, CoA: w.mh2.Addr(), Seq: 1, Lifetime: 100 * sim.Second},
	})
	if err := w.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if w.agent.BicastActive(w.rcoa) {
		t.Fatal("bicast entry survived the accepted binding update")
	}

	deliveries := 0
	w.mh2.Receive = func(pkt *inet.Packet) { deliveries++ }
	w.cn.Send(&inet.Packet{Src: w.cn.Addr(), Dst: w.rcoa, Proto: inet.ProtoUDP, Size: 160})
	if err := w.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if deliveries != 1 {
		t.Fatalf("%d deliveries after the binding moved, want exactly 1 (no self-copy)", deliveries)
	}
	if w.agent.BicastPackets() != 0 {
		t.Fatalf("BicastPackets = %d, want 0", w.agent.BicastPackets())
	}
}

func TestAgentBicastExpires(t *testing.T) {
	w := newBicastTopology(t, false)
	w.agent.Register(w.rcoa, w.mh.Addr(), 100*sim.Second)
	w.requestBicast(t, sim.Second)

	if err := w.engine.Run(2 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if w.agent.BicastActive(w.rcoa) {
		t.Fatal("bicast entry reported active past its lifetime")
	}
	dups := 0
	w.mh2.Receive = func(pkt *inet.Packet) { dups++ }
	w.cn.Send(&inet.Packet{Src: w.cn.Addr(), Dst: w.rcoa, Proto: inet.ProtoUDP, Size: 160})
	if err := w.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if dups != 0 || w.agent.BicastPackets() != 0 {
		t.Fatalf("expired entry still duplicated (%d deliveries, %d counted)", dups, w.agent.BicastPackets())
	}
}

// bicastHotPath drives one duplicate emission end to end: the anchor
// copies a template packet from the pool, wraps it, and forwards it to the
// NCoA host, which recycles the chain. The template itself is never sent,
// isolating the duplicate path from the primary leg's Encapsulate.
func bicastHotPath(t testing.TB, w *bicastTopology, template *inet.Packet) {
	w.agent.maybeBicast(template, w.mh.Addr())
	if err := w.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
}

func newBicastHotPathBed(t testing.TB) (*bicastTopology, *inet.Packet) {
	w := newBicastTopology(t, true)
	w.agent.Register(w.rcoa, w.mh.Addr(), 1<<62)
	w.requestBicast(t, 1<<62)
	w.mh2.Receive = func(pkt *inet.Packet) {
		w.topo.ReleasePacket(pkt.Inner)
		w.topo.ReleasePacket(pkt)
	}
	template := &inet.Packet{
		Src: inet.Addr{Net: 1, Host: 1}, Dst: w.rcoa,
		Proto: inet.ProtoUDP, Flow: 1, Size: 160,
	}
	return w, template
}

// TestBicastForwardZeroAlloc pins the SafetyNet fan-out hot path: in
// steady state, duplicating one packet — pooled copy, pooled tunnel
// wrapper, wired delivery, recycle — allocates nothing.
func TestBicastForwardZeroAlloc(t *testing.T) {
	w, template := newBicastHotPathBed(t)
	for i := 0; i < 64; i++ {
		template.Seq++
		bicastHotPath(t, w, template)
	}
	if got := w.agent.BicastPackets(); got != 64 {
		t.Fatalf("warmup emitted %d duplicates, want 64", got)
	}
	if avg := testing.AllocsPerRun(200, func() {
		template.Seq++
		bicastHotPath(t, w, template)
	}); avg != 0 {
		t.Fatalf("bicast duplicate path allocates %.2f times per packet; want 0", avg)
	}
}

// BenchmarkBicastForward measures the anchor's duplicate emission end to
// end (pooled copy + wrapper, one wired hop, recycle). The CI gate pins
// its allocs/op at zero.
func BenchmarkBicastForward(b *testing.B) {
	w, template := newBicastHotPathBed(b)
	for i := 0; i < 64; i++ {
		template.Seq++
		bicastHotPath(b, w, template)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		template.Seq++
		bicastHotPath(b, w, template)
	}
}
