package mip

import (
	"testing"
	"testing/quick"

	"repro/internal/inet"
	"repro/internal/sim"
)

func addr(n, h uint32) inet.Addr { return inet.Addr{Net: inet.NetID(n), Host: inet.HostID(h)} }

func TestBindingCacheUpdateLookup(t *testing.T) {
	c := NewBindingCache()
	key, coa := addr(5, 1), addr(10, 7)
	if !c.Update(key, coa, 1, 10*sim.Second, 0) {
		t.Fatal("Update rejected on empty cache")
	}
	b, ok := c.Lookup(key, 5*sim.Second)
	if !ok || b.CoA != coa {
		t.Fatalf("Lookup = %+v/%t, want coa %v", b, ok, coa)
	}
}

func TestBindingCacheExpiry(t *testing.T) {
	c := NewBindingCache()
	key := addr(5, 1)
	c.Update(key, addr(10, 7), 1, 10*sim.Second, 0)
	if _, ok := c.Lookup(key, 10*sim.Second); ok {
		t.Fatal("binding live exactly at expiry instant")
	}
	if _, ok := c.Lookup(key, 9*sim.Second); !ok {
		t.Fatal("binding dead before expiry")
	}
}

func TestBindingCacheRejectsStaleSeq(t *testing.T) {
	c := NewBindingCache()
	key := addr(5, 1)
	c.Update(key, addr(10, 7), 10, 10*sim.Second, 0)
	if c.Update(key, addr(11, 7), 9, 10*sim.Second, 0) {
		t.Fatal("stale sequence accepted")
	}
	if b, _ := c.Lookup(key, sim.Second); b.CoA != addr(10, 7) {
		t.Fatal("stale update overwrote binding")
	}
	// Equal sequence refreshes (retransmission).
	if !c.Update(key, addr(10, 7), 10, 20*sim.Second, sim.Second) {
		t.Fatal("retransmission rejected")
	}
	// A lapsed binding accepts any sequence.
	if !c.Update(key, addr(12, 7), 1, 10*sim.Second, 30*sim.Second) {
		t.Fatal("update after expiry rejected")
	}
}

func TestBindingCacheSeqWraparound(t *testing.T) {
	c := NewBindingCache()
	key := addr(5, 1)
	c.Update(key, addr(10, 7), 65535, 100*sim.Second, 0)
	// 0 is "greater" than 65535 in serial arithmetic.
	if !c.Update(key, addr(11, 7), 0, 100*sim.Second, sim.Second) {
		t.Fatal("wraparound sequence rejected")
	}
	if b, _ := c.Lookup(key, 2*sim.Second); b.CoA != addr(11, 7) {
		t.Fatal("wraparound update not applied")
	}
}

func TestBindingCacheRemovePurge(t *testing.T) {
	c := NewBindingCache()
	c.Update(addr(5, 1), addr(10, 1), 1, 10*sim.Second, 0)
	c.Update(addr(5, 2), addr(10, 2), 1, 20*sim.Second, 0)
	c.Remove(addr(5, 1))
	if c.Len() != 1 {
		t.Fatalf("Len = %d after Remove, want 1", c.Len())
	}
	if got := c.Purge(15 * sim.Second); got != 0 {
		t.Fatalf("Purge removed %d, want 0", got)
	}
	if got := c.Purge(25 * sim.Second); got != 1 {
		t.Fatalf("Purge removed %d, want 1", got)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after purge, want 0", c.Len())
	}
}

func TestBindingCacheEntriesSorted(t *testing.T) {
	c := NewBindingCache()
	c.Update(addr(7, 2), addr(1, 1), 1, sim.Second, 0)
	c.Update(addr(5, 9), addr(1, 2), 1, sim.Second, 0)
	c.Update(addr(5, 1), addr(1, 3), 1, sim.Second, 0)
	entries := c.Entries(0)
	if len(entries) != 3 {
		t.Fatalf("Entries = %d, want 3", len(entries))
	}
	want := []inet.Addr{addr(5, 1), addr(5, 9), addr(7, 2)}
	for i, b := range entries {
		if b.Key != want[i] {
			t.Fatalf("entry %d = %v, want %v", i, b.Key, want[i])
		}
	}
}

func TestSeqLess(t *testing.T) {
	tests := []struct {
		a, b uint16
		want bool
	}{
		{1, 2, true},
		{2, 1, false},
		{5, 5, false},
		{65535, 0, true},  // wraparound
		{0, 65535, false}, // wraparound
		{0, 32768, true},
	}
	for _, tt := range tests {
		if got := seqLess(tt.a, tt.b); got != tt.want {
			t.Errorf("seqLess(%d, %d) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

// Property: after any update sequence, every live entry's CoA equals the
// CoA of the highest-sequence accepted update for that key.
func TestPropertyBindingMonotonicSeq(t *testing.T) {
	f := func(seqs []uint8) bool {
		c := NewBindingCache()
		key := addr(1, 1)
		var best int16 = -1
		for _, s := range seqs {
			coa := addr(2, uint32(s))
			if c.Update(key, coa, uint16(s), 100*sim.Second, 0) {
				if best >= 0 && seqLess(uint16(s), uint16(best)) {
					return false // accepted a stale update
				}
				best = int16(s)
			}
		}
		if best < 0 {
			return c.Len() == 0
		}
		b, ok := c.Lookup(key, sim.Second)
		return ok && b.CoA == addr(2, uint32(best))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
