// Package mip implements the Mobile IPv6 pieces the experiments stand on:
// a binding cache with lifetimes, the Hierarchical Mobile IPv6 Mobility
// Anchor Point (MAP) that tunnels packets for a Regional Care-of Address
// (RCoA) to the current On-Link Care-of Address (LCoA), and a home agent
// that does the same for home addresses.
package mip

import (
	"sort"

	"repro/internal/inet"
	"repro/internal/sim"
)

// Binding maps an identifying address (home address or RCoA) to the mobile
// host's current care-of address.
type Binding struct {
	// Key is the stable address packets are sent to.
	Key inet.Addr
	// CoA is where packets are tunnelled.
	CoA inet.Addr
	// Expires is the absolute instant the binding lapses.
	Expires sim.Time
	// Seq is the sequence number of the binding update that installed the
	// entry; stale (lower-sequence) updates are rejected.
	Seq uint16
}

// BindingCache is a lifetime-aware binding table. Expiry is lazy: Lookup
// ignores lapsed entries and Purge removes them.
type BindingCache struct {
	entries map[inet.Addr]Binding
}

// NewBindingCache returns an empty cache.
func NewBindingCache() *BindingCache {
	return &BindingCache{entries: make(map[inet.Addr]Binding)}
}

// Len returns the number of entries, including lapsed ones not yet purged.
func (c *BindingCache) Len() int { return len(c.entries) }

// Update installs or refreshes a binding. It returns false when a fresher
// (higher-sequence) binding already exists for the key; equal sequence
// numbers refresh the lifetime, as retransmitted binding updates must.
func (c *BindingCache) Update(key, coa inet.Addr, seq uint16, lifetime, now sim.Time) bool {
	if old, ok := c.entries[key]; ok && old.Expires > now && seqLess(seq, old.Seq) {
		return false
	}
	c.entries[key] = Binding{Key: key, CoA: coa, Expires: now + lifetime, Seq: seq}
	return true
}

// Lookup returns the live binding for key.
func (c *BindingCache) Lookup(key inet.Addr, now sim.Time) (Binding, bool) {
	b, ok := c.entries[key]
	if !ok || b.Expires <= now {
		return Binding{}, false
	}
	return b, true
}

// Remove deletes a binding (deregistration: a zero-lifetime update).
func (c *BindingCache) Remove(key inet.Addr) { delete(c.entries, key) }

// Purge drops all lapsed entries and reports how many were removed.
func (c *BindingCache) Purge(now sim.Time) int {
	removed := 0
	for k, b := range c.entries {
		if b.Expires <= now {
			delete(c.entries, k)
			removed++
		}
	}
	return removed
}

// Entries returns a deterministic (key-sorted) snapshot of live entries.
func (c *BindingCache) Entries(now sim.Time) []Binding {
	out := make([]Binding, 0, len(c.entries))
	for _, b := range c.entries {
		if b.Expires > now {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Net != out[j].Key.Net {
			return out[i].Key.Net < out[j].Key.Net
		}
		return out[i].Key.Host < out[j].Key.Host
	})
	return out
}

// seqLess compares binding sequence numbers modulo 2^16 (RFC 3775 §9.5.1
// style serial arithmetic).
func seqLess(a, b uint16) bool {
	return a != b && int16(a-b) < 0
}
