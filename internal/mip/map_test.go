package mip

import (
	"testing"

	"repro/internal/inet"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// mapTopology builds cn -- map -- ar -- mh where the MAP manages net 50
// (RCoA space) and the mobile host's LCoA lives on net 2 behind ar.
type mapTopology struct {
	engine *sim.Engine
	cn     *netsim.Host
	agent  *Agent
	ar     *netsim.Router
	mh     *netsim.Host
	rcoa   inet.Addr
}

func newMAPTopology(t *testing.T) *mapTopology {
	t.Helper()
	e := sim.NewEngine()
	topo := netsim.NewTopology(e)
	cn := netsim.NewHost("cn", inet.Addr{Net: 1, Host: 1})
	mapRouter := netsim.NewRouter("map", inet.Addr{Net: 50, Host: 1})
	ar := netsim.NewRouter("ar", inet.Addr{Net: 2, Host: 1})
	mh := netsim.NewHost("mh", inet.Addr{Net: 2, Host: 7})

	topo.Connect(cn, mapRouter, netsim.LinkConfig{Delay: sim.Millisecond})
	topo.Connect(mapRouter, ar, netsim.LinkConfig{Delay: sim.Millisecond})
	topo.Connect(ar, mh, netsim.LinkConfig{Delay: sim.Millisecond})
	topo.ClaimNet(1, cn)
	topo.ClaimNet(2, ar)
	topo.ClaimNet(50, mapRouter)
	if err := topo.ComputeRoutes(); err != nil {
		t.Fatalf("ComputeRoutes: %v", err)
	}
	// AR delivers net-2 addresses over its mh link.
	ar.AddPrefixRoute(2, ar.Ifaces()[1])

	agent := NewAgent(e, mapRouter, AgentConfig{ManagedNet: 50})
	return &mapTopology{
		engine: e, cn: cn, agent: agent, ar: ar, mh: mh,
		rcoa: inet.Addr{Net: 50, Host: 7},
	}
}

func TestAgentTunnelsToBoundCoA(t *testing.T) {
	w := newMAPTopology(t)
	w.agent.Register(w.rcoa, w.mh.Addr(), 100*sim.Second)

	var got *inet.Packet
	w.mh.Receive = func(pkt *inet.Packet) { got = pkt }
	w.cn.Send(&inet.Packet{
		Src: w.cn.Addr(), Dst: w.rcoa, Proto: inet.ProtoUDP, Size: 160, Seq: 3,
	})
	if err := w.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if got == nil {
		t.Fatal("packet not tunnelled to the care-of address")
	}
	// The host receives the tunnel packet addressed to its LCoA; the
	// inner packet keeps the RCoA destination.
	if got.Proto != inet.ProtoTunnel {
		t.Fatalf("delivered proto = %v, want tunnel", got.Proto)
	}
	if inner := got.Innermost(); inner.Seq != 3 || inner.Dst != w.rcoa {
		t.Fatalf("inner = %v", inner)
	}
	if w.agent.Intercepted() != 1 {
		t.Fatalf("Intercepted = %d, want 1", w.agent.Intercepted())
	}
}

func TestAgentDropsUnboundManagedAddress(t *testing.T) {
	w := newMAPTopology(t)
	delivered := 0
	w.mh.Receive = func(pkt *inet.Packet) { delivered++ }
	w.cn.Send(&inet.Packet{Src: w.cn.Addr(), Dst: w.rcoa, Proto: inet.ProtoUDP, Size: 160})
	if err := w.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if delivered != 0 || w.agent.NoBinding() != 1 {
		t.Fatalf("delivered=%d noBinding=%d, want 0/1", delivered, w.agent.NoBinding())
	}
}

func TestAgentIgnoresForeignPrefixes(t *testing.T) {
	w := newMAPTopology(t)
	// Traffic to the AR's net passes through untouched.
	var got *inet.Packet
	w.mh.Receive = func(pkt *inet.Packet) { got = pkt }
	w.cn.Send(&inet.Packet{Src: w.cn.Addr(), Dst: w.mh.Addr(), Proto: inet.ProtoUDP, Size: 160})
	if err := w.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if got == nil || got.Proto != inet.ProtoUDP {
		t.Fatalf("got = %v, want plain UDP delivery", got)
	}
	if w.agent.Intercepted() != 0 {
		t.Fatal("agent intercepted traffic outside its prefix")
	}
}

func TestAgentHandlesBindingUpdate(t *testing.T) {
	w := newMAPTopology(t)
	var ack *BindingAck
	w.mh.Receive = func(pkt *inet.Packet) {
		if a, ok := pkt.Payload.(*BindingAck); ok {
			ack = a
		}
	}
	w.mh.Send(&inet.Packet{
		Src: w.mh.Addr(), Dst: w.agent.Router().Addr(),
		Proto: inet.ProtoControl, Size: BindingUpdateSize,
		Payload: &BindingUpdate{Key: w.rcoa, CoA: w.mh.Addr(), Lifetime: 30 * sim.Second, Seq: 1},
	})
	if err := w.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if ack == nil || !ack.Accepted || ack.Seq != 1 {
		t.Fatalf("ack = %+v, want accepted seq 1", ack)
	}
	if b, ok := w.agent.Cache().Lookup(w.rcoa, w.engine.Now()); !ok || b.CoA != w.mh.Addr() {
		t.Fatalf("binding not installed: %+v/%t", b, ok)
	}
}

func TestAgentGrantsCappedLifetime(t *testing.T) {
	w := newMAPTopology(t)
	w.agent.cfg.MaxLifetime = 10 * sim.Second
	var ack *BindingAck
	w.mh.Receive = func(pkt *inet.Packet) {
		if a, ok := pkt.Payload.(*BindingAck); ok {
			ack = a
		}
	}
	w.mh.Send(&inet.Packet{
		Src: w.mh.Addr(), Dst: w.agent.Router().Addr(),
		Proto: inet.ProtoControl, Size: BindingUpdateSize,
		Payload: &BindingUpdate{Key: w.rcoa, CoA: w.mh.Addr(), Lifetime: sim.Time(3600) * sim.Second, Seq: 1},
	})
	if err := w.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if ack == nil || ack.Lifetime != 10*sim.Second {
		t.Fatalf("ack lifetime = %v, want 10s cap", ack.Lifetime)
	}
}

func TestAgentCapsBicastLifetime(t *testing.T) {
	// A bicast request must respect the same MaxLifetime cap as binding
	// grants: a host asking for an hour of duplication against a 10 s cap
	// gets 10 s, not an effectively unbounded entry.
	w := newMAPTopology(t)
	w.agent.cfg.MaxLifetime = 10 * sim.Second
	ncoa := inet.Addr{Net: 3, Host: 7}
	w.mh.Send(&inet.Packet{
		Src: w.mh.Addr(), Dst: w.agent.Router().Addr(),
		Proto: inet.ProtoControl, Size: BicastRequestSize,
		Payload: &BicastRequest{Key: w.rcoa, NCoA: ncoa, Lifetime: 3600 * sim.Second},
	})
	if err := w.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if !w.agent.BicastActive(w.rcoa) {
		t.Fatal("bicast entry not installed")
	}
	if err := w.engine.Run(w.engine.Now() + 10*sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if w.agent.BicastActive(w.rcoa) {
		t.Fatal("bicast entry outlived the MaxLifetime cap")
	}
}

func TestAgentDeregistration(t *testing.T) {
	w := newMAPTopology(t)
	w.agent.Register(w.rcoa, w.mh.Addr(), 100*sim.Second)
	w.mh.Send(&inet.Packet{
		Src: w.mh.Addr(), Dst: w.agent.Router().Addr(),
		Proto: inet.ProtoControl, Size: BindingUpdateSize,
		Payload: &BindingUpdate{Key: w.rcoa, Seq: 2}, // zero lifetime
	})
	if err := w.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if _, ok := w.agent.Cache().Lookup(w.rcoa, w.engine.Now()); ok {
		t.Fatal("binding survived deregistration")
	}
}

func TestBindingUpdateDeregister(t *testing.T) {
	if !(&BindingUpdate{}).Deregister() {
		t.Fatal("zero lifetime should deregister")
	}
	if (&BindingUpdate{Lifetime: sim.Second}).Deregister() {
		t.Fatal("non-zero lifetime misread as deregistration")
	}
}

func TestAgentRebindMovesTraffic(t *testing.T) {
	// After a binding update pointing at a second host, traffic follows.
	e := sim.NewEngine()
	topo := netsim.NewTopology(e)
	cn := netsim.NewHost("cn", inet.Addr{Net: 1, Host: 1})
	mapRouter := netsim.NewRouter("map", inet.Addr{Net: 50, Host: 1})
	ar1 := netsim.NewRouter("ar1", inet.Addr{Net: 2, Host: 1})
	ar2 := netsim.NewRouter("ar2", inet.Addr{Net: 3, Host: 1})
	mh1 := netsim.NewHost("mh1", inet.Addr{Net: 2, Host: 7})
	mh2 := netsim.NewHost("mh2", inet.Addr{Net: 3, Host: 7})
	topo.Connect(cn, mapRouter, netsim.LinkConfig{Delay: sim.Millisecond})
	topo.Connect(mapRouter, ar1, netsim.LinkConfig{Delay: sim.Millisecond})
	topo.Connect(mapRouter, ar2, netsim.LinkConfig{Delay: sim.Millisecond})
	topo.Connect(ar1, mh1, netsim.LinkConfig{Delay: sim.Millisecond})
	topo.Connect(ar2, mh2, netsim.LinkConfig{Delay: sim.Millisecond})
	topo.ClaimNet(1, cn)
	topo.ClaimNet(2, ar1)
	topo.ClaimNet(3, ar2)
	topo.ClaimNet(50, mapRouter)
	if err := topo.ComputeRoutes(); err != nil {
		t.Fatalf("ComputeRoutes: %v", err)
	}
	ar1.AddPrefixRoute(2, ar1.Ifaces()[1])
	ar2.AddPrefixRoute(3, ar2.Ifaces()[1])

	agent := NewAgent(e, mapRouter, AgentConfig{ManagedNet: 50})
	rcoa := inet.Addr{Net: 50, Host: 7}
	agent.Register(rcoa, mh1.Addr(), 100*sim.Second)

	got1, got2 := 0, 0
	mh1.Receive = func(pkt *inet.Packet) { got1++ }
	mh2.Receive = func(pkt *inet.Packet) { got2++ }

	send := func() {
		cn.Send(&inet.Packet{Src: cn.Addr(), Dst: rcoa, Proto: inet.ProtoUDP, Size: 160})
	}
	send()
	e.Schedule(sim.Second, func() {
		agent.Cache().Update(rcoa, mh2.Addr(), 1, 100*sim.Second, e.Now())
		send()
	})
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if got1 != 1 || got2 != 1 {
		t.Fatalf("got1=%d got2=%d, want 1/1", got1, got2)
	}
}
