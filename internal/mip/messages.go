package mip

import (
	"repro/internal/inet"
	"repro/internal/sim"
)

// BindingUpdate registers a care-of address with a MAP or home agent.
type BindingUpdate struct {
	// Key is the stable address being bound (RCoA at a MAP, home address
	// at a home agent).
	Key inet.Addr
	// CoA is the current care-of address. An unspecified CoA with zero
	// lifetime deregisters.
	CoA inet.Addr
	// Lifetime requests how long the binding should live.
	Lifetime sim.Time
	// Seq orders updates from the same host.
	Seq uint16
}

// Deregister reports whether the update removes the binding.
func (m *BindingUpdate) Deregister() bool { return m.Lifetime == 0 }

// BindingAck confirms (or refuses) a binding update.
type BindingAck struct {
	Key      inet.Addr
	Seq      uint16
	Accepted bool
	// Lifetime is the granted lifetime, which may be shorter than
	// requested.
	Lifetime sim.Time
}

// BicastRequest asks the anchor to duplicate downstream packets toward a
// second care-of address for the duration of a handoff (the SafetyNet
// scheme): the primary copy keeps following the binding while the
// duplicate is tunnelled to NCoA. The request is best-effort — if it is
// lost, the handoff simply proceeds without bicast protection.
type BicastRequest struct {
	// Key is the bound address whose traffic should be duplicated.
	Key inet.Addr
	// NCoA is the prospective care-of address receiving the duplicates.
	NCoA inet.Addr
	// Lifetime bounds the bicast; an accepted BindingUpdate for Key also
	// ends it.
	Lifetime sim.Time
}

// Wire sizes of the mobility-header messages, used to size control packets.
const (
	BindingUpdateSize = 56
	BindingAckSize    = 52
	BicastRequestSize = 52
)
