package mip

import (
	"repro/internal/inet"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// AgentConfig parameterizes a mobility agent (MAP or home agent).
type AgentConfig struct {
	// ManagedNet is the prefix whose addresses the agent intercepts (the
	// MAP's RCoA subnet, or the home network).
	ManagedNet inet.NetID
	// MaxLifetime caps granted binding lifetimes. Zero means "grant the
	// requested lifetime unchanged".
	MaxLifetime sim.Time
	// Alloc, when set, supplies pooled packets for the bicast duplicate
	// path so SafetyNet fan-out stays allocation-free. Nil falls back to
	// heap allocation.
	Alloc func() *inet.Packet
}

// bicastEntry is one active SafetyNet duplication: until expire, packets
// intercepted for the key are additionally tunnelled to ncoa.
type bicastEntry struct {
	ncoa   inet.Addr
	expire sim.Time
}

// Agent is a mobility anchor: a router that intercepts packets addressed
// into its managed prefix and tunnels them to the registered care-of
// address. With ManagedNet set to the MAP subnet it is a Hierarchical
// Mobile IPv6 MAP; with the home prefix it is a home agent. The two roles
// share all mechanics, which is exactly the thesis' "the MAP can be thought
// of as a local home agent" observation.
type Agent struct {
	router *netsim.Router
	engine *sim.Engine
	cfg    AgentConfig
	cache  *BindingCache

	// bicast maps bound addresses under SafetyNet handoff to their
	// duplication target (lazily created; nil outside SafetyNet runs).
	bicast map[inet.Addr]bicastEntry

	intercepted   uint64
	noBinding     uint64
	bicastPackets uint64
	bicastBytes   uint64

	// OnBicast observes every emitted duplicate (the tunnel wrapper), for
	// bandwidth-overhead accounting.
	OnBicast func(*inet.Packet)
}

// NewAgent wraps a router (created by the caller and already linked into
// the topology) with mobility-agent behaviour. It installs Intercept and
// LocalDeliver hooks on the router.
func NewAgent(engine *sim.Engine, router *netsim.Router, cfg AgentConfig) *Agent {
	a := &Agent{
		router: router,
		engine: engine,
		cfg:    cfg,
		cache:  NewBindingCache(),
	}
	router.Intercept = a.intercept
	router.LocalDeliver = a.localDeliver
	return a
}

// Router returns the underlying forwarding element.
func (a *Agent) Router() *netsim.Router { return a.router }

// Cache exposes the binding cache (read-mostly; tests and traces).
func (a *Agent) Cache() *BindingCache { return a.cache }

// Intercepted counts packets tunnelled to a care-of address.
func (a *Agent) Intercepted() uint64 { return a.intercepted }

// NoBinding counts managed-prefix packets dropped for lack of a binding.
func (a *Agent) NoBinding() uint64 { return a.noBinding }

// BicastPackets counts SafetyNet duplicates emitted on the wired side.
func (a *Agent) BicastPackets() uint64 { return a.bicastPackets }

// BicastBytes counts the wire bytes of the emitted duplicates (tunnel
// header included).
func (a *Agent) BicastBytes() uint64 { return a.bicastBytes }

// BicastActive reports whether the key currently has an unexpired
// duplication entry (tests and traces).
func (a *Agent) BicastActive(key inet.Addr) bool {
	e, ok := a.bicast[key]
	return ok && e.expire > a.engine.Now()
}

// Register installs a binding directly (used for initial attachment, where
// the thesis' scenarios start with the host already registered).
func (a *Agent) Register(key, coa inet.Addr, lifetime sim.Time) {
	a.cache.Update(key, coa, 0, lifetime, a.engine.Now())
}

// intercept tunnels packets addressed into the managed prefix toward the
// bound care-of address, duplicating toward the bicast target when a
// SafetyNet handoff is in progress.
func (a *Agent) intercept(in *netsim.Iface, pkt *inet.Packet) bool {
	if pkt.Dst.Net != a.cfg.ManagedNet || pkt.Dst == a.router.Addr() {
		return false
	}
	b, ok := a.cache.Lookup(pkt.Dst, a.engine.Now())
	if !ok {
		a.noBinding++
		return true // consumed: no route for an unbound managed address
	}
	a.intercepted++
	if len(a.bicast) > 0 {
		a.maybeBicast(pkt, b.CoA)
	}
	a.router.Forward(pkt.Encapsulate(a.router.Addr(), b.CoA))
	return true
}

// maybeBicast emits the SafetyNet duplicate of pkt toward the registered
// bicast target. The copy and its tunnel wrapper come from the packet
// pool when configured, keeping the duplicate path allocation-free.
func (a *Agent) maybeBicast(pkt *inet.Packet, primary inet.Addr) {
	e, ok := a.bicast[pkt.Dst]
	if !ok {
		return
	}
	if e.expire <= a.engine.Now() {
		delete(a.bicast, pkt.Dst)
		return
	}
	if e.ncoa == primary {
		return // binding already moved; a duplicate would be a self-copy
	}
	var dup, wrap *inet.Packet
	if a.cfg.Alloc != nil && pkt.Inner == nil {
		dup = a.cfg.Alloc()
		*dup = *pkt
		wrap = a.cfg.Alloc()
		// Mirror Encapsulate field-for-field on the pooled wrapper.
		*wrap = inet.Packet{
			ID:      dup.ID,
			Src:     a.router.Addr(),
			Dst:     e.ncoa,
			Proto:   inet.ProtoTunnel,
			Class:   dup.Class,
			Flow:    dup.Flow,
			Seq:     dup.Seq,
			Size:    dup.Size + inet.TunnelHeaderSize,
			Created: dup.Created,
			Inner:   dup,
		}
	} else {
		wrap = pkt.Clone().Encapsulate(a.router.Addr(), e.ncoa)
	}
	a.bicastPackets++
	a.bicastBytes += uint64(wrap.Size)
	if a.OnBicast != nil {
		a.OnBicast(wrap)
	}
	a.router.Forward(wrap)
}

// localDeliver processes mobility signaling addressed to the agent itself:
// binding updates and SafetyNet bicast requests.
func (a *Agent) localDeliver(in *netsim.Iface, pkt *inet.Packet) bool {
	switch msg := pkt.Payload.(type) {
	case *BindingUpdate:
		now := a.engine.Now()
		granted := msg.Lifetime
		if a.cfg.MaxLifetime > 0 && granted > a.cfg.MaxLifetime {
			granted = a.cfg.MaxLifetime
		}
		accepted := true
		if msg.Deregister() {
			a.cache.Remove(msg.Key)
		} else {
			accepted = a.cache.Update(msg.Key, msg.CoA, msg.Seq, granted, now)
		}
		if accepted {
			// The handoff is over once the binding moves: stop duplicating.
			delete(a.bicast, msg.Key)
		}
		ack := &inet.Packet{
			Src:     a.router.Addr(),
			Dst:     pkt.Src,
			Proto:   inet.ProtoControl,
			Size:    BindingAckSize,
			Created: now,
			Payload: &BindingAck{Key: msg.Key, Seq: msg.Seq, Accepted: accepted, Lifetime: granted},
		}
		a.router.Forward(ack)
		return true
	case *BicastRequest:
		// Bicast lifetimes honour the same cap as binding grants: a host
		// must not be able to keep the anchor duplicating longer than it
		// could keep a binding alive.
		granted := msg.Lifetime
		if a.cfg.MaxLifetime > 0 && granted > a.cfg.MaxLifetime {
			granted = a.cfg.MaxLifetime
		}
		if a.bicast == nil {
			a.bicast = make(map[inet.Addr]bicastEntry)
		}
		a.bicast[msg.Key] = bicastEntry{ncoa: msg.NCoA, expire: a.engine.Now() + granted}
		return true
	}
	return false // not ours; router handles tunnels etc.
}
