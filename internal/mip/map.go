package mip

import (
	"repro/internal/inet"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// AgentConfig parameterizes a mobility agent (MAP or home agent).
type AgentConfig struct {
	// ManagedNet is the prefix whose addresses the agent intercepts (the
	// MAP's RCoA subnet, or the home network).
	ManagedNet inet.NetID
	// MaxLifetime caps granted binding lifetimes. Zero means "grant the
	// requested lifetime unchanged".
	MaxLifetime sim.Time
}

// Agent is a mobility anchor: a router that intercepts packets addressed
// into its managed prefix and tunnels them to the registered care-of
// address. With ManagedNet set to the MAP subnet it is a Hierarchical
// Mobile IPv6 MAP; with the home prefix it is a home agent. The two roles
// share all mechanics, which is exactly the thesis' "the MAP can be thought
// of as a local home agent" observation.
type Agent struct {
	router *netsim.Router
	engine *sim.Engine
	cfg    AgentConfig
	cache  *BindingCache

	intercepted uint64
	noBinding   uint64
}

// NewAgent wraps a router (created by the caller and already linked into
// the topology) with mobility-agent behaviour. It installs Intercept and
// LocalDeliver hooks on the router.
func NewAgent(engine *sim.Engine, router *netsim.Router, cfg AgentConfig) *Agent {
	a := &Agent{
		router: router,
		engine: engine,
		cfg:    cfg,
		cache:  NewBindingCache(),
	}
	router.Intercept = a.intercept
	router.LocalDeliver = a.localDeliver
	return a
}

// Router returns the underlying forwarding element.
func (a *Agent) Router() *netsim.Router { return a.router }

// Cache exposes the binding cache (read-mostly; tests and traces).
func (a *Agent) Cache() *BindingCache { return a.cache }

// Intercepted counts packets tunnelled to a care-of address.
func (a *Agent) Intercepted() uint64 { return a.intercepted }

// NoBinding counts managed-prefix packets dropped for lack of a binding.
func (a *Agent) NoBinding() uint64 { return a.noBinding }

// Register installs a binding directly (used for initial attachment, where
// the thesis' scenarios start with the host already registered).
func (a *Agent) Register(key, coa inet.Addr, lifetime sim.Time) {
	a.cache.Update(key, coa, 0, lifetime, a.engine.Now())
}

// intercept tunnels packets addressed into the managed prefix toward the
// bound care-of address.
func (a *Agent) intercept(in *netsim.Iface, pkt *inet.Packet) bool {
	if pkt.Dst.Net != a.cfg.ManagedNet || pkt.Dst == a.router.Addr() {
		return false
	}
	b, ok := a.cache.Lookup(pkt.Dst, a.engine.Now())
	if !ok {
		a.noBinding++
		return true // consumed: no route for an unbound managed address
	}
	a.intercepted++
	a.router.Forward(pkt.Encapsulate(a.router.Addr(), b.CoA))
	return true
}

// localDeliver processes binding updates addressed to the agent itself.
func (a *Agent) localDeliver(in *netsim.Iface, pkt *inet.Packet) bool {
	bu, ok := pkt.Payload.(*BindingUpdate)
	if !ok {
		return false // not ours; router handles tunnels etc.
	}
	now := a.engine.Now()
	granted := bu.Lifetime
	if a.cfg.MaxLifetime > 0 && granted > a.cfg.MaxLifetime {
		granted = a.cfg.MaxLifetime
	}
	accepted := true
	if bu.Deregister() {
		a.cache.Remove(bu.Key)
	} else {
		accepted = a.cache.Update(bu.Key, bu.CoA, bu.Seq, granted, now)
	}
	ack := &inet.Packet{
		Src:     a.router.Addr(),
		Dst:     pkt.Src,
		Proto:   inet.ProtoControl,
		Size:    BindingAckSize,
		Created: now,
		Payload: &BindingAck{Key: bu.Key, Seq: bu.Seq, Accepted: accepted, Lifetime: granted},
	}
	a.router.Forward(ack)
	return true
}
