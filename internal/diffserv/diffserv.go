// Package diffserv maps Differentiated Services code points onto the
// buffering scheme's service classes — the thesis' second future-work
// item: "the proposed method should be able to cooperate with DiffServ
// network. The mapping between DiffServ traffic and the buffering
// mechanism should be defined."
//
// The mapping follows the per-hop behaviours' intent (§3.3: "by mapping
// the classes of service with the per hop behavior (PHB) in Diffserv, the
// proposed method can operate in a Diffserv network"):
//
//   - Expedited Forwarding (EF) carries voice/video: real-time.
//   - Assured Forwarding (AF) carries loss-sensitive elastic traffic:
//     high-priority.
//   - Class selectors CS5–CS7 mark network control: high-priority.
//   - Default forwarding and the remaining code points: best effort.
package diffserv

import (
	"fmt"

	"repro/internal/inet"
)

// DSCP is a Differentiated Services code point (the upper six bits of the
// IPv6 traffic-class octet).
type DSCP uint8

// Standard code points (RFC 2474, RFC 2597, RFC 3246).
const (
	DF DSCP = 0 // default forwarding

	CS1 DSCP = 8
	CS2 DSCP = 16
	CS3 DSCP = 24
	CS4 DSCP = 32
	CS5 DSCP = 40
	CS6 DSCP = 48
	CS7 DSCP = 56

	AF11 DSCP = 10
	AF12 DSCP = 12
	AF13 DSCP = 14
	AF21 DSCP = 18
	AF22 DSCP = 20
	AF23 DSCP = 22
	AF31 DSCP = 26
	AF32 DSCP = 28
	AF33 DSCP = 30
	AF41 DSCP = 34
	AF42 DSCP = 36
	AF43 DSCP = 38

	EF DSCP = 46
)

// Valid reports whether d fits in six bits.
func (d DSCP) Valid() bool { return d < 64 }

// IsAF reports whether d is one of the twelve assured-forwarding code
// points.
func (d DSCP) IsAF() bool {
	class, drop := uint8(d)>>3, uint8(d)&7
	return class >= 1 && class <= 4 && drop >= 2 && drop <= 6 && drop%2 == 0
}

// String implements fmt.Stringer.
func (d DSCP) String() string {
	switch {
	case d == DF:
		return "DF"
	case d == EF:
		return "EF"
	case d.IsAF():
		return fmt.Sprintf("AF%d%d", uint8(d)>>3, (uint8(d)&7)/2)
	case d&7 == 0 && d.Valid():
		return fmt.Sprintf("CS%d", uint8(d)>>3)
	default:
		return fmt.Sprintf("DSCP(%d)", uint8(d))
	}
}

// ToClass maps a code point to the buffering scheme's service class.
func ToClass(d DSCP) inet.Class {
	switch {
	case d == EF:
		return inet.ClassRealTime
	case d.IsAF():
		return inet.ClassHighPriority
	case d == CS5 || d == CS6 || d == CS7:
		return inet.ClassHighPriority // network control
	default:
		return inet.ClassBestEffort
	}
}

// FromClass picks a canonical code point for a service class, for traffic
// originated inside the handover domain and leaving into a DiffServ
// network.
func FromClass(c inet.Class) DSCP {
	switch c.Effective() {
	case inet.ClassRealTime:
		return EF
	case inet.ClassHighPriority:
		return AF41
	default:
		return DF
	}
}

// Mark stamps the packet's class-of-traffic field from a DiffServ code
// point, as an edge router admitting DiffServ traffic into the handover
// domain would.
func Mark(pkt *inet.Packet, d DSCP) {
	pkt.Class = ToClass(d)
}

// Marker returns a packet hook that classifies by a per-flow DSCP table,
// falling back to best effort. Wire it in front of a correspondent node's
// send path to simulate a DiffServ edge.
func Marker(byFlow map[inet.FlowID]DSCP) func(*inet.Packet) {
	return func(pkt *inet.Packet) {
		if d, ok := byFlow[pkt.Flow]; ok {
			Mark(pkt, d)
			return
		}
		pkt.Class = inet.ClassBestEffort
	}
}
