package diffserv

import (
	"testing"
	"testing/quick"

	"repro/internal/inet"
)

func TestToClassMapping(t *testing.T) {
	tests := []struct {
		give DSCP
		want inet.Class
	}{
		{EF, inet.ClassRealTime},
		{AF11, inet.ClassHighPriority},
		{AF22, inet.ClassHighPriority},
		{AF33, inet.ClassHighPriority},
		{AF41, inet.ClassHighPriority},
		{AF43, inet.ClassHighPriority},
		{CS5, inet.ClassHighPriority},
		{CS6, inet.ClassHighPriority},
		{CS7, inet.ClassHighPriority},
		{DF, inet.ClassBestEffort},
		{CS1, inet.ClassBestEffort},
		{CS4, inet.ClassBestEffort},
		{DSCP(63), inet.ClassBestEffort},
	}
	for _, tt := range tests {
		if got := ToClass(tt.give); got != tt.want {
			t.Errorf("ToClass(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestFromClassRoundTrips(t *testing.T) {
	for _, c := range inet.Classes {
		if got := ToClass(FromClass(c)); got != c {
			t.Errorf("ToClass(FromClass(%v)) = %v", c, got)
		}
	}
	if FromClass(inet.ClassUnspecified) != DF {
		t.Error("unspecified should map to default forwarding")
	}
}

func TestDSCPStrings(t *testing.T) {
	tests := []struct {
		give DSCP
		want string
	}{
		{DF, "DF"},
		{EF, "EF"},
		{AF11, "AF11"},
		{AF42, "AF42"},
		{CS3, "CS3"},
		{CS7, "CS7"},
		{DSCP(13), "DSCP(13)"},
		{DSCP(99), "DSCP(99)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("(%d).String() = %q, want %q", uint8(tt.give), got, tt.want)
		}
	}
}

func TestIsAFExactlyTwelve(t *testing.T) {
	count := 0
	for d := DSCP(0); d < 64; d++ {
		if d.IsAF() {
			count++
		}
	}
	if count != 12 {
		t.Fatalf("IsAF matches %d code points, want 12", count)
	}
	for _, af := range []DSCP{AF11, AF12, AF13, AF21, AF22, AF23, AF31, AF32, AF33, AF41, AF42, AF43} {
		if !af.IsAF() {
			t.Errorf("%v not recognized as AF", af)
		}
	}
}

func TestValid(t *testing.T) {
	if !DSCP(63).Valid() || DSCP(64).Valid() {
		t.Fatal("Valid boundary wrong")
	}
}

func TestMark(t *testing.T) {
	pkt := &inet.Packet{Proto: inet.ProtoUDP}
	Mark(pkt, EF)
	if pkt.Class != inet.ClassRealTime {
		t.Fatalf("Mark(EF) class = %v", pkt.Class)
	}
}

func TestMarker(t *testing.T) {
	mark := Marker(map[inet.FlowID]DSCP{1: EF, 2: AF21})
	tests := []struct {
		flow inet.FlowID
		want inet.Class
	}{
		{1, inet.ClassRealTime},
		{2, inet.ClassHighPriority},
		{3, inet.ClassBestEffort}, // unknown flow
	}
	for _, tt := range tests {
		pkt := &inet.Packet{Flow: tt.flow}
		mark(pkt)
		if pkt.Class != tt.want {
			t.Errorf("flow %d marked %v, want %v", tt.flow, pkt.Class, tt.want)
		}
	}
}

// Property: every valid DSCP maps to a defined class, and only EF reaches
// the real-time class (delay guarantees must not be handed out broadly).
func TestPropertyMappingTotalAndConservative(t *testing.T) {
	f := func(raw uint8) bool {
		d := DSCP(raw % 64)
		c := ToClass(d)
		if !c.Valid() || c == inet.ClassUnspecified {
			return false
		}
		if c == inet.ClassRealTime && d != EF {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
