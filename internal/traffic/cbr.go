// Package traffic provides the workload generators of the thesis'
// evaluation: constant-bit-rate UDP audio flows (160-byte packets at
// configurable intervals) and an FTP-style bulk source over TCP.
package traffic

import (
	"repro/internal/inet"
	"repro/internal/sim"
	"repro/internal/stats"
)

// CBRConfig describes one constant-bit-rate flow.
type CBRConfig struct {
	// Flow identifies the stream in statistics.
	Flow inet.FlowID
	// Class is the service class stamped on every packet.
	Class inet.Class
	// Src and Dst are the network-layer endpoints (the destination is
	// typically the mobile host's RCoA).
	Src, Dst inet.Addr
	// Size is the packet size in bytes (160 in the thesis: 64 kb/s audio
	// at 20 ms spacing).
	Size int
	// Interval is the inter-packet gap.
	Interval sim.Time
	// Alloc, if set, supplies zeroed packet structs (typically a
	// topology's recycling pool); nil falls back to plain allocation.
	Alloc func() *inet.Packet
}

// RateBPS returns the flow's nominal rate in bits per second.
func (c CBRConfig) RateBPS() float64 {
	if c.Interval <= 0 {
		return 0
	}
	return float64(c.Size*8) * float64(sim.Second) / float64(c.Interval)
}

// CBR is a constant-bit-rate source. It emits through a send function so
// it can sit on any node (a wired correspondent node or a mobile host).
type CBR struct {
	engine   *sim.Engine
	cfg      CBRConfig
	send     func(*inet.Packet)
	recorder *stats.Recorder
	newID    func() uint64

	ticker *sim.Ticker
	seq    uint32
}

// NewCBR creates a stopped source. send is invoked for every generated
// packet; newID supplies unique packet IDs (may be nil); recorder may be
// nil.
func NewCBR(engine *sim.Engine, cfg CBRConfig, send func(*inet.Packet),
	newID func() uint64, recorder *stats.Recorder) *CBR {
	if cfg.Interval <= 0 {
		panic("traffic: CBR interval must be positive")
	}
	if send == nil {
		panic("traffic: CBR send must not be nil")
	}
	if recorder != nil {
		recorder.DeclareFlow(cfg.Flow, cfg.Class)
	}
	return &CBR{engine: engine, cfg: cfg, send: send, newID: newID, recorder: recorder}
}

// Config returns the flow parameters.
func (c *CBR) Config() CBRConfig { return c.cfg }

// Seq returns the next sequence number to be sent.
func (c *CBR) Seq() uint32 { return c.seq }

// Start begins emission; the first packet leaves after one interval plus
// the phase offset.
func (c *CBR) Start(phase sim.Time) {
	c.Stop()
	c.ticker = sim.NewTickerAt(c.engine, c.cfg.Interval+phase, c.cfg.Interval, c.emit)
}

// Stop halts emission.
func (c *CBR) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
		c.ticker = nil
	}
}

func (c *CBR) emit() {
	var pkt *inet.Packet
	if c.cfg.Alloc != nil {
		pkt = c.cfg.Alloc()
	} else {
		pkt = &inet.Packet{}
	}
	pkt.Src = c.cfg.Src
	pkt.Dst = c.cfg.Dst
	pkt.Proto = inet.ProtoUDP
	pkt.Class = c.cfg.Class
	pkt.Flow = c.cfg.Flow
	pkt.Seq = c.seq
	pkt.Size = c.cfg.Size
	pkt.Created = c.engine.Now()
	if c.newID != nil {
		pkt.ID = c.newID()
	}
	c.seq++
	if c.recorder != nil {
		c.recorder.Sent(pkt)
	}
	c.send(pkt)
}

// Sink counts deliveries into a recorder. Wire it to a mobile host's
// OnDeliver or a wired host's Receive.
func Sink(engine *sim.Engine, recorder *stats.Recorder) func(*inet.Packet) {
	return func(pkt *inet.Packet) {
		if pkt.Proto != inet.ProtoUDP && pkt.Proto != inet.ProtoTCP {
			return
		}
		recorder.Delivered(pkt, engine.Now())
	}
}
