package traffic

import (
	"math"
	"testing"

	"repro/internal/inet"
	"repro/internal/sim"
	"repro/internal/stats"
)

func cbrConfig() CBRConfig {
	return CBRConfig{
		Flow:     1,
		Class:    inet.ClassRealTime,
		Src:      inet.Addr{Net: 1, Host: 1},
		Dst:      inet.Addr{Net: 50, Host: 7},
		Size:     160,
		Interval: 20 * sim.Millisecond,
	}
}

func TestCBREmitsAtInterval(t *testing.T) {
	e := sim.NewEngine()
	var times []sim.Time
	var pkts []*inet.Packet
	src := NewCBR(e, cbrConfig(), func(p *inet.Packet) {
		times = append(times, e.Now())
		pkts = append(pkts, p)
	}, nil, nil)
	src.Start(0)
	if err := e.Run(100 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	src.Stop()
	if len(times) != 5 {
		t.Fatalf("emitted %d packets in 100ms, want 5", len(times))
	}
	for i, at := range times {
		if want := sim.Time(i+1) * 20 * sim.Millisecond; at != want {
			t.Fatalf("packet %d at %v, want %v", i, at, want)
		}
	}
	for i, p := range pkts {
		if p.Seq != uint32(i) {
			t.Fatalf("seq %d at position %d", p.Seq, i)
		}
		if p.Created != times[i] {
			t.Fatalf("Created = %v, emitted at %v", p.Created, times[i])
		}
		if p.Class != inet.ClassRealTime || p.Size != 160 || p.Proto != inet.ProtoUDP {
			t.Fatalf("packet fields wrong: %v", p)
		}
	}
}

func TestCBRPhaseOffset(t *testing.T) {
	e := sim.NewEngine()
	var first sim.Time = -1
	src := NewCBR(e, cbrConfig(), func(p *inet.Packet) {
		if first < 0 {
			first = e.Now()
		}
	}, nil, nil)
	src.Start(3 * sim.Millisecond)
	if err := e.Run(50 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	src.Stop()
	if first != 23*sim.Millisecond {
		t.Fatalf("first packet at %v, want 23ms (interval+phase)", first)
	}
}

func TestCBRRecordsSends(t *testing.T) {
	e := sim.NewEngine()
	rec := stats.NewRecorder()
	src := NewCBR(e, cbrConfig(), func(p *inet.Packet) {}, nil, rec)
	src.Start(0)
	if err := e.Run(sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	src.Stop()
	f := rec.Flow(1)
	if f == nil || f.Sent != 50 {
		t.Fatalf("recorded %v, want 50 sends", f)
	}
	if f.Class != inet.ClassRealTime {
		t.Fatalf("declared class = %v", f.Class)
	}
}

func TestCBRStopAndRestart(t *testing.T) {
	e := sim.NewEngine()
	count := 0
	src := NewCBR(e, cbrConfig(), func(p *inet.Packet) { count++ }, nil, nil)
	src.Start(0)
	if err := e.Run(100 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	src.Stop()
	if err := e.Run(200 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 5 {
		t.Fatalf("count = %d after stop, want 5", count)
	}
	src.Start(0)
	if err := e.Run(300 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	src.Stop()
	if count != 10 {
		t.Fatalf("count = %d after restart, want 10", count)
	}
	// Sequence numbers continue across restarts.
	if src.Seq() != 10 {
		t.Fatalf("Seq = %d, want 10", src.Seq())
	}
}

func TestCBRPacketIDs(t *testing.T) {
	e := sim.NewEngine()
	next := uint64(0)
	newID := func() uint64 { next++; return next }
	var ids []uint64
	src := NewCBR(e, cbrConfig(), func(p *inet.Packet) { ids = append(ids, p.ID) }, newID, nil)
	src.Start(0)
	if err := e.Run(60 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	src.Stop()
	for i, id := range ids {
		if id != uint64(i+1) {
			t.Fatalf("ids = %v", ids)
		}
	}
}

func TestCBRRate(t *testing.T) {
	cfg := cbrConfig() // 160 B / 20 ms = 64 kb/s
	if got := cfg.RateBPS(); math.Abs(got-64000) > 1e-9 {
		t.Fatalf("RateBPS = %v, want 64000", got)
	}
	if (CBRConfig{}).RateBPS() != 0 {
		t.Fatal("zero interval should report zero rate")
	}
}

func TestCBRValidation(t *testing.T) {
	e := sim.NewEngine()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero interval", func() {
		NewCBR(e, CBRConfig{Size: 160}, func(*inet.Packet) {}, nil, nil)
	})
	mustPanic("nil send", func() {
		NewCBR(e, cbrConfig(), nil, nil, nil)
	})
}

func TestSinkCountsOnlyData(t *testing.T) {
	e := sim.NewEngine()
	rec := stats.NewRecorder()
	sink := Sink(e, rec)
	sink(&inet.Packet{Proto: inet.ProtoUDP, Flow: 1, Size: 160})
	sink(&inet.Packet{Proto: inet.ProtoTCP, Flow: 1, Size: 160})
	sink(&inet.Packet{Proto: inet.ProtoControl, Flow: 1, Size: 64})
	if got := rec.Flow(1).Delivered; got != 2 {
		t.Fatalf("Delivered = %d, want 2 (control excluded)", got)
	}
}
