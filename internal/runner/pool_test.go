package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSpec reports metrics that are a pure function of the seed, like a
// real simulation replica.
func fakeSpec() Spec {
	return Simple("fake", func(seed int64) Metrics {
		return Metrics{
			"seed_mod":  float64(seed % 1000),
			"seed_sign": 1,
		}
	})
}

func TestPoolDeterministicAcrossWorkerCounts(t *testing.T) {
	const replicas = 17
	encode := func(workers int) []byte {
		res, err := NewPool(workers).Run(context.Background(), fakeSpec(), replicas, 42)
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		doc := NewDocument("test", 42, replicas, workers)
		doc.ElapsedMS = 1234 // will be stripped
		doc.Results = append(doc.Results, *res)
		doc.Canonicalize()
		var buf bytes.Buffer
		if err := doc.Encode(&buf); err != nil {
			t.Fatalf("encode: %v", err)
		}
		return buf.Bytes()
	}
	serial := encode(1)
	for _, workers := range []int{2, 8} {
		if got := encode(workers); !bytes.Equal(serial, got) {
			t.Errorf("workers=%d artifact differs from serial:\n%s\nvs\n%s", workers, got, serial)
		}
	}
}

func TestPoolReplicaOrderAndSeeds(t *testing.T) {
	res, err := NewPool(4).Run(context.Background(), fakeSpec(), 9, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Replicas) != 9 {
		t.Fatalf("replicas = %d, want 9", len(res.Replicas))
	}
	for i, rep := range res.Replicas {
		if rep.Index != i {
			t.Errorf("replica %d has index %d", i, rep.Index)
		}
		if want := ReplicaSeed(7, i); rep.Seed != want {
			t.Errorf("replica %d seed = %d, want %d", i, rep.Seed, want)
		}
		if rep.Err != nil {
			t.Errorf("replica %d failed: %v", i, rep.Err)
		}
	}
}

func TestPoolPanicIsolated(t *testing.T) {
	// One replica panics; its siblings must complete and the process must
	// survive.
	var bomb int64 // which replica index panics: derived below
	spec := NewSpec("panicky", func(seed int64) (Metrics, error) {
		if seed == atomic.LoadInt64(&bomb) {
			panic(fmt.Sprintf("boom at seed %d", seed))
		}
		return Metrics{"ok": 1}, nil
	})
	atomic.StoreInt64(&bomb, ReplicaSeed(3, 5))

	res, err := NewPool(4).Run(context.Background(), spec, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Failed(); got != 1 {
		t.Fatalf("failed = %d, want 1", got)
	}
	for i, rep := range res.Replicas {
		if i == 5 {
			if rep.Err == nil || !strings.Contains(rep.Error, "boom") {
				t.Fatalf("replica 5: err = %v (%q), want captured panic", rep.Err, rep.Error)
			}
			if rep.Metrics != nil {
				t.Fatalf("replica 5 kept metrics %v after panicking", rep.Metrics)
			}
			continue
		}
		if rep.Err != nil {
			t.Errorf("sibling replica %d failed: %v", i, rep.Err)
		}
	}
	// The aggregate covers only the survivors.
	if len(res.Metrics) != 1 || res.Metrics[0].N != 11 {
		t.Fatalf("aggregate = %+v, want ok over 11 replicas", res.Metrics)
	}
}

func TestPoolSpecError(t *testing.T) {
	boom := errors.New("spec refused")
	spec := NewSpec("failing", func(seed int64) (Metrics, error) { return nil, boom })
	res, err := NewPool(2).Run(context.Background(), spec, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() != 3 {
		t.Fatalf("failed = %d, want 3", res.Failed())
	}
	if !errors.Is(res.FirstErr(), boom) {
		t.Fatalf("FirstErr = %v, want %v", res.FirstErr(), boom)
	}
	if len(res.Metrics) != 0 {
		t.Fatalf("metrics = %+v, want none", res.Metrics)
	}
}

func TestPoolContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	spec := NewSpec("slow", func(seed int64) (Metrics, error) {
		if started.Add(1) == 1 {
			cancel() // cancel while the first replica is in flight
		}
		<-release
		return Metrics{"done": 1}, nil
	})
	// Hold the in-flight replica until well after the feeder has observed
	// the cancellation, so the tail is deterministically never started.
	go func() {
		<-ctx.Done()
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	res, err := NewPool(1).Run(ctx, spec, 8, 1)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The in-flight replica finishes; the never-started tail carries the
	// context error.
	if res.Replicas[0].Err != nil {
		t.Fatalf("in-flight replica failed: %v", res.Replicas[0].Err)
	}
	if res.Failed() == 0 {
		t.Fatal("cancelled run reported no failed replicas")
	}
	for _, rep := range res.Replicas {
		if rep.Err != nil && !errors.Is(rep.Err, context.Canceled) {
			t.Errorf("replica %d: err = %v, want context.Canceled", rep.Index, rep.Err)
		}
	}
}

func TestPoolInvalidArgs(t *testing.T) {
	if _, err := NewPool(1).Run(context.Background(), nil, 1, 1); err == nil {
		t.Error("nil spec accepted")
	}
	if _, err := NewPool(1).Run(context.Background(), fakeSpec(), 0, 1); err == nil {
		t.Error("zero replicas accepted")
	}
}

func TestNewPoolDefaults(t *testing.T) {
	if NewPool(0).Workers() < 1 {
		t.Error("NewPool(0) has no workers")
	}
	if NewPool(3).Workers() != 3 {
		t.Error("NewPool(3) ignored the bound")
	}
}
