package runner

// Per-replica seed derivation. Replica seeds must be (a) a pure function
// of (root seed, replica index) so any worker can compute them in any
// order, (b) well-spread even for adjacent roots and indices (the sim
// RNG is a linear generator; feeding it 1, 2, 3… would correlate
// replicas), and (c) never zero, because the scenario packages treat a
// zero seed as "use the thesis default".
//
// splitmix64 (Steele, Lea & Flood, "Fast splittable pseudorandom number
// generators", OOPSLA 2014) is the standard answer: a Weyl sequence on
// the golden-ratio increment followed by a finalizing mix. It is also
// what math/rand/v2 uses to seed PCG from two words.

// golden is ⌊2⁶⁴/φ⌋, the splitmix64 Weyl increment.
const golden = 0x9E3779B97F4A7C15

// splitmix64 is the finalizing mix of the splitmix64 generator.
func splitmix64(x uint64) uint64 {
	x += golden
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// ReplicaSeed derives the seed for one replica of a run rooted at root.
// The result is always positive (the sim RNG takes an int64 and the
// scenarios reserve zero for defaults).
func ReplicaSeed(root int64, replica int) int64 {
	x := splitmix64(uint64(root) + uint64(replica)*golden)
	seed := int64(x &^ (1 << 63)) // clear the sign bit
	if seed == 0 {
		seed = 1
	}
	return seed
}
