package runner

import "testing"

func TestReplicaSeedDeterministic(t *testing.T) {
	for _, root := range []int64{0, 1, -5, 1 << 40} {
		for idx := 0; idx < 100; idx++ {
			a := ReplicaSeed(root, idx)
			b := ReplicaSeed(root, idx)
			if a != b {
				t.Fatalf("ReplicaSeed(%d, %d) unstable: %d vs %d", root, idx, a, b)
			}
		}
	}
}

func TestReplicaSeedPositive(t *testing.T) {
	for _, root := range []int64{0, 1, -1, 42, -1 << 62} {
		for idx := 0; idx < 1000; idx++ {
			if s := ReplicaSeed(root, idx); s <= 0 {
				t.Fatalf("ReplicaSeed(%d, %d) = %d, want > 0", root, idx, s)
			}
		}
	}
}

func TestReplicaSeedSpread(t *testing.T) {
	// Adjacent roots and indices must not collide: the whole point of the
	// splitmix derivation is that naive (root+index) arithmetic would feed
	// correlated seeds to the linear sim RNG.
	seen := make(map[int64][2]int64)
	for root := int64(0); root < 32; root++ {
		for idx := 0; idx < 64; idx++ {
			s := ReplicaSeed(root, idx)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (%d,%d) and (%d,%d) both map to %d",
					prev[0], prev[1], root, int64(idx), s)
			}
			seen[s] = [2]int64{root, int64(idx)}
		}
	}
}
