package runner

import (
	"encoding/json"
	"io"
	"time"
)

// SchemaVersion identifies the artifact layout. Bump on any
// field-breaking change so downstream tooling can dispatch.
const SchemaVersion = 1

// Document is the machine-readable result of one runner invocation: one
// Result per spec plus the run's configuration. Everything except the
// timing fields (wall_ms, elapsed_ms, started_unix_ms) is a pure
// function of (specs, root seed, replica count), so two documents from
// the same inputs are byte-identical after Canonicalize.
type Document struct {
	Schema   int    `json:"schema"`
	Tool     string `json:"tool"`
	RootSeed int64  `json:"root_seed"`
	Replicas int    `json:"replicas"`
	// Parallel is the worker bound the run used. It does not affect any
	// non-timing field.
	Parallel int `json:"parallel"`
	// StartedUnixMS and ElapsedMS are timing fields.
	StartedUnixMS int64    `json:"started_unix_ms"`
	ElapsedMS     float64  `json:"elapsed_ms"`
	Results       []Result `json:"results"`
}

// NewDocument stamps a document for a run configuration.
func NewDocument(tool string, rootSeed int64, replicas, parallel int) *Document {
	return &Document{
		Schema:        SchemaVersion,
		Tool:          tool,
		RootSeed:      rootSeed,
		Replicas:      replicas,
		Parallel:      parallel,
		StartedUnixMS: time.Now().UnixMilli(),
	}
}

// Canonicalize zeroes every timing field and the worker bound, leaving
// only the deterministic content — the form determinism tests and
// cache keys should compare.
func (d *Document) Canonicalize() {
	d.StartedUnixMS = 0
	d.ElapsedMS = 0
	d.Parallel = 0
	for i := range d.Results {
		for j := range d.Results[i].Replicas {
			d.Results[i].Replicas[j].Wall = 0
			d.Results[i].Replicas[j].WallMS = 0
		}
	}
}

// Encode writes the document as indented JSON.
func (d *Document) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// DecodeDocument parses a document produced by Encode.
func DecodeDocument(r io.Reader) (*Document, error) {
	var d Document
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, err
	}
	return &d, nil
}
