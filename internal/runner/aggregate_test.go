package runner

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestAggregate(t *testing.T) {
	reps := []Replica{
		{Index: 0, Metrics: Metrics{"lost": 10, "outage": 200}},
		{Index: 1, Metrics: Metrics{"lost": 14, "outage": 220}},
		{Index: 2, Metrics: Metrics{"lost": 12, "outage": 210}},
		{Index: 3, Err: errPanic{v: "boom"}, Error: "replica panicked: boom"},
	}
	got := Aggregate(reps)
	if len(got) != 2 {
		t.Fatalf("metrics = %d, want 2", len(got))
	}
	// Sorted by name: lost before outage.
	lost := got[0]
	if lost.Name != "lost" || got[1].Name != "outage" {
		t.Fatalf("order = %q, %q; want lost, outage", got[0].Name, got[1].Name)
	}
	if lost.N != 3 {
		t.Errorf("lost.N = %d, want 3 (failed replica must be skipped)", lost.N)
	}
	if lost.Mean != 12 || lost.Min != 10 || lost.Max != 14 {
		t.Errorf("lost mean/min/max = %g/%g/%g", lost.Mean, lost.Min, lost.Max)
	}
	// Population sd of {10,12,14} = sqrt(8/3); sample sd = 2;
	// CI95 = 1.96*2/sqrt(3).
	if want := math.Sqrt(8.0 / 3.0); math.Abs(lost.StdDev-want) > 1e-12 {
		t.Errorf("lost.StdDev = %g, want %g", lost.StdDev, want)
	}
	if want := 1.96 * 2 / math.Sqrt(3); math.Abs(lost.CI95-want) > 1e-12 {
		t.Errorf("lost.CI95 = %g, want %g", lost.CI95, want)
	}
}

func TestAggregateEmpty(t *testing.T) {
	if got := Aggregate(nil); len(got) != 0 {
		t.Fatalf("Aggregate(nil) = %+v", got)
	}
	if got := Aggregate([]Replica{{Err: errPanic{v: 1}, Error: "x"}}); len(got) != 0 {
		t.Fatalf("all-failed aggregate = %+v", got)
	}
}

func TestDocumentRoundTrip(t *testing.T) {
	doc := NewDocument("experiments", 9, 4, 2)
	doc.Results = []Result{{
		Spec:     "baseline",
		RootSeed: 9,
		Replicas: []Replica{{Index: 0, Seed: ReplicaSeed(9, 0), Metrics: Metrics{"lost": 1}, WallMS: 3.5}},
		Metrics:  []MetricSummary{{Name: "lost", N: 1, Mean: 1, Min: 1, Max: 1}},
	}}
	var buf bytes.Buffer
	if err := doc.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"schema": 1`) {
		t.Fatalf("schema version missing:\n%s", buf.String())
	}
	back, err := DecodeDocument(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != SchemaVersion || back.RootSeed != 9 || len(back.Results) != 1 {
		t.Fatalf("round trip mangled document: %+v", back)
	}
	if back.Results[0].Replicas[0].WallMS != 3.5 {
		t.Fatalf("wall time lost in round trip")
	}
	back.Canonicalize()
	if back.Results[0].Replicas[0].WallMS != 0 || back.StartedUnixMS != 0 {
		t.Fatalf("Canonicalize left timing fields: %+v", back)
	}
}
