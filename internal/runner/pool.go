package runner

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"
)

// Replica is one replica's outcome.
type Replica struct {
	// Index is the replica number, 0-based.
	Index int `json:"replica"`
	// Seed is the derived per-replica seed (see ReplicaSeed).
	Seed int64 `json:"seed"`
	// Metrics holds the headline scalars; nil when the replica failed.
	Metrics Metrics `json:"metrics,omitempty"`
	// Err is the replica's failure (captured panic, spec error, or
	// cancellation); nil on success. Serialized as the Error string.
	Err error `json:"-"`
	// Error mirrors Err for the JSON artifact.
	Error string `json:"error,omitempty"`
	// Wall is the replica's wall-clock duration — a timing field, excluded
	// from determinism comparisons.
	Wall time.Duration `json:"-"`
	// WallMS mirrors Wall for the JSON artifact.
	WallMS float64 `json:"wall_ms"`
}

// Result is one spec's full fan-out: every replica in index order plus
// the aggregated metric summaries.
type Result struct {
	Spec     string          `json:"spec"`
	RootSeed int64           `json:"root_seed"`
	Replicas []Replica       `json:"replicas"`
	Metrics  []MetricSummary `json:"metrics"`
}

// Failed returns the number of replicas that ended in error.
func (r *Result) Failed() int {
	n := 0
	for _, rep := range r.Replicas {
		if rep.Err != nil || rep.Error != "" {
			n++
		}
	}
	return n
}

// FirstErr returns the lowest-index replica error, or nil.
func (r *Result) FirstErr() error {
	for _, rep := range r.Replicas {
		if rep.Err != nil {
			return rep.Err
		}
	}
	return nil
}

// Pool runs replicas across a bounded set of worker goroutines.
type Pool struct {
	workers int
}

// NewPool returns a pool with the given worker bound. Non-positive
// selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the worker bound.
func (p *Pool) Workers() int { return p.workers }

// Run fans out replicas of the spec, each under its derived seed, and
// returns every replica in index order with aggregated metrics. A replica
// that panics or returns an error is recorded as failed without
// disturbing its siblings. When ctx is cancelled, replicas not yet
// started are marked with the context's error; in-flight replicas finish
// (the single-threaded simulation engine has no preemption point).
// The returned error is non-nil only for invalid arguments.
func (p *Pool) Run(ctx context.Context, spec Spec, replicas int, rootSeed int64) (*Result, error) {
	if spec == nil {
		return nil, errors.New("runner: nil spec")
	}
	if replicas < 1 {
		return nil, errors.New("runner: replicas must be ≥ 1")
	}
	res := &Result{
		Spec:     spec.Name(),
		RootSeed: rootSeed,
		Replicas: make([]Replica, replicas),
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := p.workers
	if workers > replicas {
		workers = replicas
	}
	scratchSpec, _ := spec.(ScratchSpec)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker scratch: allocated once, reused by every replica
			// this worker runs (never shared across goroutines).
			var scratch any
			if scratchSpec != nil {
				scratch = scratchSpec.NewScratch()
			}
			for idx := range jobs {
				res.Replicas[idx] = runOne(spec, scratch, idx, rootSeed)
			}
		}()
	}

feed:
	for idx := 0; idx < replicas; idx++ {
		select {
		case jobs <- idx:
		case <-ctx.Done():
			for ; idx < replicas; idx++ {
				res.Replicas[idx] = Replica{
					Index: idx,
					Seed:  ReplicaSeed(rootSeed, idx),
					Err:   ctx.Err(),
					Error: ctx.Err().Error(),
				}
			}
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	res.Metrics = Aggregate(res.Replicas)
	return res, nil
}

// runOne executes a single replica, converting a panic into that
// replica's error. scratch is the worker's private ScratchSpec state (nil
// for plain specs).
func runOne(spec Spec, scratch any, idx int, rootSeed int64) (rep Replica) {
	rep.Index = idx
	rep.Seed = ReplicaSeed(rootSeed, idx)
	start := time.Now()
	defer func() {
		rep.Wall = time.Since(start)
		rep.WallMS = float64(rep.Wall) / float64(time.Millisecond)
		if v := recover(); v != nil {
			rep.Err = errPanic{v: v}
			rep.Error = rep.Err.Error()
			rep.Metrics = nil
		}
		if rep.Err != nil && rep.Error == "" {
			rep.Error = rep.Err.Error()
		}
	}()
	if ss, ok := spec.(ScratchSpec); ok && scratch != nil {
		rep.Metrics, rep.Err = ss.RunScratch(scratch, rep.Seed)
	} else {
		rep.Metrics, rep.Err = spec.Run(rep.Seed)
	}
	return rep
}
