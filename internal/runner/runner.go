// Package runner fans independent Monte-Carlo replicas of a simulation
// scenario across a bounded worker pool and aggregates their headline
// metrics into distribution summaries (mean, standard deviation, 95%
// confidence interval, min, max).
//
// The package is deliberately scenario-agnostic: anything that can run
// once under a caller-chosen seed and report scalar metrics implements
// Spec. Each replica's seed is derived from the pool's root seed with a
// splitmix64 mix of the replica index (see ReplicaSeed), so a run's
// results are bit-for-bit reproducible regardless of worker count,
// scheduling, or completion order — `-parallel 1` and `-parallel 8`
// produce identical aggregates.
//
// A panicking replica is captured and reported as that replica's error;
// sibling replicas keep running and the process survives.
package runner

import "fmt"

// Metrics is one replica's headline scalar results, keyed by metric name.
// Every replica of a spec should report the same key set.
type Metrics map[string]float64

// Spec is one runnable scenario. Run must be safe for concurrent use by
// multiple goroutines (each call builds its own engine and RNG from the
// seed) and must be a pure function of the seed: same seed, same metrics.
type Spec interface {
	// Name identifies the spec in aggregates and artifacts.
	Name() string
	// Run executes one replica under the given seed.
	Run(seed int64) (Metrics, error)
}

// ScratchSpec is an optional Spec extension for allocation-heavy
// scenarios: the pool calls NewScratch once per worker goroutine and
// passes the value to RunScratch for every replica that worker executes.
// Scratch typically holds a reusable simulation engine (reset between
// replicas, keeping its warmed-up free lists) or metric staging slices.
//
// RunScratch must remain a pure function of the seed — scratch may only
// carry capacity (buffers, free lists), never state that survives into
// the next replica's results — so aggregates stay bit-for-bit identical
// to plain Run at any worker count.
type ScratchSpec interface {
	Spec
	// NewScratch builds one worker's private scratch state.
	NewScratch() any
	// RunScratch executes one replica with the worker's scratch.
	RunScratch(scratch any, seed int64) (Metrics, error)
}

// specFunc adapts a plain function to Spec.
type specFunc struct {
	name string
	run  func(seed int64) (Metrics, error)
}

func (s specFunc) Name() string { return s.name }

func (s specFunc) Run(seed int64) (Metrics, error) { return s.run(seed) }

// NewSpec wraps a seedable function as a Spec.
func NewSpec(name string, run func(seed int64) (Metrics, error)) Spec {
	if name == "" {
		panic("runner: NewSpec with empty name")
	}
	if run == nil {
		panic("runner: NewSpec with nil run function")
	}
	return specFunc{name: name, run: run}
}

// Simple wraps a function that cannot fail (the common case for the
// in-process simulation scenarios, whose failure mode is a panic — which
// the pool captures) as a Spec.
func Simple(name string, run func(seed int64) Metrics) Spec {
	return NewSpec(name, func(seed int64) (Metrics, error) {
		return run(seed), nil
	})
}

// errPanic marks a replica that panicked, preserving the panic value.
type errPanic struct{ v any }

func (e errPanic) Error() string { return fmt.Sprintf("replica panicked: %v", e.v) }
