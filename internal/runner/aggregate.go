package runner

import (
	"sort"

	"repro/internal/stats"
)

// MetricSummary is one metric's distribution across the successful
// replicas of a run.
type MetricSummary struct {
	Name string `json:"name"`
	// N is the number of replicas that reported the metric.
	N int `json:"n"`
	// Mean, StdDev (population), CI95 (normal-approximation half-width of
	// the 95% confidence interval of the mean), Min and Max summarize the
	// distribution.
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	CI95   float64 `json:"ci95"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// Aggregate merges the successful replicas' metrics into per-metric
// summaries, sorted by metric name for deterministic output. Failed
// replicas (non-nil Err or recorded Error) are skipped; a metric missing
// from some replicas is summarized over the replicas that reported it.
func Aggregate(replicas []Replica) []MetricSummary {
	byName := make(map[string]*stats.Summary)
	for _, rep := range replicas {
		if rep.Err != nil || rep.Error != "" {
			continue
		}
		for name, v := range rep.Metrics {
			s, ok := byName[name]
			if !ok {
				s = &stats.Summary{}
				byName[name] = s
			}
			s.Add(v)
		}
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]MetricSummary, 0, len(names))
	for _, name := range names {
		s := byName[name]
		out = append(out, MetricSummary{
			Name:   name,
			N:      s.N(),
			Mean:   s.Mean(),
			StdDev: s.StdDev(),
			CI95:   s.CI95(),
			Min:    s.Min(),
			Max:    s.Max(),
		})
	}
	return out
}
