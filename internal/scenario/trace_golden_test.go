package scenario

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fho"
	"repro/internal/inet"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/wireless"
)

// attachEagerTrace replicates the pre-lazy tracing hooks: every event is
// formatted with fmt.Sprintf at emit time, exactly as AttachTrace used to.
// It chains onto whatever hooks are already installed, so it can run next
// to the typed AttachTrace on the same testbed.
func attachEagerTrace(tb *Testbed, log *trace.Log) {
	hookAR := func(name string, ar *core.AccessRouter) {
		prevDrop := ar.OnDrop
		ar.OnDrop = func(pkt *inet.Packet, where string) {
			if prevDrop != nil {
				prevDrop(pkt, where)
			}
			inner := pkt.Innermost()
			log.Emit(trace.Event{
				At: tb.Engine.Now(), Kind: trace.KindDrop, Node: name,
				Seq:    int64(inner.Seq),
				Detail: fmt.Sprintf("%s flow=%d class=%s (%s)", inner.Proto, inner.Flow, inner.Class, where),
			})
		}
		prevCtl := ar.OnControl
		ar.OnControl = func(kind fho.Kind) {
			if prevCtl != nil {
				prevCtl(kind)
			}
			log.Emit(trace.Event{
				At: tb.Engine.Now(), Kind: trace.KindControl, Node: name,
				Detail: "sends " + kind.String(),
			})
		}
	}
	hookAR("par", tb.PAR)
	hookAR("nar", tb.NAR)

	for i, unit := range tb.MHs {
		name := fmt.Sprintf("mh%d", i)
		unit := unit
		prevCtl := unit.MH.OnControl
		unit.MH.OnControl = func(kind fho.Kind) {
			if prevCtl != nil {
				prevCtl(kind)
			}
			log.Emit(trace.Event{
				At: tb.Engine.Now(), Kind: trace.KindControl, Node: name,
				Detail: "sends " + kind.String(),
			})
		}
		prevDone := unit.MH.OnHandoffDone
		unit.MH.OnHandoffDone = func(rec core.HandoffRecord) {
			if prevDone != nil {
				prevDone(rec)
			}
			log.Emit(trace.Event{
				At: rec.Detached, Kind: trace.KindLinkDown, Node: name,
				Detail: "L2 blackout begins",
			})
			log.Emit(trace.Event{
				At: rec.Attached, Kind: trace.KindLinkUp, Node: name,
				Detail: "attached to the new access point",
			})
			log.Emit(trace.Event{
				At: tb.Engine.Now(), Kind: trace.KindHandoff, Node: name,
				Detail: fmt.Sprintf("complete (anticipated=%t link-layer=%t nar=%t par=%t)",
					rec.Anticipated, rec.LinkLayerOnly, rec.NARGranted, rec.PARGranted),
			})
		}
		prevDeliver := unit.MH.OnDeliver
		unit.MH.OnDeliver = func(pkt *inet.Packet) {
			if prevDeliver != nil {
				prevDeliver(pkt)
			}
			log.Emit(trace.Event{
				At: tb.Engine.Now(), Kind: trace.KindDeliver, Node: name,
				Seq:    int64(pkt.Seq),
				Detail: fmt.Sprintf("%s flow=%d class=%s", pkt.Proto, pkt.Flow, pkt.Class),
			})
		}
	}
}

// TestLazyTraceRendersIdenticallyToEager runs one full handoff scenario
// with the typed lazy trace and an eagerly formatted replica of the old
// hooks attached side by side, then requires the rendered protocol trace
// and the ns-2 export to match byte for byte.
func TestLazyTraceRendersIdenticallyToEager(t *testing.T) {
	tb := NewTestbed(Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      40,
		Alpha:         2,
		BufferRequest: 20,
	})
	tb.AddMobileHost(wireless.Linear{Start: 50, Speed: MHSpeed}, []FlowSpec{
		AudioFlow(inet.ClassHighPriority),
		AudioFlow(inet.ClassRealTime),
	})
	lazy := trace.NewLog(0)
	eager := trace.NewLog(0)
	tb.AttachTrace(lazy)
	attachEagerTrace(tb, eager)

	tb.StartTraffic()
	if err := tb.Run(12 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	tb.StopTraffic()
	if err := tb.Engine.Run(14 * sim.Second); err != nil {
		t.Fatalf("Run drain: %v", err)
	}

	if lazy.Len() == 0 || lazy.Len() != eager.Len() {
		t.Fatalf("event counts diverge: lazy %d, eager %d", lazy.Len(), eager.Len())
	}
	if got, want := lazy.Render(), eager.Render(); got != want {
		t.Fatalf("rendered traces diverge:\n--- lazy ---\n%s\n--- eager ---\n%s",
			firstDiffContext(got, want), firstDiffContext(want, got))
	}
	var lazyNS2, eagerNS2 strings.Builder
	if err := trace.NewNS2Writer(&lazyNS2).WriteLog(lazy); err != nil {
		t.Fatalf("ns2 lazy: %v", err)
	}
	if err := trace.NewNS2Writer(&eagerNS2).WriteLog(eager); err != nil {
		t.Fatalf("ns2 eager: %v", err)
	}
	if lazyNS2.String() != eagerNS2.String() {
		t.Fatal("ns-2 exports diverge")
	}
}

// firstDiffContext trims two long strings to the lines around their first
// difference, keeping failure output readable.
func firstDiffContext(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := range al {
		if i >= len(bl) || al[i] != bl[i] {
			lo := i - 2
			if lo < 0 {
				lo = 0
			}
			hi := i + 3
			if hi > len(al) {
				hi = len(al)
			}
			return fmt.Sprintf("line %d:\n%s", i+1, strings.Join(al[lo:hi], "\n"))
		}
	}
	return "(prefix of the other)"
}

// TestStreamingTestbedRetainsNoSamples pins the streaming recorder's
// memory contract on a real run: delays are counted and aggregated but no
// per-packet samples are retained.
func TestStreamingTestbedRetainsNoSamples(t *testing.T) {
	tb := NewTestbed(Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      40,
		Alpha:         2,
		BufferRequest: 20,
		StatsMode:     stats.ModeStreaming,
	})
	tb.AddMobileHost(wireless.Linear{Start: 50, Speed: MHSpeed}, []FlowSpec{
		AudioFlow(inet.ClassHighPriority),
	})
	tb.StartTraffic()
	if err := tb.Run(12 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	tb.StopTraffic()
	if err := tb.Engine.Run(14 * sim.Second); err != nil {
		t.Fatalf("Run drain: %v", err)
	}
	for _, f := range tb.Recorder.Flows() {
		if f.DelayCount() == 0 {
			t.Fatalf("flow %d observed no delays", f.Flow)
		}
		if len(f.Delays) != 0 {
			t.Fatalf("streaming flow %d retained %d samples", f.Flow, len(f.Delays))
		}
		if f.MaxDelay() == 0 || f.MeanDelay() == 0 || f.DelayPercentile(99) == 0 {
			t.Fatalf("flow %d streaming aggregates empty", f.Flow)
		}
	}
}
