package scenario

import "repro/internal/fho"

// Small helpers keeping the fho import out of every test body.
func kindHI() fho.Kind         { return fho.KindHI }
func kindHAck() fho.Kind       { return fho.KindHAck }
func kindBF() fho.Kind         { return fho.KindBF }
func kindPrRtAdv() fho.Kind    { return fho.KindPrRtAdv }
func kindBufferFull() fho.Kind { return fho.KindBufferFull }
