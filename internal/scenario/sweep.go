package scenario

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// SweepResult carries one headline metric's distribution across seeds.
type SweepResult struct {
	Metric  string
	Summary stats.Summary
}

// SweepFig42 reruns the buffer-utilization experiment across seeds and
// summarizes the loss-free capacities — the figure's headline claims with
// confidence intervals instead of single numbers.
func SweepFig42(seeds int, p Fig42Params) []SweepResult {
	if seeds < 1 {
		seeds = 1
	}
	metrics := []string{"NAR", "PAR", "DUAL"}
	out := make([]SweepResult, len(metrics))
	for i, m := range metrics {
		out[i].Metric = m + " loss-free capacity"
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		p := p
		p.Seed = seed
		res := RunFig42(p)
		for i, m := range metrics {
			out[i].Summary.Add(float64(res.MaxLossFree(m)))
		}
	}
	return out
}

// SweepBaseline reruns the mobility ladder across seeds, summarizing each
// rung's loss.
func SweepBaseline(seeds int) []SweepResult {
	if seeds < 1 {
		seeds = 1
	}
	var out []SweepResult
	for seed := int64(1); seed <= int64(seeds); seed++ {
		res := RunBaselineSeed(seed)
		if out == nil {
			out = make([]SweepResult, len(res.Rows))
			for i, row := range res.Rows {
				out[i].Metric = row.Name + " lost"
			}
		}
		for i, row := range res.Rows {
			out[i].Summary.Add(float64(row.Lost))
		}
	}
	return out
}

// RenderSweep formats sweep results as mean ± stddev [min, max] rows.
func RenderSweep(results []SweepResult) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "%-50s %6.2f ± %.2f  [%g, %g]  (n=%d)\n",
			r.Metric, r.Summary.Mean(), r.Summary.StdDev(),
			r.Summary.Min(), r.Summary.Max(), r.Summary.N())
	}
	return b.String()
}
