package scenario

import (
	"context"
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sim"
)

func parseCSV(t *testing.T, cw CSVWriter) [][]string {
	t.Helper()
	var b strings.Builder
	if err := cw.WriteCSV(&b); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	records, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return records
}

func TestFig42CSV(t *testing.T) {
	res := RunFig42(Fig42Params{MaxHosts: 3})
	records := parseCSV(t, res)
	if len(records) != 4 { // header + 3 hosts
		t.Fatalf("records = %d, want 4", len(records))
	}
	if records[0][0] != "hosts" || len(records[0]) != 5 {
		t.Fatalf("header = %v", records[0])
	}
	if records[1][0] != "1" || records[3][0] != "3" {
		t.Fatalf("host column wrong: %v", records)
	}
}

func TestDropTraceCSV(t *testing.T) {
	res := RunDropTrace(DropTraceParams{
		Scheme: core.SchemeEnhanced, PoolSize: 20, Alpha: 6, Handoffs: 3,
	})
	records := parseCSV(t, res)
	if len(records) != res.Handoffs()+1 {
		t.Fatalf("records = %d, want %d", len(records), res.Handoffs()+1)
	}
	if records[0][1] != "f1_realtime" {
		t.Fatalf("header = %v", records[0])
	}
}

func TestFig46CSV(t *testing.T) {
	res := RunFig46(Fig46Params{})
	records := parseCSV(t, res)
	if len(records) != len(res.Rows)+1 {
		t.Fatalf("records = %d, want %d", len(records), len(res.Rows)+1)
	}
	if records[1][0] != "51.2" {
		t.Fatalf("first rate = %v", records[1])
	}
}

func TestDelayTraceCSV(t *testing.T) {
	res := RunDelayTrace(DelayTraceParams{Scheme: core.SchemeDual, PoolSize: 20})
	records := parseCSV(t, res)
	if len(records) < 10 {
		t.Fatalf("records = %d, want a window of samples", len(records))
	}
	// Sequence column strictly increasing.
	prev := ""
	for _, rec := range records[1:] {
		if prev != "" && len(rec[0]) < len(prev) || (len(rec[0]) == len(prev) && rec[0] <= prev) {
			t.Fatalf("seq order broken: %s after %s", rec[0], prev)
		}
		prev = rec[0]
	}
}

func TestTCPTraceCSV(t *testing.T) {
	res := RunTCPTrace(TCPTraceParams{Buffered: true})
	records := parseCSV(t, res)
	if len(records) < 50 {
		t.Fatalf("records = %d", len(records))
	}
	if records[0][0] != "t_s" || records[0][1] != "recv_seq" {
		t.Fatalf("header = %v", records[0])
	}
}

func TestFig414CSV(t *testing.T) {
	res := RunFig414()
	records := parseCSV(t, res)
	if len(records) < 100 {
		t.Fatalf("records = %d", len(records))
	}
	if len(records[0]) != 3 {
		t.Fatalf("header = %v", records[0])
	}
}

func TestBaselineCSV(t *testing.T) {
	res := RunBaseline()
	records := parseCSV(t, res)
	if len(records) != 5 { // header + 4 rungs
		t.Fatalf("records = %d, want 5", len(records))
	}
}

// Renderers: every result type prints a non-empty, labelled table.
func TestRenderers(t *testing.T) {
	checks := []struct {
		name     string
		render   func() string
		contains string
	}{
		{"fig4.2", func() string { return RunFig42(Fig42Params{MaxHosts: 2}).Render() }, "Figure 4.2"},
		{"drop trace", func() string {
			return RunDropTrace(DropTraceParams{Scheme: core.SchemeDual, PoolSize: 20, Handoffs: 2}).Render()
		}, "Cumulative packet drops"},
		{"fig4.6", func() string { return RunFig46(Fig46Params{}).Render() }, "Figure 4.6"},
		{"delay trace", func() string {
			return RunDelayTrace(DelayTraceParams{Scheme: core.SchemeDual, PoolSize: 20}).Render()
		}, "End-to-end delay"},
		{"tcp trace", func() string { return RunTCPTrace(TCPTraceParams{Buffered: true}).Render() }, "TCP sequence trace"},
		{"fig4.14", func() string { return RunFig414().Render() }, "TCP throughput"},
		{"baseline", func() string { return RunBaseline().Render() }, "mobility-management ladder"},
	}
	for _, c := range checks {
		t.Run(c.name, func(t *testing.T) {
			out := c.render()
			if len(out) < 40 || !strings.Contains(out, c.contains) {
				t.Fatalf("Render output suspicious (%d bytes): %q...", len(out), out[:min(len(out), 120)])
			}
		})
	}
}

func TestSweeps(t *testing.T) {
	pool := runner.NewPool(2)
	fig42, err := pool.Run(context.Background(), Fig42Spec(Fig42Params{MaxHosts: 10}), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fig42.Failed() != 0 {
		t.Fatalf("fig4.2 replicas failed: %v", fig42.FirstErr())
	}
	byName := make(map[string]runner.MetricSummary)
	for _, m := range fig42.Metrics {
		if m.N != 3 {
			t.Errorf("%s: n = %d, want 3", m.Name, m.N)
		}
		byName[m.Name] = m
	}
	// The structural claims hold at every seed: DUAL ≈ 2× NAR.
	nar, dual := byName["capacity_nar"], byName["capacity_dual"]
	if dual.Mean < 1.8*nar.Mean {
		t.Errorf("dual mean %.1f < 1.8× nar mean %.1f", dual.Mean, nar.Mean)
	}

	ladder, err := pool.Run(context.Background(), BaselineSpec(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ladder.Failed() != 0 {
		t.Fatalf("ladder replicas failed: %v", ladder.FirstErr())
	}
	// Enhanced rung loses nothing at any seed.
	for _, m := range ladder.Metrics {
		if m.Name == "lost_enhanced" && m.Max != 0 {
			t.Errorf("enhanced rung lost up to %g packets across seeds", m.Max)
		}
	}
}

func TestLatencyBreakdown(t *testing.T) {
	l := RunLatencyBreakdown(6, 1)
	if l.Handoffs != 6 {
		t.Fatalf("handoffs = %d, want 6", l.Handoffs)
	}
	// The blackout is configured at exactly 200 ms.
	if l.Blackout.Mean() != 200 || l.Blackout.StdDev() != 0 {
		t.Errorf("blackout = %.1f ± %.1f ms, want exactly 200", l.Blackout.Mean(), l.Blackout.StdDev())
	}
	// Anticipation is a handful of milliseconds of wired signalling.
	if l.Anticipation.Mean() <= 0 || l.Anticipation.Mean() > 50 {
		t.Errorf("anticipation = %.1f ms; implausible", l.Anticipation.Mean())
	}
	// The interruption is dominated by the blackout (buffered packets
	// arrive right after), never an RTO-class stall.
	if l.Interruption.Mean() < 180 || l.Interruption.Max() > 400 {
		t.Errorf("interruption = %.1f ms (max %g); out of the blackout class",
			l.Interruption.Mean(), l.Interruption.Max())
	}
	if !strings.Contains(l.Render(), "latency breakdown") {
		t.Error("Render header missing")
	}
}

func TestTransferTime(t *testing.T) {
	buffered, unbuffered := TransferTime(20_000_000)
	if buffered == 0 || unbuffered == 0 {
		t.Fatalf("transfer incomplete: buffered=%v unbuffered=%v", buffered, unbuffered)
	}
	gap := unbuffered - buffered
	// The unbuffered run pays the ~1.35 s timeout stall plus slow-start
	// recovery.
	if gap < sim.Second || gap > 4*sim.Second {
		t.Errorf("stall cost = %v, want 1–4 s", gap)
	}
}
