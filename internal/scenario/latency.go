package scenario

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/inet"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/wireless"
)

// LatencyBreakdown decomposes the handover latency into its components
// across repeated handoffs — the analysis style of the thesis' reference
// [12] (Hsieh et al., "Performance analysis of Hierarchical Mobile IPv6
// with Fast-handoff"): anticipation signalling, the L2 blackout, and the
// release/registration tail, plus the resulting service interruption seen
// by a CBR flow.
type LatencyBreakdown struct {
	Handoffs     int
	Anticipation stats.Summary // Triggered → PrRtAdv received
	Blackout     stats.Summary // Detached → Attached
	Interruption stats.Summary // longest delivery gap around each handoff
}

// RunLatencyBreakdown measures the components over the given number of
// ping-pong handoffs under the enhanced scheme.
func RunLatencyBreakdown(handoffs int, seed int64) LatencyBreakdown {
	return runLatencyBreakdownEngine(handoffs, seed, nil)
}

// runLatencyBreakdownEngine optionally reuses a simulation engine (see
// Params.Engine).
func runLatencyBreakdownEngine(handoffs int, seed int64, engine *sim.Engine) LatencyBreakdown {
	if handoffs <= 0 {
		handoffs = 10
	}
	tb := NewTestbed(Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      40,
		Alpha:         2,
		BufferRequest: 20,
		Seed:          seed,
		Engine:        engine,
	})
	unit := tb.AddMobileHost(wireless.PingPong{A: 20, B: 192, Speed: MHSpeed}, []FlowSpec{
		AudioFlow(inet.ClassHighPriority),
	})
	done := 0
	unit.MH.OnHandoffDone = func(rec core.HandoffRecord) {
		done++
		if done == handoffs {
			tb.Engine.Schedule(2*sim.Second, tb.Engine.Stop)
		}
	}
	tb.StartTraffic()
	horizon := sim.Time(handoffs+2) * 18 * sim.Second
	if err := tb.Engine.Run(horizon); err != nil && err != sim.ErrStopped {
		panic(fmt.Sprintf("latency breakdown: %v", err))
	}

	var out LatencyBreakdown
	recs := unit.MH.Handoffs()
	if len(recs) > handoffs {
		recs = recs[:handoffs]
	}
	out.Handoffs = len(recs)
	for _, rec := range recs {
		if rec.Anticipated {
			out.Anticipation.Add((rec.Advertised - rec.Triggered).Milliseconds())
		}
		out.Blackout.Add((rec.Attached - rec.Detached).Milliseconds())
	}
	// Interruption: longest delivery gap within each handoff's window.
	f := tb.Recorder.Flow(unit.Flows[0])
	for _, rec := range recs {
		gap := f.DeliveryGap(rec.Triggered-sim.Second, rec.Attached+2*sim.Second)
		out.Interruption.Add(gap.Milliseconds())
	}
	return out
}

// Render formats the breakdown.
func (l LatencyBreakdown) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Handover latency breakdown over %d handoffs (enhanced scheme), ms\n\n", l.Handoffs)
	row := func(name string, s stats.Summary) {
		fmt.Fprintf(&b, "%-26s %8.1f ± %.1f  [%g, %g]\n",
			name, s.Mean(), s.StdDev(), s.Min(), s.Max())
	}
	row("anticipation signalling", l.Anticipation)
	row("L2 blackout", l.Blackout)
	row("service interruption", l.Interruption)
	return b.String()
}

// HysteresisCost runs one handoff walk under the given trigger hysteresis
// and returns the packet loss and whether the handoff was anticipated —
// the hysteresis-vs-overlap-budget trade-off in two numbers.
func HysteresisCost(hysteresisDB float64) (lost uint64, anticipated bool) {
	tb := NewTestbed(Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      40,
		Alpha:         2,
		BufferRequest: 20,
		HysteresisDB:  hysteresisDB,
	})
	unit := tb.AddMobileHost(wireless.Linear{Start: 50, Speed: MHSpeed}, []FlowSpec{
		AudioFlow(inet.ClassHighPriority),
	})
	tb.StartTraffic()
	if err := tb.Run(16 * sim.Second); err != nil {
		panic(fmt.Sprintf("hysteresis cost: %v", err))
	}
	tb.StopTraffic()
	if err := tb.Engine.Run(18 * sim.Second); err != nil {
		panic(fmt.Sprintf("hysteresis cost drain: %v", err))
	}
	recs := unit.MH.Handoffs()
	if len(recs) > 0 {
		anticipated = recs[0].Anticipated
	}
	return tb.Recorder.Flow(unit.Flows[0]).Lost(), anticipated
}

// TransferTime measures how long a bounded FTP download takes when it
// spans the link-layer handoff, with and without the §3.2.2.4 buffering.
// It returns the two completion times (zero when a transfer did not finish
// within the horizon).
func TransferTime(bytes uint64) (buffered, unbuffered sim.Time) {
	run := func(protect bool) sim.Time {
		tb := NewWLANTestbed(WLANParams{Buffered: protect, TransferBytes: bytes})
		if err := tb.Run(120 * sim.Second); err != nil {
			panic(fmt.Sprintf("transfer time: %v", err))
		}
		return tb.Sender.DoneAt()
	}
	return run(true), run(false)
}
