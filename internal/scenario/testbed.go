// Package scenario builds the thesis' simulation scenarios (the Figure 4.1
// hierarchical topology and the Figure 4.11 single-router WLAN) and runs
// one experiment per figure of Chapter 4.
package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/inet"
	"repro/internal/mip"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/internal/wireless"
)

// Network prefixes of the reference topology.
const (
	NetCN   inet.NetID = 1
	NetPAR  inet.NetID = 2
	NetNAR  inet.NetID = 3
	NetMAP  inet.NetID = 50
	NetHome inet.NetID = 60
)

// Drop location labels used in recorders, extending the core package's.
const (
	DropOnAir = "air"
)

// Params configures the Figure 4.1 testbed. Zero values select the thesis'
// settings.
type Params struct {
	// Scheme selects the buffering behaviour on both access routers.
	Scheme core.Scheme
	// PoolSize is each access router's buffer pool in packets (e.g. 40 for
	// the original fast handover runs, 20 for the proposed scheme).
	PoolSize int
	// Alpha is the PAR's best-effort admission threshold.
	Alpha int
	// BufferRequest is each mobile host's BI size. Zero requests nothing.
	BufferRequest int
	// ARLinkDelay is the PAR–NAR link delay (2 ms in most figures, 50 ms
	// in Figure 4.10).
	ARLinkDelay sim.Time
	// L2HandoffDelay is the blackout (200 ms in the thesis).
	L2HandoffDelay sim.Time
	// RAInterval is the router-advertisement period. The thesis uses 1 s
	// and triggers on the first advertisement heard in the 12 m overlap;
	// this model triggers only once the new AP is strictly closer (a 6 m /
	// 0.6 s window at 10 m/s), so the default period is 500 ms to keep the
	// thesis' guarantee that every handoff is anticipated.
	RAInterval sim.Time
	// DrainInterval optionally paces buffer drains.
	DrainInterval sim.Time
	// PartialGrants enables the precise-allocation extension.
	PartialGrants bool
	// AuthKey enables HMAC authentication of handover messages on both
	// routers and all hosts.
	AuthKey []byte
	// Mobility selects fast handover (default) or the plain Mobile IP
	// baseline for every host.
	Mobility core.Mobility
	// HomeAgentDelay, when positive, adds a home agent this far (one-way)
	// behind the MAP and anchors every host there instead of at the MAP —
	// the classic Mobile IP deployment whose registration latency the
	// hierarchical architecture exists to hide.
	HomeAgentDelay sim.Time
	// HysteresisDB is the signal-strength margin for the handover trigger.
	HysteresisDB float64
	// ControlLossRate, when positive, drops each control-plane packet on
	// the access links (AR–AP both sides and the PAR–NAR link) with this
	// probability, drawn from a seeded per-interface stream, and enables
	// the unacked-retransmission paths on the routers and hosts. Data
	// packets are never injected with loss: the loss axis isolates
	// signaling resilience.
	ControlLossRate float64
	// Seed drives beacon phases and the fault injector.
	Seed int64
	// StatsMode selects how the recorder summarizes delays: ModeExact
	// (default) retains every sample for exact percentiles and delivery
	// traces; ModeStreaming folds each delay into O(1) digests, keeping
	// memory O(flows) instead of O(packets) for metro-scale runs.
	StatsMode stats.Mode
	// Engine, when set, is reused for this testbed instead of creating a
	// fresh one. NewTestbed resets it first, so a worker can run many
	// replicas on one engine and keep its warmed-up event free list and
	// queue capacity. Results are identical either way (Reset rewinds the
	// clock and sequence counter completely).
	Engine *sim.Engine
}

func (p *Params) applyDefaults() {
	if p.Scheme == 0 {
		p.Scheme = core.SchemeEnhanced
	}
	if p.ARLinkDelay == 0 {
		p.ARLinkDelay = 2 * sim.Millisecond
	}
	if p.L2HandoffDelay == 0 {
		p.L2HandoffDelay = 200 * sim.Millisecond
	}
	if p.RAInterval == 0 {
		p.RAInterval = 500 * sim.Millisecond
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
}

// Geometry of the reference scenario (Figure 4.1): access routers 212 m
// apart, 112 m coverage radius, 12 m overlap, hosts moving at 10 m/s.
const (
	APDistance = 212.0
	APRadius   = 112.0
	MHSpeed    = 10.0
)

// Link-rate constants of the reference topology.
const (
	coreBandwidth = 100_000_000 // CN–MAP
	arBandwidth   = 10_000_000  // MAP–AR, AR–AR
	apBandwidth   = 100_000_000 // AR–AP
	airBandwidth  = 11_000_000  // 802.11b
)

// FlowSpec describes one CBR flow from the correspondent node to a mobile
// host.
type FlowSpec struct {
	Class    inet.Class
	Size     int
	Interval sim.Time
}

// AudioFlow returns the thesis' canonical 64 kb/s audio flow (160-byte
// packets every 20 ms) with the given class.
func AudioFlow(class inet.Class) FlowSpec {
	return FlowSpec{Class: class, Size: 160, Interval: 20 * sim.Millisecond}
}

// MHUnit bundles one mobile host with its traffic.
type MHUnit struct {
	MH      *core.MobileHost
	Station *wireless.Station
	RCoA    inet.Addr
	Sources []*traffic.CBR
	Flows   []inet.FlowID
}

// Testbed is the assembled Figure 4.1 network.
type Testbed struct {
	Params   Params
	Engine   *sim.Engine
	Topo     *netsim.Topology
	Medium   *wireless.Medium
	Recorder *stats.Recorder
	RNG      *sim.RNG

	CN     *netsim.Host
	MAP    *mip.Agent
	Home   *mip.Agent
	PAR    *core.AccessRouter
	NAR    *core.AccessRouter
	APPAR  *wireless.AccessPoint
	APNAR  *wireless.AccessPoint
	MHs    []*MHUnit
	parAPL *netsim.Link
	narAPL *netsim.Link
	arLink *netsim.Link

	// releaseUDP recycles a dead UDP data chain into the topology's pool;
	// AddMobileHost chains it behind each station's TxDropHook.
	releaseUDP func(pkt *inet.Packet)

	// Faults is the control-plane loss injector, nil unless
	// Params.ControlLossRate is positive.
	Faults *netsim.FaultInjector
}

// NewTestbed assembles the reference topology with no mobile hosts yet.
func NewTestbed(p Params) *Testbed {
	p.applyDefaults()
	engine := p.Engine
	if engine == nil {
		engine = sim.NewEngine()
	} else {
		engine.Reset()
	}
	topo := netsim.NewTopology(engine)
	medium := wireless.NewMedium(engine)
	rng := sim.NewRNG(p.Seed)

	cn := netsim.NewHost("cn", inet.Addr{Net: NetCN, Host: 1})
	mapRouter := netsim.NewRouter("map", inet.Addr{Net: NetMAP, Host: 1})
	parRouter := netsim.NewRouter("par", inet.Addr{Net: NetPAR, Host: 1})
	narRouter := netsim.NewRouter("nar", inet.Addr{Net: NetNAR, Host: 1})

	topo.Connect(cn, mapRouter, netsim.LinkConfig{BandwidthBPS: coreBandwidth, Delay: 2 * sim.Millisecond})
	topo.Connect(mapRouter, parRouter, netsim.LinkConfig{BandwidthBPS: arBandwidth, Delay: 2 * sim.Millisecond})
	topo.Connect(mapRouter, narRouter, netsim.LinkConfig{BandwidthBPS: arBandwidth, Delay: 2 * sim.Millisecond})
	arLink := topo.Connect(parRouter, narRouter, netsim.LinkConfig{BandwidthBPS: arBandwidth, Delay: p.ARLinkDelay})

	apPAR := wireless.NewAccessPoint("ap-par", medium, wireless.APConfig{
		Pos: 0, Radius: APRadius, BandwidthBPS: airBandwidth, AirDelay: sim.Millisecond,
		ReturnUndeliverable: true,
	})
	apNAR := wireless.NewAccessPoint("ap-nar", medium, wireless.APConfig{
		Pos: APDistance, Radius: APRadius, BandwidthBPS: airBandwidth, AirDelay: sim.Millisecond,
		ReturnUndeliverable: true,
	})
	parAPLink := topo.Connect(parRouter, apPAR, netsim.LinkConfig{BandwidthBPS: apBandwidth, Delay: sim.Millisecond / 2})
	narAPLink := topo.Connect(narRouter, apNAR, netsim.LinkConfig{BandwidthBPS: apBandwidth, Delay: sim.Millisecond / 2})

	topo.ClaimNet(NetCN, cn)
	topo.ClaimNet(NetMAP, mapRouter)
	topo.ClaimNet(NetPAR, parRouter)
	topo.ClaimNet(NetNAR, narRouter)
	if err := topo.ComputeRoutes(); err != nil {
		panic(fmt.Sprintf("scenario: route computation failed: %v", err))
	}
	// Inter-AR traffic (handover signalling and redirected packets) is
	// pinned to the direct PAR–NAR link: the thesis varies that link's
	// delay specifically, so it must stay on the path even when slower
	// than the detour through the MAP.
	parRouter.AddPrefixRoute(NetNAR, arLink.A())
	narRouter.AddPrefixRoute(NetPAR, arLink.B())

	agent := mip.NewAgent(engine, mapRouter, mip.AgentConfig{
		ManagedNet: NetMAP,
		Alloc:      topo.AllocPacket,
	})

	var home *mip.Agent
	if p.HomeAgentDelay > 0 {
		haRouter := netsim.NewRouter("ha", inet.Addr{Net: NetHome, Host: 1})
		topo.Connect(mapRouter, haRouter, netsim.LinkConfig{
			BandwidthBPS: coreBandwidth, Delay: p.HomeAgentDelay,
		})
		topo.ClaimNet(NetHome, haRouter)
		if err := topo.ComputeRoutes(); err != nil {
			panic(fmt.Sprintf("scenario: home-agent route computation failed: %v", err))
		}
		// Re-pin the inter-AR route clobbered by the recomputation.
		parRouter.AddPrefixRoute(NetNAR, arLink.A())
		narRouter.AddPrefixRoute(NetPAR, arLink.B())
		home = mip.NewAgent(engine, haRouter, mip.AgentConfig{ManagedNet: NetHome})
	}

	dir := core.NewDirectory()
	recorder := stats.NewRecorderMode(p.StatsMode)
	arCfg := core.ARConfig{
		Scheme:            p.Scheme,
		PoolSize:          p.PoolSize,
		Alpha:             p.Alpha,
		DrainInterval:     p.DrainInterval,
		PartialGrants:     p.PartialGrants,
		AuthKey:           p.AuthKey,
		RetransmitUnacked: p.ControlLossRate > 0,
	}
	par := core.NewAccessRouter(engine, parRouter, NetPAR, dir, arCfg)
	nar := core.NewAccessRouter(engine, narRouter, NetNAR, dir, arCfg)
	par.AddAP("ap-par", parAPLink.A())
	nar.AddAP("ap-nar", narAPLink.A())

	// releaseUDPChain recycles a dead UDP data packet (and any tunnel
	// wrappers around it) into the topology's pool. Only UDP data is
	// recycled: control payloads stay off the pool so retransmission
	// bookkeeping can never meet a recycled struct, and TCP is left to the
	// garbage collector. The reclaim is deferred one event, so hooks
	// chained after this one (tracing) still read the packet intact.
	releaseUDPChain := func(pkt *inet.Packet) {
		if pkt.Innermost().Proto != inet.ProtoUDP {
			return
		}
		for p := pkt; p != nil; p = p.Inner {
			topo.ReleasePacket(p)
		}
	}
	for _, ar := range []*core.AccessRouter{par, nar} {
		ar.OnDrop = func(pkt *inet.Packet, where string) {
			recorder.Dropped(pkt, where)
			releaseUDPChain(pkt)
		}
		// SafetyNet: discarded hold-window copies are dedup events, not
		// losses — count them and recycle the chain.
		ar.OnBicastDiscard = func(pkt *inet.Packet) {
			recorder.DedupDiscardNAR()
			releaseUDPChain(pkt)
		}
	}
	// Bandwidth-overhead accounting for the anchor's bicast duplicates.
	agent.OnBicast = func(pkt *inet.Packet) { recorder.BicastDuplicate(pkt) }
	dataAirDrop := func(pkt *inet.Packet) {
		if pkt.Innermost().Proto != inet.ProtoControl {
			recorder.DroppedSite(pkt, stats.SiteAir)
		}
		releaseUDPChain(pkt)
	}
	apPAR.AirDropHook = dataAirDrop
	apNAR.AirDropHook = dataAirDrop

	// Wired tail drops: charge them to the recorder's link-queue site and
	// recycle the packets, which previously leaked to the garbage
	// collector. The reference topology is provisioned so these are rare.
	topo.HookDrops(func(pkt *inet.Packet) {
		if pkt.Innermost().Proto != inet.ProtoControl {
			recorder.DroppedSite(pkt, stats.SiteLinkQueue)
		}
		releaseUDPChain(pkt)
	})
	// Impair discards (the fault injector eating a packet) are final sinks
	// too: recycle them the same way. The injector is control-only, and
	// control payloads stay off the pool, so today this recycles nothing —
	// it is here so a future data-plane fault config cannot silently leak.
	topo.HookDiscards(releaseUDPChain)

	// Staggered beacons: the PAR's AP on one phase, the NAR's on another.
	apPAR.StartAdvertising(wireless.Advertisement{Router: parRouter.Addr(), Net: NetPAR},
		p.RAInterval, rng.Uniform(0, p.RAInterval))
	apNAR.StartAdvertising(wireless.Advertisement{Router: narRouter.Addr(), Net: NetNAR},
		p.RAInterval, rng.Uniform(0, p.RAInterval))

	// Control-plane loss on the access links. The attachment order is fixed
	// so the per-interface fault streams are a pure function of the seed.
	var faults *netsim.FaultInjector
	if p.ControlLossRate > 0 {
		faults = netsim.NewFaultInjector(p.Seed)
		lossy := netsim.FaultConfig{LossRate: p.ControlLossRate, ControlOnly: true}
		faults.AttachLink(parAPLink, lossy)
		faults.AttachLink(narAPLink, lossy)
		faults.AttachLink(arLink, lossy)
	}

	return &Testbed{
		Params:   p,
		Engine:   engine,
		Topo:     topo,
		Medium:   medium,
		Recorder: recorder,
		RNG:      rng,
		CN:       cn,
		MAP:      agent,
		Home:     home,
		PAR:      par,
		NAR:      nar,
		APPAR:    apPAR,
		APNAR:    apNAR,
		parAPL:   parAPLink,
		narAPL:   narAPLink,
		arLink:   arLink,
		Faults:   faults,

		releaseUDP: releaseUDPChain,
	}
}

// AddMobileHost creates a mobile host attached to the PAR's access point,
// registered at the MAP, with one CBR flow from the CN per spec. Sources
// are created stopped; call StartTraffic.
func (tb *Testbed) AddMobileHost(motion wireless.Motion, flows []FlowSpec) *MHUnit {
	idx := len(tb.MHs)
	hostID := inet.HostID(10 + idx)
	anchor := tb.MAP
	rcoa := inet.Addr{Net: NetMAP, Host: 1000 + inet.HostID(idx)}
	if tb.Home != nil {
		// Classic deployment: the stable address is the home address and
		// the anchor is the distant home agent.
		anchor = tb.Home
		rcoa = inet.Addr{Net: NetHome, Host: 1000 + inet.HostID(idx)}
	}

	station := wireless.NewStation(fmt.Sprintf("mh%d", idx), tb.Medium, motion, wireless.StationConfig{
		BandwidthBPS:   airBandwidth,
		AirDelay:       sim.Millisecond,
		L2HandoffDelay: tb.Params.L2HandoffDelay,
	})
	// Station-side uplink losses (detached sends, queue overflow, NIC-reset
	// flush) mirror the AP's AirDropHook accounting.
	station.TxDropHook = func(pkt *inet.Packet) {
		if pkt.Innermost().Proto != inet.ProtoControl {
			tb.Recorder.DroppedSite(pkt, stats.SiteAirUplink)
		}
		tb.releaseUDP(pkt)
	}
	mh := core.NewMobileHost(tb.Engine, station, rcoa, anchor.Router().Addr(), core.MHConfig{
		HostID:            hostID,
		Scheme:            tb.Params.Scheme,
		BufferRequest:     tb.Params.BufferRequest,
		AuthKey:           tb.Params.AuthKey,
		Mobility:          tb.Params.Mobility,
		HysteresisDB:      tb.Params.HysteresisDB,
		RetransmitUnacked: tb.Params.ControlLossRate > 0,
	})
	mh.Attach(tb.APPAR, tb.PAR.Addr(), NetPAR)
	tb.PAR.AttachResident(mh.LCoA(), tb.parAPL.A())
	anchor.Register(rcoa, mh.LCoA(), 3600*sim.Second)
	mh.StartRegistration()
	sink := traffic.Sink(tb.Engine, tb.Recorder)
	mh.OnDeliver = func(pkt *inet.Packet) {
		sink(pkt)
		// The delivered UDP packet is dead once recorded; recycle it
		// (deferred one event, so tracing wrappers still read it).
		if pkt.Proto == inet.ProtoUDP {
			tb.Topo.ReleasePacket(pkt)
		}
	}
	mh.ReleaseTunnel = func(outer, inner *inet.Packet) {
		for p := outer; p != nil && p != inner; p = p.Inner {
			tb.Topo.ReleasePacket(p)
		}
	}
	mh.OnDuplicate = func(pkt *inet.Packet) {
		// Redundant bicast copy suppressed by the dedup window (wrappers
		// already recycled via ReleaseTunnel).
		tb.Recorder.DedupDiscardMH()
		if pkt.Proto == inet.ProtoUDP {
			tb.Topo.ReleasePacket(pkt)
		}
	}

	unit := &MHUnit{MH: mh, Station: station, RCoA: rcoa}
	for _, spec := range flows {
		flowID := tb.Topo.NewFlowID()
		src := traffic.NewCBR(tb.Engine, traffic.CBRConfig{
			Flow:     flowID,
			Class:    spec.Class,
			Src:      tb.CN.Addr(),
			Dst:      rcoa,
			Size:     spec.Size,
			Interval: spec.Interval,
			Alloc:    tb.Topo.AllocPacket,
		}, tb.CN.Send, tb.Topo.NewPacketID, tb.Recorder)
		unit.Sources = append(unit.Sources, src)
		unit.Flows = append(unit.Flows, flowID)
	}
	tb.MHs = append(tb.MHs, unit)
	return unit
}

// StartTraffic starts every CBR source with a small deterministic phase
// stagger so packets from different flows do not collide on the same
// instant.
func (tb *Testbed) StartTraffic() {
	i := 0
	for _, unit := range tb.MHs {
		for _, src := range unit.Sources {
			src.Start(sim.Time(i) * 100 * sim.Microsecond)
			i++
		}
	}
}

// StopTraffic stops every source.
func (tb *Testbed) StopTraffic() {
	for _, unit := range tb.MHs {
		for _, src := range unit.Sources {
			src.Stop()
		}
	}
}

// Run advances the simulation to the given instant.
func (tb *Testbed) Run(until sim.Time) error { return tb.Engine.Run(until) }
