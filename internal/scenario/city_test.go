package scenario

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// cityTestParams is a reduced city that still exercises every moving part:
// multiple domains per shard, both region MAPs, co-located and cross-shard
// MAP links, and a full handoff per host.
func cityTestParams() CityParams {
	return CityParams{
		Domains:        4,
		HostsPerDomain: 25,
		MAPs:           2,
		StaggerWindow:  5 * sim.Second,
		Seed:           7,
	}
}

// cityBytes renders the deterministic output (summary + CSV) of a run.
func cityBytes(t *testing.T, res CityResult) string {
	t.Helper()
	var csv strings.Builder
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	return res.Render() + csv.String()
}

func TestCityOneShardIsSerialEngine(t *testing.T) {
	// The differential golden check: a 1-shard partition must be the
	// serial engine, byte for byte. Structurally (no mailbox ports exist,
	// so every link is a plain same-engine link) and observably (stepping
	// through the shard group produces the identical output to stepping
	// the engine directly).
	p := cityTestParams()
	p.Shards = 1
	p.Workers = 1
	viaGroup := RunCity(p)
	if viaGroup.CrossPorts != 0 {
		t.Fatalf("1-shard city registered %d mailbox ports, want 0 (must be the serial engine)", viaGroup.CrossPorts)
	}
	serial := p
	serial.forceSerial = true
	viaSerial := RunCity(serial)
	got, want := cityBytes(t, viaGroup), cityBytes(t, viaSerial)
	if got != want {
		t.Fatalf("1-shard group run diverged from the serial engine:\n--- group ---\n%s\n--- serial ---\n%s", got, want)
	}
}

func TestCityDeterministicAcrossWorkers(t *testing.T) {
	// For a fixed shard count the output must be byte-identical at any
	// worker count: shards are isolated within an epoch and the exchange
	// runs single-threaded in fixed port order, so shard-to-worker
	// assignment cannot leak into results.
	p := cityTestParams()
	p.Shards = 4
	run := func(workers int) string {
		q := p
		q.Workers = workers
		return cityBytes(t, RunCity(q))
	}
	ref := run(1)
	for _, workers := range []int{4, 8} {
		if got := run(workers); got != ref {
			t.Fatalf("city output diverged between 1 and %d workers:\n--- %d workers ---\n%s\n--- 1 worker ---\n%s",
				workers, workers, got, ref)
		}
	}
}

func TestCityRepeatableAcrossRuns(t *testing.T) {
	// Same parameters, fresh build: byte-identical, for every shard count
	// (each partition is deterministic; partitions differ from each other
	// only in same-instant tie-breaks).
	for _, shards := range []int{1, 3, 8} {
		p := cityTestParams()
		p.Shards = shards
		p.Workers = 4
		a := cityBytes(t, RunCity(p))
		b := cityBytes(t, RunCity(p))
		if a != b {
			t.Fatalf("shards=%d: two identical runs diverged:\n%s\n---\n%s", shards, a, b)
		}
	}
}

func TestCityCompletesEveryHandoff(t *testing.T) {
	p := cityTestParams()
	p.Shards = 3
	p.Workers = 4
	res := RunCity(p)
	want := p.Domains * p.HostsPerDomain
	if res.Handoffs != want {
		t.Fatalf("handoffs = %d, want %d (one per host)", res.Handoffs, want)
	}
	if res.SessionsLeft != 0 {
		t.Fatalf("%d handoff sessions leaked past the drain", res.SessionsLeft)
	}
	if res.TotalSent == 0 {
		t.Fatal("no traffic recorded")
	}
	lost := res.Lost[0] + res.Lost[1] + res.Lost[2]
	if lost*10 > res.TotalSent {
		t.Fatalf("lost %d of %d packets — the city should lose well under 10%%", lost, res.TotalSent)
	}
	// The enhanced scheme's whole point: real-time traffic fares no worse
	// than best-effort under buffer pressure.
	if res.Lost[0] > res.Lost[2] {
		t.Fatalf("real-time lost more than best-effort (%d > %d)", res.Lost[0], res.Lost[2])
	}
	if res.Events == 0 || res.CrossPorts == 0 {
		t.Fatalf("events=%d crossPorts=%d — sharded run should report both", res.Events, res.CrossPorts)
	}
}

func TestCityAssignDeterministicAndBalanced(t *testing.T) {
	mapShard, domShard := cityAssign(2, 50, 8)
	mapShard2, domShard2 := cityAssign(2, 50, 8)
	for i := range mapShard {
		if mapShard[i] != mapShard2[i] {
			t.Fatal("cityAssign is not deterministic")
		}
	}
	load := make([]int, 8)
	for i := range domShard {
		if domShard[i] != domShard2[i] {
			t.Fatal("cityAssign is not deterministic")
		}
		load[domShard[i]]++
	}
	min, max := load[0], load[0]
	for _, l := range load[1:] {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	// 50 domains + 2 MAP units over 8 shards: greedy LPT keeps the spread
	// within one MAP-weight of even.
	if max-min > 13 {
		t.Fatalf("domain load spread %v too uneven", load)
	}
}

// benchCityParams is the CI speedup benchmark's workload: big enough that
// the barrier cost is amortized, small enough for -benchtime 1x on CI.
func benchCityParams(shards, workers int) CityParams {
	return CityParams{
		Domains:        8,
		HostsPerDomain: 150,
		MAPs:           2,
		Shards:         shards,
		Workers:        workers,
		StaggerWindow:  5 * sim.Second,
		Seed:           3,
	}
}

// BenchmarkCityShardedSpeedup measures the same city serial and sharded;
// the CI gate pins both, and their ratio is the parallel speedup.
func BenchmarkCityShardedSpeedup(b *testing.B) {
	for _, cfg := range []struct {
		name            string
		shards, workers int
	}{
		{"shards1", 1, 1},
		{"shards8", 8, 8},
		// Worker sweep at a fixed partition: how the barrier behaves when
		// goroutines are scarcer than shards (w1 also isolates protocol
		// cost from parallelism).
		{"shards8w1", 8, 1},
		{"shards8w2", 8, 2},
		{"shards8w4", 8, 4},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := RunCity(benchCityParams(cfg.shards, cfg.workers))
				if res.Handoffs == 0 {
					b.Fatal("no handoffs")
				}
			}
		})
	}
}

// stripBarrierLine removes the barrier-statistics line from a rendered city
// summary — the one line that legitimately differs between the adaptive and
// fixed epoch modes (it reports the protocol, not the simulation).
func stripBarrierLine(s string) string {
	var b strings.Builder
	for _, line := range strings.SplitAfter(s, "\n") {
		if strings.HasPrefix(line, "barrier: ") {
			continue
		}
		b.WriteString(line)
	}
	return b.String()
}

// citySparseParams is the sparse-handoff regime the adaptive barrier
// targets: one staggered handoff per domain spread over ten minutes, so
// beacons and rare cross-shard bursts dominate and fixed-width epochs
// degenerate into empty synchronized rounds.
func citySparseParams() CityParams {
	return CityParams{
		Domains:        4,
		HostsPerDomain: 1,
		MAPs:           2,
		Shards:         4,
		Workers:        2,
		StaggerWindow:  600 * sim.Second,
		Seed:           7,
	}
}

func TestCityAdaptiveMatchesFixedEpochs(t *testing.T) {
	// The differential golden for the adaptive barrier: on the same
	// parameters, the adaptive and fixed-width epoch protocols must produce
	// byte-identical simulations — everything except the barrier line.
	for _, tc := range []struct {
		name string
		p    CityParams
	}{
		{"dense", func() CityParams { p := cityTestParams(); p.Shards = 4; p.Workers = 4; return p }()},
		{"sparse", citySparseParams()},
		{"bench", benchCityParams(8, 4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			adaptive := RunCity(tc.p)
			f := tc.p
			f.FixedEpochs = true
			fixed := RunCity(f)
			got, want := cityBytes(t, adaptive), cityBytes(t, fixed)
			if stripBarrierLine(got) != stripBarrierLine(want) {
				t.Fatalf("adaptive epochs diverged from fixed epochs:\n--- adaptive ---\n%s\n--- fixed ---\n%s", got, want)
			}
			if a, f := adaptive.Barrier, fixed.Barrier; a.BarrierRounds >= f.BarrierRounds || a.Dispatches >= f.Dispatches {
				t.Fatalf("adaptive barrier did not thin the protocol: adaptive %+v vs fixed %+v", a, f)
			}
		})
	}
}

// TestCityFusedMatchesClassicLinks is the differential golden for the
// analytic link fast path at city scale, on a ≥2-shard partition with both
// co-located and cross-shard MAP links: the fused and classic transmit
// paths must produce identical simulations — every per-domain row, every
// aggregate, and the per-role link utilization — while the fused run fires
// strictly fewer scheduler events.
func TestCityFusedMatchesClassicLinks(t *testing.T) {
	if !netsim.FusedLinks() {
		t.Skip("fusion disabled via NETSIM_FUSED=0; the comparison is vacuous")
	}
	p := cityTestParams()
	p.Shards = 4
	p.Workers = 2
	fused := RunCity(p)
	prev := netsim.SetFusedLinks(false)
	defer netsim.SetFusedLinks(prev)
	classic := RunCity(p)

	var fcsv, ccsv strings.Builder
	if err := fused.WriteCSV(&fcsv); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if err := classic.WriteCSV(&ccsv); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if fcsv.String() != ccsv.String() {
		t.Fatalf("per-domain results diverge:\n--- fused ---\n%s\n--- classic ---\n%s", fcsv.String(), ccsv.String())
	}
	type agg struct {
		Handoffs              int
		Grants, Refusals      uint64
		Lost                  [3]uint64
		MaxDelayMs, MeanDelay float64
		SessionsLeft          int
		DedupMH, DedupNAR     uint64
		DupPackets, TotalSent uint64
		CrossPorts            int
		Links                 []CityLinkUse
	}
	take := func(r CityResult) agg {
		return agg{r.Handoffs, r.Grants, r.Refusals, r.Lost, r.MaxDelayMs, r.MeanDelayMs,
			r.SessionsLeft, r.DedupMH, r.DedupNAR, r.DupPackets, r.TotalSent, r.CrossPorts, r.Links}
	}
	got, want := take(fused), take(classic)
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
		t.Fatalf("aggregates diverge:\n--- fused ---\n%+v\n--- classic ---\n%+v", got, want)
	}
	if fused.Events >= classic.Events {
		t.Fatalf("fused run fired %d events, classic %d: fusion did not reduce the event count", fused.Events, classic.Events)
	}
}

// TestCityFusedAirMatchesClassic is the radio twin of
// TestCityFusedMatchesClassicLinks: the analytic air transmit path must
// produce a simulation identical to the classic two-event radio — every
// per-domain row, every aggregate, the link utilization, and the air-plane
// counters — while firing strictly fewer scheduler events.
func TestCityFusedAirMatchesClassic(t *testing.T) {
	if !wireless.FusedAir() {
		t.Skip("air fusion disabled via WIRELESS_FUSED=0; the comparison is vacuous")
	}
	p := cityTestParams()
	p.Shards = 4
	p.Workers = 2
	fused := RunCity(p)
	prev := wireless.SetFusedAir(false)
	defer wireless.SetFusedAir(prev)
	classic := RunCity(p)

	var fcsv, ccsv strings.Builder
	if err := fused.WriteCSV(&fcsv); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if err := classic.WriteCSV(&ccsv); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if fcsv.String() != ccsv.String() {
		t.Fatalf("per-domain results diverge:\n--- fused ---\n%s\n--- classic ---\n%s", fcsv.String(), ccsv.String())
	}
	type agg struct {
		Handoffs              int
		Grants, Refusals      uint64
		Lost                  [3]uint64
		MaxDelayMs, MeanDelay float64
		SessionsLeft          int
		DedupMH, DedupNAR     uint64
		DupPackets, TotalSent uint64
		CrossPorts            int
		Links                 []CityLinkUse
		Air                   [4]uint64
	}
	take := func(r CityResult) agg {
		return agg{r.Handoffs, r.Grants, r.Refusals, r.Lost, r.MaxDelayMs, r.MeanDelayMs,
			r.SessionsLeft, r.DedupMH, r.DedupNAR, r.DupPackets, r.TotalSent, r.CrossPorts, r.Links,
			[4]uint64{r.AirDownSent, r.AirDownDrops, r.AirUpSent, r.AirUpDrops}}
	}
	got, want := take(fused), take(classic)
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
		t.Fatalf("aggregates diverge:\n--- fused ---\n%+v\n--- classic ---\n%+v", got, want)
	}
	if fused.Events >= classic.Events {
		t.Fatalf("fused air run fired %d events, classic %d: fusion did not reduce the event count", fused.Events, classic.Events)
	}
}

func TestCityAdaptiveReducesBarrierRounds(t *testing.T) {
	// The acceptance bar: ≥5× fewer synchronized rounds in the sparse
	// regime. The counts are pure functions of the model, so the exact
	// ratio is stable (measured ~10× on this config).
	p := citySparseParams()
	adaptive := RunCity(p)
	f := p
	f.FixedEpochs = true
	fixed := RunCity(f)
	if fixed.Barrier.BarrierRounds < 5*adaptive.Barrier.BarrierRounds {
		t.Fatalf("synchronized rounds reduced only %d→%d, want ≥5×",
			fixed.Barrier.BarrierRounds, adaptive.Barrier.BarrierRounds)
	}
	if adaptive.Barrier.SoloRounds == 0 || adaptive.Barrier.ElidedDispatches == 0 {
		t.Fatalf("adaptive stats %+v: expected solo rounds and elided dispatches", adaptive.Barrier)
	}
	if adaptive.ElidedFlushes == 0 {
		t.Fatalf("no flush was elided (flushes=%d)", adaptive.Flushes)
	}
	if fixed.Barrier.SoloRounds != 0 || fixed.Barrier.ElidedDispatches != 0 {
		t.Fatalf("fixed stats %+v: fixed mode must dispatch every shard every round", fixed.Barrier)
	}
}

func TestSpecsIdenticalAcrossEpochModes(t *testing.T) {
	// Runner metrics from the metro and city specs must not depend on the
	// epoch mode (metro never touches the shard group; city does, through
	// either protocol).
	cityP := CityParams{Domains: 4, HostsPerDomain: 25, MAPs: 2, Shards: 4, StaggerWindow: 5 * sim.Second}
	cityF := cityP
	cityF.FixedEpochs = true
	a, err := CitySpec(cityP).Run(9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CitySpec(cityF).Run(9)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("city spec metrics diverged across epoch modes:\n%v\nvs\n%v", a, b)
	}

	metroP := MetroParams{Hosts: []int{10, 50}}
	SetDefaultCityFixedEpochs(true)
	m1, err := MetroSpec(metroP).Run(9)
	SetDefaultCityFixedEpochs(false)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := MetroSpec(metroP).Run(9)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(m1) != fmt.Sprint(m2) {
		t.Fatalf("metro spec metrics diverged across epoch modes:\n%v\nvs\n%v", m1, m2)
	}
}

func TestCityWorkersDefaulting(t *testing.T) {
	// Both defaulting paths (applyDefaults and CitySpec) resolve through
	// cityWorkers: explicit > process default > fallback, clamped to the
	// shard count.
	defer SetDefaultCityWorkers(0)
	DefaultCityWorkers = 0
	if got := cityWorkers(3, 8, 5); got != 3 {
		t.Fatalf("explicit request = %d, want 3", got)
	}
	if got := cityWorkers(0, 8, 5); got != 5 {
		t.Fatalf("fallback = %d, want 5", got)
	}
	SetDefaultCityWorkers(6)
	if got := cityWorkers(0, 8, 5); got != 6 {
		t.Fatalf("process default = %d, want 6", got)
	}
	if got := cityWorkers(0, 2, 5); got != 2 {
		t.Fatalf("shard clamp = %d, want 2", got)
	}
	DefaultCityWorkers = 0
	p := CityParams{Shards: 4, Workers: 16}
	p.applyDefaults()
	if p.Workers != 4 {
		t.Fatalf("applyDefaults workers = %d, want clamp to 4 shards", p.Workers)
	}
}
