package scenario

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/inet"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// Fig46Params configures the data-rate sweep (Figure 4.6): one handoff
// under the enhanced scheme while the three flows' packet interval shrinks
// from 25 ms to 3 ms (51.2 → 426.7 kb/s per flow).
type Fig46Params struct {
	PoolSize int
	Alpha    int
	Seed     int64
	// Engine optionally reuses a simulation engine (see Params.Engine).
	Engine *sim.Engine
}

func (p *Fig46Params) applyDefaults() {
	if p.PoolSize == 0 {
		p.PoolSize = 20
	}
	if p.Alpha == 0 {
		p.Alpha = 6
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
}

// Fig46Row is one sweep point.
type Fig46Row struct {
	Interval sim.Time
	RateKbps float64
	// Lost[k] is flow k's loss count (F1 rt, F2 hp, F3 be).
	Lost [3]uint64
}

// Fig46Result holds the sweep.
type Fig46Result struct {
	Params Fig46Params
	Rows   []Fig46Row
}

// Fig46Intervals reproduces the thesis' x axis: 160-byte packets every
// 25, 23, 21, …, 3 ms (51.2 … 426.7 kb/s).
func Fig46Intervals() []sim.Time {
	var out []sim.Time
	for ms := 25; ms >= 3; ms -= 2 {
		out = append(out, sim.Time(ms)*sim.Millisecond)
	}
	return out
}

// RunFig46 executes the sweep.
func RunFig46(p Fig46Params) Fig46Result {
	p.applyDefaults()
	res := Fig46Result{Params: p}
	for _, interval := range Fig46Intervals() {
		tb := NewTestbed(Params{
			Scheme:        core.SchemeEnhanced,
			PoolSize:      p.PoolSize,
			Alpha:         p.Alpha,
			BufferRequest: p.PoolSize,
			Seed:          p.Seed,
			Engine:        p.Engine,
		})
		spec := func(c inet.Class) FlowSpec { return FlowSpec{Class: c, Size: 160, Interval: interval} }
		unit := tb.AddMobileHost(wireless.Linear{Start: 50, Speed: MHSpeed}, []FlowSpec{
			spec(inet.ClassRealTime),
			spec(inet.ClassHighPriority),
			spec(inet.ClassBestEffort),
		})
		tb.StartTraffic()
		if err := tb.Run(12 * sim.Second); err != nil {
			panic(fmt.Sprintf("fig4.6: %v", err))
		}
		tb.StopTraffic()
		if err := tb.Engine.Run(14 * sim.Second); err != nil {
			panic(fmt.Sprintf("fig4.6 drain: %v", err))
		}
		row := Fig46Row{
			Interval: interval,
			RateKbps: 160 * 8 / interval.Seconds() / 1000,
		}
		for k, id := range unit.Flows {
			row.Lost[k] = tb.Recorder.Flow(id).Lost()
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render prints the sweep as a text table.
func (r Fig46Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4.6 — packet loss per flow vs data rate (enhanced, buffer=%d, α=%d)\n\n",
		r.Params.PoolSize, r.Params.Alpha)
	fmt.Fprintf(&b, "%-12s%10s%10s%10s\n", "rate(kb/s)", "F1(rt)", "F2(hp)", "F3(be)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12.1f%10d%10d%10d\n", row.RateKbps, row.Lost[0], row.Lost[1], row.Lost[2])
	}
	return b.String()
}
