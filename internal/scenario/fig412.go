package scenario

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// TCPTraceParams configures the link-layer handoff TCP experiments
// (Figures 4.12–4.14).
type TCPTraceParams struct {
	// Buffered toggles the §3.2.2.4 buffering (Figure 4.13 vs 4.12).
	Buffered bool
	Seed     int64
	// Engine optionally reuses a simulation engine (see Params.Engine).
	Engine *sim.Engine
}

// TCPTraceResult holds the sequence and throughput traces of one run.
type TCPTraceResult struct {
	Params  TCPTraceParams
	Handoff core.HandoffRecord
	// Send/Ack are the sender-side traces, Recv the receiver-side one,
	// each windowed around the handoff.
	Send, Ack, Recv []stats.SeqSample
	// Goodput is the full-run receiver throughput series (100 ms buckets).
	Goodput []stats.Point
	// Timeouts is the sender's RTO count; Delivered the total in-order
	// bytes.
	Timeouts  uint64
	Delivered uint64
	// StallAfterDetach is the gap between link-down and the first segment
	// received afterwards.
	StallAfterDetach sim.Time
}

// RunTCPTrace executes one Figure 4.12/4.13 run and extracts the traces.
func RunTCPTrace(p TCPTraceParams) TCPTraceResult {
	tb := NewWLANTestbed(WLANParams{Buffered: p.Buffered, Seed: p.Seed, Engine: p.Engine})
	if err := tb.Run(20 * sim.Second); err != nil {
		panic(fmt.Sprintf("tcp trace: %v", err))
	}
	recs := tb.MH.Handoffs()
	if len(recs) == 0 {
		panic("tcp trace: no handoff occurred")
	}
	res := TCPTraceResult{
		Params:    p,
		Handoff:   recs[0],
		Goodput:   tb.Receiver.Goodput.Rate(),
		Timeouts:  tb.Sender.Timeouts(),
		Delivered: tb.Receiver.Delivered(),
	}
	lo := res.Handoff.Detached - 300*sim.Millisecond
	hi := res.Handoff.Attached + 2*sim.Second
	window := func(in []stats.SeqSample) []stats.SeqSample {
		var out []stats.SeqSample
		for _, s := range in {
			if s.At >= lo && s.At <= hi {
				out = append(out, s)
			}
		}
		return out
	}
	res.Send = window(tb.Sender.SendTrace.Samples())
	res.Ack = window(tb.Sender.AckTrace.Samples())
	res.Recv = window(tb.Receiver.RecvTrace.Samples())

	for _, s := range tb.Receiver.RecvTrace.Samples() {
		if s.At > res.Handoff.Detached {
			res.StallAfterDetach = s.At - res.Handoff.Detached
			break
		}
	}
	return res
}

// Render prints the sequence trace (decimated) and the stall summary —
// the text form of Figures 4.12/4.13.
func (r TCPTraceResult) Render() string {
	var b strings.Builder
	label := "without buffering (Fig 4.12)"
	if r.Params.Buffered {
		label = "proposed method (Fig 4.13)"
	}
	fmt.Fprintf(&b, "TCP sequence trace during a link-layer handoff, %s\n", label)
	fmt.Fprintf(&b, "blackout %v → %v; reception stall after detach: %v; RTO timeouts: %d\n\n",
		r.Handoff.Detached, r.Handoff.Attached, r.StallAfterDetach, r.Timeouts)
	fmt.Fprintf(&b, "%-12s%14s%14s\n", "t(s)", "recv seq", "ack seq")
	step := len(r.Recv)/30 + 1
	for i := 0; i < len(r.Recv); i += step {
		s := r.Recv[i]
		fmt.Fprintf(&b, "%-12.3f%14d%14d\n", s.At.Seconds(), s.Seq, ackAtOrBefore(r.Ack, s.At))
	}
	return b.String()
}

// RenderThroughput prints the Figure 4.14 series for one run.
func (r TCPTraceResult) RenderThroughput() string {
	var b strings.Builder
	label := "no buffer"
	if r.Params.Buffered {
		label = "buffer"
	}
	fmt.Fprintf(&b, "TCP throughput (%s), Mb/s per 100 ms bucket\n\n", label)
	for _, pt := range r.Goodput {
		if pt.At < 10*sim.Second || pt.At > 15*sim.Second {
			continue
		}
		fmt.Fprintf(&b, "%-8.1f%8.2f\n", pt.At.Seconds(), pt.Value/1e6)
	}
	return b.String()
}

func ackAtOrBefore(acks []stats.SeqSample, at sim.Time) uint64 {
	var last uint64
	for _, a := range acks {
		if a.At > at {
			break
		}
		last = a.Seq
	}
	return last
}
