package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/inet"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tcp"
	"repro/internal/wireless"
)

// NetWLAN is the single subnet of the Figure 4.11 topology.
const NetWLAN inet.NetID = 5

// Geometry of the Figure 4.11 topology: two access points under one access
// router, 100 m apart with 70 m radius (40 m overlap), host at 10 m/s.
const (
	WLANAPDistance = 100.0
	WLANAPRadius   = 70.0
)

// WLANParams configures the Figure 4.11 testbed.
type WLANParams struct {
	// Buffered selects the proposed §3.2.2.4 buffering; false reproduces
	// the plain link-layer handoff (Figure 4.12).
	Buffered bool
	// PoolSize is the router's buffer pool; zero selects 200 packets,
	// ample for one TCP window.
	PoolSize int
	// Alpha is the best-effort admission threshold.
	Alpha int
	// BufferRequest is the BI size; zero selects the pool size.
	BufferRequest int
	// L2HandoffDelay is the blackout (200 ms in the thesis).
	L2HandoffDelay sim.Time
	// RAInterval is the beacon period.
	RAInterval sim.Time
	// MSS is the TCP segment payload size.
	MSS int
	// NewReno enables partial-ACK recovery in the sender (ablation; the
	// thesis simulated classic Reno).
	NewReno bool
	// TransferBytes bounds the FTP transfer (zero: unlimited).
	TransferBytes uint64
	// ThroughputWindow buckets the Figure 4.14 goodput series. Zero
	// selects 100 ms.
	ThroughputWindow sim.Time
	// Seed drives beacon phases.
	Seed int64
	// Engine optionally reuses a simulation engine (see Params.Engine).
	Engine *sim.Engine
}

func (p *WLANParams) applyDefaults() {
	if p.PoolSize == 0 {
		p.PoolSize = 200
	}
	if p.BufferRequest == 0 {
		p.BufferRequest = p.PoolSize
	}
	if p.L2HandoffDelay == 0 {
		p.L2HandoffDelay = 200 * sim.Millisecond
	}
	if p.RAInterval == 0 {
		p.RAInterval = 500 * sim.Millisecond
	}
	if p.MSS == 0 {
		p.MSS = tcp.DefaultMSS
	}
	if p.ThroughputWindow == 0 {
		p.ThroughputWindow = 100 * sim.Millisecond
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
}

// WLANTestbed is the assembled Figure 4.11 network with one FTP/TCP
// connection from the wired correspondent node to the mobile host.
type WLANTestbed struct {
	Params   WLANParams
	Engine   *sim.Engine
	Topo     *netsim.Topology
	Medium   *wireless.Medium
	Recorder *stats.Recorder

	CN       *netsim.Host
	AR       *core.AccessRouter
	AP1, AP2 *wireless.AccessPoint
	MH       *core.MobileHost
	Station  *wireless.Station
	Sender   *tcp.Sender
	Receiver *tcp.Receiver
}

// NewWLANTestbed assembles the topology. The mobile host walks from inside
// AP1's cell through the overlap into AP2's cell; with the default motion
// the handover triggers around t ≈ 11.5 s, matching Figure 4.12.
func NewWLANTestbed(p WLANParams) *WLANTestbed {
	p.applyDefaults()
	engine := p.Engine
	if engine == nil {
		engine = sim.NewEngine()
	} else {
		engine.Reset()
	}
	topo := netsim.NewTopology(engine)
	medium := wireless.NewMedium(engine)
	rng := sim.NewRNG(p.Seed)
	recorder := stats.NewRecorder()

	cn := netsim.NewHost("cn", inet.Addr{Net: NetCN, Host: 1})
	arRouter := netsim.NewRouter("ar", inet.Addr{Net: NetWLAN, Host: 1})
	topo.Connect(cn, arRouter, netsim.LinkConfig{BandwidthBPS: coreBandwidth, Delay: 2 * sim.Millisecond})

	ap1 := wireless.NewAccessPoint("ap1", medium, wireless.APConfig{
		Pos: 0, Radius: WLANAPRadius, BandwidthBPS: airBandwidth, AirDelay: sim.Millisecond,
		ReturnUndeliverable: true,
	})
	ap2 := wireless.NewAccessPoint("ap2", medium, wireless.APConfig{
		Pos: WLANAPDistance, Radius: WLANAPRadius, BandwidthBPS: airBandwidth, AirDelay: sim.Millisecond,
		ReturnUndeliverable: true,
	})
	ap1Link := topo.Connect(arRouter, ap1, netsim.LinkConfig{BandwidthBPS: apBandwidth, Delay: sim.Millisecond / 2})
	ap2Link := topo.Connect(arRouter, ap2, netsim.LinkConfig{BandwidthBPS: apBandwidth, Delay: sim.Millisecond / 2})

	topo.ClaimNet(NetCN, cn)
	topo.ClaimNet(NetWLAN, arRouter)
	if err := topo.ComputeRoutes(); err != nil {
		panic(fmt.Sprintf("scenario: route computation failed: %v", err))
	}

	dir := core.NewDirectory()
	ar := core.NewAccessRouter(engine, arRouter, NetWLAN, dir, core.ARConfig{
		Scheme:   core.SchemeEnhanced,
		PoolSize: p.PoolSize,
		Alpha:    p.Alpha,
	})
	ar.AddAP("ap1", ap1Link.A())
	ar.AddAP("ap2", ap2Link.A())
	ar.OnDrop = func(pkt *inet.Packet, where string) { recorder.Dropped(pkt, where) }
	dataAirDrop := func(pkt *inet.Packet) {
		if pkt.Innermost().Proto != inet.ProtoControl {
			recorder.DroppedSite(pkt, stats.SiteAir)
		}
	}
	ap1.AirDropHook = dataAirDrop
	ap2.AirDropHook = dataAirDrop

	ap1.StartAdvertising(wireless.Advertisement{Router: arRouter.Addr(), Net: NetWLAN},
		p.RAInterval, rng.Uniform(0, p.RAInterval))
	ap2.StartAdvertising(wireless.Advertisement{Router: arRouter.Addr(), Net: NetWLAN},
		p.RAInterval, rng.Uniform(0, p.RAInterval))

	// The host enters the overlap (x=30) at t≈9.4 s and passes the
	// midpoint (x=50, where AP2 becomes closer) at t≈11.4 s.
	station := wireless.NewStation("mh", medium, wireless.Linear{Start: -64, Speed: MHSpeed},
		wireless.StationConfig{
			BandwidthBPS:   airBandwidth,
			AirDelay:       sim.Millisecond,
			L2HandoffDelay: p.L2HandoffDelay,
		})
	station.TxDropHook = func(pkt *inet.Packet) {
		if pkt.Innermost().Proto != inet.ProtoControl {
			recorder.DroppedSite(pkt, stats.SiteAirUplink)
		}
	}
	bufReq := 0
	if p.Buffered {
		bufReq = p.BufferRequest
	}
	mh := core.NewMobileHost(engine, station, inet.Unspecified, inet.Unspecified, core.MHConfig{
		HostID:        7,
		Scheme:        core.SchemeEnhanced,
		BufferRequest: bufReq,
	})
	mh.Attach(ap1, ar.Addr(), NetWLAN)
	ar.AttachResident(mh.LCoA(), ap1Link.A())

	flow := topo.NewFlowID()
	sender := tcp.NewSender(engine, tcp.SenderConfig{
		Src:        cn.Addr(),
		Dst:        mh.LCoA(),
		Flow:       flow,
		MSS:        p.MSS,
		NewReno:    p.NewReno,
		LimitBytes: p.TransferBytes,
	}, cn.Send, topo.NewPacketID)
	receiver := tcp.NewReceiver(engine, mh.LCoA(), cn.Addr(), flow,
		mh.SendData, p.ThroughputWindow)

	cn.Receive = func(pkt *inet.Packet) {
		if seg, ok := pkt.Payload.(*tcp.Segment); ok {
			sender.HandleAck(seg)
		}
	}
	mh.OnDeliver = func(pkt *inet.Packet) {
		if seg, ok := pkt.Payload.(*tcp.Segment); ok {
			receiver.Handle(seg)
		}
	}

	return &WLANTestbed{
		Params:   p,
		Engine:   engine,
		Topo:     topo,
		Medium:   medium,
		Recorder: recorder,
		CN:       cn,
		AR:       ar,
		AP1:      ap1,
		AP2:      ap2,
		MH:       mh,
		Station:  station,
		Sender:   sender,
		Receiver: receiver,
	}
}

// Run starts the transfer and advances the simulation to the horizon.
func (tb *WLANTestbed) Run(until sim.Time) error {
	tb.Sender.Start()
	err := tb.Engine.Run(until)
	tb.Sender.Stop()
	return err
}
