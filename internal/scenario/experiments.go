package scenario

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// Renderer is implemented by every experiment result.
type Renderer interface {
	Render() string
}

// Experiment binds a figure of the thesis to the code that regenerates it.
type Experiment struct {
	// ID is the figure number, e.g. "4.2".
	ID string
	// Title summarizes what the figure shows.
	Title string
	// Run executes the experiment and returns a renderable result.
	Run func() Renderer
}

// Experiments lists every reproduced figure in thesis order.
func Experiments() []Experiment {
	return []Experiment{
		{
			ID:    "4.2",
			Title: "Buffer utilization of different handoff mechanisms",
			Run:   func() Renderer { return RunFig42(Fig42Params{}) },
		},
		{
			ID:    "4.3",
			Title: "Packet drop rate, original fast handover (buffer=40)",
			Run: func() Renderer {
				return RunDropTrace(DropTraceParams{
					Scheme: core.SchemeFHOriginal, PoolSize: 40, Handoffs: 100,
				})
			},
		},
		{
			ID:    "4.4",
			Title: "Packet drop rate, proposed method, classification disabled (buffer=20)",
			Run: func() Renderer {
				return RunDropTrace(DropTraceParams{
					Scheme: core.SchemeDual, PoolSize: 20, Handoffs: 100,
				})
			},
		},
		{
			ID:    "4.5",
			Title: "Packet drop rate, proposed method, classification enabled (buffer=20)",
			Run: func() Renderer {
				return RunDropTrace(DropTraceParams{
					Scheme: core.SchemeEnhanced, PoolSize: 20, Alpha: 6, Handoffs: 100,
				})
			},
		},
		{
			ID:    "4.6",
			Title: "Packet loss for different data rates, proposed method",
			Run:   func() Renderer { return RunFig46(Fig46Params{}) },
		},
		{
			ID:    "4.7",
			Title: "End-to-end delay, original fast handover (buffer=40)",
			Run: func() Renderer {
				return RunDelayTrace(DelayTraceParams{
					Scheme: core.SchemeFHOriginal, PoolSize: 40,
				})
			},
		},
		{
			ID:    "4.8",
			Title: "End-to-end delay, proposed method, classification disabled (buffer=20)",
			Run: func() Renderer {
				return RunDelayTrace(DelayTraceParams{
					Scheme: core.SchemeDual, PoolSize: 20,
				})
			},
		},
		{
			ID:    "4.9",
			Title: "End-to-end delay, classification enabled, 2 ms AR link",
			Run: func() Renderer {
				return RunDelayTrace(DelayTraceParams{
					Scheme: core.SchemeEnhanced, PoolSize: 60, Alpha: 2,
					ARLinkDelay: 2 * sim.Millisecond,
				})
			},
		},
		{
			ID:    "4.10",
			Title: "End-to-end delay, classification enabled, 50 ms AR link",
			Run: func() Renderer {
				return RunDelayTrace(DelayTraceParams{
					Scheme: core.SchemeEnhanced, PoolSize: 60, Alpha: 2,
					ARLinkDelay: 50 * sim.Millisecond,
				})
			},
		},
		{
			ID:    "4.12",
			Title: "TCP sequence during a link-layer handoff, without buffering",
			Run:   func() Renderer { return RunTCPTrace(TCPTraceParams{Buffered: false}) },
		},
		{
			ID:    "4.13",
			Title: "TCP sequence during a link-layer handoff, proposed method",
			Run:   func() Renderer { return RunTCPTrace(TCPTraceParams{Buffered: true}) },
		},
		{
			ID:    "4.14",
			Title: "TCP throughput during a link-layer handoff",
			Run:   func() Renderer { return RunFig414() },
		},
		{
			ID:    "baseline",
			Title: "Chapter 2 motivation: the mobility-management ladder",
			Run:   func() Renderer { return RunBaseline() },
		},
		{
			ID:    "latency",
			Title: "Handover latency breakdown (reference [12] analysis style)",
			Run:   func() Renderer { return RunLatencyBreakdown(10, 1) },
		},
	}
}

// Fig414Result pairs the buffered and unbuffered throughput series.
type Fig414Result struct {
	Buffered   TCPTraceResult
	Unbuffered TCPTraceResult
}

// RunFig414 runs both Figure 4.14 curves.
func RunFig414() Fig414Result {
	return Fig414Result{
		Buffered:   RunTCPTrace(TCPTraceParams{Buffered: true}),
		Unbuffered: RunTCPTrace(TCPTraceParams{Buffered: false}),
	}
}

// Render prints both curves side by side.
func (r Fig414Result) Render() string {
	return r.Buffered.RenderThroughput() + "\n" + r.Unbuffered.RenderThroughput()
}
