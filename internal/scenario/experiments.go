package scenario

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// Renderer is implemented by every experiment result.
type Renderer interface {
	Render() string
}

// Experiment binds a figure of the thesis to the code that regenerates it.
type Experiment struct {
	// ID is the figure number, e.g. "4.2".
	ID string
	// Title summarizes what the figure shows.
	Title string
	// Run executes the experiment under the thesis' default seed and
	// returns a renderable result. It is RunSeeded(0).
	Run func() Renderer
	// RunSeeded executes the experiment under a caller-chosen seed, for
	// the Monte-Carlo runner. Seed 0 selects the thesis default (seed 1),
	// keeping the canonical outputs identical.
	RunSeeded func(seed int64) Renderer
}

// Experiments lists every reproduced figure in thesis order.
func Experiments() []Experiment {
	exps := []Experiment{
		{
			ID:        "4.2",
			Title:     "Buffer utilization of different handoff mechanisms",
			RunSeeded: func(seed int64) Renderer { return RunFig42(Fig42Params{Seed: seed}) },
		},
		{
			ID:    "4.3",
			Title: "Packet drop rate, original fast handover (buffer=40)",
			RunSeeded: func(seed int64) Renderer {
				return RunDropTrace(DropTraceParams{
					Scheme: core.SchemeFHOriginal, PoolSize: 40, Handoffs: 100, Seed: seed,
				})
			},
		},
		{
			ID:    "4.4",
			Title: "Packet drop rate, proposed method, classification disabled (buffer=20)",
			RunSeeded: func(seed int64) Renderer {
				return RunDropTrace(DropTraceParams{
					Scheme: core.SchemeDual, PoolSize: 20, Handoffs: 100, Seed: seed,
				})
			},
		},
		{
			ID:    "4.5",
			Title: "Packet drop rate, proposed method, classification enabled (buffer=20)",
			RunSeeded: func(seed int64) Renderer {
				return RunDropTrace(DropTraceParams{
					Scheme: core.SchemeEnhanced, PoolSize: 20, Alpha: 6, Handoffs: 100, Seed: seed,
				})
			},
		},
		{
			ID:        "4.6",
			Title:     "Packet loss for different data rates, proposed method",
			RunSeeded: func(seed int64) Renderer { return RunFig46(Fig46Params{Seed: seed}) },
		},
		{
			ID:    "4.7",
			Title: "End-to-end delay, original fast handover (buffer=40)",
			RunSeeded: func(seed int64) Renderer {
				return RunDelayTrace(DelayTraceParams{
					Scheme: core.SchemeFHOriginal, PoolSize: 40, Seed: seed,
				})
			},
		},
		{
			ID:    "4.8",
			Title: "End-to-end delay, proposed method, classification disabled (buffer=20)",
			RunSeeded: func(seed int64) Renderer {
				return RunDelayTrace(DelayTraceParams{
					Scheme: core.SchemeDual, PoolSize: 20, Seed: seed,
				})
			},
		},
		{
			ID:    "4.9",
			Title: "End-to-end delay, classification enabled, 2 ms AR link",
			RunSeeded: func(seed int64) Renderer {
				return RunDelayTrace(DelayTraceParams{
					Scheme: core.SchemeEnhanced, PoolSize: 60, Alpha: 2,
					ARLinkDelay: 2 * sim.Millisecond, Seed: seed,
				})
			},
		},
		{
			ID:    "4.10",
			Title: "End-to-end delay, classification enabled, 50 ms AR link",
			RunSeeded: func(seed int64) Renderer {
				return RunDelayTrace(DelayTraceParams{
					Scheme: core.SchemeEnhanced, PoolSize: 60, Alpha: 2,
					ARLinkDelay: 50 * sim.Millisecond, Seed: seed,
				})
			},
		},
		{
			ID:    "4.12",
			Title: "TCP sequence during a link-layer handoff, without buffering",
			RunSeeded: func(seed int64) Renderer {
				return RunTCPTrace(TCPTraceParams{Buffered: false, Seed: seed})
			},
		},
		{
			ID:    "4.13",
			Title: "TCP sequence during a link-layer handoff, proposed method",
			RunSeeded: func(seed int64) Renderer {
				return RunTCPTrace(TCPTraceParams{Buffered: true, Seed: seed})
			},
		},
		{
			ID:        "4.14",
			Title:     "TCP throughput during a link-layer handoff",
			RunSeeded: func(seed int64) Renderer { return RunFig414Seeded(seed) },
		},
		{
			ID:        "baseline",
			Title:     "Chapter 2 motivation: the mobility-management ladder",
			RunSeeded: func(seed int64) Renderer { return RunBaselineSeed(seed) },
		},
		{
			ID:        "latency",
			Title:     "Handover latency breakdown (reference [12] analysis style)",
			RunSeeded: func(seed int64) Renderer { return RunLatencyBreakdown(10, seed) },
		},
		{
			ID:        "loss",
			Title:     "Handoff resilience under injected control-plane loss",
			RunSeeded: func(seed int64) Renderer { return RunLossSweep(LossSweepParams{Seed: seed}) },
		},
		{
			ID:        "metro",
			Title:     "Metro-scale mass handoff: shared buffer pools under thousands of hosts",
			RunSeeded: func(seed int64) Renderer { return RunMetro(MetroParams{Seed: seed}) },
		},
		{
			ID:    "drop-sfn",
			Title: "Packet drop rate, SafetyNet bicast with selective delivery (no AR buffering)",
			RunSeeded: func(seed int64) Renderer {
				return RunDropTrace(DropTraceParams{
					Scheme: core.SchemeSafetyNet, PoolSize: 40, Handoffs: 100, Seed: seed,
				})
			},
		},
		{
			ID:    "delay-sfn",
			Title: "End-to-end delay, SafetyNet bicast with selective delivery",
			RunSeeded: func(seed int64) Renderer {
				return RunDelayTrace(DelayTraceParams{
					Scheme: core.SchemeSafetyNet, PoolSize: 40, Seed: seed,
				})
			},
		},
		{
			ID:        "city",
			Title:     "Sharded city-scale handoff wave: 50 AR domains, 100k hosts, parallel shards",
			RunSeeded: func(seed int64) Renderer { return RunCity(CityParams{Seed: seed}) },
		},
	}
	for i := range exps {
		runSeeded := exps[i].RunSeeded
		exps[i].Run = func() Renderer { return runSeeded(0) }
	}
	return exps
}

// Fig414Result pairs the buffered and unbuffered throughput series.
type Fig414Result struct {
	Buffered   TCPTraceResult
	Unbuffered TCPTraceResult
}

// RunFig414 runs both Figure 4.14 curves under the thesis' default seed.
func RunFig414() Fig414Result { return RunFig414Seeded(0) }

// RunFig414Seeded runs both Figure 4.14 curves under a caller-chosen
// seed (0 selects the thesis default).
func RunFig414Seeded(seed int64) Fig414Result {
	return Fig414Result{
		Buffered:   RunTCPTrace(TCPTraceParams{Buffered: true, Seed: seed}),
		Unbuffered: RunTCPTrace(TCPTraceParams{Buffered: false, Seed: seed}),
	}
}

// Render prints both curves side by side.
func (r Fig414Result) Render() string {
	return r.Buffered.RenderThroughput() + "\n" + r.Unbuffered.RenderThroughput()
}
