package scenario

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/inet"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// Fig42Params configures the buffer-utilization experiment (Figure 4.2):
// N mobile hosts, each with one 64 kb/s audio flow, hand off
// simultaneously; the total packet drops are compared across buffering
// placements.
type Fig42Params struct {
	// MaxHosts sweeps 1..MaxHosts (20 in the thesis).
	MaxHosts int
	// PoolSize is each router's buffer pool (50 in the thesis' example).
	PoolSize int
	// BufferRequest is each host's per-handoff buffering need. Under the
	// dual scheme the request is split across the two routers (half
	// each), which is what doubles the serviceable host count. The
	// default of 12 covers one blackout's demand (~10 packets) with
	// margin.
	BufferRequest int
	// Seed drives beacon phases.
	Seed int64
	// Engine optionally reuses a simulation engine across the sweep's
	// runs (see Params.Engine).
	Engine *sim.Engine
}

func (p *Fig42Params) applyDefaults() {
	if p.MaxHosts == 0 {
		p.MaxHosts = 20
	}
	if p.PoolSize == 0 {
		p.PoolSize = 50
	}
	if p.BufferRequest == 0 {
		p.BufferRequest = 12
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
}

// Fig42Schemes lists the four compared buffering placements, in the
// thesis' legend order.
var Fig42Schemes = []struct {
	Label  string
	Scheme core.Scheme
}{
	{"NAR", core.SchemeFHOriginal},
	{"PAR", core.SchemePAROnly},
	{"DUAL", core.SchemeDual},
	{"FH", core.SchemeFHNoBuffer},
}

// Fig42Result holds drops per scheme per host count.
type Fig42Result struct {
	Params Fig42Params
	// Drops[label][n-1] is the total packet drop count with n hosts.
	Drops map[string][]uint64
}

// RunFig42 executes the sweep.
func RunFig42(p Fig42Params) Fig42Result {
	p.applyDefaults()
	res := Fig42Result{
		Params: p,
		Drops:  make(map[string][]uint64, len(Fig42Schemes)),
	}
	for _, sc := range Fig42Schemes {
		series := make([]uint64, 0, p.MaxHosts)
		for n := 1; n <= p.MaxHosts; n++ {
			series = append(series, runFig42Once(p, sc.Scheme, n))
		}
		res.Drops[sc.Label] = series
	}
	return res
}

// runFig42Once runs one simultaneous-handoff scenario and returns total
// lost packets.
func runFig42Once(p Fig42Params, scheme core.Scheme, hosts int) uint64 {
	request := p.BufferRequest
	if scheme == core.SchemeDual || scheme == core.SchemeEnhanced {
		// Dual buffering splits the demand across the two routers.
		request = (p.BufferRequest + 1) / 2
	}
	tb := NewTestbed(Params{
		Scheme:        scheme,
		PoolSize:      p.PoolSize,
		BufferRequest: request,
		Seed:          p.Seed,
		Engine:        p.Engine,
	})
	for i := 0; i < hosts; i++ {
		tb.AddMobileHost(wireless.Linear{Start: 50, Speed: MHSpeed}, []FlowSpec{
			AudioFlow(inet.ClassUnspecified),
		})
	}
	tb.StartTraffic()
	if err := tb.Run(12 * sim.Second); err != nil {
		panic(fmt.Sprintf("fig4.2: %v", err))
	}
	tb.StopTraffic()
	if err := tb.Engine.Run(14 * sim.Second); err != nil {
		panic(fmt.Sprintf("fig4.2 drain: %v", err))
	}
	return tb.Recorder.TotalLost()
}

// MaxLossFree returns the largest host count a scheme served without
// dropping anything.
func (r Fig42Result) MaxLossFree(label string) int {
	best := 0
	for i, d := range r.Drops[label] {
		if d == 0 {
			best = i + 1
		} else {
			break
		}
	}
	return best
}

// Render prints the figure as a text table (hosts × schemes).
func (r Fig42Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4.2 — buffer utilization: total packet drops vs simultaneous handoffs\n")
	fmt.Fprintf(&b, "(pool %d packets per AR, %d packets requested per host)\n\n",
		r.Params.PoolSize, r.Params.BufferRequest)
	fmt.Fprintf(&b, "%-6s", "hosts")
	for _, sc := range Fig42Schemes {
		fmt.Fprintf(&b, "%8s", sc.Label)
	}
	b.WriteByte('\n')
	for n := 1; n <= r.Params.MaxHosts; n++ {
		fmt.Fprintf(&b, "%-6d", n)
		for _, sc := range Fig42Schemes {
			fmt.Fprintf(&b, "%8d", r.Drops[sc.Label][n-1])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "\nloss-free capacity: NAR=%d PAR=%d DUAL=%d FH=%d\n",
		r.MaxLossFree("NAR"), r.MaxLossFree("PAR"), r.MaxLossFree("DUAL"), r.MaxLossFree("FH"))
	return b.String()
}
