package scenario

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/inet"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// DropTraceParams configures the cumulative-drop experiments (Figures
// 4.3–4.5): one mobile host bounces between the two access routers while
// three flows of different classes stream to it; cumulative per-flow
// losses are sampled after every handoff.
type DropTraceParams struct {
	// Scheme and buffer sizing distinguish the three figures:
	//   Fig 4.3: SchemeFHOriginal, PoolSize 40
	//   Fig 4.4: SchemeDual,      PoolSize 20 (classification disabled)
	//   Fig 4.5: SchemeEnhanced,  PoolSize 20 (classification enabled)
	Scheme   core.Scheme
	PoolSize int
	// Alpha is the PAR best-effort admission threshold (enhanced scheme).
	Alpha int
	// Handoffs is the number of handoffs to record (100 in the thesis).
	Handoffs int
	// Interval is the per-flow packet spacing. The thesis nominally uses
	// 64 kb/s flows (20 ms), whose blackout demand (≈30 packets) fits the
	// nominal buffers and never drops in this simulator; the default is
	// therefore 10 ms (128 kb/s), which recreates the thesis' per-handoff
	// buffer pressure. See EXPERIMENTS.md.
	Interval sim.Time
	Seed     int64
	// Engine optionally reuses a simulation engine (see Params.Engine).
	Engine *sim.Engine
}

func (p *DropTraceParams) applyDefaults() {
	if p.Scheme == 0 {
		p.Scheme = core.SchemeFHOriginal
	}
	if p.PoolSize == 0 {
		p.PoolSize = 40
	}
	if p.Handoffs == 0 {
		p.Handoffs = 100
	}
	if p.Interval == 0 {
		p.Interval = 10 * sim.Millisecond
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
}

// DropTraceResult holds cumulative per-class losses after each handoff.
type DropTraceResult struct {
	Params DropTraceParams
	// Cumulative[k][i] is flow k's (F1 real-time, F2 high-priority, F3
	// best-effort) cumulative loss after handoff i+1.
	Cumulative [3][]uint64
	// SafetyNet bandwidth-overhead accounting (zero for the buffering
	// schemes): anchor duplicates, total sends, and where the redundant
	// copies were suppressed.
	DupPackets uint64
	DupBytes   uint64
	DedupMH    uint64
	DedupNAR   uint64
	TotalSent  uint64
}

// RunDropTrace executes one of the Figure 4.3–4.5 scenarios.
func RunDropTrace(p DropTraceParams) DropTraceResult {
	p.applyDefaults()
	res := DropTraceResult{Params: p}

	bufReq := p.PoolSize // a single host may claim the whole pool
	tb := NewTestbed(Params{
		Scheme:        p.Scheme,
		PoolSize:      p.PoolSize,
		Alpha:         p.Alpha,
		BufferRequest: bufReq,
		Seed:          p.Seed,
		Engine:        p.Engine,
	})
	spec := func(c inet.Class) FlowSpec { return FlowSpec{Class: c, Size: 160, Interval: p.Interval} }
	unit := tb.AddMobileHost(wireless.PingPong{A: 20, B: 192, Speed: MHSpeed}, []FlowSpec{
		spec(inet.ClassRealTime),
		spec(inet.ClassHighPriority),
		spec(inet.ClassBestEffort),
	})

	done := 0
	unit.MH.OnHandoffDone = func(rec core.HandoffRecord) {
		if done >= p.Handoffs {
			return
		}
		done++
		// Sample once the release has drained (well before the next leg).
		tb.Engine.Schedule(2*sim.Second, func() {
			for k, id := range unit.Flows {
				res.Cumulative[k] = append(res.Cumulative[k], tb.Recorder.Flow(id).Lost())
			}
		})
		if done == p.Handoffs {
			// Enough handoffs: stop after the final sample lands.
			tb.Engine.Schedule(3*sim.Second, tb.Engine.Stop)
		}
	}

	tb.StartTraffic()
	// Each ping-pong leg takes 17.2 s; allow slack.
	horizon := sim.Time(p.Handoffs+3) * 18 * sim.Second
	if err := tb.Engine.Run(horizon); err != nil && err != sim.ErrStopped {
		panic(fmt.Sprintf("drop trace: %v", err))
	}
	res.DupPackets = tb.Recorder.DupPackets()
	res.DupBytes = tb.Recorder.DupBytes()
	res.DedupMH = tb.Recorder.DedupDiscardsMH()
	res.DedupNAR = tb.Recorder.DedupDiscardsNAR()
	res.TotalSent = tb.Recorder.TotalSent()
	return res
}

// Final returns each flow's loss count after the last recorded handoff.
func (r DropTraceResult) Final() [3]uint64 {
	var out [3]uint64
	for k := range r.Cumulative {
		if n := len(r.Cumulative[k]); n > 0 {
			out[k] = r.Cumulative[k][n-1]
		}
	}
	return out
}

// Handoffs returns how many handoffs were recorded.
func (r DropTraceResult) Handoffs() int { return len(r.Cumulative[0]) }

// Render prints the cumulative-drop curves as a text table, decimated to
// every fifth handoff.
func (r DropTraceResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cumulative packet drops per flow vs handoffs (%s, buffer=%d)\n\n",
		r.Params.Scheme, r.Params.PoolSize)
	fmt.Fprintf(&b, "%-9s%10s%10s%10s\n", "handoffs", "F1(rt)", "F2(hp)", "F3(be)")
	n := r.Handoffs()
	for i := 0; i < n; i++ {
		if (i+1)%5 != 0 && i != 0 && i != n-1 {
			continue
		}
		fmt.Fprintf(&b, "%-9d%10d%10d%10d\n", i+1,
			r.Cumulative[0][i], r.Cumulative[1][i], r.Cumulative[2][i])
	}
	// The bandwidth-overhead footer only exists for SafetyNet, keeping the
	// Figure 4.3–4.5 renders byte-identical to the pre-SafetyNet output.
	if r.Params.Scheme == core.SchemeSafetyNet {
		ratio := 0.0
		if r.TotalSent > 0 {
			ratio = float64(r.DupPackets) / float64(r.TotalSent)
		}
		fmt.Fprintf(&b, "\nbicast overhead: %d duplicate packets (%d bytes wired, %.3f per packet sent); dedup %d at MH, %d at NAR\n",
			r.DupPackets, r.DupBytes, ratio, r.DedupMH, r.DedupNAR)
	}
	return b.String()
}
