package scenario

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/runner"
)

func TestSpecsUniqueAndComplete(t *testing.T) {
	seen := make(map[string]bool)
	for _, spec := range Specs() {
		if spec.Name() == "" {
			t.Fatal("spec with empty name")
		}
		if seen[spec.Name()] {
			t.Fatalf("duplicate spec %q", spec.Name())
		}
		seen[spec.Name()] = true
	}
	for _, want := range []string{"fig4.2", "fig4.3", "fig4.7", "fig4.12", "baseline", "latency"} {
		if !seen[want] {
			t.Errorf("spec %q missing", want)
		}
	}
}

func TestSpecByName(t *testing.T) {
	spec, err := SpecByName("baseline")
	if err != nil || spec.Name() != "baseline" {
		t.Fatalf("SpecByName(baseline) = %v, %v", spec, err)
	}
	if _, err := SpecByName("fig9.9"); err == nil {
		t.Fatal("unknown spec accepted")
	}
}

func TestBaselineSpecDeterministic(t *testing.T) {
	spec, err := SpecByName("baseline")
	if err != nil {
		t.Fatal(err)
	}
	a, err := spec.Run(77)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Run(77)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%v\nvs\n%v", a, b)
	}
	if a["lost_enhanced"] >= a["lost_plain_mip"] {
		t.Errorf("enhanced scheme (%g lost) should beat plain Mobile IP (%g lost)",
			a["lost_enhanced"], a["lost_plain_mip"])
	}
}

// TestBaselineSpecUnderPool is the end-to-end determinism check the
// runner exists for: fanning the same root seed across different worker
// counts must yield identical aggregates.
func TestBaselineSpecUnderPool(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-replica scenario run is slow")
	}
	spec, err := SpecByName("baseline")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *runner.Result {
		res, err := runner.NewPool(workers).Run(context.Background(), spec, 3, 11)
		if err != nil {
			t.Fatalf("pool run (workers=%d): %v", workers, err)
		}
		if res.Failed() != 0 {
			t.Fatalf("workers=%d: %d replicas failed, first: %v", workers, res.Failed(), res.FirstErr())
		}
		return res
	}
	serial := run(1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		parallel := run(workers)
		if !reflect.DeepEqual(serial.Metrics, parallel.Metrics) {
			t.Fatalf("aggregates diverged between 1 and %d workers:\n%+v\nvs\n%+v",
				workers, serial.Metrics, parallel.Metrics)
		}
		for i := range serial.Replicas {
			if !reflect.DeepEqual(serial.Replicas[i].Metrics, parallel.Replicas[i].Metrics) {
				t.Fatalf("replica %d metrics diverged at %d workers", i, workers)
			}
		}
	}
}

// TestScratchSpecMatchesPlainRun pins the ScratchSpec contract: a
// worker's reused calendar engine must reproduce bit-for-bit the metrics
// of a fresh per-replica engine, including when a seed repeats (which
// would expose state leaking through the scratch).
func TestScratchSpecMatchesPlainRun(t *testing.T) {
	spec, err := SpecByName("baseline")
	if err != nil {
		t.Fatal(err)
	}
	ss, ok := spec.(runner.ScratchSpec)
	if !ok {
		t.Fatal("baseline spec does not implement runner.ScratchSpec")
	}
	scratch := ss.NewScratch()
	for _, seed := range []int64{3, 99, 3} {
		plain, err := spec.Run(seed)
		if err != nil {
			t.Fatalf("plain run (seed %d): %v", seed, err)
		}
		got, err := ss.RunScratch(scratch, seed)
		if err != nil {
			t.Fatalf("scratch run (seed %d): %v", seed, err)
		}
		if !reflect.DeepEqual(plain, got) {
			t.Fatalf("seed %d: scratch run diverged from plain run:\n%v\nvs\n%v", seed, plain, got)
		}
	}
}
