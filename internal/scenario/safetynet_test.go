package scenario

import (
	"testing"

	"repro/internal/core"
	"repro/internal/inet"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// TestSafetyNetHandoffLossFree is the scheme's headline property on the
// reference testbed: across repeated handoffs the bicast covers the
// blackout without either access router claiming pool space, at the cost
// of measurable duplicate traffic on the wired side.
func TestSafetyNetHandoffLossFree(t *testing.T) {
	res := RunDropTrace(DropTraceParams{Scheme: core.SchemeSafetyNet, PoolSize: 40, Handoffs: 6})
	if got := res.Handoffs(); got != 6 {
		t.Fatalf("recorded %d handoffs, want 6", got)
	}
	for k, final := range res.Final() {
		if final != 0 {
			t.Errorf("flow %d lost %d packets, want 0", k+1, final)
		}
	}
	if res.DupPackets == 0 {
		t.Error("no bicast duplicates emitted")
	}
	if res.DupBytes == 0 {
		t.Error("no duplicate bytes counted")
	}
	if res.DedupMH == 0 && res.DedupNAR == 0 {
		t.Error("no duplicate was ever suppressed anywhere")
	}
}

// TestSafetyNetClaimsNoPoolSpace pins the zero-buffer-occupancy half of
// the tradeoff: a full handoff cycle under SafetyNet must leave both
// routers' pool counters untouched (no grants, no refusals), with the
// hold window living entirely outside the pool — so even a pool far too
// small for the blackout demand loses nothing.
func TestSafetyNetClaimsNoPoolSpace(t *testing.T) {
	tb := NewTestbed(Params{Scheme: core.SchemeSafetyNet, PoolSize: 4, BufferRequest: 4})
	unit := tb.AddMobileHost(wireless.PingPong{A: 20, B: 192, Speed: MHSpeed}, []FlowSpec{
		{Class: inet.ClassRealTime, Size: 160, Interval: 10 * sim.Millisecond},
	})
	done := 0
	unit.MH.OnHandoffDone = func(core.HandoffRecord) {
		if done++; done == 4 {
			tb.Engine.Schedule(2*sim.Second, tb.Engine.Stop)
		}
	}
	tb.StartTraffic()
	if err := tb.Engine.Run(8 * 18 * sim.Second); err != nil && err != sim.ErrStopped {
		t.Fatal(err)
	}
	tb.StopTraffic()

	if lost := tb.Recorder.Flow(unit.Flows[0]).Lost(); lost != 0 {
		t.Errorf("lost %d packets with a tiny pool, want 0", lost)
	}
	for _, ar := range []*core.AccessRouter{tb.PAR, tb.NAR} {
		if g := ar.PoolGrants(); g != 0 {
			t.Errorf("%v granted pool space %d times, want 0", ar, g)
		}
		if r := ar.PoolRefusals(); r != 0 {
			t.Errorf("%v refused pool space %d times, want 0", ar, r)
		}
	}
	if tb.NAR.BicastHeld()+tb.PAR.BicastHeld() == 0 {
		t.Error("no packet ever entered a bicast hold window")
	}
}
