package scenario

import (
	"encoding/csv"
	"io"
	"strconv"
)

// CSVWriter is implemented by experiment results that can emit their
// figure's data points as CSV, for plotting outside this repository.
type CSVWriter interface {
	WriteCSV(w io.Writer) error
}

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func itoa[T ~uint64 | ~int | ~int64](v T) string { return strconv.FormatInt(int64(v), 10) }

// WriteCSV emits hosts × scheme drop counts (Figure 4.2).
func (r Fig42Result) WriteCSV(w io.Writer) error {
	header := []string{"hosts"}
	for _, sc := range Fig42Schemes {
		header = append(header, sc.Label)
	}
	var rows [][]string
	for n := 1; n <= r.Params.MaxHosts; n++ {
		row := []string{itoa(n)}
		for _, sc := range Fig42Schemes {
			row = append(row, itoa(r.Drops[sc.Label][n-1]))
		}
		rows = append(rows, row)
	}
	return writeCSV(w, header, rows)
}

// WriteCSV emits cumulative per-class drops per handoff (Figures 4.3–4.5).
func (r DropTraceResult) WriteCSV(w io.Writer) error {
	header := []string{"handoff", "f1_realtime", "f2_highpriority", "f3_besteffort"}
	var rows [][]string
	for i := 0; i < r.Handoffs(); i++ {
		rows = append(rows, []string{
			itoa(i + 1),
			itoa(r.Cumulative[0][i]), itoa(r.Cumulative[1][i]), itoa(r.Cumulative[2][i]),
		})
	}
	return writeCSV(w, header, rows)
}

// WriteCSV emits per-rate per-class losses (Figure 4.6).
func (r Fig46Result) WriteCSV(w io.Writer) error {
	header := []string{"rate_kbps", "f1_realtime", "f2_highpriority", "f3_besteffort"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			strconv.FormatFloat(row.RateKbps, 'f', 1, 64),
			itoa(row.Lost[0]), itoa(row.Lost[1]), itoa(row.Lost[2]),
		})
	}
	return writeCSV(w, header, rows)
}

// WriteCSV emits (seq, per-class delay in ms) samples (Figures 4.7–4.10).
func (r DelayTraceResult) WriteCSV(w io.Writer) error {
	header := []string{"seq", "f1_delay_ms", "f2_delay_ms", "f3_delay_ms"}
	type row struct{ d [3]float64 }
	rows := make(map[uint32]*row)
	var seqs []uint32
	for k := range r.Samples {
		for _, s := range r.Samples[k] {
			rw, ok := rows[s.Seq]
			if !ok {
				rw = &row{}
				rows[s.Seq] = rw
				seqs = append(seqs, s.Seq)
			}
			rw.d[k] = s.Delay.Milliseconds()
		}
	}
	// seqs arrive in per-flow delivery order; sort ascending.
	for i := 1; i < len(seqs); i++ {
		for j := i; j > 0 && seqs[j] < seqs[j-1]; j-- {
			seqs[j], seqs[j-1] = seqs[j-1], seqs[j]
		}
	}
	var out [][]string
	for _, seq := range seqs {
		rw := rows[seq]
		out = append(out, []string{
			itoa(int(seq)),
			strconv.FormatFloat(rw.d[0], 'f', 3, 64),
			strconv.FormatFloat(rw.d[1], 'f', 3, 64),
			strconv.FormatFloat(rw.d[2], 'f', 3, 64),
		})
	}
	return writeCSV(w, header, out)
}

// WriteCSV emits the (time, recv seq) trace (Figures 4.12–4.13).
func (r TCPTraceResult) WriteCSV(w io.Writer) error {
	header := []string{"t_s", "recv_seq", "ack_seq"}
	var rows [][]string
	for _, s := range r.Recv {
		rows = append(rows, []string{
			strconv.FormatFloat(s.At.Seconds(), 'f', 6, 64),
			itoa(s.Seq),
			itoa(ackAtOrBefore(r.Ack, s.At)),
		})
	}
	return writeCSV(w, header, rows)
}

// WriteCSV emits both goodput curves (Figure 4.14).
func (r Fig414Result) WriteCSV(w io.Writer) error {
	header := []string{"t_s", "buffered_mbps", "unbuffered_mbps"}
	buf, unbuf := r.Buffered.Goodput, r.Unbuffered.Goodput
	n := len(buf)
	if len(unbuf) > n {
		n = len(unbuf)
	}
	var rows [][]string
	for i := 0; i < n; i++ {
		var t float64
		var b, u float64
		if i < len(buf) {
			t = buf[i].At.Seconds()
			b = buf[i].Value / 1e6
		}
		if i < len(unbuf) {
			t = unbuf[i].At.Seconds()
			u = unbuf[i].Value / 1e6
		}
		rows = append(rows, []string{
			strconv.FormatFloat(t, 'f', 1, 64),
			strconv.FormatFloat(b, 'f', 3, 64),
			strconv.FormatFloat(u, 'f', 3, 64),
		})
	}
	return writeCSV(w, header, rows)
}

// WriteCSV emits the mobility-ladder table.
func (r BaselineResult) WriteCSV(w io.Writer) error {
	header := []string{"configuration", "lost", "outage_ms"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name,
			itoa(row.Lost),
			strconv.FormatFloat(row.Outage.Milliseconds(), 'f', 1, 64),
		})
	}
	return writeCSV(w, header, rows)
}
