package scenario

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// TestSchedulerGoldenDeterminism is the golden determinism guard: a full
// figure scenario must render byte-identical output under the heap and
// calendar schedulers, under engine reuse (Reset between runs), and under
// the process-default engine. Any divergence means a scheduler broke the
// (at, seq) total-order contract or recycling leaked state.
func TestSchedulerGoldenDeterminism(t *testing.T) {
	render := func(engine *sim.Engine) string {
		return RunDelayTrace(DelayTraceParams{
			Scheme: core.SchemeEnhanced, PoolSize: 60, Alpha: 2,
			ARLinkDelay: 2 * sim.Millisecond, Engine: engine,
		}).Render()
	}
	heap := sim.NewEngineKind(sim.SchedulerHeap)
	cal := sim.NewCalendarEngine()

	want := render(heap)
	if got := render(cal); got != want {
		t.Fatalf("calendar scheduler diverged from heap:\n--- heap ---\n%s\n--- calendar ---\n%s", want, got)
	}
	if got := render(nil); got != want {
		t.Fatalf("default engine diverged from explicit heap engine:\n%s", got)
	}
	// Reused engines (the runner-pool scratch path) must replay identically.
	if got := render(heap); got != want {
		t.Fatal("reused heap engine diverged after Reset")
	}
	if got := render(cal); got != want {
		t.Fatal("reused calendar engine diverged after Reset")
	}

	// The SafetyNet data path (anchor bicast fan-out, NAR hold window,
	// selective drain) runs through the same engines: its renders — drop
	// trace with the overhead footer, and delay trace — must be equally
	// scheduler- and reuse-independent.
	renderSfn := func(engine *sim.Engine) string {
		drop := RunDropTrace(DropTraceParams{
			Scheme: core.SchemeSafetyNet, PoolSize: 40, Handoffs: 4, Engine: engine,
		}).Render()
		delay := RunDelayTrace(DelayTraceParams{
			Scheme: core.SchemeSafetyNet, PoolSize: 40, Engine: engine,
		}).Render()
		return drop + "\n" + delay
	}
	wantSfn := renderSfn(heap)
	if got := renderSfn(cal); got != wantSfn {
		t.Fatalf("safetynet: calendar scheduler diverged from heap:\n--- heap ---\n%s\n--- calendar ---\n%s", wantSfn, got)
	}
	if got := renderSfn(nil); got != wantSfn {
		t.Fatal("safetynet: default engine diverged from explicit heap engine")
	}
	if got := renderSfn(heap); got != wantSfn {
		t.Fatal("safetynet: reused heap engine diverged after Reset")
	}
	if got := renderSfn(cal); got != wantSfn {
		t.Fatal("safetynet: reused calendar engine diverged after Reset")
	}
}
