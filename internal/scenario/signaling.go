package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fho"
	"repro/internal/inet"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// CountControlMessages runs one anticipated handoff under the given scheme
// and returns the total number of fast-handover control messages exchanged
// (host and both routers). Because the buffer options piggyback on the
// base protocol, the enhanced scheme costs only the BF relay beyond plain
// fast handover (§3.3).
func CountControlMessages(scheme core.Scheme) uint64 {
	tb := NewTestbed(Params{
		Scheme:        scheme,
		PoolSize:      40,
		BufferRequest: 20,
	})
	var total uint64
	count := func(fho.Kind) { total++ }
	tb.PAR.OnControl = count
	tb.NAR.OnControl = count
	unit := tb.AddMobileHost(wireless.Linear{Start: 50, Speed: MHSpeed}, []FlowSpec{
		AudioFlow(inet.ClassHighPriority),
	})
	unit.MH.OnControl = count
	tb.StartTraffic()
	if err := tb.Run(12 * sim.Second); err != nil {
		panic(fmt.Sprintf("signaling count: %v", err))
	}
	return total
}
