package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/inet"
	"repro/internal/mip"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/internal/wireless"
)

// CorridorParams configures an N-router corridor: access routers in a row
// with the reference geometry (212 m spacing, 112 m radius), each with one
// access point, all children of one MAP, with direct links between
// neighbours. The thesis evaluates a single PAR→NAR pair; the corridor
// shows the protocol generalizes to any chain of routers — every hop
// re-casts the roles.
type CorridorParams struct {
	// Routers is the number of access routers (≥ 2).
	Routers int
	// Scheme, PoolSize, Alpha, BufferRequest as in Params.
	Scheme        core.Scheme
	PoolSize      int
	Alpha         int
	BufferRequest int
	// L2HandoffDelay and RAInterval as in Params.
	L2HandoffDelay sim.Time
	RAInterval     sim.Time
	Seed           int64
}

func (p *CorridorParams) applyDefaults() {
	if p.Routers < 2 {
		p.Routers = 4
	}
	if p.Scheme == 0 {
		p.Scheme = core.SchemeEnhanced
	}
	if p.L2HandoffDelay == 0 {
		p.L2HandoffDelay = 200 * sim.Millisecond
	}
	if p.RAInterval == 0 {
		p.RAInterval = 500 * sim.Millisecond
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
}

// corridorNetBase is the first access-router prefix; router i serves
// corridorNetBase+i.
const corridorNetBase inet.NetID = 100

// Corridor is the assembled multi-router topology.
type Corridor struct {
	Params   CorridorParams
	Engine   *sim.Engine
	Topo     *netsim.Topology
	Medium   *wireless.Medium
	Recorder *stats.Recorder

	CN   *netsim.Host
	MAP  *mip.Agent
	ARs  []*core.AccessRouter
	APs  []*wireless.AccessPoint
	MH   *core.MobileHost
	Flow inet.FlowID

	source *traffic.CBR
}

// NewCorridor assembles the corridor with one mobile host walking it end
// to end, carrying one CBR flow of the given spec.
func NewCorridor(p CorridorParams, flow FlowSpec) *Corridor {
	p.applyDefaults()
	engine := sim.NewEngine()
	topo := netsim.NewTopology(engine)
	medium := wireless.NewMedium(engine)
	rng := sim.NewRNG(p.Seed)
	recorder := stats.NewRecorder()

	cn := netsim.NewHost("cn", inet.Addr{Net: NetCN, Host: 1})
	mapRouter := netsim.NewRouter("map", inet.Addr{Net: NetMAP, Host: 1})
	topo.Connect(cn, mapRouter, netsim.LinkConfig{BandwidthBPS: coreBandwidth, Delay: 2 * sim.Millisecond})
	topo.ClaimNet(NetCN, cn)
	topo.ClaimNet(NetMAP, mapRouter)

	dir := core.NewDirectory()
	arCfg := core.ARConfig{
		Scheme:   p.Scheme,
		PoolSize: p.PoolSize,
		Alpha:    p.Alpha,
	}

	c := &Corridor{
		Params:   p,
		Engine:   engine,
		Topo:     topo,
		Medium:   medium,
		Recorder: recorder,
		CN:       cn,
	}

	routers := make([]*netsim.Router, p.Routers)
	apLinks := make([]*netsim.Link, p.Routers)
	var neighbour []*netsim.Link
	for i := 0; i < p.Routers; i++ {
		net := corridorNetBase + inet.NetID(i)
		routers[i] = netsim.NewRouter(fmt.Sprintf("ar%d", i), inet.Addr{Net: net, Host: 1})
		topo.Connect(mapRouter, routers[i], netsim.LinkConfig{BandwidthBPS: arBandwidth, Delay: 2 * sim.Millisecond})
		topo.ClaimNet(net, routers[i])
		if i > 0 {
			neighbour = append(neighbour, topo.Connect(routers[i-1], routers[i],
				netsim.LinkConfig{BandwidthBPS: arBandwidth, Delay: 2 * sim.Millisecond}))
		}
		ap := wireless.NewAccessPoint(fmt.Sprintf("ap%d", i), medium, wireless.APConfig{
			Pos: float64(i) * APDistance, Radius: APRadius,
			BandwidthBPS: airBandwidth, AirDelay: sim.Millisecond,
			ReturnUndeliverable: true,
		})
		apLinks[i] = topo.Connect(routers[i], ap, netsim.LinkConfig{BandwidthBPS: apBandwidth, Delay: sim.Millisecond / 2})
		c.APs = append(c.APs, ap)
	}
	if err := topo.ComputeRoutes(); err != nil {
		panic(fmt.Sprintf("corridor: route computation failed: %v", err))
	}
	// Pin neighbour traffic to the direct links (as in the reference
	// testbed).
	for i, l := range neighbour {
		routers[i].AddPrefixRoute(corridorNetBase+inet.NetID(i+1), l.A())
		routers[i+1].AddPrefixRoute(corridorNetBase+inet.NetID(i), l.B())
	}

	agent := mip.NewAgent(engine, mapRouter, mip.AgentConfig{ManagedNet: NetMAP})
	c.MAP = agent

	for i, r := range routers {
		ar := core.NewAccessRouter(engine, r, corridorNetBase+inet.NetID(i), dir, arCfg)
		ar.AddAP(c.APs[i].Name(), apLinks[i].A())
		ar.OnDrop = func(pkt *inet.Packet, where string) { recorder.Dropped(pkt, where) }
		c.ARs = append(c.ARs, ar)
		c.APs[i].AirDropHook = func(pkt *inet.Packet) {
			if pkt.Innermost().Proto != inet.ProtoControl {
				recorder.DroppedSite(pkt, stats.SiteAir)
			}
		}
		c.APs[i].StartAdvertising(wireless.Advertisement{Router: r.Addr(), Net: corridorNetBase + inet.NetID(i)},
			p.RAInterval, rng.Uniform(0, p.RAInterval))
	}

	// The mobile host walks from inside the first cell past the last one.
	station := wireless.NewStation("mh", medium, wireless.Linear{Start: 50, Speed: MHSpeed},
		wireless.StationConfig{
			BandwidthBPS:   airBandwidth,
			AirDelay:       sim.Millisecond,
			L2HandoffDelay: p.L2HandoffDelay,
		})
	rcoa := inet.Addr{Net: NetMAP, Host: 1000}
	mh := core.NewMobileHost(engine, station, rcoa, agent.Router().Addr(), core.MHConfig{
		HostID:        10,
		Scheme:        p.Scheme,
		BufferRequest: p.BufferRequest,
	})
	mh.Attach(c.APs[0], c.ARs[0].Addr(), corridorNetBase)
	c.ARs[0].AttachResident(mh.LCoA(), apLinks[0].A())
	agent.Register(rcoa, mh.LCoA(), 3600*sim.Second)
	mh.StartRegistration()
	mh.OnDeliver = traffic.Sink(engine, recorder)
	c.MH = mh

	c.Flow = topo.NewFlowID()
	c.source = traffic.NewCBR(engine, traffic.CBRConfig{
		Flow:     c.Flow,
		Class:    flow.Class,
		Src:      cn.Addr(),
		Dst:      rcoa,
		Size:     flow.Size,
		Interval: flow.Interval,
	}, cn.Send, topo.NewPacketID, recorder)

	return c
}

// WalkDuration is how long the host walks: from its start (50 m into the
// first cell) to 60 m past the last access point — well inside the final
// cell (coverage extends 112 m), so the run ends with the host still
// covered.
func (c *Corridor) WalkDuration() sim.Time {
	meters := float64(c.Params.Routers-1)*APDistance + 10
	return sim.Time(meters / MHSpeed * float64(sim.Second))
}

// Run walks the host down the whole corridor with traffic flowing, then
// drains.
func (c *Corridor) Run() error {
	c.source.Start(0)
	if err := c.Engine.Run(c.WalkDuration()); err != nil {
		return err
	}
	c.source.Stop()
	return c.Engine.Run(c.WalkDuration() + 2*sim.Second)
}
