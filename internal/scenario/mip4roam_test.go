package scenario

import (
	"testing"

	"repro/internal/sim"
)

func TestMIP4RoamHandsOffAndRecovers(t *testing.T) {
	r := NewMIP4Roam(MIP4RoamParams{})
	// Two ping-pong legs: two inter-cell handoffs.
	if err := r.Run(40 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	f := r.Recorder.Flow(r.Flow)
	if f.Sent == 0 || f.Delivered == 0 {
		t.Fatalf("no traffic flowed: %+v", f)
	}
	// Each plain-MIP handoff costs blackout + detection + HA registration
	// (~0.3–1 s ≈ 15–50 packets at 50 p/s); two handoffs happened.
	if f.Lost() < 20 {
		t.Errorf("lost only %d packets; plain Mobile IP should bleed across handoffs", f.Lost())
	}
	if f.Lost() > 150 {
		t.Errorf("lost %d packets; the node never recovered", f.Lost())
	}
	// Both foreign agents saw the visitor; the HA tunnelled throughout.
	if r.Registrations() < 3 { // initial + ≥2 handoffs
		t.Errorf("registrations = %d, want ≥3", r.Registrations())
	}
	if r.HA.Tunnelled() == 0 {
		t.Error("home agent never tunnelled")
	}
	if r.FA1.Relayed() == 0 || r.FA2.Relayed() == 0 {
		t.Errorf("relays: fa1=%d fa2=%d; both agents should have served the node",
			r.FA1.Relayed(), r.FA2.Relayed())
	}
}

func TestMIP4RoamBackhaulCost(t *testing.T) {
	// A farther home agent makes every handoff outage longer: more loss.
	lossAt := func(backhaul sim.Time) uint64 {
		r := NewMIP4Roam(MIP4RoamParams{HomeAgentDelay: backhaul})
		if err := r.Run(40 * sim.Second); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return r.Recorder.Flow(r.Flow).Lost()
	}
	near := lossAt(5 * sim.Millisecond)
	far := lossAt(150 * sim.Millisecond)
	if far <= near {
		t.Errorf("far home agent lost %d ≤ near %d; registration latency unmodelled", far, near)
	}
}
