package scenario

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/inet"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// The experiment tests assert the thesis' qualitative results — who wins,
// by roughly what factor, where the crossovers fall — not absolute numbers.

func TestFig42Shape(t *testing.T) {
	res := RunFig42(Fig42Params{MaxHosts: 14})

	nar := res.MaxLossFree("NAR")
	par := res.MaxLossFree("PAR")
	dual := res.MaxLossFree("DUAL")
	fh := res.MaxLossFree("FH")

	// The thesis: single-buffer placements serve pool/request hosts
	// loss-free; DUAL roughly doubles that; plain FH always loses.
	if nar != 4 {
		t.Errorf("NAR loss-free capacity = %d, want 4 (50-packet pool / 12 per host)", nar)
	}
	if par != 4 {
		t.Errorf("PAR loss-free capacity = %d, want 4", par)
	}
	if dual < 2*nar-1 || dual > 2*nar+1 {
		t.Errorf("DUAL loss-free capacity = %d, want ≈2× NAR's %d", dual, nar)
	}
	if fh != 0 {
		t.Errorf("FH loss-free capacity = %d, want 0 (no buffering)", fh)
	}

	// Drops grow monotonically (within jitter) once capacity is exceeded.
	for _, label := range []string{"NAR", "PAR", "DUAL", "FH"} {
		series := res.Drops[label]
		if series[len(series)-1] <= series[0] && label != "DUAL" && label != "NAR" && label != "PAR" {
			t.Errorf("%s drops do not grow with load: %v", label, series)
		}
	}
	if !strings.Contains(res.Render(), "Figure 4.2") {
		t.Error("Render missing header")
	}
}

func TestFig43EqualClassesUnderOriginalFH(t *testing.T) {
	res := RunDropTrace(DropTraceParams{
		Scheme: core.SchemeFHOriginal, PoolSize: 40, Handoffs: 12,
	})
	if res.Handoffs() < 10 {
		t.Fatalf("recorded %d handoffs, want ≥10", res.Handoffs())
	}
	final := res.Final()
	total := final[0] + final[1] + final[2]
	if total == 0 {
		t.Fatal("no drops at all; buffers were not stressed")
	}
	// All classes suffer alike (no QoS in original FH): each flow within
	// 25% of the mean.
	mean := float64(total) / 3
	for k, v := range final {
		if f := float64(v); f < mean*0.75 || f > mean*1.25 {
			t.Errorf("flow %d lost %d, diverges from classless mean %.1f (all: %v)",
				k+1, v, mean, final)
		}
	}
	// Drops accumulate roughly linearly: the half-way count is near half
	// the final count.
	half := res.Cumulative[0][res.Handoffs()/2-1] + res.Cumulative[1][res.Handoffs()/2-1] +
		res.Cumulative[2][res.Handoffs()/2-1]
	if float64(half) < float64(total)*0.3 || float64(half) > float64(total)*0.7 {
		t.Errorf("drop growth not linear: half-way %d vs final %d", half, total)
	}
}

func TestFig44ClassDisabledEqualFates(t *testing.T) {
	res := RunDropTrace(DropTraceParams{
		Scheme: core.SchemeDual, PoolSize: 20, Handoffs: 12,
	})
	final := res.Final()
	total := final[0] + final[1] + final[2]
	if total == 0 {
		t.Fatal("no drops; dual buffers not stressed")
	}
	mean := float64(total) / 3
	for k, v := range final {
		if f := float64(v); f < mean*0.7 || f > mean*1.3 {
			t.Errorf("flow %d lost %d vs classless mean %.1f (all: %v)", k+1, v, mean, final)
		}
	}
}

func TestFig45ClassEnabledProtectsHighPriority(t *testing.T) {
	res := RunDropTrace(DropTraceParams{
		Scheme: core.SchemeEnhanced, PoolSize: 20, Alpha: 6, Handoffs: 12,
	})
	final := res.Final()
	if final[1]*3 >= final[0] || final[1]*3 >= final[2] {
		t.Errorf("high-priority drops not greatly reduced: rt=%d hp=%d be=%d",
			final[0], final[1], final[2])
	}
}

func TestFig45TotalsComparableToFig44(t *testing.T) {
	// "the QoS function does not result in additional packet drops":
	// class-enabled total within 35% of class-disabled total.
	enabled := RunDropTrace(DropTraceParams{
		Scheme: core.SchemeEnhanced, PoolSize: 20, Alpha: 6, Handoffs: 10,
	}).Final()
	disabled := RunDropTrace(DropTraceParams{
		Scheme: core.SchemeDual, PoolSize: 20, Handoffs: 10,
	}).Final()
	te := float64(enabled[0] + enabled[1] + enabled[2])
	td := float64(disabled[0] + disabled[1] + disabled[2])
	if td == 0 {
		t.Fatal("class-disabled run had no drops")
	}
	if te < td*0.65 || te > td*1.35 {
		t.Errorf("total drops diverge: enabled %.0f vs disabled %.0f", te, td)
	}
}

func TestFig46HighPriorityAlwaysLowest(t *testing.T) {
	res := RunFig46(Fig46Params{})
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d, want 12 sweep points", len(res.Rows))
	}
	sawLoss := false
	for _, row := range res.Rows {
		if row.Lost[0]+row.Lost[1]+row.Lost[2] > 0 {
			sawLoss = true
		}
		if row.Lost[1] > row.Lost[0] || row.Lost[1] > row.Lost[2] {
			t.Errorf("at %.1f kb/s the high-priority flow lost most: %v",
				row.RateKbps, row.Lost)
		}
	}
	if !sawLoss {
		t.Error("no losses across the whole sweep; rates too low")
	}
	// Losses grow with rate: the last row outweighs the first.
	first := res.Rows[0]
	last := res.Rows[len(res.Rows)-1]
	if last.Lost[0]+last.Lost[2] <= first.Lost[0]+first.Lost[2] {
		t.Errorf("losses do not grow with data rate: first %v, last %v",
			first.Lost, last.Lost)
	}
}

func TestFig47vs48DelayImprovement(t *testing.T) {
	orig := RunDelayTrace(DelayTraceParams{Scheme: core.SchemeFHOriginal, PoolSize: 40})
	dual := RunDelayTrace(DelayTraceParams{Scheme: core.SchemeDual, PoolSize: 20})

	// Both buffer everything across the blackout: max delays near the
	// 200 ms blackout.
	for k := 0; k < 3; k++ {
		if orig.MaxDelay(k) < 150*sim.Millisecond {
			t.Errorf("fig4.7 flow %d max delay %v; expected a blackout's worth",
				k+1, orig.MaxDelay(k))
		}
	}
	// The proposed method drains two buffers in parallel: its worst delay
	// must not exceed the original's (the thesis' "smaller summary
	// delay").
	var worstOrig, worstDual sim.Time
	for k := 0; k < 3; k++ {
		if d := orig.MaxDelay(k); d > worstOrig {
			worstOrig = d
		}
		if d := dual.MaxDelay(k); d > worstDual {
			worstDual = d
		}
	}
	if worstDual > worstOrig {
		t.Errorf("proposed max delay %v exceeds original %v", worstDual, worstOrig)
	}
}

func TestFig49vs410LinkDelaySeparation(t *testing.T) {
	low := RunDelayTrace(DelayTraceParams{
		Scheme: core.SchemeEnhanced, PoolSize: 60, Alpha: 2, ARLinkDelay: 2 * sim.Millisecond,
	})
	high := RunDelayTrace(DelayTraceParams{
		Scheme: core.SchemeEnhanced, PoolSize: 60, Alpha: 2, ARLinkDelay: 50 * sim.Millisecond,
	})

	// Low link delay: all flows within ~60 ms of each other (Figure 4.9).
	var lo, hi sim.Time = sim.MaxTime, 0
	for k := 0; k < 3; k++ {
		d := low.MaxDelay(k)
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if hi-lo > 60*sim.Millisecond {
		t.Errorf("2 ms link: per-class max delays spread %v, want tight", hi-lo)
	}

	// High link delay: best-effort (PAR-buffered) delayed well beyond
	// real-time (NAR-buffered) — Figure 4.10.
	rt, be := high.MaxDelay(0), high.MaxDelay(2)
	if be-rt < 40*sim.Millisecond {
		t.Errorf("50 ms link: BE max delay %v not separated from RT %v", be, rt)
	}
	// And the real-time flow is insensitive to the link delay.
	diff := high.MaxDelay(0) - low.MaxDelay(0)
	if diff < 0 {
		diff = -diff
	}
	if diff > 40*sim.Millisecond {
		t.Errorf("real-time delay moved by %v with the AR link; should be insensitive", diff)
	}
}

func TestFig412vs413TCPStall(t *testing.T) {
	unbuf := RunTCPTrace(TCPTraceParams{Buffered: false})
	buf := RunTCPTrace(TCPTraceParams{Buffered: true})

	if unbuf.Timeouts == 0 {
		t.Error("fig4.12: no TCP timeout without buffering")
	}
	if unbuf.StallAfterDetach < sim.Second || unbuf.StallAfterDetach > 1800*sim.Millisecond {
		t.Errorf("fig4.12 stall = %v, want 1–1.5 s class", unbuf.StallAfterDetach)
	}
	if buf.Timeouts != 0 {
		t.Errorf("fig4.13: %d timeouts despite buffering", buf.Timeouts)
	}
	// Buffered reception resumes right at re-attach (blackout + drain).
	if buf.StallAfterDetach > 400*sim.Millisecond {
		t.Errorf("fig4.13 stall = %v, want ≈ blackout only", buf.StallAfterDetach)
	}
	if buf.Delivered <= unbuf.Delivered {
		t.Errorf("fig4.14: buffered %d ≤ unbuffered %d bytes", buf.Delivered, unbuf.Delivered)
	}
}

func TestExperimentRegistryRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry run is slow")
	}
	seen := make(map[string]bool)
	for _, exp := range Experiments() {
		if exp.ID == "" || exp.Title == "" || exp.Run == nil {
			t.Fatalf("incomplete experiment: %+v", exp)
		}
		if seen[exp.ID] {
			t.Fatalf("duplicate experiment %s", exp.ID)
		}
		seen[exp.ID] = true
	}
	want := []string{"4.2", "4.3", "4.4", "4.5", "4.6", "4.7", "4.8", "4.9", "4.10", "4.12", "4.13", "4.14"}
	for _, id := range want {
		if !seen[id] {
			t.Errorf("figure %s missing from the registry", id)
		}
	}
}

func TestBaselineLadderOrdering(t *testing.T) {
	res := RunBaseline()
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	// Each rung of the ladder must do no worse than the previous one, and
	// the ends must be strictly separated: that is the thesis' Chapter 2
	// motivation in one table.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Lost > res.Rows[i-1].Lost {
			t.Errorf("%q lost %d > %q's %d",
				res.Rows[i].Name, res.Rows[i].Lost, res.Rows[i-1].Name, res.Rows[i-1].Lost)
		}
		if res.Rows[i].Outage > res.Rows[i-1].Outage {
			t.Errorf("%q outage %v > %q's %v",
				res.Rows[i].Name, res.Rows[i].Outage, res.Rows[i-1].Name, res.Rows[i-1].Outage)
		}
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.Lost != 0 {
		t.Errorf("enhanced scheme lost %d packets", last.Lost)
	}
	if first.Lost < 10 || first.Outage < 300*sim.Millisecond {
		t.Errorf("plain Mobile IP too cheap: lost=%d outage=%v", first.Lost, first.Outage)
	}
}

func TestPlainMIPHandoffCompletes(t *testing.T) {
	tb := NewTestbed(Params{
		Scheme:         core.SchemeFHNoBuffer,
		Mobility:       core.MobilityPlainMIP,
		HomeAgentDelay: 50 * sim.Millisecond,
	})
	unit := tb.AddMobileHost(wireless.Linear{Start: 50, Speed: MHSpeed}, []FlowSpec{
		AudioFlow(inet.ClassHighPriority),
	})
	tb.StartTraffic()
	if err := tb.Run(12 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	recs := unit.MH.Handoffs()
	if len(recs) != 1 {
		t.Fatalf("handoffs = %d, want 1", len(recs))
	}
	if recs[0].Anticipated {
		t.Error("plain Mobile IP reported an anticipated handoff")
	}
	if recs[0].NARGranted || recs[0].PARGranted {
		t.Error("plain Mobile IP obtained buffer grants")
	}
	// Connectivity recovers through the home agent after registration.
	f := tb.Recorder.Flow(unit.Flows[0])
	if f.Delivered == 0 || f.Lost() == 0 {
		t.Errorf("implausible plain-MIP stats: delivered=%d lost=%d", f.Delivered, f.Lost())
	}
	var lastDelivery sim.Time
	for _, s := range f.Delays {
		if s.At > lastDelivery {
			lastDelivery = s.At
		}
	}
	if lastDelivery < 11*sim.Second {
		t.Errorf("deliveries stopped at %v; registration never restored the path", lastDelivery)
	}
	// No fast-handover signalling happened.
	if tb.PAR.ControlSent(kindHI()) != 0 {
		t.Error("plain Mobile IP sent an HI")
	}
}

func TestFig45ProtectionHoldsAcrossSeeds(t *testing.T) {
	// The headline QoS claim is not a seed artifact: at every seed the
	// high-priority flow loses several times less than the others.
	for seed := int64(1); seed <= 3; seed++ {
		res := RunDropTrace(DropTraceParams{
			Scheme: core.SchemeEnhanced, PoolSize: 20, Alpha: 6, Handoffs: 6, Seed: seed,
		})
		final := res.Final()
		if final[1]*2 >= final[0] || final[1]*2 >= final[2] {
			t.Errorf("seed %d: protection failed: rt=%d hp=%d be=%d",
				seed, final[0], final[1], final[2])
		}
	}
}

func TestFig42DoublingHoldsAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		res := RunFig42(Fig42Params{MaxHosts: 10, Seed: seed})
		nar, dual := res.MaxLossFree("NAR"), res.MaxLossFree("DUAL")
		if dual < 2*nar-1 {
			t.Errorf("seed %d: DUAL=%d < 2×NAR=%d−1", seed, dual, nar)
		}
	}
}
