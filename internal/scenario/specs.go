package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sim"
)

// This file exposes the thesis experiments as runner.Spec values: each
// spec is a seedable constructor that runs one full replica of a scenario
// and reports its headline metrics as scalars. Specs are pure functions
// of the seed — a replica's engine carries only capacity (free lists,
// queue storage) between runs, never results — so they are safe to fan
// out across the runner's worker pool. The params' Seed field is
// overridden by the per-replica derived seed.

// classSuffix labels the three-flow scenarios' per-class metrics.
var classSuffix = [3]string{"rt", "hp", "be"}

// scratchSpec adapts an engine-parameterized scenario function into a
// runner.ScratchSpec: the worker pool hands each worker a private
// calendar-queue engine (reset between replicas, keeping its warmed-up
// event free list and queue capacity), making the calendar scheduler the
// runner-pool default. Plain Run — used outside the pool — passes a nil
// engine, so the scenario builds a fresh one per replica; both paths
// produce bit-for-bit identical metrics (see Engine.Reset).
type scratchSpec struct {
	name string
	// desc is a one-line human summary of the scenario and its parameters
	// (scheme, pool sizing, axis), surfaced by `experiments -list`.
	desc string
	run  func(engine *sim.Engine, seed int64) runner.Metrics
}

func (s scratchSpec) Name() string { return s.name }

// Describe returns the spec's one-line scenario/parameter summary.
func (s scratchSpec) Describe() string { return s.desc }

func (s scratchSpec) Run(seed int64) (runner.Metrics, error) { return s.run(nil, seed), nil }

func (s scratchSpec) NewScratch() any { return sim.NewCalendarEngine() }

func (s scratchSpec) RunScratch(scratch any, seed int64) (runner.Metrics, error) {
	return s.run(scratch.(*sim.Engine), seed), nil
}

var _ runner.ScratchSpec = scratchSpec{}

// Specs returns every experiment available to the Monte-Carlo runner, in
// thesis order.
func Specs() []runner.Spec {
	return []runner.Spec{
		Fig42Spec(Fig42Params{}),
		DropTraceSpec("fig4.3", DropTraceParams{Scheme: core.SchemeFHOriginal, PoolSize: 40, Handoffs: 100}),
		DropTraceSpec("fig4.4", DropTraceParams{Scheme: core.SchemeDual, PoolSize: 20, Handoffs: 100}),
		DropTraceSpec("fig4.5", DropTraceParams{Scheme: core.SchemeEnhanced, PoolSize: 20, Alpha: 6, Handoffs: 100}),
		Fig46Spec(Fig46Params{}),
		DelayTraceSpec("fig4.7", DelayTraceParams{Scheme: core.SchemeFHOriginal, PoolSize: 40}),
		DelayTraceSpec("fig4.8", DelayTraceParams{Scheme: core.SchemeDual, PoolSize: 20}),
		DelayTraceSpec("fig4.9", DelayTraceParams{
			Scheme: core.SchemeEnhanced, PoolSize: 60, Alpha: 2, ARLinkDelay: 2 * sim.Millisecond,
		}),
		DelayTraceSpec("fig4.10", DelayTraceParams{
			Scheme: core.SchemeEnhanced, PoolSize: 60, Alpha: 2, ARLinkDelay: 50 * sim.Millisecond,
		}),
		TCPTraceSpec("fig4.12", false),
		TCPTraceSpec("fig4.13", true),
		BaselineSpec(),
		LatencySpec(10),
		LossSweepSpec(),
		MetroSpec(MetroParams{}),
		// The SafetyNet competitor on the same drop/delay scenarios the
		// buffering schemes run (no thesis figure numbers: the scheme is
		// from the related SafetyNet work, not the thesis).
		DropTraceSpec("drop-sfn", DropTraceParams{Scheme: core.SchemeSafetyNet, PoolSize: 40, Handoffs: 100}),
		DelayTraceSpec("delay-sfn", DelayTraceParams{Scheme: core.SchemeSafetyNet, PoolSize: 40}),
		CitySpec(CityParams{}),
	}
}

// SpecByName returns the named spec, or an error naming the known specs.
func SpecByName(name string) (runner.Spec, error) {
	var known []string
	for _, spec := range Specs() {
		if spec.Name() == name {
			return spec, nil
		}
		known = append(known, spec.Name())
	}
	return nil, fmt.Errorf("unknown spec %q (have: %v)", name, known)
}

// Fig42Spec wraps the buffer-utilization experiment (Figure 4.2) as a
// seedable runner spec reporting the loss-free capacities per scheme.
func Fig42Spec(p Fig42Params) runner.Spec {
	return scratchSpec{
		name: "fig4.2",
		desc: "loss-free buffer capacity per placement (NAR/PAR/dual size sweep)",
		run: func(engine *sim.Engine, seed int64) runner.Metrics {
			p := p
			p.Seed = seed
			p.Engine = engine
			res := RunFig42(p)
			m := runner.Metrics{
				"capacity_nar":  float64(res.MaxLossFree("NAR")),
				"capacity_par":  float64(res.MaxLossFree("PAR")),
				"capacity_dual": float64(res.MaxLossFree("DUAL")),
			}
			fh := res.Drops["FH"]
			m["drops_fh_at_max"] = float64(fh[len(fh)-1])
			return m
		}}
}

// DropTraceSpec wraps a cumulative-drop experiment (Figures 4.3–4.5) as
// a seedable runner spec reporting the final per-class drop counts.
func DropTraceSpec(name string, p DropTraceParams) runner.Spec {
	d := p
	d.applyDefaults()
	return scratchSpec{
		name: name,
		desc: fmt.Sprintf("cumulative per-class drops: scheme=%s pool=%d alpha=%d handoffs=%d",
			d.Scheme, d.PoolSize, d.Alpha, d.Handoffs),
		run: func(engine *sim.Engine, seed int64) runner.Metrics {
			p := p
			p.Seed = seed
			p.Engine = engine
			res := RunDropTrace(p)
			final := res.Final()
			m := runner.Metrics{"handoffs": float64(res.Handoffs())}
			for k, suffix := range classSuffix {
				m["drops_"+suffix] = float64(final[k])
			}
			if p.Scheme == core.SchemeSafetyNet {
				m["dup_packets"] = float64(res.DupPackets)
				ratio := 0.0
				if res.TotalSent > 0 {
					ratio = float64(res.DupPackets) / float64(res.TotalSent)
				}
				m["overhead_ratio"] = ratio
			}
			return m
		}}
}

// Fig46Spec wraps the data-rate sweep (Figure 4.6) as a seedable runner
// spec reporting the per-class losses at the highest rate.
func Fig46Spec(p Fig46Params) runner.Spec {
	return scratchSpec{
		name: "fig4.6",
		desc: "per-class loss vs data rate (enhanced scheme, rate sweep)",
		run: func(engine *sim.Engine, seed int64) runner.Metrics {
			p := p
			p.Seed = seed
			p.Engine = engine
			res := RunFig46(p)
			last := res.Rows[len(res.Rows)-1]
			m := runner.Metrics{}
			for k, suffix := range classSuffix {
				m["lost_"+suffix+"_at_max_rate"] = float64(last.Lost[k])
			}
			return m
		}}
}

// DelayTraceSpec wraps an end-to-end-delay experiment (Figures 4.7–4.10)
// as a seedable runner spec reporting per-class maximum delay and loss.
func DelayTraceSpec(name string, p DelayTraceParams) runner.Spec {
	d := p
	d.applyDefaults()
	return scratchSpec{
		name: name,
		desc: fmt.Sprintf("per-packet delay around one handoff: scheme=%s pool=%d alpha=%d arlink=%v",
			d.Scheme, d.PoolSize, d.Alpha, d.ARLinkDelay),
		run: func(engine *sim.Engine, seed int64) runner.Metrics {
			p := p
			p.Seed = seed
			p.Engine = engine
			res := RunDelayTrace(p)
			m := runner.Metrics{}
			for k, suffix := range classSuffix {
				m["max_delay_ms_"+suffix] = res.MaxDelay(k).Milliseconds()
				m["lost_"+suffix] = float64(res.Lost[k])
			}
			return m
		}}
}

// TCPTraceSpec wraps a link-layer handoff TCP experiment (Figures
// 4.12/4.13) as a seedable runner spec.
func TCPTraceSpec(name string, buffered bool) runner.Spec {
	mode := "without buffering"
	if buffered {
		mode = "link-layer buffering enabled"
	}
	return scratchSpec{
		name: name,
		desc: "TCP sequence/stall across a link-layer handoff, " + mode,
		run: func(engine *sim.Engine, seed int64) runner.Metrics {
			res := RunTCPTrace(TCPTraceParams{Buffered: buffered, Seed: seed, Engine: engine})
			return runner.Metrics{
				"tcp_timeouts":    float64(res.Timeouts),
				"stall_ms":        res.StallAfterDetach.Milliseconds(),
				"delivered_bytes": float64(res.Delivered),
			}
		}}
}

// BaselineSpec wraps the mobility-management ladder as a seedable runner
// spec reporting per-rung loss and outage.
func BaselineSpec() runner.Spec {
	return scratchSpec{
		name: "baseline",
		desc: "mobility-management ladder: plain MIP / HMIP / FH no-buffer / enhanced",
		run: func(engine *sim.Engine, seed int64) runner.Metrics {
			res := runBaselineLadder(seed, engine)
			slugs := [4]string{"plain_mip", "hmip", "fh_nobuf", "enhanced"}
			if len(res.Rows) != len(slugs) {
				panic(fmt.Sprintf("baseline spec: %d rows, want %d", len(res.Rows), len(slugs)))
			}
			m := runner.Metrics{}
			for i, row := range res.Rows {
				m["lost_"+slugs[i]] = float64(row.Lost)
				m["outage_ms_"+slugs[i]] = row.Outage.Milliseconds()
			}
			return m
		}}
}

// LatencySpec wraps the handover-latency breakdown as a seedable runner
// spec reporting the mean component latencies.
func LatencySpec(handoffs int) runner.Spec {
	return scratchSpec{
		name: "latency",
		desc: fmt.Sprintf("handover latency breakdown (anticipation/blackout/interruption, %d handoffs)", handoffs),
		run: func(engine *sim.Engine, seed int64) runner.Metrics {
			res := runLatencyBreakdownEngine(handoffs, seed, engine)
			return runner.Metrics{
				"anticipation_ms": res.Anticipation.Mean(),
				"blackout_ms":     res.Blackout.Mean(),
				"interruption_ms": res.Interruption.Mean(),
			}
		}}
}
