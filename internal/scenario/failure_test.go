package scenario

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fho"
	"repro/internal/inet"
	"repro/internal/mip"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// impairKinds drops the first n control messages of the given kinds
// crossing the interface.
func impairKinds(ifc *netsim.Iface, n int, kinds ...fho.Kind) *int {
	dropped := 0
	ifc.Impair = func(pkt *inet.Packet) bool {
		if dropped >= n {
			return false
		}
		for _, k := range kinds {
			if msg, ok := pkt.Payload.(fho.Message); ok && msg.Kind() == k {
				dropped++
				return true
			}
		}
		return false
	}
	return &dropped
}

// parToAPIface returns the PAR's interface toward its access point.
func parToAPIface(tb *Testbed) *netsim.Iface {
	for _, ifc := range tb.PAR.Router().Ifaces() {
		if ifc.Peer() == netsim.Node(tb.APPAR) {
			return ifc
		}
	}
	return nil
}

func TestLostPrRtAdvFallsBackToUnanticipated(t *testing.T) {
	tb := NewTestbed(Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      40,
		BufferRequest: 20,
	})
	unit := tb.AddMobileHost(wireless.Linear{Start: 50, Speed: MHSpeed}, []FlowSpec{
		AudioFlow(inet.ClassHighPriority),
	})
	// Every PrRtAdv toward the host is lost: anticipation can never
	// complete, so the host must eventually switch unanticipated once it
	// leaves the old coverage.
	dropped := impairKinds(parToAPIface(tb), 1000, fho.KindPrRtAdv)

	tb.StartTraffic()
	if err := tb.Run(16 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if *dropped == 0 {
		t.Fatal("impairment never engaged")
	}
	recs := unit.MH.Handoffs()
	if len(recs) != 1 {
		t.Fatalf("handoffs = %d, want 1 (the unanticipated fallback)", len(recs))
	}
	if recs[0].Anticipated {
		t.Error("handoff reported anticipated despite losing every PrRtAdv")
	}
	// Connectivity recovers after the binding update: packets flow again.
	f := tb.Recorder.Flow(unit.Flows[0])
	if f.Delivered == 0 || f.Lost() == 0 {
		t.Errorf("unanticipated handoff stats implausible: delivered=%d lost=%d",
			f.Delivered, f.Lost())
	}
	// And it loses more than an anticipated, buffered handoff would.
	if f.Lost() < 5 {
		t.Errorf("lost only %d packets; expected a blackout's worth without buffering", f.Lost())
	}
}

func TestLostFBUStartTimeStartsRedirection(t *testing.T) {
	// The FBU is lost, so redirection never starts explicitly. The BI's
	// start time makes the PAR begin buffering on its own ("prevent the
	// case when a mobile host moves too fast"). The BF from the release
	// phase is also lost, so the session survives until its lifetime
	// lapses and the buffered packets are dropped with the lifetime
	// reason — exercising both timers.
	tb := NewTestbed(Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      40,
		Alpha:         2,
		BufferRequest: 20,
	})
	// Best effort buffers at the PAR (Case 1.c) — the buffer that the lost
	// BF strands until the lifetime lapses. (High-priority packets would
	// escape through the NAR's released session and be delivered.)
	unit := tb.AddMobileHost(wireless.Linear{Start: 50, Speed: MHSpeed}, []FlowSpec{
		AudioFlow(inet.ClassBestEffort),
	})
	// Drop the FBU (uplink through the PAR's AP), the BF relay (NAR→PAR),
	// and the first binding update (NAR→MAP), so the MAP keeps tunnelling
	// to the PCoA until the host's retransmission lands. Uplink control
	// enters the AR via the AP's wired side.
	apWired := parToAPIface(tb).PeerIface()
	impairKinds(apWired, 1, fho.KindFBU)
	for _, ifc := range tb.NAR.Router().Ifaces() {
		switch ifc.Peer() {
		case netsim.Node(tb.PAR.Router()):
			impairKinds(ifc, 1, fho.KindBF)
		case netsim.Node(tb.MAP.Router()):
			buDropped := 0
			ifc.Impair = func(pkt *inet.Packet) bool {
				if buDropped == 0 {
					if _, ok := pkt.Payload.(*mip.BindingUpdate); ok {
						buDropped++
						return true
					}
				}
				return false
			}
		}
	}

	tb.StartTraffic()
	if err := tb.Run(20 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	tb.StopTraffic()
	if err := tb.Engine.Run(22 * sim.Second); err != nil {
		t.Fatalf("Run drain: %v", err)
	}

	if got := tb.Recorder.DropsAt(core.DropOnLifetime); got == 0 {
		t.Error("no lifetime drops; the start-time/lifetime timers never engaged")
	}
	if tb.PAR.Sessions() != 0 {
		t.Errorf("PAR sessions leaked: %d", tb.PAR.Sessions())
	}
	if tb.PAR.Pool().Reserved() != 0 || tb.NAR.Pool().Reserved() != 0 {
		t.Errorf("reservations leaked: par=%d nar=%d",
			tb.PAR.Pool().Reserved(), tb.NAR.Pool().Reserved())
	}
	// The handoff itself still completed (FNA got through).
	if len(unit.MH.Handoffs()) != 1 {
		t.Fatalf("handoffs = %d, want 1", len(unit.MH.Handoffs()))
	}
}

func TestCancelHandoffReleasesEverything(t *testing.T) {
	tb := NewTestbed(Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      40,
		BufferRequest: 20,
	})
	// Stationary host placed where the NAR's AP is strictly closer but the
	// PAR's still covers it: a handoff triggers, then is cancelled.
	unit := tb.AddMobileHost(wireless.Fixed(108), []FlowSpec{
		AudioFlow(inet.ClassHighPriority),
	})
	// The host keeps deciding to move (the NAR's AP is closer) and a
	// policy above keeps cancelling: every attempt must be cancelled
	// before the 2 ms FBU guard elapses, or the switch happens.
	cancels := 0
	unit.MH.OnControl = func(kind fho.Kind) {
		if kind == fho.KindFBU {
			tb.Engine.Schedule(sim.Millisecond, func() {
				if unit.MH.CancelHandoff() {
					cancels++
				}
			})
		}
	}
	tb.StartTraffic()
	if err := tb.Run(10 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	tb.StopTraffic()
	// Silence the beacons so no further trigger/cancel cycles start, then
	// let the last NAR-side reservation lapse with its lifetime.
	tb.APPAR.StopAdvertising()
	tb.APNAR.StopAdvertising()
	if err := tb.Engine.Run(22 * sim.Second); err != nil {
		t.Fatalf("Run drain: %v", err)
	}

	if cancels == 0 {
		t.Fatal("no handoff was ever cancelled")
	}
	if got := len(unit.MH.Handoffs()); got != 0 {
		t.Fatalf("handoffs completed = %d, want 0 after cancel", got)
	}
	// The host stayed put and its traffic survived, including anything
	// briefly buffered at the PAR across the many trigger/cancel cycles.
	f := tb.Recorder.Flow(unit.Flows[0])
	if f.Lost() > uint64(cancels) {
		t.Errorf("cancelled handoffs lost %d packets over %d cancels", f.Lost(), cancels)
	}
	if tb.PAR.Sessions() != 0 || tb.PAR.Pool().Reserved() != 0 {
		t.Errorf("PAR state leaked: sessions=%d reserved=%d",
			tb.PAR.Sessions(), tb.PAR.Pool().Reserved())
	}
	// The NAR's reservation lapses with its lifetime.
	if tb.NAR.Pool().Reserved() != 0 {
		t.Errorf("NAR reservation did not lapse: %d", tb.NAR.Pool().Reserved())
	}
}

func TestCancelHandoffIdleIsNoop(t *testing.T) {
	tb := NewTestbed(Params{Scheme: core.SchemeEnhanced, PoolSize: 40, BufferRequest: 20})
	unit := tb.AddMobileHost(wireless.Fixed(10), nil)
	if unit.MH.CancelHandoff() {
		t.Fatal("CancelHandoff succeeded with no handover in progress")
	}
}

func TestLostHAckTimesOutSolicitation(t *testing.T) {
	tb := NewTestbed(Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      40,
		BufferRequest: 20,
	})
	unit := tb.AddMobileHost(wireless.Linear{Start: 50, Speed: MHSpeed}, []FlowSpec{
		AudioFlow(inet.ClassHighPriority),
	})
	// Lose the first HAck (NAR→PAR): the first solicitation stalls, the
	// host times out, and the next beacon retries successfully.
	var narToPar *netsim.Iface
	for _, ifc := range tb.NAR.Router().Ifaces() {
		if ifc.Peer() == netsim.Node(tb.PAR.Router()) {
			narToPar = ifc
		}
	}
	dropped := impairKinds(narToPar, 1, fho.KindHAck)

	tb.StartTraffic()
	if err := tb.Run(16 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if *dropped != 1 {
		t.Fatalf("HAck drops = %d, want 1", *dropped)
	}
	recs := unit.MH.Handoffs()
	if len(recs) != 1 {
		t.Fatalf("handoffs = %d, want 1 (retry after solicit timeout)", len(recs))
	}
	// Note: the PAR keeps the first session (keyed by PCoA), so the retry
	// reuses it; whichever way, the handoff completes and state drains.
	if !recs[0].Anticipated && tb.Recorder.Flow(unit.Flows[0]).Delivered == 0 {
		t.Error("retried handoff did not restore connectivity")
	}
}
