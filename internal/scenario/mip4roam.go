package scenario

import (
	"fmt"

	"repro/internal/inet"
	"repro/internal/mip4"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/internal/wireless"
)

// MIP4RoamParams configures the wireless Mobile IPv4 roaming scenario: the
// thesis' Chapter 2 world end to end. Two foreign agents serve adjacent
// wireless cells (the Figure 4.1 geometry), the home agent sits behind a
// configurable backhaul, and the mobile node roams between the cells with
// nothing but RFC 2002 machinery — agent advertisements, registration
// relayed through the foreign agent, IP-in-IP tunnelling. Every handoff
// costs the full blackout + detection + registration round trip, which is
// the latency the rest of this repository exists to remove.
type MIP4RoamParams struct {
	// HomeAgentDelay is the one-way backhaul to the home agent (50 ms
	// default: a distant home network).
	HomeAgentDelay sim.Time
	// L2HandoffDelay is the blackout (200 ms default).
	L2HandoffDelay sim.Time
	// AdvertisementInterval is the agent-advertisement beacon period
	// (1 s default, the RFC 2002 recommendation the thesis quotes).
	AdvertisementInterval sim.Time
	Seed                  int64
}

func (p *MIP4RoamParams) applyDefaults() {
	if p.HomeAgentDelay == 0 {
		p.HomeAgentDelay = 50 * sim.Millisecond
	}
	if p.L2HandoffDelay == 0 {
		p.L2HandoffDelay = 200 * sim.Millisecond
	}
	if p.AdvertisementInterval == 0 {
		p.AdvertisementInterval = sim.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
}

// Network prefixes of the Mobile IPv4 roaming topology.
const (
	netMIP4Home inet.NetID = 80
	netMIP4FA1  inet.NetID = 81
	netMIP4FA2  inet.NetID = 82
)

// MIP4Roam is the assembled scenario.
type MIP4Roam struct {
	Params   MIP4RoamParams
	Engine   *sim.Engine
	Recorder *stats.Recorder

	CN      *netsim.Host
	HA      *mip4.HomeAgent
	FA1     *mip4.ForeignAgent
	FA2     *mip4.ForeignAgent
	MN      *mip4.MobileNode
	Station *wireless.Station
	Flow    inet.FlowID

	source        *traffic.CBR
	registrations int
}

// NewMIP4Roam assembles the scenario with one 64 kb/s flow from the
// correspondent node to the mobile node's home address.
func NewMIP4Roam(p MIP4RoamParams) *MIP4Roam {
	p.applyDefaults()
	engine := sim.NewEngine()
	topo := netsim.NewTopology(engine)
	medium := wireless.NewMedium(engine)
	rng := sim.NewRNG(p.Seed)
	recorder := stats.NewRecorder()

	cn := netsim.NewHost("cn", inet.Addr{Net: NetCN, Host: 1})
	haRouter := netsim.NewRouter("ha", inet.Addr{Net: netMIP4Home, Host: 1})
	fa1Router := netsim.NewRouter("fa1", inet.Addr{Net: netMIP4FA1, Host: 1})
	fa2Router := netsim.NewRouter("fa2", inet.Addr{Net: netMIP4FA2, Host: 1})

	topo.Connect(cn, haRouter, netsim.LinkConfig{BandwidthBPS: coreBandwidth, Delay: 2 * sim.Millisecond})
	topo.Connect(haRouter, fa1Router, netsim.LinkConfig{BandwidthBPS: arBandwidth, Delay: p.HomeAgentDelay})
	topo.Connect(haRouter, fa2Router, netsim.LinkConfig{BandwidthBPS: arBandwidth, Delay: p.HomeAgentDelay})

	ap1 := wireless.NewAccessPoint("mip4-ap1", medium, wireless.APConfig{
		Pos: 0, Radius: APRadius, BandwidthBPS: airBandwidth, AirDelay: sim.Millisecond,
		ReturnUndeliverable: false, // plain Mobile IP has no buffering agent
	})
	ap2 := wireless.NewAccessPoint("mip4-ap2", medium, wireless.APConfig{
		Pos: APDistance, Radius: APRadius, BandwidthBPS: airBandwidth, AirDelay: sim.Millisecond,
	})
	ap1Link := topo.Connect(fa1Router, ap1, netsim.LinkConfig{BandwidthBPS: apBandwidth, Delay: sim.Millisecond / 2})
	ap2Link := topo.Connect(fa2Router, ap2, netsim.LinkConfig{BandwidthBPS: apBandwidth, Delay: sim.Millisecond / 2})

	topo.ClaimNet(NetCN, cn)
	topo.ClaimNet(netMIP4Home, haRouter)
	topo.ClaimNet(netMIP4FA1, fa1Router)
	topo.ClaimNet(netMIP4FA2, fa2Router)
	if err := topo.ComputeRoutes(); err != nil {
		panic(fmt.Sprintf("mip4 roam: route computation failed: %v", err))
	}

	ha := mip4.NewHomeAgent(engine, haRouter, netMIP4Home, 0)
	fa1 := mip4.NewForeignAgent(engine, fa1Router, 300*sim.Second, 0)
	fa2 := mip4.NewForeignAgent(engine, fa2Router, 300*sim.Second, 0)

	home := inet.Addr{Net: netMIP4Home, Host: 5}
	station := wireless.NewStation("mn", medium, wireless.PingPong{A: 20, B: 192, Speed: MHSpeed},
		wireless.StationConfig{
			BandwidthBPS:   airBandwidth,
			AirDelay:       sim.Millisecond,
			L2HandoffDelay: p.L2HandoffDelay,
		})
	station.AddAddr(home)

	r := &MIP4Roam{
		Params: p, Engine: engine, Recorder: recorder,
		CN: cn, HA: ha, FA1: fa1, FA2: fa2, Station: station,
	}

	mn := mip4.NewMobileNode(engine, mip4.MobileNodeConfig{
		Home:      home,
		HomeAgent: haRouter.Addr(),
		MAC:       "mn-01",
	}, station.Send)
	mn.OnRegistered = func(coa inet.Addr, lifetime sim.Time) { r.registrations++ }
	r.MN = mn

	// Wireless-side glue: the station's L2 behaviour is driven by the
	// foreign agents' advertisements, carried as beacon payloads. Movement
	// detection is RFC 2002 style: hearing a *new* agent while attached
	// means "switch L2, then register through it".
	faByAP := map[*wireless.AccessPoint]*mip4.ForeignAgent{ap1: fa1, ap2: fa2}
	switching := false
	station.OnRA = func(adv wireless.Advertisement) {
		fa := faByAP[adv.AP]
		if fa == nil || switching {
			return
		}
		cur := station.AP()
		if cur == adv.AP {
			// Current cell's agent: hand the advertisement to the node
			// (it renews by timer; new agents trigger registration).
			mn.HandleAdvertisement(fa.Advertisement())
			return
		}
		if cur != nil && cur.Covers(station.Pos(engine.Now())) &&
			adv.AP.RSSI(station.Pos(engine.Now())) <= cur.RSSI(station.Pos(engine.Now())) {
			return // not stronger; stay
		}
		switching = true
		station.SwitchTo(adv.AP)
	}
	station.OnLinkUp = func(ap *wireless.AccessPoint) {
		switching = false
		if fa := faByAP[ap]; fa != nil {
			mn.HandleAdvertisement(fa.Advertisement())
		}
	}
	station.OnPacket = func(pkt *inet.Packet) {
		inner := pkt.Innermost()
		if reply, ok := inner.Payload.(*mip4.RegistrationReply); ok {
			mn.HandleReply(reply)
			return
		}
		if inner.Proto == inet.ProtoUDP {
			recorder.Delivered(inner, engine.Now())
		}
	}
	station.Associate(ap1)
	fa1Router.AddHostRoute(home, ap1Link.A())
	_ = ap2Link
	mn.HandleAdvertisement(fa1.Advertisement())

	// Agent advertisements ride the wireless beacons.
	ap1.StartAdvertising(wireless.Advertisement{Router: fa1Router.Addr(), Net: netMIP4FA1},
		p.AdvertisementInterval, rng.Uniform(0, p.AdvertisementInterval))
	ap2.StartAdvertising(wireless.Advertisement{Router: fa2Router.Addr(), Net: netMIP4FA2},
		p.AdvertisementInterval, rng.Uniform(0, p.AdvertisementInterval))

	r.Flow = topo.NewFlowID()
	r.source = traffic.NewCBR(engine, traffic.CBRConfig{
		Flow:     r.Flow,
		Class:    inet.ClassHighPriority,
		Src:      cn.Addr(),
		Dst:      home,
		Size:     160,
		Interval: 20 * sim.Millisecond,
	}, cn.Send, topo.NewPacketID, recorder)

	return r
}

// Registrations returns how many registrations (initial, handoffs,
// renewals) completed.
func (r *MIP4Roam) Registrations() int { return r.registrations }

// Run streams traffic while the node roams, then drains.
func (r *MIP4Roam) Run(until sim.Time) error {
	r.source.Start(0)
	if err := r.Engine.Run(until); err != nil {
		return err
	}
	r.source.Stop()
	return r.Engine.Run(until + 2*sim.Second)
}
