package scenario

import (
	"testing"

	"repro/internal/core"
	"repro/internal/inet"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wireless"
)

func TestPingPongRepeatedHandoffs(t *testing.T) {
	tb := NewTestbed(Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      40,
		Alpha:         2,
		BufferRequest: 20,
	})
	// Bounce between the two coverage areas; each leg crosses the overlap
	// once. Leg duration: 172 m / 10 m/s = 17.2 s.
	unit := tb.AddMobileHost(wireless.PingPong{A: 20, B: 192, Speed: MHSpeed}, []FlowSpec{
		AudioFlow(inet.ClassHighPriority),
	})
	tb.StartTraffic()
	const legs = 6
	if err := tb.Run(legs * 18 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	recs := unit.MH.Handoffs()
	if len(recs) < legs-1 {
		t.Fatalf("handoffs = %d, want at least %d", len(recs), legs-1)
	}
	anticipated := 0
	for _, r := range recs {
		if r.Anticipated {
			anticipated++
		}
	}
	if anticipated < len(recs)*3/4 {
		t.Errorf("only %d/%d handoffs anticipated", anticipated, len(recs))
	}
	// High-priority audio across buffered handoffs: negligible loss.
	f := tb.Recorder.Flow(unit.Flows[0])
	if f.Lost() > uint64(len(recs)) { // allow a stray packet per handoff
		t.Errorf("lost %d of %d high-priority packets over %d handoffs",
			f.Lost(), f.Sent, len(recs))
	}
	// No leaked state after everything settles.
	if tb.PAR.Pool().Reserved() != 0 || tb.NAR.Pool().Reserved() != 0 {
		t.Errorf("leaked reservations: par=%d nar=%d",
			tb.PAR.Pool().Reserved(), tb.NAR.Pool().Reserved())
	}
}

func TestSimultaneousHandoffsShareThePool(t *testing.T) {
	// Ten hosts, each requesting 10 packets from a 50-packet pool: only
	// five can be granted; with the enhanced scheme the other five still
	// get the PAR's pool (dual buffering doubles capacity).
	tb := NewTestbed(Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      50,
		Alpha:         1,
		BufferRequest: 10,
	})
	const n = 10
	units := make([]*MHUnit, n)
	for i := 0; i < n; i++ {
		units[i] = tb.AddMobileHost(wireless.Linear{Start: 50, Speed: MHSpeed}, []FlowSpec{
			AudioFlow(inet.ClassHighPriority),
		})
	}
	tb.StartTraffic()
	if err := tb.Run(12 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}

	narGrants, parGrants := 0, 0
	for _, u := range units {
		recs := u.MH.Handoffs()
		if len(recs) != 1 {
			t.Fatalf("host %v: %d handoffs, want 1", u.RCoA, len(recs))
		}
		if recs[0].NARGranted {
			narGrants++
		}
		if recs[0].PARGranted {
			parGrants++
		}
	}
	if narGrants != 5 {
		t.Errorf("NAR grants = %d, want 5 (50-packet pool / 10 each)", narGrants)
	}
	if parGrants != 5 {
		t.Errorf("PAR grants = %d, want 5", parGrants)
	}
}

func TestHighPriorityOverflowsToPAR(t *testing.T) {
	// A high-priority flow at 100 packets/s against a 10-packet grant per
	// router: ~20 packets arrive during the 200 ms blackout; the NAR holds
	// 10, sends BufferFull, and the PAR absorbs the remainder (Case 1.b),
	// so losses shrink to the BufferFull round-trip window.
	run := func(scheme core.Scheme) (*Testbed, *MHUnit) {
		tb := NewTestbed(Params{
			Scheme:        scheme,
			PoolSize:      30,
			Alpha:         1,
			BufferRequest: 12, // 24 packets of dual capacity vs ~21 demand
		})
		unit := tb.AddMobileHost(wireless.Linear{Start: 50, Speed: MHSpeed}, []FlowSpec{
			{Class: inet.ClassHighPriority, Size: 160, Interval: 10 * sim.Millisecond},
		})
		tb.StartTraffic()
		if err := tb.Run(12 * sim.Second); err != nil {
			t.Fatalf("Run: %v", err)
		}
		tb.StopTraffic()
		if err := tb.Engine.Run(14 * sim.Second); err != nil {
			t.Fatalf("Run drain: %v", err)
		}
		return tb, unit
	}

	tbEnh, unitEnh := run(core.SchemeEnhanced)
	lostEnh := tbEnh.Recorder.Flow(unitEnh.Flows[0]).Lost()

	tbOrig, unitOrig := run(core.SchemeFHOriginal)
	lostOrig := tbOrig.Recorder.Flow(unitOrig.Flows[0]).Lost()

	if lostEnh >= lostOrig {
		t.Errorf("enhanced lost %d, original FH lost %d; dual buffering did not help",
			lostEnh, lostOrig)
	}
	// The PAR switches to local buffering proactively at the NAR's grant
	// size, so the overflow loses nothing.
	if lostEnh != 0 {
		t.Errorf("enhanced lost %d; proactive overflow should be lossless here", lostEnh)
	}
	if lostOrig < 8 {
		t.Errorf("original FH lost only %d; overflow pressure missing", lostOrig)
	}
}

func TestBufferFullBackstop(t *testing.T) {
	// When the PAR has not learned the NAR's grant size (zero grant
	// reported), the BufferFull message remains the switch signal: inject
	// one directly and verify the PAR starts buffering locally.
	tb := NewTestbed(Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      30,
		Alpha:         1,
		BufferRequest: 12,
	})
	unit := tb.AddMobileHost(wireless.Linear{Start: 50, Speed: MHSpeed}, []FlowSpec{
		{Class: inet.ClassHighPriority, Size: 160, Interval: 10 * sim.Millisecond},
	})
	sent := false
	tb.MHs[0].MH.OnHandoffDone = func(rec core.HandoffRecord) { sent = true }
	tb.StartTraffic()
	if err := tb.Run(12 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	tb.StopTraffic()
	if err := tb.Engine.Run(14 * sim.Second); err != nil {
		t.Fatalf("Run drain: %v", err)
	}
	if !sent {
		t.Fatal("no handoff completed")
	}
	if lost := tb.Recorder.Flow(unit.Flows[0]).Lost(); lost != 0 {
		t.Errorf("lost %d packets", lost)
	}
}

func TestBestEffortSacrificedForHighPriority(t *testing.T) {
	// Heavy three-class traffic against small buffers: the high-priority
	// flow must lose the least (Figures 4.5/4.6).
	tb := NewTestbed(Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      20,
		Alpha:         6, // α reserves PAR slots for the HP overflow
		BufferRequest: 20,
	})
	unit := tb.AddMobileHost(wireless.Linear{Start: 50, Speed: MHSpeed}, []FlowSpec{
		{Class: inet.ClassRealTime, Size: 160, Interval: 5 * sim.Millisecond},
		{Class: inet.ClassHighPriority, Size: 160, Interval: 5 * sim.Millisecond},
		{Class: inet.ClassBestEffort, Size: 160, Interval: 5 * sim.Millisecond},
	})
	tb.StartTraffic()
	if err := tb.Run(12 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rt := tb.Recorder.Flow(unit.Flows[0]).Lost()
	hp := tb.Recorder.Flow(unit.Flows[1]).Lost()
	be := tb.Recorder.Flow(unit.Flows[2]).Lost()
	if hp >= rt || hp >= be {
		t.Errorf("high-priority not best protected: rt=%d hp=%d be=%d", rt, hp, be)
	}
	if rt+hp+be == 0 {
		t.Error("no losses at all; buffers were not stressed")
	}
}

func TestSchemeDualIgnoresClasses(t *testing.T) {
	// With classification disabled every class shares one fate: loss
	// counts must be within a couple packets of each other (Figure 4.4).
	tb := NewTestbed(Params{
		Scheme:        core.SchemeDual,
		PoolSize:      10,
		BufferRequest: 10,
	})
	unit := tb.AddMobileHost(wireless.Linear{Start: 50, Speed: MHSpeed}, []FlowSpec{
		{Class: inet.ClassRealTime, Size: 160, Interval: 5 * sim.Millisecond},
		{Class: inet.ClassHighPriority, Size: 160, Interval: 5 * sim.Millisecond},
		{Class: inet.ClassBestEffort, Size: 160, Interval: 5 * sim.Millisecond},
	})
	tb.StartTraffic()
	if err := tb.Run(12 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var losses []uint64
	var total uint64
	for _, id := range unit.Flows {
		l := tb.Recorder.Flow(id).Lost()
		losses = append(losses, l)
		total += l
	}
	if total == 0 {
		t.Fatal("no losses; buffers were not stressed")
	}
	for i := 1; i < len(losses); i++ {
		diff := int64(losses[i]) - int64(losses[0])
		if diff < -4 || diff > 4 {
			t.Errorf("class-disabled losses diverge: %v", losses)
			break
		}
	}
}

func TestRealTimeSkipsPARBuffering(t *testing.T) {
	// With a large AR–AR delay, real-time packets (NAR-buffered) must not
	// pay the PAR→NAR transfer after release, while best-effort packets
	// (PAR-buffered) must (Figure 4.10's separation).
	tb := NewTestbed(Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      60,
		Alpha:         2,
		BufferRequest: 30,
		ARLinkDelay:   50 * sim.Millisecond,
	})
	unit := tb.AddMobileHost(wireless.Linear{Start: 50, Speed: MHSpeed}, []FlowSpec{
		AudioFlow(inet.ClassRealTime),
		AudioFlow(inet.ClassBestEffort),
	})
	tb.StartTraffic()
	if err := tb.Run(12 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rt := tb.Recorder.Flow(unit.Flows[0])
	be := tb.Recorder.Flow(unit.Flows[1])
	if rt.MaxDelay() >= be.MaxDelay() {
		t.Errorf("real-time max delay %v not below best-effort %v",
			rt.MaxDelay(), be.MaxDelay())
	}
	// The separation must be at least the extra AR–AR hop.
	if be.MaxDelay()-rt.MaxDelay() < 40*sim.Millisecond {
		t.Errorf("delay separation %v too small for a 50 ms AR link",
			be.MaxDelay()-rt.MaxDelay())
	}
}

func TestSignalingIsPiggybacked(t *testing.T) {
	// One anticipated handoff costs one of each base message plus the BF
	// relay — the buffer options ride on existing messages (§3.3).
	tb, _ := oneHandoffRun(t, Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      40,
		Alpha:         2,
		BufferRequest: 20,
	})
	if got := tb.PAR.ControlSent(kindHI()); got != 1 {
		t.Errorf("HI sent %d times, want 1", got)
	}
	if got := tb.NAR.ControlSent(kindHAck()); got != 1 {
		t.Errorf("HAck sent %d times, want 1", got)
	}
	if got := tb.NAR.ControlSent(kindBF()); got != 1 {
		t.Errorf("BF relays = %d, want 1", got)
	}
	if got := tb.PAR.ControlSent(kindPrRtAdv()); got != 1 {
		t.Errorf("PrRtAdv sent %d times, want 1", got)
	}
}

func TestPartialGrantsDegradeGracefully(t *testing.T) {
	// Six hosts, 12 packets each, against a 50-packet pool. All-or-nothing
	// grants serve four hosts and refuse two outright; partial grants give
	// the fifth host the remaining two packets, strictly reducing drops.
	run := func(partial bool) uint64 {
		tb := NewTestbed(Params{
			Scheme:        core.SchemeFHOriginal,
			PoolSize:      50,
			BufferRequest: 12,
			PartialGrants: partial,
		})
		for i := 0; i < 6; i++ {
			tb.AddMobileHost(wireless.Linear{Start: 50, Speed: MHSpeed}, []FlowSpec{
				AudioFlow(inet.ClassUnspecified),
			})
		}
		tb.StartTraffic()
		if err := tb.Run(12 * sim.Second); err != nil {
			t.Fatalf("Run: %v", err)
		}
		tb.StopTraffic()
		if err := tb.Engine.Run(14 * sim.Second); err != nil {
			t.Fatalf("Run drain: %v", err)
		}
		return tb.Recorder.TotalLost()
	}
	strict := run(false)
	partial := run(true)
	if strict == 0 {
		t.Fatal("overload scenario lost nothing under strict grants")
	}
	if partial >= strict {
		t.Errorf("partial grants lost %d ≥ strict %d; no graceful degradation", partial, strict)
	}
}

func TestAuthenticatedHandoffSucceeds(t *testing.T) {
	tb := NewTestbed(Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      40,
		Alpha:         2,
		BufferRequest: 20,
		AuthKey:       []byte("domain-key"),
	})
	unit := tb.AddMobileHost(wireless.Linear{Start: 50, Speed: MHSpeed}, []FlowSpec{
		AudioFlow(inet.ClassHighPriority),
	})
	tb.StartTraffic()
	if err := tb.Run(12 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	tb.StopTraffic()
	if err := tb.Engine.Run(14 * sim.Second); err != nil {
		t.Fatalf("Run drain: %v", err)
	}
	recs := unit.MH.Handoffs()
	if len(recs) != 1 || !recs[0].Anticipated || !recs[0].NARGranted {
		t.Fatalf("authenticated handoff did not complete normally: %+v", recs)
	}
	if lost := tb.Recorder.Flow(unit.Flows[0]).Lost(); lost != 0 {
		t.Errorf("lost %d packets with matching keys", lost)
	}
	if tb.NAR.AuthRejects() != 0 {
		t.Errorf("NAR rejected %d authentic messages", tb.NAR.AuthRejects())
	}
}

func TestUnauthenticatedHostIsRefused(t *testing.T) {
	// Routers require authentication but the host has no key: the NAR
	// refuses its handoff (the FNA is also discarded), so the host never
	// gains service on the new network — "authentication is required
	// before the NAR accepts handoffs from mobile hosts".
	tb := NewTestbed(Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      40,
		BufferRequest: 20,
		AuthKey:       []byte("domain-key"),
	})
	unit := tb.AddMobileHost(wireless.Linear{Start: 50, Speed: MHSpeed}, []FlowSpec{
		AudioFlow(inet.ClassHighPriority),
	})
	unit.MH.SetAuthKey(nil) // the host cannot sign

	tb.StartTraffic()
	if err := tb.Run(16 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if tb.PAR.AuthRejects() == 0 {
		t.Fatal("PAR never rejected the unauthenticated solicitations")
	}
	// No anticipated handoff completed at all: unsigned RtSolPr messages
	// go unanswered, and the eventual unanticipated FNA is discarded too.
	for _, rec := range unit.MH.Handoffs() {
		if rec.Anticipated {
			t.Fatalf("unauthenticated host obtained an anticipated handoff: %+v", rec)
		}
	}
	// Service on the new network is denied: deliveries stop after the
	// host leaves the old coverage (x=112 at t≈6.2s).
	f := tb.Recorder.Flow(unit.Flows[0])
	var lastDelivery sim.Time
	for _, s := range f.Delays {
		if s.At > lastDelivery {
			lastDelivery = s.At
		}
	}
	if lastDelivery > 8*sim.Second {
		t.Errorf("unauthenticated host still receiving at %v", lastDelivery)
	}
	if f.Lost() == 0 {
		t.Error("no losses despite denied handoff")
	}
}

func TestWrongKeyRouterPairRefusesHandover(t *testing.T) {
	// The PAR signs with one key but the NAR expects another (e.g. a
	// mis-provisioned neighbour): the HI fails verification, the PAR gets
	// a refusal HAck, releases its session, and informs the host.
	tb := NewTestbed(Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      40,
		BufferRequest: 20,
		AuthKey:       []byte("par-key"),
	})
	tb.NAR.SetAuthKey([]byte("different-key"))
	unit := tb.AddMobileHost(wireless.Linear{Start: 50, Speed: MHSpeed}, []FlowSpec{
		AudioFlow(inet.ClassHighPriority),
	})
	tb.StartTraffic()
	if err := tb.Run(8 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if tb.NAR.AuthRejects() == 0 {
		t.Fatal("mismatched keys never rejected an HI")
	}
	for _, rec := range unit.MH.Handoffs() {
		if rec.Anticipated {
			t.Fatalf("anticipated handoff completed across mismatched keys: %+v", rec)
		}
	}
	if tb.PAR.Sessions() != 0 || tb.PAR.Pool().Reserved() != 0 {
		t.Errorf("refused handover leaked PAR state: sessions=%d reserved=%d",
			tb.PAR.Sessions(), tb.PAR.Pool().Reserved())
	}
}

func TestStationaryHostKeepsBindingAlive(t *testing.T) {
	// The default registration lifetime is 60 s; a stationary host must
	// refresh it indefinitely or its traffic dies at the anchor.
	tb := NewTestbed(Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      40,
		BufferRequest: 20,
	})
	unit := tb.AddMobileHost(wireless.Fixed(10), []FlowSpec{
		{Class: inet.ClassHighPriority, Size: 160, Interval: 200 * sim.Millisecond},
	})
	tb.StartTraffic()
	if err := tb.Run(200 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	tb.StopTraffic()
	if err := tb.Engine.Run(202 * sim.Second); err != nil {
		t.Fatalf("Run drain: %v", err)
	}
	f := tb.Recorder.Flow(unit.Flows[0])
	if f.Lost() != 0 {
		t.Errorf("stationary host lost %d of %d packets; binding lapsed", f.Lost(), f.Sent)
	}
	if tb.MAP.NoBinding() != 0 {
		t.Errorf("MAP dropped %d packets for want of a binding", tb.MAP.NoBinding())
	}
}

func TestAttachTraceRecordsTheProtocol(t *testing.T) {
	tb := NewTestbed(Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      40,
		Alpha:         2,
		BufferRequest: 20,
	})
	unit := tb.AddMobileHost(wireless.Linear{Start: 50, Speed: MHSpeed}, []FlowSpec{
		AudioFlow(inet.ClassHighPriority),
	})
	log := trace.NewLog(0)
	tb.AttachTrace(log)

	tb.StartTraffic()
	if err := tb.Run(12 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	tb.StopTraffic()
	if err := tb.Engine.Run(14 * sim.Second); err != nil {
		t.Fatalf("Run drain: %v", err)
	}

	// The statistics recorder must still have been fed (hooks chain).
	if tb.Recorder.Flow(unit.Flows[0]).Delivered == 0 {
		t.Fatal("trace attachment broke the recorder chain")
	}
	// The control-message sequence of Figure 3.2 appears in order.
	var kinds []string
	for _, ev := range log.Filter(trace.KindControl) {
		kinds = append(kinds, ev.DetailText())
	}
	want := []string{
		"sends RtSolPr", "sends HI", "sends HAck", "sends PrRtAdv",
		"sends FBU", "sends FBAck", "sends FBAck", "sends FNA", "sends BF",
	}
	if len(kinds) < len(want) {
		t.Fatalf("control trace too short: %v", kinds)
	}
	for i, w := range want {
		if kinds[i] != w {
			t.Fatalf("control sequence diverges at %d: got %v, want %v", i, kinds, want)
		}
	}
	// Link events and deliveries were recorded too.
	if len(log.Filter(trace.KindLinkDown)) != 1 || len(log.Filter(trace.KindLinkUp)) != 1 {
		t.Error("link transitions missing from the trace")
	}
	if len(log.Filter(trace.KindHandoff)) != 1 {
		t.Error("handoff completion missing from the trace")
	}
	if len(log.Filter(trace.KindDeliver)) == 0 {
		t.Error("deliveries missing from the trace")
	}
}

func TestShutdownDeregistersAndDetaches(t *testing.T) {
	tb := NewTestbed(Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      40,
		BufferRequest: 20,
	})
	unit := tb.AddMobileHost(wireless.Fixed(10), []FlowSpec{
		AudioFlow(inet.ClassHighPriority),
	})
	tb.StartTraffic()
	if err := tb.Run(2 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	unit.MH.Shutdown()
	if err := tb.Engine.Run(3 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The MAP binding is gone; further traffic dies at the anchor.
	if _, ok := tb.MAP.Cache().Lookup(unit.RCoA, tb.Engine.Now()); ok {
		t.Error("binding survived shutdown")
	}
	before := tb.MAP.NoBinding()
	if err := tb.Engine.Run(4 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	tb.StopTraffic()
	if tb.MAP.NoBinding() <= before {
		t.Error("post-shutdown traffic not accounted at the anchor")
	}
	if unit.Station.AP() != nil {
		t.Error("station still associated after shutdown")
	}
}

func TestShadowBufferingRidesOutBadLink(t *testing.T) {
	// §3.3: the host senses poor link quality, asks its router to buffer,
	// suffers a radio outage without switching APs, then releases. With
	// the shadow buffer nothing is lost; without it, the outage's packets
	// die on the air.
	run := func(protect bool) (lost uint64, maxDelay sim.Time) {
		tb := NewTestbed(Params{
			Scheme:        core.SchemeEnhanced,
			PoolSize:      60,
			Alpha:         2,
			BufferRequest: 40,
		})
		unit := tb.AddMobileHost(wireless.Fixed(10), []FlowSpec{
			AudioFlow(inet.ClassHighPriority),
		})
		tb.StartTraffic()

		// Outage: the radio mutes for 400 ms (detach/re-associate on the
		// same AP, no protocol involvement — pure interference).
		tb.Engine.Schedule(3*sim.Second, func() {
			if protect {
				if !unit.MH.RequestLinkBuffering() {
					t.Error("RequestLinkBuffering refused")
				}
			}
		})
		tb.Engine.Schedule(3200*sim.Millisecond, func() { unit.Station.Detach() })
		tb.Engine.Schedule(3600*sim.Millisecond, func() { unit.Station.Associate(tb.APPAR) })
		tb.Engine.Schedule(3700*sim.Millisecond, func() {
			if protect {
				if !unit.MH.ReleaseLinkBuffering() {
					t.Error("ReleaseLinkBuffering refused")
				}
			}
		})

		if err := tb.Run(6 * sim.Second); err != nil {
			t.Fatalf("Run: %v", err)
		}
		tb.StopTraffic()
		if err := tb.Engine.Run(8 * sim.Second); err != nil {
			t.Fatalf("Run drain: %v", err)
		}
		f := tb.Recorder.Flow(unit.Flows[0])
		return f.Lost(), f.MaxDelay()
	}

	lostUnprotected, _ := run(false)
	lostProtected, maxDelay := run(true)
	if lostUnprotected < 15 {
		t.Fatalf("outage lost only %d packets unprotected; too mild", lostUnprotected)
	}
	if lostProtected != 0 {
		t.Errorf("shadow buffering still lost %d packets", lostProtected)
	}
	// The protected packets waited out the outage in the router's buffer.
	if maxDelay < 300*sim.Millisecond {
		t.Errorf("max delay %v; buffered packets should carry the outage wait", maxDelay)
	}
}

func TestShadowBufferingRefusedWhenBusy(t *testing.T) {
	tb := NewTestbed(Params{Scheme: core.SchemeEnhanced, PoolSize: 40, BufferRequest: 20})
	unit := tb.AddMobileHost(wireless.Fixed(10), nil)
	if unit.MH.ReleaseLinkBuffering() {
		t.Error("release without a session succeeded")
	}
	if !unit.MH.RequestLinkBuffering() {
		t.Fatal("first request refused")
	}
	if unit.MH.RequestLinkBuffering() {
		t.Error("second concurrent request accepted")
	}
	if err := tb.Run(sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !unit.MH.ReleaseLinkBuffering() {
		t.Error("release after grant refused")
	}
	if err := tb.Engine.Run(2 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if tb.PAR.Sessions() != 0 || tb.PAR.Pool().Reserved() != 0 {
		t.Errorf("shadow session leaked: sessions=%d reserved=%d",
			tb.PAR.Sessions(), tb.PAR.Pool().Reserved())
	}
}

func TestOpposingHandoffsShareRoles(t *testing.T) {
	// Host A walks PAR→NAR while host B walks NAR→PAR at the same time:
	// each router simultaneously plays the PAR role for one host and the
	// NAR role for the other. Host B starts as a resident of the NAR.
	tb := NewTestbed(Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      60,
		Alpha:         2,
		BufferRequest: 20,
	})
	a := tb.AddMobileHost(wireless.Linear{Start: 50, Speed: MHSpeed}, []FlowSpec{
		AudioFlow(inet.ClassHighPriority),
	})
	b := tb.AddMobileHost(wireless.Linear{Start: APDistance - 50, Speed: -MHSpeed}, []FlowSpec{
		AudioFlow(inet.ClassHighPriority),
	})
	// Re-home host B onto the NAR side.
	b.MH.Attach(tb.APNAR, tb.NAR.Addr(), NetNAR)
	tb.PAR.DetachResident(inet.Addr{Net: NetPAR, Host: 11})
	for _, ifc := range tb.NAR.Router().Ifaces() {
		if ifc.Peer() == netsim.Node(tb.APNAR) {
			tb.NAR.AttachResident(b.MH.LCoA(), ifc)
		}
	}
	tb.MAP.Register(b.RCoA, b.MH.LCoA(), 3600*sim.Second)

	tb.StartTraffic()
	if err := tb.Run(12 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	tb.StopTraffic()
	if err := tb.Engine.Run(14 * sim.Second); err != nil {
		t.Fatalf("Run drain: %v", err)
	}

	for name, unit := range map[string]*MHUnit{"A": a, "B": b} {
		recs := unit.MH.Handoffs()
		if len(recs) != 1 {
			t.Fatalf("host %s: handoffs = %d, want 1", name, len(recs))
		}
		if !recs[0].Anticipated || !recs[0].NARGranted || !recs[0].PARGranted {
			t.Errorf("host %s handoff: %+v", name, recs[0])
		}
		if lost := tb.Recorder.Flow(unit.Flows[0]).Lost(); lost != 0 {
			t.Errorf("host %s lost %d packets", name, lost)
		}
	}
	if tb.PAR.Sessions() != 0 || tb.NAR.Sessions() != 0 {
		t.Errorf("sessions leaked: par=%d nar=%d", tb.PAR.Sessions(), tb.NAR.Sessions())
	}
}

func TestDeterminism(t *testing.T) {
	// Same configuration, same seed: bit-identical results — the property
	// every experiment in this repository relies on.
	run := func() (uint64, uint64, sim.Time, uint64) {
		tb := NewTestbed(Params{
			Scheme:        core.SchemeEnhanced,
			PoolSize:      20,
			Alpha:         6,
			BufferRequest: 20,
			Seed:          42,
		})
		unit := tb.AddMobileHost(wireless.PingPong{A: 20, B: 192, Speed: MHSpeed}, []FlowSpec{
			{Class: inet.ClassRealTime, Size: 160, Interval: 7 * sim.Millisecond},
			{Class: inet.ClassHighPriority, Size: 160, Interval: 9 * sim.Millisecond},
			{Class: inet.ClassBestEffort, Size: 160, Interval: 11 * sim.Millisecond},
		})
		tb.StartTraffic()
		if err := tb.Run(60 * sim.Second); err != nil {
			t.Fatalf("Run: %v", err)
		}
		f := tb.Recorder.Flow(unit.Flows[1])
		var lastAt sim.Time
		if n := len(f.Delays); n > 0 {
			lastAt = f.Delays[n-1].At
		}
		return tb.Recorder.TotalSent(), tb.Recorder.TotalLost(), lastAt, tb.Engine.Processed()
	}
	s1, l1, t1, p1 := run()
	s2, l2, t2, p2 := run()
	if s1 != s2 || l1 != l2 || t1 != t2 || p1 != p2 {
		t.Fatalf("nondeterminism: (%d,%d,%v,%d) vs (%d,%d,%v,%d)",
			s1, l1, t1, p1, s2, l2, t2, p2)
	}
	if p1 == 0 || s1 == 0 {
		t.Fatal("degenerate run")
	}
}

func TestLongRunStability(t *testing.T) {
	if testing.Short() {
		t.Skip("long run")
	}
	// Twenty ping-pong legs under the enhanced scheme with ample buffers:
	// no loss, no leaked state, no drift.
	tb := NewTestbed(Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      60,
		Alpha:         2,
		BufferRequest: 30,
	})
	unit := tb.AddMobileHost(wireless.PingPong{A: 20, B: 192, Speed: MHSpeed}, []FlowSpec{
		AudioFlow(inet.ClassHighPriority),
	})
	tb.StartTraffic()
	if err := tb.Run(20 * 18 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	tb.StopTraffic()
	if err := tb.Engine.Run(20*18*sim.Second + 5*sim.Second); err != nil {
		t.Fatalf("Run drain: %v", err)
	}
	recs := unit.MH.Handoffs()
	if len(recs) < 18 {
		t.Fatalf("handoffs = %d, want ≈20", len(recs))
	}
	f := tb.Recorder.Flow(unit.Flows[0])
	if f.Lost() > 2 {
		t.Errorf("lost %d of %d over %d handoffs", f.Lost(), f.Sent, len(recs))
	}
	if tb.PAR.Sessions()+tb.NAR.Sessions() != 0 {
		t.Errorf("sessions leaked: %d/%d", tb.PAR.Sessions(), tb.NAR.Sessions())
	}
	if tb.PAR.Pool().Reserved()+tb.NAR.Pool().Reserved() != 0 {
		t.Errorf("reservations leaked: %d/%d",
			tb.PAR.Pool().Reserved(), tb.NAR.Pool().Reserved())
	}
}

func TestHysteresisTradesAnticipationForStability(t *testing.T) {
	// The hysteresis margin moves the RSSI crossover deeper into the
	// overlap. In the thesis' geometry the edge of the old cell (112 m)
	// offers only 30·log10(112/100) ≈ 1.5 dB of margin, so a 6 dB
	// hysteresis pushes the crossover past the coverage edge entirely:
	// anticipation becomes impossible and the host falls back to the
	// lossy unanticipated path. Hysteresis is an anti-flapping knob that
	// spends the overlap budget.
	run := func(hysteresis float64) core.HandoffRecord {
		tb := NewTestbed(Params{
			Scheme:        core.SchemeEnhanced,
			PoolSize:      40,
			BufferRequest: 20,
			HysteresisDB:  hysteresis,
		})
		unit := tb.AddMobileHost(wireless.Linear{Start: 50, Speed: MHSpeed}, []FlowSpec{
			AudioFlow(inet.ClassHighPriority),
		})
		if err := tb.Run(16 * sim.Second); err != nil {
			t.Fatalf("Run: %v", err)
		}
		recs := unit.MH.Handoffs()
		if len(recs) != 1 {
			t.Fatalf("handoffs = %d, want 1", len(recs))
		}
		return recs[0]
	}
	base := run(0)
	if !base.Anticipated {
		t.Fatal("0 dB hysteresis should anticipate")
	}
	// 1 dB fits inside the overlap's ≈1.5 dB budget: still anticipated,
	// but triggered later (the crossover moves from ≈106 m to ≈110 m).
	mild := run(1)
	if mild.Triggered < base.Triggered {
		t.Errorf("1 dB hysteresis triggered earlier (%v) than 0 dB (%v)",
			mild.Triggered, base.Triggered)
	}
	// 6 dB exceeds the budget: anticipation impossible, fallback engaged.
	harsh := run(6)
	if harsh.Anticipated {
		t.Error("6 dB hysteresis still anticipated; crossover math wrong")
	}
	if harsh.Triggered <= base.Triggered {
		t.Errorf("fallback trigger %v not after the anticipated one %v",
			harsh.Triggered, base.Triggered)
	}
}

func TestNetworkInitiatedHandover(t *testing.T) {
	// The network decides: the PAR initiates the handover for a stationary
	// host sitting in the overlap (e.g. for load balancing). The host has
	// heard the target's beacons, accepts the unsolicited PrRtAdv, and the
	// handover completes buffered and lossless.
	tb := NewTestbed(Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      40,
		Alpha:         2,
		BufferRequest: 20,
		// Hysteresis keeps the stationary host from trigger-flapping in
		// either direction: near the midpoint the RSSI difference is
		// ≈0.5 dB, well under the 3 dB margin, so only the network's
		// decision moves it (and it stays moved).
		HysteresisDB: 3,
	})
	unit := tb.AddMobileHost(wireless.Fixed(104), []FlowSpec{ // overlap, PAR side
		AudioFlow(inet.ClassHighPriority),
	})
	tb.StartTraffic()
	// Let beacons register, then push the host off the PAR.
	initiated := false
	tb.Engine.Schedule(3*sim.Second, func() {
		initiated = tb.PAR.InitiateHandover(unit.MH.LCoA(), "ap-nar", 20)
	})
	if err := tb.Run(8 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	tb.StopTraffic()
	if err := tb.Engine.Run(10 * sim.Second); err != nil {
		t.Fatalf("Run drain: %v", err)
	}
	if !initiated {
		t.Fatal("InitiateHandover refused")
	}
	recs := unit.MH.Handoffs()
	if len(recs) != 1 {
		t.Fatalf("handoffs = %d, want 1", len(recs))
	}
	if !recs[0].NARGranted || !recs[0].PARGranted {
		t.Errorf("grants: %+v", recs[0])
	}
	if lost := tb.Recorder.Flow(unit.Flows[0]).Lost(); lost != 0 {
		t.Errorf("network-initiated handover lost %d packets", lost)
	}
	// The host now lives on the NAR.
	if unit.MH.LCoA().Net != NetNAR {
		t.Errorf("LCoA on net %d, want %d", unit.MH.LCoA().Net, NetNAR)
	}
	if tb.PAR.Sessions()+tb.NAR.Sessions() != 0 {
		t.Errorf("sessions leaked: %d/%d", tb.PAR.Sessions(), tb.NAR.Sessions())
	}
}

func TestNetworkInitiatedRefusals(t *testing.T) {
	tb := NewTestbed(Params{Scheme: core.SchemeEnhanced, PoolSize: 40, BufferRequest: 20})
	unit := tb.AddMobileHost(wireless.Fixed(104), nil)
	if tb.PAR.InitiateHandover(unit.MH.LCoA(), "nowhere", 20) {
		t.Error("unknown AP accepted")
	}
	if tb.PAR.InitiateHandover(unit.MH.LCoA(), "ap-par", 20) {
		t.Error("own AP accepted as a network-handover target")
	}
	if !tb.PAR.InitiateHandover(unit.MH.LCoA(), "ap-nar", 20) {
		t.Fatal("valid target refused")
	}
	if tb.PAR.InitiateHandover(unit.MH.LCoA(), "ap-nar", 20) {
		t.Error("duplicate initiation accepted")
	}
	// The host has heard no beacons yet (traffic never started, but
	// beacons run regardless — drain the first ones): regardless, the
	// session must not leak if the host never acts.
	if err := tb.Run(12 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if tb.PAR.Pool().Reserved()+tb.NAR.Pool().Reserved() != 0 {
		t.Errorf("reservations leaked: %d/%d",
			tb.PAR.Pool().Reserved(), tb.NAR.Pool().Reserved())
	}
}
