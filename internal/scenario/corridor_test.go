package scenario

import (
	"testing"

	"repro/internal/core"
	"repro/internal/inet"
)

func TestCorridorHandsOffAtEveryBoundary(t *testing.T) {
	const routers = 5
	c := NewCorridor(CorridorParams{
		Routers:       routers,
		Scheme:        core.SchemeEnhanced,
		PoolSize:      40,
		Alpha:         2,
		BufferRequest: 20,
	}, AudioFlow(inet.ClassHighPriority))
	if err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}

	recs := c.MH.Handoffs()
	if len(recs) != routers-1 {
		t.Fatalf("handoffs = %d, want %d", len(recs), routers-1)
	}
	for i, rec := range recs {
		if !rec.Anticipated {
			t.Errorf("handoff %d was not anticipated", i)
		}
		if !rec.NARGranted || !rec.PARGranted {
			t.Errorf("handoff %d grants: nar=%t par=%t", i, rec.NARGranted, rec.PARGranted)
		}
	}

	// Buffered end to end: nothing lost across four handoffs.
	f := c.Recorder.Flow(c.Flow)
	if f.Lost() != 0 {
		t.Errorf("lost %d of %d packets across the corridor", f.Lost(), f.Sent)
	}

	// The host ends up bound to the last router's network.
	b, ok := c.MAP.Cache().Lookup(inet.Addr{Net: NetMAP, Host: 1000}, c.Engine.Now())
	if !ok {
		t.Fatal("MAP binding missing after the walk")
	}
	if want := corridorNetBase + inet.NetID(routers-1); b.CoA.Net != want {
		t.Errorf("final binding on net %d, want %d", b.CoA.Net, want)
	}

	// Every intermediate router's sessions and reservations drained.
	for i, ar := range c.ARs {
		if ar.Sessions() != 0 {
			t.Errorf("ar%d leaked %d sessions", i, ar.Sessions())
		}
		if ar.Pool().Reserved() != 0 {
			t.Errorf("ar%d leaked %d reserved packets", i, ar.Pool().Reserved())
		}
	}
}

func TestCorridorUnbufferedLosesPerHop(t *testing.T) {
	const routers = 4
	c := NewCorridor(CorridorParams{
		Routers: routers,
		Scheme:  core.SchemeFHNoBuffer,
	}, AudioFlow(inet.ClassHighPriority))
	if err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	recs := c.MH.Handoffs()
	if len(recs) != routers-1 {
		t.Fatalf("handoffs = %d, want %d", len(recs), routers-1)
	}
	f := c.Recorder.Flow(c.Flow)
	// Each 200 ms blackout at 50 packets/s costs ≈10 packets.
	perHop := float64(f.Lost()) / float64(routers-1)
	if perHop < 7 || perHop > 16 {
		t.Errorf("per-hop loss = %.1f (total %d), want ≈10", perHop, f.Lost())
	}
}

func TestCorridorDeliversInOrder(t *testing.T) {
	c := NewCorridor(CorridorParams{
		Routers:       3,
		Scheme:        core.SchemeEnhanced,
		PoolSize:      40,
		Alpha:         2,
		BufferRequest: 20,
	}, AudioFlow(inet.ClassRealTime))
	if err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	f := c.Recorder.Flow(c.Flow)
	last := int64(-1)
	for _, s := range f.Delays {
		if int64(s.Seq) <= last {
			t.Fatalf("out-of-order delivery: seq %d after %d", s.Seq, last)
		}
		last = int64(s.Seq)
	}
}
