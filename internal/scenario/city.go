package scenario

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/inet"
	"repro/internal/mip"
	"repro/internal/netsim"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/internal/wireless"
)

// The city scenario scales the metro cell out to a whole metropolitan
// deployment: tens of AR domains — each a PAR/NAR pair with its own access
// points, air medium, and resident hosts — anchored at a small set of
// region MAPs. The topology is partitioned into shards (one sim.Engine
// each) run in parallel under a conservative epoch-barrier protocol whose
// lookahead is the minimum inter-domain wired delay; all MAP-facing links
// cross shard boundaries through netsim.ShardExchange mailboxes.
//
// Every AR domain is self-contained: its correspondent node, routers,
// access points, hosts, packet pool, and statistics recorder all live on
// the domain's shard, so a shard never touches another shard's state
// mid-epoch. Only the region MAPs are shared, and they are shards of their
// own (or co-resident with domains, balanced by deterministic greedy
// assignment).

// Network numbering of the city topology. Region MAPs manage
// cityMAPNetBase+r; domain d's correspondent node, PAR, and NAR live on
// cityCNNetBase+d, cityDomainNetBase+2d, and cityDomainNetBase+2d+1.
const (
	cityMAPNetBase    inet.NetID = 50
	cityCNNetBase     inet.NetID = 1000
	cityDomainNetBase inet.NetID = 2000
)

// cityCrossDelay is the one-way delay of every inter-domain (MAP-facing)
// link. It is also the shard group's lookahead: the barrier protocol may
// run each shard cityCrossDelay of virtual time per epoch.
const cityCrossDelay = 5 * sim.Millisecond

// DefaultCityShards is the shard count used when CityParams.Shards is
// zero. It is a fixed constant rather than the machine's core count so the
// published tables are byte-identical everywhere; `experiments -shards`
// overrides it.
var DefaultCityShards = 8

// DefaultCityWorkers, when positive, is the worker count used when
// CityParams.Workers is zero (`experiments -workers` sets it). Zero means
// "derive from the machine": GOMAXPROCS for the figure path, a small fixed
// count for runner specs (whose replicas already run concurrently).
var DefaultCityWorkers = 0

// DefaultCityFixedEpochs, when true, runs the city shard group in the
// classic fixed-width epoch mode instead of adaptive epochs
// (`experiments -fixed-epochs`). The simulation results are byte-identical
// either way — the mode exists as the measurement baseline for barrier
// statistics.
var DefaultCityFixedEpochs = false

// cityWorkers resolves the worker count for a sharded city run — the one
// defaulting path shared by applyDefaults and CitySpec. An explicit request
// wins, then the process-wide default (the -workers flag), then fallback;
// the result is clamped to [1, shards] since more workers than shards can
// never help.
func cityWorkers(requested, shards, fallback int) int {
	w := requested
	if w <= 0 {
		w = DefaultCityWorkers
	}
	if w <= 0 {
		w = fallback
	}
	if w > shards {
		w = shards
	}
	if w < 1 {
		w = 1
	}
	return w
}

// CityParams configures the sharded city-scale scenario. Zero values
// select the acceptance-scale defaults (50 domains × 2000 hosts).
type CityParams struct {
	// Domains is the number of AR domains (PAR/NAR pairs).
	Domains int
	// HostsPerDomain is how many mobile hosts each domain carries through
	// a staggered PAR→NAR handoff.
	HostsPerDomain int
	// MAPs is the number of region anchors. It is a model parameter,
	// deliberately independent of Shards: a 1-shard and an 8-shard run
	// simulate the identical city.
	MAPs int
	// Shards is the partition size (engines run in parallel). Zero selects
	// DefaultCityShards. Results depend on the shard count (same-instant
	// tie-breaks differ across partitions) but never on Workers.
	Shards int
	// Workers bounds the goroutines running shards. Zero selects
	// DefaultCityWorkers, then GOMAXPROCS. Any worker count produces
	// byte-identical results.
	Workers int
	// FixedEpochs reverts the shard group to fixed-width epochs (the
	// pre-adaptive protocol). Zero value — adaptive — is what everything
	// but differential tests and barrier measurements wants.
	FixedEpochs bool
	// Scheme selects the buffering behaviour on the access routers.
	Scheme core.Scheme
	// PoolSize is each access router's buffer pool in packets.
	PoolSize int
	// BufferRequest is the per-host buffer demand in packets.
	BufferRequest int
	// Alpha is the PAR's best-effort admission threshold.
	Alpha int
	// StaggerWindow overrides the window each domain's handoffs spread
	// over. Zero scales with the host count (metroWindow).
	StaggerWindow sim.Time
	// Seed drives beacon phases (per-domain streams are derived from it).
	Seed int64
	// Engine optionally seeds shard 0 with a reused engine (reset first),
	// so the Monte-Carlo runner keeps a warmed free list per worker.
	Engine *sim.Engine

	// forceSerial, set only by tests, bypasses the shard group and steps
	// the single engine directly — the differential reference proving the
	// one-shard partition is the serial engine.
	forceSerial bool
}

func (p *CityParams) applyDefaults() {
	if p.Domains <= 0 {
		p.Domains = 50
	}
	if p.HostsPerDomain <= 0 {
		p.HostsPerDomain = 2000
	}
	if p.MAPs <= 0 {
		p.MAPs = 2
	}
	if p.MAPs > p.Domains {
		p.MAPs = p.Domains
	}
	if p.Shards <= 0 {
		p.Shards = DefaultCityShards
	}
	p.Workers = cityWorkers(p.Workers, p.Shards, runtime.GOMAXPROCS(0))
	if DefaultCityFixedEpochs {
		p.FixedEpochs = true
	}
	if p.Scheme == 0 {
		p.Scheme = core.SchemeEnhanced
	}
	if p.PoolSize <= 0 {
		p.PoolSize = 240
	}
	if p.BufferRequest <= 0 {
		p.BufferRequest = 12
	}
	if p.Alpha == 0 {
		p.Alpha = 2
	}
	if p.StaggerWindow <= 0 {
		p.StaggerWindow = metroWindow(p.HostsPerDomain)
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
}

// cityAssign distributes the region MAPs and the AR domains over shards
// with a deterministic longest-processing-time greedy: heavier units first,
// each to the least-loaded shard, ties to the lowest shard index. The
// assignment is a pure function of (maps, domains, shards) — never of
// worker scheduling — which is half of the determinism contract.
func cityAssign(maps, domains, shards int) (mapShard, domShard []int) {
	type unit struct {
		weight int
		isMAP  bool
		idx    int
	}
	// A MAP serves domains/maps domains but touches only the wired half of
	// each packet's life — measured at about a quarter of a domain's event
	// load per served domain (intercept + tunnel transmit vs. the domain's
	// full CN→AR→air→MH chain).
	mapWeight := domains / (4 * maps)
	if mapWeight < 1 {
		mapWeight = 1
	}
	units := make([]unit, 0, maps+domains)
	for r := 0; r < maps; r++ {
		units = append(units, unit{weight: mapWeight, isMAP: true, idx: r})
	}
	for d := 0; d < domains; d++ {
		units = append(units, unit{weight: 1, idx: d})
	}
	sort.SliceStable(units, func(i, j int) bool { return units[i].weight > units[j].weight })

	load := make([]int, shards)
	mapShard = make([]int, maps)
	domShard = make([]int, domains)
	for _, u := range units {
		best := 0
		for s := 1; s < shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		load[best] += u.weight
		if u.isMAP {
			mapShard[u.idx] = best
		} else {
			domShard[u.idx] = best
		}
	}
	return mapShard, domShard
}

// cityMAP is one region anchor: a MAP agent with its own topology (packet
// pool) and recorder, all owned by its shard.
type cityMAP struct {
	shard    int
	engine   *sim.Engine
	topo     *netsim.Topology
	router   *netsim.Router
	agent    *mip.Agent
	recorder *stats.Recorder
	net      inet.NetID
}

// cityDomain is one AR domain: everything between a correspondent node and
// the air interface, owned by a single shard.
type cityDomain struct {
	shard    int
	engine   *sim.Engine
	topo     *netsim.Topology
	medium   *wireless.Medium
	recorder *stats.Recorder
	anchor   *cityMAP

	cn       *netsim.Host
	par, nar *core.AccessRouter
	apPAR    *wireless.AccessPoint
	apNAR    *wireless.AccessPoint
	parAPL   *netsim.Link
	// wired holds every wired link of the domain, indexed by cityLinkRoles,
	// for the utilization rollup.
	wired [len(cityLinkRoles)]*netsim.Link

	parNet, narNet, cnNet inet.NetID

	hosts []*cityHost
}

// cityLinkRoles names the wired link roles of one AR domain, in render
// order: the three MAP-facing (usually cross-shard) links, the direct
// PAR–NAR link, and the two router–AP links.
var cityLinkRoles = [...]string{"cn-map", "par-map", "nar-map", "par-nar", "par-ap", "nar-ap"}

// cityHost is one mobile host and its audio flow.
type cityHost struct {
	mh   *core.MobileHost
	src  *traffic.CBR
	flow inet.FlowID
}

// city is the assembled partitioned topology.
type city struct {
	params   CityParams
	engines  []*sim.Engine
	exchange *netsim.ShardExchange
	group    *sim.ShardGroup
	maps     []*cityMAP
	domains  []*cityDomain
}

// releaseChain recycles a dead UDP chain into the given topology's pool
// (the pool of whichever shard the packet died on — pools trade packets
// across shards only through the quiescent barrier, so this is race-free).
func releaseChain(topo *netsim.Topology, pkt *inet.Packet) {
	if pkt.Innermost().Proto != inet.ProtoUDP {
		return
	}
	for p := pkt; p != nil; p = p.Inner {
		topo.ReleasePacket(p)
	}
}

// newCity builds the partitioned topology. Construction is single-threaded
// and ordered (MAPs, then domains, then hosts), so every engine's event
// sequence numbers — and hence the whole run — are a pure function of the
// parameters.
func newCity(p CityParams) *city {
	mapShard, domShard := cityAssign(p.MAPs, p.Domains, p.Shards)

	engines := make([]*sim.Engine, p.Shards)
	for s := range engines {
		if s == 0 && p.Engine != nil {
			p.Engine.Reset()
			engines[s] = p.Engine
			continue
		}
		engines[s] = sim.NewEngine()
	}
	c := &city{params: p, engines: engines, exchange: netsim.NewShardExchange()}

	for r := 0; r < p.MAPs; r++ {
		engine := engines[mapShard[r]]
		topo := netsim.NewTopology(engine)
		net := cityMAPNetBase + inet.NetID(r)
		router := netsim.NewRouter(fmt.Sprintf("map%d", r), inet.Addr{Net: net, Host: 1})
		recorder := stats.NewRecorderMode(stats.ModeStreaming)
		agent := mip.NewAgent(engine, router, mip.AgentConfig{
			ManagedNet: net,
			Alloc:      topo.AllocPacket,
		})
		agent.OnBicast = func(pkt *inet.Packet) { recorder.BicastDuplicate(pkt) }
		c.maps = append(c.maps, &cityMAP{
			shard: mapShard[r], engine: engine, topo: topo, router: router,
			agent: agent, recorder: recorder, net: net,
		})
	}

	nextRCoA := inet.HostID(0)
	for d := 0; d < p.Domains; d++ {
		dom := c.buildDomain(d, domShard[d], c.maps[d*p.MAPs/p.Domains])
		c.domains = append(c.domains, dom)
		for i := 0; i < p.HostsPerDomain; i++ {
			nextRCoA++
			c.addHost(dom, i, nextRCoA)
		}
	}

	lookahead := c.exchange.Lookahead()
	if lookahead == 0 {
		lookahead = cityCrossDelay // single shard: no cross links exist
	}
	c.group = sim.NewShardGroup(engines, lookahead, p.Workers)
	c.group.SetExchange(c.exchange.Flush)
	c.group.SetExchangePending(c.exchange.Pending)
	if p.FixedEpochs {
		c.group.SetAdaptive(false)
	}
	return c
}

// buildDomain assembles AR domain d on its shard and wires it to its
// region MAP across the shard boundary.
func (c *city) buildDomain(d, shard int, anchor *cityMAP) *cityDomain {
	p := c.params
	engine := c.engines[shard]
	topo := netsim.NewTopology(engine)
	medium := wireless.NewMedium(engine)
	recorder := stats.NewRecorderMode(stats.ModeStreaming)
	rng := sim.NewRNG(p.Seed + int64(d)*1_000_003)

	parNet := cityDomainNetBase + inet.NetID(2*d)
	narNet := cityDomainNetBase + inet.NetID(2*d+1)
	cnNet := cityCNNetBase + inet.NetID(d)

	cn := netsim.NewHost(fmt.Sprintf("cn%d", d), inet.Addr{Net: cnNet, Host: 1})
	parRouter := netsim.NewRouter(fmt.Sprintf("par%d", d), inet.Addr{Net: parNet, Host: 1})
	narRouter := netsim.NewRouter(fmt.Sprintf("nar%d", d), inet.Addr{Net: narNet, Host: 1})

	arLink := topo.Connect(parRouter, narRouter, netsim.LinkConfig{BandwidthBPS: arBandwidth, Delay: 2 * sim.Millisecond})
	apPAR := wireless.NewAccessPoint(fmt.Sprintf("ap%d-par", d), medium, wireless.APConfig{
		Pos: 0, Radius: APRadius, BandwidthBPS: airBandwidth, AirDelay: sim.Millisecond,
		ReturnUndeliverable: true,
	})
	apNAR := wireless.NewAccessPoint(fmt.Sprintf("ap%d-nar", d), medium, wireless.APConfig{
		Pos: APDistance, Radius: APRadius, BandwidthBPS: airBandwidth, AirDelay: sim.Millisecond,
		ReturnUndeliverable: true,
	})
	parAPLink := topo.Connect(parRouter, apPAR, netsim.LinkConfig{BandwidthBPS: apBandwidth, Delay: sim.Millisecond / 2})
	narAPLink := topo.Connect(narRouter, apNAR, netsim.LinkConfig{BandwidthBPS: apBandwidth, Delay: sim.Millisecond / 2})

	topo.ClaimNet(parNet, parRouter)
	topo.ClaimNet(narNet, narRouter)
	if err := topo.ComputeRoutes(); err != nil {
		panic(fmt.Sprintf("city: domain %d routes: %v", d, err))
	}
	// Handover signalling and redirected packets take the direct PAR–NAR
	// link, exactly as in the reference testbed.
	parRouter.AddPrefixRoute(narNet, arLink.A())
	narRouter.AddPrefixRoute(parNet, arLink.B())

	// Inter-domain wiring: the correspondent node and both access routers
	// face the region MAP over cross-shard mailbox links (plain links when
	// the assignment co-located them — ShardExchange.Connect decides).
	cnMAP := c.exchange.Connect(engine, anchor.engine, cn, anchor.router,
		netsim.LinkConfig{BandwidthBPS: coreBandwidth, Delay: cityCrossDelay})
	parMAP := c.exchange.Connect(engine, anchor.engine, parRouter, anchor.router,
		netsim.LinkConfig{BandwidthBPS: arBandwidth, Delay: cityCrossDelay})
	narMAP := c.exchange.Connect(engine, anchor.engine, narRouter, anchor.router,
		netsim.LinkConfig{BandwidthBPS: arBandwidth, Delay: cityCrossDelay})
	// Domain side: everything non-local goes up to the MAP.
	parRouter.AddPrefixRoute(anchor.net, parMAP.A())
	parRouter.AddPrefixRoute(cnNet, parMAP.A())
	narRouter.AddPrefixRoute(anchor.net, narMAP.A())
	narRouter.AddPrefixRoute(cnNet, narMAP.A())
	// MAP side: per-domain downlink routes.
	anchor.router.AddPrefixRoute(parNet, parMAP.B())
	anchor.router.AddPrefixRoute(narNet, narMAP.B())
	anchor.router.AddPrefixRoute(cnNet, cnMAP.B())

	dir := core.NewDirectory()
	arCfg := core.ARConfig{
		Scheme:   p.Scheme,
		PoolSize: p.PoolSize,
		Alpha:    p.Alpha,
	}
	par := core.NewAccessRouter(engine, parRouter, parNet, dir, arCfg)
	nar := core.NewAccessRouter(engine, narRouter, narNet, dir, arCfg)
	par.AddAP(apPAR.Name(), parAPLink.A())
	nar.AddAP(apNAR.Name(), narAPLink.A())

	for _, ar := range []*core.AccessRouter{par, nar} {
		ar.OnDrop = func(pkt *inet.Packet, where string) {
			recorder.Dropped(pkt, where)
			releaseChain(topo, pkt)
		}
		ar.OnBicastDiscard = func(pkt *inet.Packet) {
			recorder.DedupDiscardNAR()
			releaseChain(topo, pkt)
		}
	}
	dataAirDrop := func(pkt *inet.Packet) {
		if pkt.Innermost().Proto != inet.ProtoControl {
			recorder.DroppedSite(pkt, stats.SiteAir)
		}
		releaseChain(topo, pkt)
	}
	apPAR.AirDropHook = dataAirDrop
	apNAR.AirDropHook = dataAirDrop
	topo.HookDrops(func(pkt *inet.Packet) {
		if pkt.Innermost().Proto != inet.ProtoControl {
			recorder.DroppedSite(pkt, stats.SiteLinkQueue)
		}
		releaseChain(topo, pkt)
	})
	// Tail drops on the domain side of the cross links are charged to the
	// domain's recorder (the sending event runs on this shard); the MAP
	// side's belong to the MAP's recorder.
	domainDrop := func(pkt *inet.Packet) {
		if pkt.Innermost().Proto != inet.ProtoControl {
			recorder.DroppedSite(pkt, stats.SiteLinkQueue)
		}
		releaseChain(topo, pkt)
	}
	mapDrop := func(pkt *inet.Packet) {
		if pkt.Innermost().Proto != inet.ProtoControl {
			anchor.recorder.DroppedSite(pkt, stats.SiteLinkQueue)
		}
		releaseChain(anchor.topo, pkt)
	}
	for _, l := range []*netsim.Link{cnMAP, parMAP, narMAP} {
		l.A().DropHook = domainDrop
		l.B().DropHook = mapDrop
	}

	raInterval := 500 * sim.Millisecond
	apPAR.StartAdvertising(wireless.Advertisement{Router: parRouter.Addr(), Net: parNet},
		raInterval, rng.Uniform(0, raInterval))
	apNAR.StartAdvertising(wireless.Advertisement{Router: narRouter.Addr(), Net: narNet},
		raInterval, rng.Uniform(0, raInterval))

	return &cityDomain{
		shard: shard, engine: engine, topo: topo, medium: medium,
		recorder: recorder, anchor: anchor,
		cn: cn, par: par, nar: nar, apPAR: apPAR, apNAR: apNAR,
		parAPL: parAPLink,
		wired:  [...]*netsim.Link{cnMAP, parMAP, narMAP, arLink, parAPLink, narAPLink},
		parNet: parNet, narNet: narNet, cnNet: cnNet,
	}
}

// addHost creates mobile host i of a domain: attached at the PAR, anchored
// at the region MAP under a city-unique RCoA, with one staggered audio
// flow and a Linear walk into the NAR's cell.
func (c *city) addHost(dom *cityDomain, i int, rcoaHost inet.HostID) {
	p := c.params
	window := p.StaggerWindow
	from := window * sim.Time(i) / sim.Time(p.HostsPerDomain)
	rcoa := inet.Addr{Net: dom.anchor.net, Host: 1000 + rcoaHost}

	station := wireless.NewStation(fmt.Sprintf("mh%d-%d", dom.cnNet-cityCNNetBase, i), dom.medium,
		wireless.Linear{Start: 50, Speed: MHSpeed, From: from},
		wireless.StationConfig{
			BandwidthBPS:   airBandwidth,
			AirDelay:       sim.Millisecond,
			L2HandoffDelay: 200 * sim.Millisecond,
		})
	// Station-side uplink losses mirror the APs' AirDropHook accounting.
	station.TxDropHook = func(pkt *inet.Packet) {
		if pkt.Innermost().Proto != inet.ProtoControl {
			dom.recorder.DroppedSite(pkt, stats.SiteAirUplink)
		}
		releaseChain(dom.topo, pkt)
	}
	mh := core.NewMobileHost(dom.engine, station, rcoa, dom.anchor.router.Addr(), core.MHConfig{
		HostID:        inet.HostID(10 + i),
		Scheme:        p.Scheme,
		BufferRequest: p.BufferRequest,
	})
	mh.Attach(dom.apPAR, dom.par.Addr(), dom.parNet)
	dom.par.AttachResident(mh.LCoA(), dom.parAPL.A())
	dom.anchor.agent.Register(rcoa, mh.LCoA(), 3600*sim.Second)
	mh.StartRegistration()

	sink := traffic.Sink(dom.engine, dom.recorder)
	topo := dom.topo
	mh.OnDeliver = func(pkt *inet.Packet) {
		sink(pkt)
		if pkt.Proto == inet.ProtoUDP {
			topo.ReleasePacket(pkt)
		}
	}
	mh.ReleaseTunnel = func(outer, inner *inet.Packet) {
		for q := outer; q != nil && q != inner; q = q.Inner {
			topo.ReleasePacket(q)
		}
	}
	recorder := dom.recorder
	mh.OnDuplicate = func(pkt *inet.Packet) {
		recorder.DedupDiscardMH()
		if pkt.Proto == inet.ProtoUDP {
			topo.ReleasePacket(pkt)
		}
	}

	flowID := topo.NewFlowID()
	src := traffic.NewCBR(dom.engine, traffic.CBRConfig{
		Flow:     flowID,
		Class:    inet.Classes[i%3],
		Src:      dom.cn.Addr(),
		Dst:      rcoa,
		Size:     160,
		Interval: 20 * sim.Millisecond,
		Alloc:    topo.AllocPacket,
	}, dom.cn.Send, topo.NewPacketID, recorder)
	src.Start(from + metroTrafficLead)
	dom.engine.Schedule(from+metroTrafficStop, src.Stop)

	dom.hosts = append(dom.hosts, &cityHost{mh: mh, src: src, flow: flowID})
}

// run advances the whole city through the handoff window and the
// post-traffic drain.
func (c *city) run() error {
	p := c.params
	horizon := p.StaggerWindow + 12*sim.Second
	drain := horizon + core.DefaultSessionLifetime + 2*sim.Second
	if p.forceSerial {
		if len(c.engines) != 1 {
			panic("city: forceSerial needs a single shard")
		}
		if err := c.engines[0].Run(horizon); err != nil {
			return err
		}
		c.stopTraffic()
		return c.engines[0].Run(drain)
	}
	if err := c.group.Run(horizon); err != nil {
		return err
	}
	c.stopTraffic()
	return c.group.Run(drain)
}

// stopTraffic stops every source. It runs between group.Run calls, with
// every shard parked at the barrier.
func (c *city) stopTraffic() {
	for _, dom := range c.domains {
		for _, h := range dom.hosts {
			h.src.Stop()
		}
	}
}

// CityDomainRow is one domain's outcome (deterministic for a fixed shard
// count, independent of worker count).
type CityDomainRow struct {
	Domain       int
	Shard        int
	Handoffs     int
	Grants       uint64
	Refusals     uint64
	PeakNAR      int
	PeakPAR      int
	Lost         [3]uint64
	MaxDelayMs   float64
	MeanDelayMs  float64
	SessionsLeft int
}

// CityResult aggregates the city run. Every field except Wall is
// deterministic for a fixed shard count; Render deliberately excludes Wall
// so the rendered output is byte-identical across worker counts.
type CityResult struct {
	Params  CityParams
	Rows    []CityDomainRow
	Shards  int
	Workers int
	// CrossPorts counts mailbox directions (0 when the partition is a
	// single shard: the run is literally the serial engine).
	CrossPorts int
	// Events is the total number of events fired across all shards;
	// ShardEvents breaks it down per shard. Both are deterministic for a
	// fixed shard count, so they are part of the golden output — and the
	// per-shard spread is the partition balance the assignment achieved.
	Events      uint64
	ShardEvents []uint64
	// Links aggregates wired-link utilization per role (both directions of
	// every domain's link with that role summed): packets accepted into the
	// transmit queue, packets handed to the far node, and tail drops.
	// Deterministic for a fixed shard count — and, with the analytic link
	// fast path, reconstructed lazily from the departure ring rather than
	// counted by txDone events, so it renders into the golden output as the
	// observable check on the fused counter reconstruction.
	Links []CityLinkUse
	// Air aggregates the radio data plane across all domains: downlink
	// frames the APs serialized onto the air and dropped undeliverable,
	// uplink frames the stations serialized and discarded. With the fused
	// air path these are reconstructed lazily from the departure rings
	// rather than counted by txDone events; they are identical in both air
	// modes, so they render into the golden output as the observable check
	// on the fused counter reconstruction.
	AirDownSent  uint64
	AirDownDrops uint64
	AirUpSent    uint64
	AirUpDrops   uint64
	// Barrier holds the shard group's synchronization counters and
	// Flushes/ElidedFlushes the exchange's — all pure functions of the
	// model for a fixed shard count and epoch mode, so they render into
	// the golden output: a regression in barrier efficiency shows up as a
	// golden diff. All zero when the partition is a single shard (the run
	// never enters the round loop).
	Barrier       sim.ShardStats
	Flushes       uint64
	ElidedFlushes uint64
	// Aggregates over all domains.
	Handoffs     int
	Grants       uint64
	Refusals     uint64
	Lost         [3]uint64
	MaxDelayMs   float64
	MeanDelayMs  float64
	SessionsLeft int
	DedupMH      uint64
	DedupNAR     uint64
	DupPackets   uint64
	DupBytes     uint64
	TotalSent    uint64
	// Wall is the host-clock duration of the run — the only
	// nondeterministic field, reported by benchmarks, never by Render.
	Wall time.Duration
}

// CityLinkUse is one wired-link role's aggregate utilization across all
// domains.
type CityLinkUse struct {
	Role      string
	Sent      uint64
	Delivered uint64
	Dropped   uint64
}

// RunCity builds and runs the sharded city scenario.
func RunCity(p CityParams) CityResult {
	p.applyDefaults()
	c := newCity(p)
	start := time.Now()
	if err := c.run(); err != nil {
		panic(fmt.Sprintf("city: %v", err))
	}
	wall := time.Since(start)

	res := CityResult{
		Params:     p,
		Shards:     p.Shards,
		Workers:    p.Workers,
		CrossPorts: c.exchange.Ports(),
		Wall:       wall,
	}
	for _, e := range c.engines {
		res.Events += e.Processed()
		res.ShardEvents = append(res.ShardEvents, e.Processed())
	}
	res.Barrier = c.group.Stats()
	res.Flushes = c.exchange.Flushes()
	res.ElidedFlushes = c.exchange.ElidedFlushes()
	res.Links = make([]CityLinkUse, len(cityLinkRoles))
	for i, role := range cityLinkRoles {
		res.Links[i].Role = role
	}
	for _, dom := range c.domains {
		for i, l := range dom.wired {
			for _, ifc := range [...]*netsim.Iface{l.A(), l.B()} {
				res.Links[i].Sent += ifc.Sent()
				res.Links[i].Delivered += ifc.Delivers()
				res.Links[i].Dropped += ifc.Dropped()
			}
		}
	}
	var meanSum float64
	var meanN int
	for d, dom := range c.domains {
		row := CityDomainRow{
			Domain:       d,
			Shard:        dom.shard,
			Grants:       dom.par.PoolGrants() + dom.nar.PoolGrants(),
			Refusals:     dom.par.PoolRefusals() + dom.nar.PoolRefusals(),
			PeakNAR:      dom.nar.PeakGrantedSessions(),
			PeakPAR:      dom.par.PeakGrantedSessions(),
			SessionsLeft: dom.par.Sessions() + dom.nar.Sessions(),
		}
		res.AirDownSent += dom.apPAR.Sent() + dom.apNAR.Sent()
		res.AirDownDrops += dom.apPAR.AirDrops() + dom.apNAR.AirDrops()
		var rowMeanSum float64
		var rowMeanN int
		for _, h := range dom.hosts {
			st := h.mh.Station()
			res.AirUpSent += st.Sent()
			res.AirUpDrops += st.TxDrops()
			row.Handoffs += len(h.mh.Handoffs())
			f := dom.recorder.Flow(h.flow)
			if f == nil {
				continue
			}
			row.Lost[classIndex(f.Class)] += f.Lost()
			if ms := f.MaxDelay().Milliseconds(); ms > row.MaxDelayMs {
				row.MaxDelayMs = ms
			}
			if f.DelayCount() > 0 {
				rowMeanSum += f.MeanDelay().Milliseconds()
				rowMeanN++
			}
		}
		if rowMeanN > 0 {
			row.MeanDelayMs = rowMeanSum / float64(rowMeanN)
		}
		meanSum += rowMeanSum
		meanN += rowMeanN

		res.Rows = append(res.Rows, row)
		res.Handoffs += row.Handoffs
		res.Grants += row.Grants
		res.Refusals += row.Refusals
		for k := range row.Lost {
			res.Lost[k] += row.Lost[k]
		}
		if row.MaxDelayMs > res.MaxDelayMs {
			res.MaxDelayMs = row.MaxDelayMs
		}
		res.SessionsLeft += row.SessionsLeft
		res.DedupMH += dom.recorder.DedupDiscardsMH()
		res.DedupNAR += dom.recorder.DedupDiscardsNAR()
		res.TotalSent += dom.recorder.TotalSent()
	}
	if meanN > 0 {
		res.MeanDelayMs = meanSum / float64(meanN)
	}
	for _, m := range c.maps {
		res.DupPackets += m.recorder.DupPackets()
		res.DupBytes += m.recorder.DupBytes()
	}
	return res
}

// Render prints the deterministic city summary: configuration, aggregate
// outcome, and a compact per-shard domain map. Wall-clock timing is
// deliberately absent (see CityResult.Wall).
func (r CityResult) Render() string {
	var b []byte
	app := func(format string, args ...any) { b = fmt.Appendf(b, format, args...) }
	app("City-scale handoff wave: %d AR domains × %d hosts, %d region MAP(s), %d shard(s)\n",
		r.Params.Domains, r.Params.HostsPerDomain, r.Params.MAPs, r.Shards)
	app("scheme=%v pool=%d/router request=%d window=%v lookahead=%v crossPorts=%d\n\n",
		r.Params.Scheme, r.Params.PoolSize, r.Params.BufferRequest,
		r.Params.StaggerWindow, cityCrossDelay, r.CrossPorts)
	app("%10s%10s%10s%9s%9s%9s%9s%10s%12s%10s\n",
		"handoffs", "grants", "refused", "lostRT", "lostHP", "lostBE",
		"maxdelay", "meandelay", "sessleft", "events")
	app("%10d%10d%10d%9d%9d%9d%8.0fms%8.2fms%12d%10d\n\n",
		r.Handoffs, r.Grants, r.Refusals, r.Lost[0], r.Lost[1], r.Lost[2],
		r.MaxDelayMs, r.MeanDelayMs, r.SessionsLeft, r.Events)
	// Per-shard rollup: how the deterministic assignment spread the load.
	perShard := make(map[int]int)
	for _, row := range r.Rows {
		perShard[row.Shard]++
	}
	app("domains per shard:")
	for s := 0; s < r.Shards; s++ {
		app(" s%d=%d", s, perShard[s])
	}
	app("\nevents per shard: ")
	for s, n := range r.ShardEvents {
		if s > 0 {
			app(" ")
		}
		app("%d", n)
	}
	app("\n")
	// Wired-link utilization per role, both directions of every domain's
	// link summed. Delivered lags sent by whatever was still in flight or
	// queued when the run's horizon fell.
	app("link utilization (all domains, both directions):\n")
	for _, lu := range r.Links {
		app("%10s%12d sent%12d delivered%10d dropped\n",
			lu.Role, lu.Sent, lu.Delivered, lu.Dropped)
	}
	// Radio data plane, all domains summed: identical in both air modes
	// (the fused path reconstructs the counters from its departure rings).
	app("air: downlink %d sent %d dropped, uplink %d sent %d dropped\n",
		r.AirDownSent, r.AirDownDrops, r.AirUpSent, r.AirUpDrops)
	// Barrier efficiency (absent for a single shard, where the run is the
	// serial engine and the counters are all zero by construction).
	if r.Shards > 1 {
		app("barrier: rounds=%d sync=%d solo=%d dispatched=%d elided=%d flushes=%d elidedFlushes=%d\n",
			r.Barrier.Rounds, r.Barrier.BarrierRounds, r.Barrier.SoloRounds,
			r.Barrier.Dispatches, r.Barrier.ElidedDispatches,
			r.Flushes, r.ElidedFlushes)
	}
	return string(b)
}

// WriteCSV emits one row per domain.
func (r CityResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "domain,shard,handoffs,grants,refusals,peak_nar,peak_par,"+
		"lost_rt,lost_hp,lost_be,max_delay_ms,mean_delay_ms,sessions_left"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%g,%g,%d\n",
			row.Domain, row.Shard, row.Handoffs, row.Grants, row.Refusals,
			row.PeakNAR, row.PeakPAR, row.Lost[0], row.Lost[1], row.Lost[2],
			row.MaxDelayMs, row.MeanDelayMs, row.SessionsLeft); err != nil {
			return err
		}
	}
	return nil
}

// CitySpec wraps a reduced city (the full 100k-host sweep is the -fig
// path; replicas need seconds, not minutes) as a seedable runner spec.
func CitySpec(p CityParams) runner.Spec {
	if p.Domains == 0 {
		p.Domains = 8
	}
	if p.HostsPerDomain == 0 {
		p.HostsPerDomain = 100
	}
	if p.Shards == 0 {
		p.Shards = 4
	}
	// Runner replicas already run concurrently, so the per-run shard
	// parallelism defaults low (2) rather than to GOMAXPROCS.
	p.Workers = cityWorkers(p.Workers, p.Shards, 2)
	d := p
	d.applyDefaults()
	return scratchSpec{
		name: "city",
		desc: fmt.Sprintf("sharded city handoff wave: %d domains × %d hosts on %d shards",
			d.Domains, d.HostsPerDomain, d.Shards),
		run: func(engine *sim.Engine, seed int64) runner.Metrics {
			p := p
			p.Seed = seed
			p.Engine = engine
			res := RunCity(p)
			m := runner.Metrics{
				"handoffs":      float64(res.Handoffs),
				"grants":        float64(res.Grants),
				"refusals":      float64(res.Refusals),
				"max_delay_ms":  res.MaxDelayMs,
				"mean_delay_ms": res.MeanDelayMs,
				"sessions_left": float64(res.SessionsLeft),
				"events":        float64(res.Events),
			}
			for k, suffix := range classSuffix {
				m["lost_"+suffix] = float64(res.Lost[k])
			}
			return m
		}}
}

// SetDefaultCityShards overrides the fixed default shard count (the
// experiments command's -shards flag). Zero or negative keeps the default.
func SetDefaultCityShards(n int) {
	if n > 0 {
		DefaultCityShards = n
	}
}

// SetDefaultCityWorkers overrides the default worker count (the experiments
// command's -workers flag). Zero or negative keeps the machine-derived
// default.
func SetDefaultCityWorkers(n int) {
	if n > 0 {
		DefaultCityWorkers = n
	}
}

// SetDefaultCityFixedEpochs selects the fixed-width epoch baseline (the
// experiments command's -fixed-epochs flag).
func SetDefaultCityFixedEpochs(on bool) { DefaultCityFixedEpochs = on }
