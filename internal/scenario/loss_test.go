package scenario

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fho"
	"repro/internal/inet"
	"repro/internal/netsim"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// parToNARIface returns the PAR's interface toward the NAR.
func parToNARIface(tb *Testbed) *netsim.Iface {
	for _, ifc := range tb.PAR.Router().Ifaces() {
		if ifc.Peer() == netsim.Node(tb.NAR.Router()) {
			return ifc
		}
	}
	return nil
}

// Losing the PrRtAdv once must no longer cost the anticipation: the host
// retransmits its solicitation (a duplicate RtSolPr, handled idempotently
// at the PAR) and the handoff completes anticipated. The host walks the
// coverage overlap slowly: retransmission can only save an anticipation
// while the old link still exists (at full speed the overlap is barely
// wider than one retry interval).
func TestLostPrRtAdvRecoveredByRetransmission(t *testing.T) {
	tb := NewTestbed(Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      40,
		BufferRequest: 20,
	})
	unit := tb.AddMobileHost(wireless.Linear{Start: 90, Speed: 2}, []FlowSpec{
		AudioFlow(inet.ClassHighPriority),
	})
	dropped := impairKinds(parToAPIface(tb), 1, fho.KindPrRtAdv)

	tb.StartTraffic()
	if err := tb.Run(20 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if *dropped != 1 {
		t.Fatalf("PrRtAdv drops = %d, want 1", *dropped)
	}
	recs := unit.MH.Handoffs()
	if len(recs) != 1 {
		t.Fatalf("handoffs = %d, want 1", len(recs))
	}
	if !recs[0].Anticipated {
		t.Error("handoff fell back to reactive despite a single recoverable loss")
	}
	if got := tb.PAR.ControlSent(fho.KindPrRtAdv); got < 2 {
		t.Errorf("PrRtAdv sent %d times, want >= 2 (the duplicate solicitation's answer)", got)
	}
	if unit.MH.SignalingFailures() != 0 {
		t.Errorf("MH signaling failures = %d, want 0", unit.MH.SignalingFailures())
	}
}

// Losing the HI once exercises the PAR's retransmission and the NAR's
// duplicate-HI idempotency; the handoff still completes anticipated.
func TestLostHIRecoveredByRetransmission(t *testing.T) {
	tb := NewTestbed(Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      40,
		BufferRequest: 20,
	})
	unit := tb.AddMobileHost(wireless.Linear{Start: 90, Speed: 2}, []FlowSpec{
		AudioFlow(inet.ClassHighPriority),
	})
	dropped := impairKinds(parToNARIface(tb), 1, fho.KindHI)

	tb.StartTraffic()
	if err := tb.Run(20 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if *dropped != 1 {
		t.Fatalf("HI drops = %d, want 1", *dropped)
	}
	recs := unit.MH.Handoffs()
	if len(recs) != 1 {
		t.Fatalf("handoffs = %d, want 1", len(recs))
	}
	if !recs[0].Anticipated {
		t.Error("handoff fell back to reactive despite a single recoverable loss")
	}
	if got := tb.PAR.ControlSent(fho.KindHI); got < 2 {
		t.Errorf("HI sent %d times, want >= 2 (retransmission)", got)
	}
	if tb.PAR.SignalingFailures() != 0 {
		t.Errorf("PAR signaling failures = %d, want 0", tb.PAR.SignalingFailures())
	}
}

// When the anticipation signaling is unrecoverable (every HAck vanishes),
// retries exhaust, both sides count a signaling failure, the host degrades
// to the reactive no-anticipation path, and no session outlives the
// lifetime backstop.
func TestSignalingExhaustionFallsBackReactive(t *testing.T) {
	tb := NewTestbed(Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      40,
		BufferRequest: 20,
	})
	unit := tb.AddMobileHost(wireless.Linear{Start: 50, Speed: MHSpeed}, []FlowSpec{
		AudioFlow(inet.ClassHighPriority),
	})
	var narToPar *netsim.Iface
	for _, ifc := range tb.NAR.Router().Ifaces() {
		if ifc.Peer() == netsim.Node(tb.PAR.Router()) {
			narToPar = ifc
		}
	}
	dropped := impairKinds(narToPar, 1000, fho.KindHAck)

	tb.StartTraffic()
	if err := tb.Run(16 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	tb.StopTraffic()
	// Drain past the session-lifetime backstop: the NAR's orphaned
	// sessions (their HAcks all died) must lapse.
	if err := tb.Engine.Run(tb.Engine.Now() + core.DefaultSessionLifetime + 2*sim.Second); err != nil {
		t.Fatalf("Run drain: %v", err)
	}

	if *dropped < 3 {
		t.Fatalf("HAck drops = %d, want >= 3 (the full retry schedule)", *dropped)
	}
	recs := unit.MH.Handoffs()
	if len(recs) != 1 {
		t.Fatalf("handoffs = %d, want 1 (the reactive fallback)", len(recs))
	}
	if recs[0].Anticipated {
		t.Error("handoff reported anticipated though no HAck ever arrived")
	}
	if unit.MH.SignalingFailures() == 0 {
		t.Error("MH counted no signaling failure despite exhausting its solicitations")
	}
	if tb.PAR.SignalingFailures() == 0 {
		t.Error("PAR counted no signaling failure despite exhausting its HIs")
	}
	if left := tb.PAR.Sessions() + tb.NAR.Sessions(); left != 0 {
		t.Errorf("sessions leaked: par=%d nar=%d", tb.PAR.Sessions(), tb.NAR.Sessions())
	}
	if tb.PAR.Pool().Reserved() != 0 || tb.NAR.Pool().Reserved() != 0 {
		t.Errorf("reservations leaked: par=%d nar=%d",
			tb.PAR.Pool().Reserved(), tb.NAR.Pool().Reserved())
	}
	// Connectivity recovered after the reactive registration.
	f := tb.Recorder.Flow(unit.Flows[0])
	if f.Delivered == 0 || f.Lost() == 0 {
		t.Errorf("reactive fallback stats implausible: delivered=%d lost=%d",
			f.Delivered, f.Lost())
	}
}

// The injected fault pattern is a pure function of the seed: fanning
// replicas across different worker counts must reproduce every metric bit
// for bit (the injector draws from per-interface streams, not a shared
// RNG racing across goroutines).
func TestLossSweepDeterministicAcrossWorkers(t *testing.T) {
	spec := runner.Simple("loss-sweep-mini", func(seed int64) runner.Metrics {
		res := RunLossSweep(LossSweepParams{Rates: []float64{0.1}, Handoffs: 2, Seed: seed})
		m := runner.Metrics{}
		for _, sch := range res.Schemes {
			for _, row := range sch.Rows {
				m["handoffs_"+sch.Slug] = float64(row.Handoffs)
				m["anticipated_"+sch.Slug] = float64(row.Anticipated)
				m["sigfail_"+sch.Slug] = float64(row.SignalingFailures)
				m["injected_"+sch.Slug] = float64(row.Injected)
				m["data_lost_"+sch.Slug] = float64(row.DataLost)
				m["sessions_"+sch.Slug] = float64(row.SessionsLeft)
			}
		}
		return m
	})

	const replicas = 3
	serial, err := runner.NewPool(1).Run(context.Background(), spec, replicas, 99)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	fanned, err := runner.NewPool(3).Run(context.Background(), spec, replicas, 99)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if serial.Failed() != 0 || fanned.Failed() != 0 {
		t.Fatalf("replicas failed: serial=%v parallel=%v", serial.FirstErr(), fanned.FirstErr())
	}
	engaged := false
	for i := 0; i < replicas; i++ {
		a, b := serial.Replicas[i].Metrics, fanned.Replicas[i].Metrics
		if !reflect.DeepEqual(a, b) {
			t.Errorf("replica %d diverged across worker counts:\n  1 worker: %v\n  3 workers: %v", i, a, b)
		}
		if a["injected_enh"] > 0 || a["injected_fho"] > 0 {
			engaged = true
		}
		if a["sessions_enh"] != 0 || a["sessions_fho"] != 0 {
			t.Errorf("replica %d leaked sessions: %v", i, a)
		}
	}
	if !engaged {
		t.Error("fault injector never engaged in any replica")
	}
}
