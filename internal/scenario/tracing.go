package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fho"
	"repro/internal/inet"
	"repro/internal/trace"
)

// AttachTrace subscribes a trace log to the testbed's protocol events:
// control messages from both routers and every host, drops (with their
// site), deliveries, link transitions, and handoff completions. Existing
// hooks (the statistics recorder) keep working; the trace chains onto
// them.
func (tb *Testbed) AttachTrace(log *trace.Log) {
	hookAR := func(name string, ar *core.AccessRouter) {
		prevDrop := ar.OnDrop
		ar.OnDrop = func(pkt *inet.Packet, where string) {
			if prevDrop != nil {
				prevDrop(pkt, where)
			}
			inner := pkt.Innermost()
			log.Emit(trace.Event{
				At: tb.Engine.Now(), Kind: trace.KindDrop, Node: name,
				Seq:    int64(inner.Seq),
				Detail: fmt.Sprintf("%s flow=%d class=%s (%s)", inner.Proto, inner.Flow, inner.Class, where),
			})
		}
		prevCtl := ar.OnControl
		ar.OnControl = func(kind fho.Kind) {
			if prevCtl != nil {
				prevCtl(kind)
			}
			log.Emit(trace.Event{
				At: tb.Engine.Now(), Kind: trace.KindControl, Node: name,
				Detail: "sends " + kind.String(),
			})
		}
	}
	hookAR("par", tb.PAR)
	hookAR("nar", tb.NAR)

	for i, unit := range tb.MHs {
		name := fmt.Sprintf("mh%d", i)
		unit := unit
		prevCtl := unit.MH.OnControl
		unit.MH.OnControl = func(kind fho.Kind) {
			if prevCtl != nil {
				prevCtl(kind)
			}
			log.Emit(trace.Event{
				At: tb.Engine.Now(), Kind: trace.KindControl, Node: name,
				Detail: "sends " + kind.String(),
			})
		}
		prevDone := unit.MH.OnHandoffDone
		unit.MH.OnHandoffDone = func(rec core.HandoffRecord) {
			if prevDone != nil {
				prevDone(rec)
			}
			log.Emit(trace.Event{
				At: rec.Detached, Kind: trace.KindLinkDown, Node: name,
				Detail: "L2 blackout begins",
			})
			log.Emit(trace.Event{
				At: rec.Attached, Kind: trace.KindLinkUp, Node: name,
				Detail: "attached to the new access point",
			})
			log.Emit(trace.Event{
				At: tb.Engine.Now(), Kind: trace.KindHandoff, Node: name,
				Detail: fmt.Sprintf("complete (anticipated=%t link-layer=%t nar=%t par=%t)",
					rec.Anticipated, rec.LinkLayerOnly, rec.NARGranted, rec.PARGranted),
			})
		}
		prevDeliver := unit.MH.OnDeliver
		unit.MH.OnDeliver = func(pkt *inet.Packet) {
			if prevDeliver != nil {
				prevDeliver(pkt)
			}
			log.Emit(trace.Event{
				At: tb.Engine.Now(), Kind: trace.KindDeliver, Node: name,
				Seq:    int64(pkt.Seq),
				Detail: fmt.Sprintf("%s flow=%d class=%s", pkt.Proto, pkt.Flow, pkt.Class),
			})
		}
	}
}
