package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fho"
	"repro/internal/inet"
	"repro/internal/stats"
	"repro/internal/trace"
)

// AttachTrace subscribes a trace log to the testbed's protocol events:
// control messages from both routers and every host, drops (with their
// site), deliveries, link transitions, and handoff completions. Existing
// hooks (the statistics recorder) keep working; the trace chains onto
// them.
//
// Events are emitted in typed form — node names interned once here, packet
// fields packed into integer arguments — so a hook firing costs no string
// formatting; the text is produced lazily when the log is rendered or
// exported, byte-identical to the former eager strings.
func (tb *Testbed) AttachTrace(log *trace.Log) {
	hookAR := func(name string, ar *core.AccessRouter) {
		node := trace.InternNode(name)
		prevDrop := ar.OnDrop
		ar.OnDrop = func(pkt *inet.Packet, where string) {
			if prevDrop != nil {
				prevDrop(pkt, where)
			}
			inner := pkt.Innermost()
			log.Emit(trace.Event{
				At: tb.Engine.Now(), Kind: trace.KindDrop, NodeID: node,
				Seq:  int64(inner.Seq),
				Code: trace.CodeDropPacket,
				Arg0: int64(inner.Flow),
				Arg1: trace.PackPacket(inner.Proto, inner.Class, stats.InternSite(where)),
			})
		}
		prevCtl := ar.OnControl
		ar.OnControl = func(kind fho.Kind) {
			if prevCtl != nil {
				prevCtl(kind)
			}
			log.Emit(trace.Event{
				At: tb.Engine.Now(), Kind: trace.KindControl, NodeID: node,
				Code: trace.CodeSendsControl, Arg0: int64(kind),
			})
		}
	}
	hookAR("par", tb.PAR)
	hookAR("nar", tb.NAR)

	for i, unit := range tb.MHs {
		node := trace.InternNode(fmt.Sprintf("mh%d", i))
		unit := unit
		prevCtl := unit.MH.OnControl
		unit.MH.OnControl = func(kind fho.Kind) {
			if prevCtl != nil {
				prevCtl(kind)
			}
			log.Emit(trace.Event{
				At: tb.Engine.Now(), Kind: trace.KindControl, NodeID: node,
				Code: trace.CodeSendsControl, Arg0: int64(kind),
			})
		}
		prevDone := unit.MH.OnHandoffDone
		unit.MH.OnHandoffDone = func(rec core.HandoffRecord) {
			if prevDone != nil {
				prevDone(rec)
			}
			log.Emit(trace.Event{
				At: rec.Detached, Kind: trace.KindLinkDown, NodeID: node,
				Code: trace.CodeBlackoutBegins,
			})
			log.Emit(trace.Event{
				At: rec.Attached, Kind: trace.KindLinkUp, NodeID: node,
				Code: trace.CodeAttachedNewAP,
			})
			log.Emit(trace.Event{
				At: tb.Engine.Now(), Kind: trace.KindHandoff, NodeID: node,
				Code: trace.CodeHandoffDone,
				Arg0: trace.PackHandoff(rec.Anticipated, rec.LinkLayerOnly, rec.NARGranted, rec.PARGranted),
			})
		}
		prevDeliver := unit.MH.OnDeliver
		unit.MH.OnDeliver = func(pkt *inet.Packet) {
			if prevDeliver != nil {
				prevDeliver(pkt)
			}
			log.Emit(trace.Event{
				At: tb.Engine.Now(), Kind: trace.KindDeliver, NodeID: node,
				Seq:  int64(pkt.Seq),
				Code: trace.CodeDeliverPacket,
				Arg0: int64(pkt.Flow),
				Arg1: trace.PackPacket(pkt.Proto, pkt.Class, 0),
			})
		}
	}
}
