package scenario

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// BenchmarkDelayTraceBySched compares the two event schedulers on a full
// figure workload (reused engine, so allocation warm-up is excluded).
func BenchmarkDelayTraceBySched(b *testing.B) {
	for _, kind := range []sim.SchedulerKind{sim.SchedulerHeap, sim.SchedulerCalendar} {
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			engine := sim.NewEngineKind(kind)
			for i := 0; i < b.N; i++ {
				RunDelayTrace(DelayTraceParams{
					Scheme: core.SchemeEnhanced, PoolSize: 60, Alpha: 2,
					ARLinkDelay: 2 * sim.Millisecond, Engine: engine,
				})
			}
		})
	}
}
