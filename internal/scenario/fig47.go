package scenario

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/inet"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/wireless"
)

// DelayTraceParams configures the end-to-end-delay experiments (Figures
// 4.7–4.10): one handoff while three 128 kb/s flows (160-byte packets
// every 10 ms) stream to the host; per-packet delay is plotted against the
// sequence number around the handoff.
type DelayTraceParams struct {
	// Scheme and sizing per figure:
	//   Fig 4.7:  SchemeFHOriginal, PoolSize 40
	//   Fig 4.8:  SchemeDual,       PoolSize 20
	//   Fig 4.9:  SchemeEnhanced,   PoolSize 20, ARLinkDelay 2 ms
	//   Fig 4.10: SchemeEnhanced,   PoolSize 20, ARLinkDelay 50 ms
	Scheme      core.Scheme
	PoolSize    int
	Alpha       int
	ARLinkDelay sim.Time
	// DrainInterval optionally paces the buffer release.
	DrainInterval sim.Time
	Seed          int64
	// Engine optionally reuses a simulation engine (see Params.Engine).
	Engine *sim.Engine
}

func (p *DelayTraceParams) applyDefaults() {
	if p.Scheme == 0 {
		p.Scheme = core.SchemeFHOriginal
	}
	if p.PoolSize == 0 {
		p.PoolSize = 40
	}
	if p.ARLinkDelay == 0 {
		p.ARLinkDelay = 2 * sim.Millisecond
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
}

// DelayTraceResult holds the delay-vs-sequence samples per flow, windowed
// around the handoff.
type DelayTraceResult struct {
	Params DelayTraceParams
	// Handoff is the recorded handoff.
	Handoff core.HandoffRecord
	// Samples[k] is flow k's delay series (F1 rt, F2 hp, F3 be), limited
	// to the window around the handoff.
	Samples [3][]stats.DelaySample
	// Lost[k] counts flow k's losses across the run.
	Lost [3]uint64
}

// RunDelayTrace executes one of the Figure 4.7–4.10 scenarios.
func RunDelayTrace(p DelayTraceParams) DelayTraceResult {
	p.applyDefaults()
	tb := NewTestbed(Params{
		Scheme:        p.Scheme,
		PoolSize:      p.PoolSize,
		Alpha:         p.Alpha,
		BufferRequest: p.PoolSize,
		ARLinkDelay:   p.ARLinkDelay,
		DrainInterval: p.DrainInterval,
		Seed:          p.Seed,
		Engine:        p.Engine,
	})
	spec := func(c inet.Class) FlowSpec {
		return FlowSpec{Class: c, Size: 160, Interval: 10 * sim.Millisecond}
	}
	unit := tb.AddMobileHost(wireless.Linear{Start: 50, Speed: MHSpeed}, []FlowSpec{
		spec(inet.ClassRealTime),
		spec(inet.ClassHighPriority),
		spec(inet.ClassBestEffort),
	})
	tb.StartTraffic()
	if err := tb.Run(12 * sim.Second); err != nil {
		panic(fmt.Sprintf("delay trace: %v", err))
	}
	tb.StopTraffic()
	if err := tb.Engine.Run(14 * sim.Second); err != nil {
		panic(fmt.Sprintf("delay trace drain: %v", err))
	}

	res := DelayTraceResult{Params: p}
	recs := unit.MH.Handoffs()
	if len(recs) == 0 {
		panic("delay trace: no handoff occurred")
	}
	res.Handoff = recs[0]
	// Window: two seconds before detach until three seconds after attach.
	lo, hi := res.Handoff.Detached-2*sim.Second, res.Handoff.Attached+3*sim.Second
	for k, id := range unit.Flows {
		f := tb.Recorder.Flow(id)
		res.Lost[k] = f.Lost()
		res.Samples[k] = append(res.Samples[k], f.DelaysIn(lo, hi)...)
	}
	return res
}

// MaxDelay returns the largest delay observed for a flow within the
// window.
func (r DelayTraceResult) MaxDelay(k int) sim.Time {
	var m sim.Time
	for _, s := range r.Samples[k] {
		if s.Delay > m {
			m = s.Delay
		}
	}
	return m
}

// Render prints delay-vs-sequence rows for the affected packets (delay
// above twice the baseline), plus the per-flow maxima.
func (r DelayTraceResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "End-to-end delay around one handoff (%s, buffer=%d, AR link %v)\n\n",
		r.Params.Scheme, r.Params.PoolSize, r.Params.ARLinkDelay)
	fmt.Fprintf(&b, "%-8s%12s%12s%12s\n", "seq", "F1(rt)", "F2(hp)", "F3(be)")

	// Index samples by sequence for aligned rows.
	type row struct{ d [3]sim.Time }
	rows := make(map[uint32]*row)
	var minSeq, maxSeq uint32 = ^uint32(0), 0
	for k := range r.Samples {
		for _, s := range r.Samples[k] {
			if s.Delay < 30*sim.Millisecond {
				continue // baseline packets clutter the table
			}
			rw, ok := rows[s.Seq]
			if !ok {
				rw = &row{}
				rows[s.Seq] = rw
			}
			rw.d[k] = s.Delay
			if s.Seq < minSeq {
				minSeq = s.Seq
			}
			if s.Seq > maxSeq {
				maxSeq = s.Seq
			}
		}
	}
	for seq := minSeq; seq <= maxSeq && len(rows) > 0; seq++ {
		rw, ok := rows[seq]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-8d", seq)
		for k := 0; k < 3; k++ {
			if rw.d[k] == 0 {
				fmt.Fprintf(&b, "%12s", "-")
			} else {
				fmt.Fprintf(&b, "%11.0fms", rw.d[k].Milliseconds())
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "\nmax delay: F1=%.0fms F2=%.0fms F3=%.0fms   lost: F1=%d F2=%d F3=%d\n",
		r.MaxDelay(0).Milliseconds(), r.MaxDelay(1).Milliseconds(), r.MaxDelay(2).Milliseconds(),
		r.Lost[0], r.Lost[1], r.Lost[2])
	return b.String()
}
