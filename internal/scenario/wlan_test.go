package scenario

import (
	"testing"

	"repro/internal/sim"
)

func runWLAN(t *testing.T, buffered bool) *WLANTestbed {
	t.Helper()
	tb := NewWLANTestbed(WLANParams{Buffered: buffered})
	if err := tb.Run(20 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return tb
}

func TestWLANHandoffIsLinkLayerOnly(t *testing.T) {
	tb := runWLAN(t, true)
	recs := tb.MH.Handoffs()
	if len(recs) != 1 {
		t.Fatalf("handoffs = %d, want 1", len(recs))
	}
	rec := recs[0]
	if !rec.LinkLayerOnly {
		t.Error("same-router AP switch not classified as link-layer only")
	}
	if !rec.Anticipated {
		t.Error("handoff not anticipated")
	}
	if !rec.PARGranted {
		t.Error("router did not grant the buffer")
	}
	// Around t≈11.4–12 s as in Figure 4.12.
	if rec.Detached < 11*sim.Second || rec.Detached > 13*sim.Second {
		t.Errorf("blackout started at %v, want ≈11.5 s", rec.Detached)
	}
	// The host keeps its address: no network-layer handoff happened.
	if tb.MH.LCoA().Net != NetWLAN {
		t.Errorf("LCoA moved to net %d", tb.MH.LCoA().Net)
	}
}

func TestWLANBufferedTCPAvoidsTimeout(t *testing.T) {
	tb := runWLAN(t, true)
	if got := tb.Sender.Timeouts(); got != 0 {
		t.Errorf("buffered handoff caused %d TCP timeouts, want 0", got)
	}
	if tb.Receiver.Delivered() == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestWLANUnbufferedTCPStalls(t *testing.T) {
	tb := runWLAN(t, false)
	if got := tb.Sender.Timeouts(); got == 0 {
		t.Error("unbuffered 200 ms blackout caused no TCP timeout")
	}
	rec := tb.MH.Handoffs()[0]
	// Locate the reception gap straddling the blackout: it must last
	// 1–1.7 s (min RTO 1 s + 500 ms tick granularity), the thesis' stall.
	var resume sim.Time
	for _, s := range tb.Receiver.RecvTrace.Samples() {
		if s.At > rec.Detached {
			resume = s.At
			break
		}
	}
	stall := resume - rec.Detached
	if stall < sim.Second || stall > 1800*sim.Millisecond {
		t.Errorf("stall = %v, want the thesis' 1–1.5 s class", stall)
	}
}

func TestWLANBufferedBeatsUnbufferedGoodput(t *testing.T) {
	buffered := runWLAN(t, true)
	unbuffered := runWLAN(t, false)
	b := buffered.Receiver.Delivered()
	u := unbuffered.Receiver.Delivered()
	if b <= u {
		t.Errorf("buffered delivered %d ≤ unbuffered %d", b, u)
	}
	// The stall costs roughly a second of an ~8 Mb/s transfer.
	if b-u < 200_000 {
		t.Errorf("goodput advantage only %d bytes; expected a timeout's worth", b-u)
	}
}

func TestWLANThroughputDipsOnlyDuringHandoff(t *testing.T) {
	tb := runWLAN(t, true)
	rec := tb.MH.Handoffs()[0]
	rate := tb.Receiver.Goodput.Rate()
	// Steady state before the handoff must be several Mb/s.
	var before float64
	n := 0
	for _, pt := range rate {
		if pt.At > 5*sim.Second && pt.At < 10*sim.Second {
			before += pt.Value
			n++
		}
	}
	if n == 0 || before/float64(n) < 2_000_000 {
		t.Fatalf("pre-handoff goodput %.0f b/s too low", before/float64(max(n, 1)))
	}
	// Within a second after re-attach the rate must be back above half the
	// steady state.
	var after float64
	m := 0
	for _, pt := range rate {
		if pt.At > rec.Attached+500*sim.Millisecond && pt.At < rec.Attached+1500*sim.Millisecond {
			after += pt.Value
			m++
		}
	}
	if m == 0 || after/float64(m) < before/float64(n)/2 {
		t.Errorf("post-handoff goodput %.0f b/s did not recover (steady %.0f)",
			after/float64(max(m, 1)), before/float64(n))
	}
}
