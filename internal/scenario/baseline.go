package scenario

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/inet"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// BaselineRow is one mobility-management configuration's handoff cost.
type BaselineRow struct {
	Name string
	// Lost is the packet loss across one handoff.
	Lost uint64
	// Outage is the longest delivery gap around the handoff.
	Outage sim.Time
}

// BaselineResult compares the mobility ladder the thesis' Chapter 2
// motivates: plain Mobile IP with a distant home agent, plain Mobile IP
// anchored at a local MAP (Hierarchical Mobile IPv6), fast handover
// without buffering, and the full enhanced scheme.
type BaselineResult struct {
	Rows []BaselineRow
}

// RunBaseline executes the ladder with one 64 kb/s flow per run, using
// the default seed.
func RunBaseline() BaselineResult { return RunBaselineSeed(1) }

// RunBaselineSeed executes the ladder with the given beacon-phase seed.
func RunBaselineSeed(seed int64) BaselineResult { return runBaselineLadder(seed, nil) }

// runBaselineLadder runs the ladder, optionally reusing a simulation
// engine across the four configurations (see Params.Engine).
func runBaselineLadder(seed int64, engine *sim.Engine) BaselineResult {
	configs := []struct {
		name   string
		params Params
	}{
		{"plain Mobile IP, home agent 50 ms away", Params{
			Scheme:         core.SchemeFHNoBuffer,
			Mobility:       core.MobilityPlainMIP,
			HomeAgentDelay: 50 * sim.Millisecond,
		}},
		{"plain Mobile IP, anchored at the MAP (HMIPv6)", Params{
			Scheme:   core.SchemeFHNoBuffer,
			Mobility: core.MobilityPlainMIP,
		}},
		{"fast handover, no buffering", Params{
			Scheme: core.SchemeFHNoBuffer,
		}},
		{"fast handover + enhanced buffer management", Params{
			Scheme:        core.SchemeEnhanced,
			PoolSize:      40,
			Alpha:         2,
			BufferRequest: 20,
		}},
	}
	var res BaselineResult
	for _, cfg := range configs {
		cfg.params.Seed = seed
		cfg.params.Engine = engine
		res.Rows = append(res.Rows, runBaselineOnce(cfg.name, cfg.params))
	}
	return res
}

func runBaselineOnce(name string, p Params) BaselineRow {
	tb := NewTestbed(p)
	unit := tb.AddMobileHost(wireless.Linear{Start: 50, Speed: MHSpeed}, []FlowSpec{
		AudioFlow(inet.ClassHighPriority),
	})
	tb.StartTraffic()
	if err := tb.Run(12 * sim.Second); err != nil {
		panic(fmt.Sprintf("baseline: %v", err))
	}
	tb.StopTraffic()
	if err := tb.Engine.Run(14 * sim.Second); err != nil {
		panic(fmt.Sprintf("baseline drain: %v", err))
	}
	f := tb.Recorder.Flow(unit.Flows[0])
	row := BaselineRow{Name: name, Lost: f.Lost()}
	// The outage is the longest gap between consecutive deliveries.
	row.Outage = f.DeliveryGap(0, sim.MaxTime)
	return row
}

// Render prints the ladder.
func (r BaselineResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Handoff cost across the mobility-management ladder (one 64 kb/s flow)\n\n")
	fmt.Fprintf(&b, "%-50s%8s%12s\n", "configuration", "lost", "outage")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-50s%8d%11.0fms\n", row.Name, row.Lost, row.Outage.Milliseconds())
	}
	return b.String()
}
