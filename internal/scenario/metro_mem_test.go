package scenario

import (
	"os"
	"runtime"
	"syscall"
	"testing"

	"repro/internal/core"
)

// TestMetroMemoryProbe reports the process peak RSS and cumulative heap
// allocation of one metro cell at the sweep's largest point. Run it alone
// in a fresh process with METRO_MEM=1 to compare telemetry modes:
//
//	METRO_MEM=1 go test -run TestMetroMemoryProbe -v ./internal/scenario/
func TestMetroMemoryProbe(t *testing.T) {
	if os.Getenv("METRO_MEM") == "" {
		t.Skip("set METRO_MEM=1 to run the memory probe")
	}
	cell := runMetroCell(MetroParams{PoolSize: 600, Seed: 1}, core.SchemeEnhanced, 8, 2000)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		t.Fatalf("getrusage: %v", err)
	}
	t.Logf("hosts=2000 handoffs=%d grants=%d", cell.Hosts, cell.Handoffs)
	t.Logf("peak RSS %d KB, cumulative heap alloc %d KB", ru.Maxrss, ms.TotalAlloc/1024)
}
