package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// smallMetro keeps the sweep cheap: one cell, enough hosts and a tight
// enough stagger window to oversubscribe both variants' pools.
func smallMetro() MetroParams {
	return MetroParams{
		Hosts:         []int{40},
		PoolSize:      48,
		BufferRequest: 12,
		StaggerWindow: 6 * sim.Second, // ≈13 overlapping handoffs versus capacity 4 (NAR-only) / 8 (dual)
	}
}

// TestMetroDualDoublesCapacity pins the headline claim: at equal total
// pool space and equal per-handoff demand, splitting the demand across
// PAR and NAR sustains about twice the simultaneous handoffs.
func TestMetroDualDoublesCapacity(t *testing.T) {
	res := RunMetro(smallMetro())
	if len(res.Variants) != 3 {
		t.Fatalf("got %d variants, want 3", len(res.Variants))
	}
	for _, v := range res.Variants {
		c := v.Cells[0]
		if c.Handoffs < 35 {
			t.Errorf("%s: only %d/40 handoffs completed", v.Slug, c.Handoffs)
		}
		if c.SessionsLeft != 0 {
			t.Errorf("%s: %d sessions leaked", v.Slug, c.SessionsLeft)
		}
		if v.Scheme == core.SchemeSafetyNet {
			// The bicast variant never touches the pool — exhaustion stays
			// flat at zero no matter how oversubscribed the cell is — and
			// pays in duplicate backhaul traffic instead.
			if c.Grants != 0 || c.Refusals != 0 {
				t.Errorf("sfn: pool touched (grants=%d refusals=%d), want untouched", c.Grants, c.Refusals)
			}
			if c.DupPackets == 0 || c.OverheadRatio() <= 0 {
				t.Errorf("sfn: no bandwidth overhead recorded (dups=%d)", c.DupPackets)
			}
			if c.Lost != [3]uint64{} {
				t.Errorf("sfn: lost packets %v, want none", c.Lost)
			}
			continue
		}
		if c.Refusals == 0 {
			t.Errorf("%s: pool never exhausted — the cell is not oversubscribed", v.Slug)
		}
		// Saturated pools must peak at their session capacity.
		capacity := res.Params.PoolSize / v.Request
		if c.PeakNAR != capacity {
			t.Errorf("%s: peak NAR sessions %d, want pool capacity %d", v.Slug, c.PeakNAR, capacity)
		}
	}
	if ratio := res.CapacityRatio(); ratio < 1.8 {
		t.Fatalf("capacity ratio %.2f, want ≈2 (dual should double concurrent handoffs)", ratio)
	}
}

// TestMetroDeterminism re-runs the sweep and requires identical results.
func TestMetroDeterminism(t *testing.T) {
	a := RunMetro(smallMetro())
	b := RunMetro(smallMetro())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("metro sweep is not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

// TestMetroRenderAndCSV sanity-checks the two output formats.
func TestMetroRenderAndCSV(t *testing.T) {
	res := RunMetro(smallMetro())
	out := res.Render()
	for _, want := range []string{"NAR only", "dual buffering", "safetynet bicast", "overhead", "capacity ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+3 { // header + one cell per variant
		t.Fatalf("CSV has %d lines, want 4:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "variant,hosts,") {
		t.Fatalf("CSV header = %q", lines[0])
	}
}

// BenchmarkMetroCell measures one small oversubscribed metro cell end to
// end — 40 hosts handing off against both variants' pools.
func BenchmarkMetroCell(b *testing.B) {
	p := smallMetro()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RunMetro(p)
	}
}

// TestMetroSpecMetrics runs the runner-spec adapter once and checks the
// metric keys the JSON artifact schema promises.
func TestMetroSpecMetrics(t *testing.T) {
	spec := MetroSpec(smallMetro())
	if spec.Name() != "metro" {
		t.Fatalf("spec name = %q", spec.Name())
	}
	m, err := spec.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"capacity_ratio",
		"peak_nar_nar_n40", "peak_nar_dual_n40",
		"refusal_rate_nar_n40", "refusal_rate_dual_n40",
		"lost_rt_nar_n40", "lost_hp_dual_n40", "lost_be_dual_n40",
		"handoffs_dual_n40", "sessions_left_nar_n40",
		"handoffs_sfn_n40", "refusal_rate_sfn_n40",
		"dup_packets_sfn_n40", "overhead_ratio_sfn_n40",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("metric %q missing (have %d metrics)", key, len(m))
		}
	}
	if m["capacity_ratio"] < 1.8 {
		t.Errorf("capacity_ratio metric %.2f, want ≈2", m["capacity_ratio"])
	}
	if m["sessions_left_nar_n40"] != 0 || m["sessions_left_dual_n40"] != 0 {
		t.Errorf("sessions leaked: nar=%v dual=%v",
			m["sessions_left_nar_n40"], m["sessions_left_dual_n40"])
	}
}
