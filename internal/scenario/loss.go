package scenario

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/inet"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// DefaultLossRates is the control-plane loss sweep's rate axis.
var DefaultLossRates = []float64{0, 0.02, 0.05, 0.10}

// LossSweepParams configures the control-plane loss-resilience sweep.
type LossSweepParams struct {
	// Rates are the per-packet control-loss probabilities to sweep. Nil
	// selects DefaultLossRates.
	Rates []float64
	// Handoffs is the number of ping-pong handoffs per cell. Zero selects 4.
	Handoffs int
	// Seed drives beacon phases and the per-interface fault streams.
	Seed int64
	// Engine optionally reuses a simulation engine (see Params.Engine).
	Engine *sim.Engine
}

func (p *LossSweepParams) applyDefaults() {
	if p.Rates == nil {
		p.Rates = DefaultLossRates
	}
	if p.Handoffs <= 0 {
		p.Handoffs = 4
	}
}

// LossSweepRow is one (scheme, loss rate) cell's outcome.
type LossSweepRow struct {
	// Rate is the injected per-packet control-loss probability.
	Rate float64
	// Handoffs counts completed handoffs; Anticipated and Reactive split
	// them by path. Every initiated handoff completes one way or the other:
	// exhausted anticipation signaling degrades to the reactive
	// no-anticipation path instead of stalling.
	Handoffs    int
	Anticipated int
	Reactive    int
	// SignalingFailures sums the exchanges abandoned after retransmission
	// exhaustion across the host and both access routers.
	SignalingFailures uint64
	// Injected is how many control packets the fault injector discarded.
	Injected uint64
	// DataLost is the application flow's packet loss across the run.
	DataLost uint64
	// SessionsLeft counts handoff sessions still open at the end of the
	// run. The session-lifetime backstop reclaims every abandoned session,
	// so this is zero in a correct run.
	SessionsLeft int
}

// LossSweepScheme is one scheme's row series across the rate axis.
type LossSweepScheme struct {
	Name   string
	Slug   string
	Scheme core.Scheme
	Rows   []LossSweepRow
}

// LossSweepResult holds the full scheme × loss-rate grid.
type LossSweepResult struct {
	Params  LossSweepParams
	Schemes []LossSweepScheme
}

// RunLossSweep sweeps injected control-plane loss against the handover
// schemes: ping-pong handoffs under seeded per-link signaling loss, with
// the retransmission/backoff machinery and the reactive fallback keeping
// every handoff from stalling.
func RunLossSweep(p LossSweepParams) LossSweepResult {
	p.applyDefaults()
	res := LossSweepResult{Params: p}
	schemes := []LossSweepScheme{
		{Name: "enhanced buffer management", Slug: "enh", Scheme: core.SchemeEnhanced},
		{Name: "original fast handover", Slug: "fho", Scheme: core.SchemeFHOriginal},
		// SafetyNet leans on the same retransmission/backoff machinery, and
		// additionally must shrug off a lost bicast request or selective
		// report: either degrades to full NAR forwarding, never to loss.
		{Name: "safetynet bicast", Slug: "sfn", Scheme: core.SchemeSafetyNet},
	}
	for _, sch := range schemes {
		for _, rate := range p.Rates {
			params := Params{
				Scheme:          sch.Scheme,
				PoolSize:        40,
				Alpha:           2,
				BufferRequest:   20,
				ControlLossRate: rate,
				Seed:            p.Seed,
				Engine:          p.Engine,
			}
			sch.Rows = append(sch.Rows, runLossCell(params, p.Handoffs))
		}
		res.Schemes = append(res.Schemes, sch)
	}
	return res
}

// runLossCell runs one (scheme, rate) cell to completion and drains past
// the session-lifetime backstop so leaked sessions would be visible.
func runLossCell(p Params, handoffs int) LossSweepRow {
	tb := NewTestbed(p)
	unit := tb.AddMobileHost(wireless.PingPong{A: 20, B: 192, Speed: MHSpeed}, []FlowSpec{
		AudioFlow(inet.ClassHighPriority),
	})
	done := 0
	unit.MH.OnHandoffDone = func(rec core.HandoffRecord) {
		done++
		if done == handoffs {
			tb.Engine.Schedule(2*sim.Second, tb.Engine.Stop)
		}
	}
	tb.StartTraffic()
	horizon := sim.Time(handoffs+2) * 18 * sim.Second
	if err := tb.Engine.Run(horizon); err != nil && err != sim.ErrStopped {
		panic(fmt.Sprintf("loss sweep: %v", err))
	}
	tb.StopTraffic()
	// Past the longest backstop (the default session lifetime) every
	// session — including ones whose release signaling was lost — must be
	// gone.
	if err := tb.Engine.Run(tb.Engine.Now() + core.DefaultSessionLifetime + 2*sim.Second); err != nil {
		panic(fmt.Sprintf("loss sweep drain: %v", err))
	}

	row := LossSweepRow{Rate: p.ControlLossRate}
	for _, rec := range unit.MH.Handoffs() {
		row.Handoffs++
		if rec.Anticipated {
			row.Anticipated++
		} else {
			row.Reactive++
		}
	}
	row.SignalingFailures = unit.MH.SignalingFailures() +
		tb.PAR.SignalingFailures() + tb.NAR.SignalingFailures()
	if tb.Faults != nil {
		row.Injected = tb.Faults.Injected()
	}
	row.DataLost = tb.Recorder.Flow(unit.Flows[0]).Lost()
	row.SessionsLeft = tb.PAR.Sessions() + tb.NAR.Sessions()
	return row
}

// Render prints the grid.
func (r LossSweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Handoff resilience under injected control-plane loss "+
		"(%d ping-pong handoffs per cell)\n", r.Params.Handoffs)
	for _, sch := range r.Schemes {
		fmt.Fprintf(&b, "\n%s\n", sch.Name)
		fmt.Fprintf(&b, "%8s%10s%13s%10s%9s%10s%10s%10s\n",
			"loss", "handoffs", "anticipated", "reactive", "sigfail",
			"injected", "datalost", "sessions")
		for _, row := range sch.Rows {
			fmt.Fprintf(&b, "%7.0f%%%10d%13d%10d%9d%10d%10d%10d\n",
				row.Rate*100, row.Handoffs, row.Anticipated, row.Reactive,
				row.SignalingFailures, row.Injected, row.DataLost, row.SessionsLeft)
		}
	}
	return b.String()
}

// WriteCSV emits the grid as rows of scheme,rate,counters.
func (r LossSweepResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w,
		"scheme,loss_rate,handoffs,anticipated,reactive,signaling_failures,injected,data_lost,sessions_left"); err != nil {
		return err
	}
	for _, sch := range r.Schemes {
		for _, row := range sch.Rows {
			_, err := fmt.Fprintf(w, "%s,%g,%d,%d,%d,%d,%d,%d,%d\n",
				sch.Slug, row.Rate, row.Handoffs, row.Anticipated, row.Reactive,
				row.SignalingFailures, row.Injected, row.DataLost, row.SessionsLeft)
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// LossSweepSpec wraps the loss sweep as a seedable runner spec, reporting
// each cell's counters as scalars (keys carry the scheme slug and the loss
// rate in percent, e.g. handoffs_enh_r5).
func LossSweepSpec() runner.Spec {
	return scratchSpec{
		name: "loss-sweep",
		desc: "handoff resilience under injected control loss: schemes enh/fho/sfn × rates 0-10%",
		run: func(engine *sim.Engine, seed int64) runner.Metrics {
			res := RunLossSweep(LossSweepParams{Seed: seed, Engine: engine})
			m := runner.Metrics{}
			for _, sch := range res.Schemes {
				for _, row := range sch.Rows {
					key := sch.Slug + "_r" + strconv.FormatFloat(row.Rate*100, 'g', -1, 64)
					m["handoffs_"+key] = float64(row.Handoffs)
					m["anticipated_"+key] = float64(row.Anticipated)
					m["signaling_failures_"+key] = float64(row.SignalingFailures)
					m["injected_"+key] = float64(row.Injected)
					m["data_lost_"+key] = float64(row.DataLost)
					m["sessions_left_"+key] = float64(row.SessionsLeft)
				}
			}
			return m
		}}
}
