package scenario

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/inet"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/wireless"
)

// DefaultMetroHosts is the metro sweep's host-count axis.
var DefaultMetroHosts = []int{10, 50, 200, 500, 1000, 2000}

// Metro traffic timing: each host's audio flow runs only in a window
// around its own handoff (lead before the expected trigger, stop after
// reattachment), so the air interface never has to carry all N flows at
// once — the contention under test is the buffer pool, not the radio.
const (
	// metroTrafficLead is when a host's flow starts, relative to the
	// instant the host begins moving (the handoff triggers ≈5.6 s after
	// that, when the NAR's AP becomes strictly closer).
	metroTrafficLead = 4 * sim.Second
	// metroTrafficStop is when the flow stops, leaving ≈2.4 s of traffic
	// after the expected handoff for the drain to be observable.
	metroTrafficStop = 8 * sim.Second
	// metroPerHostStagger spreads handoff start instants so the number of
	// concurrently active handoffs (and flows) stays bounded as N grows.
	metroPerHostStagger = 33 * sim.Millisecond
	// metroMinWindow is the smallest stagger window, used for small N.
	metroMinWindow = 10 * sim.Second
)

// metroWindow returns the stagger window for a host count.
func metroWindow(hosts int) sim.Time {
	w := sim.Time(hosts) * metroPerHostStagger
	if w < metroMinWindow {
		w = metroMinWindow
	}
	return w
}

// MetroParams configures the metro-scale mass-handoff sweep.
type MetroParams struct {
	// Hosts is the sweep axis: how many mobile hosts hand off PAR→NAR per
	// cell. Nil selects DefaultMetroHosts (10 → 2000).
	Hosts []int
	// PoolSize is each access router's buffer pool in packets.
	PoolSize int
	// BufferRequest is the per-host buffer demand in packets. The
	// NAR-only variant requests all of it at the NAR; the dual variant
	// splits it across both routers, so total pool demand per handoff is
	// equal and the capacity comparison is fair.
	BufferRequest int
	// StaggerWindow overrides the window handoff starts are spread over.
	// Zero scales it with the host count (metroWindow), keeping radio
	// load bounded while the pool stays oversubscribed.
	StaggerWindow sim.Time
	// Seed drives beacon phases.
	Seed int64
	// Engine optionally reuses a simulation engine (see Params.Engine).
	Engine *sim.Engine
}

func (p *MetroParams) applyDefaults() {
	if p.Hosts == nil {
		p.Hosts = DefaultMetroHosts
	}
	if p.PoolSize <= 0 {
		p.PoolSize = 240
	}
	if p.BufferRequest <= 0 {
		p.BufferRequest = 12
	}
}

// MetroCell is one (variant, host count) outcome.
type MetroCell struct {
	Hosts int
	// Handoffs counts completed handoffs across all hosts.
	Handoffs int
	// Grants/Refusals are buffer reservations granted and turned away,
	// summed over both routers. A refusal is a handoff that proceeds
	// without buffering.
	Grants   uint64
	Refusals uint64
	// PeakNAR/PeakPAR are the maximum simultaneous granted sessions per
	// router — the observed handoff concurrency each pool absorbed.
	PeakNAR int
	PeakPAR int
	// Lost is end-to-end packet loss per class (real-time,
	// high-priority, best-effort).
	Lost [3]uint64
	// MaxDelayMs/MeanDelayMs summarize delivery delay across all flows;
	// buffered packets carry their buffering (drain) latency here.
	MaxDelayMs  float64
	MeanDelayMs float64
	// SessionsLeft counts handoff sessions still open after the
	// post-run drain; zero in a correct run.
	SessionsLeft int
	// Events is the number of scheduler events the cell's run processed —
	// the per-cell cost axis the analytic link fast path halves on wired
	// hops. It depends on the link transmit path (fused vs classic), never
	// on scheduler choice or engine reuse.
	Events uint64
	// SafetyNet bandwidth-overhead accounting (zero for the buffering
	// variants): anchor duplicates emitted, total packet sends, and where
	// the redundant copies were suppressed.
	DupPackets uint64
	DupBytes   uint64
	DedupMH    uint64
	DedupNAR   uint64
	TotalSent  uint64
}

// ExhaustionRate is the fraction of buffer requests refused.
func (c MetroCell) ExhaustionRate() float64 {
	total := c.Grants + c.Refusals
	if total == 0 {
		return 0
	}
	return float64(c.Refusals) / float64(total)
}

// OverheadRatio is the bicast duplicates emitted per packet sent — the
// backhaul bandwidth SafetyNet pays instead of pool space.
func (c MetroCell) OverheadRatio() float64 {
	if c.TotalSent == 0 {
		return 0
	}
	return float64(c.DupPackets) / float64(c.TotalSent)
}

// MetroVariant is one buffering variant's sweep.
type MetroVariant struct {
	Name    string
	Slug    string
	Scheme  core.Scheme
	Request int
	Cells   []MetroCell
}

// MetroResult holds the variant × host-count grid.
type MetroResult struct {
	Params   MetroParams
	Variants []MetroVariant
}

// CapacityRatio returns the dual variant's peak NAR concurrency over the
// NAR-only variant's at the largest host count — the thesis' "roughly
// doubled simultaneous handoffs" claim, measured.
func (r MetroResult) CapacityRatio() float64 {
	var narOnly, dual int
	for _, v := range r.Variants {
		cell := v.Cells[len(v.Cells)-1]
		switch v.Slug {
		case "nar":
			narOnly = cell.PeakNAR
		case "dual":
			dual = cell.PeakNAR
		}
	}
	if narOnly == 0 {
		return 0
	}
	return float64(dual) / float64(narOnly)
}

// RunMetro sweeps N staggered handoffs against shared router pools for the
// NAR-only and dual buffering variants at equal per-handoff pool demand,
// plus the SafetyNet bicast variant, which sidesteps the pool entirely.
func RunMetro(p MetroParams) MetroResult {
	p.applyDefaults()
	res := MetroResult{Params: p}
	variants := []MetroVariant{
		{Name: "original fast handover (NAR only)", Slug: "nar",
			Scheme: core.SchemeFHOriginal, Request: p.BufferRequest},
		{Name: "dual buffering (split across PAR+NAR)", Slug: "dual",
			Scheme: core.SchemeDual, Request: (p.BufferRequest + 1) / 2},
		// SafetyNet claims no pool space at all: the request is the demand
		// the buffering variants would have placed, kept for a fair axis,
		// but the routers grant nothing and exhaustion stays at zero while
		// the anchor pays in duplicate backhaul traffic instead.
		{Name: "safetynet bicast (no AR buffering)", Slug: "sfn",
			Scheme: core.SchemeSafetyNet, Request: p.BufferRequest},
	}
	for _, v := range variants {
		for _, hosts := range p.Hosts {
			v.Cells = append(v.Cells, runMetroCell(p, v.Scheme, v.Request, hosts))
		}
		res.Variants = append(res.Variants, v)
	}
	return res
}

// runMetroCell runs one (variant, host count) cell to completion.
func runMetroCell(p MetroParams, scheme core.Scheme, request, hosts int) MetroCell {
	window := p.StaggerWindow
	if window <= 0 {
		window = metroWindow(hosts)
	}
	tb := NewTestbed(Params{
		Scheme:        scheme,
		PoolSize:      p.PoolSize,
		Alpha:         2,
		BufferRequest: request,
		Seed:          p.Seed,
		Engine:        p.Engine,
		// Metro cells only report max/mean delay, which the streaming
		// recorder tracks exactly; skipping per-packet samples keeps a
		// 2000-host sweep at O(flows) memory instead of O(packets).
		StatsMode: stats.ModeStreaming,
	})
	for i := 0; i < hosts; i++ {
		from := window * sim.Time(i) / sim.Time(hosts)
		unit := tb.AddMobileHost(
			wireless.Linear{Start: 50, Speed: MHSpeed, From: from},
			[]FlowSpec{AudioFlow(inet.Classes[i%3])},
		)
		src := unit.Sources[0]
		src.Start(from + metroTrafficLead)
		tb.Engine.Schedule(from+metroTrafficStop, src.Stop)
	}
	horizon := window + 12*sim.Second
	if err := tb.Engine.Run(horizon); err != nil {
		panic(fmt.Sprintf("metro: %v", err))
	}
	tb.StopTraffic()
	// Drain past the session-lifetime backstop so leaks would be visible.
	if err := tb.Engine.Run(tb.Engine.Now() + core.DefaultSessionLifetime + 2*sim.Second); err != nil {
		panic(fmt.Sprintf("metro drain: %v", err))
	}

	cell := MetroCell{
		Hosts:        hosts,
		Events:       tb.Engine.Processed(),
		Grants:       tb.PAR.PoolGrants() + tb.NAR.PoolGrants(),
		Refusals:     tb.PAR.PoolRefusals() + tb.NAR.PoolRefusals(),
		PeakNAR:      tb.NAR.PeakGrantedSessions(),
		PeakPAR:      tb.PAR.PeakGrantedSessions(),
		SessionsLeft: tb.PAR.Sessions() + tb.NAR.Sessions(),
		DupPackets:   tb.Recorder.DupPackets(),
		DupBytes:     tb.Recorder.DupBytes(),
		DedupMH:      tb.Recorder.DedupDiscardsMH(),
		DedupNAR:     tb.Recorder.DedupDiscardsNAR(),
		TotalSent:    tb.Recorder.TotalSent(),
	}
	var delaySum float64
	var delayed int
	for _, unit := range tb.MHs {
		cell.Handoffs += len(unit.MH.Handoffs())
		for _, flowID := range unit.Flows {
			f := tb.Recorder.Flow(flowID)
			if f == nil {
				continue
			}
			cell.Lost[classIndex(f.Class)] += f.Lost()
			if ms := f.MaxDelay().Milliseconds(); ms > cell.MaxDelayMs {
				cell.MaxDelayMs = ms
			}
			if f.DelayCount() > 0 {
				delaySum += f.MeanDelay().Milliseconds()
				delayed++
			}
		}
	}
	if delayed > 0 {
		cell.MeanDelayMs = delaySum / float64(delayed)
	}
	return cell
}

// classIndex maps a class to its position in inet.Classes.
func classIndex(c inet.Class) int {
	for i, cc := range inet.Classes {
		if c.Effective() == cc {
			return i
		}
	}
	return len(inet.Classes) - 1
}

// Render prints the grid.
func (r MetroResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Metro-scale mass handoff: pool pressure per variant "+
		"(pool=%d/router, demand=%d packets/handoff)\n",
		r.Params.PoolSize, r.Params.BufferRequest)
	for _, v := range r.Variants {
		fmt.Fprintf(&b, "\n%s (request %d)\n", v.Name, v.Request)
		if v.Scheme == core.SchemeSafetyNet {
			// The bicast variant trades pool space for backhaul bandwidth,
			// so its table carries the duplicate-traffic columns the
			// buffering variants have no use for.
			fmt.Fprintf(&b, "%7s%10s%8s%9s%9s%8s%8s%8s%10s%10s%10s%12s\n",
				"hosts", "handoffs", "grants", "refused", "exhaust",
				"lostRT", "lostHP", "lostBE", "maxdelay", "dups", "overhead", "events")
			for _, c := range v.Cells {
				fmt.Fprintf(&b, "%7d%10d%8d%9d%8.0f%%%8d%8d%8d%8.0fms%10d%9.3fx%12d\n",
					c.Hosts, c.Handoffs, c.Grants, c.Refusals, c.ExhaustionRate()*100,
					c.Lost[0], c.Lost[1], c.Lost[2], c.MaxDelayMs,
					c.DupPackets, c.OverheadRatio(), c.Events)
			}
			continue
		}
		fmt.Fprintf(&b, "%7s%10s%8s%9s%9s%9s%9s%8s%8s%8s%10s%12s\n",
			"hosts", "handoffs", "grants", "refused", "exhaust",
			"peakNAR", "peakPAR", "lostRT", "lostHP", "lostBE", "maxdelay", "events")
		for _, c := range v.Cells {
			fmt.Fprintf(&b, "%7d%10d%8d%9d%8.0f%%%9d%9d%8d%8d%8d%8.0fms%12d\n",
				c.Hosts, c.Handoffs, c.Grants, c.Refusals, c.ExhaustionRate()*100,
				c.PeakNAR, c.PeakPAR, c.Lost[0], c.Lost[1], c.Lost[2], c.MaxDelayMs, c.Events)
		}
	}
	fmt.Fprintf(&b, "\ncapacity ratio (dual peakNAR / NAR-only peakNAR at %d hosts): %.2f\n",
		r.Params.Hosts[len(r.Params.Hosts)-1], r.CapacityRatio())
	return b.String()
}

// WriteCSV emits the grid as rows of variant,hosts,counters.
func (r MetroResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "variant,hosts,handoffs,grants,refusals,exhaustion_rate,"+
		"peak_nar,peak_par,lost_rt,lost_hp,lost_be,max_delay_ms,mean_delay_ms,sessions_left,"+
		"dup_packets,dup_bytes,dedup_mh,dedup_nar,overhead_ratio,events"); err != nil {
		return err
	}
	for _, v := range r.Variants {
		for _, c := range v.Cells {
			_, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%g,%d,%d,%d,%d,%d,%g,%g,%d,%d,%d,%d,%d,%g,%d\n",
				v.Slug, c.Hosts, c.Handoffs, c.Grants, c.Refusals, c.ExhaustionRate(),
				c.PeakNAR, c.PeakPAR, c.Lost[0], c.Lost[1], c.Lost[2],
				c.MaxDelayMs, c.MeanDelayMs, c.SessionsLeft,
				c.DupPackets, c.DupBytes, c.DedupMH, c.DedupNAR, c.OverheadRatio(), c.Events)
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// MetroSpec wraps the metro sweep as a seedable runner spec. Per-cell
// metrics are keyed by variant slug and host count (e.g. peak_nar_dual_n2000);
// capacity_ratio is the headline dual/NAR-only concurrency comparison.
func MetroSpec(p MetroParams) runner.Spec {
	d := p
	d.applyDefaults()
	return scratchSpec{
		name: "metro",
		desc: fmt.Sprintf("mass-handoff pool pressure: variants nar/dual/sfn, pool=%d demand=%d hosts up to %d",
			d.PoolSize, d.BufferRequest, d.Hosts[len(d.Hosts)-1]),
		run: func(engine *sim.Engine, seed int64) runner.Metrics {
			p := p
			p.Seed = seed
			p.Engine = engine
			res := RunMetro(p)
			m := runner.Metrics{"capacity_ratio": res.CapacityRatio()}
			for _, v := range res.Variants {
				for _, c := range v.Cells {
					key := v.Slug + "_n" + strconv.Itoa(c.Hosts)
					m["handoffs_"+key] = float64(c.Handoffs)
					m["refusal_rate_"+key] = c.ExhaustionRate()
					m["peak_nar_"+key] = float64(c.PeakNAR)
					m["peak_par_"+key] = float64(c.PeakPAR)
					for k, suffix := range classSuffix {
						m["lost_"+suffix+"_"+key] = float64(c.Lost[k])
					}
					m["max_delay_ms_"+key] = c.MaxDelayMs
					m["sessions_left_"+key] = float64(c.SessionsLeft)
					m["events_"+key] = float64(c.Events)
					if v.Scheme == core.SchemeSafetyNet {
						m["dup_packets_"+key] = float64(c.DupPackets)
						m["overhead_ratio_"+key] = c.OverheadRatio()
					}
				}
			}
			return m
		}}
}
