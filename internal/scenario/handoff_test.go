package scenario

import (
	"testing"

	"repro/internal/core"
	"repro/internal/inet"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// oneHandoffRun walks one mobile host from the PAR to the NAR with three
// audio flows (RT/HP/BE) and returns the testbed after the walk.
func oneHandoffRun(t *testing.T, p Params) (*Testbed, *MHUnit) {
	t.Helper()
	tb := NewTestbed(p)
	// Start at 50 m, walk past the NAR's AP; trigger happens in the
	// overlap around x≈100–112 m (t≈5–6.2 s).
	unit := tb.AddMobileHost(wireless.Linear{Start: 50, Speed: MHSpeed}, []FlowSpec{
		AudioFlow(inet.ClassRealTime),
		AudioFlow(inet.ClassHighPriority),
		AudioFlow(inet.ClassBestEffort),
	})
	tb.StartTraffic()
	if err := tb.Run(12 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	tb.StopTraffic()
	if err := tb.Engine.Run(14 * sim.Second); err != nil {
		t.Fatalf("Run drain: %v", err)
	}
	return tb, unit
}

func TestSingleHandoffEnhanced(t *testing.T) {
	tb, unit := oneHandoffRun(t, Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      40,
		Alpha:         2,
		BufferRequest: 20,
	})

	recs := unit.MH.Handoffs()
	if len(recs) != 1 {
		t.Fatalf("handoffs = %d, want 1", len(recs))
	}
	rec := recs[0]
	if !rec.Anticipated {
		t.Error("handoff was not anticipated despite the overlap")
	}
	if rec.LinkLayerOnly {
		t.Error("network handoff misclassified as link-layer only")
	}
	if !rec.NARGranted || !rec.PARGranted {
		t.Errorf("negotiation = nar:%t par:%t, want both granted", rec.NARGranted, rec.PARGranted)
	}
	if got := rec.Attached - rec.Detached; got != tb.Params.L2HandoffDelay {
		t.Errorf("blackout = %v, want %v", got, tb.Params.L2HandoffDelay)
	}

	// With both buffers granted and light traffic, nothing is lost.
	for _, id := range unit.Flows {
		f := tb.Recorder.Flow(id)
		if f == nil || f.Sent == 0 {
			t.Fatalf("flow %d never sent", id)
		}
		if f.Lost() > 0 {
			t.Errorf("flow %d (class %v): lost %d of %d", id, f.Class, f.Lost(), f.Sent)
		}
	}

	// The MAP binding must have moved to the new care-of address.
	b, ok := tb.MAP.Cache().Lookup(unit.RCoA, tb.Engine.Now())
	if !ok {
		t.Fatal("MAP binding gone after handoff")
	}
	if b.CoA.Net != NetNAR {
		t.Errorf("MAP binding CoA = %v, want a net-%d address", b.CoA, NetNAR)
	}

	// Sessions must have been cleaned up on both routers.
	if tb.PAR.Sessions() != 0 || tb.NAR.Sessions() != 0 {
		t.Errorf("leftover sessions: par=%d nar=%d", tb.PAR.Sessions(), tb.NAR.Sessions())
	}
	if tb.PAR.Pool().Reserved() != 0 || tb.NAR.Pool().Reserved() != 0 {
		t.Errorf("leaked reservations: par=%d nar=%d",
			tb.PAR.Pool().Reserved(), tb.NAR.Pool().Reserved())
	}
}

func TestSingleHandoffNoBufferLosesPackets(t *testing.T) {
	tb, unit := oneHandoffRun(t, Params{
		Scheme: core.SchemeFHNoBuffer,
	})
	if len(unit.MH.Handoffs()) != 1 {
		t.Fatalf("handoffs = %d, want 1", len(unit.MH.Handoffs()))
	}
	// A 200 ms blackout at 3×50 packets/s loses on the order of 30
	// packets; they die on the air at the NAR's access point.
	lost := tb.Recorder.TotalLost()
	if lost < 15 {
		t.Errorf("total lost = %d, want a blackout's worth (≥15)", lost)
	}
	if air := tb.Recorder.DropsAt(DropOnAir); air == 0 {
		t.Error("no air drops recorded; blackout losses unaccounted")
	}
}

func TestSingleHandoffOriginalFH(t *testing.T) {
	tb, unit := oneHandoffRun(t, Params{
		Scheme:        core.SchemeFHOriginal,
		PoolSize:      40,
		BufferRequest: 40,
	})
	rec := unit.MH.Handoffs()[0]
	if !rec.NARGranted {
		t.Error("NAR grant missing")
	}
	if rec.PARGranted {
		t.Error("original FH must not reserve at the PAR")
	}
	if lost := tb.Recorder.TotalLost(); lost > 0 {
		t.Errorf("lost %d packets with a 40-packet NAR buffer", lost)
	}
}

func TestSingleHandoffDeliversInOrderPerFlow(t *testing.T) {
	tb, unit := oneHandoffRun(t, Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      40,
		Alpha:         2,
		BufferRequest: 20,
	})
	for _, id := range unit.Flows {
		f := tb.Recorder.Flow(id)
		last := int64(-1)
		for _, s := range f.Delays {
			if int64(s.Seq) <= last {
				t.Errorf("flow %d delivered seq %d after %d", id, s.Seq, last)
				break
			}
			last = int64(s.Seq)
		}
	}
}

func TestHandoffDelaysSpikeOnlyAroundBlackout(t *testing.T) {
	tb, unit := oneHandoffRun(t, Params{
		Scheme:        core.SchemeEnhanced,
		PoolSize:      40,
		Alpha:         2,
		BufferRequest: 20,
	})
	rec := unit.MH.Handoffs()[0]
	for _, id := range unit.Flows {
		f := tb.Recorder.Flow(id)
		for _, s := range f.Delays {
			baseline := s.Delay < 20*sim.Millisecond
			inWindow := s.At >= rec.Detached && s.At <= rec.Attached+sim.Second
			if !baseline && !inWindow {
				t.Errorf("flow %d seq %d: delay %v outside the handoff window (at %v)",
					id, s.Seq, s.Delay, s.At)
			}
		}
	}
}
