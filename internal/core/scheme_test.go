package core

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/buffer"
	"repro/internal/inet"
)

// TestSchemeEnumWalk exhaustively walks the enum range derived from the
// sentinel: every defined scheme must be Valid with a proper name, and
// the values bracketing the range must be rejected by both String and
// Valid. Adding a scheme without updating String (or the sentinel) fails
// here rather than silently rendering as "scheme(N)".
func TestSchemeEnumWalk(t *testing.T) {
	seen := make(map[string]bool)
	for s := SchemeFHNoBuffer; s < schemeSentinel; s++ {
		if !s.Valid() {
			t.Errorf("%v.Valid() = false", s)
		}
		str := s.String()
		if strings.HasPrefix(str, "scheme(") {
			t.Errorf("Scheme(%d) has no String case: %q", int(s), str)
		}
		if seen[str] {
			t.Errorf("duplicate scheme string %q", str)
		}
		seen[str] = true
		// Buffering semantics must be internally consistent: a scheme that
		// never asks a router for space must not emit an op buffering there.
		both := buffer.Availability{NAR: s.WantsNARBuffer(), PAR: s.WantsPARBuffer()}
		for class := inet.Class(0); class < 4; class++ {
			op := s.Op(both, class)
			if op.BuffersAtNAR() && !s.WantsNARBuffer() {
				t.Errorf("%v buffers at NAR without wanting it (class %v)", s, class)
			}
			if op.BuffersAtPAR() && !s.WantsPARBuffer() {
				t.Errorf("%v buffers at PAR without wanting it (class %v)", s, class)
			}
		}
	}
	for _, s := range []Scheme{0, schemeSentinel, 99} {
		if s.Valid() {
			t.Errorf("Scheme(%d).Valid() = true, want false", int(s))
		}
		if str := s.String(); !strings.HasPrefix(str, "scheme(") {
			t.Errorf("out-of-range Scheme(%d) has a name: %q", int(s), str)
		}
	}
}

func TestSchemeNegotiationWants(t *testing.T) {
	tests := []struct {
		scheme   Scheme
		wantsNAR bool
		wantsPAR bool
	}{
		{SchemeFHNoBuffer, false, false},
		{SchemeFHOriginal, true, false},
		{SchemePAROnly, false, true},
		{SchemeDual, true, true},
		{SchemeEnhanced, true, true},
		{SchemeSafetyNet, false, false},
	}
	if len(tests) != int(schemeSentinel-SchemeFHNoBuffer) {
		t.Fatalf("negotiation table covers %d schemes, enum has %d", len(tests), schemeSentinel-SchemeFHNoBuffer)
	}
	for _, tt := range tests {
		if got := tt.scheme.WantsNARBuffer(); got != tt.wantsNAR {
			t.Errorf("%v.WantsNARBuffer() = %v, want %v", tt.scheme, got, tt.wantsNAR)
		}
		if got := tt.scheme.WantsPARBuffer(); got != tt.wantsPAR {
			t.Errorf("%v.WantsPARBuffer() = %v, want %v", tt.scheme, got, tt.wantsPAR)
		}
	}
}

func TestSchemeOpTable(t *testing.T) {
	both := buffer.Availability{NAR: true, PAR: true}
	tests := []struct {
		name   string
		scheme Scheme
		avail  buffer.Availability
		class  inet.Class
		want   buffer.Op
	}{
		{"nobuffer always forwards", SchemeFHNoBuffer, both, inet.ClassHighPriority, buffer.OpForward},
		{"original buffers at NAR", SchemeFHOriginal, buffer.Availability{NAR: true}, inet.ClassRealTime, buffer.OpBufferNAR},
		{"original without grant forwards", SchemeFHOriginal, buffer.Availability{}, inet.ClassRealTime, buffer.OpForward},
		{"par-only buffers at PAR", SchemePAROnly, buffer.Availability{PAR: true}, inet.ClassBestEffort, buffer.OpBufferPAR},
		{"par-only without grant forwards", SchemePAROnly, buffer.Availability{}, inet.ClassBestEffort, buffer.OpForward},
		{"dual takes the HP path for RT", SchemeDual, both, inet.ClassRealTime, buffer.OpBufferBoth},
		{"dual takes the HP path for BE", SchemeDual, both, inet.ClassBestEffort, buffer.OpBufferBoth},
		{"enhanced follows Table 3.3 for RT", SchemeEnhanced, both, inet.ClassRealTime, buffer.OpBufferNARDropHead},
		{"enhanced follows Table 3.3 for HP", SchemeEnhanced, both, inet.ClassHighPriority, buffer.OpBufferBoth},
		{"enhanced follows Table 3.3 for BE", SchemeEnhanced, both, inet.ClassBestEffort, buffer.OpBufferPARAlpha},
		{"safetynet always forwards", SchemeSafetyNet, both, inet.ClassRealTime, buffer.OpForward},
		{"invalid scheme forwards", Scheme(99), both, inet.ClassHighPriority, buffer.OpForward},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.scheme.Op(tt.avail, tt.class); got != tt.want {
				t.Fatalf("Op = %v, want %v", got, tt.want)
			}
		})
	}
}

// Property: no scheme ever buffers at a router that did not grant space.
func TestPropertySchemeRespectsGrants(t *testing.T) {
	f := func(schemeRaw uint8, nar, par bool, classRaw uint8) bool {
		n := uint8(schemeSentinel - SchemeFHNoBuffer)
		scheme := Scheme(schemeRaw%n) + SchemeFHNoBuffer
		avail := buffer.Availability{NAR: nar, PAR: par}
		op := scheme.Op(avail, inet.Class(classRaw%4))
		if op.BuffersAtNAR() && !nar {
			return false
		}
		if op.BuffersAtPAR() && !par {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDirectory(t *testing.T) {
	d := NewDirectory()
	info := ARInfo{Addr: inet.Addr{Net: 3, Host: 1}, Net: 3}
	d.Register("ap-nar", info)

	got, ok := d.Lookup("ap-nar")
	if !ok || got != info {
		t.Fatalf("Lookup = %v/%t, want %v", got, ok, info)
	}
	if _, ok := d.Lookup("unknown"); ok {
		t.Fatal("unknown AP resolved")
	}
	if _, ok := d.Lookup(""); ok {
		t.Fatal("empty AP name resolved")
	}
	// Re-registration replaces.
	info2 := ARInfo{Addr: inet.Addr{Net: 4, Host: 1}, Net: 4}
	d.Register("ap-nar", info2)
	if got, _ := d.Lookup("ap-nar"); got != info2 {
		t.Fatalf("re-registration not applied: %v", got)
	}
}

func TestMHConfigDefaults(t *testing.T) {
	cfg := MHConfig{}
	cfg.applyDefaults()
	if cfg.BufferLifetime != DefaultBufferLifetime ||
		cfg.StartOffset != DefaultStartOffset ||
		cfg.FBUGuard != DefaultFBUGuard ||
		cfg.SolicitTimeout != DefaultSolicitTimeout ||
		cfg.RegistrationLifetime != DefaultRegistrationLifetime ||
		cfg.PCoAHoldTime != DefaultPCoAHoldTime ||
		cfg.TriggerHoldoff != DefaultTriggerHoldoff {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestRoleString(t *testing.T) {
	if rolePAR.String() != "par" || roleNAR.String() != "nar" || roleLinkLayer.String() != "link-layer" {
		t.Fatal("role strings wrong")
	}
	if role(9).String() != "role(?)" {
		t.Fatal("unknown role string")
	}
}
