package core

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/buffer"
	"repro/internal/inet"
)

func TestSchemeValidity(t *testing.T) {
	for _, s := range []Scheme{SchemeFHNoBuffer, SchemeFHOriginal, SchemePAROnly, SchemeDual, SchemeEnhanced} {
		if !s.Valid() {
			t.Errorf("%v.Valid() = false", s)
		}
	}
	if Scheme(0).Valid() || Scheme(99).Valid() {
		t.Error("invalid scheme accepted")
	}
}

func TestSchemeStrings(t *testing.T) {
	seen := make(map[string]bool)
	for _, s := range []Scheme{SchemeFHNoBuffer, SchemeFHOriginal, SchemePAROnly, SchemeDual, SchemeEnhanced} {
		str := s.String()
		if strings.HasPrefix(str, "scheme(") || seen[str] {
			t.Errorf("bad or duplicate scheme string %q", str)
		}
		seen[str] = true
	}
	if got := Scheme(42).String(); got != "scheme(42)" {
		t.Errorf("unknown scheme string = %q", got)
	}
}

func TestSchemeNegotiationWants(t *testing.T) {
	tests := []struct {
		scheme   Scheme
		wantsNAR bool
		wantsPAR bool
	}{
		{SchemeFHNoBuffer, false, false},
		{SchemeFHOriginal, true, false},
		{SchemePAROnly, false, true},
		{SchemeDual, true, true},
		{SchemeEnhanced, true, true},
	}
	for _, tt := range tests {
		if got := tt.scheme.WantsNARBuffer(); got != tt.wantsNAR {
			t.Errorf("%v.WantsNARBuffer() = %v, want %v", tt.scheme, got, tt.wantsNAR)
		}
		if got := tt.scheme.WantsPARBuffer(); got != tt.wantsPAR {
			t.Errorf("%v.WantsPARBuffer() = %v, want %v", tt.scheme, got, tt.wantsPAR)
		}
	}
}

func TestSchemeOpTable(t *testing.T) {
	both := buffer.Availability{NAR: true, PAR: true}
	tests := []struct {
		name   string
		scheme Scheme
		avail  buffer.Availability
		class  inet.Class
		want   buffer.Op
	}{
		{"nobuffer always forwards", SchemeFHNoBuffer, both, inet.ClassHighPriority, buffer.OpForward},
		{"original buffers at NAR", SchemeFHOriginal, buffer.Availability{NAR: true}, inet.ClassRealTime, buffer.OpBufferNAR},
		{"original without grant forwards", SchemeFHOriginal, buffer.Availability{}, inet.ClassRealTime, buffer.OpForward},
		{"par-only buffers at PAR", SchemePAROnly, buffer.Availability{PAR: true}, inet.ClassBestEffort, buffer.OpBufferPAR},
		{"par-only without grant forwards", SchemePAROnly, buffer.Availability{}, inet.ClassBestEffort, buffer.OpForward},
		{"dual takes the HP path for RT", SchemeDual, both, inet.ClassRealTime, buffer.OpBufferBoth},
		{"dual takes the HP path for BE", SchemeDual, both, inet.ClassBestEffort, buffer.OpBufferBoth},
		{"enhanced follows Table 3.3 for RT", SchemeEnhanced, both, inet.ClassRealTime, buffer.OpBufferNARDropHead},
		{"enhanced follows Table 3.3 for HP", SchemeEnhanced, both, inet.ClassHighPriority, buffer.OpBufferBoth},
		{"enhanced follows Table 3.3 for BE", SchemeEnhanced, both, inet.ClassBestEffort, buffer.OpBufferPARAlpha},
		{"invalid scheme forwards", Scheme(99), both, inet.ClassHighPriority, buffer.OpForward},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.scheme.Op(tt.avail, tt.class); got != tt.want {
				t.Fatalf("Op = %v, want %v", got, tt.want)
			}
		})
	}
}

// Property: no scheme ever buffers at a router that did not grant space.
func TestPropertySchemeRespectsGrants(t *testing.T) {
	f := func(schemeRaw uint8, nar, par bool, classRaw uint8) bool {
		scheme := Scheme(schemeRaw%5) + SchemeFHNoBuffer
		avail := buffer.Availability{NAR: nar, PAR: par}
		op := scheme.Op(avail, inet.Class(classRaw%4))
		if op.BuffersAtNAR() && !nar {
			return false
		}
		if op.BuffersAtPAR() && !par {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDirectory(t *testing.T) {
	d := NewDirectory()
	info := ARInfo{Addr: inet.Addr{Net: 3, Host: 1}, Net: 3}
	d.Register("ap-nar", info)

	got, ok := d.Lookup("ap-nar")
	if !ok || got != info {
		t.Fatalf("Lookup = %v/%t, want %v", got, ok, info)
	}
	if _, ok := d.Lookup("unknown"); ok {
		t.Fatal("unknown AP resolved")
	}
	if _, ok := d.Lookup(""); ok {
		t.Fatal("empty AP name resolved")
	}
	// Re-registration replaces.
	info2 := ARInfo{Addr: inet.Addr{Net: 4, Host: 1}, Net: 4}
	d.Register("ap-nar", info2)
	if got, _ := d.Lookup("ap-nar"); got != info2 {
		t.Fatalf("re-registration not applied: %v", got)
	}
}

func TestMHConfigDefaults(t *testing.T) {
	cfg := MHConfig{}
	cfg.applyDefaults()
	if cfg.BufferLifetime != DefaultBufferLifetime ||
		cfg.StartOffset != DefaultStartOffset ||
		cfg.FBUGuard != DefaultFBUGuard ||
		cfg.SolicitTimeout != DefaultSolicitTimeout ||
		cfg.RegistrationLifetime != DefaultRegistrationLifetime ||
		cfg.PCoAHoldTime != DefaultPCoAHoldTime ||
		cfg.TriggerHoldoff != DefaultTriggerHoldoff {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestRoleString(t *testing.T) {
	if rolePAR.String() != "par" || roleNAR.String() != "nar" || roleLinkLayer.String() != "link-layer" {
		t.Fatal("role strings wrong")
	}
	if role(9).String() != "role(?)" {
		t.Fatal("unknown role string")
	}
}
