package core
