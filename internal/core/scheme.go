// Package core implements the thesis' enhanced buffer management scheme for
// the Fast Handover protocol: the access-router protocol engine (PAR and
// NAR roles, negotiation, packet redirection per Table 3.3, buffer
// release), the mobile-host engine (trigger handling, RtSolPr+BI → PrRtAdv
// → FBU → L2 switch → FNA+BF → binding update), and the §3.2.2.4 buffering
// support for pure link-layer handoffs.
//
// The comparison schemes evaluated in Chapter 4 (plain fast handover
// without buffering, the original NAR-only buffering, PAR-only buffering,
// and dual buffering without classification) are variants selected by
// Scheme.
package core

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/inet"
)

// Scheme selects the buffering behaviour during handoffs.
type Scheme int

const (
	// SchemeFHNoBuffer is fast handover without any buffering (the "FH"
	// line of Figure 4.2): redirected packets are tunnelled to the NAR and
	// transmitted into the blackout.
	SchemeFHNoBuffer Scheme = iota + 1
	// SchemeFHOriginal is the original fast handover buffering: everything
	// is buffered at the NAR, tail-dropping when full (the "NAR" line).
	SchemeFHOriginal
	// SchemePAROnly buffers everything at the PAR (the "PAR" line).
	SchemePAROnly
	// SchemeDual is the proposed scheme with classification disabled:
	// every packet takes the high-priority path, filling the NAR buffer
	// first and overflowing to the PAR (the "DUAL" line; Figures 4.4/4.8).
	SchemeDual
	// SchemeEnhanced is the full proposed scheme with per-class buffering
	// operations (Table 3.3).
	SchemeEnhanced
	// SchemeSafetyNet trades buffer space for backhaul bandwidth: during
	// handoff anticipation the MAP bicasts every downstream packet toward
	// both PAR and NAR, the MH suppresses the duplicates with a per-flow
	// sequence window, and a selective-delivery report piggybacked on the
	// FNA tells the NAR to forward only the gap (Petander et al.,
	// "Multicasting with selective delivery: A SafetyNet for vertical
	// handoffs"). Neither AR claims pool space.
	SchemeSafetyNet

	// schemeSentinel marks one past the last defined scheme; the exhaustive
	// enum-walk test derives its range from it, so a scheme added without
	// updating String/Valid fails loudly.
	schemeSentinel
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SchemeFHNoBuffer:
		return "fh-no-buffer"
	case SchemeFHOriginal:
		return "fh-original"
	case SchemePAROnly:
		return "par-only"
	case SchemeDual:
		return "dual"
	case SchemeEnhanced:
		return "enhanced"
	case SchemeSafetyNet:
		return "safetynet"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Valid reports whether s is a defined scheme.
func (s Scheme) Valid() bool { return s >= SchemeFHNoBuffer && s < schemeSentinel }

// WantsNARBuffer reports whether the scheme asks the NAR for buffer space
// during negotiation.
func (s Scheme) WantsNARBuffer() bool {
	return s == SchemeFHOriginal || s == SchemeDual || s == SchemeEnhanced
}

// WantsPARBuffer reports whether the scheme reserves buffer space at the
// PAR during negotiation.
func (s Scheme) WantsPARBuffer() bool {
	return s == SchemePAROnly || s == SchemeDual || s == SchemeEnhanced
}

// Op returns the buffering operation for a packet of the given class under
// the negotiated availability.
func (s Scheme) Op(avail buffer.Availability, class inet.Class) buffer.Op {
	switch s {
	case SchemeFHNoBuffer:
		return buffer.OpForward
	case SchemeFHOriginal:
		if avail.NAR {
			return buffer.OpBufferNAR
		}
		return buffer.OpForward
	case SchemePAROnly:
		if avail.PAR {
			return buffer.OpBufferPAR
		}
		return buffer.OpForward
	case SchemeDual:
		// Classification disabled: all packets take the high-priority
		// path (NAR first, overflow to PAR).
		return buffer.Decide(avail, inet.ClassHighPriority)
	case SchemeEnhanced:
		return buffer.Decide(avail, class)
	case SchemeSafetyNet:
		// The ARs never buffer on the scheme's behalf: duplicates flow from
		// the MAP and the NAR only parks bicast copies in a hold window
		// outside the pool accounting (see AccessRouter.holdBicast).
		return buffer.OpForward
	default:
		return buffer.OpForward
	}
}
