package core

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/fho"
	"repro/internal/inet"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// arHarness wires par -- nar over one link, with a stub "ap" host hanging
// off each router so host routes have somewhere to point. The mobile host
// is simulated by injecting control packets directly.
type arHarness struct {
	engine   *sim.Engine
	topo     *netsim.Topology
	par, nar *AccessRouter
	parAP    *netsim.Host
	narAP    *netsim.Host
	pcoa     inet.Addr
}

func newARHarness(t testing.TB, cfg ARConfig) *arHarness {
	t.Helper()
	engine := sim.NewEngine()
	topo := netsim.NewTopology(engine)
	parRouter := netsim.NewRouter("par", inet.Addr{Net: 2, Host: 1})
	narRouter := netsim.NewRouter("nar", inet.Addr{Net: 3, Host: 1})
	parAP := netsim.NewHost("par-ap", inet.Addr{Net: 90, Host: 1})
	narAP := netsim.NewHost("nar-ap", inet.Addr{Net: 91, Host: 1})

	topo.Connect(parRouter, narRouter, netsim.LinkConfig{Delay: 2 * sim.Millisecond})
	parAPLink := topo.Connect(parRouter, parAP, netsim.LinkConfig{Delay: sim.Millisecond})
	narAPLink := topo.Connect(narRouter, narAP, netsim.LinkConfig{Delay: sim.Millisecond})
	topo.ClaimNet(90, parAP)
	topo.ClaimNet(91, narAP)
	topo.ClaimNet(2, parRouter)
	topo.ClaimNet(3, narRouter)
	if err := topo.ComputeRoutes(); err != nil {
		t.Fatalf("ComputeRoutes: %v", err)
	}

	dir := NewDirectory()
	par := NewAccessRouter(engine, parRouter, 2, dir, cfg)
	nar := NewAccessRouter(engine, narRouter, 3, dir, cfg)
	par.AddAP("par-ap", parAPLink.A())
	nar.AddAP("nar-ap", narAPLink.A())

	return &arHarness{
		engine: engine, topo: topo,
		par: par, nar: nar, parAP: parAP, narAP: narAP,
		pcoa: inet.Addr{Net: 2, Host: 7},
	}
}

// solicit injects an RtSolPr at the PAR as if the host had sent it.
func (h *arHarness) solicit(size uint16) {
	h.par.Router().HandlePacket(nil, &inet.Packet{
		Src: h.pcoa, Dst: h.par.Addr(), Proto: inet.ProtoControl, Size: 64,
		Payload: &fho.RtSolPr{
			MH: h.pcoa, TargetAP: "nar-ap",
			BI: &fho.BufferInit{Size: size, Start: h.engine.Now() + sim.Second, Lifetime: 5 * sim.Second},
		},
	})
}

func (h *arHarness) fbu() {
	h.par.Router().HandlePacket(nil, &inet.Packet{
		Src: h.pcoa, Dst: h.par.Addr(), Proto: inet.ProtoControl, Size: 64,
		Payload: &fho.FBU{PCoA: h.pcoa, NCoA: inet.Addr{Net: 3, Host: 7}},
	})
}

func (h *arHarness) data(class inet.Class, seq uint32) *inet.Packet {
	return &inet.Packet{
		Src: inet.Addr{Net: 1, Host: 1}, Dst: h.pcoa,
		Proto: inet.ProtoUDP, Class: class, Flow: 1, Seq: seq, Size: 160,
		Created: h.engine.Now(),
	}
}

func (h *arHarness) run(t testing.TB, d sim.Time) {
	t.Helper()
	if err := h.engine.Run(h.engine.Now() + d); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestARNegotiationCreatesBothSessions(t *testing.T) {
	h := newARHarness(t, ARConfig{Scheme: SchemeEnhanced, PoolSize: 40, Alpha: 2})
	h.solicit(20)
	h.run(t, 100*sim.Millisecond)

	if h.par.Sessions() != 1 || h.nar.Sessions() != 1 {
		t.Fatalf("sessions: par=%d nar=%d, want 1/1", h.par.Sessions(), h.nar.Sessions())
	}
	if h.par.Pool().Reserved() != 20 || h.nar.Pool().Reserved() != 20 {
		t.Fatalf("reservations: par=%d nar=%d, want 20/20",
			h.par.Pool().Reserved(), h.nar.Pool().Reserved())
	}
	// The PrRtAdv reached the (stub) host with both grants.
	// It is routed to the PCoA which has no resident route here, so it
	// lands at the PAR's no-route counter; the message flow itself was
	// already asserted via ControlSent.
	if h.par.ControlSent(fho.KindHI) != 1 || h.nar.ControlSent(fho.KindHAck) != 1 {
		t.Fatal("HI/HAck exchange incomplete")
	}
	if h.par.ControlSent(fho.KindPrRtAdv) != 1 {
		t.Fatal("PrRtAdv missing")
	}
}

func TestARRedirectBuffersByClass(t *testing.T) {
	h := newARHarness(t, ARConfig{Scheme: SchemeEnhanced, PoolSize: 40, Alpha: 2})
	drops := make(map[string]int)
	h.par.OnDrop = func(pkt *inet.Packet, where string) { drops[where]++ }
	h.nar.OnDrop = func(pkt *inet.Packet, where string) { drops[where]++ }

	h.solicit(4)
	h.run(t, 100*sim.Millisecond)
	h.fbu()
	h.run(t, 10*sim.Millisecond)

	// Best effort (buffered at PAR above α=2): capacity 4, admits 2.
	for i := uint32(0); i < 5; i++ {
		h.par.Router().HandlePacket(nil, h.data(inet.ClassBestEffort, i))
	}
	if drops[DropAtPAR] != 3 {
		t.Fatalf("BE drops at PAR = %d, want 3 (α reserve)", drops[DropAtPAR])
	}

	// Real time flows to the NAR's buffer (4 slots) with drop-head.
	for i := uint32(10); i < 17; i++ {
		h.par.Router().HandlePacket(nil, h.data(inet.ClassRealTime, i))
	}
	h.run(t, 100*sim.Millisecond)
	if drops[DropAtNAR] != 3 {
		t.Fatalf("RT evictions at NAR = %d, want 3 (7 offered, 4 slots)", drops[DropAtNAR])
	}
}

func TestARCase4DropsBestEffortOnly(t *testing.T) {
	// Pool size zero: no grants anywhere (Case 4).
	h := newARHarness(t, ARConfig{Scheme: SchemeEnhanced, PoolSize: 0})
	policy := 0
	h.par.OnDrop = func(pkt *inet.Packet, where string) {
		if where == DropPolicy {
			policy++
		}
	}
	h.solicit(10)
	h.run(t, 100*sim.Millisecond)
	h.fbu()
	h.run(t, 10*sim.Millisecond)

	h.par.Router().HandlePacket(nil, h.data(inet.ClassBestEffort, 1))
	h.par.Router().HandlePacket(nil, h.data(inet.ClassRealTime, 2))
	h.par.Router().HandlePacket(nil, h.data(inet.ClassHighPriority, 3))
	h.run(t, 100*sim.Millisecond)

	if policy != 1 {
		t.Fatalf("policy drops = %d, want 1 (only best effort)", policy)
	}
	// RT and HP were tunnelled to the NAR (forward-only) and transmitted
	// toward its AP.
	if got := h.nar.Router().NoRouteDrops(); got != 0 {
		t.Fatalf("NAR no-route drops = %d", got)
	}
}

func TestARReverseTunnel(t *testing.T) {
	h := newARHarness(t, ARConfig{Scheme: SchemeEnhanced, PoolSize: 40})
	h.solicit(10)
	h.run(t, 100*sim.Millisecond)

	// An uplink packet sourced from the PCoA arriving at the NAR from its
	// AP side must be tunnelled back to the PAR.
	var narToAP *netsim.Iface
	for _, ifc := range h.nar.Router().Ifaces() {
		if ifc.Peer() == netsim.Node(h.narAP) {
			narToAP = ifc
		}
	}
	uplink := &inet.Packet{
		Src: h.pcoa, Dst: inet.Addr{Net: 1, Host: 1},
		Proto: inet.ProtoUDP, Size: 160,
	}
	// Count tunnels arriving at the PAR.
	tunnels := 0
	prev := h.par.Router().LocalDeliver
	h.par.Router().LocalDeliver = func(in *netsim.Iface, pkt *inet.Packet) bool {
		if pkt.Proto == inet.ProtoTunnel {
			tunnels++
			return true
		}
		return prev(in, pkt)
	}
	h.nar.Router().HandlePacket(narToAP.PeerIface().PeerIface(), uplink)
	h.run(t, 100*sim.Millisecond)
	if tunnels != 1 {
		t.Fatalf("reverse tunnels at PAR = %d, want 1", tunnels)
	}
}

func TestARBufferFullMessageFlipsOverflow(t *testing.T) {
	h := newARHarness(t, ARConfig{Scheme: SchemeEnhanced, PoolSize: 40, Alpha: 0})
	h.solicit(10)
	h.run(t, 100*sim.Millisecond)
	h.fbu()
	h.run(t, 10*sim.Millisecond)

	// Inject BufferFull directly (the backstop path).
	h.par.Router().HandlePacket(nil, &inet.Packet{
		Src: h.nar.Addr(), Dst: h.par.Addr(), Proto: inet.ProtoControl, Size: 64,
		Payload: &fho.BufferFull{PCoA: h.pcoa},
	})
	// High-priority packets now buffer at the PAR instead of the NAR.
	before := h.nar.ControlSent(fho.KindHAck) // unrelated; force evaluation
	_ = before
	for i := uint32(0); i < 3; i++ {
		h.par.Router().HandlePacket(nil, h.data(inet.ClassHighPriority, i))
	}
	h.run(t, 50*sim.Millisecond)
	// Release and observe the PAR draining three packets toward the NAR.
	h.par.Router().HandlePacket(nil, &inet.Packet{
		Src: h.nar.Addr(), Dst: h.par.Addr(), Proto: inet.ProtoControl, Size: 64,
		Payload: &fho.BF{PCoA: h.pcoa},
	})
	h.run(t, 50*sim.Millisecond)
	if h.par.Sessions() != 0 {
		t.Fatalf("PAR session not closed by BF")
	}
	if h.par.Pool().Reserved() != 0 {
		t.Fatalf("PAR reservation leaked: %d", h.par.Pool().Reserved())
	}
}

func TestARUnknownTargetRefused(t *testing.T) {
	h := newARHarness(t, ARConfig{Scheme: SchemeEnhanced, PoolSize: 40})
	h.par.Router().HandlePacket(nil, &inet.Packet{
		Src: h.pcoa, Dst: h.par.Addr(), Proto: inet.ProtoControl, Size: 64,
		Payload: &fho.RtSolPr{MH: h.pcoa, TargetAP: "nowhere",
			BI: &fho.BufferInit{Size: 10, Start: sim.Second, Lifetime: 5 * sim.Second}},
	})
	h.run(t, 50*sim.Millisecond)
	if h.par.Sessions() != 0 {
		t.Fatal("session created for unknown target")
	}
	if h.par.ControlSent(fho.KindPrRtAdv) != 1 {
		t.Fatal("refusal PrRtAdv not sent")
	}
	if h.par.Pool().Reserved() != 0 {
		t.Fatal("reservation leaked on refusal")
	}
}

func TestARExpireReleasesEverything(t *testing.T) {
	h := newARHarness(t, ARConfig{Scheme: SchemeEnhanced, PoolSize: 40, Alpha: 0})
	drops := 0
	h.par.OnDrop = func(pkt *inet.Packet, where string) {
		if where == DropOnLifetime {
			drops++
		}
	}
	h.solicit(10)
	h.run(t, 100*sim.Millisecond)
	h.fbu()
	h.run(t, 10*sim.Millisecond)
	h.par.Router().HandlePacket(nil, h.data(inet.ClassBestEffort, 1))
	h.par.Router().HandlePacket(nil, h.data(inet.ClassBestEffort, 2))

	// The BI lifetime was 5 s; never release.
	h.run(t, 10*sim.Second)
	if drops != 2 {
		t.Fatalf("lifetime drops = %d, want 2", drops)
	}
	if h.par.Sessions() != 0 || h.par.Pool().Reserved() != 0 {
		t.Fatalf("state leaked: sessions=%d reserved=%d",
			h.par.Sessions(), h.par.Pool().Reserved())
	}
	if h.nar.Sessions() != 0 || h.nar.Pool().Reserved() != 0 {
		t.Fatalf("NAR state leaked: sessions=%d reserved=%d",
			h.nar.Sessions(), h.nar.Pool().Reserved())
	}
}

func TestARDuplicateSolicitResendsHI(t *testing.T) {
	h := newARHarness(t, ARConfig{Scheme: SchemeEnhanced, PoolSize: 40})
	h.solicit(10)
	h.run(t, 50*sim.Millisecond)
	h.solicit(10) // retry
	h.run(t, 50*sim.Millisecond)
	if got := h.par.ControlSent(fho.KindHI); got != 2 {
		t.Fatalf("HI sent %d times, want 2 (idempotent retry)", got)
	}
	if h.par.Pool().Reserved() != 10 {
		t.Fatalf("duplicate solicit changed the reservation: %d", h.par.Pool().Reserved())
	}
	if got := h.nar.ControlSent(fho.KindHAck); got != 2 {
		t.Fatalf("HAck sent %d times, want 2", got)
	}
	if h.nar.Pool().Reserved() != 10 {
		t.Fatalf("duplicate HI changed the NAR reservation: %d", h.nar.Pool().Reserved())
	}
}

// dropKinds drops the first n control messages of the given kinds crossing
// the interface, returning a counter of how many it ate.
func dropKinds(ifc *netsim.Iface, n int, kinds ...fho.Kind) *int {
	dropped := 0
	ifc.Impair = func(pkt *inet.Packet) bool {
		if dropped >= n {
			return false
		}
		for _, k := range kinds {
			if msg, ok := pkt.Payload.(fho.Message); ok && msg.Kind() == k {
				dropped++
				return true
			}
		}
		return false
	}
	return &dropped
}

// narToPARIface returns the NAR's interface toward the PAR.
func (h *arHarness) narToPARIface() *netsim.Iface {
	for _, ifc := range h.nar.Router().Ifaces() {
		if ifc.Peer() == netsim.Node(h.par.Router()) {
			return ifc
		}
	}
	return nil
}

// Regression: a BI with Lifetime <= 0 used to arm no lifetime timer at all,
// leaking the session (and its reservation) forever if the release
// signaling never arrived. The default lifetime must backstop it.
func TestARZeroLifetimeBIStillExpires(t *testing.T) {
	h := newARHarness(t, ARConfig{Scheme: SchemeEnhanced, PoolSize: 40})
	h.par.Router().HandlePacket(nil, &inet.Packet{
		Src: h.pcoa, Dst: h.par.Addr(), Proto: inet.ProtoControl, Size: 64,
		Payload: &fho.RtSolPr{
			MH: h.pcoa, TargetAP: "nar-ap",
			BI: &fho.BufferInit{Size: 10, Start: h.engine.Now() + sim.Second},
		},
	})
	h.run(t, 100*sim.Millisecond)
	if h.par.Sessions() != 1 || h.nar.Sessions() != 1 {
		t.Fatalf("sessions: par=%d nar=%d, want 1/1", h.par.Sessions(), h.nar.Sessions())
	}
	// Never send the FBU or the FNA: only the lifetime backstop can clean
	// up. The zero-lifetime BI must fall back to DefaultSessionLifetime.
	h.run(t, DefaultSessionLifetime+sim.Second)
	if h.par.Sessions() != 0 || h.nar.Sessions() != 0 {
		t.Fatalf("zero-lifetime sessions leaked: par=%d nar=%d",
			h.par.Sessions(), h.nar.Sessions())
	}
	if h.par.Pool().Reserved() != 0 || h.nar.Pool().Reserved() != 0 {
		t.Fatalf("reservations leaked: par=%d nar=%d",
			h.par.Pool().Reserved(), h.nar.Pool().Reserved())
	}
}

func TestARHIRetransmitRecoversLostHAck(t *testing.T) {
	h := newARHarness(t, ARConfig{Scheme: SchemeEnhanced, PoolSize: 40})
	dropped := dropKinds(h.narToPARIface(), 1, fho.KindHAck)
	h.solicit(10)
	h.run(t, sim.Second)

	if *dropped != 1 {
		t.Fatalf("HAck drops = %d, want 1", *dropped)
	}
	if got := h.par.ControlSent(fho.KindHI); got != 2 {
		t.Fatalf("HI sent %d times, want 2 (original + one retransmission)", got)
	}
	if got := h.par.ControlSent(fho.KindPrRtAdv); got != 1 {
		t.Fatalf("PrRtAdv sent %d times, want 1", got)
	}
	if h.par.Sessions() != 1 || h.nar.Sessions() != 1 {
		t.Fatalf("sessions: par=%d nar=%d, want 1/1", h.par.Sessions(), h.nar.Sessions())
	}
	if h.par.SignalingFailures() != 0 {
		t.Fatalf("SignalingFailures = %d, want 0", h.par.SignalingFailures())
	}
}

func TestARHIExhaustionRefusesAndCleansUp(t *testing.T) {
	h := newARHarness(t, ARConfig{Scheme: SchemeEnhanced, PoolSize: 40})
	dropped := dropKinds(h.narToPARIface(), 1000, fho.KindHAck)
	h.solicit(10)
	// Tries exhaust at 150 + 300 + 600 = 1050 ms.
	h.run(t, 2*sim.Second)

	if got := h.par.ControlSent(fho.KindHI); got != uint64(DefaultMaxSignalTries) {
		t.Fatalf("HI sent %d times, want %d", got, DefaultMaxSignalTries)
	}
	if *dropped != DefaultMaxSignalTries {
		t.Fatalf("HAck drops = %d, want %d", *dropped, DefaultMaxSignalTries)
	}
	if h.par.SignalingFailures() != 1 {
		t.Fatalf("SignalingFailures = %d, want 1", h.par.SignalingFailures())
	}
	if h.par.Sessions() != 0 || h.par.Pool().Reserved() != 0 {
		t.Fatalf("PAR state leaked after exhaustion: sessions=%d reserved=%d",
			h.par.Sessions(), h.par.Pool().Reserved())
	}
	// The host was told (refusal PrRtAdv) so it can fall back.
	if got := h.par.ControlSent(fho.KindPrRtAdv); got != 1 {
		t.Fatalf("refusal PrRtAdv sent %d times, want 1", got)
	}
	// The NAR's orphaned session (its HAcks vanished) lapses with the BI
	// lifetime from the solicitation.
	h.run(t, 10*sim.Second)
	if h.nar.Sessions() != 0 || h.nar.Pool().Reserved() != 0 {
		t.Fatalf("NAR state leaked: sessions=%d reserved=%d",
			h.nar.Sessions(), h.nar.Pool().Reserved())
	}
}

func TestSchemeOpDualTreatsAllAsHP(t *testing.T) {
	avail := buffer.Availability{NAR: true, PAR: true}
	for _, c := range inet.Classes {
		if got := SchemeDual.Op(avail, c); got != buffer.OpBufferBoth {
			t.Errorf("dual Op(%v) = %v, want buffer-at-both", c, got)
		}
	}
}
