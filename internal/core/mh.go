package core

import (
	"repro/internal/fho"
	"repro/internal/inet"
	"repro/internal/mip"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// MHConfig configures a mobile host's handover engine.
type MHConfig struct {
	// HostID is the host part of every care-of address the host forms.
	// It must be unique across mobile hosts.
	HostID inet.HostID
	// Scheme must match the access routers' scheme.
	Scheme Scheme
	// BufferRequest is the buffer size (packets) asked for in the BI
	// option. Zero sends no BI (plain fast handover).
	BufferRequest int
	// BufferLifetime bounds the granted buffer space. Zero selects
	// DefaultBufferLifetime.
	BufferLifetime sim.Time
	// StartOffset sets BI.Start = now + StartOffset: the PAR begins
	// buffering on its own after this long even without an FBU. Zero
	// selects DefaultStartOffset.
	StartOffset sim.Time
	// FBUGuard is the pause between sending the FBU and detaching, giving
	// the uplink frame time to leave the radio. Zero selects
	// DefaultFBUGuard.
	FBUGuard sim.Time
	// SolicitTimeout is retained for configuration compatibility; the
	// solicitation is now abandoned when the RetransmitInterval /
	// MaxSignalTries retry budget exhausts (see solicitRetry). Zero selects
	// DefaultSolicitTimeout.
	SolicitTimeout sim.Time
	// RetransmitInterval is the initial retransmission timeout for handover
	// signaling that expects an answer (the RtSolPr awaiting its PrRtAdv,
	// the FBU awaiting its FBAck). It doubles on every retry. Zero selects
	// DefaultRetransmitInterval.
	RetransmitInterval sim.Time
	// MaxSignalTries bounds the total transmissions per signaling exchange
	// (the first send plus retries). Zero selects DefaultMaxSignalTries.
	MaxSignalTries int
	// RetransmitUnacked additionally retransmits the protocol's
	// unacknowledged messages — the attach-time FNA/BF release (cleared by
	// an implicit acknowledgment: any packet delivered to the new care-of
	// address) and the post-attach unanticipated FBU (whose FBAck cannot
	// reach the departed address). Off by default: duplicates of
	// unacknowledged messages are sent even on loss-free links, so only
	// loss-injected deployments should pay for them.
	RetransmitUnacked bool
	// RegistrationLifetime is the binding-update lifetime sent to the MAP.
	// Zero selects DefaultRegistrationLifetime.
	RegistrationLifetime sim.Time
	// PCoAHoldTime keeps the previous care-of address active after a
	// handoff so drained packets are still accepted. Zero selects
	// DefaultPCoAHoldTime.
	PCoAHoldTime sim.Time
	// TriggerHoldoff suppresses new handover triggers for this long after
	// an attachment, so beacons from the old access point still audible in
	// the overlap area cannot bounce the host straight back. Zero selects
	// DefaultTriggerHoldoff.
	TriggerHoldoff sim.Time
	// AuthKey, when non-empty, signs the host's FNA messages so access
	// routers requiring authentication accept its handovers.
	AuthKey []byte
	// HysteresisDB is the signal-strength margin a new access point must
	// exceed the current one by before a handover triggers. Zero means
	// "any stronger signal" (equivalent to strictly closer under equal
	// transmit powers).
	HysteresisDB float64
	// Mobility selects fast handover (default) or the plain Mobile IP
	// baseline.
	Mobility Mobility
}

// Defaults for MHConfig fields left zero.
const (
	DefaultBufferLifetime       = 5 * sim.Second
	DefaultStartOffset          = 1 * sim.Second
	DefaultFBUGuard             = 2 * sim.Millisecond
	DefaultSolicitTimeout       = 800 * sim.Millisecond
	DefaultRegistrationLifetime = 60 * sim.Second
	DefaultPCoAHoldTime         = 5 * sim.Second
	DefaultTriggerHoldoff       = 3 * sim.Second
)

func (c *MHConfig) applyDefaults() {
	if c.BufferLifetime == 0 {
		c.BufferLifetime = DefaultBufferLifetime
	}
	if c.StartOffset == 0 {
		c.StartOffset = DefaultStartOffset
	}
	if c.FBUGuard == 0 {
		c.FBUGuard = DefaultFBUGuard
	}
	if c.SolicitTimeout == 0 {
		c.SolicitTimeout = DefaultSolicitTimeout
	}
	if c.RetransmitInterval == 0 {
		c.RetransmitInterval = DefaultRetransmitInterval
	}
	if c.MaxSignalTries == 0 {
		c.MaxSignalTries = DefaultMaxSignalTries
	}
	if c.RegistrationLifetime == 0 {
		c.RegistrationLifetime = DefaultRegistrationLifetime
	}
	if c.PCoAHoldTime == 0 {
		c.PCoAHoldTime = DefaultPCoAHoldTime
	}
	if c.TriggerHoldoff == 0 {
		c.TriggerHoldoff = DefaultTriggerHoldoff
	}
}

// Mobility selects the host's mobility management mode.
type Mobility int

const (
	// MobilityFastHandover (the default) runs the fast-handover protocol
	// with anticipation and buffering.
	MobilityFastHandover Mobility = iota
	// MobilityPlainMIP is the Chapter 2 baseline: movement detection by
	// router advertisements, an immediate link switch, and a Mobile IP
	// registration with the anchor afterwards — no anticipation, no
	// buffering. The handoff outage is detection + blackout +
	// registration round trip, which is what the thesis' enhancements
	// exist to remove.
	MobilityPlainMIP
)

// mhState is the handover state machine.
type mhState int

const (
	mhIdle       mhState = iota // attached, no handoff in progress
	mhSoliciting                // RtSolPr sent, awaiting PrRtAdv
	mhReady                     // PrRtAdv received, FBU sent, about to switch
	mhSwitching                 // in the L2 blackout
	// mhShadowRequest/mhShadowBuffering implement §3.3's "buffer packets
	// at its access router when poor connection quality on a wireless
	// link is detected": the buffering machinery runs without any link
	// switch.
	mhShadowRequest
	mhShadowBuffering
)

// HandoffRecord captures one completed handoff for analysis.
type HandoffRecord struct {
	// Triggered is when the host decided to hand off (L2-ST).
	Triggered sim.Time
	// Advertised is when the PrRtAdv arrived (zero on the unanticipated
	// path); Triggered→Advertised is the anticipation signalling time
	// (RtSolPr + HI/HAck round trip).
	Advertised sim.Time
	// Detached and Attached bound the L2 blackout.
	Detached sim.Time
	Attached sim.Time
	// Completed is when the release signalling (FNA/BF, binding update)
	// was sent after attachment.
	Completed sim.Time
	// LinkLayerOnly marks a same-router AP switch.
	LinkLayerOnly bool
	// Anticipated is false for the fallback path where the host lost its
	// old link before the fast-handover signalling completed.
	Anticipated bool
	// NARGranted/PARGranted echo the negotiation outcome.
	NARGranted bool
	PARGranted bool
}

// MobileHost is the mobile side of the handover protocol. It owns a
// wireless station and reacts to router advertisements, link events and
// control messages.
type MobileHost struct {
	engine  *sim.Engine
	station *wireless.Station
	cfg     MHConfig

	rcoa    inet.Addr
	mapAddr inet.Addr
	lcoa    inet.Addr
	arAddr  inet.Addr
	arNet   inet.NetID

	auth *fho.Authenticator

	state         mhState
	target        wireless.Advertisement
	ncoa          inet.Addr
	narAddr       inet.Addr
	llOnly        bool
	unanticipated bool
	prevAR        inet.Addr
	current       HandoffRecord
	buSeq         uint16
	lastAttach    sim.Time

	// Solicitation retransmission (RtSolPr awaiting its PrRtAdv).
	solicitT    *sim.Timer
	solTries    int
	lastSolicit *fho.RtSolPr
	// FBU retransmission (awaiting its FBAck).
	fbuT       *sim.Timer
	fbuTries   int
	fbuPending bool
	lastFBU    *fho.FBU
	fbuDst     inet.Addr
	// Release retransmission (the attach-time FNA/BF, with
	// RetransmitUnacked), cleared by the implicit acknowledgment.
	relT        *sim.Timer
	relTries    int
	relPending  bool
	lastRelease fho.Message

	signalingFailures uint64

	buRetry   *sim.Timer
	buRefresh *sim.Timer
	buPending bool
	buTries   int

	heardAPs map[string]*wireless.AccessPoint

	handoffs []HandoffRecord

	// SafetyNet per-flow sequence windows (linear scan: a host carries a
	// handful of flows) and the count of duplicates suppressed.
	flowSeen      []flowDedup
	dedupDiscards uint64

	// OnDeliver receives every application packet (innermost, tunnels
	// stripped) addressed to the host.
	OnDeliver func(pkt *inet.Packet)
	// ReleaseTunnel, if set, receives the outermost packet after its
	// tunnel wrappers have been stripped (outer != inner). The wrappers
	// are dead at that point; a recycling sink can return them to a
	// packet pool. inner is still live and must not be released here.
	ReleaseTunnel func(outer, inner *inet.Packet)
	// OnDuplicate receives every redundant bicast copy the SafetyNet dedup
	// window suppressed (the innermost packet, wrappers already released
	// through ReleaseTunnel). The observer owns the packet.
	OnDuplicate func(pkt *inet.Packet)
	// OnHandoffDone fires after each completed handoff (attach + release
	// signalling sent).
	OnHandoffDone func(rec HandoffRecord)
	// OnControl observes control messages the host sends.
	OnControl func(kind fho.Kind)
}

// NewMobileHost binds a handover engine to a wireless station. Call Attach
// to place the host on its initial access point before running.
func NewMobileHost(engine *sim.Engine, station *wireless.Station,
	rcoa, mapAddr inet.Addr, cfg MHConfig) *MobileHost {
	cfg.applyDefaults()
	mh := &MobileHost{
		engine:   engine,
		station:  station,
		cfg:      cfg,
		rcoa:     rcoa,
		mapAddr:  mapAddr,
		heardAPs: make(map[string]*wireless.AccessPoint),
	}
	station.OnRA = mh.handleRA
	station.OnPacket = mh.handlePacket
	station.OnLinkUp = mh.handleLinkUp
	mh.auth = fho.NewAuthenticator(cfg.AuthKey)
	mh.solicitT = sim.NewTimer(engine, mh.solicitRetry)
	mh.fbuT = sim.NewTimer(engine, mh.retryFBU)
	mh.relT = sim.NewTimer(engine, mh.retryRelease)
	mh.buRetry = sim.NewTimer(engine, mh.retryBindingUpdate)
	mh.buRefresh = sim.NewTimer(engine, mh.refreshBinding)
	return mh
}

// Station returns the wireless NIC.
func (mh *MobileHost) Station() *wireless.Station { return mh.station }

// LCoA returns the current on-link care-of address.
func (mh *MobileHost) LCoA() inet.Addr { return mh.lcoa }

// RCoA returns the regional care-of address.
func (mh *MobileHost) RCoA() inet.Addr { return mh.rcoa }

// Handoffs returns the completed handoff records.
func (mh *MobileHost) Handoffs() []HandoffRecord { return mh.handoffs }

// SignalingFailures counts handover signaling exchanges the host gave up
// on after exhausting their retransmission budget: a solicitation whose
// PrRtAdv never came (the host then degrades to the reactive path) or an
// attach announcement that was never implicitly acknowledged (the host is
// blackholed until its next movement).
func (mh *MobileHost) SignalingFailures() uint64 { return mh.signalingFailures }

// SetAuthKey replaces the host's authentication key; nil disables
// signing.
func (mh *MobileHost) SetAuthKey(key []byte) { mh.auth = fho.NewAuthenticator(key) }

// Attach places the host on its initial access point, forming an LCoA on
// the router's network. The caller is responsible for the corresponding
// AttachResident on the access router and the initial MAP binding.
func (mh *MobileHost) Attach(ap *wireless.AccessPoint, arAddr inet.Addr, arNet inet.NetID) {
	mh.lcoa = inet.Addr{Net: arNet, Host: mh.cfg.HostID}
	mh.arAddr = arAddr
	mh.arNet = arNet
	mh.station.AddAddr(mh.lcoa)
	mh.station.Associate(ap)
	mh.state = mhIdle
}

// --- movement detection ---

// handleRA implements the L2 source trigger: hearing a beacon from a
// different access point while in the overlap area starts an anticipated
// handover toward it. A holdoff after each attachment keeps the old AP's
// still-audible beacons from bouncing the host straight back. If the
// current AP no longer covers the host (the anticipation window was
// missed), the host falls back to an unanticipated link switch.
func (mh *MobileHost) handleRA(adv wireless.Advertisement) {
	if adv.AP != nil {
		mh.heardAPs[adv.AP.Name()] = adv.AP
	}
	if mh.state != mhIdle || adv.AP == nil {
		return
	}
	cur := mh.station.AP()
	if cur == nil || adv.AP == cur {
		return
	}
	now := mh.engine.Now()
	if now-mh.lastAttach < mh.cfg.TriggerHoldoff {
		return
	}
	pos := mh.station.Pos(now)
	if !cur.Covers(pos) {
		mh.startUnanticipatedHandoff(adv)
		return
	}
	// The L2 source trigger is a signal-strength comparison: hand off only
	// toward an AP whose received power beats the current one by the
	// hysteresis margin, so a host between two cells does not oscillate.
	if adv.AP.RSSI(pos) <= cur.RSSI(pos)+mh.cfg.HysteresisDB {
		return
	}
	if mh.cfg.Mobility == MobilityPlainMIP {
		// Plain Mobile IP never anticipates: switch, then register.
		mh.startUnanticipatedHandoff(adv)
		return
	}
	mh.startHandoff(adv)
}

// startUnanticipatedHandoff switches links immediately; the fast-handover
// signalling happens from the new link (the protocol's no-anticipation
// case). Packets in flight during the blackout are lost.
func (mh *MobileHost) startUnanticipatedHandoff(adv wireless.Advertisement) {
	mh.cancelRetries()
	mh.state = mhSwitching
	mh.target = adv
	mh.unanticipated = true
	mh.llOnly = adv.Router == mh.arAddr
	mh.narAddr = adv.Router
	mh.ncoa = inet.Addr{Net: adv.Net, Host: mh.cfg.HostID}
	mh.prevAR = mh.arAddr
	now := mh.engine.Now()
	mh.current = HandoffRecord{Triggered: now, Detached: now, LinkLayerOnly: mh.llOnly}
	mh.station.SwitchTo(adv.AP)
}

// startHandoff sends RtSolPr+BI toward the current access router.
func (mh *MobileHost) startHandoff(adv wireless.Advertisement) {
	mh.cancelRetries()
	mh.state = mhSoliciting
	mh.target = adv
	mh.unanticipated = false
	mh.current = HandoffRecord{Triggered: mh.engine.Now(), Anticipated: true}
	msg := &fho.RtSolPr{MH: mh.lcoa, TargetAP: adv.AP.Name()}
	if mh.cfg.BufferRequest > 0 && mh.cfg.Scheme != SchemeFHNoBuffer {
		msg.BI = &fho.BufferInit{
			Size:     uint16(mh.cfg.BufferRequest),
			Start:    mh.engine.Now() + mh.cfg.StartOffset,
			Lifetime: mh.cfg.BufferLifetime,
		}
	}
	if mh.auth != nil {
		mh.auth.SignRtSolPr(msg)
	}
	mh.sendControl(mh.arAddr, msg)
	mh.armSolicitRetry(msg)
}

// armSolicitRetry records a sent RtSolPr and starts its retransmission
// timer awaiting the PrRtAdv.
func (mh *MobileHost) armSolicitRetry(msg *fho.RtSolPr) {
	mh.lastSolicit = msg
	mh.solTries = 1
	mh.solicitT.Reset(mh.cfg.RetransmitInterval)
}

// solicitRetry retransmits an unanswered RtSolPr with exponential backoff,
// leaning on the access router's idempotent duplicate handling. When the
// try budget exhausts, a shadow-buffering request is abandoned (the caller
// can retry), while a handover degrades to the reactive no-anticipation
// path instead of hanging on signaling that will never complete.
func (mh *MobileHost) solicitRetry() {
	if mh.state != mhSoliciting && mh.state != mhShadowRequest {
		return
	}
	if mh.solTries >= mh.cfg.MaxSignalTries {
		if mh.state == mhShadowRequest {
			mh.state = mhIdle
			return
		}
		mh.fallbackToReactive()
		return
	}
	mh.solTries++
	mh.sendControl(mh.arAddr, mh.lastSolicit)
	mh.solicitT.Reset(mh.cfg.RetransmitInterval << (mh.solTries - 1))
}

// fallbackToReactive abandons an anticipated handover whose signaling
// exhausted its retries and switches links immediately — the protocol's
// no-anticipation case — so the handoff still completes, just without
// buffering.
func (mh *MobileHost) fallbackToReactive() {
	mh.signalingFailures++
	if mh.target.AP == nil {
		mh.state = mhIdle
		return
	}
	mh.startUnanticipatedHandoff(mh.target)
}

// cancelRetries stops the per-handoff retransmission timers when a new
// movement supersedes whatever exchange they were driving.
func (mh *MobileHost) cancelRetries() {
	mh.solicitT.Stop()
	mh.fbuT.Stop()
	mh.fbuPending = false
	mh.relT.Stop()
	mh.relPending = false
}

// CancelHandoff aborts an in-progress handover before the link switch by
// sending an RtSolPr whose BI carries zero start time and lifetime
// (§3.2.2.1: "the mobile host can cancel the handoff process"). The
// current access router releases its session immediately; a NAR-side
// reservation, if already made, lapses with its lifetime. It reports
// whether there was a handover to cancel.
func (mh *MobileHost) CancelHandoff() bool {
	if mh.state != mhSoliciting && mh.state != mhReady {
		return false
	}
	mh.solicitT.Stop()
	mh.state = mhIdle
	cancel := &fho.RtSolPr{
		MH:       mh.lcoa,
		TargetAP: mh.target.AP.Name(),
		BI:       &fho.BufferInit{},
	}
	if mh.auth != nil {
		mh.auth.SignRtSolPr(cancel)
	}
	mh.sendControl(mh.arAddr, cancel)
	return true
}

// --- control plane ---

// handlePacket receives every frame the station accepts.
func (mh *MobileHost) handlePacket(pkt *inet.Packet) {
	if mh.relPending && pkt.Dst == mh.lcoa {
		// Implicit release acknowledgment: a packet addressed to the new
		// care-of address proves the FNA-installed host route exists at the
		// new router (without it the router has no route and drops).
		mh.relPending = false
		mh.relT.Stop()
	}
	inner := pkt.Innermost()
	if inner != pkt && mh.ReleaseTunnel != nil {
		// The wrappers are discarded here either way; let the owner
		// recycle them.
		mh.ReleaseTunnel(pkt, inner)
	}
	if inner.Proto == inet.ProtoControl {
		switch msg := inner.Payload.(type) {
		case *fho.PrRtAdv:
			mh.handlePrRtAdv(msg)
		case *fho.FBAck:
			// Redirection already runs at the PAR; the ack just stops the
			// FBU retransmissions.
			mh.fbuPending = false
			mh.fbuT.Stop()
		case *mip.BindingAck:
			if msg.Seq == mh.buSeq {
				mh.buPending = false
				mh.buRetry.Stop()
			}
		}
		return
	}
	if mh.cfg.Scheme == SchemeSafetyNet && inner.Flow != 0 && !mh.observeSeq(inner.Flow, inner.Seq) {
		// Redundant bicast copy: the other leg already delivered it.
		mh.dedupDiscards++
		if mh.OnDuplicate != nil {
			mh.OnDuplicate(inner)
		}
		return
	}
	if mh.OnDeliver != nil {
		mh.OnDeliver(inner)
	}
}

// DedupDiscards counts redundant bicast copies suppressed at the host.
func (mh *MobileHost) DedupDiscards() uint64 { return mh.dedupDiscards }

// flowDedup is one flow's SafetyNet receive window.
type flowDedup struct {
	flow inet.FlowID
	win  dedupWindow
}

// dedupWindow is an anti-replay-style sliding sequence window: a 64-deep
// bitmask below the highest sequence seen, plus the cumulative
// contiguity frontier the selective-delivery report is built from.
//
// Sequence numbers are compared with RFC 1982-style serial arithmetic
// (seqNewer), so the window keeps working when a flow's 32-bit sequence
// space wraps past 2^32: "newer" means within the forward half-space.
// A regression deeper than the 64-entry mask (including a flow restart at
// seq 0 against a frontier far from the wrap point) is conservatively
// treated as already seen — stale state must never resurrect packets, and
// recycled windows are zeroed instead (see AccessRouter.freeSession).
type dedupWindow struct {
	seen   bool
	maxSeq uint32
	// mask bit i records whether maxSeq-i was received.
	mask uint64
	// nextContig is the lowest sequence number not yet known-delivered:
	// every seq serially below it was received, so the report can safely
	// ack nextContig-1 and nothing above.
	nextContig uint32
	// acked records whether the frontier ever moved. It distinguishes the
	// empty frontier (nextContig still at its zero start) from a frontier
	// that advanced all the way around the sequence space back to 0.
	acked bool
}

// seqNewer reports whether a is serially newer than b: a is within the
// forward half of the 32-bit sequence space relative to b. This is the
// RFC 1982 comparison specialised to uint32, correct across wraparound
// for any real flow (in-flight reordering is bounded by the bicast hold
// window, far inside the 2^31 half-space).
func seqNewer(a, b uint32) bool { return int32(a-b) > 0 }

// observe records one received sequence number and reports whether it is
// fresh (first delivery). Sequences older than the 64-entry window are
// conservatively treated as already seen — with bicast depth bounded by
// the NAR hold window, a genuinely-first copy cannot lag that far.
func (w *dedupWindow) observe(seq uint32) bool {
	if !w.seen {
		w.seen = true
		w.maxSeq = seq
		w.mask = 1
		w.advance()
		return true
	}
	if seqNewer(seq, w.maxSeq) {
		shift := seq - w.maxSeq
		if shift >= 64 {
			w.mask = 1
		} else {
			w.mask = w.mask<<shift | 1
		}
		w.maxSeq = seq
		w.advance()
		return true
	}
	off := w.maxSeq - seq
	if off >= 64 {
		return false
	}
	if w.mask&(1<<off) != 0 {
		return false
	}
	w.mask |= 1 << off
	w.advance()
	return true
}

// advance pushes the contiguity frontier over every newly filled bit.
func (w *dedupWindow) advance() {
	for !seqNewer(w.nextContig, w.maxSeq) {
		off := w.maxSeq - w.nextContig
		if off >= 64 || w.mask&(1<<off) == 0 {
			return
		}
		w.nextContig++
		w.acked = true
	}
}

// observeSeq records a delivery in the flow's window, creating it on
// first contact, and reports whether the packet is fresh.
func (mh *MobileHost) observeSeq(flow inet.FlowID, seq uint32) bool {
	return observeFlowSeq(&mh.flowSeen, flow, seq)
}

// observeFlowSeq records one sequence observation in the flow's window
// within set, creating the window on first contact, and reports whether
// the sequence is fresh. Shared between the host's receive dedup and the
// NAR's hold-window dedup (which must park each packet at most once even
// though the PAR-redirected primary and the anchor's bicast duplicate
// both arrive).
func observeFlowSeq(set *[]flowDedup, flow inet.FlowID, seq uint32) bool {
	s := *set
	for i := range s {
		if s[i].flow == flow {
			return s[i].win.observe(seq)
		}
	}
	*set = append(s, flowDedup{flow: flow})
	s = *set
	return s[len(s)-1].win.observe(seq)
}

// buildReport assembles the selective-delivery report: one cumulative ack
// per flow with a non-empty contiguous prefix. The NAR treats anything
// the report does not cover as undelivered, so a stalled frontier (a
// genuine pre-handoff loss) only costs redundant forwarding.
func (mh *MobileHost) buildReport() []fho.FlowSeq {
	var report []fho.FlowSeq
	for i := range mh.flowSeen {
		f := &mh.flowSeen[i]
		if !f.win.acked {
			continue
		}
		// nextContig-1 is correct across wraparound too: a frontier that
		// advanced all the way back to 0 acks 2^32-1, which reportCovers
		// compares serially.
		report = append(report, fho.FlowSeq{Flow: uint32(f.flow), Ack: f.win.nextContig - 1})
	}
	return report
}

// RequestLinkBuffering asks the current access router to start buffering
// this host's packets without any handoff — §3.3: a host "can also buffer
// packets at its access router when poor connection quality on a wireless
// link is detected". Packets queue at the router until
// ReleaseLinkBuffering. It reports whether the request was sent (the host
// must be idle and attached, with a buffer request configured).
func (mh *MobileHost) RequestLinkBuffering() bool {
	if mh.state != mhIdle || mh.station.AP() == nil || mh.cfg.BufferRequest <= 0 {
		return false
	}
	mh.state = mhShadowRequest
	msg := &fho.RtSolPr{
		MH:       mh.lcoa,
		TargetAP: mh.station.AP().Name(), // our own AP: a link-layer session
		BI: &fho.BufferInit{
			Size:     uint16(mh.cfg.BufferRequest),
			Start:    mh.engine.Now() + mh.cfg.StartOffset,
			Lifetime: mh.cfg.BufferLifetime,
		},
	}
	if mh.auth != nil {
		mh.auth.SignRtSolPr(msg)
	}
	mh.sendControl(mh.arAddr, msg)
	mh.armSolicitRetry(msg)
	return true
}

// ReleaseLinkBuffering asks the router to forward everything it buffered
// since RequestLinkBuffering. It reports whether there was a shadow
// session to release.
func (mh *MobileHost) ReleaseLinkBuffering() bool {
	if mh.state != mhShadowBuffering {
		return false
	}
	mh.state = mhIdle
	mh.sendControl(mh.arAddr, &fho.BF{PCoA: mh.lcoa})
	return true
}

// handlePrRtAdv completes anticipation: record the negotiation, send the
// FBU, and schedule the L2 switch.
func (mh *MobileHost) handlePrRtAdv(msg *fho.PrRtAdv) {
	if mh.state == mhShadowRequest {
		mh.solicitT.Stop()
		if !msg.LinkLayerOnly || !msg.PARGranted {
			mh.state = mhIdle // refused: no space, or misrouted request
			return
		}
		mh.state = mhShadowBuffering
		fbu := &fho.FBU{PCoA: mh.lcoa, NCoA: mh.lcoa}
		if mh.auth != nil {
			mh.auth.SignFBU(fbu)
		}
		mh.sendControl(mh.arAddr, fbu)
		mh.armFBURetry(mh.arAddr, fbu)
		return
	}
	if mh.state == mhIdle && msg.TargetAP != "" && !msg.NCoA.IsUnspecified() {
		// Unsolicited advertisement: a network-initiated handover. Accept
		// it if the named access point has been heard recently.
		ap, ok := mh.heardAPs[msg.TargetAP]
		if !ok {
			return
		}
		mh.state = mhSoliciting // fall through to the common path below
		mh.target = wireless.Advertisement{AP: ap}
		mh.unanticipated = false
		mh.current = HandoffRecord{Triggered: mh.engine.Now(), Anticipated: true}
	}
	if mh.state != mhSoliciting {
		return
	}
	if msg.NCoA.IsUnspecified() && !msg.LinkLayerOnly {
		// Refused (unknown target): abandon.
		mh.state = mhIdle
		mh.solicitT.Stop()
		return
	}
	mh.solicitT.Stop()
	mh.state = mhReady
	mh.current.Advertised = mh.engine.Now()
	mh.llOnly = msg.LinkLayerOnly
	mh.ncoa = msg.NCoA
	mh.narAddr = msg.NAR
	mh.current.NARGranted = msg.NARGranted
	mh.current.PARGranted = msg.PARGranted
	mh.current.LinkLayerOnly = msg.LinkLayerOnly
	mh.prevAR = mh.arAddr

	fbu := &fho.FBU{PCoA: mh.lcoa, NCoA: mh.ncoa}
	if mh.auth != nil {
		mh.auth.SignFBU(fbu)
	}
	mh.sendControl(mh.arAddr, fbu)
	mh.armFBURetry(mh.arAddr, fbu)
	if mh.cfg.Scheme == SchemeSafetyNet && !msg.LinkLayerOnly && !mh.mapAddr.IsUnspecified() {
		// Ask the anchor to bicast toward the prospective NCoA for the
		// handoff's duration. Best-effort, single send: a lost request
		// degrades this handoff to the unprotected fast-handover path (the
		// loss sweep makes that visible); it never causes extra loss.
		mh.station.Send(&inet.Packet{
			Src:     mh.lcoa,
			Dst:     mh.mapAddr,
			Proto:   inet.ProtoControl,
			Size:    mip.BicastRequestSize,
			Created: mh.engine.Now(),
			Payload: &mip.BicastRequest{
				Key:      mh.rcoa,
				NCoA:     mh.ncoa,
				Lifetime: mh.cfg.BufferLifetime,
			},
		})
	}
	target := mh.target.AP
	mh.engine.Schedule(mh.cfg.FBUGuard, func() {
		if mh.state != mhReady {
			return
		}
		mh.state = mhSwitching
		mh.current.Detached = mh.engine.Now()
		// The old link is gone: the pre-switch FBU retries end here (the
		// PAR's BI start time is the backstop for a lost FBU).
		mh.fbuPending = false
		mh.fbuT.Stop()
		mh.station.SwitchTo(target)
	})
}

// armFBURetry records an FBU awaiting its FBAck and starts the
// retransmission timer.
func (mh *MobileHost) armFBURetry(dst inet.Addr, fbu *fho.FBU) {
	mh.fbuPending = true
	mh.fbuTries = 1
	mh.lastFBU = fbu
	mh.fbuDst = dst
	mh.fbuT.Reset(mh.cfg.RetransmitInterval)
}

// retryFBU retransmits an FBU still awaiting its FBAck with exponential
// backoff, leaning on the PAR's idempotent duplicate handling. Exhaustion
// is silent: a lost FBU only costs buffering (the BI start time and the
// session lifetime are the backstops), it does not stall the handoff.
func (mh *MobileHost) retryFBU() {
	if !mh.fbuPending || mh.state == mhSwitching {
		return
	}
	if mh.fbuTries >= mh.cfg.MaxSignalTries {
		mh.fbuPending = false
		return
	}
	mh.fbuTries++
	mh.sendControl(mh.fbuDst, mh.lastFBU)
	mh.fbuT.Reset(mh.cfg.RetransmitInterval << (mh.fbuTries - 1))
}

// armReleaseRetry records an attach-time release message (FNA or
// link-layer BF) and starts its blind retransmission timer. Only armed
// with RetransmitUnacked: the exchange has no explicit acknowledgment, so
// retransmitting it on loss-free links would send pure duplicates.
func (mh *MobileHost) armReleaseRetry(msg fho.Message) {
	if !mh.cfg.RetransmitUnacked {
		return
	}
	mh.relPending = true
	mh.relTries = 1
	mh.lastRelease = msg
	mh.relT.Reset(mh.cfg.RetransmitInterval)
}

// retryRelease retransmits the attach announcement until a packet arrives
// at the new care-of address (the implicit acknowledgment) or the try
// budget exhausts. A lost FNA is otherwise a permanent blackhole — the new
// router never learns a route for the NCoA — so exhaustion here counts as
// a signaling failure.
func (mh *MobileHost) retryRelease() {
	if !mh.relPending {
		return
	}
	if mh.relTries >= mh.cfg.MaxSignalTries {
		mh.relPending = false
		mh.signalingFailures++
		return
	}
	mh.relTries++
	mh.sendControl(mh.arAddr, mh.lastRelease)
	mh.relT.Reset(mh.cfg.RetransmitInterval << (mh.relTries - 1))
}

// handleLinkUp completes the handoff on the new link: FNA+BF to the NAR
// (or BF to the same router), binding update to the MAP. On the
// unanticipated path the FBU is also sent now, from the new link.
func (mh *MobileHost) handleLinkUp(ap *wireless.AccessPoint) {
	mh.lastAttach = mh.engine.Now()
	if mh.state != mhSwitching {
		return // initial attachment
	}
	mh.current.Attached = mh.engine.Now()
	if mh.llOnly && mh.unanticipated {
		// Same router, link lost before signalling: nothing was buffered;
		// just carry on.
		mh.finishHandoff()
		return
	}
	if mh.llOnly {
		bf := &fho.BF{PCoA: mh.lcoa}
		mh.sendControl(mh.arAddr, bf)
		mh.armReleaseRetry(bf)
		mh.finishHandoff()
		return
	}

	pcoa := mh.lcoa
	mh.station.AddAddr(mh.ncoa)
	mh.lcoa = mh.ncoa
	mh.arAddr = mh.narAddr
	mh.arNet = mh.ncoa.Net
	if mh.cfg.Mobility == MobilityPlainMIP {
		// Plain Mobile IP: announce the new address on the link (standard
		// neighbour discovery; the FNA without a session doubles as it),
		// then register with the anchor. Nothing was buffered anywhere.
		fna := &fho.FNA{NCoA: mh.ncoa, PCoA: mh.ncoa}
		mh.sendControl(mh.arAddr, fna)
		mh.armReleaseRetry(fna)
		mh.registerWithMAP()
		mh.engine.Schedule(mh.cfg.PCoAHoldTime, func() { mh.station.RemoveAddr(pcoa) })
		mh.finishHandoff()
		return
	}
	if mh.unanticipated {
		// No-anticipation: FBU reaches the PAR through the new link. Its
		// FBAck cannot reach the departed address, so retransmission (with
		// RetransmitUnacked) is blind and bounded.
		fbu := &fho.FBU{PCoA: pcoa, NCoA: mh.ncoa}
		if mh.auth != nil {
			mh.auth.SignFBU(fbu)
		}
		mh.sendControl(mh.prevAR, fbu)
		if mh.cfg.RetransmitUnacked {
			mh.armFBURetry(mh.prevAR, fbu)
		}
	}
	wantRelease := mh.cfg.BufferRequest > 0 && mh.cfg.Scheme != SchemeFHNoBuffer
	fna := &fho.FNA{NCoA: mh.ncoa, PCoA: pcoa, BufferForward: wantRelease}
	if mh.cfg.Scheme == SchemeSafetyNet {
		// Piggyback the selective-delivery report so the NAR forwards only
		// the gap from its hold window. The FNA rides the existing
		// RetransmitUnacked release machinery; if every copy is lost the
		// NAR's session lifetime discards the held duplicates.
		fna.Report = mh.buildReport()
	}
	if mh.auth != nil {
		mh.auth.SignFNA(fna)
	}
	mh.sendControl(mh.arAddr, fna)
	mh.armReleaseRetry(fna)
	mh.registerWithMAP()
	// Keep accepting the PCoA while buffered packets drain.
	mh.engine.Schedule(mh.cfg.PCoAHoldTime, func() { mh.station.RemoveAddr(pcoa) })
	mh.finishHandoff()
}

func (mh *MobileHost) finishHandoff() {
	mh.state = mhIdle
	mh.unanticipated = false
	mh.current.Completed = mh.engine.Now()
	mh.handoffs = append(mh.handoffs, mh.current)
	if mh.OnHandoffDone != nil {
		mh.OnHandoffDone(mh.current)
	}
}

// DefaultBURetryInterval spaces binding-update retransmissions.
const DefaultBURetryInterval = 1 * sim.Second

// maxBUTries bounds binding-update retransmissions per handoff.
const maxBUTries = 5

// registerWithMAP sends the Mobile IP binding update for the new LCoA and
// arms the retransmission timer; a lost update would otherwise blackhole
// the host until the next handoff. It also (re)arms the periodic refresh
// that keeps the binding alive short of its lifetime.
func (mh *MobileHost) registerWithMAP() {
	if mh.mapAddr.IsUnspecified() {
		return
	}
	mh.buSeq++
	mh.buPending = true
	mh.buTries = 1
	mh.buRetry.Reset(DefaultBURetryInterval)
	mh.buRefresh.Reset(mh.cfg.RegistrationLifetime * 3 / 4)
	mh.sendBindingUpdate()
}

// StartRegistration registers the host's current address with its anchor
// and keeps the binding refreshed. Scenario builders call it once after
// the initial attachment (the anchor's initial binding is installed
// directly, but refreshes must come from the host).
func (mh *MobileHost) StartRegistration() { mh.registerWithMAP() }

// refreshBinding re-registers before the binding lifetime lapses, as
// Mobile IP requires of stationary hosts too.
func (mh *MobileHost) refreshBinding() {
	if mh.state == mhSwitching {
		// Mid-blackout: the next attachment re-registers anyway.
		return
	}
	mh.registerWithMAP()
}

// retryBindingUpdate retransmits an unacknowledged binding update.
func (mh *MobileHost) retryBindingUpdate() {
	if !mh.buPending || mh.buTries >= maxBUTries {
		return
	}
	mh.buTries++
	mh.buRetry.Reset(DefaultBURetryInterval)
	mh.sendBindingUpdate()
}

func (mh *MobileHost) sendBindingUpdate() {
	mh.station.Send(&inet.Packet{
		Src:     mh.lcoa,
		Dst:     mh.mapAddr,
		Proto:   inet.ProtoControl,
		Size:    mip.BindingUpdateSize,
		Created: mh.engine.Now(),
		Payload: &mip.BindingUpdate{
			Key:      mh.rcoa,
			CoA:      mh.lcoa,
			Lifetime: mh.cfg.RegistrationLifetime,
			Seq:      mh.buSeq,
		},
	})
}

// sendControl transmits a fast-handover control message uplink.
func (mh *MobileHost) sendControl(dst inet.Addr, msg fho.Message) {
	if mh.OnControl != nil {
		mh.OnControl(msg.Kind())
	}
	mh.station.Send(&inet.Packet{
		Src:     mh.lcoa,
		Dst:     dst,
		Proto:   inet.ProtoControl,
		Size:    fho.WireSize(msg),
		Created: mh.engine.Now(),
		Payload: msg,
	})
}

// SendData transmits an application packet uplink (used by traffic sources
// running on the host).
func (mh *MobileHost) SendData(pkt *inet.Packet) { mh.station.Send(pkt) }

// Shutdown deregisters the host from its anchor (a zero-lifetime binding
// update), stops all timers, and detaches from the radio. The host can be
// re-attached later with Attach.
func (mh *MobileHost) Shutdown() {
	mh.cancelRetries()
	mh.buRetry.Stop()
	mh.buRefresh.Stop()
	mh.buPending = false
	if !mh.mapAddr.IsUnspecified() && mh.station.CanReceive() {
		mh.buSeq++
		mh.station.Send(&inet.Packet{
			Src:     mh.lcoa,
			Dst:     mh.mapAddr,
			Proto:   inet.ProtoControl,
			Size:    mip.BindingUpdateSize,
			Created: mh.engine.Now(),
			Payload: &mip.BindingUpdate{Key: mh.rcoa, Seq: mh.buSeq}, // zero lifetime
		})
	}
	mh.state = mhIdle
	mh.station.Detach()
}
