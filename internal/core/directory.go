package core

import (
	"repro/internal/inet"
)

// ARInfo describes an access router for the purposes of handover target
// resolution.
type ARInfo struct {
	// Addr is the router's own address, the destination of HI/HAck/BF.
	Addr inet.Addr
	// Net is the network prefix the router serves; new care-of addresses
	// are formed on it.
	Net inet.NetID
}

// Directory maps access-point link-layer identifiers to the access router
// serving them. The PAR consults it to resolve the NAR for an RtSolPr's
// target AP — standing in for the neighbour discovery infrastructure a real
// deployment would use.
type Directory struct {
	byAP map[string]ARInfo
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{byAP: make(map[string]ARInfo)}
}

// Register records that the named access point is served by the given
// router.
func (d *Directory) Register(apName string, info ARInfo) { d.byAP[apName] = info }

// Lookup resolves the access router serving an access point. The empty
// name never resolves.
func (d *Directory) Lookup(apName string) (ARInfo, bool) {
	if apName == "" {
		return ARInfo{}, false
	}
	info, ok := d.byAP[apName]
	return info, ok
}
