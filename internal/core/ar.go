package core

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/fho"
	"repro/internal/inet"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// ARConfig configures an access router's handover engine.
type ARConfig struct {
	// Scheme selects the buffering behaviour. Both access routers of a
	// deployment must agree on it.
	Scheme Scheme
	// PoolSize is the router's total handover buffer space in packets.
	PoolSize int
	// Alpha is the α threshold for best-effort admission at the PAR.
	Alpha int
	// GraceDelay is how long a released NAR session lingers (still
	// forwarding stragglers from the PAR drain) before its reservation is
	// returned. Zero selects DefaultGraceDelay.
	GraceDelay sim.Time
	// DrainInterval optionally paces buffer drains (time between released
	// packets). Zero drains at line rate.
	DrainInterval sim.Time
	// PartialGrants enables the precise-allocation extension (the thesis'
	// first future-work item): a router grants whatever buffer space
	// remains instead of refusing requests it cannot cover in full.
	PartialGrants bool
	// AuthKey, when non-empty, requires HMAC authentication on handover
	// messages (the thesis' third future-work item): arriving HIs and
	// FNAs must carry a valid tag under the same key, and outgoing HIs
	// are signed. Unauthenticated handovers are refused.
	AuthKey []byte
	// RetransmitInterval is the initial retransmission timeout for
	// signaling the router originates and expects an answer to (the HI
	// awaiting its HAck). It doubles on every retry. Zero selects
	// DefaultRetransmitInterval.
	RetransmitInterval sim.Time
	// MaxSignalTries bounds the total transmissions per signaling exchange
	// (the first send plus retries). Zero selects DefaultMaxSignalTries.
	MaxSignalTries int
	// RetransmitUnacked additionally retransmits the protocol's
	// unacknowledged release message (the NAR→PAR BF relay) on the same
	// backoff schedule, relying on the PAR's idempotent duplicate
	// handling. Off by default: duplicates of unacknowledged messages are
	// sent even on loss-free links, so only loss-injected deployments
	// should pay for them.
	RetransmitUnacked bool
	// BicastWindow sizes the NAR-side hold window for SafetyNet bicast
	// copies, in packets. The window deliberately lives outside the
	// handover pool (the scheme's whole point is claiming no pool space);
	// overflow degrades to forwarding the evicted oldest copy onward
	// immediately instead of holding it. Zero selects
	// DefaultBicastWindow. Ignored by the buffering schemes.
	BicastWindow int
}

// Validate reports configuration errors that would silently disable parts
// of the scheme: an α threshold at or above the whole pool means no grant
// can ever admit a best-effort packet (buffer.NewChecked makes the same
// check per buffer).
func (cfg ARConfig) Validate() error {
	if cfg.PoolSize < 0 {
		return fmt.Errorf("core: negative pool size %d", cfg.PoolSize)
	}
	if cfg.Alpha < 0 {
		return fmt.Errorf("core: negative alpha %d", cfg.Alpha)
	}
	if cfg.PoolSize > 0 && cfg.Alpha >= cfg.PoolSize {
		return fmt.Errorf("core: alpha %d >= pool size %d would refuse every best-effort packet", cfg.Alpha, cfg.PoolSize)
	}
	return nil
}

// DefaultGraceDelay is the default NAR session linger after release.
const DefaultGraceDelay = 1 * sim.Second

// DefaultRetransmitInterval is the initial signaling retransmission
// timeout. It must exceed the worst-case signaling round trip of the
// deployment (the thesis' Figure 4.10 runs a 50 ms inter-router link, so
// the RtSolPr→PrRtAdv exchange can take >100 ms).
const DefaultRetransmitInterval = 150 * sim.Millisecond

// DefaultMaxSignalTries is the default transmission bound per signaling
// exchange: the first send plus two retries, backed off 1×, 2×, 4×.
const DefaultMaxSignalTries = 3

// DefaultBicastWindow is the default SafetyNet NAR hold window: deep
// enough for a full blackout's worth of bicast copies (primary and
// duplicate) at the thesis' traffic rates without touching the pool.
const DefaultBicastWindow = 64

// DefaultSessionLifetime bounds sessions whose host requested no buffering
// (no BI, hence no explicit lifetime): without it, a plain fast-handover
// session whose BF never comes would leak forever.
const DefaultSessionLifetime = 10 * sim.Second

// Drop locations reported through OnDrop.
const (
	DropAtPAR      = "par-buffer"
	DropAtNAR      = "nar-buffer"
	DropPolicy     = "par-policy"
	DropOnLifetime = "lifetime"
)

type role int

const (
	rolePAR role = iota + 1
	roleNAR
	roleLinkLayer
)

func (r role) String() string {
	switch r {
	case rolePAR:
		return "par"
	case roleNAR:
		return "nar"
	case roleLinkLayer:
		return "link-layer"
	default:
		return "role(?)"
	}
}

// session is one in-flight handoff at this access router, keyed by the
// mobile host's previous care-of address.
type session struct {
	role role
	pcoa inet.Addr
	ncoa inet.Addr
	// targetAP is the access point the host is moving to, echoed in the
	// PrRtAdv so unsolicited (network-initiated) handovers name their
	// target.
	targetAP string
	// peer is the other access router (zero for link-layer-only handoffs).
	peer inet.Addr
	// avail is the negotiated Table 3.2 availability.
	avail buffer.Availability
	// granted is the local pool reservation in packets.
	granted int
	// buf is the local handover buffer (nil when no space was granted).
	buf *buffer.Buffer

	redirecting bool // PAR/link-layer: intercepting the host's packets
	narFull     bool // PAR: NAR reported buffer full (Case 1.b)
	narGrant    int  // PAR: NAR's granted buffer size, from the BA option
	sentToNAR   int  // PAR: bufferable packets forwarded to the NAR so far
	fullSent    bool // NAR: BufferFull already sent
	released    bool // NAR: FNA received and buffer drained

	// holdSeen dedups the SafetyNet hold window: during the blackout each
	// packet reaches the NAR twice (PAR-redirected primary plus the
	// anchor's bicast duplicate), and parking both would waste half the
	// window. The second copy is discarded on arrival instead.
	holdSeen []flowDedup

	startTimer *sim.Timer
	lifeTimer  *sim.Timer
	// graceTimer defers the NAR reservation return after release.
	graceTimer *sim.Timer

	// PAR: HI retransmission until the HAck arrives or tries exhaust.
	hiTimer *sim.Timer
	hiTries int
	lastHI  *fho.HI
	// NAR: bounded blind retransmission of the unacknowledged BF relay
	// (only with RetransmitUnacked).
	bfTimer *sim.Timer
	bfTries int
}

// AccessRouter is the handover protocol engine wrapped around a forwarding
// router. One instance plays the PAR role for hosts leaving and the NAR
// role for hosts arriving, concurrently.
type AccessRouter struct {
	engine *sim.Engine
	router *netsim.Router
	net    inet.NetID
	cfg    ARConfig
	pool   *buffer.Pool
	dir    *Directory

	apIfaces  map[string]*netsim.Iface
	apByIface map[*netsim.Iface]string
	defaultAP *netsim.Iface

	sessions map[inet.Addr]*session
	// ncoaIndex finds the NAR session owning a new care-of address, so the
	// MAP's bicast duplicates (tunnelled straight to the NCoA) can be
	// parked in the session's hold window before the host attaches.
	// Populated only under SchemeSafetyNet.
	ncoaIndex map[inet.Addr]*session
	auth      *fho.Authenticator

	// Free lists keep the steady-state handoff path allocation-free:
	// session objects (with their pre-bound timers), their buffer slabs,
	// and paced-drain jobs are all recycled.
	sessFree  []*session
	bufFree   buffer.FreeList
	drainFree []*drainJob

	// Pool-pressure accounting for the metro-scale capacity experiment.
	poolGrants   uint64
	poolRefusals uint64
	grantLive    int
	grantPeak    int

	// fallbackRoutes bounds the stale PCoA host routes installed by the
	// no-session FNA fallback, which have no owning session to tear them
	// down.
	fallbackRoutes map[inet.Addr]*sim.Timer

	authRejects       uint64
	signalingFailures uint64

	// SafetyNet accounting: copies parked in hold windows, redundant
	// copies discarded (report-acknowledged or expired), and copies
	// forwarded onward early because the hold window overflowed. Every
	// parked packet ends up discarded, overflow-forwarded, or drained.
	bicastHeld      uint64
	bicastDiscarded uint64
	bicastForwarded uint64

	// OnDrop observes every packet the engine drops, with the drop site
	// (DropAtPAR, DropAtNAR, DropPolicy, DropOnLifetime).
	OnDrop func(pkt *inet.Packet, where string)
	// OnBicastDiscard observes every redundant bicast copy the router
	// disposes of — a dedup event, not a loss; the observer owns the
	// packet (pool recycling).
	OnBicastDiscard func(pkt *inet.Packet)
	// OnControl observes every control message the engine sends, for
	// signaling-overhead accounting.
	OnControl func(kind fho.Kind)

	controlSent map[fho.Kind]uint64
}

// reserve claims buffer space per the configured grant policy, returning
// the granted size (zero when refused). Outcomes feed the pool-pressure
// counters: a refusal is a handoff the router could not buffer for.
func (ar *AccessRouter) reserve(n int) int {
	if n <= 0 {
		return 0
	}
	granted := 0
	if ar.cfg.PartialGrants {
		granted = ar.pool.ReservePartial(n)
	} else if ar.pool.Reserve(n) {
		granted = n
	}
	if granted <= 0 {
		ar.poolRefusals++
		return 0
	}
	ar.poolGrants++
	ar.grantLive++
	if ar.grantLive > ar.grantPeak {
		ar.grantPeak = ar.grantLive
	}
	return granted
}

// NewAccessRouter wraps router with the handover engine. It installs the
// router's Intercept and LocalDeliver hooks.
func NewAccessRouter(engine *sim.Engine, router *netsim.Router, net inet.NetID,
	dir *Directory, cfg ARConfig) *AccessRouter {
	if !cfg.Scheme.Valid() {
		panic("core: NewAccessRouter with invalid scheme")
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.GraceDelay == 0 {
		cfg.GraceDelay = DefaultGraceDelay
	}
	if cfg.RetransmitInterval == 0 {
		cfg.RetransmitInterval = DefaultRetransmitInterval
	}
	if cfg.MaxSignalTries == 0 {
		cfg.MaxSignalTries = DefaultMaxSignalTries
	}
	if cfg.BicastWindow == 0 {
		cfg.BicastWindow = DefaultBicastWindow
	}
	ar := &AccessRouter{
		engine:         engine,
		router:         router,
		net:            net,
		cfg:            cfg,
		pool:           buffer.NewPool(cfg.PoolSize),
		dir:            dir,
		apIfaces:       make(map[string]*netsim.Iface),
		apByIface:      make(map[*netsim.Iface]string),
		sessions:       make(map[inet.Addr]*session),
		ncoaIndex:      make(map[inet.Addr]*session),
		fallbackRoutes: make(map[inet.Addr]*sim.Timer),
		controlSent:    make(map[fho.Kind]uint64),
	}
	ar.auth = fho.NewAuthenticator(cfg.AuthKey)
	router.Intercept = ar.intercept
	router.LocalDeliver = ar.localDeliver
	return ar
}

// Router returns the underlying forwarding element.
func (ar *AccessRouter) Router() *netsim.Router { return ar.router }

// Addr returns the router's address.
func (ar *AccessRouter) Addr() inet.Addr { return ar.router.Addr() }

// Net returns the served network prefix.
func (ar *AccessRouter) Net() inet.NetID { return ar.net }

// Pool returns the handover buffer pool.
func (ar *AccessRouter) Pool() *buffer.Pool { return ar.pool }

// ControlSent returns how many control messages of the given kind this
// router originated.
func (ar *AccessRouter) ControlSent(kind fho.Kind) uint64 { return ar.controlSent[kind] }

// Sessions returns the number of live handoff sessions.
func (ar *AccessRouter) Sessions() int { return len(ar.sessions) }

// PoolGrants counts buffer reservations the router granted.
func (ar *AccessRouter) PoolGrants() uint64 { return ar.poolGrants }

// PoolRefusals counts buffer requests the router turned away with an
// exhausted pool — each one is a handoff that proceeds unbuffered.
func (ar *AccessRouter) PoolRefusals() uint64 { return ar.poolRefusals }

// PeakGrantedSessions returns the maximum number of sessions that held a
// buffer grant simultaneously: the router's observed handoff concurrency.
func (ar *AccessRouter) PeakGrantedSessions() int { return ar.grantPeak }

// AuthRejects counts handover messages refused for failing
// authentication.
func (ar *AccessRouter) AuthRejects() uint64 { return ar.authRejects }

// BicastHeld counts bicast copies parked in SafetyNet hold windows.
func (ar *AccessRouter) BicastHeld() uint64 { return ar.bicastHeld }

// BicastDiscarded counts redundant bicast copies this router disposed of
// (report-acknowledged, or expired with their session).
func (ar *AccessRouter) BicastDiscarded() uint64 { return ar.bicastDiscarded }

// BicastForwarded counts held copies pushed onward early because the hold
// window overflowed — the degraded-to-forwarding path, never a silent drop.
func (ar *AccessRouter) BicastForwarded() uint64 { return ar.bicastForwarded }

// SignalingFailures counts acknowledged signaling exchanges this router
// gave up on after exhausting their retransmission budget (an HI whose
// HAck never came). Each one corresponds to an anticipated handover the
// router abandoned, telling the host nothing was prepared.
func (ar *AccessRouter) SignalingFailures() uint64 { return ar.signalingFailures }

// SetAuthKey replaces the router's authentication key; nil disables
// authentication.
func (ar *AccessRouter) SetAuthKey(key []byte) { ar.auth = fho.NewAuthenticator(key) }

// AddAP registers one of the router's own access points and the interface
// leading to it, and publishes it in the directory. The first AP becomes
// the default target for arriving handoffs.
func (ar *AccessRouter) AddAP(name string, iface *netsim.Iface) {
	ar.apIfaces[name] = iface
	ar.apByIface[iface] = name
	if ar.defaultAP == nil {
		ar.defaultAP = iface
	}
	ar.dir.Register(name, ARInfo{Addr: ar.router.Addr(), Net: ar.net})
}

// AttachResident installs the host route for a mobile host living on this
// router's network (initial attachment, or after a completed handoff).
func (ar *AccessRouter) AttachResident(addr inet.Addr, via *netsim.Iface) {
	ar.router.AddHostRoute(addr, via)
}

// DetachResident removes a resident host route.
func (ar *AccessRouter) DetachResident(addr inet.Addr) {
	ar.router.RemoveHostRoute(addr)
}

// --- forwarding-plane hooks ---

// intercept redirects data packets belonging to an active PAR-side session
// and reverse-tunnels uplink packets still using the previous care-of
// address at the NAR.
func (ar *AccessRouter) intercept(in *netsim.Iface, pkt *inet.Packet) bool {
	if pkt.Proto == inet.ProtoControl {
		return false // control traffic is never redirected or buffered
	}
	if s, ok := ar.sessions[pkt.Dst]; ok && s.redirecting &&
		(s.role == rolePAR || s.role == roleLinkLayer) {
		ar.redirect(s, pkt)
		return true
	}
	// SafetyNet: the MAP tunnels bicast duplicates straight to the NCoA,
	// which has no host route until the FNA arrives. Park them in the
	// session's hold window; once released, fall through to the installed
	// NCoA route (the host's dedup window absorbs any redundancy).
	if ar.cfg.Scheme == SchemeSafetyNet && pkt.Proto == inet.ProtoTunnel {
		if s, ok := ar.ncoaIndex[pkt.Dst]; ok && s.role == roleNAR && !s.released {
			ar.holdBicast(s, pkt)
			return true
		}
	}
	// Reverse tunnel: uplink from the mobile host still sourced from the
	// PCoA while attached at the NAR is tunnelled back to the PAR.
	if s, ok := ar.sessions[pkt.Src]; ok && s.role == roleNAR && !s.peer.IsUnspecified() {
		if _, fromAP := ar.apByIface[in]; fromAP {
			ar.router.Forward(pkt.Encapsulate(ar.router.Addr(), s.peer))
			return true
		}
	}
	return false
}

// localDeliver dispatches control messages and session tunnels addressed
// to the router itself.
func (ar *AccessRouter) localDeliver(in *netsim.Iface, pkt *inet.Packet) bool {
	switch msg := pkt.Payload.(type) {
	case *fho.RtSolPr:
		ar.handleRtSolPr(in, pkt, msg)
	case *fho.HI:
		ar.handleHI(in, pkt, msg)
	case *fho.HAck:
		ar.handleHAck(msg)
	case *fho.FBU:
		ar.handleFBU(msg)
	case *fho.FBAck:
		// Informational at the NAR; nothing to do.
	case *fho.FNA:
		ar.handleFNA(in, msg)
	case *fho.BF:
		ar.handleBF(in, msg)
	case *fho.BufferFull:
		ar.handleBufferFull(msg)
	default:
		if pkt.Proto == inet.ProtoTunnel {
			return ar.handleTunnel(pkt)
		}
		return false
	}
	return true
}

// handleTunnel terminates a tunnel at this router: redirected session data
// goes through the NAR buffering logic, anything else is forwarded.
func (ar *AccessRouter) handleTunnel(pkt *inet.Packet) bool {
	inner := pkt.Decapsulate()
	if inner == nil {
		return true
	}
	if s, ok := ar.sessions[inner.Dst]; ok && s.role == roleNAR {
		ar.narData(s, inner)
		return true
	}
	ar.router.Forward(inner)
	return true
}

// --- handover initiation (§3.2.2.1) ---

func (ar *AccessRouter) handleRtSolPr(in *netsim.Iface, pkt *inet.Packet, msg *fho.RtSolPr) {
	if ar.auth != nil && !ar.auth.VerifyRtSolPr(msg) {
		ar.authRejects++
		return // unauthenticated solicitations are not answered
	}
	if msg.BI != nil && msg.BI.Cancelled() {
		if s, ok := ar.sessions[msg.MH]; ok {
			// The host stays on this router: release anything already
			// buffered back through the (still installed) resident route.
			s.redirecting = false
			if s.buf != nil {
				ar.drain(s.buf, inet.Addr{})
			}
			ar.closeSession(s, false)
		}
		return
	}
	if s, ok := ar.sessions[msg.MH]; ok {
		// Duplicate solicitation (retry after a lost answer): re-drive the
		// handshake idempotently instead of stalling the host.
		switch s.role {
		case roleLinkLayer:
			ar.sendControl(msg.MH, &fho.PrRtAdv{
				NAR:           ar.router.Addr(),
				NARNet:        ar.net,
				NCoA:          msg.MH,
				PARGranted:    s.avail.PAR,
				LinkLayerOnly: true,
			})
		case rolePAR:
			hi := &fho.HI{
				PCoA:        s.pcoa,
				NCoA:        s.ncoa,
				MHLinkLayer: msg.TargetAP,
				PARGranted:  s.avail.PAR,
			}
			if msg.BI != nil && ar.cfg.Scheme.WantsNARBuffer() {
				hi.BR = &fho.BufferRequest{Size: msg.BI.Size, Lifetime: msg.BI.Lifetime}
			}
			if ar.auth != nil {
				ar.auth.SignHI(hi)
			}
			ar.sendHI(s, hi)
		}
		return
	}
	if _, own := ar.apIfaces[msg.TargetAP]; own && msg.TargetAP != "" {
		ar.initLinkLayerHandoff(pkt, msg)
		return
	}
	ar.initNetworkHandoff(pkt, msg)
}

// initLinkLayerHandoff implements §3.2.2.4: the target AP belongs to this
// router, so only local buffering is set up and PrRtAdv is returned
// directly.
func (ar *AccessRouter) initLinkLayerHandoff(pkt *inet.Packet, msg *fho.RtSolPr) {
	s := ar.newSession()
	s.role, s.pcoa, s.ncoa = roleLinkLayer, msg.MH, msg.MH
	if msg.BI != nil {
		if granted := ar.reserve(int(msg.BI.Size)); granted > 0 {
			s.granted = granted
			s.buf = ar.bufFree.Get(granted, ar.cfg.Alpha)
			s.avail = buffer.Availability{PAR: true}
		}
	}
	ar.sessions[msg.MH] = s
	ar.armTimers(s, msg.BI)
	ar.sendControl(msg.MH, &fho.PrRtAdv{
		NAR:           ar.router.Addr(),
		NARNet:        ar.net,
		NCoA:          msg.MH,
		PARGranted:    s.avail.PAR,
		LinkLayerOnly: true,
	})
}

// InitiateHandover starts a network-initiated handover (the FMIPv6 path
// where the PAR "decides to send a PrRtAdv message without receiving the
// mobile host's RtSolPr message first"). The router reserves bufferPackets
// locally and at the target's router, then advertises the move to the
// host, which proceeds exactly as if it had solicited. The thesis' own
// evaluation excludes this mode ("it is not practical to monitor all
// mobile hosts"), so nothing in the reproduced figures uses it. It reports
// whether the handover was initiated (false: unknown AP, or one already in
// flight for this host).
func (ar *AccessRouter) InitiateHandover(pcoa inet.Addr, targetAP string, bufferPackets int) bool {
	if _, ok := ar.sessions[pcoa]; ok {
		return false
	}
	info, ok := ar.dir.Lookup(targetAP)
	if !ok || info.Addr == ar.router.Addr() {
		return false
	}
	var bi *fho.BufferInit
	if bufferPackets > 0 {
		bi = &fho.BufferInit{
			Size:     uint16(bufferPackets),
			Start:    ar.engine.Now() + DefaultNetworkInitStart,
			Lifetime: DefaultSessionLifetime,
		}
	}
	ar.initNetworkHandoff(nil, &fho.RtSolPr{MH: pcoa, TargetAP: targetAP, BI: bi})
	return true
}

// DefaultNetworkInitStart is the auto-redirect start offset for
// network-initiated handovers.
const DefaultNetworkInitStart = 1 * sim.Second

// initNetworkHandoff resolves the NAR, reserves local space, and sends
// HI+BR.
func (ar *AccessRouter) initNetworkHandoff(pkt *inet.Packet, msg *fho.RtSolPr) {
	info, ok := ar.dir.Lookup(msg.TargetAP)
	if !ok {
		// Unknown target: refuse by advertising nothing.
		ar.sendControl(msg.MH, &fho.PrRtAdv{})
		return
	}
	s := ar.newSession()
	s.role = rolePAR
	s.pcoa = msg.MH
	s.ncoa = inet.Addr{Net: info.Net, Host: msg.MH.Host}
	s.peer = info.Addr
	s.targetAP = msg.TargetAP
	if msg.BI != nil && ar.cfg.Scheme.WantsPARBuffer() {
		if granted := ar.reserve(int(msg.BI.Size)); granted > 0 {
			s.granted = granted
			s.buf = ar.bufFree.Get(granted, ar.cfg.Alpha)
			s.avail.PAR = true
		}
	}
	ar.sessions[msg.MH] = s
	ar.armTimers(s, msg.BI)

	hi := &fho.HI{
		PCoA:        msg.MH,
		NCoA:        s.ncoa,
		MHLinkLayer: msg.TargetAP,
		PARGranted:  s.avail.PAR,
	}
	if msg.BI != nil && ar.cfg.Scheme.WantsNARBuffer() {
		hi.BR = &fho.BufferRequest{Size: msg.BI.Size, Lifetime: msg.BI.Lifetime}
	}
	if ar.auth != nil {
		ar.auth.SignHI(hi)
	}
	ar.sendHI(s, hi)
}

// sendHI transmits an HI toward the session's peer and (re)arms its
// retransmission timer: the HI expects an HAck, and a lost exchange would
// otherwise stall the handoff until the session lifetime lapses.
func (ar *AccessRouter) sendHI(s *session, hi *fho.HI) {
	s.lastHI = hi
	s.hiTries = 1
	if s.hiTimer == nil {
		s.hiTimer = sim.NewTimer(ar.engine, func() { ar.retryHI(s) })
	}
	s.hiTimer.Reset(ar.cfg.RetransmitInterval)
	ar.sendControl(s.peer, hi)
}

// retryHI retransmits an unacknowledged HI with exponential backoff. When
// the try budget is exhausted the router abandons the anticipated handover:
// the reservation is released and the host is told nothing is prepared, so
// it degrades to the reactive (no-anticipation) path instead of waiting on
// a session that will never complete.
func (ar *AccessRouter) retryHI(s *session) {
	if cur, ok := ar.sessions[s.pcoa]; !ok || cur != s || s.lastHI == nil {
		return
	}
	if s.hiTries >= ar.cfg.MaxSignalTries {
		ar.signalingFailures++
		pcoa := s.pcoa // closeSession recycles s
		ar.closeSession(s, false)
		ar.sendControl(pcoa, &fho.PrRtAdv{})
		return
	}
	s.hiTries++
	ar.sendControl(s.peer, s.lastHI)
	s.hiTimer.Reset(ar.cfg.RetransmitInterval << (s.hiTries - 1))
}

// armTimers schedules the BI start-time auto-redirect and the buffering
// lifetime. Every session gets a lifetime timer — a BI without a positive
// lifetime (and a session without a BI) falls back to
// DefaultSessionLifetime — so sessions cannot leak.
func (ar *AccessRouter) armTimers(s *session, bi *fho.BufferInit) {
	life := DefaultSessionLifetime
	if bi != nil {
		if bi.Start > 0 {
			if s.startTimer == nil {
				s.startTimer = sim.NewTimer(ar.engine, func() {
					if !s.redirecting {
						s.redirecting = true
					}
				})
			}
			s.startTimer.ResetAt(bi.Start)
		}
		if bi.Lifetime > 0 {
			life = bi.Lifetime
		}
	}
	if s.lifeTimer == nil {
		s.lifeTimer = sim.NewTimer(ar.engine, func() { ar.expire(s) })
	}
	s.lifeTimer.Reset(life)
}

// handleHI is the NAR side of initiation: validate the NCoA, install the
// PCoA host route, reserve buffer space, acknowledge.
func (ar *AccessRouter) handleHI(in *netsim.Iface, pkt *inet.Packet, msg *fho.HI) {
	if ar.auth != nil && !ar.auth.VerifyHI(msg) {
		ar.authRejects++
		ar.sendControl(pkt.Src, &fho.HAck{Accepted: false, PCoA: msg.PCoA})
		return
	}
	if s, ok := ar.sessions[msg.PCoA]; ok && s.role == roleNAR {
		// Duplicate HI (retry after a lost HAck): re-acknowledge with the
		// existing session's grant.
		hack := &fho.HAck{Accepted: true, PCoA: msg.PCoA}
		if msg.BR != nil {
			hack.BA = &fho.BufferAck{Granted: s.avail.NAR, Size: uint16(s.granted)}
		}
		ar.sendControl(s.peer, hack)
		return
	}
	s := ar.newSession()
	s.role = roleNAR
	s.pcoa = msg.PCoA
	s.ncoa = msg.NCoA
	s.peer = pkt.Src
	s.avail = buffer.Availability{PAR: msg.PARGranted}
	hack := &fho.HAck{Accepted: true, PCoA: msg.PCoA}
	if msg.BR != nil {
		granted := ar.reserve(int(msg.BR.Size))
		if granted > 0 {
			s.granted = granted
			s.buf = ar.bufFree.Get(granted, ar.cfg.Alpha)
			s.avail.NAR = true
		}
		hack.BA = &fho.BufferAck{Granted: granted > 0, Size: uint16(granted)}
	}
	life := DefaultSessionLifetime
	if msg.BR != nil && msg.BR.Lifetime > 0 {
		life = msg.BR.Lifetime
	}
	if s.lifeTimer == nil {
		s.lifeTimer = sim.NewTimer(ar.engine, func() { ar.expire(s) })
	}
	s.lifeTimer.Reset(life)
	ar.sessions[msg.PCoA] = s
	if ar.cfg.Scheme == SchemeSafetyNet {
		ar.ncoaIndex[s.ncoa] = s
	}
	// Host route so redirected (and forward-only) packets for the PCoA
	// reach the radio.
	if ar.defaultAP != nil {
		ar.router.AddHostRoute(msg.PCoA, ar.defaultAP)
	}
	ar.sendControl(s.peer, hack)
}

// handleHAck completes the negotiation at the PAR and advertises the
// outcome to the mobile host.
func (ar *AccessRouter) handleHAck(msg *fho.HAck) {
	s, ok := ar.sessions[msg.PCoA]
	if !ok || s.role != rolePAR {
		return
	}
	// The exchange is acknowledged: stop retransmitting the HI.
	if s.hiTimer != nil {
		s.hiTimer.Stop()
	}
	s.lastHI = nil
	if !msg.Accepted {
		// The NAR refused the handover (e.g. failed authentication):
		// release the reservation and tell the host nothing is prepared.
		ar.closeSession(s, false)
		ar.sendControl(msg.PCoA, &fho.PrRtAdv{})
		return
	}
	s.avail.NAR = msg.Accepted && msg.BA != nil && msg.BA.Granted
	if s.avail.NAR {
		s.narGrant = int(msg.BA.Size)
	}
	ar.sendControl(s.pcoa, &fho.PrRtAdv{
		NAR:        s.peer,
		NARNet:     s.ncoa.Net,
		NCoA:       s.ncoa,
		NARGranted: s.avail.NAR,
		PARGranted: s.avail.PAR,
		TargetAP:   s.targetAP,
	})
}

// --- packet redirection (§3.2.2.2) ---

// handleFBU starts redirection at the PAR (or the link-layer-only router).
func (ar *AccessRouter) handleFBU(msg *fho.FBU) {
	if ar.auth != nil && !ar.auth.VerifyFBU(msg) {
		ar.authRejects++
		return
	}
	s, ok := ar.sessions[msg.PCoA]
	if !ok || s.role == roleNAR {
		return
	}
	s.redirecting = true
	if s.startTimer != nil {
		s.startTimer.Stop()
	}
	// FBAck to the host on the old link (it may already be gone) and, for
	// network handoffs, to the NAR.
	ar.sendControl(s.pcoa, &fho.FBAck{Accepted: true, PCoA: s.pcoa})
	if !s.peer.IsUnspecified() {
		ar.sendControl(s.peer, &fho.FBAck{Accepted: true, PCoA: s.pcoa})
	}
}

// redirect applies the scheme's buffering operation to one intercepted
// data packet at the PAR.
func (ar *AccessRouter) redirect(s *session, pkt *inet.Packet) {
	if s.role == roleLinkLayer {
		// §3.2.2.4: buffer everything locally during the L2 blackout.
		if s.buf == nil {
			ar.forwardLocal(s, pkt) // no grant: transmit into the blackout
			return
		}
		if r := s.buf.Push(pkt); r != buffer.DropNone {
			ar.drop(pkt, DropAtPAR)
		}
		return
	}

	op := ar.cfg.Scheme.Op(s.avail, pkt.EffectiveClass())
	switch op {
	case buffer.OpForward:
		ar.tunnelToPeer(s, pkt)
	case buffer.OpBufferNAR, buffer.OpBufferNARDropHead:
		s.sentToNAR++
		ar.tunnelToPeer(s, pkt)
	case buffer.OpBufferBoth:
		// Proactive switch: once a NAR buffer's worth has been forwarded
		// the rest is buffered locally, without waiting for BufferFull
		// (which remains the backstop for shared-buffer dynamics).
		if s.narFull || (s.narGrant > 0 && s.sentToNAR >= s.narGrant) {
			if r := s.buf.Push(pkt); r != buffer.DropNone {
				ar.drop(pkt, DropAtPAR)
			}
			return
		}
		s.sentToNAR++
		ar.tunnelToPeer(s, pkt)
	case buffer.OpBufferPAR:
		if r := s.buf.Push(pkt); r != buffer.DropNone {
			ar.drop(pkt, DropAtPAR)
		}
	case buffer.OpBufferPARAlpha:
		if r := s.buf.PushIfAboveAlpha(pkt); r != buffer.DropNone {
			ar.drop(pkt, DropAtPAR)
		}
	case buffer.OpDrop:
		ar.drop(pkt, DropPolicy)
	default:
		ar.tunnelToPeer(s, pkt)
	}
}

// narData applies the NAR-side buffering operation to a redirected packet.
func (ar *AccessRouter) narData(s *session, pkt *inet.Packet) {
	if s.released {
		ar.router.Forward(pkt) // host already attached; deliver directly
		return
	}
	if ar.cfg.Scheme == SchemeSafetyNet {
		// The PAR-redirected primary copies join the bicast duplicates in
		// the hold window: they cover the gap before the bicast request
		// reaches the MAP, and the host's dedup window resolves overlap.
		ar.holdBicast(s, pkt)
		return
	}
	op := ar.cfg.Scheme.Op(s.avail, pkt.EffectiveClass())
	if !op.BuffersAtNAR() || s.buf == nil {
		ar.router.Forward(pkt) // transmitted into the blackout
		return
	}
	switch op {
	case buffer.OpBufferNARDropHead:
		if evicted, reason := s.buf.PushDropHead(pkt); reason == buffer.DropHead {
			ar.drop(evicted, DropAtNAR)
		}
	case buffer.OpBufferBoth:
		if r := s.buf.Push(pkt); r != buffer.DropNone {
			ar.drop(pkt, DropAtNAR)
			if !s.fullSent && s.avail.PAR && !s.peer.IsUnspecified() {
				s.fullSent = true
				ar.sendControl(s.peer, &fho.BufferFull{PCoA: s.pcoa})
			}
		}
	default: // OpBufferNAR
		if r := s.buf.Push(pkt); r != buffer.DropNone {
			ar.drop(pkt, DropAtNAR)
		}
	}
}

// handleBufferFull flips the Case 1.b overflow switch at the PAR.
func (ar *AccessRouter) handleBufferFull(msg *fho.BufferFull) {
	if s, ok := ar.sessions[msg.PCoA]; ok && s.role == rolePAR {
		s.narFull = true
	}
}

// --- buffer release (§3.2.2.3) ---

// handleFNA is the NAR receiving the host's attach announcement: install
// host routes toward the arrival interface, drain, relay BF to the PAR.
func (ar *AccessRouter) handleFNA(in *netsim.Iface, msg *fho.FNA) {
	if ar.auth != nil && !ar.auth.VerifyFNA(msg) {
		ar.authRejects++
		return // unauthenticated host: no routes, no release
	}
	s, ok := ar.sessions[msg.PCoA]
	if !ok || s.role != roleNAR {
		// Host attached without a prepared session (no-anticipation
		// fallback): just install the routes. The PCoA route has no owning
		// session to tear it down, so it is bounded separately.
		if in != nil {
			ar.router.AddHostRoute(msg.NCoA, in)
			ar.router.AddHostRoute(msg.PCoA, in)
			ar.boundFallbackRoute(msg.PCoA, msg.NCoA)
		}
		return
	}
	if in != nil {
		ar.router.AddHostRoute(msg.NCoA, in)
		ar.router.AddHostRoute(msg.PCoA, in)
	}
	s.released = true
	if s.buf != nil {
		if ar.cfg.Scheme == SchemeSafetyNet {
			ar.drainSelective(s, msg.Report)
		} else {
			ar.drain(s.buf, inet.Addr{})
		}
	}
	if msg.BufferForward && !s.peer.IsUnspecified() {
		ar.sendControl(s.peer, &fho.BF{PCoA: msg.PCoA})
		if ar.cfg.RetransmitUnacked {
			s.bfTries = 1
			if s.bfTimer == nil {
				s.bfTimer = sim.NewTimer(ar.engine, func() { ar.retryBF(s) })
			}
			s.bfTimer.Reset(ar.cfg.RetransmitInterval)
		}
	}
	// Linger so the PAR's drained packets still find the session, then
	// return the reservation. The NCoA host route stays: the host now
	// lives here.
	if s.graceTimer == nil {
		s.graceTimer = sim.NewTimer(ar.engine, func() {
			if cur, ok := ar.sessions[s.pcoa]; ok && cur == s {
				ar.closeSession(s, false)
			}
		})
	}
	s.graceTimer.Reset(ar.cfg.GraceDelay)
}

// retryBF blindly retransmits the unacknowledged BF relay toward the PAR,
// leaning on handleBF's idempotency (a BF for an already-released session
// finds no session and is ignored). There is no exhaustion accounting: the
// BF only hastens the PAR's buffer release, and the PAR's session lifetime
// is the backstop if every copy is lost.
func (ar *AccessRouter) retryBF(s *session) {
	if cur, ok := ar.sessions[s.pcoa]; !ok || cur != s || s.bfTries >= ar.cfg.MaxSignalTries {
		return
	}
	s.bfTries++
	ar.sendControl(s.peer, &fho.BF{PCoA: s.pcoa})
	s.bfTimer.Reset(ar.cfg.RetransmitInterval << (s.bfTries - 1))
}

// DefaultFallbackRouteLifetime bounds the PCoA host route installed by the
// no-session FNA fallback. The route only exists to catch in-flight packets
// still addressed to the previous care-of address; once the binding updates
// have propagated nothing legitimate uses it.
const DefaultFallbackRouteLifetime = DefaultSessionLifetime

// boundFallbackRoute schedules removal of a fallback PCoA host route.
// Plain-MIP attaches announce PCoA == NCoA — the route is the resident
// route then and must not be bounded. A live session appearing for the
// PCoA takes ownership of the route, so the timer backs off.
func (ar *AccessRouter) boundFallbackRoute(pcoa, ncoa inet.Addr) {
	if pcoa == ncoa {
		return
	}
	t, ok := ar.fallbackRoutes[pcoa]
	if !ok {
		t = sim.NewTimer(ar.engine, func() {
			delete(ar.fallbackRoutes, pcoa)
			if _, owned := ar.sessions[pcoa]; owned {
				return
			}
			ar.router.RemoveHostRoute(pcoa)
		})
		ar.fallbackRoutes[pcoa] = t
	}
	t.Reset(DefaultFallbackRouteLifetime)
}

// handleBF releases the PAR's buffer: drain toward the NAR (or, for a
// link-layer handoff, toward the arrival interface) and end the session.
func (ar *AccessRouter) handleBF(in *netsim.Iface, msg *fho.BF) {
	s, ok := ar.sessions[msg.PCoA]
	if !ok {
		return
	}
	switch s.role {
	case roleLinkLayer:
		if in != nil {
			ar.router.AddHostRoute(s.pcoa, in)
		}
		s.redirecting = false
		if s.buf != nil {
			ar.drain(s.buf, inet.Addr{})
		}
		ar.closeSession(s, false)
	case rolePAR:
		if s.buf != nil {
			ar.drain(s.buf, s.peer)
		}
		s.redirecting = false
		ar.DetachResident(s.pcoa)
		ar.closeSession(s, false)
	default:
		// A BF at the NAR role is the FNA's job; ignore.
	}
}

// holdBicast parks one bicast-protected packet (the tunnel wrapper,
// whose chain the eventual receiver recycles whole) in the session's
// hold window. The window is allocated lazily from the buffer free list
// and never touches the pool accounting — under SafetyNet the router
// grants nothing, so exhaustion cannot occur. Overflow degrades to
// forwarding: the evicted oldest copy is the only one the NAR holds (the
// arrival dedup above parks each sequence at most once), so it is pushed
// onward toward the host immediately rather than silently discarded —
// if the host is already attached it is delivered; mid-blackout it
// becomes a visible air/route drop, never an unaccounted loss.
func (ar *AccessRouter) holdBicast(s *session, pkt *inet.Packet) {
	inner := pkt.Innermost()
	if inner.Flow != 0 && !observeFlowSeq(&s.holdSeen, inner.Flow, inner.Seq) {
		ar.discardDup(pkt) // twin already parked (or already evicted as stale)
		return
	}
	if s.buf == nil {
		s.buf = ar.bufFree.Get(ar.cfg.BicastWindow, 0)
	}
	ar.bicastHeld++
	// The hold window is FIFO parking, not the thesis' class-aware
	// handover buffer: overflow pops the oldest copy of *any* class.
	// (PushDropHead would evict only real-time packets and silently drop
	// the incoming copy when the window held none.)
	if s.buf.Full() {
		if evicted := s.buf.Pop(); evicted != nil {
			ar.bicastForwarded++
			ar.drainSend(evicted, inet.Addr{})
		}
	}
	s.buf.Push(pkt)
}

// discardDup disposes one redundant bicast copy: counted as dedup, never
// charged to the drop counters — the packet (or its twin) was already
// delivered or is still on its way.
func (ar *AccessRouter) discardDup(pkt *inet.Packet) {
	ar.bicastDiscarded++
	if ar.OnBicastDiscard != nil {
		ar.OnBicastDiscard(pkt)
	}
}

// drainSelective releases the held bicast copies the host has not seen
// and discards the rest per the FNA's selective-delivery report. A lost
// or empty report degrades to forwarding everything — full NAR
// forwarding, never loss; the host's dedup window absorbs the redundant
// deliveries. The release is unpaced: the window holds at most
// BicastWindow packets and the host is already attached.
func (ar *AccessRouter) drainSelective(s *session, report []fho.FlowSeq) {
	for pkt := s.buf.Pop(); pkt != nil; pkt = s.buf.Pop() {
		if reportCovers(report, pkt.Innermost()) {
			ar.discardDup(pkt)
			continue
		}
		ar.drainSend(pkt, inet.Addr{})
	}
}

// reportCovers reports whether the selective-delivery report acknowledges
// the packet: its flow has an entry whose cumulative ack reaches the
// packet's sequence number, compared with the same serial arithmetic the
// dedup window uses so coverage stays correct across a 2^32 sequence
// wrap. Reports carry one entry per application flow, so a linear scan
// beats any indexed structure.
func reportCovers(report []fho.FlowSeq, pkt *inet.Packet) bool {
	for _, e := range report {
		if inet.FlowID(e.Flow) == pkt.Flow {
			return !seqNewer(pkt.Seq, e.Ack)
		}
	}
	return false
}

// drain empties a buffer in FIFO order. An unspecified peer forwards each
// packet through the routing table; otherwise packets are tunnelled to
// peer. DrainInterval, when configured, paces the release through a single
// self-rescheduling drain job (one live event regardless of backlog size)
// instead of one scheduled closure per packet.
func (ar *AccessRouter) drain(buf *buffer.Buffer, peer inet.Addr) {
	if ar.cfg.DrainInterval <= 0 {
		for pkt := buf.Pop(); pkt != nil; pkt = buf.Pop() {
			ar.drainSend(pkt, peer)
		}
		return
	}
	job := ar.newDrainJob()
	job.pkts = buf.DrainTo(job.pkts[:0])
	if len(job.pkts) == 0 {
		ar.freeDrainJob(job)
		return
	}
	job.peer = peer
	ar.engine.Schedule(0, job.step)
}

// drainSend releases one drained packet toward its destination.
func (ar *AccessRouter) drainSend(pkt *inet.Packet, peer inet.Addr) {
	if peer.IsUnspecified() {
		ar.router.Forward(pkt)
		return
	}
	ar.router.Forward(pkt.Encapsulate(ar.router.Addr(), peer))
}

// drainJob is a paced buffer release in flight: a snapshot of the drained
// packets and a pre-bound step handler that sends one packet per
// DrainInterval. The job owns its packet scratch slice and survives its
// session (matching the old per-packet closures, which also outlived the
// session), so a recycled session cannot disturb an ongoing release.
type drainJob struct {
	ar   *AccessRouter
	pkts []*inet.Packet
	next int
	peer inet.Addr
	step func()
}

// newDrainJob takes a job off the free list, or builds one with its step
// handler bound once.
func (ar *AccessRouter) newDrainJob() *drainJob {
	if n := len(ar.drainFree); n > 0 {
		j := ar.drainFree[n-1]
		ar.drainFree[n-1] = nil
		ar.drainFree = ar.drainFree[:n-1]
		return j
	}
	j := &drainJob{ar: ar}
	j.step = j.fire
	return j
}

// freeDrainJob resets a finished job and recycles it.
func (ar *AccessRouter) freeDrainJob(j *drainJob) {
	for i := range j.pkts {
		j.pkts[i] = nil
	}
	j.pkts = j.pkts[:0]
	j.next = 0
	j.peer = inet.Addr{}
	ar.drainFree = append(ar.drainFree, j)
}

// fire sends the next drained packet and reschedules itself until the
// snapshot is exhausted.
func (j *drainJob) fire() {
	ar := j.ar
	pkt := j.pkts[j.next]
	j.pkts[j.next] = nil
	j.next++
	ar.drainSend(pkt, j.peer)
	if j.next < len(j.pkts) {
		ar.engine.Schedule(ar.cfg.DrainInterval, j.step)
		return
	}
	ar.freeDrainJob(j)
}

// --- session lifecycle ---

// expire fires when a session's buffering lifetime lapses before release:
// buffered packets are dropped and the space reclaimed.
func (ar *AccessRouter) expire(s *session) {
	if cur, ok := ar.sessions[s.pcoa]; !ok || cur != s {
		return
	}
	if s.buf != nil {
		// SafetyNet hold windows contain duplicates, not the only copies:
		// expiring them is dedup, not loss.
		dup := ar.cfg.Scheme == SchemeSafetyNet && s.role == roleNAR
		for pkt := s.buf.Pop(); pkt != nil; pkt = s.buf.Pop() {
			if dup {
				ar.discardDup(pkt)
			} else {
				ar.drop(pkt, DropOnLifetime)
			}
		}
	}
	ar.closeSession(s, true)
}

// closeSession tears down timers, reservations, and (for NAR sessions) the
// PCoA host route, then recycles the session and its buffer. Callers must
// not touch s afterwards.
func (ar *AccessRouter) closeSession(s *session, expired bool) {
	if s.startTimer != nil {
		s.startTimer.Stop()
	}
	if s.lifeTimer != nil {
		s.lifeTimer.Stop()
	}
	if s.graceTimer != nil {
		s.graceTimer.Stop()
	}
	if s.hiTimer != nil {
		s.hiTimer.Stop()
	}
	if s.bfTimer != nil {
		s.bfTimer.Stop()
	}
	if s.granted > 0 {
		ar.pool.Release(s.granted)
		ar.grantLive--
		s.granted = 0
	}
	if s.buf != nil {
		if ar.cfg.Scheme == SchemeSafetyNet && s.role == roleNAR {
			// Any copies still held are duplicates; recycle them rather
			// than letting the slab clear orphan the pooled packets.
			for pkt := s.buf.Pop(); pkt != nil; pkt = s.buf.Pop() {
				ar.discardDup(pkt)
			}
		}
		ar.bufFree.Put(s.buf)
		s.buf = nil
	}
	if s.role == roleNAR {
		ar.router.RemoveHostRoute(s.pcoa)
		if cur, ok := ar.ncoaIndex[s.ncoa]; ok && cur == s {
			delete(ar.ncoaIndex, s.ncoa)
		}
	}
	delete(ar.sessions, s.pcoa)
	ar.freeSession(s)
	_ = expired
}

// newSession takes a session off the free list (keeping its pre-bound
// timers, which closeSession already stopped) or allocates a fresh one.
func (ar *AccessRouter) newSession() *session {
	if n := len(ar.sessFree); n > 0 {
		s := ar.sessFree[n-1]
		ar.sessFree[n-1] = nil
		ar.sessFree = ar.sessFree[:n-1]
		return s
	}
	return &session{}
}

// freeSession zeroes every per-handoff field (timers stay bound to the
// session object and are reused by the next incarnation) and recycles s.
func (ar *AccessRouter) freeSession(s *session) {
	s.role = 0
	s.pcoa, s.ncoa, s.peer = inet.Addr{}, inet.Addr{}, inet.Addr{}
	s.targetAP = ""
	s.avail = buffer.Availability{}
	s.granted = 0
	s.buf = nil
	s.redirecting, s.narFull, s.fullSent, s.released = false, false, false, false
	s.narGrant, s.sentToNAR = 0, 0
	s.holdSeen = s.holdSeen[:0] // next append rewrites with zero windows
	s.hiTries, s.bfTries = 0, 0
	s.lastHI = nil
	ar.sessFree = append(ar.sessFree, s)
}

// --- helpers ---

// forwardLocal pushes a packet toward the mobile host through the normal
// routing table (host route → AP → air).
func (ar *AccessRouter) forwardLocal(s *session, pkt *inet.Packet) {
	ar.router.Forward(pkt)
}

// tunnelToPeer encapsulates a data packet toward the session's peer router.
func (ar *AccessRouter) tunnelToPeer(s *session, pkt *inet.Packet) {
	if s.peer.IsUnspecified() {
		ar.router.Forward(pkt)
		return
	}
	ar.router.Forward(pkt.Encapsulate(ar.router.Addr(), s.peer))
}

// sendControl originates a control packet from this router.
func (ar *AccessRouter) sendControl(dst inet.Addr, msg fho.Message) {
	ar.controlSent[msg.Kind()]++
	if ar.OnControl != nil {
		ar.OnControl(msg.Kind())
	}
	ar.router.Forward(&inet.Packet{
		Src:     ar.router.Addr(),
		Dst:     dst,
		Proto:   inet.ProtoControl,
		Size:    fho.WireSize(msg),
		Created: ar.engine.Now(),
		Payload: msg,
	})
}

// drop records a dropped packet.
func (ar *AccessRouter) drop(pkt *inet.Packet, where string) {
	if ar.OnDrop != nil {
		ar.OnDrop(pkt, where)
	}
}

// String identifies the router in traces.
func (ar *AccessRouter) String() string {
	return fmt.Sprintf("ar(%s net=%d %s)", ar.router.Name(), ar.net, ar.cfg.Scheme)
}
