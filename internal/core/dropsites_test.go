package core

import (
	"testing"

	"repro/internal/stats"
)

// TestDropSiteStringsMatchCanonicalSites pins the drop-location strings the
// routers pass to OnDrop to the stats package's preregistered sites. The
// two packages cannot share constants (stats must not import core), so this
// cross-check is what keeps the interner's fast path — and the report's
// site enumeration — aligned with the strings actually emitted.
func TestDropSiteStringsMatchCanonicalSites(t *testing.T) {
	pins := []struct {
		where string
		site  stats.DropSite
	}{
		{DropAtPAR, stats.SitePARBuffer},
		{DropAtNAR, stats.SiteNARBuffer},
		{DropPolicy, stats.SitePARPolicy},
		{DropOnLifetime, stats.SiteLifetime},
		{"air", stats.SiteAir},
		{"link-queue", stats.SiteLinkQueue},
	}
	for _, pin := range pins {
		got, ok := stats.LookupSite(pin.where)
		if !ok {
			t.Errorf("drop site %q is not preregistered in stats", pin.where)
			continue
		}
		if got != pin.site {
			t.Errorf("drop site %q interned as %d, want %d", pin.where, got, pin.site)
		}
		if pin.site.String() != pin.where {
			t.Errorf("site %d renders %q, want %q", pin.site, pin.site.String(), pin.where)
		}
	}
}
