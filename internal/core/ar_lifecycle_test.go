package core

import (
	"testing"

	"repro/internal/fho"
	"repro/internal/inet"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// fna injects the host's attach announcement at the NAR, requesting
// immediate buffer release and the BF relay toward the PAR.
func (h *arHarness) fna() {
	h.nar.Router().HandlePacket(nil, &inet.Packet{
		Src: inet.Addr{Net: 3, Host: 7}, Dst: h.nar.Addr(), Proto: inet.ProtoControl, Size: 64,
		Payload: &fho.FNA{PCoA: h.pcoa, NCoA: inet.Addr{Net: 3, Host: 7}, BufferForward: true},
	})
}

// cycle drives one complete handoff: solicit, redirect, buffer a burst,
// attach, release, and the NAR grace close.
func (h *arHarness) cycle(t testing.TB, packets uint32) {
	h.solicit(8)
	h.run(t, 100*sim.Millisecond)
	h.fbu()
	h.run(t, 10*sim.Millisecond)
	for j := uint32(0); j < packets; j++ {
		h.par.Router().HandlePacket(nil, h.data(inet.ClassRealTime, j))
	}
	h.run(t, 10*sim.Millisecond)
	h.fna()
	h.run(t, 2*sim.Second) // covers BF propagation and the 1 s grace
}

// TestARSessionRecycling runs several complete handoffs for the same host
// and checks that session objects and buffer slabs are recycled rather
// than reallocated, with no state bleeding between incarnations.
func TestARSessionRecycling(t *testing.T) {
	h := newARHarness(t, ARConfig{Scheme: SchemeEnhanced, PoolSize: 40, Alpha: 2})
	for i := 0; i < 3; i++ {
		h.cycle(t, 8)
		if h.par.Sessions() != 0 || h.nar.Sessions() != 0 {
			t.Fatalf("cycle %d: sessions leaked: par=%d nar=%d", i, h.par.Sessions(), h.nar.Sessions())
		}
		if h.par.Pool().Reserved() != 0 || h.nar.Pool().Reserved() != 0 {
			t.Fatalf("cycle %d: reservations leaked: par=%d nar=%d",
				i, h.par.Pool().Reserved(), h.nar.Pool().Reserved())
		}
		if len(h.par.sessFree) != 1 || len(h.nar.sessFree) != 1 {
			t.Fatalf("cycle %d: free lists hold %d/%d sessions, want 1/1 (recycled)",
				i, len(h.par.sessFree), len(h.nar.sessFree))
		}
	}
	if got := h.nar.PoolGrants(); got != 3 {
		t.Fatalf("NAR PoolGrants=%d, want 3", got)
	}
	if got := h.nar.PeakGrantedSessions(); got != 1 {
		t.Fatalf("NAR PeakGrantedSessions=%d, want 1 (handoffs were sequential)", got)
	}
	// The recycled session must be the same object every time.
	first := h.nar.sessFree[0]
	h.cycle(t, 4)
	if h.nar.sessFree[0] != first {
		t.Fatal("NAR session object was reallocated instead of recycled")
	}
}

// TestARPacedDrainDeliversOnSchedule pins the paced-drain rework: one
// self-rescheduling job releases the NAR backlog at DrainInterval spacing,
// and the job itself is recycled afterwards.
func TestARPacedDrainDeliversOnSchedule(t *testing.T) {
	const interval = 5 * sim.Millisecond
	h := newARHarness(t, ARConfig{
		Scheme: SchemeEnhanced, PoolSize: 40, Alpha: 2, DrainInterval: interval,
	})
	h.solicit(4)
	h.run(t, 100*sim.Millisecond)
	h.fbu()
	h.run(t, 10*sim.Millisecond)
	for j := uint32(0); j < 4; j++ {
		h.par.Router().HandlePacket(nil, h.data(inet.ClassRealTime, j))
	}
	h.run(t, 10*sim.Millisecond)

	// Count data packets the NAR releases. The PCoA host route installed
	// during handleHI points at the NAR's AP, so released packets leave
	// through the AP interface.
	var sendTimes []sim.Time
	var ifc *netsim.Iface
	for _, cand := range h.nar.Router().Ifaces() {
		if cand.Peer() == netsim.Node(h.narAP) {
			ifc = cand
		}
	}
	if ifc == nil {
		t.Fatal("no NAR->AP interface found")
	}
	ifc.Impair = func(pkt *inet.Packet) bool {
		if pkt.Proto != inet.ProtoControl {
			sendTimes = append(sendTimes, h.engine.Now())
		}
		return false
	}
	start := h.engine.Now()
	h.fna()
	h.run(t, 100*sim.Millisecond)

	if len(sendTimes) != 4 {
		t.Fatalf("released %d packets, want 4", len(sendTimes))
	}
	for i, at := range sendTimes {
		if want := start + sim.Time(i)*interval; at != want {
			t.Fatalf("packet %d released at %v, want %v", i, at, want)
		}
	}
	if len(h.nar.drainFree) != 1 {
		t.Fatalf("drain job not recycled: free list holds %d", len(h.nar.drainFree))
	}
	h.run(t, 2*sim.Second)
	if h.nar.Sessions() != 0 {
		t.Fatalf("NAR session not closed after paced drain")
	}
}

// TestARConfigValidate covers the α-bounds satellite at the config level.
func TestARConfigValidate(t *testing.T) {
	if err := (ARConfig{PoolSize: 40, Alpha: 2}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := (ARConfig{PoolSize: 0, Alpha: 0}).Validate(); err != nil {
		t.Fatalf("bufferless config rejected: %v", err)
	}
	for _, bad := range []ARConfig{
		{PoolSize: 40, Alpha: 40},
		{PoolSize: 40, Alpha: 41},
		{PoolSize: -1},
		{PoolSize: 10, Alpha: -3},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("Validate(%+v) accepted a misconfiguration", bad)
		}
	}
}

// BenchmarkARHandoffCycle measures one complete handoff (negotiation,
// redirection with an 8-packet real-time burst, attach, release, grace
// close) end to end. Session objects, buffers, and timers are recycled;
// remaining allocations are the per-handoff signaling messages themselves.
func BenchmarkARHandoffCycle(b *testing.B) {
	h := newARHarness(b, ARConfig{Scheme: SchemeEnhanced, PoolSize: 40, Alpha: 2})
	h.cycle(b, 8) // warm the free lists
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.cycle(b, 8)
	}
}

// BenchmarkSafetyNetHandoffCycle measures the same complete handoff under
// the SafetyNet scheme: no pool claims at either router — redirected
// packets ride the NAR hold window and drain on the selective report.
func BenchmarkSafetyNetHandoffCycle(b *testing.B) {
	h := newARHarness(b, ARConfig{Scheme: SchemeSafetyNet, PoolSize: 40})
	h.cycle(b, 8) // warm the free lists
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.cycle(b, 8)
	}
}
