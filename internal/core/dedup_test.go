package core

import (
	"math/rand"
	"testing"

	"repro/internal/fho"
	"repro/internal/inet"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// TestDedupWindowExactlyOnceUnderReordering is the SafetyNet receive-side
// correctness pin: when every sequence number arrives twice (the bicast
// twin racing the primary across the link switch) in a seeded arbitrary
// order, the window must report each sequence fresh exactly once and end
// with a complete contiguity frontier.
func TestDedupWindowExactlyOnceUnderReordering(t *testing.T) {
	const n = 64 // spans the whole mask depth; offsets never leave the window
	for _, seed := range []int64{1, 7, 42, 1337} {
		rng := rand.New(rand.NewSource(seed))
		arrivals := make([]uint32, 0, 2*n)
		for seq := uint32(0); seq < n; seq++ {
			arrivals = append(arrivals, seq, seq)
		}
		rng.Shuffle(len(arrivals), func(i, j int) {
			arrivals[i], arrivals[j] = arrivals[j], arrivals[i]
		})

		var w dedupWindow
		fresh := make(map[uint32]int, n)
		for _, seq := range arrivals {
			if w.observe(seq) {
				fresh[seq]++
			}
		}
		for seq := uint32(0); seq < n; seq++ {
			if fresh[seq] != 1 {
				t.Fatalf("seed %d: seq %d delivered %d times, want exactly once",
					seed, seq, fresh[seq])
			}
		}
		if w.nextContig != n {
			t.Fatalf("seed %d: frontier at %d after full delivery, want %d",
				seed, w.nextContig, n)
		}
	}
}

// TestDedupWindowTooOldIsSuppressed documents the conservative edge: a
// sequence that has fallen more than the mask depth behind the highest
// seen is treated as already delivered. Suppression can never turn into
// packet loss — the NAR hold window bounds how stale a first copy can be —
// while the opposite choice would hand duplicates to the application.
func TestDedupWindowTooOldIsSuppressed(t *testing.T) {
	var w dedupWindow
	if !w.observe(0) || !w.observe(100) {
		t.Fatal("fresh sequences reported as duplicates")
	}
	if w.observe(100 - 64) {
		t.Error("sequence beyond the mask depth accepted as fresh")
	}
	if !w.observe(100 - 63) {
		t.Error("oldest in-window sequence suppressed")
	}
}

// TestMHReportAcksContiguousPrefixOnly drives the host-side dedup state
// through per-flow reordered arrivals with one hole and checks the
// selective-delivery report: the flow with a hole acks only the prefix
// below it (so the NAR re-forwards the hole and everything after), an
// untouched flow contributes no entry, and reportCovers agrees with the
// report on both sides of each boundary.
func TestMHReportAcksContiguousPrefixOnly(t *testing.T) {
	mh := &MobileHost{}
	rng := rand.New(rand.NewSource(9))

	// Flow 1: sequences 0..19 except 7, delivered twice each, shuffled.
	arrivals := make([]uint32, 0, 40)
	for seq := uint32(0); seq < 20; seq++ {
		if seq == 7 {
			continue
		}
		arrivals = append(arrivals, seq, seq)
	}
	rng.Shuffle(len(arrivals), func(i, j int) {
		arrivals[i], arrivals[j] = arrivals[j], arrivals[i]
	})
	fresh := 0
	for _, seq := range arrivals {
		if mh.observeSeq(1, seq) {
			fresh++
		}
	}
	if fresh != 19 {
		t.Fatalf("flow 1 delivered %d fresh packets, want 19", fresh)
	}
	// Flow 2: a clean contiguous run.
	for seq := uint32(0); seq < 5; seq++ {
		mh.observeSeq(2, seq)
	}

	report := mh.buildReport()
	want := []fho.FlowSeq{{Flow: 1, Ack: 6}, {Flow: 2, Ack: 4}}
	if len(report) != len(want) {
		t.Fatalf("report %v, want %v", report, want)
	}
	for i := range want {
		if report[i] != want[i] {
			t.Fatalf("report %v, want %v", report, want)
		}
	}

	probe := func(flow inet.FlowID, seq uint32) bool {
		return reportCovers(report, &inet.Packet{Flow: flow, Seq: seq})
	}
	if !probe(1, 6) || probe(1, 7) || probe(1, 8) {
		t.Error("flow 1 coverage must end exactly at the hole")
	}
	if !probe(2, 0) || !probe(2, 4) || probe(2, 5) {
		t.Error("flow 2 coverage must end at its frontier")
	}
	if probe(3, 0) {
		t.Error("unreported flow must never be covered")
	}
}

// TestDedupWindowWrapAround pins the serial-arithmetic contract: a
// long-lived flow whose 32-bit sequence space wraps past 2^32 keeps
// exactly-once semantics and a monotonic (mod 2^32) contiguity frontier.
// Before the fix, the plain `seq > maxSeq` comparison made every pre-wrap
// duplicate look "new" again once maxSeq wrapped to small values.
func TestDedupWindowWrapAround(t *testing.T) {
	const start = uint32(0xFFFFFFF0) // 16 sequences before the wrap
	// A flow mid-life: everything below start already delivered.
	w := dedupWindow{seen: true, maxSeq: start - 1, mask: ^uint64(0), nextContig: start, acked: true}

	// 100 fresh sequences crossing the wrap, each delivered twice in a
	// seeded bounded-reorder (bicast twin racing the primary; displacement
	// stays inside the 64-deep mask so freshness expectations are exact).
	const n = 100
	rng := rand.New(rand.NewSource(5))
	arrivals := make([]uint32, 0, 2*n)
	for i := uint32(0); i < n; i++ {
		arrivals = append(arrivals, start+i, start+i)
	}
	for i := range arrivals {
		j := i + rng.Intn(16)
		if j >= len(arrivals) {
			j = len(arrivals) - 1
		}
		arrivals[i], arrivals[j] = arrivals[j], arrivals[i]
	}
	fresh := make(map[uint32]int, n)
	for _, seq := range arrivals {
		if w.observe(seq) {
			fresh[seq]++
		}
	}
	for i := uint32(0); i < n; i++ {
		if fresh[start+i] != 1 {
			t.Fatalf("seq %#x delivered %d times across the wrap, want exactly once",
				start+i, fresh[start+i])
		}
	}
	want := uint32(start)
	want += n // wraps to 0x54
	if w.nextContig != want {
		t.Fatalf("frontier = %#x after wrap, want %#x", w.nextContig, want)
	}
	// Pre-wrap sequences stay suppressed even though maxSeq is now small.
	if w.observe(start - 5) {
		t.Error("stale pre-wrap sequence resurrected as fresh after the wrap")
	}
}

// TestMHReportAcksAcrossWrap drives a flow's frontier exactly onto 0 (one
// full trip around the sequence space) and checks the report still carries
// the flow — ack 2^32-1 — with serial coverage on both sides.
func TestMHReportAcksAcrossWrap(t *testing.T) {
	const start = uint32(0xFFFFFFC0) // 64 before the wrap
	w := dedupWindow{seen: true, maxSeq: start - 1, mask: ^uint64(0), nextContig: start, acked: true}
	for i := uint32(0); i < 64; i++ {
		if !w.observe(start + i) {
			t.Fatalf("seq %#x suppressed", start+i)
		}
	}
	if w.nextContig != 0 {
		t.Fatalf("frontier = %#x, want exactly 0 (wrapped)", w.nextContig)
	}
	mh := &MobileHost{flowSeen: []flowDedup{{flow: 1, win: w}}}
	report := mh.buildReport()
	if len(report) != 1 || report[0].Ack != ^uint32(0) {
		t.Fatalf("report = %v, want flow 1 acked at 2^32-1", report)
	}
	if !reportCovers(report, &inet.Packet{Flow: 1, Seq: ^uint32(0)}) {
		t.Error("last pre-wrap sequence not covered")
	}
	if reportCovers(report, &inet.Packet{Flow: 1, Seq: 0}) {
		t.Error("first post-wrap sequence wrongly covered")
	}
}

// newBareNAR builds a minimal SafetyNet access router whose forwarding
// plane delivers net-3 traffic to a counting host, for driving the NAR
// hold window directly.
func newBareNAR(t *testing.T) (*AccessRouter, *sim.Engine, *int) {
	t.Helper()
	engine := sim.NewEngine()
	topo := netsim.NewTopology(engine)
	router := netsim.NewRouter("nar", inet.Addr{Net: 3, Host: 1})
	sink := netsim.NewHost("sink", inet.Addr{Net: 3, Host: 7})
	topo.Connect(router, sink, netsim.LinkConfig{Delay: sim.Millisecond})
	delivered := new(int)
	sink.Receive = func(pkt *inet.Packet) { *delivered++ }
	ar := NewAccessRouter(engine, router, 3, NewDirectory(), ARConfig{Scheme: SchemeSafetyNet})
	router.AddPrefixRoute(3, router.Ifaces()[0])
	return ar, engine, delivered
}

// TestSessionRecycleZeroesHoldWindows asserts the free-list contract the
// dedup state depends on: a recycled session's next incarnation must see
// fully zeroed per-flow windows, so sequences from the new handoff are
// never suppressed by (or merged into) the previous host's state.
func TestSessionRecycleZeroesHoldWindows(t *testing.T) {
	ar, _, _ := newBareNAR(t)
	s := ar.newSession()
	for seq := uint32(0); seq < 40; seq++ {
		observeFlowSeq(&s.holdSeen, 9, seq)
	}
	if len(s.holdSeen) != 1 || s.holdSeen[0].win.nextContig != 40 {
		t.Fatalf("precondition: holdSeen = %+v", s.holdSeen)
	}
	ar.freeSession(s)
	s2 := ar.newSession()
	if s2 != s {
		t.Fatal("free list did not recycle the session object")
	}
	if len(s2.holdSeen) != 0 {
		t.Fatalf("recycled session carries %d stale flow windows", len(s2.holdSeen))
	}
	// A sequence the previous incarnation saw must be fresh again, into a
	// fully zeroed window.
	if !observeFlowSeq(&s2.holdSeen, 9, 0) {
		t.Fatal("stale window suppressed the new incarnation's first packet")
	}
	w := s2.holdSeen[0].win
	if w.maxSeq != 0 || w.mask != 1 || w.nextContig != 1 || !w.acked {
		t.Fatalf("recycled window not rebuilt from zero: %+v", w)
	}
}

// TestHoldWindowOverflowDegradesToForwarding floods a NAR hold window
// with more distinct sequences than DefaultBicastWindow, each arriving
// twice in a seeded shuffled order. Every eviction must degrade to
// forwarding (the evicted packet is the only parked copy, so discarding
// it would be silent loss), the second copies must be discarded as
// duplicates, and held = forwarded + discarded-evictions + still-held
// must balance.
func TestHoldWindowOverflowDegradesToForwarding(t *testing.T) {
	ar, engine, delivered := newBareNAR(t)
	drops := 0
	ar.OnDrop = func(pkt *inet.Packet, where string) { drops++ }
	discards := 0
	ar.OnBicastDiscard = func(pkt *inet.Packet) { discards++ }

	const distinct = DefaultBicastWindow + 32
	rng := rand.New(rand.NewSource(11))
	arrivals := make([]uint32, 0, 2*distinct)
	for seq := uint32(0); seq < distinct; seq++ {
		arrivals = append(arrivals, seq, seq)
	}
	// Seeded bounded reorder: displacement stays far inside the 64-deep
	// dedup mask, so every first copy is still recognisably fresh and the
	// expected counts below are exact.
	for i := range arrivals {
		j := i + rng.Intn(16)
		if j >= len(arrivals) {
			j = len(arrivals) - 1
		}
		arrivals[i], arrivals[j] = arrivals[j], arrivals[i]
	}

	s := ar.newSession()
	s.role = roleNAR
	for _, seq := range arrivals {
		ar.holdBicast(s, &inet.Packet{
			Dst: inet.Addr{Net: 3, Host: 7}, Proto: inet.ProtoUDP,
			Flow: 1, Seq: seq, Size: 160,
		})
	}
	if err := engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}

	if got := ar.BicastHeld(); got != distinct {
		t.Errorf("BicastHeld = %d, want %d (each distinct seq parked once)", got, distinct)
	}
	if got := ar.BicastForwarded(); got != distinct-DefaultBicastWindow {
		t.Errorf("BicastForwarded = %d, want %d overflow evictions", got, distinct-DefaultBicastWindow)
	}
	if *delivered != distinct-DefaultBicastWindow {
		t.Errorf("%d evicted packets delivered, want %d — eviction must forward, not drop",
			*delivered, distinct-DefaultBicastWindow)
	}
	// The duplicate arrivals (one per distinct seq, including seqs whose
	// first copy was already evicted) are dedup discards, not losses.
	if got := ar.BicastDiscarded(); got != distinct || discards != int(distinct) {
		t.Errorf("BicastDiscarded = %d (hook %d), want %d duplicate arrivals", got, discards, distinct)
	}
	if drops != 0 {
		t.Errorf("OnDrop fired %d times; overflow must never be charged as loss", drops)
	}
	// Conservation: everything parked is still held or was forwarded.
	if held := s.buf.Len(); uint64(held)+ar.BicastForwarded() != ar.BicastHeld() {
		t.Errorf("held %d + forwarded %d != parked %d", held, ar.BicastForwarded(), ar.BicastHeld())
	}
	if s.buf.Len() != DefaultBicastWindow {
		t.Errorf("window holds %d, want full %d", s.buf.Len(), DefaultBicastWindow)
	}
}
