package core

import (
	"math/rand"
	"testing"

	"repro/internal/fho"
	"repro/internal/inet"
)

// TestDedupWindowExactlyOnceUnderReordering is the SafetyNet receive-side
// correctness pin: when every sequence number arrives twice (the bicast
// twin racing the primary across the link switch) in a seeded arbitrary
// order, the window must report each sequence fresh exactly once and end
// with a complete contiguity frontier.
func TestDedupWindowExactlyOnceUnderReordering(t *testing.T) {
	const n = 64 // spans the whole mask depth; offsets never leave the window
	for _, seed := range []int64{1, 7, 42, 1337} {
		rng := rand.New(rand.NewSource(seed))
		arrivals := make([]uint32, 0, 2*n)
		for seq := uint32(0); seq < n; seq++ {
			arrivals = append(arrivals, seq, seq)
		}
		rng.Shuffle(len(arrivals), func(i, j int) {
			arrivals[i], arrivals[j] = arrivals[j], arrivals[i]
		})

		var w dedupWindow
		fresh := make(map[uint32]int, n)
		for _, seq := range arrivals {
			if w.observe(seq) {
				fresh[seq]++
			}
		}
		for seq := uint32(0); seq < n; seq++ {
			if fresh[seq] != 1 {
				t.Fatalf("seed %d: seq %d delivered %d times, want exactly once",
					seed, seq, fresh[seq])
			}
		}
		if w.nextContig != n {
			t.Fatalf("seed %d: frontier at %d after full delivery, want %d",
				seed, w.nextContig, n)
		}
	}
}

// TestDedupWindowTooOldIsSuppressed documents the conservative edge: a
// sequence that has fallen more than the mask depth behind the highest
// seen is treated as already delivered. Suppression can never turn into
// packet loss — the NAR hold window bounds how stale a first copy can be —
// while the opposite choice would hand duplicates to the application.
func TestDedupWindowTooOldIsSuppressed(t *testing.T) {
	var w dedupWindow
	if !w.observe(0) || !w.observe(100) {
		t.Fatal("fresh sequences reported as duplicates")
	}
	if w.observe(100 - 64) {
		t.Error("sequence beyond the mask depth accepted as fresh")
	}
	if !w.observe(100 - 63) {
		t.Error("oldest in-window sequence suppressed")
	}
}

// TestMHReportAcksContiguousPrefixOnly drives the host-side dedup state
// through per-flow reordered arrivals with one hole and checks the
// selective-delivery report: the flow with a hole acks only the prefix
// below it (so the NAR re-forwards the hole and everything after), an
// untouched flow contributes no entry, and reportCovers agrees with the
// report on both sides of each boundary.
func TestMHReportAcksContiguousPrefixOnly(t *testing.T) {
	mh := &MobileHost{}
	rng := rand.New(rand.NewSource(9))

	// Flow 1: sequences 0..19 except 7, delivered twice each, shuffled.
	arrivals := make([]uint32, 0, 40)
	for seq := uint32(0); seq < 20; seq++ {
		if seq == 7 {
			continue
		}
		arrivals = append(arrivals, seq, seq)
	}
	rng.Shuffle(len(arrivals), func(i, j int) {
		arrivals[i], arrivals[j] = arrivals[j], arrivals[i]
	})
	fresh := 0
	for _, seq := range arrivals {
		if mh.observeSeq(1, seq) {
			fresh++
		}
	}
	if fresh != 19 {
		t.Fatalf("flow 1 delivered %d fresh packets, want 19", fresh)
	}
	// Flow 2: a clean contiguous run.
	for seq := uint32(0); seq < 5; seq++ {
		mh.observeSeq(2, seq)
	}

	report := mh.buildReport()
	want := []fho.FlowSeq{{Flow: 1, Ack: 6}, {Flow: 2, Ack: 4}}
	if len(report) != len(want) {
		t.Fatalf("report %v, want %v", report, want)
	}
	for i := range want {
		if report[i] != want[i] {
			t.Fatalf("report %v, want %v", report, want)
		}
	}

	probe := func(flow inet.FlowID, seq uint32) bool {
		return reportCovers(report, &inet.Packet{Flow: flow, Seq: seq})
	}
	if !probe(1, 6) || probe(1, 7) || probe(1, 8) {
		t.Error("flow 1 coverage must end exactly at the hole")
	}
	if !probe(2, 0) || !probe(2, 4) || probe(2, 5) {
		t.Error("flow 2 coverage must end at its frontier")
	}
	if probe(3, 0) {
		t.Error("unreported flow must never be covered")
	}
}
