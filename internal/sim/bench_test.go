package sim

import "testing"

// BenchmarkScheduleAndRun measures raw engine throughput: schedule-heavy
// workloads in the network simulator are bounded by this loop.
func BenchmarkScheduleAndRun(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(i%1000)*Microsecond, func() {})
		if i%1024 == 1023 {
			if err := e.RunAll(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := e.RunAll(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTimerReset measures the cancel-and-rearm path protocol timers
// exercise constantly.
func BenchmarkTimerReset(b *testing.B) {
	e := NewEngine()
	tm := NewTimer(e, func() {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.Reset(Second)
	}
	tm.Stop()
}
