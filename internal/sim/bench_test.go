package sim

import "testing"

// BenchmarkScheduleAndRun measures raw engine throughput: schedule-heavy
// workloads in the network simulator are bounded by this loop.
func BenchmarkScheduleAndRun(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(i%1000)*Microsecond, func() {})
		if i%1024 == 1023 {
			if err := e.RunAll(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := e.RunAll(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTimerReset measures the cancel-and-rearm path protocol timers
// exercise constantly.
func BenchmarkTimerReset(b *testing.B) {
	e := NewEngine()
	tm := NewTimer(e, func() {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.Reset(Second)
	}
	tm.Stop()
}

// BenchmarkSchedulerChurn holds a steady window of pending events and
// replaces one per operation — the hold-pattern churn both schedulers see
// in a running simulation — so the heap and calendar implementations can
// be compared head to head.
func BenchmarkSchedulerChurn(b *testing.B) {
	for _, kind := range []SchedulerKind{SchedulerHeap, SchedulerCalendar} {
		b.Run(kind.String(), func(b *testing.B) {
			e := NewEngineKind(kind)
			rng := NewRNG(1)
			fn := func() {}
			const window = 4096
			for i := 0; i < window; i++ {
				e.Schedule(Time(rng.Intn(1000))*Microsecond, fn)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Schedule(Time(1+rng.Intn(1000))*Microsecond, fn)
				e.Step()
			}
			b.StopTimer()
			if err := e.RunAll(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkRetransmissionCancel models the signaling retransmission-timer
// pattern: batches of timers armed together of which 90% are cancelled
// before firing (the exchange succeeded), exercising the lazy-delete
// Cancel and the compaction sweep.
func BenchmarkRetransmissionCancel(b *testing.B) {
	for _, kind := range []SchedulerKind{SchedulerHeap, SchedulerCalendar} {
		b.Run(kind.String(), func(b *testing.B) {
			e := NewEngineKind(kind)
			fn := func() {}
			refs := make([]EventRef, 0, 128)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				refs = refs[:0]
				for j := 0; j < 100; j++ {
					refs = append(refs, e.Schedule(100*Millisecond, fn))
				}
				for j, ref := range refs {
					if j%10 != 0 { // 90% cancelled before their deadline
						e.Cancel(ref)
					}
				}
				if err := e.RunAll(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
