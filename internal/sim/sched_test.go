package sim

import (
	"math/rand"
	"testing"
)

var schedulerKinds = []SchedulerKind{SchedulerHeap, SchedulerCalendar}

// TestSchedulersAgree drives both engines through identical randomized
// schedule/cancel workloads and requires byte-identical fire sequences —
// the determinism contract that makes the scheduler selectable per run.
func TestSchedulersAgree(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1))
		heapEng := NewEngineKind(SchedulerHeap)
		calEng := NewEngineKind(SchedulerCalendar)

		var heapOrder, calOrder []int
		var heapRefs, calRefs []EventRef
		n := 200 + rng.Intn(400)
		for i := 0; i < n; i++ {
			// Mix of clustered and far-flung instants to force calendar
			// year scans, direct searches, and resizes.
			var at Time
			switch rng.Intn(4) {
			case 0:
				at = Time(rng.Intn(10)) // heavy ties
			case 1:
				at = Time(rng.Intn(1000))
			case 2:
				at = Time(rng.Int63n(int64(Second)))
			default:
				at = Time(rng.Int63n(int64(1000 * Second)))
			}
			id := i
			heapRefs = append(heapRefs, heapEng.At(at, func() { heapOrder = append(heapOrder, id) }))
			calRefs = append(calRefs, calEng.At(at, func() { calOrder = append(calOrder, id) }))
		}
		// Cancel a random subset (same subset on both engines).
		for i := range heapRefs {
			if rng.Intn(3) == 0 {
				heapEng.Cancel(heapRefs[i])
				calEng.Cancel(calRefs[i])
			}
		}
		if err := heapEng.RunAll(); err != nil {
			t.Fatal(err)
		}
		if err := calEng.RunAll(); err != nil {
			t.Fatal(err)
		}
		if len(heapOrder) != len(calOrder) {
			t.Fatalf("trial %d: heap fired %d events, calendar %d", trial, len(heapOrder), len(calOrder))
		}
		for i := range heapOrder {
			if heapOrder[i] != calOrder[i] {
				t.Fatalf("trial %d: fire order diverges at %d: heap=%d calendar=%d", trial, i, heapOrder[i], calOrder[i])
			}
		}
		if heapEng.Now() != calEng.Now() {
			t.Fatalf("trial %d: clocks diverge: heap=%v calendar=%v", trial, heapEng.Now(), calEng.Now())
		}
	}
}

// TestSchedulersAgreeOnline interleaves scheduling from inside handlers
// (the pattern real simulations follow) and checks both engines agree.
func TestSchedulersAgreeOnline(t *testing.T) {
	run := func(kind SchedulerKind) []int {
		e := NewEngineKind(kind)
		rng := rand.New(rand.NewSource(42))
		var order []int
		id := 0
		var spawn func(depth int) Handler
		spawn = func(depth int) Handler {
			me := id
			id++
			return func() {
				order = append(order, me)
				if depth < 4 {
					k := rng.Intn(4)
					for j := 0; j < k; j++ {
						e.Schedule(Time(rng.Int63n(int64(Millisecond))), spawn(depth+1))
					}
				}
			}
		}
		for i := 0; i < 64; i++ {
			e.Schedule(Time(rng.Int63n(int64(Second))), spawn(0))
		}
		if err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	heapOrder := run(SchedulerHeap)
	calOrder := run(SchedulerCalendar)
	if len(heapOrder) != len(calOrder) {
		t.Fatalf("heap fired %d events, calendar %d", len(heapOrder), len(calOrder))
	}
	for i := range heapOrder {
		if heapOrder[i] != calOrder[i] {
			t.Fatalf("fire order diverges at %d: heap=%d calendar=%d", i, heapOrder[i], calOrder[i])
		}
	}
}

// TestEventRefGenerationSafety is the satellite coverage for stale refs:
// schedule→fire→recycle→schedule into the same slot, then check the stale
// ref reports its own event's fate and Cancel through it is a no-op.
func TestEventRefGenerationSafety(t *testing.T) {
	for _, kind := range schedulerKinds {
		t.Run(kind.String(), func(t *testing.T) {
			e := NewEngineKind(kind)

			fired := false
			ref1 := e.Schedule(1, func() { fired = true })
			if !e.Step() || !fired {
				t.Fatal("first event did not fire")
			}
			if !ref1.Fired() || ref1.Cancelled() {
				t.Fatalf("ref1 after fire: Fired=%v Cancelled=%v, want true,false", ref1.Fired(), ref1.Cancelled())
			}

			// The free list guarantees the recycled slot is reused next.
			ref2 := e.Schedule(1, func() {})
			if ref2.ev != ref1.ev {
				t.Fatal("slot was not recycled into the next schedule")
			}
			if ref2.gen == ref1.gen {
				t.Fatal("recycled slot did not advance its generation")
			}

			// Stale ref still reports its own (fired) event, not the new
			// occupant's pending state.
			if !ref1.Fired() || ref1.Cancelled() {
				t.Fatalf("stale ref1: Fired=%v Cancelled=%v, want true,false", ref1.Fired(), ref1.Cancelled())
			}
			// Cancel through the stale ref must not touch the new occupant.
			e.Cancel(ref1)
			if ref2.Cancelled() {
				t.Fatal("Cancel via stale ref cancelled the slot's new occupant")
			}
			if e.Pending() != 1 {
				t.Fatalf("Pending = %d after stale Cancel, want 1", e.Pending())
			}

			// Now cancel the live event and recycle the slot a third time:
			// both stale refs keep reporting their own fates.
			e.Cancel(ref2)
			if !ref2.Cancelled() || ref2.Fired() {
				t.Fatalf("ref2 after cancel: Fired=%v Cancelled=%v, want false,true", ref2.Fired(), ref2.Cancelled())
			}
			e.Step() // pops + recycles the cancelled slot
			ref3 := e.Schedule(1, func() {})
			if ref3.ev != ref2.ev {
				t.Fatal("cancelled slot was not recycled")
			}
			if !ref1.Fired() || ref1.Cancelled() {
				t.Fatalf("2-stale ref1: Fired=%v Cancelled=%v, want true,false", ref1.Fired(), ref1.Cancelled())
			}
			if ref2.Fired() || !ref2.Cancelled() {
				t.Fatalf("stale ref2: Fired=%v Cancelled=%v, want false,true", ref2.Fired(), ref2.Cancelled())
			}
			if ref3.Fired() || ref3.Cancelled() {
				t.Fatal("fresh ref3 should be pending")
			}
		})
	}
}

// TestEventRefFateDepth recycles one slot through many generations and
// checks fates stay correct across the full 64-generation memory.
func TestEventRefFateDepth(t *testing.T) {
	e := NewEngine()
	type gen struct {
		ref       EventRef
		cancelled bool
	}
	var hist []gen
	var slot *event
	for i := 0; i < 70; i++ {
		ref := e.Schedule(1, func() {})
		if slot == nil {
			slot = ref.ev
		} else if ref.ev != slot {
			t.Fatal("free list did not reuse the single slot")
		}
		cancelled := i%3 == 0
		if cancelled {
			e.Cancel(ref)
		}
		e.Step() // fires or collects the slot, recycling it
		hist = append(hist, gen{ref, cancelled})
	}
	for i, g := range hist {
		age := len(hist) - 1 - i // generations completed after this one
		if age >= fateBits {
			continue // beyond fate memory; reports are best-effort
		}
		if g.cancelled {
			if g.ref.Fired() || !g.ref.Cancelled() {
				t.Fatalf("gen %d (cancelled): Fired=%v Cancelled=%v", i, g.ref.Fired(), g.ref.Cancelled())
			}
		} else {
			if !g.ref.Fired() || g.ref.Cancelled() {
				t.Fatalf("gen %d (fired): Fired=%v Cancelled=%v", i, g.ref.Fired(), g.ref.Cancelled())
			}
		}
	}
}

// TestEngineReset checks a reset engine replays a workload identically to a
// fresh one, without consulting wall time or leaking prior state.
func TestEngineReset(t *testing.T) {
	for _, kind := range schedulerKinds {
		t.Run(kind.String(), func(t *testing.T) {
			run := func(e *Engine) []int {
				var order []int
				rng := rand.New(rand.NewSource(7))
				for i := 0; i < 500; i++ {
					id := i
					ref := e.Schedule(Time(rng.Int63n(int64(Second))), func() { order = append(order, id) })
					if rng.Intn(4) == 0 {
						e.Cancel(ref)
					}
				}
				if err := e.RunAll(); err != nil {
					t.Fatal(err)
				}
				return order
			}
			e := NewEngineKind(kind)
			first := run(e)

			// Leave junk queued, then reset mid-flight.
			pending := e.Schedule(5, func() { t.Fatal("event survived Reset") })
			e.Reset()
			if e.Now() != 0 || e.Pending() != 0 || e.Processed() != 0 {
				t.Fatalf("after Reset: now=%v pending=%d processed=%d", e.Now(), e.Pending(), e.Processed())
			}
			if pending.Fired() {
				t.Fatal("reset-discarded event reports fired")
			}
			second := run(e)
			if len(first) != len(second) {
				t.Fatalf("replay length %d != %d", len(second), len(first))
			}
			for i := range first {
				if first[i] != second[i] {
					t.Fatalf("replay diverges at %d: %d != %d", i, second[i], first[i])
				}
			}
		})
	}
}

// TestCalendarFarFuture exercises the direct-search fallback: a handful of
// events separated by enormous gaps.
func TestCalendarFarFuture(t *testing.T) {
	e := NewCalendarEngine()
	var order []int
	ats := []Time{0, 1, 1000 * Second, 2000 * Second, MaxTime / 2, MaxTime - 1}
	for i := len(ats) - 1; i >= 0; i-- {
		id := i
		e.At(ats[i], func() { order = append(order, id) })
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("fire order %v, want ascending", order)
		}
	}
}

// TestCalendarEarlierPush checks that scheduling an event earlier than an
// already-peeked minimum rewinds the scan correctly.
func TestCalendarEarlierPush(t *testing.T) {
	e := NewCalendarEngine()
	var order []int
	e.At(100*Millisecond, func() { order = append(order, 2) })
	// Peek via Run to a horizon before the event, priming the scan cache.
	if err := e.Run(Millisecond); err != nil {
		t.Fatal(err)
	}
	e.At(50*Millisecond, func() { order = append(order, 1) })
	e.At(2*Millisecond, func() { order = append(order, 0) })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("fire order %v, want [0 1 2]", order)
	}
}

// TestZeroAllocHotPath enforces the steady-state allocation ceilings from
// the acceptance criteria: Schedule, Step, and Cancel must not allocate
// once the free list and queue capacity are warm.
func TestZeroAllocHotPath(t *testing.T) {
	for _, kind := range schedulerKinds {
		t.Run(kind.String(), func(t *testing.T) {
			e := NewEngineKind(kind)
			fn := func() {}
			// Warm-up: grow the free list, queue capacity, and calendar
			// buckets past anything the measured loop needs.
			for i := 0; i < 4096; i++ {
				e.Schedule(Time(i%97)*Microsecond, fn)
			}
			for e.Step() {
			}

			var tick Time
			allocs := testing.AllocsPerRun(200, func() {
				for i := 0; i < 16; i++ {
					tick += Microsecond
					keep := e.At(tick, fn)
					dead := e.At(tick+Microsecond, fn)
					e.Cancel(dead)
					_ = keep
				}
				for e.Step() {
				}
			})
			if allocs != 0 {
				t.Fatalf("%v Schedule/Cancel/Step steady state allocates %.1f times per run, want 0", kind, allocs)
			}
		})
	}
}

// TestTimerResetZeroAlloc: re-arming a timer is part of the retransmission
// hot path and must not allocate either.
func TestTimerResetZeroAlloc(t *testing.T) {
	e := NewEngine()
	tm := NewTimer(e, func() {})
	// Warm-up.
	for i := 0; i < 1024; i++ {
		tm.Reset(Millisecond)
	}
	for e.Step() {
	}
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 16; i++ {
			tm.Reset(Millisecond)
		}
	})
	if allocs != 0 {
		t.Fatalf("Timer.Reset steady state allocates %.1f times per run, want 0", allocs)
	}
}
