package sim

import "sync"

// ShardGroup advances several independent engines under a conservative
// epoch-barrier protocol (null-message-free CMB). The caller partitions the
// model so each engine owns a shard and every cross-shard interaction takes
// at least `lookahead` of virtual time to arrive (for a network simulation:
// the minimum delay of any link whose endpoints live on different shards).
//
// Each epoch the group computes T, the earliest pending instant across all
// shards, and runs every engine to T+lookahead-1 in parallel: any event a
// shard fires inside the epoch can only produce cross-shard effects at or
// after T+lookahead, which is outside the epoch, so shards never see each
// other mid-epoch. Between epochs the group calls the exchange callback
// (single-threaded) to move buffered cross-shard traffic into the receiving
// engines' queues.
//
// Determinism: for a fixed shard partition the results are byte-identical
// regardless of worker count or which worker runs which shard, because
// shards are mutually isolated inside an epoch and the exchange runs alone
// in a fixed order at the barrier.
type ShardGroup struct {
	engines   []*Engine
	lookahead Time
	workers   int
	// exchange flushes cross-shard traffic buffered during the last epoch
	// into the receiving engines. It runs single-threaded, with every
	// engine parked at the barrier.
	exchange func()

	// errs collects per-engine Run results for one epoch (reused across
	// epochs so the barrier loop stays allocation-free).
	errs []error
}

// NewShardGroup builds a group over the given engines. lookahead is the
// minimum cross-shard latency; values below 1 are clamped to 1 (epochs of a
// single instant — always safe, never fast). workers caps the goroutines
// running engines concurrently; values below 1 or above len(engines) are
// clamped.
func NewShardGroup(engines []*Engine, lookahead Time, workers int) *ShardGroup {
	if lookahead < 1 {
		lookahead = 1
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(engines) {
		workers = len(engines)
	}
	return &ShardGroup{
		engines:   engines,
		lookahead: lookahead,
		workers:   workers,
		errs:      make([]error, len(engines)),
	}
}

// SetExchange installs the barrier callback that migrates buffered
// cross-shard traffic. It must be set before Run when any two shards are
// connected; a nil exchange is valid for fully independent shards.
func (g *ShardGroup) SetExchange(fn func()) { g.exchange = fn }

// Engines returns the group's engines in shard order.
func (g *ShardGroup) Engines() []*Engine { return g.engines }

// Lookahead returns the epoch width.
func (g *ShardGroup) Lookahead() Time { return g.lookahead }

// Now returns the least-advanced shard clock (the group's committed time).
func (g *ShardGroup) Now() Time {
	if len(g.engines) == 0 {
		return 0
	}
	now := g.engines[0].Now()
	for _, e := range g.engines[1:] {
		if t := e.Now(); t < now {
			now = t
		}
	}
	return now
}

// Run processes events on every shard until all queues drain or every clock
// would pass the horizon, exactly like Engine.Run but across the group.
// Events scheduled exactly at the horizon still fire. The first non-nil
// engine error (in shard order) is returned; remaining shards still finish
// the epoch in which it occurred, so the group is never left mid-barrier.
func (g *ShardGroup) Run(until Time) error {
	if len(g.engines) == 0 {
		return nil
	}
	if len(g.engines) == 1 {
		// Single shard: plain serial execution. The exchange still runs so
		// a degenerate one-shard partition with registered ports behaves.
		if g.exchange != nil {
			g.exchange()
		}
		return g.engines[0].Run(until)
	}

	stop, jobs, wg := g.startWorkers()
	if stop != nil {
		defer close(stop)
	}

	for {
		if g.exchange != nil {
			g.exchange()
		}
		var t Time
		have := false
		for _, e := range g.engines {
			if at, ok := e.NextAt(); ok && (!have || at < t) {
				t, have = at, true
			}
		}
		if !have || t > until {
			break
		}
		end := t + g.lookahead - 1
		if end > until || end < t { // clamp, and guard Time overflow
			end = until
		}
		g.runEpoch(end, jobs, wg)
		for _, err := range g.errs {
			if err != nil {
				return err
			}
		}
	}

	// Horizon reached (or queues drained): advance every clock to the
	// horizon so Now() reflects progress, mirroring Engine.Run.
	if until != MaxTime {
		for _, e := range g.engines {
			if e.Now() < until {
				if err := e.Run(until); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// RunAll processes events until every shard's queue drains.
func (g *ShardGroup) RunAll() error { return g.Run(MaxTime) }

// epochJob carries one shard's work order for the current epoch.
type epochJob struct {
	idx int
	end Time
}

// startWorkers spins up the persistent worker goroutines used by runEpoch.
// With one worker it returns nils and runEpoch executes inline.
func (g *ShardGroup) startWorkers() (chan struct{}, chan epochJob, *sync.WaitGroup) {
	if g.workers <= 1 {
		return nil, nil, nil
	}
	stop := make(chan struct{})
	jobs := make(chan epochJob)
	wg := new(sync.WaitGroup)
	for w := 0; w < g.workers; w++ {
		go func() {
			for {
				select {
				case j := <-jobs:
					g.errs[j.idx] = g.engines[j.idx].Run(j.end)
					wg.Done()
				case <-stop:
					return
				}
			}
		}()
	}
	return stop, jobs, wg
}

// runEpoch runs every engine to end, in parallel when workers were started.
// Which worker runs which shard is arbitrary and immaterial: shards are
// isolated for the duration of the epoch.
func (g *ShardGroup) runEpoch(end Time, jobs chan epochJob, wg *sync.WaitGroup) {
	if jobs == nil {
		for i, e := range g.engines {
			g.errs[i] = e.Run(end)
		}
		return
	}
	wg.Add(len(g.engines))
	for i := range g.engines {
		jobs <- epochJob{idx: i, end: end}
	}
	wg.Wait()
}
