package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ShardGroup advances several independent engines under a conservative
// epoch-barrier protocol (null-message-free CMB). The caller partitions the
// model so each engine owns a shard and every cross-shard interaction takes
// at least `lookahead` of virtual time to arrive (for a network simulation:
// the minimum delay of any link whose endpoints live on different shards).
//
// Each round the group computes a safe horizon per shard and runs the
// shards that have work inside it; between rounds the exchange callback
// runs single-threaded to move buffered cross-shard traffic into the
// receiving engines' queues. In the default adaptive mode the horizons are
// widened beyond the classic fixed T+lookahead-1 epoch wherever causality
// allows (see adaptiveRound), shards with no event inside the horizon are
// never dispatched, and a round with a single live shard runs inline on the
// caller's goroutine with no barrier at all — so synchronization cost
// scales with actual cross-shard traffic, not with simulated time.
//
// Determinism: for a fixed shard partition the results are byte-identical
// regardless of worker count or which worker runs which shard, because
// shards are mutually isolated inside a round and the exchange runs alone
// in a fixed order at the barrier. The per-shard horizons (and therefore
// ShardStats) are a pure function of the engines' queues, never of worker
// scheduling.
type ShardGroup struct {
	engines   []*Engine
	lookahead Time
	workers   int
	adaptive  bool
	// exchange flushes cross-shard traffic buffered during the last round
	// into the receiving engines. It runs single-threaded, with every
	// engine parked at the barrier.
	exchange func()
	// pending reports whether any cross-shard traffic is currently parked
	// in an outbox (see SetExchangePending). Optional; enables the widest
	// solo-round horizons. It must be safe to call from the goroutine of
	// the one shard running in a solo round.
	pending func() bool

	// Scratch state reused across rounds so the loop stays allocation-free.
	// live/ends are written by the coordinator before a round is published
	// and read by workers only inside the round.
	errs    []error
	nextAts []Time
	ends    []Time
	live    []int

	stats ShardStats

	// br is the persistent worker barrier, non-nil only inside Run and only
	// when workers > 1.
	br *epochBarrier
}

// ShardStats counts the synchronization work a ShardGroup performed,
// accumulated across Run calls. Every field is a pure function of the
// model (the engines' event queues and the lookahead), never of worker
// count or scheduling, so the numbers are safe to include in golden
// outputs.
type ShardStats struct {
	// Rounds is the number of rounds that dispatched at least one shard.
	Rounds uint64
	// BarrierRounds counts rounds that dispatched two or more shards and
	// so required synchronization. With one worker the shards of such a
	// round run sequentially, but the round still counts: the metric
	// describes the model, not the execution strategy.
	BarrierRounds uint64
	// SoloRounds counts rounds with a single live shard, run inline by the
	// coordinator with no barrier at all.
	SoloRounds uint64
	// Dispatches counts individual shard runs; ElidedDispatches counts
	// shard-rounds skipped because the shard had no event inside the
	// round's horizon.
	Dispatches       uint64
	ElidedDispatches uint64
}

// NewShardGroup builds a group over the given engines. lookahead is the
// minimum cross-shard latency; values below 1 are clamped to 1 (epochs of a
// single instant — always safe, never fast). workers caps the goroutines
// running engines concurrently; values below 1 or above len(engines) are
// clamped. The group starts in adaptive mode (see SetAdaptive).
func NewShardGroup(engines []*Engine, lookahead Time, workers int) *ShardGroup {
	if lookahead < 1 {
		lookahead = 1
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(engines) {
		workers = len(engines)
	}
	return &ShardGroup{
		engines:   engines,
		lookahead: lookahead,
		workers:   workers,
		adaptive:  true,
		errs:      make([]error, len(engines)),
		nextAts:   make([]Time, len(engines)),
		ends:      make([]Time, len(engines)),
		live:      make([]int, 0, len(engines)),
	}
}

// SetExchange installs the barrier callback that migrates buffered
// cross-shard traffic. It must be set before Run when any two shards are
// connected; a nil exchange is valid for fully independent shards.
func (g *ShardGroup) SetExchange(fn func()) { g.exchange = fn }

// SetExchangePending installs an oracle reporting whether any cross-shard
// traffic is parked in an outbox right now (netsim.ShardExchange.Pending).
// It is optional: without it solo rounds fall back to the same conservative
// horizon a barrier round would grant. The oracle must agree with the
// exchange — after the exchange callback runs, pending must be false until
// the next send is parked.
func (g *ShardGroup) SetExchangePending(fn func() bool) { g.pending = fn }

// SetAdaptive toggles adaptive mode (the default). When off, the group
// reverts to the classic fixed-width protocol: every round dispatches every
// shard to T+lookahead-1 where T is the earliest pending instant. The fixed
// path exists as the differential reference for the adaptive one — both
// must produce byte-identical simulations — and as the baseline for
// barrier-round counts.
func (g *ShardGroup) SetAdaptive(on bool) { g.adaptive = on }

// Stats returns the synchronization counters accumulated so far.
func (g *ShardGroup) Stats() ShardStats { return g.stats }

// Engines returns the group's engines in shard order.
func (g *ShardGroup) Engines() []*Engine { return g.engines }

// Lookahead returns the minimum cross-shard latency the group assumes.
func (g *ShardGroup) Lookahead() Time { return g.lookahead }

// Now returns the least-advanced shard clock (the group's committed time).
func (g *ShardGroup) Now() Time {
	if len(g.engines) == 0 {
		return 0
	}
	now := g.engines[0].Now()
	for _, e := range g.engines[1:] {
		if t := e.Now(); t < now {
			now = t
		}
	}
	return now
}

// addClamp returns t + d saturated at MaxTime (d must be non-negative).
func addClamp(t, d Time) Time {
	if s := t + d; s >= t {
		return s
	}
	return MaxTime
}

// Run processes events on every shard until all queues drain or every clock
// would pass the horizon, exactly like Engine.Run but across the group.
// Events scheduled exactly at the horizon still fire. The first non-nil
// engine error (in shard order, among the shards dispatched in the round
// where it occurred) is returned; the remaining shards of that round still
// finish, so the group is never left mid-barrier, and a later Run resumes
// cleanly.
func (g *ShardGroup) Run(until Time) error {
	if len(g.engines) == 0 {
		return nil
	}
	if len(g.engines) == 1 {
		// Single shard: plain serial execution. The exchange still runs so
		// a degenerate one-shard partition with registered ports behaves.
		if g.exchange != nil {
			g.exchange()
		}
		return g.engines[0].Run(until)
	}

	// Clear stale results from a previous Run: with elision a shard may not
	// be dispatched for many rounds, and its old error must not resurface.
	for i := range g.errs {
		g.errs[i] = nil
	}
	if g.workers > 1 {
		b := newEpochBarrier(g.workers - 1)
		g.br = b
		for h := 0; h < b.helpers; h++ {
			go g.helperLoop(b)
		}
		defer func() {
			b.shutdown()
			g.br = nil
		}()
	}

	for {
		if g.exchange != nil {
			g.exchange()
		}
		t1, t2, i1 := g.scanNext()
		if i1 < 0 || t1 > until {
			break
		}
		if g.adaptive {
			g.adaptiveRound(until, t1, t2, i1)
		} else {
			g.fixedRound(until, t1)
		}
		for _, i := range g.live {
			if err := g.errs[i]; err != nil {
				return err
			}
		}
	}

	// Horizon reached (or queues drained): advance every clock to the
	// horizon so Now() reflects progress, mirroring Engine.Run.
	if until != MaxTime {
		for _, e := range g.engines {
			if e.Now() < until {
				if err := e.Run(until); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// RunAll processes events until every shard's queue drains.
func (g *ShardGroup) RunAll() error { return g.Run(MaxTime) }

// scanNext fills nextAts with each shard's earliest pending instant
// (MaxTime when its queue is empty) and returns the two earliest instants
// and the index of the earliest shard (-1 when every queue is empty).
func (g *ShardGroup) scanNext() (t1, t2 Time, i1 int) {
	t1, t2, i1 = MaxTime, MaxTime, -1
	for i, e := range g.engines {
		at, ok := e.NextAt()
		if !ok {
			at = MaxTime
		}
		g.nextAts[i] = at
		if at < t1 {
			t2 = t1
			t1, i1 = at, i
		} else if at < t2 {
			t2 = at
		}
	}
	if t1 == MaxTime {
		i1 = -1
	}
	return t1, t2, i1
}

// fixedRound is the classic protocol: every shard runs [_, T+lookahead-1].
func (g *ShardGroup) fixedRound(until, t1 Time) {
	end := addClamp(t1, g.lookahead-1)
	if end > until {
		end = until
	}
	g.live = g.live[:0]
	for i := range g.engines {
		g.live = append(g.live, i)
		g.ends[i] = end
	}
	g.stats.Rounds++
	g.stats.BarrierRounds++
	g.stats.Dispatches += uint64(len(g.live))
	g.dispatch()
}

// adaptiveRound computes per-shard horizons from the two earliest pending
// instants t1 (on shard i1) and t2, and dispatches only the shards with
// work inside them.
//
// Soundness. Let L be the lookahead. A shard whose earliest pending event
// is at instant s cannot park a cross-shard send arriving before s+L. The
// earliest instant at which any shard other than i1 can act is
// min(t2, t1+L): either its own earliest event (≥ t2), or the earliest
// relay of something shard i1 sends (arriving ≥ t1+L). Therefore:
//
//   - every shard other than i1 may safely run through t1+L-1 (nothing can
//     reach it before t1+L, the leader's earliest possible send arrival);
//   - the leader i1 may run through min(t2, t1+L) + L - 1: nothing can
//     reach *it* before the earliest foreign action plus L. Note the relay
//     term: the leader's own send at t1 can bounce off another shard and
//     come back at t1+2L, which is why the horizon is not simply t2+L-1.
//
// A shard whose earliest event lies beyond its horizon would fire nothing;
// it is elided (its clock is advanced lazily by the final horizon loop or a
// later round). When only the leader is live the round runs inline with no
// barrier — and soloRun may widen the horizon further still.
func (g *ShardGroup) adaptiveRound(until, t1, t2 Time, i1 int) {
	endOther := addClamp(t1, g.lookahead-1)
	if endOther > until {
		endOther = until
	}
	g.live = g.live[:0]
	for i := range g.engines {
		if i == i1 || g.nextAts[i] <= endOther {
			g.live = append(g.live, i)
		}
	}
	h := addClamp(t1, g.lookahead)
	if t2 < h {
		h = t2
	}
	endLeader := addClamp(h, g.lookahead-1)
	if endLeader > until {
		endLeader = until
	}

	g.stats.Rounds++
	g.stats.ElidedDispatches += uint64(len(g.engines) - len(g.live))
	if len(g.live) == 1 {
		g.stats.SoloRounds++
		g.stats.Dispatches++
		g.errs[i1] = g.soloRun(i1, until, t2, endLeader)
		return
	}
	for _, i := range g.live {
		g.ends[i] = endOther
	}
	g.ends[i1] = endLeader
	g.stats.BarrierRounds++
	g.stats.Dispatches += uint64(len(g.live))
	g.dispatch()
}

// soloRun advances the only live shard of a round, inline, with no barrier.
//
// With no exchange installed the shards are fully independent and the shard
// runs to the caller's horizon. With an exchange but no pending oracle it
// gets the conservative horizon a barrier round would grant it. With an
// oracle it starts from the optimistic bound t2+L-1 — no other shard can
// act before t2, so nothing can arrive here before t2+L — and tightens to
// now+2L-1 the moment the shard's first cross-shard send is parked: a send
// at instant s can be relayed back no earlier than s+2L. This is what
// collapses a long quiet stretch (events on one shard only, no traffic in
// flight) into a single round.
func (g *ShardGroup) soloRun(idx int, until, t2, conservative Time) error {
	e := g.engines[idx]
	if g.exchange == nil {
		return e.Run(until)
	}
	if g.pending == nil {
		return e.Run(conservative)
	}
	target := addClamp(t2, g.lookahead-1)
	if target > until {
		target = until
	}
	watching := true
	if g.pending() {
		// A custom exchange left traffic parked across its flush; fall back
		// to the conservative horizon (netsim.ShardExchange always drains).
		watching = false
		if conservative < target {
			target = conservative
		}
	}
	// Mirror Engine.Run exactly, plus the per-event oracle probe while
	// watching (one atomic load; dropped after the first hit).
	for {
		if e.stopped {
			e.stopped = false
			return ErrStopped
		}
		at, ok := e.NextAt()
		if !ok {
			break
		}
		if at > target {
			e.now = target
			return nil
		}
		e.Step()
		if watching && g.pending() {
			watching = false
			if t := addClamp(addClamp(e.now, g.lookahead), g.lookahead-1); t < target {
				target = t
			}
		}
	}
	if target != MaxTime && e.now < target {
		e.now = target
	}
	return nil
}

// dispatch runs every live shard to its horizon: inline when the group has
// a single worker, otherwise through the persistent barrier. Which worker
// runs which shard is arbitrary and immaterial — shards are isolated for
// the duration of the round.
func (g *ShardGroup) dispatch() {
	b := g.br
	if b == nil {
		for _, i := range g.live {
			g.errs[i] = g.engines[i].Run(g.ends[i])
		}
		return
	}
	b.arrived.Store(0)
	b.next.Store(0)
	b.publish()
	g.runShare(b)
	// Wait for every helper to check in. Helpers beyond the live-shard
	// count arrive immediately; the spin keeps the common fast round free
	// of futex round-trips, the Gosched keeps a single-P schedule live.
	for spin := 0; b.arrived.Load() != int64(b.helpers); spin++ {
		if spin > coordSpins {
			runtime.Gosched()
		}
	}
}

// runShare claims shards off the round's live list until none remain.
func (g *ShardGroup) runShare(b *epochBarrier) {
	for {
		i := int(b.next.Add(1)) - 1
		if i >= len(g.live) {
			return
		}
		s := g.live[i]
		g.errs[s] = g.engines[s].Run(g.ends[s])
	}
}

// helperLoop is the body of a persistent worker goroutine: wait for a round
// to be published, claim shards, check in, repeat. Helpers hold a reference
// to their own barrier, so stragglers from a finished Run can never observe
// a newer Run's rounds.
func (g *ShardGroup) helperLoop(b *epochBarrier) {
	last := uint64(0)
	for {
		last = b.await(last)
		if b.quit.Load() {
			return
		}
		g.runShare(b)
		b.arrived.Add(1)
	}
}

// Spin budgets for the barrier. Helpers spin hot briefly (a round is often
// published back-to-back with the previous one), yield for a while so a
// box with fewer cores than workers still makes progress, then park on the
// condition variable. The coordinator never parks — it yields.
const (
	hotSpins   = 64
	yieldSpins = 2048
	coordSpins = 64
)

// epochBarrier synchronizes the persistent helper goroutines of one Run
// call with the coordinator. round is a monotonic generation counter — the
// overflow-free form of a sense-reversing barrier's sense bit: a helper's
// "sense" is the last round value it processed, and a mismatch means a new
// round (or shutdown) was published. Publication happens entirely through
// atomics on the fast path; the mutex/cond pair exists only so a helper
// that has spun too long can park without missed-wakeup races (publish
// bumps the counter under the lock, await re-checks it under the lock
// before sleeping).
type epochBarrier struct {
	round   atomic.Uint64
	next    atomic.Int64 // work index into the round's live list
	arrived atomic.Int64 // helpers done with the current round
	quit    atomic.Bool  // set before the final publish
	helpers int

	mu   sync.Mutex
	cond *sync.Cond
}

func newEpochBarrier(helpers int) *epochBarrier {
	b := &epochBarrier{helpers: helpers}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// publish makes the next round (or shutdown) visible to helpers. The
// counter bump is under the lock purely to pair with await's parked
// re-check; spinning helpers see the new value without touching the lock.
func (b *epochBarrier) publish() {
	b.mu.Lock()
	b.round.Add(1)
	b.mu.Unlock()
	b.cond.Broadcast()
}

// await blocks until the round counter moves past last and returns the new
// value. Fast path: spin, then yield; slow path: park on the cond.
func (b *epochBarrier) await(last uint64) uint64 {
	for spin := 0; spin < yieldSpins; spin++ {
		if r := b.round.Load(); r != last {
			return r
		}
		if spin >= hotSpins {
			runtime.Gosched()
		}
	}
	b.mu.Lock()
	for {
		if r := b.round.Load(); r != last {
			b.mu.Unlock()
			return r
		}
		b.cond.Wait()
	}
}

// shutdown releases the helpers. It must only be called between rounds
// (every helper checked in), which Run's structure guarantees.
func (b *epochBarrier) shutdown() {
	b.quit.Store(true)
	b.publish()
}
