package sim

// heapQueue is a 4-ary min-heap specialized to *event. Compared to
// container/heap it avoids the `any` boxing on every push/pop and the
// interface-dispatched Less/Swap calls; the 4-ary layout halves the tree
// depth, trading slightly more comparisons per level for far fewer cache
// misses on the sift path. Ordering follows eventLess.
type heapQueue struct {
	ev []*event
}

func (h *heapQueue) size() int { return len(h.ev) }

func (h *heapQueue) peek() *event {
	if len(h.ev) == 0 {
		return nil
	}
	return h.ev[0]
}

func (h *heapQueue) push(ev *event) {
	h.ev = append(h.ev, ev)
	h.up(len(h.ev) - 1)
}

func (h *heapQueue) pop() *event {
	n := len(h.ev)
	if n == 0 {
		return nil
	}
	top := h.ev[0]
	last := h.ev[n-1]
	h.ev[n-1] = nil
	h.ev = h.ev[:n-1]
	if n > 1 {
		h.ev[0] = last
		h.down(0)
	}
	return top
}

func (h *heapQueue) up(i int) {
	ev := h.ev[i]
	for i > 0 {
		parent := (i - 1) / 4
		p := h.ev[parent]
		if !eventLess(ev, p) {
			break
		}
		h.ev[i] = p
		i = parent
	}
	h.ev[i] = ev
}

func (h *heapQueue) down(i int) {
	n := len(h.ev)
	ev := h.ev[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		// Find the smallest of up to four children.
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(h.ev[c], h.ev[min]) {
				min = c
			}
		}
		if !eventLess(h.ev[min], ev) {
			break
		}
		h.ev[i] = h.ev[min]
		i = min
	}
	h.ev[i] = ev
}

// sweep removes every cancelled event in O(n): compact the live events in
// place, then rebuild the heap bottom-up (Floyd).
func (h *heapQueue) sweep(recycle func(*event)) {
	live := h.ev[:0]
	for _, ev := range h.ev {
		if ev.cancel {
			recycle(ev)
		} else {
			live = append(live, ev)
		}
	}
	// Clear the tail so recycled slots aren't retained by the backing array.
	for i := len(live); i < len(h.ev); i++ {
		h.ev[i] = nil
	}
	h.ev = live
	for i := len(h.ev)/4 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h *heapQueue) reset(recycle func(*event)) {
	for i, ev := range h.ev {
		recycle(ev)
		h.ev[i] = nil
	}
	h.ev = h.ev[:0]
}
