package sim

// Timer is a restartable one-shot timer bound to an Engine. Protocol state
// machines use it for retransmission and lifetime timeouts.
//
// A Timer is not safe for concurrent use; like everything in the simulator
// it runs on the single event-loop goroutine.
type Timer struct {
	engine  *Engine
	fn      Handler
	fire    Handler // pre-bound expiry handler, allocated once in NewTimer
	ref     EventRef
	armed   bool
	expires Time
}

// NewTimer returns an unarmed timer that runs fn when it fires.
func NewTimer(engine *Engine, fn Handler) *Timer {
	if engine == nil {
		panic("sim: NewTimer with nil engine")
	}
	if fn == nil {
		panic("sim: NewTimer with nil handler")
	}
	t := &Timer{engine: engine, fn: fn}
	t.fire = func() {
		t.armed = false
		t.fn()
	}
	return t
}

// Armed reports whether the timer is currently scheduled.
func (t *Timer) Armed() bool { return t.armed }

// Expires returns the instant the timer will fire; only meaningful while
// Armed.
func (t *Timer) Expires() Time { return t.expires }

// Reset (re)arms the timer to fire after delay, cancelling any pending
// expiry.
func (t *Timer) Reset(delay Time) {
	t.Stop()
	t.armed = true
	t.expires = t.engine.Now() + delay
	t.ref = t.engine.Schedule(delay, t.fire)
}

// ResetAt (re)arms the timer to fire at an absolute instant.
func (t *Timer) ResetAt(at Time) {
	now := t.engine.Now()
	if at < now {
		at = now
	}
	t.Reset(at - now)
}

// Stop cancels a pending expiry. Stopping an unarmed timer is a no-op.
func (t *Timer) Stop() {
	if !t.armed {
		return
	}
	t.engine.Cancel(t.ref)
	t.armed = false
}

// Ticker invokes fn at a fixed period until stopped.
type Ticker struct {
	timer  *Timer
	period Time
	fn     Handler
}

// NewTicker starts a ticker whose first tick fires after one period.
func NewTicker(engine *Engine, period Time, fn Handler) *Ticker {
	if period <= 0 {
		panic("sim: NewTicker with non-positive period")
	}
	tk := &Ticker{period: period, fn: fn}
	tk.timer = NewTimer(engine, tk.tick)
	tk.timer.Reset(period)
	return tk
}

// NewTickerAt starts a ticker whose first tick fires after the given phase
// offset; subsequent ticks follow every period.
func NewTickerAt(engine *Engine, phase, period Time, fn Handler) *Ticker {
	if period <= 0 {
		panic("sim: NewTickerAt with non-positive period")
	}
	tk := &Ticker{period: period, fn: fn}
	tk.timer = NewTimer(engine, tk.tick)
	tk.timer.Reset(phase)
	return tk
}

func (tk *Ticker) tick() {
	tk.timer.Reset(tk.period)
	tk.fn()
}

// Stop halts the ticker.
func (tk *Ticker) Stop() { tk.timer.Stop() }
