// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of scheduled
// events. Events scheduled for the same instant fire in the order they were
// scheduled (stable FIFO tie-break), which makes every simulation in this
// repository reproducible bit-for-bit.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is a virtual time instant, measured in nanoseconds since the start of
// the simulation. It is deliberately distinct from time.Time: simulations
// never consult the wall clock.
type Time int64

// Common time unit helpers, mirroring the time package.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable virtual instant.
const MaxTime = Time(math.MaxInt64)

// Duration converts a time.Duration into virtual time units.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds returns the instant as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns the instant as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String renders the instant as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Handler is a scheduled callback. It runs with the engine clock set to the
// event's instant.
type Handler func()

// event is a single queue entry.
type event struct {
	at     Time
	seq    uint64 // insertion order, breaks ties deterministically
	fn     Handler
	index  int // heap index, -1 once popped or cancelled
	cancel bool
	fired  bool
}

// EventRef identifies a scheduled event so it can be cancelled.
type EventRef struct{ ev *event }

// Cancelled reports whether the event was cancelled before firing. The
// contract: exactly one of "fired" and "cancelled" eventually holds for
// every scheduled event. An event that already ran reports false even if
// Cancel was called on it afterwards (the late Cancel is a no-op), so
// Cancelled never claims that work which actually happened was prevented.
func (r EventRef) Cancelled() bool { return r.ev != nil && r.ev.cancel }

// Fired reports whether the event's handler has run.
func (r EventRef) Fired() bool { return r.ev != nil && r.ev.fired }

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// ErrStopped is returned by Run when Stop was called before the horizon.
var ErrStopped = errors.New("sim: engine stopped")

// Engine is the discrete-event scheduler. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool
	// processed counts events that have fired, for diagnostics.
	processed uint64
}

// NewEngine returns an engine with its clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events that have fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule runs fn after the given delay. A negative delay is treated as
// zero (the event fires at the current instant, after already-queued events
// for that instant).
func (e *Engine) Schedule(delay Time, fn Handler) EventRef {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at the given absolute instant. Instants in the past are clamped
// to the current time.
func (e *Engine) At(at Time, fn Handler) EventRef {
	if fn == nil {
		panic("sim: At called with nil handler")
	}
	if at < e.now {
		at = e.now
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return EventRef{ev: ev}
}

// Cancel prevents a scheduled event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op: a fired event stays
// "fired", not "cancelled" (see EventRef.Cancelled).
func (e *Engine) Cancel(ref EventRef) {
	ev := ref.ev
	if ev == nil || ev.fired {
		return
	}
	if ev.cancel || ev.index < 0 {
		ev.cancel = true
		return
	}
	ev.cancel = true
	heap.Remove(&e.queue, ev.index)
}

// Stop makes the current Run call return after the in-flight event handler
// completes. Calling Stop while no Run is in progress is not lost: the
// pending stop is honored (and consumed) by the next Run call, which
// returns ErrStopped without processing any events.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the single earliest pending event and advances the clock to its
// instant. It reports whether an event fired.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.cancel {
			continue
		}
		e.now = ev.at
		e.processed++
		ev.fired = true
		ev.fn()
		return true
	}
	return false
}

// Run processes events until the queue is empty or the clock would pass the
// horizon. Events scheduled exactly at the horizon still fire. It returns
// ErrStopped if Stop was called, otherwise nil. A Stop issued before Run
// (including one left over from a handler that fired after its Run call
// already returned) is honored immediately: Run consumes it and returns
// ErrStopped without firing any event, so a stop is never silently lost.
func (e *Engine) Run(until Time) error {
	for len(e.queue) > 0 || e.stopped {
		if e.stopped {
			e.stopped = false
			return ErrStopped
		}
		next := e.queue[0]
		if next.cancel {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > until {
			// Leave the event queued; advance the clock to the horizon so
			// Now() reflects how far the simulation progressed.
			e.now = until
			return nil
		}
		e.Step()
	}
	if until != MaxTime && e.now < until {
		e.now = until
	}
	return nil
}

// RunAll processes events until the queue drains or Stop is called.
func (e *Engine) RunAll() error { return e.Run(MaxTime) }
