// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of scheduled
// events. Events scheduled for the same instant fire in the order they were
// scheduled (stable FIFO tie-break), which makes every simulation in this
// repository reproducible bit-for-bit.
//
// Two queue implementations are available behind the same Engine API: an
// inlined 4-ary min-heap (the default) and an ns-2-style calendar queue
// (NewCalendarEngine) whose enqueue/dequeue cost stays O(1) when the event
// population is well spread. Both honor the identical total order
// (see eventLess), so a simulation produces byte-identical results under
// either. For events scheduled through Schedule/At that order is exactly
// the historical (at, seq) FIFO rule; AtPinned additionally lets a caller
// place an event at an explicit position inside an instant, so an
// analytically computed event can land precisely where a classic
// event-driven chain would have inserted it (see internal/netsim's fused
// links).
//
// The hot path is allocation-free in steady state: fired and cancelled
// events are recycled through a free list, and EventRefs carry a
// generation counter so a stale reference can never touch the slot's new
// occupant.
package sim

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Time is a virtual time instant, measured in nanoseconds since the start of
// the simulation. It is deliberately distinct from time.Time: simulations
// never consult the wall clock.
type Time int64

// Common time unit helpers, mirroring the time package.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable virtual instant.
const MaxTime = Time(math.MaxInt64)

// Duration converts a time.Duration into virtual time units.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds returns the instant as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns the instant as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String renders the instant as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Handler is a scheduled callback. It runs with the engine clock set to the
// event's instant.
type Handler func()

// event is a single queue entry. Events are recycled through the engine's
// free list; gen counts the recycles so stale EventRefs can detect that
// their event is gone (and look its fate up in the fate shift register).
type event struct {
	at  Time
	seq uint64 // insertion order, breaks ties deterministically
	// (vins, vins2, vseq2) position the event inside its instant ahead of
	// the seq tie-break: vins is the virtual instant the event was
	// inserted at, and (vins2, vseq2) identify the inserting context (the
	// (vins, seq) of the event whose handler performed the insertion).
	// For events scheduled via Schedule/At these are derived so that the
	// total order collapses to the historical (at, seq) FIFO rule — see
	// eventLess. AtPinned sets them explicitly.
	vins  Time
	vins2 Time
	vseq2 uint64
	fn    Handler
	gen   uint64 // incremented every time the slot is recycled
	// fate remembers how past occupants of this slot ended: bit k holds 1
	// if generation gen-1-k fired (0 if it was cancelled). It lets a ref
	// up to 64 recycles stale still report its own event's outcome.
	fate   uint64
	fired  bool
	cancel bool
	// next chains events inside a calendar-queue bucket (intrusive list,
	// nil outside the calendar). Unused by the heap scheduler.
	next *event
}

// eventLess is the engine's total event order: earlier instant first, then
// insertion instant, then inserting context, then scheduling order. Both
// queue implementations use exactly this predicate, which is what makes
// them interchangeable bit-for-bit.
//
// For events scheduled only through Schedule/At the extended key is a pure
// refinement of the historical (at, seq) rule — it never reorders them.
// Proof sketch (induction over instants): within one instant, events fire
// in key order; an event inserted by firing F gets vins = now and
// (vins2, vseq2) = (F.vins, F.seq), and since firings proceed in
// nondecreasing (vins, seq) order (the hypothesis), consecutive insertions
// carry nondecreasing (vins, vins2, vseq2) — so among equal (at, vins) the
// extended comparison still falls through to seq. Events inserted outside
// any firing get (vins2, vseq2) = (now, own seq), which slots after every
// same-instant firing context. The extension only matters for AtPinned
// events, which use it to sort exactly where an equivalent event-driven
// insertion would have.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.vins != b.vins {
		return a.vins < b.vins
	}
	if a.vins2 != b.vins2 {
		return a.vins2 < b.vins2
	}
	if a.vseq2 != b.vseq2 {
		return a.vseq2 < b.vseq2
	}
	return a.seq < b.seq
}

// EventRef identifies a scheduled event so it can be cancelled. The zero
// value is valid and reports neither fired nor cancelled.
type EventRef struct {
	ev  *event
	gen uint64
}

// fateBits is how many completed generations a slot's fate register holds.
const fateBits = 64

// Cancelled reports whether the event was cancelled before firing. The
// contract: exactly one of "fired" and "cancelled" eventually holds for
// every scheduled event. An event that already ran reports false even if
// Cancel was called on it afterwards (the late Cancel is a no-op), so
// Cancelled never claims that work which actually happened was prevented.
//
// The report stays correct even after the event's slot has been recycled
// and rescheduled (up to 64 recycles back); a ref staler than that
// conservatively reports not-cancelled.
func (r EventRef) Cancelled() bool {
	ev := r.ev
	if ev == nil {
		return false
	}
	if ev.gen == r.gen {
		return ev.cancel
	}
	if age := ev.gen - r.gen; age <= fateBits {
		return ev.fate>>(age-1)&1 == 0
	}
	return false
}

// Fired reports whether the event's handler has run, with the same
// staleness guarantees as Cancelled.
func (r EventRef) Fired() bool {
	ev := r.ev
	if ev == nil {
		return false
	}
	if ev.gen == r.gen {
		return ev.fired
	}
	if age := ev.gen - r.gen; age <= fateBits {
		return ev.fate>>(age-1)&1 == 1
	}
	// Fate memory exhausted: the event certainly completed, and events
	// overwhelmingly complete by firing (cancellations are explicit, so
	// their owner already knows). Report the likely outcome.
	return true
}

// scheduler is the queue strategy behind an Engine. Both implementations
// order events by eventLess and tolerate lazily-cancelled entries (the
// engine skips and recycles them on pop, or in bulk via sweep).
type scheduler interface {
	// push enqueues an event.
	push(ev *event)
	// peek returns the earliest queued event without removing it, or nil.
	peek() *event
	// pop removes and returns the earliest queued event, or nil.
	pop() *event
	// size returns the number of queued events, including
	// lazily-cancelled ones awaiting collection.
	size() int
	// sweep removes every cancelled event, handing each to recycle.
	sweep(recycle func(*event))
	// reset empties the queue (recycling every entry) but keeps the
	// allocated capacity for reuse.
	reset(recycle func(*event))
}

// SchedulerKind selects an Engine's queue implementation.
type SchedulerKind int32

const (
	// SchedulerHeap is the inlined 4-ary min-heap (the default).
	SchedulerHeap SchedulerKind = iota
	// SchedulerCalendar is the ns-2-style calendar queue.
	SchedulerCalendar
)

// String implements fmt.Stringer.
func (k SchedulerKind) String() string {
	switch k {
	case SchedulerHeap:
		return "heap"
	case SchedulerCalendar:
		return "calendar"
	default:
		return fmt.Sprintf("scheduler(%d)", int32(k))
	}
}

// ParseSchedulerKind maps a flag value ("heap", "calendar") to a kind.
func ParseSchedulerKind(s string) (SchedulerKind, error) {
	switch s {
	case "heap", "binary-heap", "4ary":
		return SchedulerHeap, nil
	case "calendar", "calendar-queue", "cq":
		return SchedulerCalendar, nil
	default:
		return 0, fmt.Errorf("sim: unknown scheduler %q (have: heap, calendar)", s)
	}
}

// defaultKind is the process-wide scheduler used by NewEngine, read and
// written atomically so worker pools can select it per run.
var defaultKind atomic.Int32

// SetDefaultScheduler selects the queue implementation NewEngine uses from
// now on and returns the previous choice. Engines already built keep their
// scheduler; because both kinds honor the same total event order,
// switching never changes simulation results.
func SetDefaultScheduler(k SchedulerKind) SchedulerKind {
	return SchedulerKind(defaultKind.Swap(int32(k)))
}

// DefaultScheduler returns the kind NewEngine currently uses.
func DefaultScheduler() SchedulerKind { return SchedulerKind(defaultKind.Load()) }

// ErrStopped is returned by Run when Stop was called before the horizon.
var ErrStopped = errors.New("sim: engine stopped")

// eventBlock is how many events one free-list refill allocates. Chunked
// allocation keeps cold-start allocation counts low; in steady state the
// free list makes Schedule/Step allocation-free.
const eventBlock = 128

// compactMin is the lazy-deletion floor: a sweep is only considered once
// at least this many cancelled events are queued.
const compactMin = 64

// Engine is the discrete-event scheduler. The zero value is not usable; call
// NewEngine (or NewCalendarEngine).
type Engine struct {
	now     Time
	sched   scheduler
	kind    SchedulerKind
	seq     uint64
	stopped bool
	// processed counts events that have fired, for diagnostics.
	processed uint64
	// live counts scheduled, not-yet-fired, not-cancelled events.
	live int
	// lazy counts cancelled events still occupying queue slots.
	lazy int
	// free is the recycled-event stack feeding At.
	free []*event
	// recycleFn is the pre-bound recycle method value handed to the
	// scheduler's sweep/reset, so compaction never allocates a closure.
	recycleFn func(*event)
	// Firing context: the full ordering key of the event whose handler is
	// currently running inside Step. At stamps inserted events with it,
	// and FiringKey exposes it so analytic fast paths (netsim's fused
	// links) can resolve equal-instant ties exactly as the event-driven
	// code would have.
	firing   bool
	curVins  Time
	curVins2 Time
	curVseq2 uint64
	curSeq   uint64
}

// NewEngine returns an engine with its clock at zero, using the
// process-default scheduler (see SetDefaultScheduler; initially the 4-ary
// heap).
func NewEngine() *Engine { return NewEngineKind(DefaultScheduler()) }

// NewCalendarEngine returns an engine backed by the calendar queue.
func NewCalendarEngine() *Engine { return NewEngineKind(SchedulerCalendar) }

// NewEngineKind returns an engine backed by the given queue implementation.
func NewEngineKind(k SchedulerKind) *Engine {
	e := &Engine{kind: k}
	switch k {
	case SchedulerCalendar:
		e.sched = newCalendarQueue()
	default:
		e.kind = SchedulerHeap
		e.sched = new(heapQueue)
	}
	e.recycleFn = e.recycle
	return e
}

// Scheduler returns the engine's queue implementation kind.
func (e *Engine) Scheduler() SchedulerKind { return e.kind }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events that have fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently scheduled (cancelled
// events awaiting lazy collection are not counted).
func (e *Engine) Pending() int { return e.live }

// alloc takes an event slot from the free list, refilling it block-wise
// from one backing array when empty.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	block := make([]event, eventBlock)
	for i := eventBlock - 1; i >= 1; i-- {
		e.free = append(e.free, &block[i])
	}
	return &block[0]
}

// recycle retires an event slot: its outcome is pushed into the fate shift
// register, the generation advances (invalidating extant refs), and the
// slot returns to the free list.
func (e *Engine) recycle(ev *event) {
	var bit uint64
	if ev.fired {
		bit = 1
	}
	ev.fate = ev.fate<<1 | bit
	ev.gen++
	ev.fn = nil
	ev.fired = false
	ev.cancel = false
	e.free = append(e.free, ev)
}

// Schedule runs fn after the given delay. A negative delay is treated as
// zero (the event fires at the current instant, after already-queued events
// for that instant).
func (e *Engine) Schedule(delay Time, fn Handler) EventRef {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at the given absolute instant. Instants in the past are clamped
// to the current time.
func (e *Engine) At(at Time, fn Handler) EventRef {
	if fn == nil {
		panic("sim: At called with nil handler")
	}
	if at < e.now {
		at = e.now
	}
	ev := e.alloc()
	ev.at = at
	ev.seq = e.seq
	ev.vins = e.now
	if e.firing {
		ev.vins2 = e.curVins
		ev.vseq2 = e.curSeq
	} else {
		ev.vins2 = e.now
		ev.vseq2 = ev.seq
	}
	ev.fn = fn
	e.seq++
	e.sched.push(ev)
	e.live++
	return EventRef{ev: ev, gen: ev.gen}
}

// AtPinned runs fn at the given absolute instant with an explicitly pinned
// equal-instant position: vins is the instant an equivalent event-driven
// insertion would have happened at, and (vins2, vseq2) that insertion's
// context (see eventLess). netsim's fused links and wireless's fused air
// transmit use it to schedule a delivery at Send time that sorts exactly
// where the classic txDone-then-deliver chain would have placed it. Instants in the past are
// clamped to the current time, and the pin components are clamped to stay
// internally consistent (vins <= at, vins2 <= vins).
func (e *Engine) AtPinned(at, vins, vins2 Time, vseq2 uint64, fn Handler) EventRef {
	if fn == nil {
		panic("sim: AtPinned called with nil handler")
	}
	if at < e.now {
		at = e.now
	}
	if vins > at {
		vins = at
	}
	if vins2 > vins {
		vins2 = vins
	}
	ev := e.alloc()
	ev.at = at
	ev.seq = e.seq
	ev.vins = vins
	ev.vins2 = vins2
	ev.vseq2 = vseq2
	ev.fn = fn
	e.seq++
	e.sched.push(ev)
	e.live++
	return EventRef{ev: ev, gen: ev.gen}
}

// FiringKey returns the equal-instant ordering key (vins, vins2, vseq2,
// seq) of the event whose handler is currently running, and whether a
// handler is running at all. Analytic fast paths compare pending phantom
// events against this key to decide whether the event-driven equivalent
// would already have fired at the current instant.
func (e *Engine) FiringKey() (vins, vins2 Time, vseq2, seq uint64, firing bool) {
	return e.curVins, e.curVins2, e.curVseq2, e.curSeq, e.firing
}

// NextSeq returns the sequence number the next scheduled event will be
// assigned. Analytic fast paths snapshot it to reproduce the sequence slot
// an equivalent event-driven insertion would have consumed at this point.
func (e *Engine) NextSeq() uint64 { return e.seq }

// Cancel prevents a scheduled event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op: a fired event stays
// "fired", not "cancelled" (see EventRef.Cancelled). The queue slot is
// deleted lazily: it is marked and skipped on pop, and bulk-compacted once
// cancelled events dominate the queue, so Cancel itself is O(1).
func (e *Engine) Cancel(ref EventRef) {
	ev := ref.ev
	if ev == nil || ev.gen != ref.gen || ev.fired || ev.cancel {
		return
	}
	ev.cancel = true
	e.live--
	e.lazy++
	if e.lazy >= compactMin && e.lazy*2 > e.sched.size() {
		e.lazy = 0
		e.sched.sweep(e.recycleFn)
	}
}

// Stop makes the current Run call return after the in-flight event handler
// completes. Calling Stop while no Run is in progress is not lost: the
// pending stop is honored (and consumed) by the next Run call, which
// returns ErrStopped without processing any events.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the single earliest pending event and advances the clock to its
// instant. It reports whether an event fired.
func (e *Engine) Step() bool {
	for {
		ev := e.sched.pop()
		if ev == nil {
			return false
		}
		if ev.cancel {
			if e.lazy > 0 {
				e.lazy--
			}
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		e.processed++
		e.live--
		ev.fired = true
		fn := ev.fn
		e.firing = true
		e.curVins, e.curVins2, e.curVseq2, e.curSeq = ev.vins, ev.vins2, ev.vseq2, ev.seq
		fn()
		e.firing = false
		e.recycle(ev)
		return true
	}
}

// Run processes events until the queue is empty or the clock would pass the
// horizon. Events scheduled exactly at the horizon still fire. It returns
// ErrStopped if Stop was called, otherwise nil. A Stop issued before Run
// (including one left over from a handler that fired after its Run call
// already returned) is honored immediately: Run consumes it and returns
// ErrStopped without firing any event, so a stop is never silently lost.
func (e *Engine) Run(until Time) error {
	for {
		if e.stopped {
			e.stopped = false
			return ErrStopped
		}
		next := e.sched.peek()
		if next == nil {
			break
		}
		if next.cancel {
			e.sched.pop()
			if e.lazy > 0 {
				e.lazy--
			}
			e.recycle(next)
			continue
		}
		if next.at > until {
			// Leave the event queued; advance the clock to the horizon so
			// Now() reflects how far the simulation progressed.
			e.now = until
			return nil
		}
		e.Step()
	}
	if until != MaxTime && e.now < until {
		e.now = until
	}
	return nil
}

// RunAll processes events until the queue drains or Stop is called.
func (e *Engine) RunAll() error { return e.Run(MaxTime) }

// NextAt returns the instant of the earliest live pending event, without
// firing it. Cancelled events encountered at the head of the queue are
// collected on the way (they would be skipped by Run anyway), so the
// reported instant is exact, not an underestimate. The second result is
// false when no live event is queued. Conservative parallel runners use
// this to compute the global epoch horizon.
func (e *Engine) NextAt() (Time, bool) {
	for {
		next := e.sched.peek()
		if next == nil {
			return 0, false
		}
		if next.cancel {
			e.sched.pop()
			if e.lazy > 0 {
				e.lazy--
			}
			e.recycle(next)
			continue
		}
		return next.at, true
	}
}

// Reset returns the engine to its initial state — clock at zero, empty
// queue, sequence counter rewound — while keeping the event free list and
// queue capacity, so a worker can run many simulation replicas without
// re-paying allocation warm-up. Events still queued are recycled as
// cancelled; refs into the previous run become stale and report their own
// event's fate per the EventRef contract. Because the sequence counter
// restarts at zero, a reset engine schedules events in exactly the order a
// fresh engine would: replica results are identical either way.
func (e *Engine) Reset() {
	e.sched.reset(e.recycleFn)
	e.now = 0
	e.seq = 0
	e.processed = 0
	e.stopped = false
	e.live = 0
	e.lazy = 0
	e.firing = false
}
