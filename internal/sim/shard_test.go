package sim

import (
	"fmt"
	"testing"
)

func TestNextAtSkipsCancelledHeads(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextAt(); ok {
		t.Fatal("NextAt on empty engine reported an event")
	}
	first := e.At(5, func() {})
	e.At(9, func() {})
	if at, ok := e.NextAt(); !ok || at != 5 {
		t.Fatalf("NextAt = %v/%t, want 5/true", at, ok)
	}
	e.Cancel(first)
	if at, ok := e.NextAt(); !ok || at != 9 {
		t.Fatalf("NextAt after cancel = %v/%t, want 9/true", at, ok)
	}
	// The cancelled head was collected, not merely skipped.
	if e.sched.size() != 1 {
		t.Fatalf("queue size = %d, want 1 (cancelled head recycled)", e.sched.size())
	}
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if _, ok := e.NextAt(); ok {
		t.Fatal("NextAt after drain reported an event")
	}
}

// tickTrace schedules a self-rechaining tick on an engine and records each
// firing as "instant@engine" so runs can be compared byte-for-byte.
func tickTrace(e *Engine, name string, period, stop Time, out *[]string) {
	var tick func()
	tick = func() {
		*out = append(*out, fmt.Sprintf("%d@%s", e.Now(), name))
		if e.Now()+period <= stop {
			e.Schedule(period, tick)
		}
	}
	e.At(0, tick)
}

func shardedTickTrace(t *testing.T, workers int) [][]string {
	t.Helper()
	engines := []*Engine{NewEngine(), NewEngine(), NewCalendarEngine()}
	traces := make([][]string, len(engines))
	periods := []Time{7, 11, 13}
	for i, e := range engines {
		tickTrace(e, fmt.Sprintf("s%d", i), periods[i], 500, &traces[i])
	}
	g := NewShardGroup(engines, 10, workers)
	if err := g.Run(500); err != nil {
		t.Fatalf("Run(workers=%d): %v", workers, err)
	}
	for _, e := range engines {
		if e.Now() != 500 {
			t.Fatalf("shard clock = %v, want 500", e.Now())
		}
	}
	return traces
}

func TestShardGroupIndependentOfWorkerCount(t *testing.T) {
	// Independent shards (no exchange): every worker count must produce the
	// identical per-shard firing trace, and that trace must equal running
	// each engine alone.
	ref := shardedTickTrace(t, 1)
	for _, workers := range []int{2, 3, 8} {
		got := shardedTickTrace(t, workers)
		for i := range ref {
			if fmt.Sprint(got[i]) != fmt.Sprint(ref[i]) {
				t.Fatalf("workers=%d shard %d trace diverged:\n got %v\nwant %v", workers, i, got[i], ref[i])
			}
		}
	}
	var solo []string
	e := NewEngine()
	tickTrace(e, "s0", 7, 500, &solo)
	if err := e.Run(500); err != nil {
		t.Fatalf("solo Run: %v", err)
	}
	if fmt.Sprint(solo) != fmt.Sprint(ref[0]) {
		t.Fatalf("sharded shard 0 diverged from solo engine:\n got %v\nwant %v", ref[0], solo)
	}
}

func TestShardGroupExchangeRespectsLookahead(t *testing.T) {
	// Shard 0 emits a message every 10 units; the exchange migrates each
	// into shard 1 with +lookahead latency. The conservative protocol must
	// deliver every message at exactly its arrival instant.
	const lookahead = Time(10)
	a, b := NewEngine(), NewEngine()

	type msg struct {
		at Time
	}
	var outbox []msg
	var arrivals []Time

	var emit func()
	emit = func() {
		outbox = append(outbox, msg{at: a.Now() + lookahead})
		if a.Now() < 200 {
			a.Schedule(10, emit)
		}
	}
	a.At(0, emit)

	exchange := func() {
		for _, m := range outbox {
			at := m.at
			b.At(at, func() {
				if b.Now() != at {
					t.Errorf("arrival fired at %v, want %v", b.Now(), at)
				}
				arrivals = append(arrivals, b.Now())
			})
		}
		outbox = outbox[:0]
	}

	g := NewShardGroup([]*Engine{a, b}, lookahead, 2)
	g.SetExchange(exchange)
	if err := g.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(arrivals) != 21 {
		t.Fatalf("arrivals = %d, want 21", len(arrivals))
	}
	for i, at := range arrivals {
		if want := Time(10*i) + lookahead; at != want {
			t.Fatalf("arrival %d at %v, want %v", i, at, want)
		}
	}
}

func TestShardGroupStopPropagates(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	fired := 0
	b.At(5, func() { fired++ })
	a.At(1, func() { a.Stop() })
	a.At(50, func() { fired++ })
	g := NewShardGroup([]*Engine{a, b}, 10, 2)
	if err := g.Run(100); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	// The epoch containing the stop still completes on the other shard.
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (b's event ran, a's later event did not)", fired)
	}
}

func TestShardGroupHorizonAdvancesIdleClocks(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	a.At(3, func() {})
	g := NewShardGroup([]*Engine{a, b}, 5, 1)
	if err := g.Run(40); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.Now() != 40 || b.Now() != 40 {
		t.Fatalf("clocks = %v/%v, want 40/40", a.Now(), b.Now())
	}
	// Events beyond the horizon stay queued for a later Run.
	ran := false
	a.At(60, func() { ran = true })
	if err := g.Run(80); err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if !ran {
		t.Fatal("event scheduled past the first horizon never fired")
	}
}

func TestShardGroupSingleShardIsSerial(t *testing.T) {
	e := NewEngine()
	var trace []string
	tickTrace(e, "solo", 7, 200, &trace)
	g := NewShardGroup([]*Engine{e}, 10, 4)
	if err := g.Run(200); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var want []string
	ref := NewEngine()
	tickTrace(ref, "solo", 7, 200, &want)
	if err := ref.Run(200); err != nil {
		t.Fatalf("ref Run: %v", err)
	}
	if fmt.Sprint(trace) != fmt.Sprint(want) {
		t.Fatalf("single-shard group diverged from plain engine:\n got %v\nwant %v", trace, want)
	}
}
