package sim

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestNextAtSkipsCancelledHeads(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextAt(); ok {
		t.Fatal("NextAt on empty engine reported an event")
	}
	first := e.At(5, func() {})
	e.At(9, func() {})
	if at, ok := e.NextAt(); !ok || at != 5 {
		t.Fatalf("NextAt = %v/%t, want 5/true", at, ok)
	}
	e.Cancel(first)
	if at, ok := e.NextAt(); !ok || at != 9 {
		t.Fatalf("NextAt after cancel = %v/%t, want 9/true", at, ok)
	}
	// The cancelled head was collected, not merely skipped.
	if e.sched.size() != 1 {
		t.Fatalf("queue size = %d, want 1 (cancelled head recycled)", e.sched.size())
	}
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if _, ok := e.NextAt(); ok {
		t.Fatal("NextAt after drain reported an event")
	}
}

// tickTrace schedules a self-rechaining tick on an engine and records each
// firing as "instant@engine" so runs can be compared byte-for-byte.
func tickTrace(e *Engine, name string, period, stop Time, out *[]string) {
	var tick func()
	tick = func() {
		*out = append(*out, fmt.Sprintf("%d@%s", e.Now(), name))
		if e.Now()+period <= stop {
			e.Schedule(period, tick)
		}
	}
	e.At(0, tick)
}

func shardedTickTrace(t *testing.T, workers int) [][]string {
	t.Helper()
	engines := []*Engine{NewEngine(), NewEngine(), NewCalendarEngine()}
	traces := make([][]string, len(engines))
	periods := []Time{7, 11, 13}
	for i, e := range engines {
		tickTrace(e, fmt.Sprintf("s%d", i), periods[i], 500, &traces[i])
	}
	g := NewShardGroup(engines, 10, workers)
	if err := g.Run(500); err != nil {
		t.Fatalf("Run(workers=%d): %v", workers, err)
	}
	for _, e := range engines {
		if e.Now() != 500 {
			t.Fatalf("shard clock = %v, want 500", e.Now())
		}
	}
	return traces
}

func TestShardGroupIndependentOfWorkerCount(t *testing.T) {
	// Independent shards (no exchange): every worker count must produce the
	// identical per-shard firing trace, and that trace must equal running
	// each engine alone.
	ref := shardedTickTrace(t, 1)
	for _, workers := range []int{2, 3, 8} {
		got := shardedTickTrace(t, workers)
		for i := range ref {
			if fmt.Sprint(got[i]) != fmt.Sprint(ref[i]) {
				t.Fatalf("workers=%d shard %d trace diverged:\n got %v\nwant %v", workers, i, got[i], ref[i])
			}
		}
	}
	var solo []string
	e := NewEngine()
	tickTrace(e, "s0", 7, 500, &solo)
	if err := e.Run(500); err != nil {
		t.Fatalf("solo Run: %v", err)
	}
	if fmt.Sprint(solo) != fmt.Sprint(ref[0]) {
		t.Fatalf("sharded shard 0 diverged from solo engine:\n got %v\nwant %v", ref[0], solo)
	}
}

func TestShardGroupExchangeRespectsLookahead(t *testing.T) {
	// Shard 0 emits a message every 10 units; the exchange migrates each
	// into shard 1 with +lookahead latency. The conservative protocol must
	// deliver every message at exactly its arrival instant.
	const lookahead = Time(10)
	a, b := NewEngine(), NewEngine()

	type msg struct {
		at Time
	}
	var outbox []msg
	var arrivals []Time

	var emit func()
	emit = func() {
		outbox = append(outbox, msg{at: a.Now() + lookahead})
		if a.Now() < 200 {
			a.Schedule(10, emit)
		}
	}
	a.At(0, emit)

	exchange := func() {
		for _, m := range outbox {
			at := m.at
			b.At(at, func() {
				if b.Now() != at {
					t.Errorf("arrival fired at %v, want %v", b.Now(), at)
				}
				arrivals = append(arrivals, b.Now())
			})
		}
		outbox = outbox[:0]
	}

	g := NewShardGroup([]*Engine{a, b}, lookahead, 2)
	g.SetExchange(exchange)
	if err := g.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(arrivals) != 21 {
		t.Fatalf("arrivals = %d, want 21", len(arrivals))
	}
	for i, at := range arrivals {
		if want := Time(10*i) + lookahead; at != want {
			t.Fatalf("arrival %d at %v, want %v", i, at, want)
		}
	}
}

func TestShardGroupStopPropagates(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	fired := 0
	b.At(5, func() { fired++ })
	a.At(1, func() { a.Stop() })
	a.At(50, func() { fired++ })
	g := NewShardGroup([]*Engine{a, b}, 10, 2)
	if err := g.Run(100); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	// The epoch containing the stop still completes on the other shard.
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (b's event ran, a's later event did not)", fired)
	}
}

func TestShardGroupHorizonAdvancesIdleClocks(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	a.At(3, func() {})
	g := NewShardGroup([]*Engine{a, b}, 5, 1)
	if err := g.Run(40); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.Now() != 40 || b.Now() != 40 {
		t.Fatalf("clocks = %v/%v, want 40/40", a.Now(), b.Now())
	}
	// Events beyond the horizon stay queued for a later Run.
	ran := false
	a.At(60, func() { ran = true })
	if err := g.Run(80); err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if !ran {
		t.Fatal("event scheduled past the first horizon never fired")
	}
}

func TestShardGroupSingleShardIsSerial(t *testing.T) {
	e := NewEngine()
	var trace []string
	tickTrace(e, "solo", 7, 200, &trace)
	g := NewShardGroup([]*Engine{e}, 10, 4)
	if err := g.Run(200); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var want []string
	ref := NewEngine()
	tickTrace(ref, "solo", 7, 200, &want)
	if err := ref.Run(200); err != nil {
		t.Fatalf("ref Run: %v", err)
	}
	if fmt.Sprint(trace) != fmt.Sprint(want) {
		t.Fatalf("single-shard group diverged from plain engine:\n got %v\nwant %v", trace, want)
	}
}

// testExchange is a minimal cross-shard mailbox mirroring the structure of
// netsim.ShardExchange: per-sender outboxes parked mid-round, a shared
// atomic dirty counter as the pending oracle, and an ordered
// single-threaded flush at the barrier.
type testExchange struct {
	boxes   [][]testMsg
	dirty   []bool
	pending atomic.Int64
}

type testMsg struct {
	to *Engine
	at Time
	fn Handler
}

func newTestExchange(shards int) *testExchange {
	return &testExchange{boxes: make([][]testMsg, shards), dirty: make([]bool, shards)}
}

// send parks a message from the given shard. It runs on the sending
// shard's goroutine mid-round, touching only that shard's outbox plus the
// atomic counter — the same discipline as xPort.park.
func (x *testExchange) send(from int, to *Engine, at Time, fn Handler) {
	if !x.dirty[from] {
		x.dirty[from] = true
		x.pending.Add(1)
	}
	x.boxes[from] = append(x.boxes[from], testMsg{to: to, at: at, fn: fn})
}

func (x *testExchange) flush() {
	if x.pending.Load() == 0 {
		return
	}
	x.pending.Store(0)
	for i := range x.boxes {
		if !x.dirty[i] {
			continue
		}
		x.dirty[i] = false
		for _, m := range x.boxes[i] {
			m.to.At(m.at, m.fn)
		}
		x.boxes[i] = x.boxes[i][:0]
	}
}

func (x *testExchange) Pending() bool { return x.pending.Load() != 0 }

// relayRun drives a 3-shard ping→relay→pong chain with a busy-then-idle
// background shard: shard 0 pings shard 1 every 100 units, shard 1 relays
// each ping to shard 2 (the bounce that bounds solo-round widening), and
// shard 2 ticks densely early on, then goes quiet. Returns the per-shard
// traces and the group's stats.
func relayRun(t *testing.T, adaptive, oracle bool, workers int) ([][]string, ShardStats) {
	t.Helper()
	const L = Time(10)
	engines := []*Engine{NewEngine(), NewEngine(), NewEngine()}
	x := newTestExchange(3)
	traces := make([][]string, 3)
	rec := func(i int, tag string) {
		traces[i] = append(traces[i], fmt.Sprintf("%d@%s", engines[i].Now(), tag))
	}
	var ping func()
	ping = func() {
		rec(0, "ping")
		x.send(0, engines[1], engines[0].Now()+L, func() {
			rec(1, "relay")
			x.send(1, engines[2], engines[1].Now()+L, func() { rec(2, "pong") })
		})
		if engines[0].Now() < 1000 {
			engines[0].Schedule(100, ping)
		}
	}
	engines[0].At(0, ping)
	tickTrace(engines[2], "bg", 7, 60, &traces[2])

	g := NewShardGroup(engines, L, workers)
	g.SetExchange(x.flush)
	if oracle {
		g.SetExchangePending(x.Pending)
	}
	g.SetAdaptive(adaptive)
	if err := g.Run(2000); err != nil {
		t.Fatalf("Run(adaptive=%t oracle=%t workers=%d): %v", adaptive, oracle, workers, err)
	}
	return traces, g.Stats()
}

func TestShardGroupAdaptiveMatchesFixed(t *testing.T) {
	// The differential golden at the sim level: the adaptive protocol — with
	// and without the pending oracle, at every worker count — must produce
	// the identical per-shard traces as the fixed-width protocol.
	refTraces, refStats := relayRun(t, false, false, 1)
	if n := len(refTraces[2]); n == 0 {
		t.Fatal("no pongs reached shard 2")
	}
	var adaptiveStats ShardStats
	for _, oracle := range []bool{false, true} {
		for _, workers := range []int{1, 2, 3} {
			got, stats := relayRun(t, true, oracle, workers)
			for i := range refTraces {
				if fmt.Sprint(got[i]) != fmt.Sprint(refTraces[i]) {
					t.Fatalf("oracle=%t workers=%d shard %d diverged:\n got %v\nwant %v",
						oracle, workers, i, got[i], refTraces[i])
				}
			}
			if oracle && workers == 1 {
				adaptiveStats = stats
			}
		}
	}
	// The whole point: the sparse phase collapses. Fewer synchronized
	// rounds, some solo rounds, some elided dispatches.
	if adaptiveStats.BarrierRounds >= refStats.BarrierRounds {
		t.Fatalf("adaptive barrier rounds %d not below fixed %d", adaptiveStats.BarrierRounds, refStats.BarrierRounds)
	}
	if adaptiveStats.SoloRounds == 0 || adaptiveStats.ElidedDispatches == 0 {
		t.Fatalf("adaptive stats %+v: expected solo rounds and elided dispatches", adaptiveStats)
	}
	if refStats.SoloRounds != 0 || refStats.ElidedDispatches != 0 {
		t.Fatalf("fixed stats %+v: fixed mode must dispatch every shard every round", refStats)
	}
}

func TestShardGroupStatsWorkerIndependent(t *testing.T) {
	_, ref := relayRun(t, true, true, 1)
	for _, workers := range []int{2, 3} {
		if _, got := relayRun(t, true, true, workers); got != ref {
			t.Fatalf("stats diverged between 1 and %d workers:\n got %+v\nwant %+v", workers, got, ref)
		}
	}
}

func TestShardGroupSoloWideningTightensOnSend(t *testing.T) {
	// Shard 0 fires dense local events 0..100 and parks one cross send at
	// instant 50 (arrival 60 on shard 1, which is otherwise empty). With the
	// oracle the first round is solo and initially unbounded (no foreign
	// event exists), so the tightening on the parked send is the only thing
	// keeping the arrival timely.
	const L = Time(10)
	a, b := NewEngine(), NewEngine()
	x := newTestExchange(2)
	for i := Time(0); i <= 100; i++ {
		at := i
		a.At(at, func() {
			if at == 50 {
				x.send(0, b, a.Now()+L, func() {
					if b.Now() != 60 {
						t.Errorf("arrival fired at %v, want 60", b.Now())
					}
				})
			}
		})
	}
	g := NewShardGroup([]*Engine{a, b}, L, 1)
	g.SetExchange(x.flush)
	g.SetExchangePending(x.Pending)
	if err := g.Run(200); err != nil {
		t.Fatalf("Run: %v", err)
	}
	stats := g.Stats()
	if stats.SoloRounds == 0 {
		t.Fatalf("stats %+v: expected solo rounds", stats)
	}
	// 101 dense events under fixed L=10 epochs would cost ~11 rounds; the
	// adaptive run needs only a handful (solo to 69, deliver, resume).
	if stats.Rounds > 6 {
		t.Fatalf("adaptive run used %d rounds for a workload fixed mode covers in ~11", stats.Rounds)
	}
	if a.Now() != 200 || b.Now() != 200 {
		t.Fatalf("clocks = %v/%v, want 200/200", a.Now(), b.Now())
	}
}

func TestShardGroupStopInSoloRound(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	x := newTestExchange(2)
	fired := 0
	a.At(1, func() { a.Stop() })
	a.At(50, func() { fired++ })
	g := NewShardGroup([]*Engine{a, b}, 10, 1)
	g.SetExchange(x.flush)
	g.SetExchangePending(x.Pending)
	if err := g.Run(100); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if fired != 0 {
		t.Fatal("event after the stop fired")
	}
	if g.Stats().SoloRounds == 0 {
		t.Fatalf("stats %+v: the stop round should have been solo (shard 1 is empty)", g.Stats())
	}
}

func TestShardGroupRunAfterError(t *testing.T) {
	// A failed Run must not leave a stale error behind: with elision a shard
	// can sit undispatched for whole rounds, so errs are cleared per Run and
	// scanned only over dispatched shards.
	a, b := NewEngine(), NewEngine()
	b.At(5, func() { b.Stop() })
	a.At(3, func() {})
	g := NewShardGroup([]*Engine{a, b}, 10, 2)
	if err := g.Run(100); err != ErrStopped {
		t.Fatalf("first Run = %v, want ErrStopped", err)
	}
	fired := 0
	a.At(200, func() { fired++ })
	b.At(210, func() { fired++ })
	if err := g.Run(300); err != nil {
		t.Fatalf("Run after error = %v, want nil (stale error resurfaced?)", err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 after recovery", fired)
	}
	if a.Now() != 300 || b.Now() != 300 {
		t.Fatalf("clocks = %v/%v, want 300/300", a.Now(), b.Now())
	}
}

// BenchmarkEpochBarrier pins the synchronization cost of the two epoch
// protocols on a sparse relay workload (the regime the adaptive path
// exists for). The custom metrics expose the round economics: fixed mode
// pays a synchronized round per event cluster, adaptive mode turns almost
// all of them into barrier-free solo rounds.
func BenchmarkEpochBarrier(b *testing.B) {
	run := func(adaptive bool) func(b *testing.B) {
		return func(b *testing.B) {
			var rounds, syncs uint64
			for i := 0; i < b.N; i++ {
				const L = Time(10)
				engines := []*Engine{NewEngine(), NewEngine(), NewEngine(), NewEngine()}
				x := newTestExchange(len(engines))
				// Each shard ticks every 997 units (mutually offset), and
				// every 16th tick sends to the next shard: quiet stretches
				// dominated by local work, punctuated by rare cross traffic.
				for s := range engines {
					s := s
					e := engines[s]
					peer := engines[(s+1)%len(engines)]
					n := 0
					var tick func()
					tick = func() {
						n++
						if n%16 == 0 {
							x.send(s, peer, e.Now()+L, func() {})
						}
						if e.Now() < 200_000 {
							e.Schedule(997, tick)
						}
					}
					e.At(Time(s)*211, tick)
				}
				g := NewShardGroup(engines, L, 1)
				g.SetExchange(x.flush)
				g.SetExchangePending(x.Pending)
				g.SetAdaptive(adaptive)
				if err := g.RunAll(); err != nil {
					b.Fatal(err)
				}
				st := g.Stats()
				rounds += st.Rounds
				syncs += st.BarrierRounds
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
			b.ReportMetric(float64(syncs)/float64(b.N), "syncs/op")
		}
	}
	b.Run("fixed", run(false))
	b.Run("adaptive", run(true))
}
