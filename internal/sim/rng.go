package sim

import "math/rand"

// RNG is the simulator's deterministic random source. All stochastic choices
// (jitter, start phases) flow through one seeded RNG so that runs with the
// same seed are identical.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a value in [0, n). n must be positive.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative 63-bit value.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Jitter returns a time in [0, max). A non-positive max yields zero.
func (g *RNG) Jitter(max Time) Time {
	if max <= 0 {
		return 0
	}
	return Time(g.r.Int63n(int64(max)))
}

// Uniform returns a time uniformly distributed in [lo, hi). If hi <= lo it
// returns lo.
func (g *RNG) Uniform(lo, hi Time) Time {
	if hi <= lo {
		return lo
	}
	return lo + g.Jitter(hi-lo)
}
