package sim

// calendarQueue is an ns-2-style calendar queue (Brown, CACM 1988): events
// hash into "day" buckets by at/width modulo the bucket count, each bucket
// an intrusive singly-linked list kept sorted by eventLess. A dequeue scans
// at most one "year" of buckets from the last dequeue position looking for
// a head event inside its current-year window, falling back to a direct
// search across all bucket heads when the population is sparse or far in
// the future. With the automatic resizing below keeping the load factor
// between 0.5 and 2 events per bucket, push and pop are O(1) amortized for
// the well-spread event populations discrete-event network simulations
// produce.
//
// Buckets are linked lists rather than sorted slices on purpose: an insert
// or a pop touches at most two pointers, where shifting a sorted []*event
// pays a bulk write barrier over every moved pointer — on packet-dense
// workloads that barrier traffic (runtime.typedslicecopy → findObject) was
// the single largest line in the CPU profile.
//
// Ordering is exactly eventLess — ties land in the same
// bucket (same at ⇒ same at/width) where the sorted insert keeps them in
// seq order — so a calendar engine is bit-for-bit interchangeable with the
// heap engine.
type calendarQueue struct {
	buckets []*event // head of each bucket's sorted intrusive list
	tails   []*event // last node of each bucket: O(1) append for ties and
	// near-sorted arrivals, the dominant pattern in a simulation
	width Time // bucket ("day") width in virtual time units
	n     int  // total queued events, including lazily-cancelled ones

	// Scan state: the last committed dequeue position. lastBucket is the
	// bucket the scan resumes from and bucketTop is the end of that
	// bucket's window in the scan year. Invariant: no queued event orders
	// before this position, so the year scan never misses the minimum.
	lastBucket int
	bucketTop  Time
	lastAt     Time

	// One-entry peek cache so Run's peek-then-pop pattern scans once.
	cur       *event
	curBucket int

	// ops counts pushes and pops since the last resize. A skew-triggered
	// width resample (see push) only fires once ops exceeds n, which keeps
	// the O(n) rebuild amortized O(1) per operation.
	ops int
}

const (
	calMinBuckets   = 4
	calInitialWidth = Millisecond
	// calSample is how many head events the resize width heuristic
	// averages over (Brown's rule of thumb uses up to 25).
	calSample = 25
	// calMaxChain is the insert walk length past which the bucket is
	// considered skewed and the width resampled. The resize policy caps
	// the mean load at 2 events per bucket, so a chain this long means
	// the width no longer matches the population's spacing.
	calMaxChain = 8
)

func newCalendarQueue() *calendarQueue {
	c := &calendarQueue{
		buckets: make([]*event, calMinBuckets),
		tails:   make([]*event, calMinBuckets),
		width:   calInitialWidth,
	}
	c.bucketTop = c.width
	return c
}

func (c *calendarQueue) size() int { return c.n }

func (c *calendarQueue) bucketOf(at Time) int {
	return int(uint64(at) / uint64(c.width) % uint64(len(c.buckets)))
}

// setScan commits the scan position to ev's bucket window.
func (c *calendarQueue) setScan(ev *event) {
	c.lastAt = ev.at
	c.lastBucket = c.bucketOf(ev.at)
	start := ev.at / c.width * c.width
	if start > MaxTime-c.width {
		c.bucketTop = MaxTime
	} else {
		c.bucketTop = start + c.width
	}
}

// insert places ev into its bucket, keeping the list sorted by eventLess,
// and reports how many list nodes the walk passed (the skew signal).
func (c *calendarQueue) insert(ev *event) int {
	b := c.bucketOf(ev.at)
	head := c.buckets[b]
	if head == nil {
		ev.next = nil
		c.buckets[b] = ev
		c.tails[b] = ev
		return 0
	}
	if tail := c.tails[b]; !eventLess(ev, tail) {
		ev.next = nil
		tail.next = ev
		c.tails[b] = ev
		return 0
	}
	if eventLess(ev, head) {
		ev.next = head
		c.buckets[b] = ev
		return 0
	}
	// ev orders strictly before the tail, so cur.next is never nil here
	// and the walk cannot change the tail.
	depth := 1
	cur := head
	for !eventLess(ev, cur.next) {
		cur = cur.next
		depth++
	}
	ev.next = cur.next
	cur.next = ev
	return depth
}

func (c *calendarQueue) push(ev *event) {
	if c.n+1 > 2*len(c.buckets) {
		c.resize(2 * len(c.buckets))
	}
	depth := c.insert(ev)
	c.n++
	c.ops++
	if c.n == 1 || ev.at < c.lastAt {
		// The new event orders before the committed scan position; rewind
		// so the next scan starts at (or before) it.
		c.setScan(ev)
	}
	if c.cur != nil && eventLess(ev, c.cur) {
		c.cur = nil
	}
	if depth > calMaxChain && c.ops > c.n {
		// The width has gone stale for the current event spacing (e.g. a
		// run that opens with seconds-apart timers and later turns packet-
		// dense): rebuild at the same size to resample it from the head.
		c.resize(len(c.buckets))
	}
}

// locate finds the bucket holding the minimum event, caching the result in
// cur/curBucket. It scans with local state only; the committed scan
// position moves exclusively on pop, so a later push of a smaller event
// can still be found.
func (c *calendarQueue) locate() int {
	if c.n == 0 {
		return -1
	}
	if c.cur != nil {
		return c.curBucket
	}
	nb := len(c.buckets)
	i, top := c.lastBucket, c.bucketTop
	for k := 0; k < nb; k++ {
		if ev := c.buckets[i]; ev != nil && ev.at < top {
			c.cur, c.curBucket = ev, i
			return i
		}
		i++
		if i == nb {
			i = 0
		}
		if top > MaxTime-c.width {
			break // window end would overflow; direct search below
		}
		top += c.width
	}
	// Sparse or far-future population: direct search over bucket heads.
	var best *event
	bi := -1
	for j, ev := range c.buckets {
		if ev != nil && (best == nil || eventLess(ev, best)) {
			best, bi = ev, j
		}
	}
	c.cur, c.curBucket = best, bi
	return bi
}

func (c *calendarQueue) peek() *event {
	if c.locate() < 0 {
		return nil
	}
	return c.cur
}

func (c *calendarQueue) pop() *event {
	b := c.locate()
	if b < 0 {
		return nil
	}
	ev := c.buckets[b]
	c.buckets[b] = ev.next
	if ev.next == nil {
		c.tails[b] = nil
	}
	ev.next = nil
	c.n--
	c.ops++
	c.cur = nil
	c.setScan(ev)
	if c.n < len(c.buckets)/2 && len(c.buckets) > calMinBuckets {
		c.resize(len(c.buckets) / 2)
	}
	return ev
}

// resize rebuilds the calendar with nb buckets and a width of three times
// the mean inter-event gap among the earliest calSample events (Brown's
// head-sampling rule), then rewinds the scan position to the minimum.
// Sampling at the head matters: a simulation's population mixes dense
// near-term packet events with a few multi-second timers, and a width
// derived from the full min–max spread would dump the whole dense region
// into one bucket, degrading insert to a long list walk.
func (c *calendarQueue) resize(nb int) {
	if nb < calMinBuckets {
		nb = calMinBuckets
	}
	// Unlink everything into one chain, sampling the head region as we go.
	var chain, best *event
	var sample [calSample]Time
	sn := 0
	for i := range c.buckets {
		for ev := c.buckets[i]; ev != nil; {
			nxt := ev.next
			if best == nil || eventLess(ev, best) {
				best = ev
			}
			if sn < len(sample) || ev.at < sample[sn-1] {
				j := sn
				if j == len(sample) {
					j--
				}
				for j > 0 && ev.at < sample[j-1] {
					sample[j] = sample[j-1]
					j--
				}
				sample[j] = ev.at
				if sn < len(sample) {
					sn++
				}
			}
			ev.next = chain
			chain = ev
			ev = nxt
		}
		c.buckets[i] = nil
		c.tails[i] = nil
	}
	if sn > 1 {
		// Width from the head region's mean gap; on an all-ties sample
		// (gap 0) keep the current width rather than collapsing to 1 ns.
		if w := 3 * (sample[sn-1] - sample[0]) / Time(sn-1); w >= 1 {
			c.width = w
		}
	}
	if nb <= cap(c.buckets) {
		c.buckets = c.buckets[:nb]
		c.tails = c.tails[:nb]
		for i := range c.buckets {
			c.buckets[i] = nil
			c.tails[i] = nil
		}
	} else {
		c.buckets = make([]*event, nb)
		c.tails = make([]*event, nb)
	}
	for ev := chain; ev != nil; {
		nxt := ev.next
		c.insert(ev)
		ev = nxt
	}
	c.ops = 0
	c.cur = nil
	if best != nil {
		c.setScan(best)
	} else {
		c.lastAt, c.lastBucket, c.bucketTop = 0, 0, c.width
	}
}

func (c *calendarQueue) sweep(recycle func(*event)) {
	removed := 0
	for b := range c.buckets {
		var head, tail *event
		for ev := c.buckets[b]; ev != nil; {
			nxt := ev.next
			ev.next = nil
			if ev.cancel {
				recycle(ev)
				removed++
			} else if tail == nil {
				head, tail = ev, ev
			} else {
				tail.next = ev
				tail = ev
			}
			ev = nxt
		}
		c.buckets[b] = head
		c.tails[b] = tail
	}
	c.n -= removed
	c.cur = nil
}

func (c *calendarQueue) reset(recycle func(*event)) {
	for b := range c.buckets {
		for ev := c.buckets[b]; ev != nil; {
			nxt := ev.next
			ev.next = nil
			recycle(ev)
			ev = nxt
		}
		c.buckets[b] = nil
		c.tails[b] = nil
	}
	c.n = 0
	c.cur = nil
	c.ops = 0
	c.lastAt, c.lastBucket, c.bucketTop = 0, 0, c.width
}
