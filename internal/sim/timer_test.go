package sim

import "testing"

func TestTimerFiresOnce(t *testing.T) {
	e := NewEngine()
	count := 0
	tm := NewTimer(e, func() { count++ })
	tm.Reset(Second)
	if !tm.Armed() {
		t.Fatal("timer not armed after Reset")
	}
	if tm.Expires() != Second {
		t.Fatalf("Expires() = %v, want 1s", tm.Expires())
	}
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if count != 1 {
		t.Fatalf("fired %d times, want 1", count)
	}
	if tm.Armed() {
		t.Fatal("timer still armed after firing")
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	count := 0
	tm := NewTimer(e, func() { count++ })
	tm.Reset(Second)
	tm.Stop()
	if tm.Armed() {
		t.Fatal("timer armed after Stop")
	}
	tm.Stop() // idempotent
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if count != 0 {
		t.Fatalf("stopped timer fired %d times", count)
	}
}

func TestTimerResetReplacesPending(t *testing.T) {
	e := NewEngine()
	var firedAt []Time
	tm := NewTimer(e, func() { firedAt = append(firedAt, e.Now()) })
	tm.Reset(Second)
	tm.Reset(3 * Second)
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(firedAt) != 1 || firedAt[0] != 3*Second {
		t.Fatalf("firedAt = %v, want [3s]", firedAt)
	}
}

func TestTimerResetAt(t *testing.T) {
	e := NewEngine()
	var firedAt Time = -1
	tm := NewTimer(e, func() { firedAt = e.Now() })
	e.Schedule(Second, func() { tm.ResetAt(4 * Second) })
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if firedAt != 4*Second {
		t.Fatalf("fired at %v, want 4s", firedAt)
	}
}

func TestTimerResetAtPastClamps(t *testing.T) {
	e := NewEngine()
	var firedAt Time = -1
	tm := NewTimer(e, func() { firedAt = e.Now() })
	e.Schedule(2*Second, func() { tm.ResetAt(Second) })
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if firedAt != 2*Second {
		t.Fatalf("fired at %v, want 2s (clamped)", firedAt)
	}
}

func TestTimerRearmInsideHandler(t *testing.T) {
	e := NewEngine()
	count := 0
	var tm *Timer
	tm = NewTimer(e, func() {
		count++
		if count < 3 {
			tm.Reset(Second)
		}
	})
	tm.Reset(Second)
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if e.Now() != 3*Second {
		t.Fatalf("Now() = %v, want 3s", e.Now())
	}
}

func TestTickerTicksAtPeriod(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	var tk *Ticker
	tk = NewTicker(e, Second, func() {
		ticks = append(ticks, e.Now())
		if len(ticks) == 4 {
			tk.Stop()
		}
	})
	if err := e.Run(100 * Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Time{Second, 2 * Second, 3 * Second, 4 * Second}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTickerAtPhase(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	var tk *Ticker
	tk = NewTicker(e, Second, nil)
	tk.Stop()
	tk = NewTickerAt(e, 250*Millisecond, Second, func() {
		ticks = append(ticks, e.Now())
		if len(ticks) == 3 {
			tk.Stop()
		}
	})
	if err := e.Run(100 * Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Time{250 * Millisecond, 1250 * Millisecond, 2250 * Millisecond}
	for i := range want {
		if i >= len(ticks) || ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestNewTickerPanicsOnBadPeriod(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("NewTicker(0) did not panic")
		}
	}()
	NewTicker(e, 0, func() {})
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGJitterBounds(t *testing.T) {
	g := NewRNG(7)
	for i := 0; i < 1000; i++ {
		j := g.Jitter(10 * Millisecond)
		if j < 0 || j >= 10*Millisecond {
			t.Fatalf("Jitter out of range: %v", j)
		}
	}
	if g.Jitter(0) != 0 {
		t.Fatal("Jitter(0) != 0")
	}
	if g.Jitter(-Second) != 0 {
		t.Fatal("Jitter(negative) != 0")
	}
}

func TestRNGUniform(t *testing.T) {
	g := NewRNG(11)
	lo, hi := Second, 2*Second
	for i := 0; i < 1000; i++ {
		v := g.Uniform(lo, hi)
		if v < lo || v >= hi {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
	if got := g.Uniform(hi, lo); got != hi {
		t.Fatalf("Uniform with hi<=lo = %v, want lo", got)
	}
}
