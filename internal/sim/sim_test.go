package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if got := e.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending() = %d, want 0", got)
	}
}

func TestScheduleAdvancesClock(t *testing.T) {
	e := NewEngine()
	var fired Time
	e.Schedule(5*Millisecond, func() { fired = e.Now() })
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if fired != 5*Millisecond {
		t.Fatalf("event fired at %v, want 5ms", fired)
	}
	if e.Now() != 5*Millisecond {
		t.Fatalf("Now() = %v after run, want 5ms", e.Now())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3*Second, func() { order = append(order, 3) })
	e.Schedule(1*Second, func() { order = append(order, 1) })
	e.Schedule(2*Second, func() { order = append(order, 2) })
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSimultaneousEventsFireFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Second, func() { order = append(order, i) })
	}
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: order = %v", order)
		}
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	e := NewEngine()
	var at Time = -1
	e.Schedule(Second, func() {
		e.Schedule(-5*Second, func() { at = e.Now() })
	})
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if at != Second {
		t.Fatalf("clamped event fired at %v, want 1s", at)
	}
}

func TestAtInPastClampsToNow(t *testing.T) {
	e := NewEngine()
	var at Time = -1
	e.Schedule(2*Second, func() {
		e.At(Second, func() { at = e.Now() })
	})
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if at != 2*Second {
		t.Fatalf("past event fired at %v, want 2s", at)
	}
}

func TestRunHorizonLeavesFutureEvents(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(10*Second, func() { fired = true })
	if err := e.Run(5 * Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if e.Now() != 5*Second {
		t.Fatalf("Now() = %v, want horizon 5s", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	// Continuing past the event fires it.
	if err := e.Run(20 * Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired {
		t.Fatal("event did not fire on second run")
	}
}

func TestEventAtHorizonFires(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(5*Second, func() { fired = true })
	if err := e.Run(5 * Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired {
		t.Fatal("event exactly at horizon did not fire")
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine()
	fired := false
	ref := e.Schedule(Second, func() { fired = true })
	e.Cancel(ref)
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ref.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	e := NewEngine()
	ref := e.Schedule(Second, func() {})
	e.Cancel(ref)
	e.Cancel(ref) // must not panic or corrupt the heap
	other := false
	e.Schedule(2*Second, func() { other = true })
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if !other {
		t.Fatal("unrelated event lost after double cancel")
	}
}

func TestCancelAfterFireReportsFiredNotCancelled(t *testing.T) {
	e := NewEngine()
	fired := false
	ref := e.Schedule(Second, func() { fired = true })
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if !fired {
		t.Fatal("event did not fire")
	}
	if !ref.Fired() {
		t.Fatal("Fired() = false after the event ran")
	}
	// A late Cancel is a no-op: exactly one of fired/cancelled holds.
	e.Cancel(ref)
	if ref.Cancelled() {
		t.Fatal("Cancelled() = true for an event that already fired")
	}
	if !ref.Fired() {
		t.Fatal("late Cancel cleared Fired()")
	}
}

func TestEventCancellingItselfStaysFired(t *testing.T) {
	e := NewEngine()
	var ref EventRef
	ref = e.Schedule(Second, func() {
		// A handler cancelling its own (currently firing) event must not
		// flip it to cancelled.
		e.Cancel(ref)
	})
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if ref.Cancelled() {
		t.Fatal("self-cancel marked a firing event as cancelled")
	}
	if !ref.Fired() {
		t.Fatal("self-cancelled event not marked fired")
	}
}

func TestZeroEventRefIsNeitherFiredNorCancelled(t *testing.T) {
	var ref EventRef
	if ref.Cancelled() || ref.Fired() {
		t.Fatal("zero EventRef claims a state")
	}
}

func TestStopInterruptsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 5; i++ {
		e.Schedule(Time(i)*Second, func() {
			count++
			if count == 2 {
				e.Stop()
			}
		})
	}
	err := e.RunAll()
	if err != ErrStopped {
		t.Fatalf("RunAll = %v, want ErrStopped", err)
	}
	if count != 2 {
		t.Fatalf("processed %d events before stop, want 2", count)
	}
	// Run again resumes.
	if err := e.RunAll(); err != nil {
		t.Fatalf("resume RunAll: %v", err)
	}
	if count != 5 {
		t.Fatalf("processed %d events total, want 5", count)
	}
}

func TestStepFiresOneEvent(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(Second, func() { count++ })
	e.Schedule(2*Second, func() { count++ })
	if !e.Step() {
		t.Fatal("Step returned false with pending events")
	}
	if count != 1 {
		t.Fatalf("count = %d after one step, want 1", count)
	}
	if e.Step(); count != 2 {
		t.Fatalf("count = %d after two steps, want 2", count)
	}
	if e.Step() {
		t.Fatal("Step returned true with empty queue")
	}
}

func TestHandlerMayScheduleMore(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.Schedule(Millisecond, recurse)
		}
	}
	e.Schedule(0, recurse)
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != 99*Millisecond {
		t.Fatalf("Now() = %v, want 99ms", e.Now())
	}
}

func TestProcessedCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(Time(i), func() {})
	}
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if e.Processed() != 7 {
		t.Fatalf("Processed() = %d, want 7", e.Processed())
	}
}

func TestDurationConversion(t *testing.T) {
	if got := Duration(1500 * time.Millisecond); got != 1500*Millisecond {
		t.Fatalf("Duration = %v, want 1.5s", got)
	}
}

func TestTimeFormatting(t *testing.T) {
	tests := []struct {
		give Time
		want string
	}{
		{0, "0.000000s"},
		{1500 * Millisecond, "1.500000s"},
		{Microsecond, "0.000001s"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("(%d).String() = %q, want %q", int64(tt.give), got, tt.want)
		}
	}
}

func TestTimeSecondsMilliseconds(t *testing.T) {
	tm := 2500 * Millisecond
	if got := tm.Seconds(); got != 2.5 {
		t.Errorf("Seconds() = %v, want 2.5", got)
	}
	if got := tm.Milliseconds(); got != 2500 {
		t.Errorf("Milliseconds() = %v, want 2500", got)
	}
}

// Property: however events are scheduled, they fire in non-decreasing time
// order, and equal-time events fire in scheduling order.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) > 200 {
			delays = delays[:200]
		}
		e := NewEngine()
		type firing struct {
			at  Time
			seq int
		}
		var fired []firing
		for i, d := range delays {
			i := i
			at := Time(d) * Millisecond
			e.At(at, func() { fired = append(fired, firing{at: e.Now(), seq: i}) })
		}
		if err := e.RunAll(); err != nil {
			return false
		}
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset of events fires exactly the
// complement.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(delays []uint8, mask []bool) bool {
		if len(delays) > 100 {
			delays = delays[:100]
		}
		e := NewEngine()
		firedSet := make(map[int]bool)
		refs := make([]EventRef, len(delays))
		for i, d := range delays {
			i := i
			refs[i] = e.Schedule(Time(d)*Millisecond, func() { firedSet[i] = true })
		}
		cancelled := make(map[int]bool)
		for i := range delays {
			if i < len(mask) && mask[i] {
				e.Cancel(refs[i])
				cancelled[i] = true
			}
		}
		if err := e.RunAll(); err != nil {
			return false
		}
		for i := range delays {
			if cancelled[i] == firedSet[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStopBeforeRunIsHonored(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(Second, func() { fired = true })
	e.Stop() // issued before Run: must not be silently lost
	if err := e.RunAll(); err != ErrStopped {
		t.Fatalf("RunAll after pre-Run Stop = %v, want ErrStopped", err)
	}
	if fired {
		t.Fatal("event fired despite a pending stop")
	}
	// The stop is consumed: the next Run proceeds normally.
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll after consumed stop: %v", err)
	}
	if !fired {
		t.Fatal("event lost after the stop was consumed")
	}
}

func TestStopBeforeRunEmptyQueue(t *testing.T) {
	e := NewEngine()
	e.Stop()
	if err := e.RunAll(); err != ErrStopped {
		t.Fatalf("RunAll on empty stopped engine = %v, want ErrStopped", err)
	}
	if err := e.RunAll(); err != nil {
		t.Fatalf("second RunAll = %v, want nil", err)
	}
}
