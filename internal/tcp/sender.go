package tcp

import (
	"repro/internal/inet"
	"repro/internal/sim"
	"repro/internal/stats"
)

// SenderConfig parameterizes a Reno sender.
type SenderConfig struct {
	// Src and Dst are the connection endpoints.
	Src, Dst inet.Addr
	// Flow identifies the connection in statistics.
	Flow inet.FlowID
	// Class is stamped on every data segment.
	Class inet.Class
	// MSS is the maximum payload per segment. Zero selects DefaultMSS.
	MSS int
	// MaxWindow caps the congestion window in segments (the receiver's
	// advertised window). Zero selects DefaultMaxWindow.
	MaxWindow int
	// InitialSSThresh in segments. Zero selects DefaultSSThresh.
	InitialSSThresh int
	// Tick is the retransmission-timer granularity (500 ms in most BSD
	// implementations and in the thesis' simulations). Zero selects
	// DefaultTick.
	Tick sim.Time
	// MinRTO floors the retransmission timeout (1 s in most
	// implementations, per the thesis). Zero selects DefaultMinRTO.
	MinRTO sim.Time
	// NewReno enables RFC 6582 partial-ACK recovery: a new ACK that does
	// not cover the whole loss episode retransmits the next hole and
	// stays in fast recovery, so multiple losses in one window cost one
	// recovery instead of one timeout each. Off by default — the thesis
	// simulated classic Reno.
	NewReno bool
	// LimitBytes bounds the application data: the sender stops offering
	// new bytes at the limit (an FTP of a fixed file). Zero means
	// unlimited.
	LimitBytes uint64
}

// Defaults for SenderConfig fields left zero.
const (
	DefaultMSS       = 1460
	DefaultMaxWindow = 64
	DefaultSSThresh  = 32
	DefaultTick      = 500 * sim.Millisecond
	DefaultMinRTO    = 1 * sim.Second
	maxRTO           = 64 * sim.Second
)

func (c *SenderConfig) applyDefaults() {
	if c.MSS == 0 {
		c.MSS = DefaultMSS
	}
	if c.MaxWindow == 0 {
		c.MaxWindow = DefaultMaxWindow
	}
	if c.InitialSSThresh == 0 {
		c.InitialSSThresh = DefaultSSThresh
	}
	if c.Tick == 0 {
		c.Tick = DefaultTick
	}
	if c.MinRTO == 0 {
		c.MinRTO = DefaultMinRTO
	}
}

// Sender is a TCP Reno bulk sender with unlimited application data (FTP).
type Sender struct {
	engine *sim.Engine
	cfg    SenderConfig
	send   func(*inet.Packet)
	newID  func() uint64

	running bool

	sndUna   uint64 // oldest unacknowledged byte
	sndNxt   uint64 // next byte to send
	maxSent  uint64 // highest byte ever sent (detects retransmissions)
	cwnd     float64
	ssthresh float64
	dupAcks  int
	inFR     bool   // fast recovery
	recover  uint64 // sndNxt when the current loss episode began

	// Coarse retransmission timing.
	ticker       *sim.Ticker
	rto          sim.Time
	lastProgress sim.Time
	doneAt       sim.Time
	timeouts     uint64
	fastRetrans  uint64

	// RTT estimation (one timed segment at a time, Karn's rule).
	timedSeq  uint64
	timedAt   sim.Time
	timing    bool
	srtt      sim.Time
	rttvar    sim.Time
	hasSample bool

	// SendTrace records (time, seq) for transmitted data; AckTrace records
	// cumulative ACKs as they return — together the Figure 4.12/4.13
	// curves on the sender side.
	SendTrace stats.SeqTrace
	AckTrace  stats.SeqTrace
}

// NewSender creates a stopped sender. send transmits packets (typically a
// host's Send); newID may be nil.
func NewSender(engine *sim.Engine, cfg SenderConfig, send func(*inet.Packet), newID func() uint64) *Sender {
	cfg.applyDefaults()
	if send == nil {
		panic("tcp: NewSender with nil send")
	}
	return &Sender{
		engine:   engine,
		cfg:      cfg,
		send:     send,
		newID:    newID,
		cwnd:     1,
		ssthresh: float64(cfg.InitialSSThresh),
		rto:      cfg.MinRTO,
	}
}

// Config returns the sender parameters.
func (s *Sender) Config() SenderConfig { return s.cfg }

// Cwnd returns the congestion window in segments.
func (s *Sender) Cwnd() float64 { return s.cwnd }

// SndUna returns the oldest unacknowledged byte.
func (s *Sender) SndUna() uint64 { return s.sndUna }

// SndNxt returns the next new byte to be sent.
func (s *Sender) SndNxt() uint64 { return s.sndNxt }

// Timeouts returns the number of RTO firings.
func (s *Sender) Timeouts() uint64 { return s.timeouts }

// FastRetransmits returns the number of fast retransmit events.
func (s *Sender) FastRetransmits() uint64 { return s.fastRetrans }

// RTO returns the current retransmission timeout.
func (s *Sender) RTO() sim.Time { return s.rto }

// Done reports whether a bounded transfer (LimitBytes) has been fully
// acknowledged. Unlimited senders are never done.
func (s *Sender) Done() bool {
	return s.cfg.LimitBytes > 0 && s.sndUna >= s.cfg.LimitBytes
}

// DoneAt returns when the transfer completed (zero until Done).
func (s *Sender) DoneAt() sim.Time { return s.doneAt }

// Start begins transmission and arms the coarse timer.
func (s *Sender) Start() {
	if s.running {
		return
	}
	s.running = true
	s.lastProgress = s.engine.Now()
	s.ticker = sim.NewTicker(s.engine, s.cfg.Tick, s.tick)
	s.pump()
}

// Stop halts transmission and the timer.
func (s *Sender) Stop() {
	s.running = false
	if s.ticker != nil {
		s.ticker.Stop()
	}
}

// window returns the usable window in bytes.
func (s *Sender) window() uint64 {
	w := s.cwnd
	if max := float64(s.cfg.MaxWindow); w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return uint64(w) * uint64(s.cfg.MSS)
}

// pump sends segments while the window (and the application limit)
// allows.
func (s *Sender) pump() {
	if !s.running {
		return
	}
	for s.sndNxt < s.sndUna+s.window() {
		if s.cfg.LimitBytes > 0 && s.sndNxt >= s.cfg.LimitBytes {
			return
		}
		s.transmit(s.sndNxt)
		s.sndNxt += uint64(s.cfg.MSS)
	}
}

// transmit emits one MSS-sized segment starting at seq. Segments below the
// high-water mark are retransmissions.
func (s *Sender) transmit(seq uint64) {
	now := s.engine.Now()
	retransmit := seq < s.maxSent
	seg := &Segment{Seq: seq, Len: s.cfg.MSS, Retransmit: retransmit}
	if end := seg.End(); end > s.maxSent {
		s.maxSent = end
	}
	pkt := &inet.Packet{
		Src:     s.cfg.Src,
		Dst:     s.cfg.Dst,
		Proto:   inet.ProtoTCP,
		Class:   s.cfg.Class,
		Flow:    s.cfg.Flow,
		Seq:     uint32(seq / uint64(s.cfg.MSS)),
		Size:    s.cfg.MSS + HeaderSize,
		Created: now,
		Payload: seg,
	}
	if s.newID != nil {
		pkt.ID = s.newID()
	}
	s.SendTrace.Record(now, seq)
	if !retransmit && !s.timing {
		s.timing = true
		s.timedSeq = seg.End()
		s.timedAt = now
	}
	if retransmit && s.timing && seq < s.timedSeq {
		s.timing = false // Karn: discard the sample
	}
	s.send(pkt)
}

// HandleAck processes a returning acknowledgement.
func (s *Sender) HandleAck(seg *Segment) {
	if !seg.Ack || !s.running {
		return
	}
	now := s.engine.Now()
	s.AckTrace.Record(now, seg.AckNo)

	if seg.AckNo > s.sndUna {
		s.newAck(seg.AckNo, now)
	} else if seg.AckNo == s.sndUna && s.sndNxt > s.sndUna {
		s.dupAck()
	}
	s.pump()
}

// newAck handles forward progress.
func (s *Sender) newAck(ackNo uint64, now sim.Time) {
	s.sndUna = ackNo
	s.lastProgress = now
	s.dupAcks = 0
	if s.doneAt == 0 && s.Done() {
		s.doneAt = now
		if s.ticker != nil {
			s.ticker.Stop()
		}
	}

	if s.timing && ackNo >= s.timedSeq {
		s.sampleRTT(now - s.timedAt)
		s.timing = false
	}

	if s.inFR {
		if s.cfg.NewReno && ackNo < s.recover {
			// NewReno partial ACK: the episode has more holes; retransmit
			// the next one and stay in recovery.
			s.transmit(ackNo)
			return
		}
		// Recovery complete (or classic Reno: any new ACK ends it).
		s.inFR = false
		s.cwnd = s.ssthresh
		return
	}
	if s.cwnd < s.ssthresh {
		s.cwnd++ // slow start
	} else {
		s.cwnd += 1 / s.cwnd // congestion avoidance
	}
}

// dupAck handles a duplicate acknowledgement.
func (s *Sender) dupAck() {
	s.dupAcks++
	switch {
	case s.inFR:
		s.cwnd++ // window inflation
	case s.dupAcks == 3:
		// Fast retransmit.
		s.fastRetrans++
		flight := float64(s.sndNxt-s.sndUna) / float64(s.cfg.MSS)
		s.ssthresh = flight / 2
		if s.ssthresh < 2 {
			s.ssthresh = 2
		}
		s.recover = s.sndNxt
		s.inFR = true
		s.cwnd = s.ssthresh + 3
		s.transmit(s.sndUna)
	}
}

// tick is the coarse timer: when no progress happened within the RTO, the
// sender times out, collapses the window, and retransmits from sndUna.
func (s *Sender) tick() {
	if s.sndNxt == s.sndUna {
		return // nothing in flight
	}
	now := s.engine.Now()
	if now-s.lastProgress < s.rto {
		return
	}
	s.timeouts++
	flight := float64(s.sndNxt-s.sndUna) / float64(s.cfg.MSS)
	s.ssthresh = flight / 2
	if s.ssthresh < 2 {
		s.ssthresh = 2
	}
	s.cwnd = 1
	s.inFR = false
	s.dupAcks = 0
	s.rto *= 2 // exponential backoff
	if s.rto > maxRTO {
		s.rto = maxRTO
	}
	s.lastProgress = now
	s.timing = false
	// Go-back-N, as BSD stacks do: slow start resends from the hole, so a
	// multi-segment loss costs one timeout rather than one per hole.
	s.sndNxt = s.sndUna
	s.pump()
}

// sampleRTT feeds one measurement into the RFC 6298 estimator, quantized
// to the tick granularity like a BSD stack.
func (s *Sender) sampleRTT(rtt sim.Time) {
	if !s.hasSample {
		s.srtt = rtt
		s.rttvar = rtt / 2
		s.hasSample = true
	} else {
		diff := s.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		s.rttvar = (3*s.rttvar + diff) / 4
		s.srtt = (7*s.srtt + rtt) / 8
	}
	rto := s.srtt + 4*s.rttvar
	// Quantize up to the timer granularity and apply the floor.
	ticks := (rto + s.cfg.Tick - 1) / s.cfg.Tick
	rto = ticks * s.cfg.Tick
	if rto < s.cfg.MinRTO {
		rto = s.cfg.MinRTO
	}
	s.rto = rto
}
