// Package tcp implements the slice of TCP Reno the thesis' link-layer
// handoff experiments exercise (Figures 4.12–4.14): slow start, congestion
// avoidance, fast retransmit/recovery, and a coarse-grained retransmission
// timer with BSD-style 500 ms ticks and a 1 s minimum RTO — the timing the
// thesis blames for the 1–1.5 s stall after an unbuffered handoff.
//
// Only the sender→receiver data direction carries payload (an FTP-style
// bulk transfer); the reverse direction carries pure ACKs. Connection
// establishment and teardown are out of scope: every experiment studies a
// long-lived established connection.
package tcp

import "fmt"

// Segment is the TCP payload carried inside an inet.Packet.
type Segment struct {
	// Seq is the first byte's sequence number (data segments).
	Seq uint64
	// Len is the payload length in bytes (zero for pure ACKs).
	Len int
	// Ack reports whether AckNo is valid.
	Ack bool
	// AckNo is the cumulative acknowledgement (next byte expected).
	AckNo uint64
	// Retransmit marks retransmitted data (excluded from RTT sampling,
	// per Karn's algorithm).
	Retransmit bool
}

// IsData reports whether the segment carries payload.
func (s *Segment) IsData() bool { return s.Len > 0 }

// End returns the sequence number one past the segment's last byte.
func (s *Segment) End() uint64 { return s.Seq + uint64(s.Len) }

// String implements fmt.Stringer.
func (s *Segment) String() string {
	if s.IsData() {
		return fmt.Sprintf("data[%d:%d)", s.Seq, s.End())
	}
	return fmt.Sprintf("ack[%d]", s.AckNo)
}

// HeaderSize is the combined TCP/IP header overhead per segment.
const HeaderSize = 40
