package tcp

import (
	"testing"
	"testing/quick"

	"repro/internal/inet"
	"repro/internal/sim"
)

// pipe is a lossy, delayed wire between a sender and receiver.
type pipe struct {
	engine *sim.Engine
	delay  sim.Time
	// dropData decides whether a data segment is lost (by segment index).
	dropData func(n int) bool
	// blackout drops everything (both directions) inside [from, to).
	from, to sim.Time

	sender   *Sender
	receiver *Receiver
	dataSent int
}

func (p *pipe) inBlackout() bool {
	now := p.engine.Now()
	return p.to > p.from && now >= p.from && now < p.to
}

func (p *pipe) toReceiver(pkt *inet.Packet) {
	n := p.dataSent
	p.dataSent++
	if p.inBlackout() || (p.dropData != nil && p.dropData(n)) {
		return
	}
	seg := pkt.Payload.(*Segment)
	p.engine.Schedule(p.delay, func() { p.receiver.Handle(seg) })
}

func (p *pipe) toSender(pkt *inet.Packet) {
	if p.inBlackout() {
		return
	}
	seg := pkt.Payload.(*Segment)
	p.engine.Schedule(p.delay, func() { p.sender.HandleAck(seg) })
}

func newPipe(t *testing.T, cfg SenderConfig, delay sim.Time) *pipe {
	t.Helper()
	engine := sim.NewEngine()
	p := &pipe{engine: engine, delay: delay}
	cfg.Src = inet.Addr{Net: 1, Host: 1}
	cfg.Dst = inet.Addr{Net: 2, Host: 1}
	cfg.Flow = 1
	p.sender = NewSender(engine, cfg, p.toReceiver, nil)
	p.receiver = NewReceiver(engine, cfg.Dst, cfg.Src, cfg.Flow, p.toSender, 100*sim.Millisecond)
	return p
}

func TestBulkTransferDeliversInOrder(t *testing.T) {
	p := newPipe(t, SenderConfig{MSS: 1000}, 5*sim.Millisecond)
	p.sender.Start()
	if err := p.engine.Run(2 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	p.sender.Stop()
	if p.receiver.Delivered() == 0 {
		t.Fatal("nothing delivered")
	}
	if p.receiver.RcvNxt() != p.receiver.Delivered() {
		t.Fatalf("rcvNxt %d != delivered %d", p.receiver.RcvNxt(), p.receiver.Delivered())
	}
	if p.sender.Timeouts() != 0 {
		t.Fatalf("lossless transfer suffered %d timeouts", p.sender.Timeouts())
	}
	// With a 10 ms RTT and growing window, two seconds move many windows.
	if p.receiver.Delivered() < 100_000 {
		t.Fatalf("delivered only %d bytes", p.receiver.Delivered())
	}
}

func TestSlowStartDoublesWindow(t *testing.T) {
	p := newPipe(t, SenderConfig{MSS: 1000, InitialSSThresh: 1000}, 50*sim.Millisecond)
	p.sender.Start()
	// After one RTT: cwnd 2; two RTTs: 4; three: 8 (pure slow start).
	if err := p.engine.Run(320 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	p.sender.Stop()
	if got := p.sender.Cwnd(); got < 7 || got > 17 {
		t.Fatalf("cwnd after ~3 RTTs = %v, want exponential growth (7..17)", got)
	}
}

func TestSingleLossRecoversByFastRetransmit(t *testing.T) {
	p := newPipe(t, SenderConfig{MSS: 1000}, 5*sim.Millisecond)
	p.dropData = func(n int) bool { return n == 30 }
	p.sender.Start()
	if err := p.engine.Run(3 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	p.sender.Stop()
	if p.sender.FastRetransmits() == 0 {
		t.Fatal("no fast retransmit for an isolated loss")
	}
	if p.sender.Timeouts() != 0 {
		t.Fatalf("isolated loss caused %d timeouts; dup-ACK recovery broken", p.sender.Timeouts())
	}
	// The hole must be filled: everything contiguous.
	if p.receiver.RcvNxt() < 100_000 {
		t.Fatalf("transfer stalled at %d", p.receiver.RcvNxt())
	}
}

func TestBlackoutCausesCoarseTimeout(t *testing.T) {
	p := newPipe(t, SenderConfig{MSS: 1000}, 5*sim.Millisecond)
	p.from, p.to = 2*sim.Second, 2200*sim.Millisecond // 200 ms blackout
	p.sender.Start()
	if err := p.engine.Run(6 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	p.sender.Stop()
	if p.sender.Timeouts() == 0 {
		t.Fatal("a whole-window blackout did not time out")
	}
	// The stall is governed by the 1 s minimum RTO plus tick rounding:
	// progress resumes between 1 and ~1.5 s after the blackout start.
	var resumeAt sim.Time
	for _, s := range p.receiver.RecvTrace.Samples() {
		if s.At >= p.from {
			resumeAt = s.At
			break
		}
	}
	stall := resumeAt - p.from
	if stall < sim.Second || stall > 1700*sim.Millisecond {
		t.Fatalf("stall = %v, want the thesis' 1–1.5 s window", stall)
	}
	// And the transfer recovers fully afterwards.
	if p.receiver.RcvNxt() < 1_000_000 {
		t.Fatalf("transfer did not recover: rcvNxt = %d", p.receiver.RcvNxt())
	}
}

func TestTimeoutCollapsesWindowAndBacksOff(t *testing.T) {
	p := newPipe(t, SenderConfig{MSS: 1000}, 5*sim.Millisecond)
	p.from, p.to = sim.Second, 5*sim.Second // long outage: repeated RTOs
	p.sender.Start()
	if err := p.engine.Run(4 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if p.sender.Timeouts() < 2 {
		t.Fatalf("timeouts = %d, want repeated backoff", p.sender.Timeouts())
	}
	if p.sender.Cwnd() != 1 {
		t.Fatalf("cwnd = %v during outage, want 1", p.sender.Cwnd())
	}
	if p.sender.RTO() < 2*sim.Second {
		t.Fatalf("RTO = %v, want exponential backoff beyond 2 s", p.sender.RTO())
	}
	// End the run cleanly.
	p.sender.Stop()
	if err := p.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
}

func TestReceiverBuffersOutOfOrder(t *testing.T) {
	engine := sim.NewEngine()
	var acks []uint64
	r := NewReceiver(engine, inet.Addr{Net: 2, Host: 1}, inet.Addr{Net: 1, Host: 1}, 1,
		func(pkt *inet.Packet) { acks = append(acks, pkt.Payload.(*Segment).AckNo) }, 0)

	r.Handle(&Segment{Seq: 0, Len: 100})
	r.Handle(&Segment{Seq: 200, Len: 100}) // hole at 100
	r.Handle(&Segment{Seq: 300, Len: 100})
	r.Handle(&Segment{Seq: 100, Len: 100}) // fills the hole

	want := []uint64{100, 100, 100, 400}
	if len(acks) != len(want) {
		t.Fatalf("acks = %v, want %v", acks, want)
	}
	for i := range want {
		if acks[i] != want[i] {
			t.Fatalf("acks = %v, want %v", acks, want)
		}
	}
	if r.Delivered() != 400 {
		t.Fatalf("Delivered = %d, want 400", r.Delivered())
	}
}

func TestReceiverIgnoresSpuriousRetransmission(t *testing.T) {
	engine := sim.NewEngine()
	ackCount := 0
	r := NewReceiver(engine, inet.Addr{Net: 2, Host: 1}, inet.Addr{Net: 1, Host: 1}, 1,
		func(pkt *inet.Packet) { ackCount++ }, 0)
	r.Handle(&Segment{Seq: 0, Len: 100})
	r.Handle(&Segment{Seq: 0, Len: 100}) // duplicate
	if r.Delivered() != 100 {
		t.Fatalf("Delivered = %d, want 100 (no double count)", r.Delivered())
	}
	if ackCount != 2 {
		t.Fatalf("acks = %d, want 2 (duplicate still re-ACKed)", ackCount)
	}
}

func TestReceiverGoodputSeries(t *testing.T) {
	engine := sim.NewEngine()
	r := NewReceiver(engine, inet.Addr{Net: 2, Host: 1}, inet.Addr{Net: 1, Host: 1}, 1,
		func(pkt *inet.Packet) {}, 100*sim.Millisecond)
	engine.Schedule(50*sim.Millisecond, func() { r.Handle(&Segment{Seq: 0, Len: 1000}) })
	engine.Schedule(150*sim.Millisecond, func() { r.Handle(&Segment{Seq: 1000, Len: 1000}) })
	if err := engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	rate := r.Goodput.Rate()
	if len(rate) != 2 || rate[0].Value != 80_000 || rate[1].Value != 80_000 {
		t.Fatalf("rate = %+v, want two 80 kb/s buckets", rate)
	}
}

func TestRTTEstimatorQuantizesToTicks(t *testing.T) {
	engine := sim.NewEngine()
	s := NewSender(engine, SenderConfig{
		Src: inet.Addr{Net: 1, Host: 1}, Dst: inet.Addr{Net: 2, Host: 1},
	}, func(*inet.Packet) {}, nil)
	s.sampleRTT(20 * sim.Millisecond)
	if s.RTO() != s.cfg.MinRTO {
		t.Fatalf("RTO = %v for a 20 ms RTT, want the 1 s floor", s.RTO())
	}
	s.sampleRTT(800 * sim.Millisecond)
	if s.RTO()%s.cfg.Tick != 0 {
		t.Fatalf("RTO = %v not a multiple of the 500 ms tick", s.RTO())
	}
}

// Property: whatever single-loss pattern is applied, the byte stream the
// receiver accepts is exactly contiguous (no gaps, no duplicates counted).
func TestPropertyLossyTransferIntegrity(t *testing.T) {
	f := func(dropSet []uint8) bool {
		// Bound the adversary: at most 8 distinct losses among the first
		// 50 transmissions. (Unbounded per-transmission loss at minimum
		// windows degenerates into arbitrarily long exponential backoff —
		// correct TCP, but unbounded test time.)
		drops := make(map[int]bool, 8)
		for _, d := range dropSet {
			if len(drops) == 8 {
				break
			}
			drops[int(d)%50] = true
		}
		p := newPipe(t, SenderConfig{MSS: 1000}, 5*sim.Millisecond)
		p.dropData = func(n int) bool { return drops[n] }
		p.sender.Start()
		if err := p.engine.Run(90 * sim.Second); err != nil {
			return false
		}
		p.sender.Stop()
		// Contiguity: delivered == rcvNxt, and the sender never believes
		// more was acked than the receiver accepted.
		return p.receiver.Delivered() == p.receiver.RcvNxt() &&
			p.sender.SndUna() <= p.receiver.RcvNxt() &&
			p.receiver.RcvNxt() >= 100_000 // recovered and kept going
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNewRenoSurvivesMultipleLossesInOneWindow(t *testing.T) {
	run := func(newReno bool) *pipe {
		p := newPipe(t, SenderConfig{MSS: 1000, NewReno: newReno}, 5*sim.Millisecond)
		drops := map[int]bool{40: true, 42: true, 44: true}
		p.dropData = func(n int) bool { return drops[n] }
		p.sender.Start()
		if err := p.engine.Run(10 * sim.Second); err != nil {
			t.Fatalf("Run: %v", err)
		}
		p.sender.Stop()
		return p
	}
	nr := run(true)
	if nr.sender.Timeouts() != 0 {
		t.Errorf("NewReno timed out %d times on a three-loss window", nr.sender.Timeouts())
	}
	if nr.receiver.RcvNxt() < 1_000_000 {
		t.Errorf("NewReno stalled at %d", nr.receiver.RcvNxt())
	}
	reno := run(false)
	// Classic Reno handles the same pattern strictly worse or equal:
	// either a timeout or slower progress.
	if reno.sender.Timeouts() == 0 && reno.receiver.RcvNxt() > nr.receiver.RcvNxt() {
		t.Errorf("classic Reno outperformed NewReno: %d > %d without timeouts",
			reno.receiver.RcvNxt(), nr.receiver.RcvNxt())
	}
}

func TestNewRenoFullAckExitsRecovery(t *testing.T) {
	p := newPipe(t, SenderConfig{MSS: 1000, NewReno: true}, 5*sim.Millisecond)
	p.dropData = func(n int) bool { return n == 25 }
	p.sender.Start()
	if err := p.engine.Run(5 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	p.sender.Stop()
	if p.sender.inFR {
		t.Error("sender stuck in fast recovery")
	}
	if p.sender.Timeouts() != 0 || p.sender.FastRetransmits() == 0 {
		t.Errorf("timeouts=%d fastRetransmits=%d", p.sender.Timeouts(), p.sender.FastRetransmits())
	}
}

func TestBoundedTransferCompletes(t *testing.T) {
	p := newPipe(t, SenderConfig{MSS: 1000, LimitBytes: 50_000}, 5*sim.Millisecond)
	p.sender.Start()
	if err := p.engine.Run(5 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !p.sender.Done() {
		t.Fatalf("transfer not done: sndUna=%d", p.sender.SndUna())
	}
	if p.sender.DoneAt() == 0 {
		t.Fatal("DoneAt not stamped")
	}
	if p.receiver.RcvNxt() != 50_000 {
		t.Fatalf("receiver got %d bytes, want exactly 50000", p.receiver.RcvNxt())
	}
	// The coarse timer stopped with the transfer; the queue must drain.
	if err := p.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
}

func TestBoundedTransferSurvivesLoss(t *testing.T) {
	p := newPipe(t, SenderConfig{MSS: 1000, LimitBytes: 40_000}, 5*sim.Millisecond)
	p.dropData = func(n int) bool { return n == 10 || n == 35 }
	p.sender.Start()
	if err := p.engine.Run(20 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !p.sender.Done() || p.receiver.RcvNxt() != 40_000 {
		t.Fatalf("lossy bounded transfer incomplete: done=%v rcvNxt=%d",
			p.sender.Done(), p.receiver.RcvNxt())
	}
}

func TestUnlimitedNeverDone(t *testing.T) {
	p := newPipe(t, SenderConfig{MSS: 1000}, 5*sim.Millisecond)
	p.sender.Start()
	if err := p.engine.Run(time500()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	p.sender.Stop()
	if p.sender.Done() {
		t.Fatal("unlimited sender reported done")
	}
}

func time500() sim.Time { return 500 * sim.Millisecond }
