package tcp

import (
	"repro/internal/inet"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Receiver is the data sink of a connection: it acknowledges cumulatively,
// buffers out-of-order segments, and records the receive-side traces the
// thesis plots.
type Receiver struct {
	engine *sim.Engine
	src    inet.Addr // our address (ACK source)
	dst    inet.Addr // the sender
	flow   inet.FlowID
	send   func(*inet.Packet)

	rcvNxt     uint64
	outOfOrder map[uint64]int // seq → len

	delivered uint64 // cumulative in-order bytes

	// RecvTrace records (time, seq) of every data segment that arrives;
	// Goodput buckets in-order bytes for the Figure 4.14 throughput curve.
	RecvTrace stats.SeqTrace
	Goodput   *stats.TimeSeries
}

// NewReceiver creates a receiver acknowledging toward dst. send transmits
// the ACKs. window is the goodput bucketing interval (zero disables the
// series).
func NewReceiver(engine *sim.Engine, src, dst inet.Addr, flow inet.FlowID,
	send func(*inet.Packet), window sim.Time) *Receiver {
	if send == nil {
		panic("tcp: NewReceiver with nil send")
	}
	r := &Receiver{
		engine:     engine,
		src:        src,
		dst:        dst,
		flow:       flow,
		send:       send,
		outOfOrder: make(map[uint64]int),
	}
	if window > 0 {
		r.Goodput = stats.NewTimeSeries(window)
	}
	return r
}

// RcvNxt returns the next expected byte.
func (r *Receiver) RcvNxt() uint64 { return r.rcvNxt }

// Delivered returns the cumulative in-order byte count.
func (r *Receiver) Delivered() uint64 { return r.delivered }

// SetSrc updates the receiver's own address (the mobile host's care-of
// address changes across handoffs).
func (r *Receiver) SetSrc(src inet.Addr) { r.src = src }

// Handle processes one arriving segment.
func (r *Receiver) Handle(seg *Segment) {
	if seg == nil || !seg.IsData() {
		return
	}
	now := r.engine.Now()
	r.RecvTrace.Record(now, seg.Seq)

	switch {
	case seg.Seq == r.rcvNxt:
		r.advance(seg.Len, now)
		// Consume any contiguous buffered segments.
		for {
			l, ok := r.outOfOrder[r.rcvNxt]
			if !ok {
				break
			}
			delete(r.outOfOrder, r.rcvNxt)
			r.advance(l, now)
		}
	case seg.Seq > r.rcvNxt:
		r.outOfOrder[seg.Seq] = seg.Len
	default:
		// Below rcvNxt: a spurious retransmission; re-ACK.
	}
	r.sendAck()
}

func (r *Receiver) advance(length int, now sim.Time) {
	r.rcvNxt += uint64(length)
	r.delivered += uint64(length)
	if r.Goodput != nil {
		r.Goodput.Add(now, float64(length)*8) // bits
	}
}

func (r *Receiver) sendAck() {
	r.send(&inet.Packet{
		Src:     r.src,
		Dst:     r.dst,
		Proto:   inet.ProtoTCP,
		Flow:    r.flow,
		Size:    HeaderSize,
		Created: r.engine.Now(),
		Payload: &Segment{Ack: true, AckNo: r.rcvNxt},
	})
}
