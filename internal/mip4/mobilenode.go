package mip4

import (
	"repro/internal/inet"
	"repro/internal/sim"
)

// MobileNodeConfig parameterizes a Mobile IPv4 node's registration
// behaviour.
type MobileNodeConfig struct {
	// Home is the node's permanent home address.
	Home inet.Addr
	// HomeAgent is its home agent's address.
	HomeAgent inet.Addr
	// MAC is the link-layer identifier recorded in visitor lists.
	MAC string
	// Lifetime is the association lifetime requested on registration.
	// Zero selects DefaultRegistrationLifetime.
	Lifetime sim.Time
	// RetryInterval spaces registration retransmissions. Zero selects
	// DefaultRetryInterval.
	RetryInterval sim.Time
}

// Defaults for MobileNodeConfig fields left zero.
const (
	DefaultRegistrationLifetime = 60 * sim.Second
	DefaultRetryInterval        = 1 * sim.Second
	maxRegistrationTries        = 5
)

// MobileNode is the mobile side of Mobile IPv4: agent discovery, the
// registration state machine with retransmission and renewal, and
// deregistration.
type MobileNode struct {
	engine *sim.Engine
	cfg    MobileNodeConfig
	// send transmits a packet on the node's current link.
	send func(*inet.Packet)

	coa        inet.Addr // current registered (or registering) care-of address
	registered bool
	pendingID  uint64
	nextID     uint64
	tries      int

	retry *sim.Timer
	renew *sim.Timer

	// OnRegistered fires when a registration (or renewal) is accepted.
	OnRegistered func(coa inet.Addr, lifetime sim.Time)
	// OnDenied fires when the infrastructure refuses a registration.
	OnDenied func(code uint8)
}

// NewMobileNode creates a node that transmits through send.
func NewMobileNode(engine *sim.Engine, cfg MobileNodeConfig, send func(*inet.Packet)) *MobileNode {
	if cfg.Lifetime == 0 {
		cfg.Lifetime = DefaultRegistrationLifetime
	}
	if cfg.RetryInterval == 0 {
		cfg.RetryInterval = DefaultRetryInterval
	}
	if send == nil {
		panic("mip4: NewMobileNode with nil send")
	}
	mn := &MobileNode{engine: engine, cfg: cfg, send: send}
	mn.retry = sim.NewTimer(engine, mn.retransmit)
	mn.renew = sim.NewTimer(engine, mn.renewRegistration)
	return mn
}

// Registered reports whether the node holds an accepted binding.
func (mn *MobileNode) Registered() bool { return mn.registered }

// CoA returns the current care-of address (zero when unregistered).
func (mn *MobileNode) CoA() inet.Addr { return mn.coa }

// HandleAdvertisement implements movement detection (stage 1a): an
// advertisement offering a different care-of address triggers a new
// registration through that agent.
func (mn *MobileNode) HandleAdvertisement(adv AgentAdvertisement) {
	if !adv.Foreign || adv.CoA.IsUnspecified() {
		return
	}
	if adv.CoA == mn.coa {
		return // current agent; renewals are timer-driven
	}
	mn.registerVia(adv.CoA, adv.Agent)
}

// Solicit broadcasts an agent solicitation (stage 1b). The caller routes
// it to the link's agent.
func (mn *MobileNode) Solicit(agent inet.Addr) {
	mn.send(&inet.Packet{
		Src:     mn.cfg.Home,
		Dst:     agent,
		Proto:   inet.ProtoControl,
		Size:    AgentSolicitationSize,
		Created: mn.engine.Now(),
		Payload: &AgentSolicitation{From: mn.cfg.Home},
	})
}

// HandleReply completes a pending registration.
func (mn *MobileNode) HandleReply(reply *RegistrationReply) {
	if reply.ID != mn.pendingID || mn.pendingID == 0 {
		return // stale or unsolicited
	}
	mn.pendingID = 0
	mn.retry.Stop()
	if !reply.Accepted() {
		mn.registered = false
		mn.coa = inet.Unspecified
		if mn.OnDenied != nil {
			mn.OnDenied(reply.Code)
		}
		return
	}
	if reply.Lifetime == 0 {
		// Accepted deregistration.
		mn.registered = false
		mn.coa = inet.Unspecified
		mn.renew.Stop()
		return
	}
	mn.registered = true
	mn.coa = reply.CoA
	mn.renew.Reset(reply.Lifetime * 3 / 4)
	if mn.OnRegistered != nil {
		mn.OnRegistered(reply.CoA, reply.Lifetime)
	}
}

// Deregister cancels the binding (stage 4: a request with zero lifetime).
func (mn *MobileNode) Deregister(agent inet.Addr) {
	mn.renew.Stop()
	mn.sendRequest(agent, mn.coa, 0)
}

// registerVia starts (or restarts) a registration through the given agent.
func (mn *MobileNode) registerVia(coa, agent inet.Addr) {
	mn.coa = coa
	mn.registered = false
	mn.tries = 1
	mn.sendRequest(agent, coa, mn.cfg.Lifetime)
	mn.retry.Reset(mn.cfg.RetryInterval)
}

// renewRegistration refreshes the binding before it lapses.
func (mn *MobileNode) renewRegistration() {
	if !mn.registered {
		return
	}
	mn.tries = 1
	mn.sendRequest(mn.coa, mn.coa, mn.cfg.Lifetime)
	mn.retry.Reset(mn.cfg.RetryInterval)
}

// retransmit resends an unanswered request.
func (mn *MobileNode) retransmit() {
	if mn.pendingID == 0 || mn.tries >= maxRegistrationTries {
		return
	}
	mn.tries++
	mn.sendRequest(mn.coa, mn.coa, mn.cfg.Lifetime)
	mn.retry.Reset(mn.cfg.RetryInterval)
}

// sendRequest emits a registration request toward the agent. For the
// common foreign-agent care-of address, the agent and CoA coincide.
func (mn *MobileNode) sendRequest(agent, coa inet.Addr, lifetime sim.Time) {
	mn.nextID++
	mn.pendingID = mn.nextID
	mn.send(&inet.Packet{
		Src:     mn.cfg.Home,
		Dst:     agent,
		Proto:   inet.ProtoControl,
		Size:    RegistrationRequestSize,
		Created: mn.engine.Now(),
		Payload: &RegistrationRequest{
			Home:      mn.cfg.Home,
			HomeAgent: mn.cfg.HomeAgent,
			CoA:       coa,
			MAC:       mn.cfg.MAC,
			Lifetime:  lifetime,
			ID:        mn.pendingID,
		},
	})
}
