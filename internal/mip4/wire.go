package mip4

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/inet"
	"repro/internal/sim"
)

// Wire format mirroring internal/fho: one kind byte + big-endian body.
// RFC 2002's actual formats are UDP-borne type-length values; this compact
// form keeps the same information content.

// ErrTruncated reports a message body shorter than its fields require.
var ErrTruncated = errors.New("mip4: truncated message")

// wireKind discriminates the registration messages on the wire.
type wireKind uint8

const (
	kindAgentAdvertisement wireKind = iota + 1
	kindAgentSolicitation
	kindRegistrationRequest
	kindRegistrationReply
)

// Encode serializes a Mobile IPv4 control message.
func Encode(m any) ([]byte, error) {
	switch v := m.(type) {
	case *AgentAdvertisement:
		out := []byte{byte(kindAgentAdvertisement)}
		out = putAddr(out, v.Agent)
		out = putAddr(out, v.CoA)
		out = putBool(out, v.Home)
		out = putBool(out, v.Foreign)
		out = putTime(out, v.Lifetime)
		return binary.BigEndian.AppendUint16(out, v.Seq), nil
	case *AgentSolicitation:
		out := []byte{byte(kindAgentSolicitation)}
		return putAddr(out, v.From), nil
	case *RegistrationRequest:
		out := []byte{byte(kindRegistrationRequest)}
		out = putAddr(out, v.Home)
		out = putAddr(out, v.HomeAgent)
		out = putAddr(out, v.CoA)
		out = putString(out, v.MAC)
		out = putTime(out, v.Lifetime)
		return binary.BigEndian.AppendUint64(out, v.ID), nil
	case *RegistrationReply:
		out := []byte{byte(kindRegistrationReply)}
		out = putAddr(out, v.Home)
		out = putAddr(out, v.CoA)
		out = append(out, v.Code)
		out = putTime(out, v.Lifetime)
		return binary.BigEndian.AppendUint64(out, v.ID), nil
	default:
		return nil, fmt.Errorf("mip4: cannot encode %T", m)
	}
}

// Decode parses a message produced by Encode.
func Decode(data []byte) (any, error) {
	if len(data) == 0 {
		return nil, ErrTruncated
	}
	body := data[1:]
	var err error
	switch wireKind(data[0]) {
	case kindAgentAdvertisement:
		var m AgentAdvertisement
		if m.Agent, body, err = getAddr(body); err != nil {
			return nil, err
		}
		if m.CoA, body, err = getAddr(body); err != nil {
			return nil, err
		}
		if m.Home, body, err = getBool(body); err != nil {
			return nil, err
		}
		if m.Foreign, body, err = getBool(body); err != nil {
			return nil, err
		}
		if m.Lifetime, body, err = getTime(body); err != nil {
			return nil, err
		}
		if len(body) < 2 {
			return nil, ErrTruncated
		}
		m.Seq = binary.BigEndian.Uint16(body)
		body = body[2:]
		return &m, trailing(body)
	case kindAgentSolicitation:
		var m AgentSolicitation
		if m.From, body, err = getAddr(body); err != nil {
			return nil, err
		}
		return &m, trailing(body)
	case kindRegistrationRequest:
		var m RegistrationRequest
		if m.Home, body, err = getAddr(body); err != nil {
			return nil, err
		}
		if m.HomeAgent, body, err = getAddr(body); err != nil {
			return nil, err
		}
		if m.CoA, body, err = getAddr(body); err != nil {
			return nil, err
		}
		if m.MAC, body, err = getString(body); err != nil {
			return nil, err
		}
		if m.Lifetime, body, err = getTime(body); err != nil {
			return nil, err
		}
		if len(body) < 8 {
			return nil, ErrTruncated
		}
		m.ID = binary.BigEndian.Uint64(body)
		body = body[8:]
		return &m, trailing(body)
	case kindRegistrationReply:
		var m RegistrationReply
		if m.Home, body, err = getAddr(body); err != nil {
			return nil, err
		}
		if m.CoA, body, err = getAddr(body); err != nil {
			return nil, err
		}
		if len(body) < 1 {
			return nil, ErrTruncated
		}
		m.Code = body[0]
		body = body[1:]
		if m.Lifetime, body, err = getTime(body); err != nil {
			return nil, err
		}
		if len(body) < 8 {
			return nil, ErrTruncated
		}
		m.ID = binary.BigEndian.Uint64(body)
		body = body[8:]
		return &m, trailing(body)
	default:
		return nil, fmt.Errorf("mip4: unknown message kind %d", data[0])
	}
}

func trailing(body []byte) error {
	if len(body) != 0 {
		return fmt.Errorf("mip4: %d trailing bytes", len(body))
	}
	return nil
}

func putAddr(dst []byte, a inet.Addr) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(a.Net))
	return binary.BigEndian.AppendUint32(dst, uint32(a.Host))
}

func getAddr(src []byte) (inet.Addr, []byte, error) {
	if len(src) < 8 {
		return inet.Addr{}, nil, ErrTruncated
	}
	a := inet.Addr{
		Net:  inet.NetID(binary.BigEndian.Uint32(src)),
		Host: inet.HostID(binary.BigEndian.Uint32(src[4:])),
	}
	return a, src[8:], nil
}

func putTime(dst []byte, t sim.Time) []byte {
	return binary.BigEndian.AppendUint64(dst, uint64(t))
}

func getTime(src []byte) (sim.Time, []byte, error) {
	if len(src) < 8 {
		return 0, nil, ErrTruncated
	}
	return sim.Time(binary.BigEndian.Uint64(src)), src[8:], nil
}

func putBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func getBool(src []byte) (bool, []byte, error) {
	if len(src) < 1 {
		return false, nil, ErrTruncated
	}
	return src[0] != 0, src[1:], nil
}

func putString(dst []byte, s string) []byte {
	if len(s) > 255 {
		s = s[:255]
	}
	dst = append(dst, byte(len(s)))
	return append(dst, s...)
}

func getString(src []byte) (string, []byte, error) {
	if len(src) < 1 {
		return "", nil, ErrTruncated
	}
	n := int(src[0])
	if len(src) < 1+n {
		return "", nil, ErrTruncated
	}
	return string(src[1 : 1+n]), src[1+n:], nil
}
