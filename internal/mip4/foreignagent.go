package mip4

import (
	"sort"

	"repro/internal/inet"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Visitor is one entry of the foreign agent's visitor list — the thesis'
// four-column table: "home address", "home agent address", "MAC address of
// the mobile node", and "association lifetime".
type Visitor struct {
	Home      inet.Addr
	HomeAgent inet.Addr
	MAC       string
	Expires   sim.Time
	// via is the interface the visitor is reachable on.
	via *netsim.Iface
	// pending marks an entry awaiting the home agent's reply.
	pending bool
}

// ForeignAgent resides on a foreign network, advertises its address as the
// care-of address, relays registrations to home agents, and delivers
// decapsulated tunnel traffic to its visitors.
type ForeignAgent struct {
	router *netsim.Router
	engine *sim.Engine

	visitors map[inet.Addr]*Visitor
	// maxVisitors bounds the visitor list (zero: unbounded).
	maxVisitors int
	// advertisedLifetime is offered in agent advertisements.
	advertisedLifetime sim.Time

	seq     uint16
	denied  uint64
	relayed uint64
}

// NewForeignAgent wraps a router with foreign-agent behaviour.
// advertisedLifetime is the longest registration it accepts; maxVisitors
// bounds the visitor list (zero: unbounded).
func NewForeignAgent(engine *sim.Engine, router *netsim.Router,
	advertisedLifetime sim.Time, maxVisitors int) *ForeignAgent {
	fa := &ForeignAgent{
		router:             router,
		engine:             engine,
		visitors:           make(map[inet.Addr]*Visitor),
		maxVisitors:        maxVisitors,
		advertisedLifetime: advertisedLifetime,
	}
	router.LocalDeliver = fa.localDeliver
	return fa
}

// Router returns the underlying forwarding element.
func (fa *ForeignAgent) Router() *netsim.Router { return fa.router }

// CoA returns the care-of address the agent offers (its own address).
func (fa *ForeignAgent) CoA() inet.Addr { return fa.router.Addr() }

// Denied counts refused registrations.
func (fa *ForeignAgent) Denied() uint64 { return fa.denied }

// Relayed counts registration requests forwarded to home agents.
func (fa *ForeignAgent) Relayed() uint64 { return fa.relayed }

// Visitors returns a deterministic snapshot of the confirmed visitor list.
func (fa *ForeignAgent) Visitors() []Visitor {
	now := fa.engine.Now()
	out := make([]Visitor, 0, len(fa.visitors))
	for _, v := range fa.visitors {
		if !v.pending && v.Expires > now {
			out = append(out, *v)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Home.Net != out[j].Home.Net {
			return out[i].Home.Net < out[j].Home.Net
		}
		return out[i].Home.Host < out[j].Home.Host
	})
	return out
}

// Advertisement returns the next agent advertisement to broadcast on the
// foreign link (the caller delivers it — over a wireless beacon or a
// wired broadcast).
func (fa *ForeignAgent) Advertisement() AgentAdvertisement {
	fa.seq++
	return AgentAdvertisement{
		Agent:    fa.router.Addr(),
		CoA:      fa.CoA(),
		Foreign:  true,
		Lifetime: fa.advertisedLifetime,
		Seq:      fa.seq,
	}
}

// Purge drops lapsed visitor entries and their host routes, returning how
// many were removed.
func (fa *ForeignAgent) Purge() int {
	now := fa.engine.Now()
	removed := 0
	for home, v := range fa.visitors {
		if !v.pending && v.Expires <= now {
			fa.router.RemoveHostRoute(home)
			delete(fa.visitors, home)
			removed++
		}
	}
	return removed
}

// localDeliver dispatches registration traffic addressed to the agent.
func (fa *ForeignAgent) localDeliver(in *netsim.Iface, pkt *inet.Packet) bool {
	switch msg := pkt.Payload.(type) {
	case *RegistrationRequest:
		fa.handleRequest(in, msg)
		return true
	case *RegistrationReply:
		fa.handleReply(msg)
		return true
	case *AgentSolicitation:
		fa.handleSolicitation(in, msg)
		return true
	}
	return false // tunnels terminating here decapsulate via the default path
}

// handleRequest relays a mobile node's registration to its home agent
// (stage 2c: "the foreign agent in turn performs the registration process
// by sending a Registration Request to the home agent").
func (fa *ForeignAgent) handleRequest(in *netsim.Iface, req *RegistrationRequest) {
	if _, known := fa.visitors[req.Home]; !known && !req.Deregister() &&
		fa.maxVisitors > 0 && len(fa.visitors) >= fa.maxVisitors {
		fa.denied++
		fa.deliverReply(in, &RegistrationReply{
			Home: req.Home, CoA: fa.CoA(), Code: RegistrationDeniedFA, ID: req.ID,
		})
		return
	}
	if req.Lifetime > fa.advertisedLifetime {
		fa.denied++
		fa.deliverReply(in, &RegistrationReply{
			Home: req.Home, CoA: fa.CoA(), Code: RegistrationBadLifetime, ID: req.ID,
		})
		return
	}
	fa.visitors[req.Home] = &Visitor{
		Home:      req.Home,
		HomeAgent: req.HomeAgent,
		MAC:       req.MAC,
		via:       in,
		pending:   true,
	}
	relayed := *req
	relayed.CoA = fa.CoA()
	fa.relayed++
	fa.router.Forward(&inet.Packet{
		Src:     fa.router.Addr(),
		Dst:     req.HomeAgent,
		Proto:   inet.ProtoControl,
		Size:    RegistrationRequestSize,
		Created: fa.engine.Now(),
		Payload: &relayed,
	})
}

// handleReply confirms (or removes) the visitor entry and relays the reply
// to the mobile node (stage 2e: "updates its visitor list ... and relays
// the reply to the mobile host").
func (fa *ForeignAgent) handleReply(reply *RegistrationReply) {
	v, ok := fa.visitors[reply.Home]
	if !ok {
		return
	}
	switch {
	case !reply.Accepted():
		fa.router.RemoveHostRoute(reply.Home)
		delete(fa.visitors, reply.Home)
	case reply.Lifetime == 0:
		// Accepted deregistration.
		fa.router.RemoveHostRoute(reply.Home)
		delete(fa.visitors, reply.Home)
	default:
		v.pending = false
		v.Expires = fa.engine.Now() + reply.Lifetime
		fa.router.AddHostRoute(reply.Home, v.via)
	}
	fa.deliverReply(v.via, reply)
}

// handleSolicitation answers with an immediate unicast advertisement.
func (fa *ForeignAgent) handleSolicitation(in *netsim.Iface, sol *AgentSolicitation) {
	adv := fa.Advertisement()
	fa.router.Forward(&inet.Packet{
		Src:     fa.router.Addr(),
		Dst:     sol.From,
		Proto:   inet.ProtoControl,
		Size:    AgentAdvertisementSize,
		Created: fa.engine.Now(),
		Payload: &adv,
	})
	// The soliciting node may not be routable yet; deliver on the arrival
	// interface directly.
	_ = in
}

// deliverReply sends a registration reply toward the mobile node on its
// link.
func (fa *ForeignAgent) deliverReply(via *netsim.Iface, reply *RegistrationReply) {
	pkt := &inet.Packet{
		Src:     fa.router.Addr(),
		Dst:     reply.Home,
		Proto:   inet.ProtoControl,
		Size:    RegistrationReplySize,
		Created: fa.engine.Now(),
		Payload: reply,
	}
	if via != nil {
		via.Send(pkt)
		return
	}
	fa.router.Forward(pkt)
}
