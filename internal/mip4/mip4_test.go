package mip4

import (
	"testing"

	"repro/internal/inet"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Network prefixes of the test topology:
//
//	cn(1) -- ha(70, home net) -- fa(71, foreign net) -- mn(home addr 70:5)
//
// The mobile node sits on the foreign link keeping its home address, as
// Mobile IPv4 prescribes.
type v4world struct {
	engine *sim.Engine
	topo   *netsim.Topology
	cn     *netsim.Host
	ha     *HomeAgent
	fa     *ForeignAgent
	mnHost *netsim.Host
	mn     *MobileNode
}

func newV4World(t *testing.T, maxVisitors int) *v4world {
	t.Helper()
	engine := sim.NewEngine()
	topo := netsim.NewTopology(engine)

	cn := netsim.NewHost("cn", inet.Addr{Net: 1, Host: 1})
	haRouter := netsim.NewRouter("ha", inet.Addr{Net: 70, Host: 1})
	faRouter := netsim.NewRouter("fa", inet.Addr{Net: 71, Host: 1})
	home := inet.Addr{Net: 70, Host: 5}
	mnHost := netsim.NewHost("mn", home)

	topo.Connect(cn, haRouter, netsim.LinkConfig{Delay: 2 * sim.Millisecond})
	topo.Connect(haRouter, faRouter, netsim.LinkConfig{Delay: 5 * sim.Millisecond})
	topo.Connect(faRouter, mnHost, netsim.LinkConfig{Delay: sim.Millisecond})
	topo.ClaimNet(1, cn)
	topo.ClaimNet(70, haRouter)
	topo.ClaimNet(71, faRouter)
	if err := topo.ComputeRoutes(); err != nil {
		t.Fatalf("ComputeRoutes: %v", err)
	}

	ha := NewHomeAgent(engine, haRouter, 70, 0)
	fa := NewForeignAgent(engine, faRouter, 120*sim.Second, maxVisitors)
	mn := NewMobileNode(engine, MobileNodeConfig{
		Home:      home,
		HomeAgent: haRouter.Addr(),
		MAC:       "mn-01",
		Lifetime:  60 * sim.Second,
	}, mnHost.Send)
	mnHost.Receive = func(pkt *inet.Packet) {
		inner := pkt.Innermost()
		if reply, ok := inner.Payload.(*RegistrationReply); ok {
			mn.HandleReply(reply)
		}
	}
	return &v4world{engine: engine, topo: topo, cn: cn, ha: ha, fa: fa, mnHost: mnHost, mn: mn}
}

// register drives the Figure 2.1 flow to completion.
func (w *v4world) register(t *testing.T) {
	t.Helper()
	w.mn.HandleAdvertisement(w.fa.Advertisement())
	if err := w.engine.Run(w.engine.Now() + sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !w.mn.Registered() {
		t.Fatal("mobile node not registered after the full exchange")
	}
}

func TestRegistrationFlow(t *testing.T) {
	w := newV4World(t, 0)
	registeredAt := sim.Time(-1)
	w.mn.OnRegistered = func(coa inet.Addr, lifetime sim.Time) {
		registeredAt = w.engine.Now()
		if coa != w.fa.CoA() {
			t.Errorf("registered CoA = %v, want the FA's %v", coa, w.fa.CoA())
		}
		if lifetime != 60*sim.Second {
			t.Errorf("granted lifetime = %v, want 60s", lifetime)
		}
	}
	w.register(t)

	// Round trip: MN→FA (1ms) + FA→HA (5ms) + HA→FA (5ms) + FA→MN (1ms).
	if registeredAt != 12*sim.Millisecond {
		t.Errorf("registration completed at %v, want 12ms", registeredAt)
	}
	// The HA's mobility binding table holds home→CoA.
	b, ok := w.ha.Bindings().Lookup(inet.Addr{Net: 70, Host: 5}, w.engine.Now())
	if !ok || b.CoA != w.fa.CoA() {
		t.Fatalf("HA binding = %+v/%t", b, ok)
	}
	// The FA's visitor list holds all four thesis columns.
	visitors := w.fa.Visitors()
	if len(visitors) != 1 {
		t.Fatalf("visitor list has %d entries, want 1", len(visitors))
	}
	v := visitors[0]
	if v.Home != (inet.Addr{Net: 70, Host: 5}) || v.HomeAgent != w.ha.Router().Addr() || v.MAC != "mn-01" {
		t.Errorf("visitor entry = %+v", v)
	}
}

func TestInServiceTunnelling(t *testing.T) {
	w := newV4World(t, 0)
	w.register(t)

	var got *inet.Packet
	prev := w.mnHost.Receive
	w.mnHost.Receive = func(pkt *inet.Packet) {
		prev(pkt)
		if pkt.Innermost().Proto == inet.ProtoUDP {
			got = pkt
		}
	}
	// Stage 3: the CN addresses the home address; the HA intercepts and
	// tunnels; the FA decapsulates and delivers on the foreign link.
	w.cn.Send(&inet.Packet{
		Src: w.cn.Addr(), Dst: inet.Addr{Net: 70, Host: 5},
		Proto: inet.ProtoUDP, Size: 160, Seq: 9,
	})
	if err := w.engine.Run(w.engine.Now() + sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got == nil {
		t.Fatal("packet never reached the mobile node")
	}
	if got.Proto == inet.ProtoTunnel {
		t.Error("FA did not decapsulate before delivery")
	}
	if w.ha.Tunnelled() != 1 {
		t.Errorf("HA tunnelled %d packets, want 1", w.ha.Tunnelled())
	}
}

func TestDeregistration(t *testing.T) {
	w := newV4World(t, 0)
	w.register(t)
	w.mn.Deregister(w.fa.CoA())
	if err := w.engine.Run(w.engine.Now() + sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if w.mn.Registered() {
		t.Error("node still registered after deregistration")
	}
	if _, ok := w.ha.Bindings().Lookup(inet.Addr{Net: 70, Host: 5}, w.engine.Now()); ok {
		t.Error("HA binding survived deregistration")
	}
	if len(w.fa.Visitors()) != 0 {
		t.Error("visitor list not emptied")
	}
}

func TestRenewalBeforeExpiry(t *testing.T) {
	w := newV4World(t, 0)
	w.register(t)
	// Run past several lifetimes: renewals at 3/4 lifetime keep the
	// binding alive.
	if err := w.engine.Run(w.engine.Now() + 200*sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !w.mn.Registered() {
		t.Fatal("registration lapsed despite renewals")
	}
	if _, ok := w.ha.Bindings().Lookup(inet.Addr{Net: 70, Host: 5}, w.engine.Now()); !ok {
		t.Fatal("HA binding lapsed despite renewals")
	}
}

func TestVisitorListCapacity(t *testing.T) {
	w := newV4World(t, 1)
	w.register(t) // fills the single slot

	// A second node on the same link is denied by the foreign agent. It
	// injects through the FA's host-side interface and its replies are
	// sniffed off that wire (the shared link stands in for a second
	// station).
	home2 := inet.Addr{Net: 70, Host: 6}
	denied := uint8(0)
	mnLink := w.fa.Router().Ifaces()[1] // fa->mn link
	mn2 := NewMobileNode(w.engine, MobileNodeConfig{
		Home: home2, HomeAgent: w.ha.Router().Addr(), MAC: "mn-02",
		Lifetime: 60 * sim.Second,
	}, func(pkt *inet.Packet) {
		w.fa.Router().HandlePacket(mnLink, pkt)
	})
	mn2.OnDenied = func(code uint8) { denied = code }
	mnLink.Impair = func(pkt *inet.Packet) bool {
		if reply, ok := pkt.Payload.(*RegistrationReply); ok && reply.Home == home2 {
			mn2.HandleReply(reply)
			return true
		}
		return false
	}
	mn2.HandleAdvertisement(w.fa.Advertisement())
	if err := w.engine.Run(w.engine.Now() + sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if denied != RegistrationDeniedFA {
		t.Fatalf("denial code = %d, want %d", denied, RegistrationDeniedFA)
	}
	if w.fa.Denied() != 1 {
		t.Errorf("FA denied %d, want 1", w.fa.Denied())
	}
}

func TestLifetimeCapDenied(t *testing.T) {
	w := newV4World(t, 0)
	denied := uint8(0)
	w.mn.OnDenied = func(code uint8) { denied = code }
	w.mn.cfg.Lifetime = 500 * sim.Second // beyond the FA's 120 s offer
	w.mn.HandleAdvertisement(w.fa.Advertisement())
	if err := w.engine.Run(w.engine.Now() + sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if denied != RegistrationBadLifetime {
		t.Fatalf("denial code = %d, want %d", denied, RegistrationBadLifetime)
	}
	if w.mn.Registered() {
		t.Error("node registered despite denial")
	}
}

func TestLostReplyIsRetransmitted(t *testing.T) {
	w := newV4World(t, 0)
	// Lose the first relayed request on the FA→HA link.
	var faToHA *netsim.Iface
	for _, ifc := range w.fa.Router().Ifaces() {
		if ifc.Peer() == netsim.Node(w.ha.Router()) {
			faToHA = ifc
		}
	}
	dropped := 0
	faToHA.Impair = func(pkt *inet.Packet) bool {
		if _, ok := pkt.Payload.(*RegistrationRequest); ok && dropped == 0 {
			dropped++
			return true
		}
		return false
	}
	w.mn.HandleAdvertisement(w.fa.Advertisement())
	if err := w.engine.Run(w.engine.Now() + 5*sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if dropped != 1 {
		t.Fatalf("impairment dropped %d, want 1", dropped)
	}
	if !w.mn.Registered() {
		t.Fatal("retransmission did not recover the lost registration")
	}
}

func TestAgentSolicitation(t *testing.T) {
	w := newV4World(t, 0)
	var adv *AgentAdvertisement
	prev := w.mnHost.Receive
	w.mnHost.Receive = func(pkt *inet.Packet) {
		prev(pkt)
		if a, ok := pkt.Innermost().Payload.(*AgentAdvertisement); ok {
			adv = a
		}
	}
	// The solicited advertisement needs a route back to the home address;
	// on a real link it is unicast at the link layer. Install the host
	// route as the FA's link layer would resolve it.
	w.fa.Router().AddHostRoute(inet.Addr{Net: 70, Host: 5}, w.fa.Router().Ifaces()[1])
	w.mn.Solicit(w.fa.CoA())
	if err := w.engine.Run(w.engine.Now() + sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if adv == nil {
		t.Fatal("no advertisement in response to solicitation")
	}
	if !adv.Foreign || adv.CoA != w.fa.CoA() {
		t.Errorf("advertisement = %+v", adv)
	}
}

func TestAdvertisementSequenceIncreases(t *testing.T) {
	w := newV4World(t, 0)
	a1 := w.fa.Advertisement()
	a2 := w.fa.Advertisement()
	if a2.Seq != a1.Seq+1 {
		t.Fatalf("seq %d then %d, want increment", a1.Seq, a2.Seq)
	}
}

func TestPurgeDropsLapsedVisitors(t *testing.T) {
	w := newV4World(t, 0)
	w.register(t)
	// Stop renewals and run past the lifetime.
	w.mn.renew.Stop()
	if err := w.engine.Run(w.engine.Now() + 100*sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(w.fa.Visitors()) != 0 {
		t.Fatal("lapsed visitor still listed")
	}
	if removed := w.fa.Purge(); removed != 1 {
		t.Fatalf("Purge removed %d, want 1", removed)
	}
	if removed := w.fa.Purge(); removed != 0 {
		t.Fatalf("second Purge removed %d, want 0", removed)
	}
}

func TestHomeDeliveryWithoutBinding(t *testing.T) {
	// An unregistered node is presumed home: the HA must not tunnel.
	w := newV4World(t, 0)
	w.cn.Send(&inet.Packet{
		Src: w.cn.Addr(), Dst: inet.Addr{Net: 70, Host: 5},
		Proto: inet.ProtoUDP, Size: 160,
	})
	if err := w.engine.Run(w.engine.Now() + sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if w.ha.Tunnelled() != 0 {
		t.Error("HA tunnelled without a binding")
	}
	if w.ha.NoBinding() != 1 {
		t.Errorf("NoBinding = %d, want 1", w.ha.NoBinding())
	}
}

func TestRegistrationRequestDeregisterFlag(t *testing.T) {
	if !(&RegistrationRequest{}).Deregister() {
		t.Fatal("zero lifetime should deregister")
	}
	if (&RegistrationRequest{Lifetime: sim.Second}).Deregister() {
		t.Fatal("non-zero lifetime misread")
	}
}

func TestReplyAccepted(t *testing.T) {
	if !(&RegistrationReply{Code: RegistrationAccepted}).Accepted() {
		t.Fatal("code 0 should accept")
	}
	if (&RegistrationReply{Code: RegistrationDeniedFA}).Accepted() {
		t.Fatal("denial accepted")
	}
}
