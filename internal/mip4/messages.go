// Package mip4 implements the classic Mobile IPv4 protocol of the thesis'
// Chapter 2 (RFC 2002): home agents with mobility binding tables, foreign
// agents with visitor lists, the four protocol stages (agent discovery,
// registration relayed through the foreign agent, in-service tunnelling
// with foreign-agent decapsulation, deregistration), and the mobile node's
// registration state machine.
//
// The thesis' proposed scheme targets Mobile IPv6 but notes that "with a
// slightly modification, we can easily apply it on IPv4 network"; this
// package provides that IPv4 side of the substrate, and its tests pin the
// Figure 2.1 message flow.
package mip4

import (
	"repro/internal/inet"
	"repro/internal/sim"
)

// AgentAdvertisement is the mobility-agent advertisement (§2.1.1 stage 1:
// "mobility agents advertise their presence by periodically broadcasting").
type AgentAdvertisement struct {
	// Agent is the advertising agent's address.
	Agent inet.Addr
	// CoA is the care-of address offered (the foreign agent's address;
	// empty for a home agent advertising only on its home link).
	CoA inet.Addr
	// Home and Foreign flag which services the agent offers.
	Home, Foreign bool
	// Lifetime is the longest registration the agent accepts.
	Lifetime sim.Time
	// Seq increases with every advertisement, letting nodes detect agent
	// reboots.
	Seq uint16
}

// AgentSolicitation asks agents on the link to advertise immediately
// (stage 1b: "if it does not wish to wait for the periodically
// advertisement").
type AgentSolicitation struct {
	// From is the soliciting node's address.
	From inet.Addr
}

// RegistrationRequest is sent by the mobile node to the foreign agent and
// relayed to the home agent (stage 2: "this message includes the home
// address of the mobile host and the IP address of its home agent").
type RegistrationRequest struct {
	// Home is the mobile node's home address.
	Home inet.Addr
	// HomeAgent is where the foreign agent relays the request.
	HomeAgent inet.Addr
	// CoA is the care-of address being registered (the foreign agent's).
	CoA inet.Addr
	// MAC is the node's link-layer identifier, recorded in the visitor
	// list.
	MAC string
	// Lifetime requests the association lifetime; zero deregisters
	// (stage 4: "sends a Registration Request with lifetime field set to
	// zero").
	Lifetime sim.Time
	// ID matches replies to requests (and provides replay protection in
	// the real protocol).
	ID uint64
}

// Deregister reports whether the request cancels the binding.
func (m *RegistrationRequest) Deregister() bool { return m.Lifetime == 0 }

// RegistrationReply answers a request, relayed back through the foreign
// agent.
type RegistrationReply struct {
	Home inet.Addr
	// CoA echoes the registered care-of address.
	CoA inet.Addr
	// Code is zero on success (RegistrationAccepted).
	Code uint8
	// Lifetime is the granted lifetime, possibly shorter than requested.
	Lifetime sim.Time
	ID       uint64
}

// Registration reply codes (a subset of RFC 2002 §3.8.3).
const (
	RegistrationAccepted    uint8 = 0
	RegistrationDeniedFA    uint8 = 64 // denied by the foreign agent
	RegistrationDeniedHA    uint8 = 128
	RegistrationBadLifetime uint8 = 69
)

// Accepted reports whether the reply grants the registration.
func (m *RegistrationReply) Accepted() bool { return m.Code == RegistrationAccepted }

// Wire sizes of the UDP-borne registration messages (RFC 2002 formats
// plus IP/UDP headers), used to size control packets.
const (
	AgentAdvertisementSize  = 48
	AgentSolicitationSize   = 28
	RegistrationRequestSize = 56
	RegistrationReplySize   = 48
)
