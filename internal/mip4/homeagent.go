package mip4

import (
	"repro/internal/inet"
	"repro/internal/mip"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// HomeAgent is the designated router on the home network. It maintains the
// mobility binding table (home address → care-of address → lifetime; the
// thesis' three-column table) and tunnels intercepted home-network traffic
// to the registered care-of address with IP-in-IP encapsulation.
type HomeAgent struct {
	router *netsim.Router
	engine *sim.Engine
	// HomeNet is the prefix whose away-from-home members it serves.
	homeNet inet.NetID
	// bindings is the mobility binding table.
	bindings *mip.BindingCache
	// maxLifetime caps granted lifetimes (zero: grant as requested).
	maxLifetime sim.Time

	tunnelled uint64
	noBinding uint64
	seq       uint16
}

// NewHomeAgent wraps a router (already linked into the topology) with home
// agent behaviour for the given home prefix.
func NewHomeAgent(engine *sim.Engine, router *netsim.Router, homeNet inet.NetID, maxLifetime sim.Time) *HomeAgent {
	ha := &HomeAgent{
		router:      router,
		engine:      engine,
		homeNet:     homeNet,
		bindings:    mip.NewBindingCache(),
		maxLifetime: maxLifetime,
	}
	router.Intercept = ha.intercept
	router.LocalDeliver = ha.localDeliver
	return ha
}

// Router returns the underlying forwarding element.
func (ha *HomeAgent) Router() *netsim.Router { return ha.router }

// Bindings exposes the mobility binding table.
func (ha *HomeAgent) Bindings() *mip.BindingCache { return ha.bindings }

// Tunnelled counts packets forwarded to care-of addresses.
func (ha *HomeAgent) Tunnelled() uint64 { return ha.tunnelled }

// NoBinding counts home-network packets for unregistered (presumed
// at-home) nodes; they are delivered on the home link instead.
func (ha *HomeAgent) NoBinding() uint64 { return ha.noBinding }

// intercept tunnels packets for registered away-from-home addresses.
func (ha *HomeAgent) intercept(in *netsim.Iface, pkt *inet.Packet) bool {
	if pkt.Dst.Net != ha.homeNet || pkt.Dst == ha.router.Addr() {
		return false
	}
	b, ok := ha.bindings.Lookup(pkt.Dst, ha.engine.Now())
	if !ok {
		ha.noBinding++
		return false // at home: normal delivery on the home link
	}
	ha.tunnelled++
	ha.router.Forward(pkt.Encapsulate(ha.router.Addr(), b.CoA))
	return true
}

// localDeliver handles relayed registration requests.
func (ha *HomeAgent) localDeliver(in *netsim.Iface, pkt *inet.Packet) bool {
	req, ok := pkt.Payload.(*RegistrationRequest)
	if !ok {
		return false
	}
	now := ha.engine.Now()
	reply := &RegistrationReply{Home: req.Home, CoA: req.CoA, ID: req.ID}
	switch {
	case req.Home.Net != ha.homeNet:
		reply.Code = RegistrationDeniedHA
	case req.Deregister():
		ha.bindings.Remove(req.Home)
		reply.Code = RegistrationAccepted
	default:
		granted := req.Lifetime
		if ha.maxLifetime > 0 && granted > ha.maxLifetime {
			granted = ha.maxLifetime
		}
		ha.bindings.Update(req.Home, req.CoA, uint16(req.ID), granted, now)
		reply.Code = RegistrationAccepted
		reply.Lifetime = granted
	}
	// The reply retraces the relay path: back to the foreign agent that
	// sent the request.
	ha.router.Forward(&inet.Packet{
		Src:     ha.router.Addr(),
		Dst:     pkt.Src,
		Proto:   inet.ProtoControl,
		Size:    RegistrationReplySize,
		Created: now,
		Payload: reply,
	})
	return true
}
