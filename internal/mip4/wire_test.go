package mip4

import (
	"reflect"
	"testing"

	"repro/internal/inet"
	"repro/internal/sim"
)

func a4(n, h uint32) inet.Addr { return inet.Addr{Net: inet.NetID(n), Host: inet.HostID(h)} }

func sampleV4Messages() []any {
	return []any{
		&AgentAdvertisement{Agent: a4(71, 1), CoA: a4(71, 1), Foreign: true,
			Lifetime: 120 * sim.Second, Seq: 7},
		&AgentAdvertisement{Agent: a4(70, 1), Home: true, Lifetime: 60 * sim.Second},
		&AgentSolicitation{From: a4(70, 5)},
		&RegistrationRequest{Home: a4(70, 5), HomeAgent: a4(70, 1), CoA: a4(71, 1),
			MAC: "mn-01", Lifetime: 60 * sim.Second, ID: 42},
		&RegistrationRequest{Home: a4(70, 5), HomeAgent: a4(70, 1), ID: 43}, // deregistration
		&RegistrationReply{Home: a4(70, 5), CoA: a4(71, 1), Code: RegistrationAccepted,
			Lifetime: 60 * sim.Second, ID: 42},
		&RegistrationReply{Home: a4(70, 5), Code: RegistrationDeniedFA, ID: 43},
	}
}

func TestV4WireRoundTrip(t *testing.T) {
	for _, m := range sampleV4Messages() {
		data, err := Encode(m)
		if err != nil {
			t.Fatalf("Encode(%T): %v", m, err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("Decode(%T): %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip %T:\n got %+v\nwant %+v", m, got, m)
		}
	}
}

func TestV4WireRejectsTruncation(t *testing.T) {
	for _, m := range sampleV4Messages() {
		data, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(data); cut++ {
			if _, err := Decode(data[:cut]); err == nil {
				t.Errorf("%T truncated to %d bytes decoded", m, cut)
			}
		}
	}
}

func TestV4WireRejectsTrailing(t *testing.T) {
	data, err := Encode(&AgentSolicitation{From: a4(70, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(append(data, 0xAA)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestV4WireRejectsUnknown(t *testing.T) {
	if _, err := Decode([]byte{0x7F, 1, 2}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Encode("not a message"); err == nil {
		t.Fatal("foreign type encoded")
	}
}

// FuzzV4Decode: the decoder must never panic, and every decodable input
// must re-encode canonically.
func FuzzV4Decode(f *testing.F) {
	for _, m := range sampleV4Messages() {
		data, _ := Encode(m)
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		re, err := Encode(m)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if _, err := Decode(re); err != nil {
			t.Fatalf("canonical form does not decode: %v", err)
		}
	})
}
