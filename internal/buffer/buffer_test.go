package buffer

import (
	"testing"
	"testing/quick"

	"repro/internal/inet"
)

func pkt(class inet.Class, seq uint32) *inet.Packet {
	return &inet.Packet{Proto: inet.ProtoUDP, Class: class, Seq: seq, Size: 160}
}

func TestPoolReserveRelease(t *testing.T) {
	p := NewPool(50)
	if p.Capacity() != 50 || p.Available() != 50 {
		t.Fatalf("new pool: cap=%d avail=%d", p.Capacity(), p.Available())
	}
	if !p.Reserve(10) {
		t.Fatal("Reserve(10) failed on empty pool")
	}
	if p.Reserved() != 10 || p.Available() != 40 {
		t.Fatalf("after reserve: reserved=%d avail=%d", p.Reserved(), p.Available())
	}
	if p.Reserve(41) {
		t.Fatal("Reserve(41) succeeded beyond capacity")
	}
	if !p.Reserve(40) {
		t.Fatal("Reserve(40) failed with exactly 40 available")
	}
	p.Release(10)
	if p.Available() != 10 {
		t.Fatalf("after release: avail=%d, want 10", p.Available())
	}
}

func TestPoolScalabilityExample(t *testing.T) {
	// The thesis' motivating example: 50-packet buffer, 10 packets per
	// handoff, at most 5 simultaneous users.
	p := NewPool(50)
	granted := 0
	for i := 0; i < 8; i++ {
		if p.Reserve(10) {
			granted++
		}
	}
	if granted != 5 {
		t.Fatalf("granted %d reservations, want 5", granted)
	}
}

func TestPoolRejectsNonPositive(t *testing.T) {
	p := NewPool(10)
	if p.Reserve(0) || p.Reserve(-3) {
		t.Fatal("non-positive reservation granted")
	}
}

func TestPoolZeroCapacity(t *testing.T) {
	p := NewPool(0)
	if p.Reserve(1) {
		t.Fatal("zero-capacity pool granted a reservation")
	}
	p2 := NewPool(-5)
	if p2.Capacity() != 0 {
		t.Fatalf("negative capacity clamped to %d, want 0", p2.Capacity())
	}
}

func TestPoolReleasePanicsOnOverRelease(t *testing.T) {
	p := NewPool(10)
	p.Reserve(5)
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	p.Release(6)
}

func TestBufferFIFO(t *testing.T) {
	b := New(5, 0)
	for i := uint32(0); i < 3; i++ {
		if r := b.Push(pkt(inet.ClassHighPriority, i)); r != DropNone {
			t.Fatalf("Push #%d: %v", i, r)
		}
	}
	for i := uint32(0); i < 3; i++ {
		got := b.Pop()
		if got == nil || got.Seq != i {
			t.Fatalf("Pop = %v, want seq %d", got, i)
		}
	}
	if b.Pop() != nil {
		t.Fatal("Pop on empty buffer returned a packet")
	}
}

func TestBufferTailDrop(t *testing.T) {
	b := New(2, 0)
	b.Push(pkt(inet.ClassHighPriority, 1))
	b.Push(pkt(inet.ClassHighPriority, 2))
	if r := b.Push(pkt(inet.ClassHighPriority, 3)); r != DropFull {
		t.Fatalf("Push on full buffer = %v, want DropFull", r)
	}
	if b.Dropped(inet.ClassHighPriority) != 1 {
		t.Fatalf("Dropped = %d, want 1", b.Dropped(inet.ClassHighPriority))
	}
	// FIFO content unchanged: 1, 2.
	if got := b.Pop(); got.Seq != 1 {
		t.Fatalf("Pop = seq %d, want 1", got.Seq)
	}
}

func TestBufferDropHeadEvictsOldest(t *testing.T) {
	b := New(2, 0)
	b.PushDropHead(pkt(inet.ClassRealTime, 1))
	b.PushDropHead(pkt(inet.ClassRealTime, 2))
	evicted, reason := b.PushDropHead(pkt(inet.ClassRealTime, 3))
	if reason != DropHead {
		t.Fatalf("reason = %v, want DropHead", reason)
	}
	if evicted == nil || evicted.Seq != 1 {
		t.Fatalf("evicted = %v, want seq 1", evicted)
	}
	if b.Evicted() != 1 {
		t.Fatalf("Evicted() = %d, want 1", b.Evicted())
	}
	// Newest packets survive: 2, 3.
	if got := b.Pop(); got.Seq != 2 {
		t.Fatalf("Pop = seq %d, want 2", got.Seq)
	}
	if got := b.Pop(); got.Seq != 3 {
		t.Fatalf("Pop = seq %d, want 3", got.Seq)
	}
}

func TestBufferDropHeadZeroCapacity(t *testing.T) {
	b := New(0, 0)
	evicted, reason := b.PushDropHead(pkt(inet.ClassRealTime, 1))
	if evicted != nil || reason != DropFull {
		t.Fatalf("zero-cap PushDropHead = (%v, %v), want (nil, DropFull)", evicted, reason)
	}
	if b.Len() != 0 {
		t.Fatal("zero-cap buffer stored a packet")
	}
}

func TestBufferAlphaAdmission(t *testing.T) {
	// Capacity 5, α=2: best-effort admitted only while free > 2, i.e. at
	// most 3 best-effort packets.
	b := New(5, 2)
	admitted := 0
	for i := uint32(0); i < 6; i++ {
		if b.PushIfAboveAlpha(pkt(inet.ClassBestEffort, i)) == DropNone {
			admitted++
		}
	}
	if admitted != 3 {
		t.Fatalf("admitted %d best-effort packets, want 3", admitted)
	}
	if b.Dropped(inet.ClassBestEffort) != 3 {
		t.Fatalf("Dropped = %d, want 3", b.Dropped(inet.ClassBestEffort))
	}
	// High-priority pushes still fill the α reserve.
	if r := b.Push(pkt(inet.ClassHighPriority, 9)); r != DropNone {
		t.Fatalf("HP Push into α reserve = %v, want DropNone", r)
	}
}

func TestBufferDrain(t *testing.T) {
	b := New(4, 0)
	for i := uint32(0); i < 4; i++ {
		b.Push(pkt(inet.ClassHighPriority, i))
	}
	out := b.Drain()
	if len(out) != 4 {
		t.Fatalf("Drain returned %d packets, want 4", len(out))
	}
	for i, p := range out {
		if p.Seq != uint32(i) {
			t.Fatalf("Drain order broken: %v", out)
		}
	}
	if b.Len() != 0 {
		t.Fatal("buffer not empty after Drain")
	}
}

func TestBufferClearCountsNoDrops(t *testing.T) {
	b := New(4, 0)
	b.Push(pkt(inet.ClassHighPriority, 1))
	b.Clear()
	if b.Len() != 0 || b.DroppedTotal() != 0 {
		t.Fatalf("after Clear: len=%d drops=%d", b.Len(), b.DroppedTotal())
	}
}

func TestBufferUnspecifiedCountsAsBestEffort(t *testing.T) {
	b := New(0, 0)
	b.Push(pkt(inet.ClassUnspecified, 1))
	if b.Dropped(inet.ClassBestEffort) != 1 {
		t.Fatal("unspecified-class drop not counted as best effort")
	}
	if b.Dropped(inet.ClassUnspecified) != 1 {
		t.Fatal("Dropped(unspecified) should resolve to best effort")
	}
}

func TestDropReasonString(t *testing.T) {
	tests := []struct {
		give DropReason
		want string
	}{
		{DropNone, "none"},
		{DropFull, "full"},
		{DropHead, "drop-head"},
		{DropBelowAlpha, "below-alpha"},
		{DropReason(99), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

// Property: the buffer never exceeds its capacity and never loses FIFO
// order, whatever mix of operations is applied.
func TestPropertyBufferInvariants(t *testing.T) {
	type step struct {
		Op    uint8 // 0 push, 1 drop-head push, 2 alpha push, 3 pop
		Class uint8
	}
	f := func(capacity uint8, alphaRaw uint8, steps []step) bool {
		capInt := int(capacity % 16)
		alpha := int(alphaRaw % 8)
		b := New(capInt, alpha)
		var nextSeq uint32
		var lastPopped int64 = -1
		for _, s := range steps {
			class := inet.Class(s.Class % 4)
			switch s.Op % 4 {
			case 0:
				b.Push(pkt(class, nextSeq))
				nextSeq++
			case 1:
				b.PushDropHead(pkt(class, nextSeq))
				nextSeq++
			case 2:
				b.PushIfAboveAlpha(pkt(class, nextSeq))
				nextSeq++
			case 3:
				if p := b.Pop(); p != nil {
					if int64(p.Seq) <= lastPopped {
						return false // FIFO order violated
					}
					lastPopped = int64(p.Seq)
				}
			}
			if b.Len() > b.Cap() {
				return false // capacity exceeded
			}
			if b.Free() < 0 {
				return false
			}
		}
		// Remaining contents must still be in increasing-seq order.
		prev := lastPopped
		for _, p := range b.Drain() {
			if int64(p.Seq) <= prev {
				return false
			}
			prev = int64(p.Seq)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: accepted + dropped equals the number of offered packets.
func TestPropertyBufferAccounting(t *testing.T) {
	f := func(capacity uint8, offers []uint8) bool {
		b := New(int(capacity%8), 1)
		var offered uint64
		for _, o := range offers {
			class := inet.Class(o % 4)
			switch o % 3 {
			case 0:
				b.Push(pkt(class, 0))
			case 1:
				b.PushDropHead(pkt(class, 0))
			case 2:
				b.PushIfAboveAlpha(pkt(class, 0))
			}
			offered++
		}
		// Drop-head evictions both accept the new packet and drop an old
		// one, so: accepted + dropped == offered + evicted.
		return b.Accepted()+b.DroppedTotal() == offered+b.Evicted()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: pool accounting never goes negative or beyond capacity.
func TestPropertyPoolInvariant(t *testing.T) {
	f := func(capacity uint8, ops []int8) bool {
		p := NewPool(int(capacity))
		var granted []int
		for _, op := range ops {
			if op >= 0 {
				n := int(op%16) + 1
				if p.Reserve(n) {
					granted = append(granted, n)
				}
			} else if len(granted) > 0 {
				p.Release(granted[len(granted)-1])
				granted = granted[:len(granted)-1]
			}
			if p.Reserved() < 0 || p.Reserved() > p.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBufferDropHeadProtectsOtherClasses(t *testing.T) {
	// A full buffer holding high-priority packets must not evict them to
	// admit real-time arrivals (Table 3.3: "drop the first real-time
	// packet").
	b := New(3, 0)
	b.Push(pkt(inet.ClassHighPriority, 1))
	b.PushDropHead(pkt(inet.ClassRealTime, 2))
	b.Push(pkt(inet.ClassHighPriority, 3))

	// Full: 1(HP), 2(RT), 3(HP). A new RT packet evicts the RT one even
	// though it is not at the head.
	evicted, reason := b.PushDropHead(pkt(inet.ClassRealTime, 4))
	if reason != DropHead || evicted == nil || evicted.Seq != 2 {
		t.Fatalf("evicted %v (%v), want RT seq 2", evicted, reason)
	}
	// Now full with 1(HP), 3(HP), 4(RT): another RT evicts seq 4.
	evicted, _ = b.PushDropHead(pkt(inet.ClassRealTime, 5))
	if evicted == nil || evicted.Seq != 4 {
		t.Fatalf("evicted %v, want RT seq 4", evicted)
	}
	// Drain order preserved for survivors.
	if got := b.Pop(); got.Seq != 1 {
		t.Fatalf("Pop = %d, want 1", got.Seq)
	}
}

func TestBufferDropHeadFullOfOtherClassesDropsIncoming(t *testing.T) {
	b := New(2, 0)
	b.Push(pkt(inet.ClassHighPriority, 1))
	b.Push(pkt(inet.ClassHighPriority, 2))
	evicted, reason := b.PushDropHead(pkt(inet.ClassRealTime, 3))
	if evicted != nil || reason != DropFull {
		t.Fatalf("got (%v, %v), want (nil, DropFull)", evicted, reason)
	}
	if b.Len() != 2 || b.Dropped(inet.ClassRealTime) != 1 {
		t.Fatalf("len=%d rtDrops=%d, want 2/1", b.Len(), b.Dropped(inet.ClassRealTime))
	}
}

func TestPoolReservePartial(t *testing.T) {
	p := NewPool(50)
	if got := p.ReservePartial(30); got != 30 {
		t.Fatalf("ReservePartial(30) = %d, want 30", got)
	}
	// Only 20 left: a 30-packet request gets the remainder.
	if got := p.ReservePartial(30); got != 20 {
		t.Fatalf("ReservePartial(30) = %d, want 20", got)
	}
	if got := p.ReservePartial(5); got != 0 {
		t.Fatalf("ReservePartial on empty pool = %d, want 0", got)
	}
	if got := p.ReservePartial(-1); got != 0 {
		t.Fatalf("ReservePartial(-1) = %d, want 0", got)
	}
	p.Release(50)
	if p.Available() != 50 {
		t.Fatalf("Available = %d after release, want 50", p.Available())
	}
}

// Property: ReservePartial never over-commits the pool.
func TestPropertyReservePartialBounded(t *testing.T) {
	f := func(capacity uint8, requests []uint8) bool {
		p := NewPool(int(capacity))
		var granted int
		for _, r := range requests {
			granted += p.ReservePartial(int(r))
			if p.Reserved() > p.Capacity() || p.Reserved() != granted {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
