package buffer

import "math/bits"

// maxFreeBucket bounds the slab sizes the free list retains: buffers with
// more than 1<<maxFreeBucket slots are handed back to the garbage
// collector rather than cached. Per-session grants are bounded by the
// router's pool size, so real workloads sit far below this.
const maxFreeBucket = 20

// FreeList recycles Buffers bucketed by power-of-two slab size, so that a
// router churning through handoff sessions reuses ring storage instead of
// allocating per session (the buffer-path counterpart of the packet free
// list in internal/inet/pool.go). The zero value is ready to use.
//
// FreeList is not safe for concurrent use; like the simulation engine it
// serves, each worker owns its own.
type FreeList struct {
	buckets [maxFreeBucket + 1][]*Buffer
}

// bucketFor maps a capacity to its slab-size bucket, or -1 when the
// capacity is not cacheable (zero, or beyond maxFreeBucket).
func bucketFor(capacity int) int {
	if capacity <= 0 {
		return -1
	}
	k := bits.Len(uint(capacity - 1))
	if k > maxFreeBucket {
		return -1
	}
	return k
}

// Get returns an empty buffer with the given capacity and α, reusing
// cached slab storage when a same-sized buffer was Put earlier. Counters
// start at zero either way.
func (fl *FreeList) Get(capacity, alpha int) *Buffer {
	k := bucketFor(capacity)
	if k >= 0 {
		if n := len(fl.buckets[k]); n > 0 {
			b := fl.buckets[k][n-1]
			fl.buckets[k][n-1] = nil
			fl.buckets[k] = fl.buckets[k][:n-1]
			b.reset(capacity, alpha)
			return b
		}
	}
	return New(capacity, alpha)
}

// Put clears b (discarding any remaining packet references without
// counting drops) and caches it for a future Get of a compatible
// capacity. b must not be used after Put. A nil b is ignored.
func (fl *FreeList) Put(b *Buffer) {
	if b == nil {
		return
	}
	b.Clear()
	k := bucketFor(len(b.slots))
	if k < 0 || len(b.slots) != 1<<k {
		return
	}
	fl.buckets[k] = append(fl.buckets[k], b)
}
