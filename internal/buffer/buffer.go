package buffer

import (
	"repro/internal/inet"
)

// DropReason classifies why the buffer rejected or evicted a packet.
type DropReason int

const (
	// DropNone means the packet was accepted.
	DropNone DropReason = iota
	// DropFull means the buffer had no free slot (tail drop).
	DropFull
	// DropHead means a real-time packet was evicted to admit a newer one
	// ("if buffer full, drop the first real-time packet", Table 3.3).
	DropHead
	// DropBelowAlpha means a best-effort packet was refused because free
	// space was not above the α threshold (§3.2.2.2 Case 1.c).
	DropBelowAlpha
)

// String implements fmt.Stringer.
func (r DropReason) String() string {
	switch r {
	case DropNone:
		return "none"
	case DropFull:
		return "full"
	case DropHead:
		return "drop-head"
	case DropBelowAlpha:
		return "below-alpha"
	default:
		return "unknown"
	}
}

// Buffer is one handoff session's FIFO packet store at an access router.
// Its capacity is the space granted from the router's Pool during the
// handover-initiation negotiation.
type Buffer struct {
	capacity int
	alpha    int
	items    []*inet.Packet

	accepted uint64
	dropped  map[inet.Class]uint64
	evicted  uint64
}

// New creates a buffer holding up to capacity packets, with the given α
// threshold for best-effort admission. α is a constant configured by the
// network administrator in the thesis.
func New(capacity, alpha int) *Buffer {
	if capacity < 0 {
		capacity = 0
	}
	if alpha < 0 {
		alpha = 0
	}
	return &Buffer{
		capacity: capacity,
		alpha:    alpha,
		dropped:  make(map[inet.Class]uint64),
	}
}

// Len returns the number of buffered packets.
func (b *Buffer) Len() int { return len(b.items) }

// Cap returns the buffer capacity in packets.
func (b *Buffer) Cap() int { return b.capacity }

// Free returns the remaining capacity.
func (b *Buffer) Free() int { return b.capacity - len(b.items) }

// Full reports whether no slot remains.
func (b *Buffer) Full() bool { return b.Free() <= 0 }

// Alpha returns the admission threshold for best-effort packets.
func (b *Buffer) Alpha() int { return b.alpha }

// Accepted returns the number of packets admitted over the buffer's life.
func (b *Buffer) Accepted() uint64 { return b.accepted }

// Evicted returns the number of packets removed by drop-head evictions.
func (b *Buffer) Evicted() uint64 { return b.evicted }

// Dropped returns the number of packets of the given class the buffer
// refused or evicted.
func (b *Buffer) Dropped(c inet.Class) uint64 { return b.dropped[c.Effective()] }

// DroppedTotal returns all refused or evicted packets.
func (b *Buffer) DroppedTotal() uint64 {
	var total uint64
	for _, n := range b.dropped {
		total += n
	}
	return total
}

// Push appends pkt, tail-dropping it when the buffer is full. It returns
// the drop reason (DropNone on success).
func (b *Buffer) Push(pkt *inet.Packet) DropReason {
	if b.Full() {
		b.countDrop(pkt)
		return DropFull
	}
	b.items = append(b.items, pkt)
	b.accepted++
	return DropNone
}

// PushDropHead appends pkt, evicting the oldest *real-time* packet to make
// room when full ("if buffer full, drop the first real-time packet",
// Table 3.3: stale real-time packets are worthless, and other classes
// sharing the buffer must not be sacrificed for them). It returns the
// evicted packet (nil if none) and the drop reason. When the buffer is
// full and holds no real-time packet, the incoming packet is dropped
// instead.
func (b *Buffer) PushDropHead(pkt *inet.Packet) (evicted *inet.Packet, reason DropReason) {
	if b.capacity == 0 {
		b.countDrop(pkt)
		return nil, DropFull
	}
	if b.Full() {
		idx := -1
		for i, p := range b.items {
			if p.EffectiveClass() == inet.ClassRealTime {
				idx = i
				break
			}
		}
		if idx < 0 {
			b.countDrop(pkt)
			return nil, DropFull
		}
		evicted = b.items[idx]
		copy(b.items[idx:], b.items[idx+1:])
		b.items = b.items[:len(b.items)-1]
		b.evicted++
		b.countDrop(evicted)
		reason = DropHead
	}
	b.items = append(b.items, pkt)
	b.accepted++
	return evicted, reason
}

// PushIfAboveAlpha appends pkt only while free space exceeds α (best-effort
// admission, Case 1.c / 3.c). It returns the drop reason.
func (b *Buffer) PushIfAboveAlpha(pkt *inet.Packet) DropReason {
	if b.Free() <= b.alpha {
		b.countDrop(pkt)
		return DropBelowAlpha
	}
	b.items = append(b.items, pkt)
	b.accepted++
	return DropNone
}

// Pop removes and returns the oldest packet, or nil when empty.
func (b *Buffer) Pop() *inet.Packet {
	if len(b.items) == 0 {
		return nil
	}
	pkt := b.items[0]
	copy(b.items, b.items[1:])
	b.items = b.items[:len(b.items)-1]
	return pkt
}

// Drain removes and returns all packets in FIFO order.
func (b *Buffer) Drain() []*inet.Packet {
	out := b.items
	b.items = nil
	return out
}

// Clear discards the contents without counting drops (used when a session's
// lifetime expires after the packets were already forwarded elsewhere).
func (b *Buffer) Clear() { b.items = nil }

func (b *Buffer) countDrop(pkt *inet.Packet) {
	b.dropped[pkt.EffectiveClass()]++
}
