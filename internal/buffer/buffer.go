package buffer

import (
	"fmt"
	"math/bits"

	"repro/internal/inet"
)

// DropReason classifies why the buffer rejected or evicted a packet.
type DropReason int

const (
	// DropNone means the packet was accepted.
	DropNone DropReason = iota
	// DropFull means the buffer had no free slot (tail drop).
	DropFull
	// DropHead means a real-time packet was evicted to admit a newer one
	// ("if buffer full, drop the first real-time packet", Table 3.3).
	DropHead
	// DropBelowAlpha means a best-effort packet was refused because free
	// space was not above the α threshold (§3.2.2.2 Case 1.c).
	DropBelowAlpha
)

// String implements fmt.Stringer.
func (r DropReason) String() string {
	switch r {
	case DropNone:
		return "none"
	case DropFull:
		return "full"
	case DropHead:
		return "drop-head"
	case DropBelowAlpha:
		return "below-alpha"
	default:
		return "unknown"
	}
}

// noSlot terminates the slot chains.
const noSlot = -1

// slot is one cell of the buffer's storage slab. Occupied slots form a
// doubly-linked arrival-order list through prev/next; the subset holding
// real-time packets additionally forms a singly-linked chain through
// rtNext, oldest first. Free slots are chained through next.
type slot struct {
	pkt    *inet.Packet
	prev   int32
	next   int32
	rtNext int32
}

// Buffer is one handoff session's FIFO packet store at an access router.
// Its capacity is the space granted from the router's Pool during the
// handover-initiation negotiation.
//
// Storage is a power-of-two slab of slots threaded by index chains, so
// Push, Pop, and the class-aware drop-head eviction are all O(1): the
// real-time chain tracks the oldest real-time packet directly, replacing
// the linear scan the slice implementation needed. Because real-time
// packets only ever leave from the front of their chain (Pop removes the
// overall head, which if real-time is also the real-time head; eviction
// removes the real-time head by definition), a singly-linked class chain
// suffices, while the doubly-linked arrival list supports the O(1)
// mid-list unlink an eviction needs.
type Buffer struct {
	capacity int
	alpha    int
	length   int

	slots    []slot
	freeHead int32
	head     int32 // oldest packet in arrival order
	tail     int32 // youngest packet in arrival order
	rtHead   int32 // oldest real-time packet
	rtTail   int32 // youngest real-time packet

	accepted uint64
	evicted  uint64
	// dropped counts refused or evicted packets by effective class
	// (index inet.ClassRealTime..inet.ClassBestEffort; 0 unused).
	dropped [4]uint64
}

// slabSize returns the power-of-two slab length for a capacity.
func slabSize(capacity int) int {
	if capacity <= 0 {
		return 0
	}
	return 1 << bits.Len(uint(capacity-1))
}

// New creates a buffer holding up to capacity packets, with the given α
// threshold for best-effort admission. α is a constant configured by the
// network administrator in the thesis. Negative arguments clamp to zero;
// use NewChecked to reject an α that can never admit best-effort traffic.
func New(capacity, alpha int) *Buffer {
	if capacity < 0 {
		capacity = 0
	}
	if alpha < 0 {
		alpha = 0
	}
	b := &Buffer{}
	b.reset(capacity, alpha)
	return b
}

// NewChecked is New with configuration validation: a non-empty buffer
// whose α threshold meets or exceeds its capacity can never satisfy
// Free() > α, so every best-effort packet would be silently refused.
// NewChecked surfaces that misconfiguration as an error instead.
func NewChecked(capacity, alpha int) (*Buffer, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("buffer: negative capacity %d", capacity)
	}
	if alpha < 0 {
		return nil, fmt.Errorf("buffer: negative alpha %d", alpha)
	}
	if capacity > 0 && alpha >= capacity {
		return nil, fmt.Errorf("buffer: alpha %d >= capacity %d would refuse every best-effort packet", alpha, capacity)
	}
	return New(capacity, alpha), nil
}

// reset re-initialises b for a (possibly different) capacity and α,
// growing the slab when needed and rebuilding the free chain. All
// counters restart from zero. The contents must already be released
// (Clear or Drain); reset drops any remaining packet references.
func (b *Buffer) reset(capacity, alpha int) {
	if capacity < 0 {
		capacity = 0
	}
	if alpha < 0 {
		alpha = 0
	}
	if n := slabSize(capacity); n > len(b.slots) {
		b.slots = make([]slot, n)
	}
	b.capacity = capacity
	b.alpha = alpha
	b.length = 0
	b.head, b.tail = noSlot, noSlot
	b.rtHead, b.rtTail = noSlot, noSlot
	b.accepted, b.evicted = 0, 0
	b.dropped = [4]uint64{}
	b.freeHead = noSlot
	for i := len(b.slots) - 1; i >= 0; i-- {
		b.slots[i] = slot{pkt: nil, prev: noSlot, next: b.freeHead, rtNext: noSlot}
		b.freeHead = int32(i)
	}
}

// Len returns the number of buffered packets.
func (b *Buffer) Len() int { return b.length }

// Cap returns the buffer capacity in packets.
func (b *Buffer) Cap() int { return b.capacity }

// Free returns the remaining capacity.
func (b *Buffer) Free() int { return b.capacity - b.length }

// Full reports whether no slot remains.
func (b *Buffer) Full() bool { return b.Free() <= 0 }

// Alpha returns the admission threshold for best-effort packets.
func (b *Buffer) Alpha() int { return b.alpha }

// Accepted returns the number of packets admitted over the buffer's life.
func (b *Buffer) Accepted() uint64 { return b.accepted }

// Evicted returns the number of packets removed by drop-head evictions.
func (b *Buffer) Evicted() uint64 { return b.evicted }

// Dropped returns the number of packets of the given class the buffer
// refused or evicted.
func (b *Buffer) Dropped(c inet.Class) uint64 { return b.dropped[c.Effective()] }

// DroppedTotal returns all refused or evicted packets.
func (b *Buffer) DroppedTotal() uint64 {
	var total uint64
	for _, n := range b.dropped {
		total += n
	}
	return total
}

// pushTail links pkt into a free slot at the arrival-order tail.
// The caller must have checked capacity.
func (b *Buffer) pushTail(pkt *inet.Packet) {
	idx := b.freeHead
	s := &b.slots[idx]
	b.freeHead = s.next
	s.pkt = pkt
	s.prev = b.tail
	s.next = noSlot
	s.rtNext = noSlot
	if b.tail != noSlot {
		b.slots[b.tail].next = idx
	} else {
		b.head = idx
	}
	b.tail = idx
	if pkt.EffectiveClass() == inet.ClassRealTime {
		if b.rtTail != noSlot {
			b.slots[b.rtTail].rtNext = idx
		} else {
			b.rtHead = idx
		}
		b.rtTail = idx
	}
	b.length++
	b.accepted++
}

// unlink removes the occupied slot idx from the arrival list and returns
// its packet to the caller, putting the slot back on the free chain. It
// does not touch the real-time chain; the caller handles that.
func (b *Buffer) unlink(idx int32) *inet.Packet {
	s := &b.slots[idx]
	pkt := s.pkt
	if s.prev != noSlot {
		b.slots[s.prev].next = s.next
	} else {
		b.head = s.next
	}
	if s.next != noSlot {
		b.slots[s.next].prev = s.prev
	} else {
		b.tail = s.prev
	}
	*s = slot{pkt: nil, prev: noSlot, next: b.freeHead, rtNext: noSlot}
	b.freeHead = idx
	b.length--
	return pkt
}

// Push appends pkt, tail-dropping it when the buffer is full. It returns
// the drop reason (DropNone on success).
func (b *Buffer) Push(pkt *inet.Packet) DropReason {
	if b.Full() {
		b.countDrop(pkt)
		return DropFull
	}
	b.pushTail(pkt)
	return DropNone
}

// PushDropHead appends pkt, evicting the oldest *real-time* packet to make
// room when full ("if buffer full, drop the first real-time packet",
// Table 3.3: stale real-time packets are worthless, and other classes
// sharing the buffer must not be sacrificed for them). It returns the
// evicted packet (nil if none) and the drop reason. When the buffer is
// full and holds no real-time packet, the incoming packet is dropped
// instead.
func (b *Buffer) PushDropHead(pkt *inet.Packet) (evicted *inet.Packet, reason DropReason) {
	if b.capacity == 0 {
		b.countDrop(pkt)
		return nil, DropFull
	}
	if b.length >= b.capacity {
		idx := b.rtHead
		if idx == noSlot {
			b.countDrop(pkt)
			return nil, DropFull
		}
		b.rtHead = b.slots[idx].rtNext
		if b.rtHead == noSlot {
			b.rtTail = noSlot
		}
		evicted = b.unlink(idx)
		b.evicted++
		b.countDrop(evicted)
		reason = DropHead
	}
	b.pushTail(pkt)
	return evicted, reason
}

// PushIfAboveAlpha appends pkt only while free space exceeds α (best-effort
// admission, Case 1.c / 3.c). It returns the drop reason.
func (b *Buffer) PushIfAboveAlpha(pkt *inet.Packet) DropReason {
	if b.Free() <= b.alpha {
		b.countDrop(pkt)
		return DropBelowAlpha
	}
	b.pushTail(pkt)
	return DropNone
}

// Pop removes and returns the oldest packet, or nil when empty.
func (b *Buffer) Pop() *inet.Packet {
	idx := b.head
	if idx == noSlot {
		return nil
	}
	if idx == b.rtHead {
		// The overall head is the oldest real-time packet: advance the
		// class chain with it.
		b.rtHead = b.slots[idx].rtNext
		if b.rtHead == noSlot {
			b.rtTail = noSlot
		}
	}
	return b.unlink(idx)
}

// Drain removes and returns all packets in FIFO order. The returned slice
// is freshly allocated and owned by the caller; it never aliases buffer
// storage. Prefer DrainTo on hot paths to reuse a scratch slice.
func (b *Buffer) Drain() []*inet.Packet {
	if b.length == 0 {
		return nil
	}
	return b.DrainTo(make([]*inet.Packet, 0, b.length))
}

// DrainTo appends all packets in FIFO order to dst and returns the
// extended slice, emptying the buffer. dst may be nil or a recycled
// scratch slice; when its capacity suffices, DrainTo allocates nothing.
// Ownership of the packets transfers to the caller.
func (b *Buffer) DrainTo(dst []*inet.Packet) []*inet.Packet {
	for idx := b.head; idx != noSlot; idx = b.slots[idx].next {
		dst = append(dst, b.slots[idx].pkt)
	}
	b.clearLinks()
	return dst
}

// Clear discards the contents without counting drops (used when a session's
// lifetime expires after the packets were already forwarded elsewhere).
func (b *Buffer) Clear() { b.clearLinks() }

// clearLinks releases every occupied slot back to the free chain.
func (b *Buffer) clearLinks() {
	for idx := b.head; idx != noSlot; {
		s := &b.slots[idx]
		next := s.next
		*s = slot{pkt: nil, prev: noSlot, next: b.freeHead, rtNext: noSlot}
		b.freeHead = idx
		idx = next
	}
	b.head, b.tail = noSlot, noSlot
	b.rtHead, b.rtTail = noSlot, noSlot
	b.length = 0
}

func (b *Buffer) countDrop(pkt *inet.Packet) {
	b.dropped[pkt.EffectiveClass()]++
}
