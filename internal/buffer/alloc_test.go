package buffer

import (
	"testing"

	"repro/internal/inet"
)

// TestBufferHotPathZeroAlloc pins the tentpole property: once a buffer
// (or the free list serving it) is warm, Push/Pop/PushDropHead/
// PushIfAboveAlpha and a full session grant/release cycle allocate
// nothing.
func TestBufferHotPathZeroAlloc(t *testing.T) {
	p := &inet.Packet{Class: inet.ClassRealTime, Size: 160}
	hp := &inet.Packet{Class: inet.ClassHighPriority, Size: 160}

	buf := New(64, 4)
	if n := testing.AllocsPerRun(100, func() {
		for i := 0; i < 60; i++ {
			buf.Push(p)
		}
		for buf.Len() > 0 {
			buf.Pop()
		}
	}); n != 0 {
		t.Fatalf("Push/Pop cycle: %v allocs/op, want 0", n)
	}

	full := New(32, 0)
	for !full.Full() {
		full.Push(p)
	}
	if n := testing.AllocsPerRun(100, func() {
		full.PushDropHead(p)
		full.PushDropHead(hp)
	}); n != 0 {
		t.Fatalf("PushDropHead on full buffer: %v allocs/op, want 0", n)
	}

	alpha := New(16, 4)
	if n := testing.AllocsPerRun(100, func() {
		for alpha.Free() > alpha.Alpha() {
			alpha.PushIfAboveAlpha(hp)
		}
		alpha.PushIfAboveAlpha(hp) // refused below α
		for alpha.Len() > 0 {
			alpha.Pop()
		}
	}); n != 0 {
		t.Fatalf("PushIfAboveAlpha cycle: %v allocs/op, want 0", n)
	}

	var fl FreeList
	fl.Put(fl.Get(20, 6)) // warm the bucket
	if n := testing.AllocsPerRun(100, func() {
		b := fl.Get(20, 6)
		for j := 0; j < 20; j++ {
			b.PushDropHead(p)
		}
		b.Clear()
		fl.Put(b)
	}); n != 0 {
		t.Fatalf("free-listed session cycle: %v allocs/op, want 0", n)
	}
}
