package buffer

import (
	"testing"

	"repro/internal/inet"
)

func BenchmarkPushPop(b *testing.B) {
	buf := New(64, 4)
	p := &inet.Packet{Class: inet.ClassHighPriority, Size: 160}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Push(p)
		if buf.Full() {
			for buf.Len() > 0 {
				buf.Pop()
			}
		}
	}
}

func BenchmarkPushDropHead(b *testing.B) {
	buf := New(32, 0)
	p := &inet.Packet{Class: inet.ClassRealTime, Size: 160}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.PushDropHead(p)
	}
}

func BenchmarkDecide(b *testing.B) {
	avail := Availability{NAR: true, PAR: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Decide(avail, inet.Class(i%4))
	}
}
