package buffer

import (
	"testing"

	"repro/internal/inet"
)

func BenchmarkPushPop(b *testing.B) {
	buf := New(64, 4)
	p := &inet.Packet{Class: inet.ClassHighPriority, Size: 160}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Push(p)
		if buf.Full() {
			for buf.Len() > 0 {
				buf.Pop()
			}
		}
	}
}

func BenchmarkPushDropHead(b *testing.B) {
	buf := New(32, 0)
	p := &inet.Packet{Class: inet.ClassRealTime, Size: 160}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.PushDropHead(p)
	}
}

// BenchmarkPushDropHeadSweep fills a buffer of each size with a mix of
// high-priority and real-time packets and then measures steady-state
// drop-head pushes on the full buffer. ns/op must stay flat across sizes:
// the eviction is O(1) via the real-time chain, where the old slice
// implementation scanned and compacted O(n) per push.
func BenchmarkPushDropHeadSweep(b *testing.B) {
	for _, size := range []int{16, 64, 256, 1024, 4096} {
		b.Run(fmtSize(size), func(b *testing.B) {
			buf := New(size, 0)
			hp := &inet.Packet{Class: inet.ClassHighPriority, Size: 160}
			rt := &inet.Packet{Class: inet.ClassRealTime, Size: 160}
			// Worst case for the old scan: the front half is
			// non-real-time, so eviction always searched past it.
			for i := 0; i < size/2; i++ {
				buf.Push(hp)
			}
			for !buf.Full() {
				buf.Push(rt)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.PushDropHead(rt)
			}
		})
	}
}

func fmtSize(n int) string {
	switch n {
	case 16:
		return "cap16"
	case 64:
		return "cap64"
	case 256:
		return "cap256"
	case 1024:
		return "cap1024"
	case 4096:
		return "cap4096"
	}
	return "cap?"
}

// BenchmarkFreeListSessionChurn models the per-handoff buffer lifecycle:
// grant a buffer, push/pop a burst, release it. With the FreeList the
// steady state allocates nothing.
func BenchmarkFreeListSessionChurn(b *testing.B) {
	var fl FreeList
	p := &inet.Packet{Class: inet.ClassRealTime, Size: 160}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := fl.Get(20, 6)
		for j := 0; j < 20; j++ {
			buf.PushDropHead(p)
		}
		for buf.Len() > 0 {
			buf.Pop()
		}
		fl.Put(buf)
	}
}

func BenchmarkDecide(b *testing.B) {
	avail := Availability{NAR: true, PAR: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Decide(avail, inet.Class(i%4))
	}
}
