package buffer

import (
	"math/rand"
	"testing"

	"repro/internal/inet"
)

// refBuffer is a deliberately naive slice implementation of the Buffer
// contract, kept as the oracle for the differential test: every operation
// is the obvious O(n) version, so any divergence points at the ring.
type refBuffer struct {
	capacity int
	alpha    int
	items    []*inet.Packet

	accepted uint64
	evicted  uint64
	dropped  map[inet.Class]uint64
}

func newRef(capacity, alpha int) *refBuffer {
	return &refBuffer{capacity: capacity, alpha: alpha, dropped: make(map[inet.Class]uint64)}
}

func (b *refBuffer) countDrop(pkt *inet.Packet) { b.dropped[pkt.EffectiveClass()]++ }

func (b *refBuffer) push(pkt *inet.Packet) DropReason {
	if len(b.items) >= b.capacity {
		b.countDrop(pkt)
		return DropFull
	}
	b.items = append(b.items, pkt)
	b.accepted++
	return DropNone
}

func (b *refBuffer) pushDropHead(pkt *inet.Packet) (*inet.Packet, DropReason) {
	if b.capacity == 0 {
		b.countDrop(pkt)
		return nil, DropFull
	}
	var evicted *inet.Packet
	reason := DropNone
	if len(b.items) >= b.capacity {
		idx := -1
		for i, p := range b.items {
			if p.EffectiveClass() == inet.ClassRealTime {
				idx = i
				break
			}
		}
		if idx < 0 {
			b.countDrop(pkt)
			return nil, DropFull
		}
		evicted = b.items[idx]
		b.items = append(b.items[:idx], b.items[idx+1:]...)
		b.evicted++
		b.countDrop(evicted)
		reason = DropHead
	}
	b.items = append(b.items, pkt)
	b.accepted++
	return evicted, reason
}

func (b *refBuffer) pushIfAboveAlpha(pkt *inet.Packet) DropReason {
	if b.capacity-len(b.items) <= b.alpha {
		b.countDrop(pkt)
		return DropBelowAlpha
	}
	b.items = append(b.items, pkt)
	b.accepted++
	return DropNone
}

func (b *refBuffer) pop() *inet.Packet {
	if len(b.items) == 0 {
		return nil
	}
	pkt := b.items[0]
	b.items = b.items[1:]
	return pkt
}

func (b *refBuffer) drain() []*inet.Packet {
	out := b.items
	b.items = nil
	return out
}

func (b *refBuffer) clear() { b.items = nil }

// checkState compares every observable of the ring buffer against the
// oracle: length, counters, per-class drop counts, and full contents (via
// a drain that is undone by re-pushing into fresh buffers when needed —
// here we only compare after ops, so contents are checked lazily through
// pops at the end of each round).
func checkState(t *testing.T, step int, b *Buffer, ref *refBuffer) {
	t.Helper()
	if b.Len() != len(ref.items) {
		t.Fatalf("step %d: Len=%d want %d", step, b.Len(), len(ref.items))
	}
	if b.Accepted() != ref.accepted {
		t.Fatalf("step %d: Accepted=%d want %d", step, b.Accepted(), ref.accepted)
	}
	if b.Evicted() != ref.evicted {
		t.Fatalf("step %d: Evicted=%d want %d", step, b.Evicted(), ref.evicted)
	}
	for _, c := range inet.Classes {
		if b.Dropped(c) != ref.dropped[c] {
			t.Fatalf("step %d: Dropped(%v)=%d want %d", step, c, b.Dropped(c), ref.dropped[c])
		}
	}
}

// TestBufferDifferential drives the ring buffer and the naive reference
// through the same seeded random operation stream and requires identical
// packet order, drop reasons, evictions, and counters at every step.
func TestBufferDifferential(t *testing.T) {
	classes := []inet.Class{
		inet.ClassUnspecified, inet.ClassRealTime,
		inet.ClassHighPriority, inet.ClassBestEffort,
	}
	for _, cfg := range []struct{ capacity, alpha int }{
		{0, 0}, {1, 0}, {3, 1}, {8, 2}, {17, 5}, {64, 16},
	} {
		rng := rand.New(rand.NewSource(int64(0x5eed + cfg.capacity)))
		b := New(cfg.capacity, cfg.alpha)
		ref := newRef(cfg.capacity, cfg.alpha)
		var seq uint32
		for step := 0; step < 20000; step++ {
			op := rng.Intn(100)
			switch {
			case op < 30:
				seq++
				p := pkt(classes[rng.Intn(len(classes))], seq)
				if got, want := b.Push(p), ref.push(p); got != want {
					t.Fatalf("cap=%d step %d: Push=%v want %v", cfg.capacity, step, got, want)
				}
			case op < 60:
				seq++
				p := pkt(classes[rng.Intn(len(classes))], seq)
				gotEv, gotR := b.PushDropHead(p)
				wantEv, wantR := ref.pushDropHead(p)
				if gotEv != wantEv || gotR != wantR {
					t.Fatalf("cap=%d step %d: PushDropHead=(%v,%v) want (%v,%v)",
						cfg.capacity, step, gotEv, gotR, wantEv, wantR)
				}
			case op < 80:
				seq++
				p := pkt(classes[rng.Intn(len(classes))], seq)
				if got, want := b.PushIfAboveAlpha(p), ref.pushIfAboveAlpha(p); got != want {
					t.Fatalf("cap=%d step %d: PushIfAboveAlpha=%v want %v", cfg.capacity, step, got, want)
				}
			case op < 95:
				if got, want := b.Pop(), ref.pop(); got != want {
					t.Fatalf("cap=%d step %d: Pop=%v want %v", cfg.capacity, step, got, want)
				}
			case op < 98:
				got, want := b.Drain(), ref.drain()
				if len(got) != len(want) {
					t.Fatalf("cap=%d step %d: Drain len=%d want %d", cfg.capacity, step, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("cap=%d step %d: Drain[%d]=%v want %v", cfg.capacity, step, i, got[i], want[i])
					}
				}
			default:
				b.Clear()
				ref.clear()
			}
			checkState(t, step, b, ref)
		}
		// Final content check: pop everything and compare order.
		for {
			got, want := b.Pop(), ref.pop()
			if got != want {
				t.Fatalf("cap=%d final: Pop=%v want %v", cfg.capacity, got, want)
			}
			if got == nil {
				break
			}
		}
	}
}

// TestBufferDifferentialThroughFreeList repeats a shorter differential run
// on buffers recycled through a FreeList, so slab reuse cannot leak state
// between sessions.
func TestBufferDifferentialThroughFreeList(t *testing.T) {
	var fl FreeList
	classes := []inet.Class{
		inet.ClassUnspecified, inet.ClassRealTime,
		inet.ClassHighPriority, inet.ClassBestEffort,
	}
	rng := rand.New(rand.NewSource(0xf1ee))
	var seq uint32
	for round := 0; round < 200; round++ {
		capacity := 1 + rng.Intn(40)
		alpha := rng.Intn(capacity)
		b := fl.Get(capacity, alpha)
		if b.Cap() != capacity || b.Alpha() != alpha || b.Len() != 0 ||
			b.Accepted() != 0 || b.Evicted() != 0 || b.DroppedTotal() != 0 {
			t.Fatalf("round %d: recycled buffer not pristine: cap=%d α=%d len=%d acc=%d ev=%d drop=%d",
				round, b.Cap(), b.Alpha(), b.Len(), b.Accepted(), b.Evicted(), b.DroppedTotal())
		}
		ref := newRef(capacity, alpha)
		for step := 0; step < 200; step++ {
			seq++
			p := pkt(classes[rng.Intn(len(classes))], seq)
			switch rng.Intn(4) {
			case 0:
				if got, want := b.Push(p), ref.push(p); got != want {
					t.Fatalf("round %d step %d: Push=%v want %v", round, step, got, want)
				}
			case 1:
				gotEv, gotR := b.PushDropHead(p)
				wantEv, wantR := ref.pushDropHead(p)
				if gotEv != wantEv || gotR != wantR {
					t.Fatalf("round %d step %d: PushDropHead mismatch", round, step)
				}
			case 2:
				if got, want := b.PushIfAboveAlpha(p), ref.pushIfAboveAlpha(p); got != want {
					t.Fatalf("round %d step %d: PushIfAboveAlpha=%v want %v", round, step, got, want)
				}
			case 3:
				if got, want := b.Pop(), ref.pop(); got != want {
					t.Fatalf("round %d step %d: Pop=%v want %v", round, step, got, want)
				}
			}
			checkState(t, step, b, ref)
		}
		fl.Put(b)
	}
}

// TestDrainDoesNotAliasStorage pins the satellite fix: the slice returned
// by Drain must stay valid after the buffer is refilled or recycled.
func TestDrainDoesNotAliasStorage(t *testing.T) {
	b := New(4, 0)
	first := []*inet.Packet{pkt(inet.ClassRealTime, 1), pkt(inet.ClassBestEffort, 2)}
	for _, p := range first {
		if r := b.Push(p); r != DropNone {
			t.Fatalf("Push: %v", r)
		}
	}
	out := b.Drain()
	for i := uint32(10); i < 14; i++ {
		b.Push(pkt(inet.ClassHighPriority, i))
	}
	b.Clear()
	for i, p := range out {
		if p != first[i] {
			t.Fatalf("drained slice mutated by refill: out[%d]=%v want %v", i, p, first[i])
		}
	}
	if got := b.Drain(); got != nil {
		t.Fatalf("Drain of empty buffer = %v, want nil", got)
	}
}

// TestDrainTo reuses a caller scratch slice across drains.
func TestDrainTo(t *testing.T) {
	b := New(8, 0)
	scratch := make([]*inet.Packet, 0, 8)
	for round := uint32(0); round < 3; round++ {
		for i := uint32(0); i < 5; i++ {
			b.Push(pkt(inet.ClassRealTime, round*10+i))
		}
		scratch = b.DrainTo(scratch[:0])
		if len(scratch) != 5 || b.Len() != 0 {
			t.Fatalf("round %d: drained %d packets (len %d), want 5 (0)", round, len(scratch), b.Len())
		}
		for i, p := range scratch {
			if p.Seq != round*10+uint32(i) {
				t.Fatalf("round %d: scratch[%d].Seq=%d want %d", round, i, p.Seq, round*10+uint32(i))
			}
		}
	}
}

// TestNewChecked covers the α-bounds satellite: configurations that can
// never admit a best-effort packet are rejected with an error.
func TestNewChecked(t *testing.T) {
	if _, err := NewChecked(10, 3); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if b, err := NewChecked(0, 0); err != nil || b == nil {
		t.Fatalf("zero-capacity buffer rejected: %v", err)
	}
	for _, bad := range []struct{ capacity, alpha int }{
		{10, 10}, {10, 11}, {1, 1}, {-1, 0}, {5, -2},
	} {
		if _, err := NewChecked(bad.capacity, bad.alpha); err == nil {
			t.Fatalf("NewChecked(%d, %d) accepted a misconfiguration", bad.capacity, bad.alpha)
		}
	}
}

// TestFreeListBucketsBySize checks that Get reuses compatible slabs and
// that oversized buffers are not cached.
func TestFreeListBucketsBySize(t *testing.T) {
	var fl FreeList
	a := fl.Get(10, 2) // slab 16
	a.Push(pkt(inet.ClassRealTime, 1))
	fl.Put(a)
	b := fl.Get(12, 3) // same bucket: must reuse a's slab
	if b != a {
		t.Fatal("Get(12) did not reuse the 16-slot slab from Put(Get(10))")
	}
	if b.Len() != 0 || b.Accepted() != 0 {
		t.Fatalf("recycled buffer kept state: len=%d accepted=%d", b.Len(), b.Accepted())
	}
	fl.Put(b)
	c := fl.Get(17, 0) // slab 32: different bucket
	if c == b {
		t.Fatal("Get(17) reused a 16-slot slab")
	}
	fl.Put(nil) // must not panic
	huge := New(1<<maxFreeBucket+1, 0)
	fl.Put(huge) // silently uncached
	if got := fl.Get(1<<maxFreeBucket+1, 0); got == huge {
		t.Fatal("oversized buffer was cached")
	}
}
