package buffer

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/inet"
)

// TestPolicyMatrix pins the full Table 3.3 of the thesis.
func TestPolicyMatrix(t *testing.T) {
	tests := []struct {
		name  string
		avail Availability
		class inet.Class
		want  Op
	}{
		// Case 1: NAR yes, PAR yes.
		{"case1 real-time", Availability{NAR: true, PAR: true}, inet.ClassRealTime, OpBufferNARDropHead},
		{"case1 high-priority", Availability{NAR: true, PAR: true}, inet.ClassHighPriority, OpBufferBoth},
		{"case1 best-effort", Availability{NAR: true, PAR: true}, inet.ClassBestEffort, OpBufferPARAlpha},
		// Case 2: NAR yes, PAR no.
		{"case2 real-time", Availability{NAR: true}, inet.ClassRealTime, OpBufferNARDropHead},
		{"case2 high-priority", Availability{NAR: true}, inet.ClassHighPriority, OpBufferNAR},
		{"case2 best-effort", Availability{NAR: true}, inet.ClassBestEffort, OpForward},
		// Case 3: NAR no, PAR yes.
		{"case3 real-time", Availability{PAR: true}, inet.ClassRealTime, OpForward},
		{"case3 high-priority", Availability{PAR: true}, inet.ClassHighPriority, OpBufferPAR},
		{"case3 best-effort", Availability{PAR: true}, inet.ClassBestEffort, OpBufferPARAlpha},
		// Case 4: neither.
		{"case4 real-time", Availability{}, inet.ClassRealTime, OpForward},
		{"case4 high-priority", Availability{}, inet.ClassHighPriority, OpForward},
		{"case4 best-effort", Availability{}, inet.ClassBestEffort, OpDrop},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Decide(tt.avail, tt.class); got != tt.want {
				t.Fatalf("Decide(%v, %v) = %v, want %v", tt.avail, tt.class, got, tt.want)
			}
		})
	}
}

func TestDecideUnspecifiedIsBestEffort(t *testing.T) {
	for _, avail := range []Availability{
		{NAR: true, PAR: true}, {NAR: true}, {PAR: true}, {},
	} {
		want := Decide(avail, inet.ClassBestEffort)
		if got := Decide(avail, inet.ClassUnspecified); got != want {
			t.Errorf("Decide(%v, unspecified) = %v, want best-effort's %v", avail, got, want)
		}
	}
}

func TestAvailabilityCase(t *testing.T) {
	tests := []struct {
		give Availability
		want int
	}{
		{Availability{NAR: true, PAR: true}, 1},
		{Availability{NAR: true}, 2},
		{Availability{PAR: true}, 3},
		{Availability{}, 4},
	}
	for _, tt := range tests {
		if got := tt.give.Case(); got != tt.want {
			t.Errorf("%v.Case() = %d, want %d", tt.give, got, tt.want)
		}
		if !strings.Contains(tt.give.String(), "case") {
			t.Errorf("String() = %q, want case prefix", tt.give.String())
		}
	}
}

func TestOpPredicates(t *testing.T) {
	tests := []struct {
		op    Op
		atNAR bool
		atPAR bool
	}{
		{OpBufferNARDropHead, true, false},
		{OpBufferNAR, true, false},
		{OpBufferBoth, true, true},
		{OpBufferPAR, false, true},
		{OpBufferPARAlpha, false, true},
		{OpForward, false, false},
		{OpDrop, false, false},
	}
	for _, tt := range tests {
		if got := tt.op.BuffersAtNAR(); got != tt.atNAR {
			t.Errorf("%v.BuffersAtNAR() = %v, want %v", tt.op, got, tt.atNAR)
		}
		if got := tt.op.BuffersAtPAR(); got != tt.atPAR {
			t.Errorf("%v.BuffersAtPAR() = %v, want %v", tt.op, got, tt.atPAR)
		}
	}
}

func TestOpString(t *testing.T) {
	ops := []Op{OpBufferNARDropHead, OpBufferNAR, OpBufferBoth, OpBufferPAR,
		OpBufferPARAlpha, OpForward, OpDrop}
	seen := make(map[string]bool, len(ops))
	for _, op := range ops {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("missing String for %d", int(op))
		}
		if seen[s] {
			t.Errorf("duplicate String %q", s)
		}
		seen[s] = true
	}
	if got := Op(99).String(); got != "op(99)" {
		t.Errorf("unknown op String = %q", got)
	}
}

// Property: the policy never buffers at a router that did not grant space,
// and never silently drops real-time or high-priority packets while any
// granted buffer exists.
func TestPropertyPolicyRespectsGrants(t *testing.T) {
	f := func(nar, par bool, classRaw uint8) bool {
		avail := Availability{NAR: nar, PAR: par}
		class := inet.Class(classRaw % 4)
		op := Decide(avail, class)
		if op.BuffersAtNAR() && !avail.NAR {
			return false
		}
		if op.BuffersAtPAR() && !avail.PAR {
			return false
		}
		if op == OpDrop {
			// Only best effort with no buffer anywhere is dropped outright.
			return class.Effective() == inet.ClassBestEffort && !nar && !par
		}
		if (class.Effective() == inet.ClassRealTime || class.Effective() == inet.ClassHighPriority) &&
			(nar || par) && op == OpForward {
			// RT with only PAR space forwards by design (delay beats
			// buffering at the wrong router); HP must always be buffered
			// somewhere when space exists.
			return class.Effective() == inet.ClassRealTime && !nar
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
