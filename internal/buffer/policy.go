package buffer

import (
	"fmt"

	"repro/internal/inet"
)

// Op is a buffering operation from Table 3.3 of the thesis. It tells the
// PAR what to do with a packet redirected during the handoff blackout.
type Op int

const (
	// OpBufferNARDropHead — forward to the NAR and buffer there; when the
	// NAR buffer is full, drop the oldest buffered real-time packet
	// (Cases 1.a, 2.a).
	OpBufferNARDropHead Op = iota + 1
	// OpBufferNAR — forward to the NAR and buffer there; tail-drop when
	// full (Case 2.b).
	OpBufferNAR
	// OpBufferBoth — forward to the NAR and buffer there; when the NAR
	// buffer fills, the NAR sends BufferFull and the PAR buffers the rest
	// (Case 1.b).
	OpBufferBoth
	// OpBufferPAR — buffer at the PAR (Case 3.b).
	OpBufferPAR
	// OpBufferPARAlpha — buffer at the PAR only while its free space
	// exceeds α (Cases 1.c, 3.c).
	OpBufferPARAlpha
	// OpForward — tunnel to the NAR without buffering; the packet is lost
	// if the mobile host is still detached (Cases 2.c, 3.a, 4.a, 4.b).
	OpForward
	// OpDrop — drop at the PAR to ease network load (Case 4.c).
	OpDrop
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpBufferNARDropHead:
		return "buffer-at-nar-drop-head"
	case OpBufferNAR:
		return "buffer-at-nar"
	case OpBufferBoth:
		return "buffer-at-both"
	case OpBufferPAR:
		return "buffer-at-par"
	case OpBufferPARAlpha:
		return "buffer-at-par-alpha"
	case OpForward:
		return "forward-only"
	case OpDrop:
		return "drop"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// BuffersAtNAR reports whether the operation stores packets at the NAR.
func (o Op) BuffersAtNAR() bool {
	return o == OpBufferNARDropHead || o == OpBufferNAR || o == OpBufferBoth
}

// BuffersAtPAR reports whether the operation may store packets at the PAR.
func (o Op) BuffersAtPAR() bool {
	return o == OpBufferBoth || o == OpBufferPAR || o == OpBufferPARAlpha
}

// Availability is the outcome of the handover-initiation negotiation: which
// of the two access routers granted the requested buffer space (Table 3.2's
// four cases).
type Availability struct {
	NAR bool
	PAR bool
}

// Case returns the thesis' case number (1–4) for the availability pair.
func (a Availability) Case() int {
	switch {
	case a.NAR && a.PAR:
		return 1
	case a.NAR:
		return 2
	case a.PAR:
		return 3
	default:
		return 4
	}
}

// String implements fmt.Stringer.
func (a Availability) String() string {
	return fmt.Sprintf("case%d(nar=%t,par=%t)", a.Case(), a.NAR, a.PAR)
}

// Decide returns the Table 3.3 buffering operation for a packet of the
// given class under the negotiated availability. Unspecified classes are
// treated as best effort (Table 3.1).
func Decide(avail Availability, class inet.Class) Op {
	switch class.Effective() {
	case inet.ClassRealTime:
		if avail.NAR {
			return OpBufferNARDropHead // Cases 1.a, 2.a
		}
		return OpForward // Cases 3.a, 4.a
	case inet.ClassHighPriority:
		switch {
		case avail.NAR && avail.PAR:
			return OpBufferBoth // Case 1.b
		case avail.NAR:
			return OpBufferNAR // Case 2.b
		case avail.PAR:
			return OpBufferPAR // Case 3.b
		default:
			return OpForward // Case 4.b
		}
	default: // best effort
		switch {
		case avail.PAR:
			return OpBufferPARAlpha // Cases 1.c, 3.c
		case avail.NAR:
			return OpForward // Case 2.c
		default:
			return OpDrop // Case 4.c
		}
	}
}
