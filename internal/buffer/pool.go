// Package buffer implements the thesis' handover buffer management: a
// per-router reservation pool, a FIFO handover buffer with the class-aware
// admission and eviction rules of §3.2.2.2, and the Table 3.3 buffering
// operation matrix.
package buffer

import "fmt"

// Pool tracks a router's total handover buffering space (in packets) and
// the reservations handed out to in-flight handoff sessions. The thesis'
// scalability example: a 50-packet pool serves at most five simultaneous
// handoffs that each need 10 packets.
type Pool struct {
	capacity int
	reserved int
}

// NewPool creates a pool with the given capacity in packets. A zero or
// negative capacity creates a pool that can never grant a reservation
// (the "no buffer space" router of Case 4).
func NewPool(capacity int) *Pool {
	if capacity < 0 {
		capacity = 0
	}
	return &Pool{capacity: capacity}
}

// Capacity returns the total pool size in packets.
func (p *Pool) Capacity() int { return p.capacity }

// Reserved returns the currently reserved packet count.
func (p *Pool) Reserved() int { return p.reserved }

// Available returns the unreserved packet count.
func (p *Pool) Available() int { return p.capacity - p.reserved }

// Reserve atomically claims n packets of buffering space. It is
// all-or-nothing, matching the binary grant in the thesis' Buffer
// Acknowledgement. Reserving zero or fewer packets always fails.
func (p *Pool) Reserve(n int) bool {
	if n <= 0 || n > p.Available() {
		return false
	}
	p.reserved += n
	return true
}

// ReservePartial claims up to n packets, returning how many were granted
// (possibly zero). It implements the thesis' future-work item of "a more
// precise buffer allocation": instead of refusing a host outright when the
// pool cannot cover the full request, the router grants what remains.
func (p *Pool) ReservePartial(n int) int {
	if n <= 0 {
		return 0
	}
	if avail := p.Available(); n > avail {
		n = avail
	}
	p.reserved += n
	return n
}

// Release returns n packets of reserved space to the pool. Releasing more
// than is reserved panics: it indicates corrupted session accounting.
func (p *Pool) Release(n int) {
	if n < 0 || n > p.reserved {
		panic(fmt.Sprintf("buffer: Release(%d) with %d reserved", n, p.reserved))
	}
	p.reserved -= n
}
