// Package prof wires the standard pprof/trace collectors into command-line
// tools, so every perf investigation starts from a profile instead of a
// guess (see EXPERIMENTS.md, "Profiling workflow").
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Start begins the requested collections (empty paths are skipped) and
// returns a stop function that finishes them and writes the files. The
// allocation profile is written at stop time; a GC runs first so it
// reflects live-heap reality rather than scavenger lag.
func Start(cpuFile, memFile, traceFile string) (stop func() error, err error) {
	var stops []func() error
	cleanup := func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]() //nolint:errcheck // best-effort unwinding on setup failure
		}
	}

	if cpuFile != "" {
		f, err := os.Create(cpuFile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
		stops = append(stops, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			cleanup()
			return nil, err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			cleanup()
			return nil, fmt.Errorf("start trace: %w", err)
		}
		stops = append(stops, func() error {
			trace.Stop()
			return f.Close()
		})
	}
	if memFile != "" {
		stops = append(stops, func() error {
			f, err := os.Create(memFile)
			if err != nil {
				return err
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("write heap profile: %w", err)
			}
			return f.Close()
		})
	}

	return func() error {
		var first error
		for i := len(stops) - 1; i >= 0; i-- {
			if err := stops[i](); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}
