package inet

// PacketPool is a free list of Packet structs. Hot simulation paths churn
// through one packet per application send plus one tunnel wrapper per
// encapsulation; recycling them keeps the steady-state data path
// allocation-free.
//
// A PacketPool is not safe for concurrent use: like the simulation engine
// it belongs to the single event-loop goroutine (each topology owns its
// own pool, so parallel replicas never share one).
//
// Ownership discipline: a packet may be put back only by its single owner
// once no other component can reach it — in this simulator, the final
// deliver/drop sinks. Put zeroes every field, so a recycled packet carries
// nothing into its next life; shared Payload values and cloned Inner
// chains held elsewhere are unaffected (the pool never follows pointers).
type PacketPool struct {
	free []*Packet
}

// Get returns a zeroed packet, reusing a recycled one when available.
func (pl *PacketPool) Get() *Packet {
	if n := len(pl.free); n > 0 {
		pkt := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		pkt.pooled = false
		return pkt
	}
	return &Packet{}
}

// Put recycles a packet. It is idempotent per pool cycle: releasing a
// packet that is already resting in the pool is a no-op, so a double
// release cannot hand the same slot out twice. Put does not follow Inner;
// release each layer of an encapsulation chain explicitly.
func (pl *PacketPool) Put(pkt *Packet) {
	if pkt == nil || pkt.pooled {
		return
	}
	*pkt = Packet{pooled: true}
	pl.free = append(pl.free, pkt)
}

// Len returns the number of packets resting in the pool.
func (pl *PacketPool) Len() int { return len(pl.free) }
