package inet

import (
	"fmt"

	"repro/internal/sim"
)

// Proto distinguishes the payload kinds the simulator carries.
type Proto uint8

const (
	// ProtoUDP is connectionless application data (the CBR audio flows).
	ProtoUDP Proto = iota + 1
	// ProtoTCP carries a TCP segment in the payload.
	ProtoTCP
	// ProtoControl carries a mobility/handover control message.
	ProtoControl
	// ProtoTunnel is an IP-in-IP encapsulation header; the real packet is
	// in Inner.
	ProtoTunnel
)

// String implements fmt.Stringer.
func (p Proto) String() string {
	switch p {
	case ProtoUDP:
		return "udp"
	case ProtoTCP:
		return "tcp"
	case ProtoControl:
		return "control"
	case ProtoTunnel:
		return "tunnel"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// TunnelHeaderSize is the per-encapsulation byte overhead, matching the
// size of the compact header modelled here (an IPv6 outer header).
const TunnelHeaderSize = 40

// Packet is the unit of transmission. Packets are passed by pointer and
// must not be shared between links; forwarding elements that duplicate a
// packet must Clone it.
type Packet struct {
	// ID is unique within a simulation run (assigned by the topology's
	// packet counter).
	ID uint64
	// Src and Dst are the network-layer endpoints of this header. For a
	// tunnel packet they are the tunnel endpoints.
	Src, Dst Addr
	Proto    Proto
	// Class is the class-of-traffic field (Table 3.1). It is copied to the
	// outer header on encapsulation so routers can classify tunnelled
	// packets without decapsulating.
	Class Class
	// Flow identifies the application flow for statistics.
	Flow FlowID
	// Seq is the application-level sequence number within the flow.
	Seq uint32
	// Size is the total on-the-wire size in bytes, including this header
	// and any encapsulated packet.
	Size int
	// Created is the instant the original application packet was sent;
	// preserved across encapsulation for end-to-end delay measurement.
	Created sim.Time
	// Payload carries a control message or TCP segment. It is shared (not
	// deep-copied) by Clone; payloads must therefore be immutable once
	// sent.
	Payload any
	// Inner is the encapsulated packet when Proto == ProtoTunnel.
	Inner *Packet
	// Requeued marks a frame an access point has handed back to its
	// router after failing to deliver it (the station detached mid-queue).
	// A frame bounces at most once; a second failure is a real loss.
	Requeued bool

	// pooled marks a packet currently resting in a PacketPool; it guards
	// against double-release and use-after-free of recycled packets.
	pooled bool
}

// Clone returns a copy of the packet (and, recursively, of any encapsulated
// packet). The payload pointer is shared.
func (p *Packet) Clone() *Packet {
	cp := *p
	if p.Inner != nil {
		cp.Inner = p.Inner.Clone()
	}
	return &cp
}

// Encapsulate wraps p in a tunnel header from src to dst, preserving the
// class field and creation time, and accounting the header overhead.
func (p *Packet) Encapsulate(src, dst Addr) *Packet {
	return &Packet{
		ID:      p.ID,
		Src:     src,
		Dst:     dst,
		Proto:   ProtoTunnel,
		Class:   p.Class,
		Flow:    p.Flow,
		Seq:     p.Seq,
		Size:    p.Size + TunnelHeaderSize,
		Created: p.Created,
		Inner:   p,
	}
}

// Decapsulate strips one tunnel header and returns the inner packet. It
// returns nil if p is not a tunnel packet.
func (p *Packet) Decapsulate() *Packet {
	if p.Proto != ProtoTunnel {
		return nil
	}
	return p.Inner
}

// Innermost follows the encapsulation chain to the original packet.
func (p *Packet) Innermost() *Packet {
	for p.Proto == ProtoTunnel && p.Inner != nil {
		p = p.Inner
	}
	return p
}

// EffectiveClass resolves the class field per Table 3.1.
func (p *Packet) EffectiveClass() Class { return p.Class.Effective() }

// String renders a compact one-line description for traces.
func (p *Packet) String() string {
	if p.Proto == ProtoTunnel && p.Inner != nil {
		return fmt.Sprintf("tunnel[%s->%s](%s)", p.Src, p.Dst, p.Inner)
	}
	return fmt.Sprintf("%s[%s->%s flow=%d seq=%d size=%d class=%s]",
		p.Proto, p.Src, p.Dst, p.Flow, p.Seq, p.Size, p.Class)
}
