package inet

import "fmt"

// Class is the class-of-service field carried in the packet header
// (Table 3.1 of the thesis). The thesis defines the values of the IPv6
// traffic-class field for the three service types it introduces.
type Class uint8

const (
	// ClassUnspecified means the sender set no class; the scheme treats it
	// as best effort (Table 3.1, value 0).
	ClassUnspecified Class = 0
	// ClassRealTime marks packets that are useless if delayed (value 1).
	ClassRealTime Class = 1
	// ClassHighPriority marks packets whose loss must be minimized
	// (value 2).
	ClassHighPriority Class = 2
	// ClassBestEffort marks low-priority packets that may be delayed or
	// dropped (value 3).
	ClassBestEffort Class = 3
)

// Classes lists the three service types in the order the thesis uses
// (F1 real-time, F2 high-priority, F3 best-effort).
var Classes = []Class{ClassRealTime, ClassHighPriority, ClassBestEffort}

// Effective resolves ClassUnspecified to ClassBestEffort, per Table 3.1
// ("not specified, treated as best effort").
func (c Class) Effective() Class {
	if c == ClassUnspecified {
		return ClassBestEffort
	}
	return c
}

// Valid reports whether c is one of the defined field values.
func (c Class) Valid() bool { return c <= ClassBestEffort }

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassUnspecified:
		return "unspecified"
	case ClassRealTime:
		return "real-time"
	case ClassHighPriority:
		return "high-priority"
	case ClassBestEffort:
		return "best-effort"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}
