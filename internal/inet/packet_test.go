package inet

import (
	"strings"
	"testing"
	"testing/quick"
)

func samplePacket() *Packet {
	return &Packet{
		ID:      7,
		Src:     Addr{Net: 1, Host: 1},
		Dst:     Addr{Net: 2, Host: 5},
		Proto:   ProtoUDP,
		Class:   ClassRealTime,
		Flow:    3,
		Seq:     42,
		Size:    160,
		Created: 1000,
	}
}

func TestEncapsulatePreservesMetadata(t *testing.T) {
	p := samplePacket()
	tun := p.Encapsulate(Addr{Net: 9, Host: 1}, Addr{Net: 9, Host: 2})

	if tun.Proto != ProtoTunnel {
		t.Fatalf("Proto = %v, want tunnel", tun.Proto)
	}
	if tun.Size != p.Size+TunnelHeaderSize {
		t.Fatalf("Size = %d, want %d", tun.Size, p.Size+TunnelHeaderSize)
	}
	if tun.Class != p.Class {
		t.Fatalf("outer Class = %v, want %v (copied for classification)", tun.Class, p.Class)
	}
	if tun.Created != p.Created {
		t.Fatalf("Created = %v, want %v", tun.Created, p.Created)
	}
	if tun.Flow != p.Flow || tun.Seq != p.Seq || tun.ID != p.ID {
		t.Fatal("flow/seq/id not propagated to outer header")
	}
	if tun.Inner != p {
		t.Fatal("Inner does not reference the original packet")
	}
}

func TestDecapsulate(t *testing.T) {
	p := samplePacket()
	tun := p.Encapsulate(Addr{Net: 9, Host: 1}, Addr{Net: 9, Host: 2})
	if got := tun.Decapsulate(); got != p {
		t.Fatalf("Decapsulate = %v, want original", got)
	}
	if got := p.Decapsulate(); got != nil {
		t.Fatalf("Decapsulate on non-tunnel = %v, want nil", got)
	}
}

func TestInnermostThroughNestedTunnels(t *testing.T) {
	p := samplePacket()
	t1 := p.Encapsulate(Addr{Net: 9, Host: 1}, Addr{Net: 9, Host: 2})
	t2 := t1.Encapsulate(Addr{Net: 8, Host: 1}, Addr{Net: 8, Host: 2})

	if got := t2.Innermost(); got != p {
		t.Fatal("Innermost did not reach the original packet")
	}
	if got := p.Innermost(); got != p {
		t.Fatal("Innermost on plain packet changed identity")
	}
	if t2.Size != p.Size+2*TunnelHeaderSize {
		t.Fatalf("nested Size = %d, want %d", t2.Size, p.Size+2*TunnelHeaderSize)
	}
}

func TestCloneIsDeepForEncapsulation(t *testing.T) {
	p := samplePacket()
	tun := p.Encapsulate(Addr{Net: 9, Host: 1}, Addr{Net: 9, Host: 2})
	cp := tun.Clone()

	if cp == tun || cp.Inner == tun.Inner {
		t.Fatal("Clone shares packet structs")
	}
	cp.Inner.Seq = 99
	if p.Seq != 42 {
		t.Fatal("mutating clone's inner packet affected the original")
	}
}

func TestEffectiveClass(t *testing.T) {
	p := samplePacket()
	p.Class = ClassUnspecified
	if got := p.EffectiveClass(); got != ClassBestEffort {
		t.Fatalf("EffectiveClass = %v, want best-effort", got)
	}
}

func TestPacketString(t *testing.T) {
	p := samplePacket()
	s := p.String()
	for _, want := range []string{"udp", "1:1", "2:5", "seq=42", "real-time"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	tun := p.Encapsulate(Addr{Net: 9, Host: 1}, Addr{Net: 9, Host: 2})
	if ts := tun.String(); !strings.Contains(ts, "tunnel[9:1->9:2]") {
		t.Errorf("tunnel String() = %q", ts)
	}
}

func TestProtoString(t *testing.T) {
	tests := []struct {
		give Proto
		want string
	}{
		{ProtoUDP, "udp"},
		{ProtoTCP, "tcp"},
		{ProtoControl, "control"},
		{ProtoTunnel, "tunnel"},
		{Proto(99), "proto(99)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Proto.String() = %q, want %q", got, tt.want)
		}
	}
}

// Property: encapsulate/decapsulate is the identity for any endpoints, and
// size grows by exactly the tunnel header.
func TestPropertyTunnelRoundTrip(t *testing.T) {
	f := func(srcNet, srcHost, dstNet, dstHost uint32, size uint16) bool {
		p := samplePacket()
		p.Size = int(size)
		src := Addr{Net: NetID(srcNet), Host: HostID(srcHost)}
		dst := Addr{Net: NetID(dstNet), Host: HostID(dstHost)}
		tun := p.Encapsulate(src, dst)
		return tun.Decapsulate() == p &&
			tun.Size == p.Size+TunnelHeaderSize &&
			tun.Src == src && tun.Dst == dst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
