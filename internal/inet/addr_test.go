package inet

import (
	"testing"
	"testing/quick"
)

func TestAddrString(t *testing.T) {
	tests := []struct {
		give Addr
		want string
	}{
		{Addr{Net: 0, Host: 0}, "0:0"},
		{Addr{Net: 3, Host: 17}, "3:17"},
		{Addr{Net: 4294967295, Host: 1}, "4294967295:1"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("%v.String() = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestParseAddr(t *testing.T) {
	tests := []struct {
		give    string
		want    Addr
		wantErr bool
	}{
		{give: "3:17", want: Addr{Net: 3, Host: 17}},
		{give: "0:0", want: Addr{}},
		{give: "no-colon", wantErr: true},
		{give: "x:1", wantErr: true},
		{give: "1:y", wantErr: true},
		{give: "-1:2", wantErr: true},
		{give: "99999999999:1", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseAddr(tt.give)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseAddr(%q) = %v, want error", tt.give, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseAddr(%q): %v", tt.give, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

// Property: ParseAddr inverts String.
func TestPropertyAddrRoundTrip(t *testing.T) {
	f := func(n uint32, h uint32) bool {
		a := Addr{Net: NetID(n), Host: HostID(h)}
		got, err := ParseAddr(a.String())
		return err == nil && got == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnspecified(t *testing.T) {
	if !Unspecified.IsUnspecified() {
		t.Fatal("Unspecified.IsUnspecified() = false")
	}
	if (Addr{Net: 1}).IsUnspecified() {
		t.Fatal("{1,0}.IsUnspecified() = true")
	}
}

func TestOnNet(t *testing.T) {
	a := Addr{Net: 5, Host: 9}
	if !a.OnNet(5) {
		t.Fatal("OnNet(5) = false")
	}
	if a.OnNet(6) {
		t.Fatal("OnNet(6) = true")
	}
}

func TestClassEffective(t *testing.T) {
	tests := []struct {
		give Class
		want Class
	}{
		{ClassUnspecified, ClassBestEffort},
		{ClassRealTime, ClassRealTime},
		{ClassHighPriority, ClassHighPriority},
		{ClassBestEffort, ClassBestEffort},
	}
	for _, tt := range tests {
		if got := tt.give.Effective(); got != tt.want {
			t.Errorf("%v.Effective() = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestClassValues(t *testing.T) {
	// Table 3.1 pins the field encoding; these values are part of the
	// protocol contract.
	if ClassUnspecified != 0 || ClassRealTime != 1 || ClassHighPriority != 2 || ClassBestEffort != 3 {
		t.Fatal("class field values diverge from Table 3.1")
	}
}

func TestClassValid(t *testing.T) {
	for c := Class(0); c <= 3; c++ {
		if !c.Valid() {
			t.Errorf("Class(%d).Valid() = false", c)
		}
	}
	if Class(4).Valid() {
		t.Error("Class(4).Valid() = true")
	}
}

func TestClassString(t *testing.T) {
	tests := []struct {
		give Class
		want string
	}{
		{ClassUnspecified, "unspecified"},
		{ClassRealTime, "real-time"},
		{ClassHighPriority, "high-priority"},
		{ClassBestEffort, "best-effort"},
		{Class(9), "class(9)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Class.String() = %q, want %q", got, tt.want)
		}
	}
}
