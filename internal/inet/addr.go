// Package inet defines the simulator's network-layer vocabulary: addresses,
// service classes (Table 3.1 of the thesis), packets, and IP-in-IP tunnel
// encapsulation.
//
// Addresses are a compact stand-in for IPv6: a 32-bit network prefix plus a
// 32-bit host part. Only the fields the protocols actually read are
// modelled; everything else about real IPv6 headers is irrelevant to the
// experiments.
package inet

import (
	"fmt"
	"strconv"
	"strings"
)

// NetID identifies a network (an IPv6 prefix in the paper's terms). Every
// access router advertises exactly one NetID.
type NetID uint32

// HostID identifies a host within a network.
type HostID uint32

// Addr is a network-layer address.
type Addr struct {
	Net  NetID
	Host HostID
}

// Unspecified is the zero address (analogous to ::).
var Unspecified = Addr{}

// IsUnspecified reports whether a is the zero address.
func (a Addr) IsUnspecified() bool { return a == Unspecified }

// String renders the address as "net:host", e.g. "3:17".
func (a Addr) String() string {
	return strconv.FormatUint(uint64(a.Net), 10) + ":" + strconv.FormatUint(uint64(a.Host), 10)
}

// ParseAddr parses the "net:host" form produced by String.
func ParseAddr(s string) (Addr, error) {
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return Addr{}, fmt.Errorf("inet: parse addr %q: missing ':'", s)
	}
	network, err := strconv.ParseUint(s[:i], 10, 32)
	if err != nil {
		return Addr{}, fmt.Errorf("inet: parse addr %q: bad net: %v", s, err)
	}
	host, err := strconv.ParseUint(s[i+1:], 10, 32)
	if err != nil {
		return Addr{}, fmt.Errorf("inet: parse addr %q: bad host: %v", s, err)
	}
	return Addr{Net: NetID(network), Host: HostID(host)}, nil
}

// OnNet reports whether the address belongs to the given network.
func (a Addr) OnNet(n NetID) bool { return a.Net == n }

// FlowID identifies an application flow end-to-end (a CN→MH stream). The
// zero FlowID means "not part of a tracked flow" (control traffic).
type FlowID uint32
