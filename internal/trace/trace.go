// Package trace is the simulator's structured event log: protocol engines
// and scenario builders emit typed events into a Log, and consumers render
// them as a human-readable protocol trace or an ns-2-style packet trace.
//
// Emitting is O(1) and allocation-free in steady state: events carry typed
// fields (an interned NodeID, a message Code and two integer arguments)
// and are formatted lazily, only when a consumer calls Render, DetailText
// or the ns-2 exporter. The Detail string field remains as a compatibility
// escape hatch for free-form annotations.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Kind classifies events.
type Kind int

const (
	// KindControl is a control-message transmission.
	KindControl Kind = iota + 1
	// KindDrop is a packet loss (buffer, policy, lifetime, or air).
	KindDrop
	// KindLinkDown marks the start of an L2 blackout.
	KindLinkDown
	// KindLinkUp marks an attachment.
	KindLinkUp
	// KindHandoff marks a completed handover.
	KindHandoff
	// KindDeliver is an application-packet delivery.
	KindDeliver
	// KindNote is free-form annotation.
	KindNote
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindControl:
		return "control"
	case KindDrop:
		return "drop"
	case KindLinkDown:
		return "link-down"
	case KindLinkUp:
		return "link-up"
	case KindHandoff:
		return "handoff"
	case KindDeliver:
		return "deliver"
	case KindNote:
		return "note"
	default:
		return "kind(?)"
	}
}

// Event is one log entry. Typed emitters fill NodeID, Code and the Args
// and leave Detail empty; the payload is formatted only when DetailText is
// called. Hand-built events may instead set Node and Detail directly —
// both render identically.
type Event struct {
	At   sim.Time
	Kind Kind
	// Node is the emitting element's name ("par", "mh0", …) when the
	// emitter did not intern it; prefer NodeID on hot paths.
	Node string
	// NodeID is the interned emitting element (see InternNode).
	NodeID NodeID
	// Code selects the typed payload; CodeNone selects Detail.
	Code Code
	// Arg0 and Arg1 carry the typed payload's parameters (flow IDs,
	// packed class/site words, fho kinds, handoff flags).
	Arg0, Arg1 int64
	// Detail is the eagerly formatted payload — the compatibility escape
	// hatch ("sends HI", "drops seq 42 (nar-buffer)", …).
	Detail string
	// Seq carries a packet sequence number when meaningful (KindDeliver,
	// KindDrop); -1 otherwise.
	Seq int64
}

// Log collects events in order. A zero Log is not usable; call NewLog.
type Log struct {
	events []Event
	limit  int
	// dropped counts events discarded once the limit was hit.
	dropped uint64
	subs    []func(Event)
	// sorted tracks whether events are already in non-decreasing At order
	// (the engine emits in time order, so this is the common case and
	// Events/Render skip their sort). cache holds the stable-sorted view
	// once an out-of-order emit invalidates sortedness.
	sorted bool
	cache  []Event
}

// NewLog creates a log bounded to limit events (zero: DefaultLimit).
func NewLog(limit int) *Log {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Log{limit: limit, sorted: true}
}

// DefaultLimit bounds logs whose creator did not choose a size.
const DefaultLimit = 100_000

// Emit appends an event and notifies subscribers. Events beyond the limit
// are counted but not stored.
func (l *Log) Emit(ev Event) {
	if ev.Seq == 0 && ev.Kind != KindDeliver && ev.Kind != KindDrop {
		ev.Seq = -1
	}
	for _, fn := range l.subs {
		fn(ev)
	}
	if len(l.events) >= l.limit {
		l.dropped++
		return
	}
	if l.sorted && len(l.events) > 0 && ev.At < l.events[len(l.events)-1].At {
		l.sorted = false
	}
	l.cache = nil
	l.events = append(l.events, ev)
}

// Note records a free-form annotation. When the log is already full and
// nobody subscribes, the annotation is counted as dropped without paying
// for formatting.
func (l *Log) Note(at sim.Time, node, format string, args ...any) {
	if len(l.subs) == 0 && len(l.events) >= l.limit {
		l.dropped++
		return
	}
	l.Emit(Event{At: at, Kind: KindNote, Node: node, Detail: fmt.Sprintf(format, args...)})
}

// Subscribe registers a live consumer invoked on every Emit.
func (l *Log) Subscribe(fn func(Event)) { l.subs = append(l.subs, fn) }

// Len returns the number of stored events.
func (l *Log) Len() int { return len(l.events) }

// Dropped returns how many events exceeded the limit.
func (l *Log) Dropped() uint64 { return l.dropped }

// ordered returns the stored events in time order without copying when
// they were emitted in order; otherwise a stable-sorted view is built once
// and reused until the next Emit. Callers must not mutate the result.
func (l *Log) ordered() []Event {
	if l.sorted {
		return l.events
	}
	if l.cache == nil {
		l.cache = make([]Event, len(l.events))
		copy(l.cache, l.events)
		sort.SliceStable(l.cache, func(i, j int) bool { return l.cache[i].At < l.cache[j].At })
	}
	return l.cache
}

// Events returns the stored events sorted by time (stable for ties). The
// slice is the caller's; when the log was emitted in time order — the
// engine's normal behaviour — this is a plain copy with no sort.
func (l *Log) Events() []Event {
	src := l.ordered()
	out := make([]Event, len(src))
	copy(out, src)
	return out
}

// Filter returns the stored events of the given kinds, time-sorted. Only
// the matching events are copied.
func (l *Log) Filter(kinds ...Kind) []Event {
	var mask uint64
	for _, k := range kinds {
		if k >= 0 && int(k) < 64 {
			mask |= 1 << uint(k)
		}
	}
	var out []Event
	for _, ev := range l.ordered() {
		if ev.Kind >= 0 && int(ev.Kind) < 64 && mask&(1<<uint(ev.Kind)) != 0 {
			out = append(out, ev)
		}
	}
	return out
}

// Render formats the log as a timestamped table.
func (l *Log) Render() string {
	var b strings.Builder
	evs := l.ordered()
	for i := range evs {
		ev := &evs[i]
		fmt.Fprintf(&b, "%12.6fs  %-9s %-6s %s\n", ev.At.Seconds(), ev.Kind, ev.NodeName(), ev.DetailText())
	}
	if l.dropped > 0 {
		fmt.Fprintf(&b, "... %d events beyond the log limit\n", l.dropped)
	}
	return b.String()
}
