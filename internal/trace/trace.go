// Package trace is the simulator's structured event log: protocol engines
// and scenario builders emit typed events into a Log, and consumers render
// them as a human-readable protocol trace or an ns-2-style packet trace.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Kind classifies events.
type Kind int

const (
	// KindControl is a control-message transmission.
	KindControl Kind = iota + 1
	// KindDrop is a packet loss (buffer, policy, lifetime, or air).
	KindDrop
	// KindLinkDown marks the start of an L2 blackout.
	KindLinkDown
	// KindLinkUp marks an attachment.
	KindLinkUp
	// KindHandoff marks a completed handover.
	KindHandoff
	// KindDeliver is an application-packet delivery.
	KindDeliver
	// KindNote is free-form annotation.
	KindNote
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindControl:
		return "control"
	case KindDrop:
		return "drop"
	case KindLinkDown:
		return "link-down"
	case KindLinkUp:
		return "link-up"
	case KindHandoff:
		return "handoff"
	case KindDeliver:
		return "deliver"
	case KindNote:
		return "note"
	default:
		return "kind(?)"
	}
}

// Event is one log entry.
type Event struct {
	At   sim.Time
	Kind Kind
	// Node is the emitting element ("par", "mh0", …).
	Node string
	// Detail is the human-readable payload ("sends HI", "drops seq 42
	// (nar-buffer)", …).
	Detail string
	// Seq carries a packet sequence number when meaningful (KindDeliver,
	// KindDrop); -1 otherwise.
	Seq int64
}

// Log collects events in order. A zero Log is not usable; call NewLog.
type Log struct {
	events []Event
	limit  int
	// dropped counts events discarded once the limit was hit.
	dropped uint64
	subs    []func(Event)
	seq     int
}

// NewLog creates a log bounded to limit events (zero: DefaultLimit).
func NewLog(limit int) *Log {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Log{limit: limit}
}

// DefaultLimit bounds logs whose creator did not choose a size.
const DefaultLimit = 100_000

// Emit appends an event and notifies subscribers. Events beyond the limit
// are counted but not stored.
func (l *Log) Emit(ev Event) {
	if ev.Seq == 0 && ev.Kind != KindDeliver && ev.Kind != KindDrop {
		ev.Seq = -1
	}
	for _, fn := range l.subs {
		fn(ev)
	}
	if len(l.events) >= l.limit {
		l.dropped++
		return
	}
	l.events = append(l.events, ev)
}

// Note records a free-form annotation.
func (l *Log) Note(at sim.Time, node, format string, args ...any) {
	l.Emit(Event{At: at, Kind: KindNote, Node: node, Detail: fmt.Sprintf(format, args...)})
}

// Subscribe registers a live consumer invoked on every Emit.
func (l *Log) Subscribe(fn func(Event)) { l.subs = append(l.subs, fn) }

// Len returns the number of stored events.
func (l *Log) Len() int { return len(l.events) }

// Dropped returns how many events exceeded the limit.
func (l *Log) Dropped() uint64 { return l.dropped }

// Events returns the stored events sorted by time (stable for ties).
func (l *Log) Events() []Event {
	out := make([]Event, len(l.events))
	copy(out, l.events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Filter returns the stored events of the given kinds, time-sorted.
func (l *Log) Filter(kinds ...Kind) []Event {
	want := make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	var out []Event
	for _, ev := range l.Events() {
		if want[ev.Kind] {
			out = append(out, ev)
		}
	}
	return out
}

// Render formats the log as a timestamped table.
func (l *Log) Render() string {
	var b strings.Builder
	for _, ev := range l.Events() {
		fmt.Fprintf(&b, "%12.6fs  %-9s %-6s %s\n", ev.At.Seconds(), ev.Kind, ev.Node, ev.Detail)
	}
	if l.dropped > 0 {
		fmt.Fprintf(&b, "... %d events beyond the log limit\n", l.dropped)
	}
	return b.String()
}
