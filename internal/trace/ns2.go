package trace

import (
	"fmt"
	"io"
)

// NS2Writer renders events in the spirit of the classic ns-2 trace format
// the thesis' toolchain produced, one line per event:
//
//	<op> <time> <node> <detail...>
//
// with the operation characters borrowed from ns-2: 'r' receive/deliver,
// 'd' drop, 's' send (control), '+'/'-' link up/down, 'h' handoff,
// '#' annotation. It is a convenience for eyeballing runs next to original
// ns-2 traces, not a byte-compatible reimplementation.
type NS2Writer struct {
	w io.Writer
}

// NewNS2Writer wraps an output stream.
func NewNS2Writer(w io.Writer) *NS2Writer { return &NS2Writer{w: w} }

// opChar maps event kinds to ns-2 style operation characters.
func opChar(k Kind) byte {
	switch k {
	case KindDeliver:
		return 'r'
	case KindDrop:
		return 'd'
	case KindControl:
		return 's'
	case KindLinkUp:
		return '+'
	case KindLinkDown:
		return '-'
	case KindHandoff:
		return 'h'
	default:
		return '#'
	}
}

// WriteEvent emits one line. Typed events are formatted here, lazily.
func (n *NS2Writer) WriteEvent(ev Event) error {
	if ev.Seq >= 0 {
		_, err := fmt.Fprintf(n.w, "%c %.6f %s seq %d %s\n",
			opChar(ev.Kind), ev.At.Seconds(), ev.NodeName(), ev.Seq, ev.DetailText())
		return err
	}
	_, err := fmt.Fprintf(n.w, "%c %.6f %s %s\n",
		opChar(ev.Kind), ev.At.Seconds(), ev.NodeName(), ev.DetailText())
	return err
}

// WriteLog emits every stored event in time order.
func (n *NS2Writer) WriteLog(l *Log) error {
	for _, ev := range l.ordered() {
		if err := n.WriteEvent(ev); err != nil {
			return err
		}
	}
	return nil
}
