package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestLogEmitAndEvents(t *testing.T) {
	l := NewLog(10)
	l.Emit(Event{At: 2 * sim.Second, Kind: KindControl, Node: "par", Detail: "sends HI"})
	l.Emit(Event{At: sim.Second, Kind: KindLinkDown, Node: "mh", Detail: "blackout"})
	evs := l.Events()
	if len(evs) != 2 {
		t.Fatalf("Len = %d, want 2", len(evs))
	}
	if evs[0].At != sim.Second || evs[1].At != 2*sim.Second {
		t.Fatalf("events not time-sorted: %+v", evs)
	}
	if evs[0].Seq != -1 {
		t.Fatalf("non-packet event Seq = %d, want -1", evs[0].Seq)
	}
}

func TestLogStableForTies(t *testing.T) {
	l := NewLog(10)
	for i := 0; i < 5; i++ {
		l.Emit(Event{At: sim.Second, Kind: KindNote, Detail: string(rune('a' + i))})
	}
	evs := l.Events()
	for i, ev := range evs {
		if ev.Detail != string(rune('a'+i)) {
			t.Fatalf("tie order broken: %+v", evs)
		}
	}
}

func TestLogLimit(t *testing.T) {
	l := NewLog(3)
	for i := 0; i < 5; i++ {
		l.Emit(Event{At: sim.Time(i), Kind: KindNote})
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	if l.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", l.Dropped())
	}
	if !strings.Contains(l.Render(), "2 events beyond") {
		t.Error("Render does not mention dropped events")
	}
}

func TestLogSubscribe(t *testing.T) {
	l := NewLog(2)
	var seen []Kind
	l.Subscribe(func(ev Event) { seen = append(seen, ev.Kind) })
	l.Emit(Event{Kind: KindDrop, Seq: 7})
	l.Emit(Event{Kind: KindLinkUp})
	l.Emit(Event{Kind: KindNote}) // beyond the limit, still delivered live
	if len(seen) != 3 {
		t.Fatalf("subscriber saw %d events, want 3", len(seen))
	}
}

func TestLogFilter(t *testing.T) {
	l := NewLog(10)
	l.Emit(Event{At: 1, Kind: KindDrop, Seq: 1})
	l.Emit(Event{At: 2, Kind: KindControl})
	l.Emit(Event{At: 3, Kind: KindDrop, Seq: 2})
	drops := l.Filter(KindDrop)
	if len(drops) != 2 || drops[0].Seq != 1 || drops[1].Seq != 2 {
		t.Fatalf("Filter = %+v", drops)
	}
}

func TestLogNote(t *testing.T) {
	l := NewLog(10)
	l.Note(5*sim.Second, "sim", "phase %d begins", 2)
	evs := l.Events()
	if len(evs) != 1 || evs[0].Detail != "phase 2 begins" || evs[0].Kind != KindNote {
		t.Fatalf("Note produced %+v", evs)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KindControl, KindDrop, KindLinkDown, KindLinkUp, KindHandoff, KindDeliver, KindNote}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if s == "kind(?)" || seen[s] {
			t.Errorf("bad or duplicate kind string %q", s)
		}
		seen[s] = true
	}
	if Kind(99).String() != "kind(?)" {
		t.Error("unknown kind string")
	}
}

func TestNS2Writer(t *testing.T) {
	l := NewLog(10)
	l.Emit(Event{At: 1500 * sim.Millisecond, Kind: KindDeliver, Node: "mh", Seq: 42, Detail: "udp"})
	l.Emit(Event{At: 2 * sim.Second, Kind: KindDrop, Node: "nar", Seq: 43, Detail: "nar-buffer"})
	l.Emit(Event{At: 3 * sim.Second, Kind: KindLinkDown, Node: "mh", Detail: "blackout"})

	var b strings.Builder
	if err := NewNS2Writer(&b).WriteLog(l); err != nil {
		t.Fatalf("WriteLog: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	want := []string{
		"r 1.500000 mh seq 42 udp",
		"d 2.000000 nar seq 43 nar-buffer",
		"- 3.000000 mh blackout",
	}
	if len(lines) != len(want) {
		t.Fatalf("lines = %v", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestNS2OpChars(t *testing.T) {
	tests := []struct {
		kind Kind
		want byte
	}{
		{KindDeliver, 'r'}, {KindDrop, 'd'}, {KindControl, 's'},
		{KindLinkUp, '+'}, {KindLinkDown, '-'}, {KindHandoff, 'h'}, {KindNote, '#'},
	}
	for _, tt := range tests {
		if got := opChar(tt.kind); got != tt.want {
			t.Errorf("opChar(%v) = %c, want %c", tt.kind, got, tt.want)
		}
	}
}

// Property: Events() is always sorted and never exceeds the limit,
// whatever emission order.
func TestPropertyLogOrderedAndBounded(t *testing.T) {
	f := func(times []uint16) bool {
		l := NewLog(64)
		for _, at := range times {
			l.Emit(Event{At: sim.Time(at), Kind: KindNote})
		}
		evs := l.Events()
		if len(evs) > 64 {
			return false
		}
		for i := 1; i < len(evs); i++ {
			if evs[i].At < evs[i-1].At {
				return false
			}
		}
		return uint64(len(evs))+l.Dropped() == uint64(len(times))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
