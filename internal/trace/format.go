package trace

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/fho"
	"repro/internal/inet"
	"repro/internal/stats"
)

// NodeID is an interned emitting-element name ("par", "mh0", …). Emitters
// intern their name once at hook-installation time and stamp the integer
// on every event, so the emit hot path carries no strings. NodeID 0 means
// "not interned": the event's Node field holds the name (or nothing).
//
// The table is process-wide (copy-on-write, lock-free reads), so events
// keep their identity when copied between logs.
type NodeID uint32

type nodeTable struct {
	byName map[string]NodeID
	names  []string // names[0] is the empty placeholder for NodeID 0
}

var (
	nodeMu  sync.Mutex
	nodeTab atomic.Pointer[nodeTable]
)

func init() {
	nodeTab.Store(&nodeTable{byName: map[string]NodeID{}, names: []string{""}})
}

// InternNode returns the NodeID for a name, interning it on first use.
// Interning an already-known name is lock-free and allocation-free.
func InternNode(name string) NodeID {
	if name == "" {
		return 0
	}
	if id, ok := nodeTab.Load().byName[name]; ok {
		return id
	}
	nodeMu.Lock()
	defer nodeMu.Unlock()
	old := nodeTab.Load()
	if id, ok := old.byName[name]; ok {
		return id
	}
	next := &nodeTable{
		byName: make(map[string]NodeID, len(old.byName)+1),
		names:  make([]string, len(old.names), len(old.names)+1),
	}
	for k, v := range old.byName {
		next.byName[k] = v
	}
	copy(next.names, old.names)
	id := NodeID(len(next.names))
	next.names = append(next.names, name)
	next.byName[name] = id
	nodeTab.Store(next)
	return id
}

// String returns the name the node was interned under ("" for NodeID 0).
func (id NodeID) String() string {
	names := nodeTab.Load().names
	if int(id) < len(names) {
		return names[id]
	}
	return "node(" + strconv.FormatUint(uint64(id), 10) + ")"
}

// Code identifies a typed event payload, formatted lazily by DetailText
// only when a trace is actually rendered or exported. CodeNone means the
// event carries its payload in the Detail string (the compatibility escape
// hatch for free-form notes and hand-built events).
type Code uint8

const (
	// CodeNone selects the Detail string.
	CodeNone Code = iota
	// CodeSendsControl is a control-message transmission;
	// Arg0 is the fho.Kind.
	CodeSendsControl
	// CodeDropPacket is a data-packet drop; Arg0 is the flow ID, Arg1 a
	// PackPacket of (proto, class, drop site).
	CodeDropPacket
	// CodeDeliverPacket is a data-packet delivery; Arg0 is the flow ID,
	// Arg1 a PackPacket of (proto, class, 0).
	CodeDeliverPacket
	// CodeBlackoutBegins marks the start of the L2 blackout.
	CodeBlackoutBegins
	// CodeAttachedNewAP marks reattachment after the blackout.
	CodeAttachedNewAP
	// CodeHandoffDone is a completed handover; Arg0 is a PackHandoff of
	// its outcome flags.
	CodeHandoffDone
)

// PackPacket packs a packet's protocol, class and drop site into one event
// argument. The site is meaningful only for CodeDropPacket.
func PackPacket(proto inet.Proto, class inet.Class, site stats.DropSite) int64 {
	return int64(uint64(proto) | uint64(class)<<8 | uint64(site)<<16)
}

// unpackPacket reverses PackPacket.
func unpackPacket(v int64) (inet.Proto, inet.Class, stats.DropSite) {
	return inet.Proto(v & 0xff), inet.Class(v >> 8 & 0xff), stats.DropSite(uint64(v) >> 16)
}

// Handover outcome flags packed by PackHandoff.
const (
	handoffAnticipated = 1 << iota
	handoffLinkLayerOnly
	handoffNARGranted
	handoffPARGranted
)

// PackHandoff packs a handover record's outcome flags into one event
// argument.
func PackHandoff(anticipated, linkLayerOnly, narGranted, parGranted bool) int64 {
	var v int64
	if anticipated {
		v |= handoffAnticipated
	}
	if linkLayerOnly {
		v |= handoffLinkLayerOnly
	}
	if narGranted {
		v |= handoffNARGranted
	}
	if parGranted {
		v |= handoffPARGranted
	}
	return v
}

// NodeName returns the emitting element's name: the Node string when set,
// otherwise the interned NodeID's name.
func (ev *Event) NodeName() string {
	if ev.Node != "" {
		return ev.Node
	}
	return ev.NodeID.String()
}

// DetailText renders the event's payload. Typed events format here — and
// only here, when a consumer actually renders the trace; emitting them
// costs no formatting. Events with a Detail string (or CodeNone) return it
// unchanged, byte-identical to the old eager API.
func (ev *Event) DetailText() string {
	if ev.Detail != "" || ev.Code == CodeNone {
		return ev.Detail
	}
	switch ev.Code {
	case CodeSendsControl:
		return "sends " + fho.Kind(ev.Arg0).String()
	case CodeDropPacket:
		proto, class, site := unpackPacket(ev.Arg1)
		return fmt.Sprintf("%s flow=%d class=%s (%s)", proto, ev.Arg0, class, site)
	case CodeDeliverPacket:
		proto, class, _ := unpackPacket(ev.Arg1)
		return fmt.Sprintf("%s flow=%d class=%s", proto, ev.Arg0, class)
	case CodeBlackoutBegins:
		return "L2 blackout begins"
	case CodeAttachedNewAP:
		return "attached to the new access point"
	case CodeHandoffDone:
		return fmt.Sprintf("complete (anticipated=%t link-layer=%t nar=%t par=%t)",
			ev.Arg0&handoffAnticipated != 0, ev.Arg0&handoffLinkLayerOnly != 0,
			ev.Arg0&handoffNARGranted != 0, ev.Arg0&handoffPARGranted != 0)
	default:
		return "code(" + strconv.Itoa(int(ev.Code)) + ")"
	}
}
