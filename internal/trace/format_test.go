package trace

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/fho"
	"repro/internal/inet"
	"repro/internal/sim"
	"repro/internal/stats"
)

func TestInternNodeIdempotentAndRoundTrip(t *testing.T) {
	a := InternNode("par")
	if b := InternNode("par"); b != a {
		t.Fatalf("interning not idempotent: %v %v", a, b)
	}
	if a == 0 {
		t.Fatal("real name interned as the sentinel 0")
	}
	if a.String() != "par" {
		t.Fatalf("round trip = %q", a.String())
	}
	if InternNode("") != 0 {
		t.Fatal("empty name must intern to 0")
	}
	if NodeID(0).String() != "" {
		t.Fatal("NodeID 0 must render empty")
	}
	if other := InternNode("par-other"); other == a {
		t.Fatal("distinct names collided")
	}
}

func TestNodeNamePrefersExplicitNode(t *testing.T) {
	id := InternNode("nar")
	ev := Event{Node: "override", NodeID: id}
	if ev.NodeName() != "override" {
		t.Fatalf("NodeName = %q", ev.NodeName())
	}
	ev.Node = ""
	if ev.NodeName() != "nar" {
		t.Fatalf("NodeName = %q", ev.NodeName())
	}
}

// TestDetailTextMatchesEagerFormatting is the golden check: every typed
// event code must render byte-identically to the fmt.Sprintf strings the
// scenario hooks used to build eagerly.
func TestDetailTextMatchesEagerFormatting(t *testing.T) {
	site := stats.SiteNARBuffer
	cases := []struct {
		ev   Event
		want string
	}{
		{
			Event{Code: CodeSendsControl, Arg0: int64(fho.KindHI)},
			"sends " + fho.KindHI.String(),
		},
		{
			Event{Code: CodeDropPacket, Arg0: 7,
				Arg1: PackPacket(inet.ProtoUDP, inet.ClassHighPriority, site)},
			fmt.Sprintf("%s flow=%d class=%s (%s)", inet.ProtoUDP, 7, inet.ClassHighPriority, site),
		},
		{
			Event{Code: CodeDeliverPacket, Arg0: 12,
				Arg1: PackPacket(inet.ProtoTCP, inet.ClassBestEffort, 0)},
			fmt.Sprintf("%s flow=%d class=%s", inet.ProtoTCP, 12, inet.ClassBestEffort),
		},
		{Event{Code: CodeBlackoutBegins}, "L2 blackout begins"},
		{Event{Code: CodeAttachedNewAP}, "attached to the new access point"},
		{
			Event{Code: CodeHandoffDone, Arg0: PackHandoff(true, false, true, false)},
			"complete (anticipated=true link-layer=false nar=true par=false)",
		},
		{
			Event{Code: CodeHandoffDone, Arg0: PackHandoff(false, true, false, true)},
			"complete (anticipated=false link-layer=true nar=false par=true)",
		},
		{Event{Detail: "hand-written"}, "hand-written"},
		{Event{}, ""},
	}
	for i, tt := range cases {
		if got := tt.ev.DetailText(); got != tt.want {
			t.Errorf("case %d: DetailText = %q, want %q", i, got, tt.want)
		}
	}
}

func TestDetailPreemptsCode(t *testing.T) {
	// A non-empty Detail wins over the typed payload — the escape hatch
	// must never be reinterpreted.
	ev := Event{Code: CodeBlackoutBegins, Detail: "custom"}
	if ev.DetailText() != "custom" {
		t.Fatalf("DetailText = %q", ev.DetailText())
	}
}

func TestPackPacketRoundTrip(t *testing.T) {
	site := stats.InternSite("round-trip-site")
	proto, class, gotSite := unpackPacket(PackPacket(inet.ProtoUDP, inet.ClassRealTime, site))
	if proto != inet.ProtoUDP || class != inet.ClassRealTime || gotSite != site {
		t.Fatalf("round trip = %v %v %v", proto, class, gotSite)
	}
}

// TestLogEmitTypedZeroAlloc pins the emit hot path: a typed event into a
// warmed log allocates nothing — the point of lazy formatting.
func TestLogEmitTypedZeroAlloc(t *testing.T) {
	l := NewLog(1 << 20)
	node := InternNode("mh0")
	at := sim.Time(0)
	emit := func() {
		at += sim.Millisecond
		l.Emit(Event{
			At: at, Kind: KindDeliver, NodeID: node,
			Code: CodeDeliverPacket, Arg0: 1,
			Arg1: PackPacket(inet.ProtoUDP, inet.ClassHighPriority, 0),
			Seq:  int64(at),
		})
	}
	for i := 0; i < 4096; i++ {
		emit()
	}
	// Keep append growth out of the measured window.
	for cap(l.events)-len(l.events) < 256 {
		emit()
	}
	if avg := testing.AllocsPerRun(100, emit); avg != 0 {
		t.Fatalf("typed Emit allocates %.2f times per event; want 0", avg)
	}
}

func TestNoteShortCircuitsWhenFull(t *testing.T) {
	l := NewLog(1)
	l.Note(0, "sim", "first %d", 1)
	// The log is now full and nobody subscribes: Note must count the event
	// as dropped without formatting it.
	if avg := testing.AllocsPerRun(100, func() {
		l.Note(sim.Second, "sim", "wasted %d %s", 42, "formatting")
	}); avg != 0 {
		t.Fatalf("full-log Note allocates %.2f times; want 0", avg)
	}
	if l.Dropped() != 101 {
		t.Fatalf("Dropped = %d, want 101", l.Dropped())
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
}

func TestNoteStillReachesSubscribersWhenFull(t *testing.T) {
	l := NewLog(1)
	var seen []string
	l.Subscribe(func(ev Event) { seen = append(seen, ev.Detail) })
	l.Note(0, "sim", "one")
	l.Note(sim.Second, "sim", "two %d", 2) // beyond limit, still delivered live
	if len(seen) != 2 || seen[1] != "two 2" {
		t.Fatalf("subscriber saw %v", seen)
	}
	if l.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", l.Dropped())
	}
}

func TestEventsSkipsSortWhenEmittedInOrder(t *testing.T) {
	l := NewLog(0)
	for i := 0; i < 1000; i++ {
		l.Emit(Event{At: sim.Time(i), Kind: KindNote})
	}
	// In-order logs return a plain copy: one slice allocation, no sort.
	if avg := testing.AllocsPerRun(20, func() { _ = l.Events() }); avg > 1 {
		t.Fatalf("sorted-log Events allocates %.1f times per call; want 1", avg)
	}
}

func TestOutOfOrderEventsCachedAcrossCalls(t *testing.T) {
	l := NewLog(0)
	l.Emit(Event{At: 2 * sim.Second, Kind: KindNote, Detail: "b"})
	l.Emit(Event{At: sim.Second, Kind: KindNote, Detail: "a"})
	first := l.Events()
	if first[0].Detail != "a" || first[1].Detail != "b" {
		t.Fatalf("events not sorted: %+v", first)
	}
	// The sorted view is built once and reused: only the outgoing copy
	// allocates on repeat calls.
	if avg := testing.AllocsPerRun(20, func() { _ = l.Events() }); avg > 1 {
		t.Fatalf("unsorted-log Events allocates %.1f times per call after caching; want 1", avg)
	}
	// A new emit invalidates the cache and keeps ordering correct.
	l.Emit(Event{At: 1500 * sim.Millisecond, Kind: KindNote, Detail: "mid"})
	evs := l.Events()
	if evs[0].Detail != "a" || evs[1].Detail != "mid" || evs[2].Detail != "b" {
		t.Fatalf("cache not invalidated: %+v", evs)
	}
}

func TestFilterDoesNotMutateOrder(t *testing.T) {
	l := NewLog(0)
	l.Emit(Event{At: 3, Kind: KindDrop, Seq: 3})
	l.Emit(Event{At: 1, Kind: KindDrop, Seq: 1})
	l.Emit(Event{At: 2, Kind: KindControl})
	drops := l.Filter(KindDrop)
	if len(drops) != 2 || drops[0].Seq != 1 || drops[1].Seq != 3 {
		t.Fatalf("Filter = %+v", drops)
	}
	// Negative and huge kinds must not panic the bitmask.
	if got := l.Filter(Kind(-1), Kind(99)); len(got) != 0 {
		t.Fatalf("nonsense kinds matched %d events", len(got))
	}
}

func TestRenderTypedEvents(t *testing.T) {
	l := NewLog(0)
	node := InternNode("par")
	l.Emit(Event{At: sim.Second, Kind: KindControl, NodeID: node,
		Code: CodeSendsControl, Arg0: int64(fho.KindHI)})
	out := l.Render()
	if !strings.Contains(out, "par") || !strings.Contains(out, "sends "+fho.KindHI.String()) {
		t.Fatalf("Render = %q", out)
	}
}

// benchLogSize keeps the emit benchmarks cache-resident: the log is
// swapped for a fresh one every benchLogSize events, so the measured cost
// is the steady-state emit, not the memory bandwidth of growing one giant
// slice. Both emit benchmarks share the structure, so the typed-vs-eager
// comparison stays apples to apples.
const benchLogSize = 16 * 1024

func BenchmarkLogEmitTyped(b *testing.B) {
	l := NewLog(benchLogSize)
	node := InternNode("mh0")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%benchLogSize == benchLogSize-1 {
			l = NewLog(benchLogSize)
		}
		l.Emit(Event{
			At: sim.Time(i), Kind: KindDeliver, NodeID: node,
			Code: CodeDeliverPacket, Arg0: 1,
			Arg1: PackPacket(inet.ProtoUDP, inet.ClassHighPriority, 0),
			Seq:  int64(i),
		})
	}
}

func BenchmarkLogEmitEagerDetail(b *testing.B) {
	// The old cost: formatting the payload at emit time.
	l := NewLog(benchLogSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%benchLogSize == benchLogSize-1 {
			l = NewLog(benchLogSize)
		}
		l.Emit(Event{
			At: sim.Time(i), Kind: KindDeliver, Node: "mh0",
			Detail: fmt.Sprintf("%s flow=%d class=%s", inet.ProtoUDP, 1, inet.ClassHighPriority),
			Seq:    int64(i),
		})
	}
}

func BenchmarkLogEventsSorted(b *testing.B) {
	l := NewLog(0)
	for i := 0; i < 1000; i++ {
		l.Emit(Event{At: sim.Time(i), Kind: KindNote})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Events()
	}
}
