package netsim

import (
	"repro/internal/inet"
	"repro/internal/sim"
)

// FaultConfig describes the probabilistic impairment applied to one
// interface's transmit path.
type FaultConfig struct {
	// LossRate is the probability, per packet, that the packet is lost on
	// the wire (vanishes without a trace, as a deep fade or collision
	// would). Values outside [0, 1] are clamped.
	LossRate float64
	// CorruptRate is the probability, per surviving packet, that the
	// packet is corrupted in flight. A corrupted frame fails its checksum
	// at the receiver and is discarded there, so for the protocol engines
	// it is indistinguishable from a loss; the injector counts it
	// separately so experiments can attribute the two mechanisms.
	CorruptRate float64
	// ControlOnly restricts the impairment to control-plane packets
	// (inet.ProtoControl, including tunnelled control), leaving the data
	// plane untouched. This isolates the signaling-resilience axis: data
	// loss during handoffs is already modelled by the blackout and the
	// buffer dynamics.
	ControlOnly bool
}

// faultState is the per-interface impairment stream.
type faultState struct {
	cfg       FaultConfig
	rng       *sim.RNG
	lost      uint64
	corrupted uint64
}

// FaultInjector imposes seeded, per-link probabilistic loss and corruption
// on interfaces. Each attached interface draws from its own deterministic
// stream derived from the injector seed with the same splitmix64 mix the
// runner uses for replica seeds, so the injected fault pattern is a pure
// function of (seed, attachment order, traffic on that interface) — it does
// not change when unrelated links carry different traffic, and replicas
// fanned across any number of workers reproduce it bit for bit.
type FaultInjector struct {
	seed     int64
	attached int
	states   map[*Iface]*faultState

	// OnInject observes every injected fault. corrupted distinguishes a
	// checksum-failed frame from a silent loss.
	OnInject func(ifc *Iface, pkt *inet.Packet, corrupted bool)
}

// NewFaultInjector returns an injector whose per-interface streams derive
// from seed.
func NewFaultInjector(seed int64) *FaultInjector {
	return &FaultInjector{seed: seed, states: make(map[*Iface]*faultState)}
}

// golden is ⌊2⁶⁴/φ⌋, the splitmix64 Weyl increment (see runner/seed.go).
const golden = 0x9E3779B97F4A7C15

// splitmix64 is the finalizing mix of the splitmix64 generator.
func splitmix64(x uint64) uint64 {
	x += golden
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// streamSeed derives the RNG seed for the idx-th attached interface.
func (fi *FaultInjector) streamSeed(idx int) int64 {
	x := splitmix64(uint64(fi.seed) + uint64(idx)*golden)
	seed := int64(x &^ (1 << 63))
	if seed == 0 {
		seed = 1
	}
	return seed
}

// Attach installs the impairment on an interface's transmit path, chaining
// in front of any Impair hook already present (the existing hook still sees
// the packets the injector lets through). Attaching the same interface
// again replaces its configuration but keeps its stream and counters.
func (fi *FaultInjector) Attach(ifc *Iface, cfg FaultConfig) {
	if cfg.LossRate < 0 {
		cfg.LossRate = 0
	}
	if cfg.LossRate > 1 {
		cfg.LossRate = 1
	}
	if cfg.CorruptRate < 0 {
		cfg.CorruptRate = 0
	}
	if cfg.CorruptRate > 1 {
		cfg.CorruptRate = 1
	}
	if st, ok := fi.states[ifc]; ok {
		st.cfg = cfg
		return
	}
	st := &faultState{cfg: cfg, rng: sim.NewRNG(fi.streamSeed(fi.attached))}
	fi.attached++
	fi.states[ifc] = st
	next := ifc.Impair
	ifc.Impair = func(pkt *inet.Packet) bool {
		if fi.inject(ifc, st, pkt) {
			return true
		}
		return next != nil && next(pkt)
	}
}

// AttachLink installs the same impairment on both directions of a link.
func (fi *FaultInjector) AttachLink(l *Link, cfg FaultConfig) {
	fi.Attach(l.A(), cfg)
	fi.Attach(l.B(), cfg)
}

// inject decides one packet's fate, reporting true when it must be
// discarded.
func (fi *FaultInjector) inject(ifc *Iface, st *faultState, pkt *inet.Packet) bool {
	if st.cfg.ControlOnly && pkt.Innermost().Proto != inet.ProtoControl {
		return false
	}
	if st.cfg.LossRate > 0 && st.rng.Float64() < st.cfg.LossRate {
		st.lost++
		if fi.OnInject != nil {
			fi.OnInject(ifc, pkt, false)
		}
		return true
	}
	if st.cfg.CorruptRate > 0 && st.rng.Float64() < st.cfg.CorruptRate {
		st.corrupted++
		if fi.OnInject != nil {
			fi.OnInject(ifc, pkt, true)
		}
		return true
	}
	return false
}

// Lost returns the number of packets silently dropped on the given
// interface, zero for interfaces never attached.
func (fi *FaultInjector) Lost(ifc *Iface) uint64 {
	if st, ok := fi.states[ifc]; ok {
		return st.lost
	}
	return 0
}

// Corrupted returns the number of packets corrupted (discarded at the
// checksum) on the given interface.
func (fi *FaultInjector) Corrupted(ifc *Iface) uint64 {
	if st, ok := fi.states[ifc]; ok {
		return st.corrupted
	}
	return 0
}

// Injected returns the total number of faults injected across all attached
// interfaces.
func (fi *FaultInjector) Injected() uint64 {
	var n uint64
	for _, st := range fi.states {
		n += st.lost + st.corrupted
	}
	return n
}
