package netsim

import (
	"testing"

	"repro/internal/inet"
	"repro/internal/sim"
	"repro/internal/stats"
)

// TestUDPHopZeroAlloc pins the packet hot path: in steady state, sending
// one pool-allocated UDP packet across a wired hop — serialization event,
// propagation event, delivery, release, and reap — allocates nothing.
func TestUDPHopZeroAlloc(t *testing.T) {
	engine := sim.NewEngine()
	topo := NewTopology(engine)
	a := NewHost("a", inet.Addr{Net: 1, Host: 1})
	b := NewHost("b", inet.Addr{Net: 2, Host: 1})
	topo.Connect(a, b, LinkConfig{BandwidthBPS: 10e6, Delay: sim.Millisecond})

	delivered := 0
	b.Receive = func(pkt *inet.Packet) {
		delivered++
		topo.ReleasePacket(pkt)
	}

	send := func() {
		pkt := topo.AllocPacket()
		pkt.Src = a.Addr()
		pkt.Dst = b.Addr()
		pkt.Proto = inet.ProtoUDP
		pkt.Size = 160
		a.Send(pkt)
		if err := engine.RunAll(); err != nil {
			t.Fatalf("engine: %v", err)
		}
	}
	// Warm the event free list, the packet pool, and the in-flight FIFO.
	for i := 0; i < 64; i++ {
		send()
	}
	if avg := testing.AllocsPerRun(200, send); avg != 0 {
		t.Fatalf("UDP hop allocates %.2f times per packet; want 0", avg)
	}
	if delivered == 0 {
		t.Fatal("no packets delivered")
	}
}

// TestUDPHopRecordedZeroAlloc pins the telemetry-instrumented hot path:
// a hop whose send and delivery also feed the statistics recorder (both
// exact and streaming modes) still allocates nothing in steady state.
func TestUDPHopRecordedZeroAlloc(t *testing.T) {
	for _, mode := range []stats.Mode{stats.ModeExact, stats.ModeStreaming} {
		mode := mode
		name := "exact"
		if mode == stats.ModeStreaming {
			name = "streaming"
		}
		t.Run(name, func(t *testing.T) {
			engine := sim.NewEngine()
			topo := NewTopology(engine)
			a := NewHost("a", inet.Addr{Net: 1, Host: 1})
			b := NewHost("b", inet.Addr{Net: 2, Host: 1})
			topo.Connect(a, b, LinkConfig{BandwidthBPS: 10e6, Delay: sim.Millisecond})

			rec := stats.NewRecorderMode(mode)
			b.Receive = func(pkt *inet.Packet) {
				rec.Delivered(pkt, engine.Now())
				topo.ReleasePacket(pkt)
			}

			send := func() {
				pkt := topo.AllocPacket()
				pkt.Src = a.Addr()
				pkt.Dst = b.Addr()
				pkt.Proto = inet.ProtoUDP
				pkt.Flow = 1
				pkt.Size = 160
				pkt.Created = engine.Now()
				rec.Sent(pkt)
				a.Send(pkt)
				if err := engine.RunAll(); err != nil {
					t.Fatalf("engine: %v", err)
				}
			}
			// Warm pools, the dense flow table, and (exact mode) the delay
			// sample slice far enough that append growth is amortized out
			// of the measured window.
			for i := 0; i < 4096; i++ {
				send()
			}
			// Exact mode appends a DelaySample per delivery; keep sending
			// until the slice has enough spare capacity that no growth can
			// land inside the measured runs.
			if mode == stats.ModeExact {
				for f := rec.Flow(1); cap(f.Delays)-len(f.Delays) < 256; {
					send()
				}
			}
			if avg := testing.AllocsPerRun(200, send); avg != 0 {
				t.Fatalf("recorded UDP hop allocates %.2f times per packet; want 0", avg)
			}
			if rec.TotalDelivered() == 0 {
				t.Fatal("no packets recorded")
			}
		})
	}
}
