package netsim

import (
	"testing"

	"repro/internal/inet"
	"repro/internal/sim"
)

// TestUDPHopZeroAlloc pins the packet hot path: in steady state, sending
// one pool-allocated UDP packet across a wired hop — serialization event,
// propagation event, delivery, release, and reap — allocates nothing.
func TestUDPHopZeroAlloc(t *testing.T) {
	engine := sim.NewEngine()
	topo := NewTopology(engine)
	a := NewHost("a", inet.Addr{Net: 1, Host: 1})
	b := NewHost("b", inet.Addr{Net: 2, Host: 1})
	topo.Connect(a, b, LinkConfig{BandwidthBPS: 10e6, Delay: sim.Millisecond})

	delivered := 0
	b.Receive = func(pkt *inet.Packet) {
		delivered++
		topo.ReleasePacket(pkt)
	}

	send := func() {
		pkt := topo.AllocPacket()
		pkt.Src = a.Addr()
		pkt.Dst = b.Addr()
		pkt.Proto = inet.ProtoUDP
		pkt.Size = 160
		a.Send(pkt)
		if err := engine.RunAll(); err != nil {
			t.Fatalf("engine: %v", err)
		}
	}
	// Warm the event free list, the packet pool, and the in-flight FIFO.
	for i := 0; i < 64; i++ {
		send()
	}
	if avg := testing.AllocsPerRun(200, send); avg != 0 {
		t.Fatalf("UDP hop allocates %.2f times per packet; want 0", avg)
	}
	if delivered == 0 {
		t.Fatal("no packets delivered")
	}
}
